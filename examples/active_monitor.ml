(* An active database (paper §6): process monitoring with once-only,
   perpetual and *timed* triggers.

   The paper motivates triggers with "computer integrated manufacturing,
   power distribution network management, air-traffic control". Here: a
   plant of sensors; perpetual triggers watch thresholds; a timed trigger
   gives an acknowledgement window — if an alarm is not acknowledged within
   the deadline (logical clock), an escalation action fires instead.

   Run with:  dune exec examples/active_monitor.exe *)

module Db = Ode.Database
module Value = Ode_model.Value

let schema =
  {|
  class sensor {
    sname: string;
    reading: int;
    threshold: int = 100;
    alarms: int = 0;
    trigger perpetual overload(): reading > threshold ==>
      { alarms := alarms + 1;
        print "[alarm]", sname, "reading", str(reading), "(alarm #" + str(alarms) + ")"; };
  };
  class incident {
    source: string;
    acked: bool = false;
    trigger escalate(): within 3 : acked ==>
      { print "[ok]   ", source, "acknowledged in time"; }
      timeout
      { print "[PAGE] ", source, "not acknowledged: paging the operator"; };
  };
  |}

let () =
  let db = Db.open_in_memory () in
  let shell = Ode.Shell.create db in
  let run src = Ode.Shell.exec shell src in
  run schema;
  run "create cluster sensor; create cluster incident;";
  run
    {|
    boiler := pnew sensor { sname = "boiler" };
    turbine := pnew sensor { sname = "turbine", threshold = 150 };
    activate boiler.overload();
    activate turbine.overload();
    |};

  (* A stream of readings; each batch is one transaction, so trigger
     conditions are checked at each commit (end-of-transaction semantics). *)
  print_endline "== feeding readings ==";
  List.iter
    (fun (b, t) ->
      run (Printf.sprintf "boiler.reading := %d; turbine.reading := %d;" b t))
    [ (90, 120); (130, 140); (80, 170); (140, 150) ];

  (* Two incidents with acknowledgement deadlines on the logical clock. *)
  print_endline "== incidents with a 3-tick ack window ==";
  run
    {|
    i1 := pnew incident { source = "boiler" };
    i2 := pnew incident { source = "turbine" };
    activate i1.escalate();
    activate i2.escalate();
    |};
  run "advance time 1;";
  run {| i1.acked := true; |};     (* boiler acknowledged within the window *)
  run "advance time 1;";
  print_endline "-- tick 2: nothing due yet";
  run "advance time 2;";           (* tick 4: turbine's window has expired *)
  print_endline "-- tick 4: deadlines processed";

  print_endline "== summary ==";
  run
    {|
    forall s in sensor by s.sname { print s.sname, "alarms:", str(s.alarms); };
    |};
  Db.close db
