(* Recursive (fixpoint) queries — paper §3.2.

   The classic "parts explosion": which base parts, and how many of each,
   does an assembly transitively contain? The paper's answer to deductive-
   database criticism is that O++ iteration sees elements inserted during
   the iteration, so transitive closure is a plain loop. We show both
   mechanisms:

     1. Odeset worklists (set iteration that sees inserts), and
     2. cluster fixpoint iteration (forall over a cluster where the body
        pnews into the same cluster).

   Run with:  dune exec examples/parts_explosion.exe *)

module Db = Ode.Database
module Query = Ode.Query
module S = Ode.Odeset
module Value = Ode_model.Value
module Parser = Ode_lang.Parser

let schema =
  {|
  class part { pname: string; base_cost: int; };
  class uses { parent: ref part; child: ref part; count: int; };
  // Scratch cluster for the cluster-fixpoint variant of the closure.
  class reach { node: ref part; mult: int; };
  |}

let () =
  let db = Db.open_in_memory () in
  ignore (Db.define db schema);
  List.iter (Db.create_cluster db) [ "part"; "uses"; "reach" ];

  (* A small bill of materials:
       car -> 4 wheel, 1 engine
       wheel -> 5 bolt, 1 rim
       engine -> 8 piston, 24 bolt
       piston -> 2 ring *)
  let parts = Hashtbl.create 16 in
  Db.with_txn db (fun txn ->
      let part name cost =
        Hashtbl.replace parts name (Db.pnew txn "part" [ ("pname", Str name); ("base_cost", Int cost) ])
      in
      part "car" 0;
      part "wheel" 0;
      part "engine" 0;
      part "bolt" 2;
      part "rim" 40;
      part "piston" 15;
      part "ring" 3;
      let uses parent child count =
        ignore
          (Db.pnew txn "uses"
             [ ("parent", Ref (Hashtbl.find parts parent));
               ("child", Ref (Hashtbl.find parts child));
               ("count", Int count);
             ])
      in
      uses "car" "wheel" 4;
      uses "car" "engine" 1;
      uses "wheel" "bolt" 5;
      uses "wheel" "rim" 1;
      uses "engine" "piston" 8;
      uses "engine" "bolt" 24;
      uses "piston" "ring" 2);

  let car = Hashtbl.find parts "car" in

  (* -- 1. worklist over a set value ------------------------------------- *)
  print_endline "== parts explosion via set fixpoint (Odeset.iter_fix) ==";
  Db.with_txn db (fun txn ->
      (* Worklist elements are (part, multiplicity) pairs. *)
      let w = S.worklist (S.of_list [ Value.VList [ Ref car; Int 1 ] ]) in
      let totals : (string, int) Hashtbl.t = Hashtbl.create 16 in
      S.iter_fix w (fun v ->
          match v with
          | Value.VList [ Value.Ref p; Value.Int mult ] ->
              let expanded = ref false in
              Query.run db ~var:"u" ~cls:"uses"
                ~suchthat:(Parser.expr "u.parent == p")
                ~env:[ ("p", Value.Ref p) ]
                (fun u ->
                  expanded := true;
                  match (Db.get_field txn u "child", Db.get_field txn u "count") with
                  | Value.Ref c, Value.Int n ->
                      ignore (S.insert w (Value.VList [ Ref c; Int (mult * n) ]))
                  | _ -> ());
              if not !expanded then begin
                (* A leaf part: accumulate. *)
                let name = Value.to_string (Db.get_field txn p "pname") in
                Hashtbl.replace totals name
                  (mult + Option.value (Hashtbl.find_opt totals name) ~default:0)
              end
          | _ -> ());
      List.iter
        (fun (name, n) -> Printf.printf "  %-10s x %d\n" name n)
        (List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) totals [])));

  (* Note: multiplicities of the same part reached along different paths
     appear as separate worklist entries and are summed at the leaves —
     20 bolts via wheels + 24 via the engine = 44. *)

  (* -- 2. cluster fixpoint ------------------------------------------------ *)
  print_endline "== reachable parts via cluster fixpoint (forall + pnew) ==";
  Db.with_txn db (fun txn ->
      ignore (Db.pnew txn "reach" [ ("node", Ref car); ("mult", Int 1) ]);
      let seen = Hashtbl.create 16 in
      Query.run db ~txn ~var:"r" ~cls:"reach" ~fixpoint:true (fun r ->
          match Db.get_field txn r "node" with
          | Value.Ref p ->
              if not (Hashtbl.mem seen p) then begin
                Hashtbl.replace seen p ();
                Query.run db ~var:"u" ~cls:"uses"
                  ~suchthat:(Parser.expr "u.parent == p")
                  ~env:[ ("p", Value.Ref p) ]
                  (fun u ->
                    match Db.get_field txn u "child" with
                    | Value.Ref c ->
                        ignore (Db.pnew txn "reach" [ ("node", Ref c); ("mult", Int 1) ])
                    | _ -> ())
              end
          | _ -> ());
      Printf.printf "  car transitively contains %d distinct part kinds\n"
        (Hashtbl.length seen - 1));

  (* -- 3. rolled-up cost ---------------------------------------------------- *)
  print_endline "== rolled-up cost of the car ==";
  Db.with_txn db (fun txn ->
      let rec cost oid mult =
        let base = match Db.get_field txn oid "base_cost" with Value.Int c -> c | _ -> 0 in
        let sub = ref 0 in
        Query.run db ~var:"u" ~cls:"uses"
          ~suchthat:(Parser.expr "u.parent == p")
          ~env:[ ("p", Value.Ref oid) ]
          (fun u ->
            match (Db.get_field txn u "child", Db.get_field txn u "count") with
            | Value.Ref c, Value.Int n -> sub := !sub + cost c n
            | _ -> ());
        mult * (base + !sub)
      in
      Printf.printf "  total cost: %d\n" (cost car 1));
  Db.close db
