(* The paper's running example: an inventory of stock items with suppliers,
   integrity constraints, and reorder triggers (an *active* database).

   Mirrors §2 (stockitem/supplier classes), §5 (constraints) and §6
   (once-only and perpetual triggers, weak coupling) of the ODE paper.

   Run with:  dune exec examples/inventory.exe *)

module Db = Ode.Database
module Value = Ode_model.Value

let schema =
  {|
  class supplier {
    sname: string;
    city: string;
  };
  class stockitem {
    name: string;
    qty: int;
    reorder_level: int;
    max_level: int;
    price: float;
    consumption: int;
    sup: ref supplier;
    constraint sane_levels: reorder_level >= 0 && max_level >= reorder_level;
    constraint in_stock_bounds: qty >= 0 && qty <= max_level;
    method value(): float = qty * price;
    method days_left(): int = qty / max(consumption, 1);
    trigger reorder(): qty <= reorder_level ==>
      { print "[reorder] ordering", str(max_level - qty), "units of", name,
              "from", sup.sname, "(", sup.city, ")"; };
    trigger perpetual lowstock(): qty * 2 < reorder_level ==>
      { print "[ALERT] critically low:", name, "qty", str(qty); };
  };
  |}

let () =
  let db = Db.open_in_memory () in
  let shell = Ode.Shell.create db in
  let run src = Ode.Shell.exec shell src in
  run schema;
  run "create cluster supplier; create cluster stockitem;";

  print_endline "== loading inventory ==";
  run
    {|
    att := pnew supplier { sname = "att", city = "berkeley hts" };
    ibm := pnew supplier { sname = "ibm", city = "fishkill" };
    dram := pnew stockitem { name = "512k dram", qty = 7500, reorder_level = 1000,
                             max_level = 15000, price = 5.0, consumption = 500, sup = att };
    sram := pnew stockitem { name = "64k sram", qty = 900, reorder_level = 800,
                             max_level = 4000, price = 12.5, consumption = 300, sup = ibm };
    activate dram.reorder();
    activate sram.reorder();
    activate dram.lowstock();
    activate sram.lowstock();
    |};

  print_endline "== stock report (forall ... by value desc) ==";
  run
    {|
    forall i in stockitem by i.value() desc {
      print i.name, "qty", str(i.qty), "value", str(i.value()), "days left", str(i.days_left());
    };
    |};

  (* Consumption loop: each day is one transaction; triggers fire as weakly
     coupled follow-up transactions when levels cross thresholds. *)
  print_endline "== simulating 4 days of consumption ==";
  for day = 1 to 4 do
    Printf.printf "-- day %d\n" day;
    run
      {|
      forall i in stockitem {
        i.qty := max(i.qty - i.consumption, 0);
      };
      |}
  done;

  (* Constraint demo: the class invariants abort violating transactions. *)
  print_endline "== constraint enforcement ==";
  (match
     Ode.Shell.exec_catching shell {| forall i in stockitem { i.qty := 0 - 5; }; |}
   with
  | Ok () -> print_endline "unexpectedly allowed!"
  | Error msg -> Printf.printf "rejected as expected: %s\n" msg);

  print_endline "== restock (perpetual alert stops, once-only already spent) ==";
  run {| forall i in stockitem { i.qty := i.max_level; }; |};
  run {| forall i in stockitem by i.name { print i.name, "restocked to", str(i.qty); }; |};
  Db.close db
