(* Object versioning for design data (paper §4).

   A CAD-style scenario: circuit layouts evolve through revisions; released
   assemblies pin *specific versions* of their parts (Vref), while work in
   progress follows the *generic reference* (Ref), which always denotes the
   current version. This is exactly the paper's specific-vs-generic
   reference distinction, plus vprev/vnext history walks and version
   deletion.

   Run with:  dune exec examples/cad_versions.exe *)

module Db = Ode.Database
module Value = Ode_model.Value
module Parser = Ode_lang.Parser

let schema =
  {|
  class layout {
    lname: string;
    gates: int;
    area: float;
    method density(): float = gates / area;
  };
  class assembly {
    aname: string;
    released: ref layout;   // pinned to a specific version at release time
    dev: ref layout;        // follows the current version
  };
  |}

let () =
  let db = Db.open_in_memory () in
  ignore (Db.define db schema);
  Db.create_cluster db "layout";
  Db.create_cluster db "assembly";

  let alu =
    Db.with_txn db (fun txn ->
        Db.pnew txn "layout" [ ("lname", Str "alu"); ("gates", Int 1200); ("area", Float 4.0) ])
  in

  (* Revise the layout three times; each newversion freezes the old state. *)
  List.iter
    (fun (gates, area) ->
      Db.with_txn db (fun txn ->
          ignore (Db.newversion txn alu);
          Db.update txn alu [ ("gates", Int gates); ("area", Float area) ]))
    [ (1500, 4.0); (1500, 3.2); (1800, 3.0) ];

  (* The release pins version 1 specifically; dev tracks the current. *)
  Db.with_txn db (fun txn ->
      ignore
        (Db.pnew txn "assembly"
           [ ("aname", Str "cpu");
             ("released", Value.Vref { oid = alu; ver = 1 });
             ("dev", Ref alu);
           ]));

  print_endline "== revision history (vprev walk from current) ==";
  Db.with_txn db (fun txn ->
      let rec walk (v : Value.t) =
        match v with
        | Value.Null -> ()
        | v ->
            let field f = Db.eval txn ~vars:[ ("v", v) ] (Parser.expr ("v." ^ f)) in
            let num = Db.eval txn ~vars:[ ("v", v) ] (Parser.expr "vnum(v)") in
            Printf.printf "  v%s: %s gates, density %s\n" (Value.to_string num)
              (Value.to_string (field "gates"))
              (Value.to_string (Db.eval txn ~vars:[ ("v", v) ] (Parser.expr "v.density()")));
            walk (Db.eval txn ~vars:[ ("v", v) ] (Parser.expr "vprev(v)"))
      in
      walk (Value.Ref alu));

  print_endline "== pinned vs tracking references ==";
  Db.with_txn db (fun txn ->
      Ode.Query.run db ~var:"a" ~cls:"assembly" (fun a ->
          let ev src = Db.eval txn ~vars:[ ("a", Value.Ref a) ] (Parser.expr src) in
          Printf.printf "  %s: released sees %s gates (pinned v%s), dev sees %s gates (v%s)\n"
            (Value.to_string (ev "a.aname"))
            (Value.to_string (ev "a.released.gates"))
            (Value.to_string (ev "vnum(a.released)"))
            (Value.to_string (ev "a.dev.gates"))
            (Value.to_string (ev "vnum(a.dev)"))));

  print_endline "== another revision moves dev but not the release ==";
  Db.with_txn db (fun txn ->
      ignore (Db.newversion txn alu);
      Db.update txn alu [ ("gates", Int 2100); ("area", Float 2.8) ]);
  Db.with_txn db (fun txn ->
      Ode.Query.run db ~var:"a" ~cls:"assembly" (fun a ->
          let ev src = Db.eval txn ~vars:[ ("a", Value.Ref a) ] (Parser.expr src) in
          Printf.printf "  released=%s gates, dev=%s gates, nversions=%s\n"
            (Value.to_string (ev "a.released.gates"))
            (Value.to_string (ev "a.dev.gates"))
            (Value.to_string (ev "nversions(a.dev)"))));

  print_endline "== pruning an obsolete middle version ==";
  Db.with_txn db (fun txn ->
      Db.pdelete_version txn { oid = alu; ver = 2 };
      Printf.printf "  remaining versions: [%s]\n"
        (String.concat "; " (List.map string_of_int (Db.versions txn alu)));
      (* The history walk silently skips the deleted revision. *)
      let prev_of_3 = Db.eval txn ~vars:[ ("l", Value.Ref alu) ] (Parser.expr "vprev(vref(l, 3)).gates") in
      Printf.printf "  vprev(v3) now reads gates=%s (from v1)\n" (Value.to_string prev_of_3));
  Db.close db
