(* Quickstart: define a schema, store persistent objects, query them back.

   Run with:  dune exec examples/quickstart.exe
   (uses an on-disk database under ./quickstart.db so you can re-run it and
   see persistence across runs) *)

module Db = Ode.Database
module Query = Ode.Query
module Value = Ode_model.Value
module Parser = Ode_lang.Parser

let () =
  let fresh = not (Sys.file_exists "quickstart.db") in
  let db = Db.open_ "quickstart.db" in

  (* 1. Schema: classes are the unit of data definition (O++ §2). DDL is
     idempotent per database, so only define on first run. *)
  if fresh then begin
    ignore
      (Db.define db
         {|
         class city { cname: string; country: string; };
         class site {
           sname: string;
           visitors: int;
           host: ref city;
           method popular(): bool = visitors > 1000;
         };
         |});
    Db.create_cluster db "city";
    Db.create_cluster db "site";
    Db.create_index db ~cls:"site" ~field:"visitors"
  end;

  (* 2. Persistent objects: pnew allocates in the persistent store and
     returns an object id; everything happens inside a transaction. *)
  Db.with_txn db (fun txn ->
      let nj = Db.pnew txn "city" [ ("cname", Str "Murray Hill"); ("country", Str "USA") ] in
      ignore
        (Db.pnew txn "site"
           [ ("sname", Str "Bell Labs"); ("visitors", Int 5000); ("host", Ref nj) ]);
      ignore
        (Db.pnew txn "site" [ ("sname", Str "Cafeteria"); ("visitors", Int 120); ("host", Ref nj) ]));

  (* 3. Queries: forall-style iteration with a suchthat predicate; the
     planner uses the index on visitors automatically. *)
  Db.with_txn db (fun txn ->
      let q = Parser.expr "x.visitors > 1000" in
      Printf.printf "plan: %s\n" (Query.explain db ~var:"x" ~cls:"site" ~suchthat:q ());
      Query.run db ~var:"x" ~cls:"site" ~suchthat:q (fun oid ->
          let name = Db.get_field txn oid "sname" in
          let host = Db.get_field txn oid "host" in
          let country =
            match host with
            | Value.Ref c -> Db.get_field txn c "country"
            | _ -> Value.Null
          in
          Printf.printf "popular site: %s (%s), popular()=%s\n" (Value.to_string name)
            (Value.to_string country)
            (Value.to_string (Db.call txn oid "popular" []))));

  (* 4. The same through the interpreted surface language. *)
  let shell = Ode.Shell.create db in
  Ode.Shell.exec shell
    {| forall s in site by s.visitors desc { print s.sname, s.visitors; }; |};

  let total = Db.with_txn db (fun _ -> Query.count db ~var:"s" ~cls:"site" ()) in
  Printf.printf "sites stored so far (grows on every run): %d\n" total;
  Db.close db
