(* The paper's university example (§3): a class hierarchy with multiple
   inheritance, cluster-hierarchy ("deep extent") iteration, the dynamic
   [is] test, aggregates per class, constraint-based specialization (§5's
   [female : person] example), and a multi-variable join.

   Run with:  dune exec examples/university.exe *)

module Db = Ode.Database
module Query = Ode.Query
module Value = Ode_model.Value
module Parser = Ode_lang.Parser

let schema =
  {|
  class department { dname: string; budget: int; };
  class person {
    name: string;
    age: int;
    sex: string;
    method income(): int = 0;
  };
  // Constraint-based specialization, straight from the paper's §5.
  class female : person {
    constraint is_female: sex == "f";
  };
  class student : person {
    gpa: float;
    stipend: int;
    dept: ref department;
    method income(): int = stipend;
  };
  class faculty : person {
    salary: int;
    dept: ref department;
    method income(): int = salary;
  };
  |}

let () =
  let db = Db.open_in_memory () in
  ignore (Db.define db schema);
  List.iter (Db.create_cluster db) [ "department"; "person"; "female"; "student"; "faculty" ];
  Db.create_index db ~cls:"person" ~field:"age";

  Db.with_txn db (fun txn ->
      let cs = Db.pnew txn "department" [ ("dname", Str "cs"); ("budget", Int 100) ] in
      let math = Db.pnew txn "department" [ ("dname", Str "math"); ("budget", Int 60) ] in
      let person name age sex = ignore (Db.pnew txn "person" [ ("name", Str name); ("age", Int age); ("sex", Str sex) ]) in
      let student name age sex gpa stipend dept =
        ignore
          (Db.pnew txn "student"
             [ ("name", Str name); ("age", Int age); ("sex", Str sex);
               ("gpa", Float gpa); ("stipend", Int stipend); ("dept", Ref dept) ])
      in
      let faculty name age sex salary dept =
        ignore
          (Db.pnew txn "faculty"
             [ ("name", Str name); ("age", Int age); ("sex", Str sex);
               ("salary", Int salary); ("dept", Ref dept) ])
      in
      person "pat" 33 "m";
      person "quinn" 44 "f";
      student "ann" 22 "f" 3.9 1200 cs;
      student "bob" 27 "m" 2.8 1100 math;
      student "cleo" 24 "f" 3.4 1300 cs;
      faculty "dine" 51 "f" 9000 cs;
      faculty "emil" 47 "m" 8500 math);

  (* The paper's motivating query: average income of persons, students and
     faculty — one deep-extent loop with dynamic class tests. *)
  print_endline "== average income by dynamic class (paper §3.1.1) ==";
  Db.with_txn db (fun txn ->
      let sum_p = ref 0 and n_p = ref 0 in
      let sum_s = ref 0 and n_s = ref 0 in
      let sum_f = ref 0 and n_f = ref 0 in
      Query.run db ~var:"p" ~cls:"person" ~deep:true (fun oid ->
          let income = match Db.call txn oid "income" [] with Value.Int i -> i | _ -> 0 in
          incr n_p;
          sum_p := !sum_p + income;
          if Db.is_instance db oid "student" then begin
            incr n_s;
            sum_s := !sum_s + income
          end
          else if Db.is_instance db oid "faculty" then begin
            incr n_f;
            sum_f := !sum_f + income
          end);
      Printf.printf "persons:  n=%d avg income %.1f\n" !n_p (float !sum_p /. float !n_p);
      Printf.printf "students: n=%d avg income %.1f\n" !n_s (float !sum_s /. float !n_s);
      Printf.printf "faculty:  n=%d avg income %.1f\n" !n_f (float !sum_f /. float !n_f));

  print_endline "== suchthat + by through the shell ==";
  let shell = Ode.Shell.create db in
  Ode.Shell.exec shell
    {|
    print "adults over 30, oldest first:";
    forall p in person* suchthat p.age > 30 by p.age desc { print " ", p.name, p.age; };
    print "high-gpa students:";
    forall s in student suchthat s.gpa >= 3.4 by s.gpa desc { print " ", s.name, s.gpa; };
    |};

  print_endline "== join: who works/studies in which department ==";
  Db.with_txn db (fun txn ->
      Query.join2 db ~outer:("d", "department") ~inner:("m", "faculty")
        ~suchthat:(Parser.expr "m.dept == d")
        (fun d m ->
          Printf.printf "  %s teaches in %s\n"
            (Value.to_string (Db.get_field txn m "name"))
            (Value.to_string (Db.get_field txn d "dname"))));

  print_endline "== constraint-based specialization (paper §5) ==";
  (match
     Db.with_txn db (fun txn ->
         ignore (Db.pnew txn "female" [ ("name", Str "zed"); ("sex", Str "m") ]))
   with
  | () -> print_endline "  unexpectedly allowed"
  | exception Ode.Types.Constraint_violation { cname; _ } ->
      Printf.printf "  rejected male 'female' object (constraint %s)\n" cname);
  Db.with_txn db (fun txn ->
      ignore (Db.pnew txn "female" [ ("name", Str "freya"); ("sex", Str "f") ]);
      Printf.printf "  accepted conforming object; female extent size: %d\n"
        (Query.count db ~var:"x" ~cls:"female" ()));
  Db.close db
