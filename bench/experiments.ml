(* The derived experiment suite (see EXPERIMENTS.md): one experiment per
   performance-relevant claim of the ODE paper. Each prints a table of
   measured results plus the engine-work counters that explain them. *)

module Db = Ode.Database
module Query = Ode.Query
module Value = Ode_model.Value
module Parser = Ode_lang.Parser
module Prng = Ode_util.Prng
module Stats = Ode_util.Stats
module S = Ode.Odeset
open Report

let mem_db () = Db.open_in_memory ()

let disk_db prefix =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ode-bench-%s-%d-%f" prefix (Unix.getpid ()) (Unix.gettimeofday ()))
  in
  Db.open_ dir

let pred fmt = Printf.ksprintf Parser.expr fmt

(* ------------------------------------------------------------------ E1 *)
(* §2.4: persistent objects are manipulated "in much the same way as
   volatile objects" — what does that cost? Volatile OCaml records vs the
   persistent store (memory and disk backends). *)

type vol_item = { mutable v_qty : int; v_name : string }

let e1 () =
  section "E1  persistence vs volatile objects (paper §2.4)";
  let rows = ref [] in
  List.iter
    (fun n ->
      (* volatile baseline *)
      let rng = Prng.create 1 in
      let arr = Array.make n None in
      let _, m_vcreate =
        timed (fun () ->
            for i = 0 to n - 1 do
              arr.(i) <- Some { v_qty = Prng.int rng 100; v_name = Printf.sprintf "i%d" i }
            done)
      in
      let _, m_vupdate =
        timed (fun () ->
            Array.iter (function Some it -> it.v_qty <- it.v_qty + 1 | None -> ()) arr)
      in
      (* persistent, both backends *)
      let bench db =
        ignore (Db.define db "class it { name: string; qty: int; };");
        Db.create_cluster db "it";
        let rng = Prng.create 1 in
        let oids = Array.make n None in
        let _, m_create =
          timed (fun () ->
              Db.with_txn db (fun txn ->
                  for i = 0 to n - 1 do
                    oids.(i) <-
                      Some
                        (Db.pnew txn "it"
                           [ ("name", Str (Printf.sprintf "i%d" i)); ("qty", Int (Prng.int rng 100)) ])
                  done))
        in
        let _, m_read =
          timed (fun () ->
              Db.with_txn db (fun txn ->
                  Array.iter
                    (function Some o -> ignore (Db.get_field txn o "qty") | None -> ())
                    oids))
        in
        let _, m_update =
          timed (fun () ->
              Db.with_txn db (fun txn ->
                  Array.iter
                    (function
                      | Some o ->
                          let q = match Db.get_field txn o "qty" with Value.Int q -> q | _ -> 0 in
                          Db.set_field txn o "qty" (Value.Int (q + 1))
                      | None -> ())
                    oids))
        in
        Db.close db;
        (m_create, m_read, m_update)
      in
      let mc_m, mr_m, mu_m = bench (mem_db ()) in
      let mc_d, mr_d, mu_d = bench (disk_db "e1") in
      rows :=
        [
          [ Printf.sprintf "%d volatile" n; fops (ops_per_sec m_vcreate n); "-"; fops (ops_per_sec m_vupdate n) ];
          [ Printf.sprintf "%d persistent/mem" n; fops (ops_per_sec mc_m n); fops (ops_per_sec mr_m n); fops (ops_per_sec mu_m n) ];
          [ Printf.sprintf "%d persistent/disk" n; fops (ops_per_sec mc_d n); fops (ops_per_sec mr_d n); fops (ops_per_sec mu_d n) ];
        ]
        @ !rows)
    [ 1_000; 10_000 ];
  table ~title:"E1: object create/read/update throughput"
    ~header:[ "workload"; "create"; "read"; "update" ]
    (List.rev !rows);
  note "volatile objects are orders of magnitude faster, as expected; the point";
  note "is that persistent code is *shape-identical* and survives restarts."

(* ------------------------------------------------------------------ E2 *)
(* §3: iteration as "an alternative to using object ids to navigate". *)

let e2 () =
  section "E2  pointer navigation vs cluster iteration (paper §3, CODASYL criticism)";
  let rows = ref [] in
  List.iter
    (fun n ->
      let db = mem_db () in
      Workload.define_inventory db;
      let suppliers = 20 in
      let _, sups = Workload.load_inventory db ~items:n ~suppliers;
      in
      let target_sid = 7 in
      let target = sups.(target_sid) in
      (* (a) navigation: chase the supplier's set of refs *)
      let count_nav = ref 0 in
      let _, m_nav =
        timed (fun () ->
            Db.with_txn db (fun txn ->
                match Db.get_field txn target "items" with
                | Value.VSet refs ->
                    List.iter
                      (fun v ->
                        match v with
                        | Value.Ref o ->
                            if Db.get_field txn o "qty" <> Value.Null then incr count_nav
                        | _ -> ())
                      refs
                | _ -> ()))
      in
      (* (b) cluster scan with suchthat *)
      let count_scan = ref 0 in
      let _, m_scan =
        timed (fun () ->
            Db.with_txn db (fun txn ->
                Query.run db ~txn ~var:"x" ~cls:"stockitem"
                  ~suchthat:(pred "x.supid == %d" target_sid) (fun _ -> incr count_scan)))
      in
      (* (c) index probe *)
      (try Db.create_index db ~cls:"stockitem" ~field:"supid" with _ -> ());
      let count_idx = ref 0 in
      let _, m_idx =
        timed (fun () ->
            Db.with_txn db (fun txn ->
                Query.run db ~txn ~var:"x" ~cls:"stockitem"
                  ~suchthat:(pred "x.supid == %d" target_sid) (fun _ -> incr count_idx)))
      in
      assert (!count_nav = !count_scan && !count_scan = !count_idx);
      rows :=
        [
          Printf.sprintf "%d items, 1/%d" n suppliers;
          fsec m_nav.seconds;
          fsec m_scan.seconds;
          fsec m_idx.seconds;
          fint (Stats.objects_scanned m_scan.stats);
          fint (Stats.objects_scanned m_idx.stats);
        ]
        :: !rows;
      Db.close db)
    [ 2_000; 10_000; 30_000 ];
  table
    ~title:"E2: fetch one supplier's items (navigation vs scan vs index)"
    ~header:[ "workload"; "navigate"; "scan"; "index"; "scanned(scan)"; "scanned(idx)" ]
    (List.rev !rows);
  note "navigation wins when you already hold the refs; the iterator with an";
  note "index matches it without any application-held pointers — the paper's";
  note "answer to the pointer-chasing criticism."

(* ------------------------------------------------------------------ E3 *)
(* §3.1: suchthat/by "can be used to advantage in query optimization". *)

let e3 () =
  section "E3  suchthat selectivity sweep: full scan vs index (paper §3.1)";
  let n = 30_000 in
  let db = mem_db () in
  ignore (Db.define db "class row { k: int; pad: string; };");
  Db.create_cluster db "row";
  let rng = Prng.create 5 in
  Db.with_txn db (fun txn ->
      for _ = 1 to n do
        ignore (Db.pnew txn "row" [ ("k", Int (Prng.int rng 1_000_000)); ("pad", Str "xxxxxxxx") ])
      done);
  let run_query () =
    List.map
      (fun sel ->
        let hi = int_of_float (1e6 *. sel) in
        let q = pred "x.k < %d" hi in
        let count = ref 0 in
        let _, m =
          timed (fun () ->
              Db.with_txn db (fun txn ->
                  Query.run db ~txn ~var:"x" ~cls:"row" ~suchthat:q (fun _ -> incr count)))
        in
        (sel, !count, m))
      [ 0.0001; 0.001; 0.01; 0.1; 0.5 ]
  in
  let scans = run_query () in
  Db.create_index db ~cls:"row" ~field:"k";
  let probes = run_query () in
  let rows =
    List.map2
      (fun (sel, c1, ms) (_, c2, mi) ->
        assert (c1 = c2);
        [
          Printf.sprintf "%.4f" sel;
          fint c1;
          fsec ms.seconds;
          fsec mi.seconds;
          ffloat (ms.seconds /. (mi.seconds +. 1e-9));
          fint (Stats.objects_scanned mi.stats);
        ])
      scans probes
  in
  Db.close db;
  table
    ~title:(Printf.sprintf "E3: selectivity sweep over %d rows" n)
    ~header:[ "selectivity"; "rows out"; "full scan"; "index"; "speedup"; "idx scanned" ]
    rows;
  note "the index wins by orders of magnitude at low selectivity and the";
  note "advantage shrinks as the range covers more of the cluster."

(* ------------------------------------------------------------------ E4 *)
(* §3.1.1: iterating over cluster hierarchies. *)

let e4 () =
  section "E4  cluster-hierarchy iteration (paper §3.1.1)";
  let per_class = 10_000 in
  let db = mem_db () in
  Workload.define_university db;
  Workload.load_university db ~per_class;
  let count ?deep ?suchthat cls =
    let c = ref 0 in
    let _, m =
      timed (fun () ->
          Db.with_txn db (fun txn ->
              Query.run db ~txn ~var:"x" ~cls ?deep ?suchthat (fun _ -> incr c)))
    in
    (!c, m)
  in
  let c1, m1 = count "person" in
  let c2, m2 = count ~deep:true "person" in
  let c3, m3 = count ~deep:true ~suchthat:(Parser.expr "x is faculty") "person" in
  let c4, m4 = count "faculty" in
  Db.close db;
  table
    ~title:(Printf.sprintf "E4: extents with %d objects per class" per_class)
    ~header:[ "query"; "rows"; "time"; "objects scanned" ]
    [
      [ "forall p in person (shallow)"; fint c1; fsec m1.seconds; fint (Stats.objects_scanned m1.stats) ];
      [ "forall p in person* (deep)"; fint c2; fsec m2.seconds; fint (Stats.objects_scanned m2.stats) ];
      [ "forall p in person* suchthat p is faculty"; fint c3; fsec m3.seconds; fint (Stats.objects_scanned m3.stats) ];
      [ "forall f in faculty (direct subcluster)"; fint c4; fsec m4.seconds; fint (Stats.objects_scanned m4.stats) ];
    ];
  note "deep extents cost the union of the subclusters; 'is'-filtering the";
  note "deep extent scans everything, while targeting the right subcluster";
  note "reads only what it returns — the paper's reason for making clusters";
  note "mirror the type hierarchy."

(* ------------------------------------------------------------------ E5 *)
(* §3.1: multiple loop variables = joins. *)

let e5 () =
  section "E5  multi-variable forall: nested-loop vs index-nested-loop join (paper §3.1)";
  let rows = ref [] in
  List.iter
    (fun (s, n) ->
      let db = mem_db () in
      Workload.define_inventory db;
      ignore (Workload.load_inventory db ~items:n ~suppliers:s);
      let join () =
        let c = ref 0 in
        let _, m =
          timed (fun () ->
              Db.with_txn db (fun _ ->
                  Query.join2 db ~outer:("s", "supplier") ~inner:("i", "stockitem")
                    ~suchthat:(Parser.expr "i.supid == s.sid") (fun _ _ -> incr c)))
        in
        (!c, m)
      in
      let c_nl, m_nl = join () in
      Db.create_index db ~cls:"stockitem" ~field:"supid";
      let c_inl, m_inl = join () in
      assert (c_nl = c_inl);
      rows :=
        [
          Printf.sprintf "%d sup x %d items" s n;
          fint c_nl;
          fsec m_nl.seconds;
          fsec m_inl.seconds;
          ffloat (m_nl.seconds /. (m_inl.seconds +. 1e-9));
        ]
        :: !rows;
      Db.close db)
    [ (10, 2_000); (20, 8_000); (40, 16_000) ];
  table ~title:"E5: equi-join supplier x stockitem"
    ~header:[ "workload"; "pairs"; "nested loop"; "index NL"; "speedup" ]
    (List.rev !rows);
  note "with the index, the inner forall becomes one probe per outer row:";
  note "the join cost drops from O(S*N) to O(S + pairs)."

(* ------------------------------------------------------------------ E6 *)
(* §3.2: fixpoint queries. *)

let e6 () =
  section "E6  fixpoint queries: worklist vs naive repeated scan (paper §3.2)";
  let rows = ref [] in
  List.iter
    (fun (fanout, depth) ->
      let db = mem_db () in
      Workload.define_parts db;
      let root = Workload.load_parts_tree db ~fanout ~depth in
      (* Pre-index edges by parent for both strategies. *)
      Db.create_index db ~cls:"uses" ~field:"parent";
      let children txn p =
        let acc = ref [] in
        Query.run db ~txn ~var:"u" ~cls:"uses"
          ~env:[ ("p", Value.Ref p) ]
          ~suchthat:(Parser.expr "u.parent == p")
          (fun u ->
            match Db.get_field txn u "child" with Value.Ref c -> acc := c :: !acc | _ -> ());
        !acc
      in
      (* worklist closure *)
      let size_wl = ref 0 in
      let _, m_wl =
        timed (fun () ->
            Db.with_txn db (fun txn ->
                let w = S.worklist (S.of_list [ Value.Ref root ]) in
                S.iter_fix w (fun v ->
                    incr size_wl;
                    match v with
                    | Value.Ref p -> List.iter (fun c -> ignore (S.insert w (Value.Ref c))) (children txn p)
                    | _ -> ())))
      in
      (* naive: scan the frontier set repeatedly until no growth *)
      let size_naive = ref 0 in
      let _, m_naive =
        timed (fun () ->
            Db.with_txn db (fun txn ->
                let closure = ref (S.of_list [ Value.Ref root ]) in
                let changed = ref true in
                while !changed do
                  changed := false;
                  S.iter
                    (fun v ->
                      match v with
                      | Value.Ref p ->
                          List.iter
                            (fun c ->
                              if not (S.mem (Value.Ref c) !closure) then begin
                                closure := S.add (Value.Ref c) !closure;
                                changed := true
                              end)
                            (children txn p)
                      | _ -> ())
                    !closure
                done;
                size_naive := S.cardinal !closure))
      in
      assert (!size_wl = !size_naive);
      rows :=
        [
          Printf.sprintf "fanout %d depth %d" fanout depth;
          fint !size_wl;
          fsec m_wl.seconds;
          fsec m_naive.seconds;
          ffloat (m_naive.seconds /. (m_wl.seconds +. 1e-9));
        ]
        :: !rows;
      Db.close db)
    [ (3, 5); (3, 6); (4, 5) ];
  table ~title:"E6: transitive closure (parts explosion)"
    ~header:[ "tree"; "parts"; "worklist"; "repeated scan"; "naive/worklist" ]
    (List.rev !rows);
  note "iteration-sees-inserts (the worklist) touches each edge once; the";
  note "naive fixpoint rescans the whole closure every round."

(* ------------------------------------------------------------------ E7 *)
(* §4: versioning costs. *)

let e7 () =
  section "E7  versioning: update/read cost vs version count (paper §4)";
  let rows = ref [] in
  let per_nv = ref [] in
  List.iter
    (fun versions ->
      let db = mem_db () in
      ignore (Db.define db "class doc { body: string; n: int; };");
      Db.create_cluster db "doc";
      let d = Db.with_txn db (fun txn -> Db.pnew txn "doc" [ ("body", Str "x") ]) in
      let _, m_build =
        timed (fun () ->
            for i = 1 to versions - 1 do
              Db.with_txn db (fun txn ->
                  ignore (Db.newversion txn d);
                  Db.set_field txn d "n" (Int i))
            done)
      in
      let reads = 2_000 in
      let _, m_cur =
        timed (fun () ->
            Db.with_txn db (fun txn ->
                for _ = 1 to reads do
                  ignore (Db.get_field txn d "n")
                done))
      in
      let _, m_v0 =
        timed (fun () ->
            Db.with_txn db (fun txn ->
                for _ = 1 to reads do
                  ignore (Db.get_version txn { oid = d; ver = 0 })
                done))
      in
      let _, m_walk =
        timed (fun () ->
            Db.with_txn db (fun txn ->
                let v = ref (Db.eval txn ~vars:[ ("d", Value.Ref d) ] (Parser.expr "vprev(d)")) in
                while !v <> Value.Null do
                  v := Db.eval txn ~vars:[ ("v", !v) ] (Parser.expr "vprev(v)")
                done))
      in
      if versions > 1 then
        per_nv := (versions, m_build.seconds /. float (versions - 1)) :: !per_nv;
      rows :=
        [
          fint versions;
          Printf.sprintf "%s" (fsec (m_build.seconds /. float (max 1 (versions - 1))));
          Printf.sprintf "%.1fµs" (per_op m_cur reads);
          Printf.sprintf "%.1fµs" (per_op m_v0 reads);
          fsec m_walk.seconds;
        ]
        :: !rows;
      Db.close db)
    [ 1; 4; 16; 64; 256 ];
  table ~title:"E7: per-object version chains"
    ~header:[ "versions"; "newversion cost"; "read current"; "read v0"; "full vprev walk" ]
    (List.rev !rows);
  note "current-version reads never walk the chain (cost grows only with the";
  note "header's version list); creation pays one copy; 'no pre-defined";
  note "limit' holds — 256 versions stay cheap.";
  (* Regression guard: newversion allocates the next id in O(1) off the
     newest-first version list, so its per-call cost may grow only with the
     header encode (linear in versions), never quadratically. *)
  match (List.assoc_opt 4 !per_nv, List.assoc_opt 256 !per_nv) with
  | Some c4, Some c256 when c4 > 0.0 ->
      guard "E7.newversion_cost_ratio_256_over_4" ~hi:12.0 (c256 /. c4)
  | _ -> ()

(* ------------------------------------------------------------------ E8 *)
(* §5: constraint checking and abort cost. *)

let e8 () =
  section "E8  constraints: update overhead and abort cost (paper §5)";
  let rows = ref [] in
  List.iter
    (fun k ->
      let db = mem_db () in
      let constraints =
        String.concat "\n"
          (List.init k (fun i -> Printf.sprintf "constraint c%d: v >= %d - 1000000;" i i))
      in
      ignore (Db.define db (Printf.sprintf "class obj { v: int; %s };" constraints));
      Db.create_cluster db "obj";
      let o = Db.with_txn db (fun txn -> Db.pnew txn "obj" [ ("v", Int 0) ]) in
      let updates = 3_000 in
      let _, m =
        timed (fun () ->
            for i = 1 to updates do
              Db.with_txn db (fun txn -> Db.set_field txn o "v" (Int i))
            done)
      in
      rows :=
        [ fint k; Printf.sprintf "%.1fµs" (per_op m updates); fint (Stats.constraints_checked m.stats) ]
        :: !rows;
      Db.close db)
    [ 0; 1; 2; 4; 8 ];
  table ~title:"E8a: commit cost vs constraints per class"
    ~header:[ "constraints"; "per-update txn"; "checks performed" ]
    (List.rev !rows);
  (* abort cost vs transaction size *)
  let db = mem_db () in
  ignore (Db.define db "class g { v: int; constraint pos: v >= 0; };");
  Db.create_cluster db "g";
  let rows2 =
    List.map
      (fun w ->
        let _, m =
          timed (fun () ->
              match
                Db.with_txn db (fun txn ->
                    for i = 1 to w do
                      ignore (Db.pnew txn "g" [ ("v", Int i) ])
                    done;
                    ignore (Db.pnew txn "g" [ ("v", Int (-1)) ]))
              with
              | () -> assert false
              | exception Ode.Types.Constraint_violation _ -> ())
        in
        let leftover = Db.with_txn db (fun _ -> Query.count db ~var:"x" ~cls:"g" ()) in
        assert (leftover = 0);
        [ fint w; fsec m.seconds; "0 rows leaked" ])
      [ 10; 100; 1_000 ]
  in
  Db.close db;
  table ~title:"E8b: abort+rollback cost vs writes in the violating txn"
    ~header:[ "writes before violation"; "abort time"; "integrity" ] rows2;
  note "deferred apply makes rollback O(1) in disk work: the write set is";
  note "simply dropped, exactly the paper's abort-and-roll-back semantics."

(* ------------------------------------------------------------------ E9 *)
(* §6: trigger evaluation cost. *)

let e9 () =
  section "E9  triggers: commit latency vs active triggers (paper §6)";
  let rows = ref [] in
  List.iter
    (fun m_triggers ->
      let db = mem_db () in
      Db.set_action_printer db ignore;
      ignore
        (Db.define db
           {|class it { qty: int; trigger watch(n: int): qty < n ==> { qty := qty; }; };|});
      Db.create_cluster db "it";
      (* one object per trigger; only object 0 is updated afterwards *)
      let oids =
        Db.with_txn db (fun txn ->
            List.init (max 1 m_triggers) (fun _ -> Db.pnew txn "it" [ ("qty", Int 100) ]))
      in
      Db.with_txn db (fun txn ->
          List.iter (fun o -> ignore (Db.activate txn o "watch" [ Value.Int 0 ])) (if m_triggers = 0 then [] else oids));
      let target = List.hd oids in
      let updates = 2_000 in
      let _, m_quiet =
        timed (fun () ->
            for i = 1 to updates do
              Db.with_txn db (fun txn -> Db.set_field txn target "qty" (Int (100 + i)))
            done)
      in
      (* now fire: perpetual would re-fire; watch is once-only, so measure
         one firing commit *)
      let _, m_fire =
        timed (fun () -> Db.with_txn db (fun txn -> Db.set_field txn target "qty" (Int (-1))))
      in
      rows :=
        [
          fint m_triggers;
          Printf.sprintf "%.1fµs" (per_op m_quiet updates);
          fsec m_fire.seconds;
          fint (Stats.triggers_fired m_fire.stats);
        ]
        :: !rows;
      Db.close db)
    [ 0; 10; 100; 1_000 ];
  table ~title:"E9: per-commit trigger evaluation (only touched objects are checked)"
    ~header:[ "active triggers"; "quiet commit"; "firing commit"; "fired" ]
    (List.rev !rows);
  note "commit cost is independent of the total number of activations in the";
  note "database: conditions are evaluated only for objects the transaction";
  note "touched (end-of-transaction semantics, weak coupling for actions)."

(* ----------------------------------------------------------------- E10 *)
(* Durability: commit batching and recovery time. *)

let e10 () =
  section "E10  durability: commit cost and recovery time";
  let rows = ref [] in
  List.iter
    (fun batch ->
      let db = disk_db "e10" in
      ignore (Db.define db "class r { v: int; };");
      Db.create_cluster db "r";
      let total = 2_000 in
      let _, m =
        timed (fun () ->
            let done_ = ref 0 in
            while !done_ < total do
              Db.with_txn db (fun txn ->
                  for _ = 1 to batch do
                    ignore (Db.pnew txn "r" [ ("v", Int !done_) ]);
                    incr done_
                  done)
            done)
      in
      rows :=
        [
          fint batch;
          fops (ops_per_sec m total);
          fint (Stats.wal_syncs m.stats);
          Printf.sprintf "%.1fµs" (per_op m total);
        ]
        :: !rows;
      Db.close db)
    [ 1; 10; 100; 1_000 ];
  table ~title:"E10a: insert throughput vs transaction batch size (on disk, fsync per commit)"
    ~header:[ "ops/txn"; "throughput"; "wal syncs"; "per op" ]
    (List.rev !rows);
  (* recovery time vs wal length *)
  let rows2 =
    List.map
      (fun txns ->
        let dir =
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "ode-rec-%d-%d" (Unix.getpid ()) txns)
        in
        let db = Db.open_ ~wal_checkpoint_bytes:max_int dir in
        ignore (Db.define db "class r { v: int; };");
        Db.create_cluster db "r";
        for i = 1 to txns do
          Db.with_txn db (fun txn -> ignore (Db.pnew txn "r" [ ("v", Int i) ]))
        done;
        let wal_bytes = Ode.Txn.wal_bytes db in
        (* crash: reopen without close *)
        let _, m =
          timed (fun () ->
              let db2 = Db.open_ dir in
              let n = Db.with_txn db2 (fun _ -> Query.count db2 ~var:"x" ~cls:"r" ()) in
              assert (n = txns);
              Db.close db2)
        in
        Db.close db;
        [ fint txns; Printf.sprintf "%dkB" (wal_bytes / 1024); fsec m.seconds ])
      [ 100; 1_000; 5_000 ]
  in
  table ~title:"E10b: recovery (replay) time vs un-checkpointed WAL"
    ~header:[ "committed txns"; "wal size"; "reopen+verify" ] rows2;
  note "group commit amortizes the fsync; recovery replays the committed";
  note "tail linearly and is bounded by checkpointing."

(* ----------------------------------------------------------------- E11 *)
(* §2.6: set operations. *)

let e11 () =
  section "E11  set values: Odeset vs a naive list (paper §2.6)";
  let rows = ref [] in
  List.iter
    (fun n ->
      let rng = Prng.create 3 in
      let elems = Array.init n (fun _ -> Value.Int (Prng.int rng (4 * n))) in
      let _, m_build =
        timed (fun () -> ignore (S.of_list (Array.to_list elems)))
      in
      let s = S.of_list (Array.to_list elems) in
      let probes = 2_000 in
      let _, m_mem =
        timed (fun () ->
            for i = 0 to probes - 1 do
              ignore (S.mem elems.(i mod n) s)
            done)
      in
      (* naive: list with exists *)
      let l = Array.to_list elems in
      let _, m_lmem =
        timed (fun () ->
            for i = 0 to probes - 1 do
              ignore (List.exists (Value.equal elems.(i mod n)) l)
            done)
      in
      rows :=
        [
          fint n;
          fsec m_build.seconds;
          Printf.sprintf "%.2fµs" (per_op m_mem probes);
          Printf.sprintf "%.2fµs" (per_op m_lmem probes);
        ]
        :: !rows)
    [ 100; 1_000; 10_000 ];
  table ~title:"E11: set build and membership"
    ~header:[ "elements"; "normalize"; "mem (set)"; "mem (raw list)" ]
    (List.rev !rows);
  note "normalized sets give order-independent equality (needed for value";
  note "semantics) at modest cost; membership is comparable at these sizes."

(* ----------------------------------------------------------------- E12 *)
(* Substrate ablation: the B+tree earning its keep. *)

let e12 () =
  section "E12  substrate ablation: B+tree vs linear structures";
  let module B = Ode_index.Bptree in
  let rows = ref [] in
  List.iter
    (fun n ->
      let t = B.attach (Ode_storage.Buffer_pool.create ~capacity:256 (Ode_storage.Disk.in_memory ())) in
      let rng = Prng.create 9 in
      let keys = Array.init n (fun i -> Ode_util.Key.of_int i) in
      Prng.shuffle rng keys;
      let _, m_ins =
        timed (fun () -> Array.iter (fun k -> B.insert t k "v") keys)
      in
      let probes = 5_000 in
      let _, m_find =
        timed (fun () ->
            for i = 0 to probes - 1 do
              ignore (B.find t keys.(i mod n))
            done)
      in
      (* association list baseline *)
      let assoc = Array.to_list (Array.map (fun k -> (k, "v")) keys) in
      let _, m_assoc =
        timed (fun () ->
            for i = 0 to min probes 500 - 1 do
              ignore (List.assoc_opt keys.(i mod n) assoc)
            done)
      in
      let range_n = ref 0 in
      let _, m_range =
        timed (fun () ->
            B.iter_range t ~lo:(Ode_util.Key.of_int (n / 2)) ~hi:(Ode_util.Key.of_int (n / 2 + 1000))
              (fun _ _ ->
                incr range_n;
                true))
      in
      rows :=
        [
          fint n;
          fops (ops_per_sec m_ins n);
          Printf.sprintf "%.2fµs" (per_op m_find probes);
          Printf.sprintf "%.2fµs" (per_op m_assoc (min probes 500));
          Printf.sprintf "%s (%d rows)" (fsec m_range.seconds) !range_n;
          fint (B.height t);
        ]
        :: !rows)
    [ 1_000; 10_000; 50_000 ];
  table ~title:"E12: B+tree insert/lookup/range vs association list"
    ~header:[ "keys"; "insert"; "find"; "assoc find"; "range 1000"; "height" ]
    (List.rev !rows);
  note "log-time probes and sorted range scans are what make E3/E5's index";
  note "plans win; a linear structure degrades with extent size."

(* ----------------------------------------------------------------- E13 *)
(* Ablation: [by x.f] streamed in index order vs materialize-and-sort. The
   paper's §3.1 footnote that suchthat/by "can be used to advantage in query
   optimization" covers ordering too. *)

let e13 () =
  section "E13  ablation: by-clause via index order vs sort (paper §3.1)";
  let rows = ref [] in
  List.iter
    (fun n ->
      let db = mem_db () in
      ignore (Db.define db "class s { k: int; w: int; };");
      Db.create_cluster db "s";
      let rng = Prng.create 21 in
      Db.with_txn db (fun txn ->
          for _ = 1 to n do
            ignore (Db.pnew txn "s" [ ("k", Int (Prng.int rng 1_000_000)); ("w", Int 1) ])
          done);
      let by = (Parser.expr "x.k", Ode_lang.Ast.Asc) in
      let ordered () =
        let last = ref min_int and ok = ref true and c = ref 0 in
        let _, m =
          timed (fun () ->
              Db.with_txn db (fun txn ->
                  Query.run db ~txn ~var:"x" ~cls:"s" ~by (fun oid ->
                      incr c;
                      match Db.get_field txn oid "k" with
                      | Value.Int k ->
                          if k < !last then ok := false;
                          last := k
                      | _ -> ())))
        in
        assert (!ok && !c = n);
        m
      in
      let m_sort = ordered () in
      Db.create_index db ~cls:"s" ~field:"k";
      let m_idx = ordered () in
      rows :=
        [
          fint n;
          fsec m_sort.seconds;
          fsec m_idx.seconds;
          ffloat (m_sort.seconds /. (m_idx.seconds +. 1e-9));
        ]
        :: !rows;
      Db.close db)
    [ 5_000; 20_000 ];
  table ~title:"E13: forall ... by x.k asc over n rows"
    ~header:[ "rows"; "sort plan"; "index-order plan"; "speedup" ]
    (List.rev !rows);
  note "with an index on the by-field the engine streams in key order and";
  note "skips both the sort and the per-row key evaluation."

(* ----------------------------------------------------------------- E14 *)
(* Substrate ablation: linear hashing vs B+tree for the index role. *)

let e14 () =
  section "E14  ablation: linear-hash index vs B+tree";
  let module B = Ode_index.Bptree in
  let module H = Ode_index.Hash_index in
  let rows = ref [] in
  List.iter
    (fun n ->
      let bt = B.attach (Ode_storage.Buffer_pool.create ~capacity:512 (Ode_storage.Disk.in_memory ())) in
      let ht = H.attach (Ode_storage.Buffer_pool.create ~capacity:512 (Ode_storage.Disk.in_memory ())) in
      let keys = Array.init n (fun i -> Ode_util.Key.of_int i) in
      let rng = Prng.create 31 in
      Prng.shuffle rng keys;
      let _, m_bins = timed (fun () -> Array.iter (fun k -> B.insert bt k "v") keys) in
      let _, m_hins = timed (fun () -> Array.iter (fun k -> H.insert ht k "v") keys) in
      let probes = 10_000 in
      let _, m_bfind =
        timed (fun () ->
            for i = 0 to probes - 1 do
              ignore (B.find bt keys.(i mod n))
            done)
      in
      let _, m_hfind =
        timed (fun () ->
            for i = 0 to probes - 1 do
              ignore (H.find ht keys.(i mod n))
            done)
      in
      (* The structural trade-off: the B+tree can range-scan, the hash
         index cannot (it would have to visit everything). *)
      let hits = ref 0 in
      let _, m_brange =
        timed (fun () ->
            B.iter_range bt ~lo:(Ode_util.Key.of_int 0) ~hi:(Ode_util.Key.of_int 500) (fun _ _ ->
                incr hits;
                true))
      in
      rows :=
        [
          fint n;
          fops (ops_per_sec m_bins n);
          fops (ops_per_sec m_hins n);
          Printf.sprintf "%.2fµs" (per_op m_bfind probes);
          Printf.sprintf "%.2fµs" (per_op m_hfind probes);
          Printf.sprintf "%s (%d)" (fsec m_brange.seconds) !hits;
        ]
        :: !rows)
    [ 10_000; 50_000 ];
  table ~title:"E14: point-lookup substrates"
    ~header:[ "keys"; "bt insert"; "hash insert"; "bt find"; "hash find"; "bt range 500" ]
    (List.rev !rows);
  note "linear hashing wins on inserts (no splits of sorted nodes); the";
  note "B+tree's decoded-node cache makes its probes competitive, and only";
  note "it supports the range and ordered plans of E3/E5/E13 — which is why";
  note "the engine's secondary indexes are B+trees."

(* ------------------------------------------------------------------ E15 *)
(* Crash recovery: reopening after simulated process death replays the
   committed WAL tail. How does recovery time scale with the WAL size, and
   what does the auto-checkpoint threshold therefore buy? *)

let e15 () =
  section "E15  recovery time vs WAL size (crash + replay)";
  let rows = ref [] in
  List.iter
    (fun txns ->
      let dir =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "ode-bench-e15-%d-%d-%f" txns (Unix.getpid ()) (Unix.gettimeofday ()))
      in
      (* Keep the whole history in the WAL: no auto-checkpoint. *)
      let db = Db.open_ ~wal_checkpoint_bytes:max_int dir in
      ignore (Db.define db "class r { seq: int; payload: string; };");
      Db.create_cluster db "r";
      Db.create_index db ~cls:"r" ~field:"seq";
      let rng = Prng.create 15 in
      for i = 0 to txns - 1 do
        Db.with_txn db (fun txn ->
            ignore
              (Db.pnew txn "r"
                 [
                   ("seq", Value.Int i);
                   ("payload", Value.Str (String.init (20 + Prng.int rng 80) (fun _ -> 'x')));
                 ]))
      done;
      let wal_bytes = (Unix.stat (Filename.concat dir "wal.log")).Unix.st_size in
      Db.crash db;
      let db2, m_recover = timed (fun () -> Db.open_ dir) in
      let replayed = Stats.recovery_replayed m_recover.stats in
      Db.close db2;
      rows :=
        [
          fint txns;
          Printf.sprintf "%dK" (wal_bytes / 1024);
          fsec m_recover.seconds;
          fint replayed;
          fops (ops_per_sec m_recover replayed);
        ]
        :: !rows)
    [ 100; 500; 2000; 5000 ];
  table ~title:"E15: crash recovery cost"
    ~header:[ "txns"; "wal"; "recovery"; "ops replayed"; "replay ops/s" ]
    (List.rev !rows);
  note "recovery is linear in the WAL tail: replay re-applies every";
  note "committed op since the last checkpoint, then flushes and resets the";
  note "log. The auto-checkpoint threshold (default 8MB) caps this tail, so";
  note "it directly bounds worst-case reopen time after a crash."

(* ------------------------------------------------------------------ E16 *)
(* Decoded-object cache (PR 2): a repeated non-sargable predicate scan pays
   header + version-record decode per candidate on every run when uncached;
   with the cache the second run is served from decoded entries. *)

let e16 () =
  section "E16  decoded-object cache: repeated-predicate scan (cold vs warm)";
  let n = scaled 20_000 in
  (* The pool scales with the data so the uncached working set exceeds it at
     every BENCH_SCALE — same shape, smaller numbers. *)
  let pool_pages = max 64 (scaled 512) in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ode-bench-e16-%d-%f" (Unix.getpid ()) (Unix.gettimeofday ()))
  in
  let db = Db.open_ ~pool_pages dir in
  ignore (Db.define db "class m { a: int; b: int; c: int; pad: string; };");
  Db.create_cluster db "m";
  let rng = Prng.create 16 in
  let pad = String.make 1_024 'x' in
  let made = ref 0 in
  while !made < n do
    let k = min 2_000 (n - !made) in
    Db.with_txn db (fun txn ->
        for _ = 1 to k do
          ignore
            (Db.pnew txn "m"
               [
                 ("a", Int (Prng.int rng 1_000));
                 ("b", Int (Prng.int rng 1_000));
                 ("c", Int (Prng.int rng 2_000));
                 ("pad", Str pad);
               ])
        done);
    made := !made + k
  done;
  Db.close db;
  (* Three fields keep the predicate non-sargable: every run walks the whole
     extent and decodes every candidate. *)
  let q = pred "x.a + x.b > x.c" in
  let run db () = Query.count db ~var:"x" ~cls:"m" ~suchthat:q () in
  (* Best-of-3 damps scheduler/OS-cache noise in the single-digit-ms runs. *)
  let best f =
    let runs =
      List.init 3 (fun _ ->
          (* settle outstanding major-GC work so a collection triggered by
             the previous variant's allocations doesn't land mid-run *)
          Gc.full_major ();
          snd (timed f))
    in
    List.fold_left (fun a b -> if b.seconds < a.seconds then b else a) (List.hd runs)
      (List.tl runs)
  in
  (* Uncached: one priming run so the measurement sees a warm buffer pool —
     the comparison isolates per-access fetch/decode cost, not cold disk. *)
  let db0 = Db.open_ ~pool_pages ~object_cache:0 dir in
  let r0 = run db0 () in
  let m_uncached = best (fun () -> if run db0 () <> r0 then failwith "E16: count drift") in
  Db.close db0;
  let db1 = Db.open_ ~pool_pages ~object_cache:(4 * n) dir in
  let r1, m_cold = timed (run db1) in
  let m_warm = best (fun () -> if run db1 () <> r0 then failwith "E16: count drift") in
  Db.close db1;
  if r0 <> r1 then failwith "E16: count mismatch across variants";
  let cell m =
    [
      fsec m.seconds;
      fint (Stats.objects_fetched m.stats);
      Printf.sprintf "%d/%d" (Stats.obj_cache_hits m.stats)
        (Stats.obj_cache_misses m.stats);
    ]
  in
  table
    ~title:(Printf.sprintf "E16: scan of %d objects, non-sargable 3-field predicate" n)
    ~header:[ "variant"; "time"; "fetched"; "ocache hit/miss" ]
    [
      "uncached (pool warm)" :: cell m_uncached;
      "cached, cold" :: cell m_cold;
      "cached, warm" :: cell m_warm;
    ];
  let speedup = m_uncached.seconds /. max 1e-9 m_warm.seconds in
  guard "E16.warm_speedup" ~lo:3.0 speedup;
  metric "E16.warm_fetched" (float (Stats.objects_fetched m_warm.stats));
  note "warm runs decode nothing: every header/field access is an ocache hit,";
  note "so repeated predicate evaluation costs hash lookups, not codec work."

(* ------------------------------------------------------------------ E17 *)
(* Streaming cursors (PR 2): exists stops at the first match, so its cost —
   pages read and time — must not grow with extent size. A full count over
   the same extent shows what early exit saves. *)

let e17 () =
  section "E17  early-exit exists: cost vs extent size";
  let sizes = List.map scaled [ 5_000; 20_000; 80_000 ] in
  let iters = 200 in
  let rows = ref [] in
  let per = ref [] in
  List.iter
    (fun n ->
      let db = mem_db () in
      ignore (Db.define db "class e { k: int; pad: string; };");
      Db.create_cluster db "e";
      (* First-created object is the only match; it is also first in extent
         key order, so exists touches exactly one object. *)
      ignore (Db.with_txn db (fun txn -> Db.pnew txn "e" [ ("k", Int 42); ("pad", Str "") ]));
      let made = ref 1 in
      while !made < n do
        let k = min 2_000 (n - !made) in
        Db.with_txn db (fun txn ->
            for i = 1 to k do
              ignore (Db.pnew txn "e" [ ("k", Int (1_000 + !made + i)); ("pad", Str "") ])
            done);
        made := !made + k
      done;
      let q = pred "x.k == 42" in
      let _, m_exists =
        timed (fun () ->
            for _ = 1 to iters do
              if not (Query.exists db ~var:"x" ~cls:"e" ~suchthat:q ()) then
                failwith "E17: exists missed its match"
            done)
      in
      let _, m_count = timed (fun () -> ignore (Query.count db ~var:"x" ~cls:"e" ~suchthat:q ())) in
      per := (n, per_op m_exists iters) :: !per;
      rows :=
        [
          fint n;
          Printf.sprintf "%.1fµs" (per_op m_exists iters);
          ffloat (float (Stats.cursor_pages_read m_exists.stats) /. float iters);
          fsec m_count.seconds;
          fint (Stats.cursor_pages_read m_count.stats);
        ]
        :: !rows;
      Db.close db)
    sizes;
  table ~title:"E17: exists (early exit) vs full count of the same extent"
    ~header:[ "extent"; "exists/op"; "pages/op"; "full count"; "count pages" ]
    (List.rev !rows);
  (match (List.assoc_opt (List.nth sizes 0) !per, List.assoc_opt (List.nth sizes 2) !per) with
  | Some small, Some large when small > 0.0 ->
      guard "E17.exists_cost_ratio_largest_over_smallest" ~hi:5.0 (large /. small)
  | _ -> ());
  note "exists reads one leaf and scans one object no matter how large the";
  note "extent is; the full count's pages-read column grows linearly — the";
  note "cursor's early exit is the whole difference."

(* ------------------------------------------------------------------ E18 *)
(* Observability overhead (PR 3): the tracer and histograms are compiled in,
   so their *disabled* cost — a flag check per emit point — must be noise on
   a hot scan. The guard holds the disabled-default configuration to ≤5% of
   a build-out baseline with both subsystems off; the fully-traced variant is
   reported (spans allocate and timestamp) but not guarded. Side products:
   a sample Chrome trace and a histogram dump, uploaded as CI artifacts. *)

let e18 () =
  section "E18  tracing/histogram overhead on a hot scan (disabled vs on)";
  let module T = Ode_util.Trace in
  let module H = Ode_util.Histogram in
  let n = scaled 20_000 in
  let db = mem_db () in
  ignore (Db.define db "class m { a: int; b: int; c: int; pad: string; };");
  Db.create_cluster db "m";
  let rng = Prng.create 18 in
  let pad = String.make 64 'x' in
  let made = ref 0 in
  while !made < n do
    let k = min 2_000 (n - !made) in
    Db.with_txn db (fun txn ->
        for _ = 1 to k do
          ignore
            (Db.pnew txn "m"
               [
                 ("a", Int (Prng.int rng 1_000));
                 ("b", Int (Prng.int rng 1_000));
                 ("c", Int (Prng.int rng 2_000));
                 ("pad", Str pad);
               ])
        done);
    made := !made + k
  done;
  (* Non-sargable predicate: every run walks and decodes the whole extent,
     passing through every per-candidate emit point. *)
  let q = pred "x.a + x.b > x.c" in
  let scan () = Query.count db ~var:"x" ~cls:"m" ~suchthat:q () in
  let expected = scan () in
  (* Calibrate so a round is ~150ms of alternating scans. *)
  let _, m_once = timed (fun () -> ignore (scan ())) in
  let reps = max 3 (min 150 (int_of_float (0.075 /. max 1e-6 m_once.seconds))) in
  (* The disabled cost per scan is one load+branch per emit point — far below
     this container's scheduler jitter. Alternate single baseline/measured
     scans within a round (so any slow stretch hits both variants equally)
     and guard on the median of the per-round ratios, which shrugs off a
     round that lands on a throttled period. *)
  T.set_enabled false;
  let timed_scan () =
    let t0 = now () in
    if scan () <> expected then failwith "E18: count drift";
    now () -. t0
  in
  let round () =
    Gc.full_major ();
    let tb = ref 0.0 and td = ref 0.0 in
    for _ = 1 to reps do
      H.set_enabled false;
      tb := !tb +. timed_scan ();
      H.set_enabled true;
      td := !td +. timed_scan ()
    done;
    H.set_enabled false;
    (!tb, !td)
  in
  let rounds = List.init 5 (fun _ -> round ()) in
  let t_baseline = List.fold_left (fun a (b, _) -> min a b) Float.max_float rounds in
  let t_disabled = List.fold_left (fun a (_, d) -> min a d) Float.max_float rounds in
  let median_ratio =
    let rs = List.sort compare (List.map (fun (b, d) -> d /. max 1e-9 b) rounds) in
    List.nth rs (List.length rs / 2)
  in
  H.set_enabled true;
  T.set_enabled true;
  T.clear ();
  let t_traced =
    Gc.full_major ();
    let t = ref 0.0 in
    for _ = 1 to reps do
      t := !t +. timed_scan ()
    done;
    !t
  in
  T.dump "BENCH_trace_sample.json";
  let oc = open_out "BENCH_metrics.txt" in
  output_string oc (H.summary ());
  close_out oc;
  (* Restore process defaults: histograms on, tracer off and empty. *)
  T.set_enabled false;
  T.clear ();
  let row name s = [ name; fsec s; Printf.sprintf "%.1fµs" (s /. float reps *. 1e6) ] in
  table
    ~title:
      (Printf.sprintf "E18: %d-object scan, %d alternating reps/round, best round" n reps)
    ~header:[ "variant"; "time"; "per scan" ]
    [
      row "baseline (trace off, hist off)" t_baseline;
      row "default (trace off, hist on)" t_disabled;
      row "traced (trace on, hist on)" t_traced;
    ];
  guard "E18.disabled_overhead" ~hi:1.05 median_ratio;
  metric "E18.tracing_overhead" (t_traced /. max 1e-9 t_baseline);
  Db.close db;
  note "the compiled-in observability hooks cost one load+branch when off;";
  note "wrote BENCH_trace_sample.json (chrome://tracing) and BENCH_metrics.txt."

(* ------------------------------------------------------------------ E19 *)
(* Serving layer (PR 4): the paper's "programs as transactions against a
   shared store" run here over a real socket — a forked ode-served event
   loop on a temp disk database, hit by K closed-loop client processes
   issuing a mixed autocommit exec/query workload over loopback. Reports
   end-to-end throughput plus p50/p95/p99 request latency straight from the
   server's own [server.request] histogram (fetched through a control
   session's [.hist]); guards that the run completes with zero protocol
   errors and that a SIGTERM graceful shutdown leaves the store clean. *)

let e19 () =
  section "E19  network serving: closed-loop multi-client load over loopback";
  let module Server = Ode_served.Server in
  let module Client = Ode_served.Client in
  let clients = 4 in
  let per_client = scaled 300 in
  let db_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ode-bench-e19-%d-%f" (Unix.getpid ()) (Unix.gettimeofday ()))
  in
  let srv_pid, port = Server.spawn ~db_dir () in
  let connect () = Client.connect ~timeout:30. ~host:"127.0.0.1" ~port () in
  let ctl = connect () in
  ignore
    (Client.exec ctl
       "class kv { k: int; v: string; }; create cluster kv; create index on kv(k);");
  (* K closed-loop client processes: each statement is its own autocommit
     transaction, so sessions interleave without touching the exclusive
     explicit-txn slot. A child's exit code is its protocol-error count. *)
  flush stdout;
  flush stderr;
  let t0 = now () in
  let pids =
    List.init clients (fun i ->
        match Unix.fork () with
        | 0 ->
            let errors = ref 0 in
            (try
               let c = connect () in
               let rng = Prng.create (1900 + i) in
               for j = 1 to per_client do
                 (try
                    if Prng.int rng 10 < 7 then
                      ignore
                        (Client.exec c
                           (Printf.sprintf "pnew kv { k = %d, v = \"c%d-%d\" };"
                              (Prng.int rng 100_000) i j))
                    else
                      ignore
                        (Client.query c
                           (Printf.sprintf "forall x in kv suchthat x.k == %d"
                              (Prng.int rng 100_000)))
                  with _ -> incr errors)
               done;
               Client.close c
             with _ -> incr errors);
            Unix._exit (min 100 !errors)
        | pid -> pid)
  in
  let protocol_errors =
    List.fold_left
      (fun acc pid ->
        let _, status = Unix.waitpid [] pid in
        acc + (match status with Unix.WEXITED n -> n | _ -> 1))
      0 pids
  in
  let elapsed = now () -. t0 in
  let total = clients * per_client in
  (* Latency percentiles come from the server process itself: its
     [server.request] histogram timed every request it handled. *)
  let hist = Client.dot ctl ".hist server.request" in
  let hcount, p50_ns, p95_ns, p99_ns =
    try
      Scanf.sscanf hist "server.request count %d p50 %d p95 %d p99 %d"
        (fun c a b d -> (c, a, b, d))
    with _ -> (0, 0, 0, 0)
  in
  (try Client.close ctl with _ -> ());
  (* Graceful shutdown: drain, abort leftovers, exit 0, store recoverable. *)
  Unix.kill srv_pid Sys.sigterm;
  let _, srv_status = Unix.waitpid [] srv_pid in
  let clean_exit = srv_status = Unix.WEXITED 0 in
  let db = Db.open_ db_dir in
  let verify_ok = match Ode.Verify.run db with Ok () -> true | Error _ -> false in
  let rows = Query.count db ~var:"x" ~cls:"kv" () in
  Db.close db;
  let ms ns = float ns /. 1e6 in
  table
    ~title:
      (Printf.sprintf "E19: %d clients x %d requests, loopback, autocommit mix (70%% exec / 30%% query)"
         clients per_client)
    ~header:[ "measure"; "value" ]
    [
      [ "throughput"; fops (float total /. elapsed) ];
      [ "wall time"; fsec elapsed ];
      [ "p50 latency"; Printf.sprintf "%.3fms" (ms p50_ns) ];
      [ "p95 latency"; Printf.sprintf "%.3fms" (ms p95_ns) ];
      [ "p99 latency"; Printf.sprintf "%.3fms" (ms p99_ns) ];
      [ "requests timed (server)"; fint hcount ];
      [ "rows committed"; fint rows ];
    ];
  guard "E19.protocol_errors" ~hi:0.0 (float protocol_errors);
  guard "E19.clean_shutdown" ~lo:1.0 (if clean_exit then 1.0 else 0.0);
  guard "E19.post_shutdown_verify" ~lo:1.0 (if verify_ok then 1.0 else 0.0);
  metric "E19.throughput_rps" (float total /. elapsed);
  metric "E19.p50_ms" (ms p50_ns);
  metric "E19.p95_ms" (ms p95_ns);
  metric "E19.p99_ms" (ms p99_ns);
  metric "E19.rows_committed" (float rows);
  note "every request is a framed round trip through the select loop; the";
  note "store reopened clean after SIGTERM with all autocommits durable."

(* ------------------------------------------------------------------ E20 *)
(* Group commit (PR 5): the serving loop batches every autocommit executed
   in one scheduler tick under a single shared WAL fsync, acknowledging the
   whole batch before any reply hits a socket. This experiment boots the
   same multi-client closed loop as E19 — but with a pure commit workload,
   where the fsync dominates — once per durability level and compares
   end-to-end throughput. [full] pays one fsync per commit; [group] pays one
   per tick (replies still wait for it); [async] replies without waiting.
   The server's own counters supply the batching evidence: [wal_syncs] must
   stay well below the commit count in group mode, and [wal_sync_saved]
   counts exactly the fsyncs the batching avoided. *)

let e20 () =
  section "E20  group commit: shared fsync vs per-commit fsync under load";
  let module Server = Ode_served.Server in
  let module Client = Ode_served.Client in
  let clients = 4 in
  (* Floor the workload: below ~150 commits/client the whole run fits in a
     few milliseconds and the measured rates are scheduler-noise, which
     would defeat the CI regression compare against the committed
     baseline. The floor keeps even BENCH_SCALE=0.1 runs comparable. *)
  let per_client = max 150 (scaled 300) in
  (* Streaming clients: each keeps [depth] pipelined requests in flight
     (Client.exec_many) — offered-load throughput methodology, same spirit
     as pgbench's pipeline mode — so the server's batch scheduler actually
     sees multi-request ticks. Every request is still its own autocommit
     transaction. *)
  let depth = 25 in
  let total = clients * per_client in
  (* Parse "name 123" out of a [.stats] dump. *)
  let counter dump name =
    let prefix = name ^ " " in
    let plen = String.length prefix in
    let rec find i =
      if i + plen > String.length dump then None
      else if String.sub dump i plen = prefix then Some (i + plen)
      else find (i + 1)
    in
    match find 0 with
    | None -> 0
    | Some p ->
        let e = ref p in
        while !e < String.length dump && dump.[!e] >= '0' && dump.[!e] <= '9' do
          incr e
        done;
        if !e = p then 0 else int_of_string (String.sub dump p (!e - p))
  in
  let run mode =
    let db_dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "ode-bench-e20-%s-%d-%f" (Db.durability_name mode) (Unix.getpid ())
           (Unix.gettimeofday ()))
    in
    (* The server and client processes all fork from this (by now
       large-heaped) bench process; compact first so inherited garbage
       doesn't tax their GCs and flatten the mode-to-mode ratio. *)
    Gc.compact ();
    let srv_pid, port = Server.spawn ~durability:mode ~db_dir () in
    let connect () = Client.connect ~timeout:60. ~host:"127.0.0.1" ~port () in
    let ctl = connect () in
    ignore (Client.exec ctl "class kv { k: int; v: string; }; create cluster kv;");
    (* Zero the counters after setup so syncs/commits reflect the load. *)
    ignore (Client.dot ctl ".stats reset");
    flush stdout;
    flush stderr;
    (* Ready/go barrier: children fork and connect outside the timed
       window, so the measured rate is the steady streaming phase and stays
       comparable across BENCH_SCALE settings. *)
    let ready_r, ready_w = Unix.pipe () in
    let go_r, go_w = Unix.pipe () in
    let pids =
      List.init clients (fun i ->
          match Unix.fork () with
          | 0 ->
              let errors = ref 0 in
              (try
                 let c = connect () in
                 ignore (Unix.write_substring ready_w "r" 0 1);
                 ignore (Unix.read go_r (Bytes.create 1) 0 1);
                 let sent = ref 0 in
                 while !sent < per_client do
                   let n = min depth (per_client - !sent) in
                   let batch =
                     List.init n (fun k ->
                         let j = !sent + k + 1 in
                         Printf.sprintf "pnew kv { k = %d, v = \"c%d-%d\" };"
                           ((i * per_client) + j) i j)
                   in
                   List.iter
                     (function Ok _ -> () | Error _ -> incr errors)
                     (Client.exec_many c batch);
                   sent := !sent + n
                 done;
                 Client.close c
               with _ -> incr errors);
              Unix._exit (min 100 !errors)
          | pid -> pid)
    in
    let b = Bytes.create 1 in
    for _ = 1 to clients do
      ignore (Unix.read ready_r b 0 1)
    done;
    let t0 = now () in
    ignore (Unix.write_substring go_w "gggggggggggggggg" 0 clients);
    let protocol_errors =
      List.fold_left
        (fun acc pid ->
          let _, status = Unix.waitpid [] pid in
          acc + (match status with Unix.WEXITED n -> n | _ -> 1))
        0 pids
    in
    let elapsed = now () -. t0 in
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      [ ready_r; ready_w; go_r; go_w ];
    (* The batching evidence, read from the live server before shutdown.
       Counters only — they were reset after setup; the wal.group_size
       histogram is no good here because the forked server inherited the
       bench process's histogram memory. *)
    let stats = Client.dot ctl ".stats" in
    let syncs = counter stats "wal_syncs" in
    let saved = counter stats "wal_sync_saved" in
    (try Client.close ctl with _ -> ());
    Unix.kill srv_pid Sys.sigterm;
    let _, srv_status = Unix.waitpid [] srv_pid in
    let clean_exit = srv_status = Unix.WEXITED 0 in
    let db = Db.open_ db_dir in
    let verify_ok = match Ode.Verify.run db with Ok () -> true | Error _ -> false in
    let rows = Query.count db ~var:"x" ~cls:"kv" () in
    Db.close db;
    (float total /. elapsed, elapsed, protocol_errors, syncs, saved, clean_exit, verify_ok,
     rows)
  in
  (* Best of three repeats per mode. Each mode's timed phase lasts tens to
     hundreds of milliseconds, and scheduler noise on a shared box is
     one-sided (it only ever slows a run down), so the fastest repeat is
     the most faithful reading — and the one stable enough for the CI
     regression compare. Correctness signals are folded across all
     repeats: any repeat's protocol error, unclean exit, or failed verify
     still trips its guard. *)
  let repeats = 3 in
  let run_best mode =
    let runs = List.init repeats (fun _ -> run mode) in
    let best =
      List.fold_left
        (fun acc r ->
          let rps, _, _, _, _, _, _, _ = r and b_rps, _, _, _, _, _, _, _ = acc in
          if rps > b_rps then r else acc)
        (List.hd runs) runs
    in
    let rps, el, _, syncs, saved, _, _, rows = best in
    let err = List.fold_left (fun a (_, _, e, _, _, _, _, _) -> a + e) 0 runs in
    let clean = List.for_all (fun (_, _, _, _, _, c, _, _) -> c) runs in
    let ok = List.for_all (fun (_, _, _, _, _, _, v, _) -> v) runs in
    let min_rows =
      List.fold_left (fun a (_, _, _, _, _, _, _, r) -> min a r) rows runs
    in
    (rps, el, err, syncs, saved, clean, ok, min_rows)
  in
  let f_rps, f_el, f_err, f_syncs, _, f_clean, f_ok, f_rows = run_best Db.Full in
  let g_rps, g_el, g_err, g_syncs, g_saved, g_clean, g_ok, g_rows = run_best Db.Group in
  let a_rps, a_el, a_err, a_syncs, _, a_clean, a_ok, a_rows = run_best Db.Async in
  let row name rps el syncs rows =
    [
      name; fops rps; fsec el; fint syncs;
      Printf.sprintf "%.3f" (float syncs /. float total); fint rows;
    ]
  in
  table
    ~title:
      (Printf.sprintf
         "E20: %d streaming clients x %d autocommit inserts (pipeline depth %d) per durability level"
         clients per_client depth)
    ~header:[ "durability"; "commits/s"; "wall"; "wal syncs"; "syncs/commit"; "rows" ]
    [
      row "full (fsync per commit)" f_rps f_el f_syncs f_rows;
      row "group (fsync per batch)" g_rps g_el g_syncs g_rows;
      row "async (no wait)" a_rps a_el a_syncs a_rows;
    ];
  let all_clean = f_clean && g_clean && a_clean and all_ok = f_ok && g_ok && a_ok in
  guard "E20.protocol_errors" ~hi:0.0 (float (f_err + g_err + a_err));
  guard "E20.clean_shutdown" ~lo:1.0 (if all_clean then 1.0 else 0.0);
  guard "E20.post_shutdown_verify" ~lo:1.0 (if all_ok then 1.0 else 0.0);
  guard "E20.rows_durable" ~lo:(float (3 * total)) (float (f_rows + g_rows + a_rows));
  (* Sublinearity: shared fsyncs must make wal.sync strictly sub-linear in
     the commit count — some batches really held >1 commit. *)
  guard "E20.group_syncs_per_commit" ~hi:0.9 (float g_syncs /. float total);
  guard "E20.group_syncs_saved" ~lo:1.0 (float g_saved);
  (* The headline: on a tick-sharing workload, group >= 2x full. Only a
     guard at full scale — the 0.1-scale CI smoke is too short for a stable
     ratio there, where it stays a reported metric. *)
  if scale >= 1.0 then guard "E20.group_speedup" ~lo:2.0 (g_rps /. f_rps)
  else metric "E20.group_speedup" (g_rps /. f_rps);
  metric "E20.full_rps" f_rps;
  metric "E20.group_rps" g_rps;
  metric "E20.async_rps" a_rps;
  metric "E20.async_speedup" (a_rps /. f_rps);
  metric "E20.group_syncs" (float g_syncs);
  metric "E20.full_syncs" (float f_syncs);
  metric "E20.group_sync_saved" (float g_saved);
  note "group mode acknowledged every commit (replies wait for the shared";
  note "fsync) yet paid a fraction of full's wal.sync calls; with the fsync";
  note "amortized away execution dominates, so async (which replies before";
  note "durability, loss bounded by the window) gains little more."

(* ------------------------------------------------------------------ E21 *)
(* Replication (PR 6): WAL-shipping to a warm standby. Two questions with
   operational weight: how fast does a fresh standby catch up to an
   established primary (bootstrap + stream replay, the recovery-time bound
   for adding capacity or replacing a dead standby), and what does one
   read-only standby add to aggregate read throughput when half the read
   pool routes to it? Guards that the standby converges byte-exactly (row
   count), that both processes shut down clean and verify, and that the
   read phases finish without protocol errors. *)

let e21 () =
  section "E21  replication: standby catch-up and read scaling";
  let module Server = Ode_served.Server in
  let module Client = Ode_served.Client in
  let tmp name =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ode-bench-e21-%s-%d-%f" name (Unix.getpid ()) (Unix.gettimeofday ()))
  in
  (* Parse "name 1234" out of a [.stats]/[.replication] dump. *)
  (* Parse "name 123" out of a dump, whether the entries are one per line
     ([.replication], space-padded) or double-space separated on a single
     line ([.stats]). The name must be whitespace-bounded so "lsn" does not
     match inside "durable_lsn". *)
  let counter dump name =
    let dl = String.length dump and nl = String.length name in
    let is_sp c = c = ' ' || c = '\n' in
    let rec scan i =
      if i + nl >= dl then None
      else if
        (i = 0 || is_sp dump.[i - 1])
        && String.sub dump i nl = name
        && is_sp dump.[i + nl]
      then begin
        let j = ref (i + nl) in
        while !j < dl && dump.[!j] = ' ' do
          incr j
        done;
        let k = ref !j in
        while !k < dl && dump.[!k] >= '0' && dump.[!k] <= '9' do
          incr k
        done;
        if !k > !j then int_of_string_opt (String.sub dump !j (!k - !j))
        else scan (i + 1)
      end
      else scan (i + 1)
    in
    scan 0
  in
  let pdir = tmp "p" and rdir = tmp "r" in
  let srv_pid, port, repl_port, _ =
    Server.spawn_full ~repl_port:0 ~durability:Db.Group ~db_dir:pdir ()
  in
  let connect ?replicas port = Client.connect ~timeout:30. ?replicas ~host:"127.0.0.1" ~port () in
  let ctl = connect port in
  (* No index on [k]: the read phase wants cluster scans, so each query
     costs real server CPU and the standby's second event loop buys
     capacity (indexed point reads are so cheap the closed-loop clients
     bottleneck on round trips instead). *)
  ignore (Client.exec ctl "class kv { k: int; v: string; }; create cluster kv;");
  (* Build the primary's history: pipelined autocommit inserts. *)
  let n = scaled 2000 in
  let rng = Prng.create 2100 in
  let loaded = ref 0 in
  let _, m_load =
    timed (fun () ->
        while !loaded < n do
          let k = min 50 (n - !loaded) in
          let progs =
            List.init k (fun j ->
                Printf.sprintf "pnew kv { k = %d, v = \"row-%d\" };" (Prng.int rng 100_000)
                  (!loaded + j))
          in
          List.iter
            (function Ok _ -> () | Error e -> failwith ("E21 load: " ^ e))
            (Client.exec_many ctl progs);
          loaded := !loaded + k
        done)
  in
  Client.ping ctl;
  let plsn = Client.last_seen_lsn ctl in
  (* Catch-up: a standby born now must bootstrap (snapshot or WAL resume)
     and replay the whole history before it is useful. Clock from fork to
     the standby reporting the primary's commit LSN. *)
  flush stdout;
  flush stderr;
  let t0 = now () in
  let rep_pid, rport = Server.spawn ~replica_of:("127.0.0.1", repl_port) ~db_dir:rdir () in
  let rctl = connect rport in
  let deadline = now () +. 120. in
  let rec wait_caught_up () =
    let l =
      match counter (Client.dot rctl ".replication") "lsn" with Some l -> l | None -> -1
    in
    if l < plsn then
      if now () > deadline then failwith "E21: standby never caught up"
      else begin
        Unix.sleepf 0.02;
        wait_caught_up ()
      end
  in
  wait_caught_up ();
  let catchup = now () -. t0 in
  let shipped_mb =
    match counter (Client.dot ctl ".stats") "repl.bytes_sent" with
    | Some b -> float b /. 1e6
    | None -> 0.0
  in
  (* Read scaling: 4 closed-loop reader processes of narrow unindexed
     range scans. Phase one reads from the primary alone; phase two routes
     half the pool through the standby. *)
  let read_phase ~route =
    let clients = 4 in
    let per_client = scaled 100 in
    flush stdout;
    flush stderr;
    let t0 = now () in
    let pids =
      List.init clients (fun ci ->
          match Unix.fork () with
          | 0 ->
              let errors = ref 0 in
              (try
                 let replicas =
                   if route ci then Some [ ("127.0.0.1", rport) ] else None
                 in
                 let c = connect ?replicas port in
                 let rng = Prng.create (2110 + ci) in
                 for _ = 1 to per_client do
                   try
                     let lo = Prng.int rng 100_000 in
                     ignore
                       (Client.query c
                          (Printf.sprintf "forall x in kv suchthat x.k >= %d && x.k < %d"
                             lo (lo + 50)))
                   with _ -> incr errors
                 done;
                 Client.close c
               with _ -> incr errors);
              Unix._exit (min 100 !errors)
          | pid -> pid)
    in
    let errors =
      List.fold_left
        (fun acc pid ->
          let _, status = Unix.waitpid [] pid in
          acc + (match status with Unix.WEXITED e -> e | _ -> 1))
        0 pids
    in
    (float (clients * per_client) /. (now () -. t0), errors)
  in
  let rps_primary, err_a = read_phase ~route:(fun _ -> false) in
  let rps_mixed, err_b = read_phase ~route:(fun ci -> ci land 1 = 1) in
  (try Client.close rctl with _ -> ());
  (try Client.close ctl with _ -> ());
  (* Graceful shutdown of both; each directory must reopen clean with the
     full row count — the standby byte-exact with the primary. *)
  Unix.kill rep_pid Sys.sigterm;
  let _, rep_status = Unix.waitpid [] rep_pid in
  Unix.kill srv_pid Sys.sigterm;
  let _, srv_status = Unix.waitpid [] srv_pid in
  let clean = srv_status = Unix.WEXITED 0 && rep_status = Unix.WEXITED 0 in
  let inspect dir =
    let db = Db.open_ dir in
    let ok = match Ode.Verify.run db with Ok () -> true | Error _ -> false in
    let rows = Query.count db ~var:"x" ~cls:"kv" () in
    Db.close db;
    (ok, rows)
  in
  let p_ok, p_rows = inspect pdir in
  let r_ok, r_rows = inspect rdir in
  table
    ~title:
      (Printf.sprintf
         "E21: %d-commit history; standby catch-up, then 4 readers (unindexed range scans)"
         plsn)
    ~header:[ "measure"; "value" ]
    [
      [ "load (pipelined inserts)"; fops (ops_per_sec m_load n) ];
      [ "standby catch-up"; fsec catchup ];
      [ "catch-up rate"; fops (float plsn /. catchup) ];
      [ "wal shipped"; Printf.sprintf "%.2fMB" shipped_mb ];
      [ "read rps, primary only"; fops rps_primary ];
      [ "read rps, half on standby"; fops rps_mixed ];
      [ "read scaling"; ffloat (rps_mixed /. rps_primary) ];
      [ "rows (primary/standby)"; Printf.sprintf "%d / %d" p_rows r_rows ];
    ];
  guard "E21.protocol_errors" ~hi:0.0 (float (err_a + err_b));
  guard "E21.clean_shutdown" ~lo:1.0 (if clean then 1.0 else 0.0);
  guard "E21.post_shutdown_verify" ~lo:1.0 (if p_ok && r_ok then 1.0 else 0.0);
  guard "E21.replica_rows" ~lo:(float p_rows) ~hi:(float p_rows) (float r_rows);
  metric "E21.catchup_s" catchup;
  metric "E21.catchup_commits_per_s" (float plsn /. catchup);
  metric "E21.shipped_mb" shipped_mb;
  metric "E21.read_rps_primary" rps_primary;
  metric "E21.read_rps_with_replica" rps_mixed;
  metric "E21.read_scaling" (rps_mixed /. rps_primary);
  note "the standby replays the primary's WAL through the recovery redo";
  note "path and serves reads from its own event loop; routing half the";
  note "read pool to it frees the primary's loop for the other half";
  note "(the scaling ratio only exceeds 1 when the two server processes";
  note "get separate cores — on a single-core runner they timeshare)."

(* ------------------------------------------------------------------ E22 *)
(* Multicore serving (PR 7): the poll-based loop splits across OCaml
   domains — reader domains execute autocommitted queries in parallel
   under the shared engine lock while the writer domain keeps writes and
   the group-commit scheduler. Sweep [--domains] over 1/2/4 against the
   same read-heavy closed loop (unindexed range scans, so each request
   costs real server CPU, with a 1-in-16 write mix funneled to the writer)
   and report the scaling. Guards: zero protocol errors and a clean,
   verified shutdown at every domain count; on runners with >= 4 cores the
   4-domain sweep must at least double the 1-domain read throughput. On
   fewer cores the domains timeshare and the ratio is reported, not
   gated. *)

let e22 () =
  section "E22  multicore serving: read-mix throughput vs --domains";
  let module Server = Ode_served.Server in
  let module Client = Ode_served.Client in
  let clients = 4 in
  (* Floor the closed loop: a sweep shorter than ~100 requests/client
     measures fork+connect overhead, not serving capacity, and the CI
     compare needs rates from the same regime as the committed baseline. *)
  let per_client = max 100 (scaled 250) in
  let n_rows = scaled 2000 in
  let run domains =
    let db_dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "ode-bench-e22-d%d-%d-%f" domains (Unix.getpid ())
           (Unix.gettimeofday ()))
    in
    let srv_pid, port = Server.spawn ~domains ~db_dir () in
    let connect () = Client.connect ~timeout:30. ~host:"127.0.0.1" ~port () in
    let ctl = connect () in
    ignore (Client.exec ctl "class kv { k: int; v: string; }; create cluster kv;");
    (* Identical seeded history per domain count: pipelined autocommits. *)
    let rng = Prng.create 2200 in
    let loaded = ref 0 in
    while !loaded < n_rows do
      let k = min 50 (n_rows - !loaded) in
      let progs =
        List.init k (fun j ->
            Printf.sprintf "pnew kv { k = %d, v = \"row-%d\" };" (Prng.int rng 100_000)
              (!loaded + j))
      in
      List.iter
        (function Ok _ -> () | Error e -> failwith ("E22 load: " ^ e))
        (Client.exec_many ctl progs);
      loaded := !loaded + k
    done;
    (* The sweep: closed-loop readers of narrow unindexed range scans with
       a 1-in-16 insert mixed in — reads fan out across reader domains,
       writes funnel through the writer, same seeds at every width. *)
    flush stdout;
    flush stderr;
    let t0 = now () in
    let pids =
      List.init clients (fun ci ->
          match Unix.fork () with
          | 0 ->
              let errors = ref 0 in
              (try
                 let c = connect () in
                 let rng = Prng.create (2210 + ci) in
                 for j = 1 to per_client do
                   try
                     if j mod 16 = 0 then
                       ignore
                         (Client.exec c
                            (Printf.sprintf "pnew kv { k = %d, v = \"w%d-%d\" };"
                               (Prng.int rng 100_000) ci j))
                     else begin
                       let lo = Prng.int rng 100_000 in
                       ignore
                         (Client.query c
                            (Printf.sprintf "forall x in kv suchthat x.k >= %d && x.k < %d"
                               lo (lo + 50)))
                     end
                   with _ -> incr errors
                 done;
                 Client.close c
               with _ -> incr errors);
              Unix._exit (min 100 !errors)
          | pid -> pid)
    in
    let errors =
      List.fold_left
        (fun acc pid ->
          let _, status = Unix.waitpid [] pid in
          acc + (match status with Unix.WEXITED e -> e | _ -> 1))
        0 pids
    in
    let rps = float (clients * per_client) /. (now () -. t0) in
    (try Client.close ctl with _ -> ());
    Unix.kill srv_pid Sys.sigterm;
    let _, status = Unix.waitpid [] srv_pid in
    let clean = status = Unix.WEXITED 0 in
    let db = Db.open_ db_dir in
    let ok = match Ode.Verify.run db with Ok () -> true | Error _ -> false in
    let rows = Query.count db ~var:"x" ~cls:"kv" () in
    Db.close db;
    (rps, errors, clean, ok, rows)
  in
  let rps1, err1, clean1, ok1, rows1 = run 1 in
  let rps2, err2, clean2, ok2, rows2 = run 2 in
  let rps4, err4, clean4, ok4, rows4 = run 4 in
  let cores = Domain.recommended_domain_count () in
  let row name rps rows =
    [ name; fops rps; ffloat (rps /. max 1e-9 rps1); fint rows ]
  in
  table
    ~title:
      (Printf.sprintf
         "E22: %d clients x %d requests (15/16 range scans), %d-row table, %d cores"
         clients per_client n_rows cores)
    ~header:[ "serving domains"; "requests/s"; "vs 1 domain"; "rows" ]
    [
      row "1 (classic loop)" rps1 rows1;
      row "2 (1 reader)" rps2 rows2;
      row "4 (3 readers)" rps4 rows4;
    ];
  guard "E22.protocol_errors" ~hi:0.0 (float (err1 + err2 + err4));
  guard "E22.clean_shutdown" ~lo:1.0 (if clean1 && clean2 && clean4 then 1.0 else 0.0);
  guard "E22.post_shutdown_verify" ~lo:1.0 (if ok1 && ok2 && ok4 then 1.0 else 0.0);
  guard "E22.rows_durable" ~lo:(float (3 * n_rows)) (float (rows1 + rows2 + rows4));
  (* The headline parallelism claim needs real cores under the domains;
     on smaller runners (CI containers are often 1-2 vCPUs) the ratio is
     recorded as a metric — named without a gated substring, since a
     timesharing ratio near 1.0 is expected, not a regression. *)
  if cores >= 4 && scale >= 1.0 then guard "E22.scale_d4_over_d1" ~lo:2.0 (rps4 /. rps1)
  else metric "E22.scale_d4_over_d1" (rps4 /. rps1);
  metric "E22.scale_d2_over_d1" (rps2 /. rps1);
  metric "E22.d1_read_rps" rps1;
  metric "E22.d2_read_rps" rps2;
  metric "E22.d4_read_rps" rps4;
  note "reader domains drain a bounded job queue of autocommitted queries";
  note "under a shared engine lock; writes (and the fsync scheduler) stay";
  note "on the writer domain, so the reply-after-fsync guarantee is intact";
  note "at every width. Scaling needs cores: with fewer than 4 the domains";
  note "timeshare one socket loop and the ratio hovers around 1.0."

(* ------------------------------------------------------------------ E23 *)
(* Observability overhead (PR 8): the full surface armed — span tracer on,
   slow-query log armed, a sidecar process scraping GET /metrics at ~2 Hz
   throughout — versus a dark server, on the same closed-loop mixed
   workload over loopback. Rounds alternate between the two live servers
   (any slow stretch of the container hits both variants) and the guard is
   on the median per-round ratio, E18's discipline: the armed surface must
   cost at most 5% throughput at full scale. *)

let e23_contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* One-shot GET against the metrics listener: request, then read to EOF. *)
let e23_http_get port path =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let rq = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      let rec send pos =
        if pos < String.length rq then
          send (pos + Unix.write_substring fd rq pos (String.length rq - pos))
      in
      send 0;
      let b = Buffer.create 4096 in
      let buf = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes b buf 0 n;
            drain ()
        | exception Unix.Unix_error (EINTR, _, _) -> drain ()
      in
      drain ();
      Buffer.contents b)

let e23 () =
  section "E23  observability overhead: metrics + tracing + slow log armed vs dark";
  let module Server = Ode_served.Server in
  let module Client = Ode_served.Client in
  let n_rows = scaled 1_000 in
  let per_round = max 60 (scaled 200) in
  let rounds = 5 in
  let spawn tag ~observed =
    let db_dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "ode-bench-e23-%s-%d-%f" tag (Unix.getpid ()) (Unix.gettimeofday ()))
    in
    let pid, port, _, mport =
      if observed then Server.spawn_full ~domains:2 ~metrics_port:0 ~slow_query_ms:50 ~db_dir ()
      else Server.spawn_full ~domains:2 ~db_dir ()
    in
    (pid, port, mport)
  in
  let dark_pid, dark_port, _ = spawn "dark" ~observed:false in
  let obs_pid, obs_port, obs_mport = spawn "obs" ~observed:true in
  let connect port = Client.connect ~timeout:30. ~host:"127.0.0.1" ~port () in
  (* Identical seeded tables on both servers. *)
  let seed port =
    let c = connect port in
    ignore (Client.exec c "class kv { k: int; v: string; }; create cluster kv;");
    let rng = Prng.create 2300 in
    let loaded = ref 0 in
    while !loaded < n_rows do
      let k = min 50 (n_rows - !loaded) in
      let progs =
        List.init k (fun j ->
            Printf.sprintf "pnew kv { k = %d, v = \"row-%d\" };" (Prng.int rng 100_000)
              (!loaded + j))
      in
      List.iter
        (function Ok _ -> () | Error e -> failwith ("E23 load: " ^ e))
        (Client.exec_many c progs);
      loaded := !loaded + k
    done;
    c
  in
  let dark_c = seed dark_port in
  let obs_c = seed obs_port in
  ignore (Client.dot obs_c ".trace on");
  (* The sidecar scraper: a forked process hitting /metrics twice a second
     for the whole measured window, like a Prometheus agent would. *)
  flush stdout;
  flush stderr;
  let scraper_pid =
    match Unix.fork () with
    | 0 ->
        (try
           while true do
             ignore (e23_http_get obs_mport "/metrics");
             Unix.sleepf 0.5
           done
         with _ -> ());
        Unix._exit 0
    | pid -> pid
  in
  (* Closed-loop mixed round: 1-in-8 inserts among narrow unindexed range
     scans, same seeds on both servers. *)
  let round c seed =
    let rng = Prng.create seed in
    let t0 = now () in
    for j = 1 to per_round do
      if j mod 8 = 0 then
        ignore
          (Client.exec c
             (Printf.sprintf "pnew kv { k = %d, v = \"w%d\" };" (Prng.int rng 100_000) j))
      else begin
        let lo = Prng.int rng 100_000 in
        ignore
          (Client.query c
             (Printf.sprintf "forall x in kv suchthat x.k >= %d && x.k < %d" lo (lo + 40)))
      end
    done;
    now () -. t0
  in
  ignore (round dark_c 2301);
  ignore (round obs_c 2301);
  let pairs =
    List.init rounds (fun r ->
        let td = round dark_c (2310 + r) in
        let to_ = round obs_c (2310 + r) in
        (td, to_))
  in
  let t_dark = List.fold_left (fun a (d, _) -> a +. d) 0.0 pairs in
  let t_obs = List.fold_left (fun a (_, o) -> a +. o) 0.0 pairs in
  let median_ratio =
    let rs = List.sort compare (List.map (fun (d, o) -> o /. max 1e-9 d) pairs) in
    List.nth rs (List.length rs / 2)
  in
  (* The endpoint stayed coherent under load: one last scrape must carry
     counters and quantiles a collector can parse. *)
  let scrape = e23_http_get obs_mport "/metrics" in
  let scrape_ok =
    e23_contains scrape "200 OK"
    && e23_contains scrape "ode_server_requests"
    && e23_contains scrape "quantile=\"0.99\""
  in
  (try Unix.kill scraper_pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] scraper_pid);
  (try Client.close dark_c with _ -> ());
  (try Client.close obs_c with _ -> ());
  let stop pid =
    Unix.kill pid Sys.sigterm;
    let _, status = Unix.waitpid [] pid in
    status = Unix.WEXITED 0
  in
  let clean = stop dark_pid && stop obs_pid in
  let reqs = rounds * per_round in
  let row name t = [ name; fops (float reqs /. max 1e-9 t); fsec (t /. float rounds) ] in
  table
    ~title:
      (Printf.sprintf "E23: %d alternating rounds x %d requests (7/8 range scans), %d rows"
         rounds per_round n_rows)
    ~header:[ "variant"; "requests/s"; "per round" ]
    [
      row "dark (no metrics, no tracing)" t_dark;
      row "armed (tracing + slow log + 2Hz scrapes)" t_obs;
    ];
  (* Closed-loop sockets are noisier than E18's in-process scans: the 5%
     bar arms at full scale; the smoke run keeps a loose backstop so a
     pathological slowdown (e.g. a scrape stalling the poll loop) still
     fails CI. *)
  if scale >= 1.0 then guard "E23.overhead_ratio" ~hi:1.05 median_ratio
  else guard "E23.overhead_ratio" ~hi:1.25 median_ratio;
  guard "E23.scrape_parseable" ~lo:1.0 (if scrape_ok then 1.0 else 0.0);
  guard "E23.clean_shutdown" ~lo:1.0 (if clean then 1.0 else 0.0);
  metric "E23.dark_rps" (float reqs /. max 1e-9 t_dark);
  metric "E23.observed_rps" (float reqs /. max 1e-9 t_obs);
  note "the armed variant pays one DLS read per span site, a histogram";
  note "observe per request, and shares its poll loop with the HTTP";
  note "scraper; the slow-query threshold (50ms) never fires on this";
  note "workload, so its cost is the arming check alone."

(* ------------------------------------------------------------------ E24 *)
(* MVCC snapshot isolation (PR 9): concurrent read-write clients each run
   explicit transactions as separate begin / update / commit round-trips
   (so they genuinely interleave on the server's event loop) against a
   small account table with a deliberate hot key, while one long-running
   transaction holds its snapshot open across the whole contention phase
   and closed-loop readers scan throughout. Claims under guard: snapshot
   readers do not collapse when writers commit under them; the long
   snapshot stays stable no matter how many commits land; conflicts are
   bounded and every conflicted transaction, replayed wholesale by its
   client, lands exactly once; the long transaction's disjoint write set
   still commits at the end. *)

(* `.stats` prints "name value" pairs; pull one counter out. *)
let e24_counter stats name =
  let toks =
    String.split_on_char '\n' stats
    |> List.concat_map (String.split_on_char ' ')
    |> List.filter (fun s -> s <> "")
  in
  let rec go = function
    | a :: b :: rest ->
        if a = name then ( try int_of_string b with Failure _ -> 0) else go (b :: rest)
    | _ -> 0
  in
  go toks

let e24 () =
  section "E24  MVCC: concurrent write txns vs snapshot readers";
  let module Server = Ode_served.Server in
  let module Client = Ode_served.Client in
  let readers = 3 and writers = 3 in
  let per_reader = max 80 (scaled 250) in
  let per_writer = max 30 (scaled 120) in
  let n_accts = 64 in
  let held_id = 1000 in
  let db_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ode-bench-e24-%d-%f" (Unix.getpid ()) (Unix.gettimeofday ()))
  in
  let srv_pid, port = Server.spawn ~db_dir () in
  let connect ?(retries = 4) () =
    Client.connect ~timeout:30. ~retries ~host:"127.0.0.1" ~port ()
  in
  let ctl = connect () in
  ignore (Client.exec ctl "class acct { id: int; bal: int; }; create cluster acct;");
  let load ids =
    List.iter
      (function Ok _ -> () | Error e -> failwith ("E24 load: " ^ e))
      (Client.exec_many ctl
         (List.map (fun i -> Printf.sprintf "pnew acct { id = %d, bal = 0 };" i) ids))
  in
  load (List.init n_accts (fun i -> i));
  load (List.init 4 (fun i -> held_id + i));
  let fork_readers tag =
    List.init readers (fun ri ->
        match Unix.fork () with
        | 0 ->
            let errors = ref 0 in
            (try
               let c = connect () in
               let rng = Prng.create (2400 + (100 * tag) + ri) in
               for _ = 1 to per_reader do
                 try
                   let lo = Prng.int rng (n_accts - 16) in
                   ignore
                     (Client.query c
                        (Printf.sprintf "forall a in acct suchthat a.id >= %d && a.id < %d"
                           lo (lo + 16)))
                 with _ -> incr errors
               done;
               Client.close c
             with _ -> incr errors);
            Unix._exit (min 100 !errors)
        | pid -> pid)
  in
  let join pids =
    List.fold_left
      (fun acc pid ->
        let _, status = Unix.waitpid [] pid in
        acc + (match status with Unix.WEXITED e -> e | _ -> 1))
      0 pids
  in
  (* Phase A: readers alone, the uncontended baseline. *)
  flush stdout;
  flush stderr;
  let t0 = now () in
  let err_solo = join (fork_readers 0) in
  let rps_solo = float (readers * per_reader) /. (now () -. t0) in
  (* Phase B: open the long-running transaction, pin its snapshot, then
     unleash writers and readers together. *)
  let holder = connect () in
  ignore (Client.exec holder "begin;");
  let dirty () =
    List.length
      (Client.query holder
         (Printf.sprintf "forall a in acct suchthat a.bal > 0 && a.id < %d" n_accts))
  in
  let stable0 = dirty () in
  ignore
    (Client.exec holder
       (Printf.sprintf "forall a in acct suchthat a.id = %d { a.bal := a.bal + 1; };" held_id));
  flush stdout;
  flush stderr;
  let t1 = now () in
  let writer_pids =
    List.init writers (fun wi ->
        match Unix.fork () with
        | 0 ->
            let errors = ref 0 in
            (try
               (* retries:0 — a replayed bare [commit;] can never win, so
                  conflict recovery is re-running the WHOLE transaction,
                  which only this loop can do. *)
               let c = connect ~retries:0 () in
               let rng = Prng.create (2450 + wi) in
               for _ = 1 to per_writer do
                 (* 1-in-3 transactions hit account 0: a hot key that
                    manufactures real first-committer-wins races. *)
                 let id = if Prng.int rng 3 = 0 then 0 else Prng.int rng n_accts in
                 let rec attempt tries =
                   if tries > 50 then incr errors
                   else
                     try
                       ignore (Client.exec c "begin;");
                       ignore
                         (Client.exec c
                            (Printf.sprintf
                               "forall a in acct suchthat a.id = %d { a.bal := a.bal + 1; };"
                               id));
                       ignore (Client.exec c "commit;")
                     with
                     | Client.Conflict _ -> attempt (tries + 1)
                     | Client.Server_error _ ->
                         (try ignore (Client.exec c "abort;") with _ -> ());
                         incr errors
                 in
                 attempt 0
               done;
               Client.close c
             with _ -> incr errors);
            Unix._exit (min 100 !errors)
        | pid -> pid)
  in
  let reader_pids = fork_readers 1 in
  let err_read = join reader_pids in
  let rps_contended = float (readers * per_reader) /. (now () -. t1) in
  let err_write = join writer_pids in
  let writer_elapsed = now () -. t1 in
  (* The long transaction's snapshot must have seen none of it. *)
  let stable1 = dirty () in
  ignore (Client.exec holder "commit;");
  Client.close holder;
  (* A fresh autocommit snapshot sees the full increment history. *)
  let visible =
    List.length
      (Client.query ctl
         (Printf.sprintf "forall a in acct suchthat a.bal > 0 && a.id < %d" n_accts))
  in
  let conflicts = e24_counter (Client.dot ctl ".stats") "txn.conflicts" in
  (try Client.close ctl with _ -> ());
  Unix.kill srv_pid Sys.sigterm;
  let _, status = Unix.waitpid [] srv_pid in
  let clean = status = Unix.WEXITED 0 in
  let db = Db.open_ db_dir in
  let ok = match Ode.Verify.run db with Ok () -> true | Error _ -> false in
  let sum, held_bal =
    Db.with_txn db (fun txn ->
        List.fold_left
          (fun (sum, held) oid ->
            let geti f = match Db.get_field txn oid f with Value.Int i -> i | _ -> 0 in
            let id = geti "id" and bal = geti "bal" in
            if id < n_accts then (sum + bal, held)
            else if id = held_id then (sum, bal)
            else (sum, held))
          (0, 0)
          (Query.to_list db ~txn ~var:"x" ~cls:"acct" ()))
  in
  Db.close db;
  let issued = writers * per_writer in
  table
    ~title:
      (Printf.sprintf
         "E24: %d readers x %d scans vs %d writers x %d explicit txns (hot key 1/3), %d accounts"
         readers per_reader writers per_writer n_accts)
    ~header:[ "phase"; "requests/s"; "conflicts" ]
    [
      [ "readers solo"; fops rps_solo; "-" ];
      [ "readers vs write txns"; fops rps_contended; "-" ];
      [ "write txns (3 round-trips each)"; fops (float issued /. writer_elapsed); fint conflicts ];
    ];
  guard "E24.protocol_errors" ~hi:0.0 (float (err_solo + err_read + err_write));
  guard "E24.clean_shutdown" ~lo:1.0 (if clean then 1.0 else 0.0);
  guard "E24.post_shutdown_verify" ~lo:1.0 (if ok then 1.0 else 0.0);
  (* Snapshot stability: the long transaction's view of "dirty accounts"
     must not move, no matter how many commits land under it. *)
  guard "E24.snapshot_stable" ~lo:(float stable0) ~hi:(float stable0) (float stable1);
  (* Exactly-once: every one of the [issued] increments — including every
     conflicted-then-replayed one — lands once. Lost updates read low,
     double-applied retries read high. *)
  guard "E24.increments_exactly_once" ~lo:(float issued) ~hi:(float issued) (float sum);
  (* The long transaction's disjoint write set commits despite hundreds of
     concurrent commits since its snapshot. *)
  guard "E24.long_txn_commits" ~lo:1.0 ~hi:1.0 (float held_bal);
  guard "E24.post_commit_visible" ~lo:1.0 (float visible);
  (* Conflicts happen (the hot key guarantees pressure) but stay bounded:
     a first-committer-wins livelock would blow retries per txn up. *)
  guard "E24.conflicts_per_txn" ~hi:3.0 (float conflicts /. float issued);
  (if scale >= 1.0 then guard "E24.read_retention" ~lo:0.3 (rps_contended /. max 1e-9 rps_solo)
   else metric "E24.read_retention" (rps_contended /. max 1e-9 rps_solo));
  metric "E24.read_rps_solo" rps_solo;
  metric "E24.read_rps_contended" rps_contended;
  metric "E24.writer_txn_per_s" (float issued /. writer_elapsed);
  metric "E24.conflicts" (float conflicts);
  note "writers spread each transaction over three round-trips, so their";
  note "snapshots genuinely overlap on the event loop; the hot key makes";
  note "losers real and the client-side whole-transaction replay is what";
  note "the exactly-once sum certifies. The long-running holder pins the";
  note "GC horizon: every concurrent commit records pre-images for it,";
  note "and its final disjoint commit must still win.";
  note "Reader throughput under write load measures snapshot reads that";
  note "never block on writers (no slot, no writer latch on the read path)."

(* ----------------------------------------------------------------- E25 *)
(* The cost-based optimizer: a two-extent equi-join on an unindexed field
   runs as a nested loop until [analyze] gives the planner the statistics
   to price a hash join, and a ref-equality join fuses into pointer
   dereferences with no inner scan at all. Predicted rows/costs from the
   plan are recorded next to the measured values so EXPERIMENTS.md can
   show how honest the estimates are. *)

let e25 () =
  section "E25  query optimizer: join strategies and estimate accuracy";
  let db = mem_db () in
  ignore
    (Db.define db
       {|class dept25 { dname: string; budget: int; };
         class emp25 { ename: string; works: string; boss: ref dept25; salary: int; };|});
  Db.create_cluster db "dept25";
  Db.create_cluster db "emp25";
  (* The index on the join field is what gives analyze a histogram with a
     distinct count — the source of the join-cardinality estimate. *)
  Db.create_index db ~cls:"emp25" ~field:"works";
  let n_dept = scaled 200 and n_emp = scaled 20_000 in
  let depts =
    Db.with_txn db (fun txn ->
        Array.init n_dept (fun i ->
            Db.pnew txn "dept25"
              [ ("dname", Value.Str (Printf.sprintf "d%d" i)); ("budget", Value.Int (i * 10)) ]))
  in
  let rng = Prng.create 25 in
  Db.with_txn db (fun txn ->
      for i = 0 to n_emp - 1 do
        let d = Prng.int rng n_dept in
        ignore
          (Db.pnew txn "emp25"
             [ ("ename", Value.Str (Printf.sprintf "e%d" i));
               ("works", Value.Str (Printf.sprintf "d%d" d));
               ("boss", Value.Ref depts.(d));
               ("salary", Value.Int (Prng.int rng 5000)) ])
      done);
  let outer = ("d", "dept25", false) and inner = ("e", "emp25", false) in
  let works_eq = pred "e.works == d.dname" in
  let boss_eq = pred "d == e.boss" in
  let run_pairs ?outer_suchthat ?inner_suchthat ~outer ~inner () =
    let pairs = ref 0 in
    let _, m =
      timed (fun () ->
          Query.run_join db ~outer ~inner ?outer_suchthat ?inner_suchthat (fun _ _ -> incr pairs))
    in
    (!pairs, m)
  in
  let strategy_name jp =
    match jp.Ode.Planner.j_strategy with
    | Ode.Planner.Nested_loop -> "nested loop"
    | Ode.Planner.Fused_deref f -> "deref " ^ f
    | Ode.Planner.Fused_member f -> "member " ^ f
    | Ode.Planner.Hash_join _ -> "hash join"
  in
  (* Before analyze there are no statistics, so the equi-join stays a
     nested loop — though its per-outer-row inner plan is still an index
     probe on works (the heuristic planner uses indexes, just not costs). *)
  let jp_cold = Ode.Planner.plan_join db ~outer ~inner ~inner_suchthat:works_eq () in
  let pairs_inl, m_inl = run_pairs ~outer ~inner ~inner_suchthat:works_eq () in
  (* The true nested-loop floor: the same predicate hidden inside a
     disjunction neither the link detector nor the sarg extractor can see
     through, so every outer row rescans the whole inner extent. *)
  let opaque_works = pred "e.works == d.dname || 1 == 2" in
  let jp_scan = Ode.Planner.plan_join db ~outer ~inner ~inner_suchthat:opaque_works () in
  let pairs_nested, m_nested = run_pairs ~outer ~inner ~inner_suchthat:opaque_works () in
  (* After analyze the same query is priced as a hash join. *)
  ignore (Db.analyze db);
  let jp_hot = Ode.Planner.plan_join db ~outer ~inner ~inner_suchthat:works_eq () in
  let pairs_hash, m_hash = run_pairs ~outer ~inner ~inner_suchthat:works_eq () in
  (* The ref-equality join fuses into a dereference per outer row; its
     nested-loop baseline is the same join with fusion defeated by an
     equivalent but unrecognizable predicate shape. *)
  let eoutr = ("e", "emp25", false) and dinner = ("d", "dept25", false) in
  let jp_deref = Ode.Planner.plan_join db ~outer:eoutr ~inner:dinner ~inner_suchthat:boss_eq () in
  let pairs_deref, m_deref = run_pairs ~outer:eoutr ~inner:dinner ~inner_suchthat:boss_eq () in
  (* Same result set, but hidden inside a disjunction the link detector
     cannot (and should not) see through — the honest nested baseline. *)
  let opaque_boss = pred "e.boss == d || 1 == 2" in
  let jp_opaque = Ode.Planner.plan_join db ~outer:eoutr ~inner:dinner ~inner_suchthat:opaque_boss () in
  let pairs_opaque, m_opaque = run_pairs ~outer:eoutr ~inner:dinner ~inner_suchthat:opaque_boss () in
  table ~title:"join strategies (same query, before/after analyze)"
    ~header:[ "query"; "strategy"; "pairs"; "time"; "pairs/s" ]
    [
      [ "works==dname (opaque: forced rescan)"; strategy_name jp_scan; fint pairs_nested;
        fsec m_nested.seconds; fops (ops_per_sec m_nested pairs_nested) ];
      [ "works==dname (cold: probe per row)"; strategy_name jp_cold; fint pairs_inl;
        fsec m_inl.seconds; fops (ops_per_sec m_inl pairs_inl) ];
      [ "works==dname (analyzed)"; strategy_name jp_hot; fint pairs_hash; fsec m_hash.seconds;
        fops (ops_per_sec m_hash pairs_hash) ];
      [ "d == e.boss"; strategy_name jp_deref; fint pairs_deref; fsec m_deref.seconds;
        fops (ops_per_sec m_deref pairs_deref) ];
      [ "e.boss == d || ... (opaque)"; strategy_name jp_opaque; fint pairs_opaque;
        fsec m_opaque.seconds; fops (ops_per_sec m_opaque pairs_opaque) ];
    ];
  (* Estimate honesty: predicted join cardinality and cost ratios vs what
     actually happened. [j_nested_cost] of the analyzed plan prices the
     index-nested-loop it rejected; the opaque plan's own cost prices the
     full rescan. *)
  let predicted = jp_hot.Ode.Planner.j_rows in
  let hash_cost = max 1e-9 jp_hot.Ode.Planner.j_cost in
  let cost_ratio_inl = jp_hot.Ode.Planner.j_nested_cost /. hash_cost in
  let time_ratio_inl = m_inl.seconds /. max 1e-9 m_hash.seconds in
  let cost_ratio = jp_scan.Ode.Planner.j_cost /. hash_cost in
  let time_ratio = m_nested.seconds /. max 1e-9 m_hash.seconds in
  table ~title:"predicted vs measured (hash join, post-analyze)"
    ~header:[ "quantity"; "predicted"; "measured" ]
    [
      [ "join pairs"; Printf.sprintf "%.0f" predicted; fint pairs_hash ];
      [ "hash vs index-nested-loop"; Printf.sprintf "%.1fx (cost)" cost_ratio_inl;
        Printf.sprintf "%.1fx (time)" time_ratio_inl ];
      [ "hash vs nested rescan"; Printf.sprintf "%.1fx (cost)" cost_ratio;
        Printf.sprintf "%.1fx (time)" time_ratio ];
    ];
  (* Correctness first: every strategy must emit the same pair set size. *)
  guard "E25.pairs_agree" ~lo:(float pairs_nested) ~hi:(float pairs_nested) (float pairs_hash);
  guard "E25.inl_pairs_agree" ~lo:(float pairs_nested) ~hi:(float pairs_nested)
    (float pairs_inl);
  guard "E25.deref_pairs_agree" ~lo:(float pairs_opaque) ~hi:(float pairs_opaque)
    (float pairs_deref);
  guard "E25.hash_selected" ~lo:1.0
    (match jp_hot.Ode.Planner.j_strategy with Ode.Planner.Hash_join _ -> 1.0 | _ -> 0.0);
  guard "E25.deref_selected" ~lo:1.0
    (match jp_deref.Ode.Planner.j_strategy with Ode.Planner.Fused_deref _ -> 1.0 | _ -> 0.0);
  (* Estimate honesty, within 2x either way at any scale: with the works
     index analyzed, the histogram's distinct count makes the equi-join
     selectivity 1/distinct — the prediction should land on the nose. *)
  let card_err = predicted /. max 1.0 (float pairs_hash) in
  guard "E25.cardinality_ratio" ~lo:0.5 ~hi:2.0 card_err;
  (if scale >= 1.0 then guard "E25.hash_join_speedup" ~lo:2.0 time_ratio
   else metric "E25.hash_join_speedup" time_ratio);
  let deref_speedup = m_opaque.seconds /. max 1e-9 m_deref.seconds in
  (if scale >= 1.0 then guard "E25.deref_fusion_speedup" ~lo:2.0 deref_speedup
   else metric "E25.deref_fusion_speedup" deref_speedup);
  metric "E25.inl_pairs_per_sec" (ops_per_sec m_inl pairs_inl);
  metric "E25.nested_pairs_per_sec" (ops_per_sec m_nested pairs_nested);
  metric "E25.hash_pairs_per_sec" (ops_per_sec m_hash pairs_hash);
  metric "E25.deref_pairs_per_sec" (ops_per_sec m_deref pairs_deref);
  metric "E25.predicted_pairs" predicted;
  metric "E25.measured_pairs" (float pairs_hash);
  metric "E25.predicted_cost_ratio" cost_ratio;
  metric "E25.measured_time_ratio" time_ratio;
  metric "E25.predicted_cost_ratio_inl" cost_ratio_inl;
  metric "E25.measured_time_ratio_inl" time_ratio_inl;
  note "the same forall-in-forall switches from nested loop to hash join";
  note "once analyze gives the planner cardinalities and per-index";
  note "histograms; d == e.boss fuses to a pointer dereference with no";
  note "inner scan in either mode. Estimated rows come from the equi-depth";
  note "histogram on the analyzed extent.";
  Db.close db

let all : (string * (unit -> unit)) list =
  [
    ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11); ("E12", e12);
    ("E13", e13); ("E14", e14); ("E15", e15); ("E16", e16); ("E17", e17);
    ("E18", e18); ("E19", e19); ("E20", e20); ("E21", e21); ("E22", e22);
    ("E23", e23); ("E24", e24); ("E25", e25);
  ]
