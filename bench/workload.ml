(* Synthetic workload generators. Everything is seeded and deterministic
   (the harness never touches the global Random state), so runs are
   reproducible. *)

module Db = Ode.Database
module Value = Ode_model.Value
module Prng = Ode_util.Prng

(* Items point at their supplier by id; suppliers hold a set of item refs so
   the pointer-navigation strategy of E2 has something to chase. *)
let define_inventory db =
  ignore
    (Db.define db
       {|
       class stockitem { name: string; qty: int; price: float; supid: int; };
       class supplier { sname: string; city: string; sid: int; items: set<ref stockitem>; };
       |});
  Db.create_cluster db "stockitem";
  Db.create_cluster db "supplier"

(* [n] items spread over [s] suppliers; each supplier's [items] set holds
   refs to its items (for the pointer-navigation strategy), while each item
   records its supplier id (for the scan/index strategies). Returns the
   supplier oids in sid order. *)
let load_inventory ?(seed = 42) db ~items:n ~suppliers:s =
  let rng = Prng.create seed in
  let item_oids = Array.make n None in
  Db.with_txn db (fun txn ->
      for i = 0 to n - 1 do
        let sid = i mod s in
        let oid =
          Db.pnew txn "stockitem"
            [
              ("name", Str (Printf.sprintf "item-%05d" i));
              ("qty", Int (Prng.int rng 10_000));
              ("price", Float (Prng.float rng 100.0));
              ("supid", Int sid);
            ]
        in
        item_oids.(i) <- Some oid
      done);
  let sup_oids = Array.make s None in
  Db.with_txn db (fun txn ->
      for sid = 0 to s - 1 do
        let mine = ref [] in
        Array.iteri
          (fun i o -> if i mod s = sid then mine := Value.Ref (Option.get o) :: !mine)
          item_oids;
        let oid =
          Db.pnew txn "supplier"
            [
              ("sname", Str (Printf.sprintf "sup-%03d" sid));
              ("city", Str (Prng.string rng 8));
              ("sid", Int sid);
              ("items", Value.set_of_list !mine);
            ]
        in
        sup_oids.(sid) <- Some oid
      done);
  (Array.map Option.get item_oids, Array.map Option.get sup_oids)

let university_schema =
  {|
  class person { name: string; age: int; income: int; };
  class student : person { gpa: float; };
  class faculty : person { salary: int; };
  |}

let define_university db =
  ignore (Db.define db university_schema);
  List.iter (Db.create_cluster db) [ "person"; "student"; "faculty" ]

let load_university ?(seed = 7) db ~per_class:n =
  let rng = Prng.create seed in
  Db.with_txn db (fun txn ->
      for i = 0 to n - 1 do
        let base =
          [
            ("name", Value.Str (Printf.sprintf "p%06d" i));
            ("age", Value.Int (18 + Prng.int rng 60));
            ("income", Value.Int (Prng.int rng 10_000));
          ]
        in
        ignore (Db.pnew txn "person" base);
        ignore (Db.pnew txn "student" (("gpa", Value.Float (Prng.float rng 4.0)) :: base));
        ignore (Db.pnew txn "faculty" (("salary", Value.Int (Prng.int rng 9000)) :: base))
      done)

(* A uniform parts tree: every non-leaf part uses [fanout] children. Returns
   the root. Total parts = (fanout^(depth+1) - 1) / (fanout - 1). *)
let parts_schema =
  {|
  class part { pname: string; leaf: bool; };
  class uses { parent: ref part; child: ref part; count: int; };
  |}

let define_parts db =
  ignore (Db.define db parts_schema);
  List.iter (Db.create_cluster db) [ "part"; "uses" ]

let load_parts_tree db ~fanout ~depth =
  Db.with_txn db (fun txn ->
      let counter = ref 0 in
      let rec build level =
        let id = !counter in
        incr counter;
        let leaf = level = depth in
        let oid =
          Db.pnew txn "part"
            [ ("pname", Str (Printf.sprintf "part-%d" id)); ("leaf", Bool leaf) ]
        in
        if not leaf then
          for _ = 1 to fanout do
            let child = build (level + 1) in
            ignore
              (Db.pnew txn "uses" [ ("parent", Ref oid); ("child", Ref child); ("count", Int 2) ])
          done;
        oid
      in
      build 0)
