(* Timing and table rendering for the experiment harness. *)

let now () = Unix.gettimeofday ()

type measurement = {
  seconds : float;
  stats : Ode_util.Stats.snapshot; (* engine work performed during the run *)
}

let timed f =
  let s0 = Ode_util.Stats.snapshot () in
  let t0 = now () in
  let result = f () in
  let t1 = now () in
  let s1 = Ode_util.Stats.snapshot () in
  (result, { seconds = t1 -. t0; stats = Ode_util.Stats.diff s1 s0 })

let per_op m n = if n = 0 then 0.0 else m.seconds /. float n *. 1e6 (* µs/op *)
let ops_per_sec m n = if m.seconds <= 0.0 then 0.0 else float n /. m.seconds

(* -- tables ------------------------------------------------------------- *)

let hr width = String.make width '-'

let table ~title ~header rows =
  let all = header :: rows in
  let ncols = List.length header in
  let width c =
    List.fold_left (fun w row -> max w (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun i cell ->
           let w = List.nth widths i in
           if i = 0 then Printf.sprintf "%-*s" w cell else Printf.sprintf "%*s" w cell)
         row)
  in
  let total_width = List.fold_left ( + ) (2 * (ncols - 1)) widths in
  Printf.printf "\n%s\n%s\n" title (hr (max total_width (String.length title)));
  Printf.printf "%s\n%s\n" (render_row header) (hr total_width);
  List.iter (fun r -> Printf.printf "%s\n" (render_row r)) rows;
  flush stdout

let fsec s = if s < 0.001 then Printf.sprintf "%.1fµs" (s *. 1e6)
             else if s < 1.0 then Printf.sprintf "%.2fms" (s *. 1e3)
             else Printf.sprintf "%.2fs" s

let fops v =
  if v >= 1e6 then Printf.sprintf "%.2fM/s" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.1fk/s" (v /. 1e3)
  else Printf.sprintf "%.0f/s" v

let fint = string_of_int
let ffloat f = Printf.sprintf "%.2f" f

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  %s\n" s) fmt
let section title = Printf.printf "\n================ %s ================\n" title
