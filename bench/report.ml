(* Timing and table rendering for the experiment harness. *)

let now () = Unix.gettimeofday ()

type measurement = {
  seconds : float;
  stats : Ode_util.Stats.snapshot; (* engine work performed during the run *)
}

let timed f =
  let s0 = Ode_util.Stats.snapshot () in
  let t0 = now () in
  let result = f () in
  let t1 = now () in
  let s1 = Ode_util.Stats.snapshot () in
  (result, { seconds = t1 -. t0; stats = Ode_util.Stats.diff s1 s0 })

let per_op m n = if n = 0 then 0.0 else m.seconds /. float n *. 1e6 (* µs/op *)
let ops_per_sec m n = if m.seconds <= 0.0 then 0.0 else float n /. m.seconds

(* -- tables ------------------------------------------------------------- *)

let hr width = String.make width '-'

let table ~title ~header rows =
  let all = header :: rows in
  let ncols = List.length header in
  let width c =
    List.fold_left (fun w row -> max w (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun i cell ->
           let w = List.nth widths i in
           if i = 0 then Printf.sprintf "%-*s" w cell else Printf.sprintf "%*s" w cell)
         row)
  in
  let total_width = List.fold_left ( + ) (2 * (ncols - 1)) widths in
  Printf.printf "\n%s\n%s\n" title (hr (max total_width (String.length title)));
  Printf.printf "%s\n%s\n" (render_row header) (hr total_width);
  List.iter (fun r -> Printf.printf "%s\n" (render_row r)) rows;
  flush stdout

let fsec s = if s < 0.001 then Printf.sprintf "%.1fµs" (s *. 1e6)
             else if s < 1.0 then Printf.sprintf "%.2fms" (s *. 1e3)
             else Printf.sprintf "%.2fs" s

let fops v =
  if v >= 1e6 then Printf.sprintf "%.2fM/s" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.1fk/s" (v /. 1e3)
  else Printf.sprintf "%.0f/s" v

let fint = string_of_int
let ffloat f = Printf.sprintf "%.2f" f

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  %s\n" s) fmt
let section title = Printf.printf "\n================ %s ================\n" title

(* -- scaling, metrics, guards ------------------------------------------- *)

(* BENCH_SCALE shrinks (or grows) every experiment's N — the CI smoke job
   runs the suite at 0.1 so it finishes in seconds while still exercising
   the same code paths and guards. *)
let scale =
  match Sys.getenv_opt "BENCH_SCALE" with
  | Some s -> ( try float_of_string s with _ -> 1.0)
  | None -> 1.0

let scaled n = max 1 (int_of_float (float n *. scale))

(* Named scalar results, accumulated across experiments and dumped as JSON
   with --json FILE; the committed BENCH_*.json baselines are these. *)
let metrics : (string * float) list ref = ref []
let metric name v = metrics := (name, v) :: !metrics

(* The full Stats diff of an experiment, one metric per counter, so --json
   baselines capture engine work (pages, probes, syncs, ...) and not just
   wall time. *)
let stats_metrics prefix s =
  List.iter
    (fun (name, v) -> metric (Printf.sprintf "%s.stats.%s" prefix name) (float_of_int v))
    (Ode_util.Stats.to_list s)

let guard_failures : string list ref = ref []

(* A guarded metric: outside [lo, hi] the run still completes (every table
   prints) but the process exits nonzero, failing the bench job. *)
let guard name ?lo ?hi v =
  metric name v;
  let bad_lo = match lo with Some l -> v < l | None -> false in
  let bad_hi = match hi with Some h -> v > h | None -> false in
  let bounds =
    Printf.sprintf "[%s, %s]"
      (match lo with Some l -> Printf.sprintf "%.2f" l | None -> "-inf")
      (match hi with Some h -> Printf.sprintf "%.2f" h | None -> "+inf")
  in
  if bad_lo || bad_hi then begin
    guard_failures := name :: !guard_failures;
    note "GUARD FAIL: %s = %.3f outside %s" name v bounds
  end
  else note "guard ok: %s = %.3f within %s" name v bounds

let write_json path =
  let oc = open_out path in
  let finite v = match Float.classify_float v with FP_nan | FP_infinite -> false | _ -> true in
  output_string oc "{\n";
  let items = List.rev !metrics in
  let last = List.length items - 1 in
  List.iteri
    (fun i (k, v) ->
      Printf.fprintf oc "  %S: %s%s\n" k
        (if finite v then Printf.sprintf "%.6f" v else "null")
        (if i = last then "" else ","))
    items;
  output_string oc "}\n";
  close_out oc
