(* Bench-regression gate: compare two flat BENCH json files.

     compare BASELINE.json FRESH.json [--tolerance 0.25]
             [--tolerance-key KEY=FRACTION]...

   The inputs are the `--json` dumps from bench/main.exe: one flat object of
   "metric name" -> number. Only throughput-shaped metrics gate — keys
   containing "rps", "throughput", "speedup" or "ops_per_sec", where higher
   is better. A fresh value below (1 - tolerance) x baseline is a
   regression; any regression makes the exit status 1 so CI can gate on it.
   The baseline should be measured at the same BENCH_SCALE as the fresh run
   (absolute rates are not scale-free: short runs sit in different cache
   and table-size regimes) and recorded conservatively — the committed
   smoke baseline is the per-key minimum over repeated runs, so the gate
   catches real collapses, not scheduler noise. Metrics present on only one
   side are reported and skipped: a renamed or new experiment must not
   silently pass, nor fail the build.

   Some metrics are legitimately noisier than the blanket tolerance allows
   (a contended multicore rate, a tiny smoke-scale denominator). Rather than
   loosening the gate for everything, `--tolerance-key KEY=FRACTION` (repeatable)
   overrides the tolerance for exactly that metric name; each override must
   match a gated baseline key, so a stale override after a metric rename
   fails loudly instead of silently widening nothing. *)

let tolerance = ref 0.25
let key_tolerance : (string * float) list ref = ref []
let files = ref []

let usage () =
  prerr_endline
    "usage: compare BASELINE.json FRESH.json [--tolerance FRACTION] [--tolerance-key \
     KEY=FRACTION]...";
  exit 2

let () =
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: v :: rest ->
        (tolerance := try float_of_string v with Failure _ -> usage ());
        parse rest
    | "--tolerance-key" :: kv :: rest ->
        (match String.index_opt kv '=' with
        | Some i ->
            let key = String.sub kv 0 i in
            let frac = String.sub kv (i + 1) (String.length kv - i - 1) in
            let frac = try float_of_string frac with Failure _ -> usage () in
            if key = "" || frac < 0.0 then usage ();
            key_tolerance := (key, frac) :: !key_tolerance
        | None -> usage ());
        parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | f :: rest ->
        files := f :: !files;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv))

(* -- a parser for exactly the flat object bench/report.ml emits ----------- *)

exception Bad_json of string

let parse_flat path =
  let s = In_channel.with_open_text path In_channel.input_all in
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if peek () <> Some c then raise (Bad_json (Printf.sprintf "%s: expected %c at byte %d" path c !pos));
    incr pos
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 32 in
    let rec go () =
      if !pos >= n then raise (Bad_json (path ^ ": unterminated string"));
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          if !pos + 1 >= n then raise (Bad_json (path ^ ": bad escape"));
          Buffer.add_char b s.[!pos + 1];
          pos := !pos + 2;
          go ()
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let value () =
    skip_ws ();
    if !pos + 4 <= n && String.sub s !pos 4 = "null" then begin
      pos := !pos + 4;
      None
    end
    else begin
      let start = !pos in
      while
        !pos < n
        && match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
      do
        incr pos
      done;
      if !pos = start then raise (Bad_json (Printf.sprintf "%s: expected number at byte %d" path start));
      Some (float_of_string (String.sub s start (!pos - start)))
    end
  in
  expect '{';
  skip_ws ();
  let out = ref [] in
  if peek () = Some '}' then incr pos
  else begin
    let rec members () =
      let k = string_lit () in
      expect ':';
      let v = value () in
      out := (k, v) :: !out;
      skip_ws ();
      match peek () with
      | Some ',' ->
          incr pos;
          skip_ws ();
          members ()
      | Some '}' -> incr pos
      | _ -> raise (Bad_json (path ^ ": expected , or }"))
    in
    members ()
  end;
  List.rev !out

(* -- the gate -------------------------------------------------------------- *)

let contains key sub =
  let n = String.length key and m = String.length sub in
  let rec go i = i + m <= n && (String.sub key i m = sub || go (i + 1)) in
  m = 0 || go 0

let gated key =
  List.exists (contains key) [ "rps"; "throughput"; "speedup"; "ops_per_sec" ]

let () =
  let base_file, fresh_file =
    match List.rev !files with [ b; f ] -> (b, f) | _ -> usage ()
  in
  let base = parse_flat base_file and fresh = parse_flat fresh_file in
  List.iter
    (fun (key, _) ->
      if not (List.exists (fun (k, _) -> k = key && gated k) base) then begin
        Printf.eprintf "compare: --tolerance-key %s matches no gated baseline metric\n" key;
        exit 2
      end)
    !key_tolerance;
  let tol_for key =
    match List.assoc_opt key !key_tolerance with Some t -> t | None -> !tolerance
  in
  let regressions = ref [] in
  let compared = ref 0 in
  Printf.printf "%-48s %12s %12s %8s\n" "metric" "baseline" "fresh" "delta";
  List.iter
    (fun (key, bv) ->
      if gated key then
        match (bv, List.assoc_opt key fresh) with
        | None, _ -> Printf.printf "%-48s %12s (baseline null, skipped)\n" key "-"
        | _, None -> Printf.printf "%-48s %12s (missing from fresh run, skipped)\n" key "-"
        | _, Some None -> Printf.printf "%-48s %12s (null in fresh run, skipped)\n" key "-"
        | Some b, Some (Some f) ->
            incr compared;
            let delta = if b = 0.0 then 0.0 else (f -. b) /. b in
            let tol = tol_for key in
            Printf.printf "%-48s %12.2f %12.2f %+7.1f%%%s\n" key b f (100.0 *. delta)
              (if tol <> !tolerance then Printf.sprintf "  (tol %.0f%%)" (100.0 *. tol) else "");
            if f < b *. (1.0 -. tol) then regressions := (key, b, f, tol) :: !regressions)
    base;
  List.iter
    (fun (key, _) ->
      if gated key && not (List.mem_assoc key base) then
        Printf.printf "%-48s %12s (new metric, no baseline)\n" key "-")
    fresh;
  Printf.printf "\n%d throughput metrics compared, tolerance %.0f%%\n" !compared
    (100.0 *. !tolerance);
  match List.rev !regressions with
  | [] -> print_endline "no regressions"
  | rs ->
      List.iter
        (fun (key, b, f, tol) ->
          Printf.printf "REGRESSION %s: %.2f -> %.2f (%.1f%% below baseline, tolerance %.0f%%)\n"
            key b f
            (100.0 *. (1.0 -. (f /. b)))
            (100.0 *. tol))
        rs;
      exit 1
