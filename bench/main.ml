(* Benchmark harness for the ODE reproduction.

     dune exec bench/main.exe                 -- run every experiment (tables)
     dune exec bench/main.exe -- E3 E5        -- run selected experiments
     dune exec bench/main.exe -- --bechamel   -- Bechamel micro-benchmarks

   Each experiment E1..E12 reifies one performance-relevant claim of the
   paper; EXPERIMENTS.md maps experiments to paper sections and records the
   expected vs measured shape. *)

let run_tables which =
  let selected =
    match which with
    | [] -> Experiments.all
    | names ->
        List.filter (fun (n, _) -> List.mem (String.uppercase_ascii n) (List.map String.uppercase_ascii names)) Experiments.all
  in
  if selected = [] then begin
    Printf.eprintf "no such experiment; known: %s\n"
      (String.concat " " (List.map fst Experiments.all));
    exit 2
  end;
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (name, f) ->
      Ode_util.Stats.reset ();
      f ();
      (* everything the experiment did, from the post-reset zero state *)
      Report.stats_metrics name (Ode_util.Stats.snapshot ()))
    selected;
  Printf.printf "\ntotal bench wall time: %.1fs\n" (Unix.gettimeofday () -. t0)

(* -- bechamel micro-benchmarks: one Test per experiment ------------------- *)

let bechamel_tests () =
  let open Bechamel in
  let module Db = Ode.Database in
  let module Value = Ode_model.Value in
  (* Shared fixtures built once. *)
  let db = Db.open_in_memory () in
  ignore (Db.define db "class mb { k: int; v: string; };");
  Db.create_cluster db "mb";
  Db.create_index db ~cls:"mb" ~field:"k";
  let rng = Ode_util.Prng.create 17 in
  let oids =
    Db.with_txn db (fun txn ->
        List.init 5_000 (fun i ->
            Db.pnew txn "mb" [ ("k", Int (Ode_util.Prng.int rng 5_000)); ("v", Str (string_of_int i)) ]))
  in
  let first = List.hd oids in
  let pred = Ode_lang.Parser.expr "x.k == 42" in
  let scan_pred = Ode_lang.Parser.expr "x.k + 1 == 43" (* not sargable: forces a scan *) in
  Test.make_grouped ~name:"ode"
    [
      (* E1: object write path *)
      Test.make ~name:"E1.pnew+commit" (Staged.stage (fun () ->
          Db.with_txn db (fun txn -> ignore (Db.pnew txn "mb" [ ("k", Int 1); ("v", Str "x") ]))));
      (* E1: object read path *)
      Test.make ~name:"E1.get_field" (Staged.stage (fun () ->
          Db.with_txn db (fun txn -> ignore (Db.get_field txn first "k"))));
      (* E3: index probe vs scan *)
      Test.make ~name:"E3.index_probe" (Staged.stage (fun () ->
          Db.with_txn db (fun _ ->
              ignore (Ode.Query.count db ~var:"x" ~cls:"mb" ~suchthat:pred ()))));
      Test.make ~name:"E3.full_scan" (Staged.stage (fun () ->
          Db.with_txn db (fun _ ->
              ignore (Ode.Query.count db ~var:"x" ~cls:"mb" ~suchthat:scan_pred ()))));
      (* E7: version creation *)
      Test.make ~name:"E7.newversion" (Staged.stage (fun () ->
          Db.with_txn db (fun txn -> ignore (Db.newversion txn first))));
      (* E8: constrained update commit *)
      Test.make ~name:"E8.update_commit" (Staged.stage (fun () ->
          Db.with_txn db (fun txn -> Db.set_field txn first "v" (Str "y"))));
      (* E11: set membership *)
      (let s = Ode.Odeset.of_list (List.init 500 (fun i -> Value.Int i)) in
       Test.make ~name:"E11.set_mem" (Staged.stage (fun () -> ignore (Ode.Odeset.mem (Value.Int 250) s))));
      (* E12: raw B+tree probe *)
      (let t =
         Ode_index.Bptree.attach
           (Ode_storage.Buffer_pool.create ~capacity:128 (Ode_storage.Disk.in_memory ()))
       in
       for i = 0 to 9_999 do
         Ode_index.Bptree.insert t (Ode_util.Key.of_int i) "v"
       done;
       Test.make ~name:"E12.bptree_find" (Staged.stage (fun () ->
           ignore (Ode_index.Bptree.find t (Ode_util.Key.of_int 7_777)))));
    ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let results =
    List.map (fun i -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) i raw) instances
  in
  let results = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) instances results in
  Printf.printf "\nBechamel micro-benchmarks (ns/run):\n";
  Hashtbl.iter
    (fun _ tbl ->
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-24s %12.1f ns\n" name est
          | _ -> Printf.printf "  %-24s (no estimate)\n" name)
        tbl)
    results

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args = List.filter (fun a -> a <> "--") args in
  let rec extract_json acc = function
    | "--json" :: file :: rest -> (Some file, List.rev_append acc rest)
    | x :: rest -> extract_json (x :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let json, args = extract_json [] args in
  if List.mem "--bechamel" args then run_bechamel ()
  else begin
    run_tables (List.filter (fun a -> a <> "--bechamel") args);
    (match json with Some file -> Report.write_json file | None -> ());
    if !Report.guard_failures <> [] then begin
      Printf.eprintf "bench guards failed: %s\n" (String.concat ", " !Report.guard_failures);
      exit 1
    end
  end
