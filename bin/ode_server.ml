(* The ODE network server: serve one database directory over TCP.

     ode_server --db mydb                        # port 7764
     ode_server --db mydb --port 0 --port-file p # ephemeral port, written to p
     ode_server --db mydb --max-conns 128 --idle-timeout 60

   Replication:

     ode_server --db pri --repl-port 7765            # primary, serves standbys
     ode_server --db rep --port 7774 \
                --replica-of 127.0.0.1:7765          # warm standby (read-only)

   A standby bootstraps from the primary (WAL resume or snapshot), applies
   the stream, serves read-only queries, and becomes a primary on SIGUSR1
   or the .promote dot command. --sync-repl makes a primary hold each
   client ack until a standby acknowledged the commit (semi-sync).

   SIGINT/SIGTERM trigger a graceful shutdown: pending responses are
   flushed, open transactions rolled back, and the store checkpointed, so
   the directory reopens with nothing to recover. *)

let default_port = 7764

let parse_host_port s =
  match String.rindex_opt s ':' with
  | None -> None
  | Some i -> (
      let host = String.sub s 0 i in
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some port when host <> "" -> Some (host, port)
      | _ -> None)

let main db_dir port max_conns idle_timeout durability group_window port_file repl_port
    metrics_port metrics_port_file slow_query_ms slow_query_log trace_on sync_repl
    replica_of domains =
  match db_dir with
  | None ->
      prerr_endline "ode_server: --db DIR is required";
      exit 2
  | Some dir ->
      let upstream =
        match replica_of with
        | None -> None
        | Some s -> (
            match parse_host_port s with
            | Some hp -> Some hp
            | None ->
                Printf.eprintf "ode_server: --replica-of wants HOST:PORT, got %s\n" s;
                exit 2)
      in
      let db, replica =
        match upstream with
        | None -> (
            ( (try Ode.Database.open_ dir
               with Ode_util.Codec.Corrupt msg ->
                 Printf.eprintf "ode_server: %s is corrupt: %s\n" dir msg;
                 exit 3),
              None ))
        | Some (host, uport) -> (
            match Ode_served.Replication.bootstrap ~db_dir:dir ~host ~port:uport () with
            | db, up -> (db, Some (host, uport, up))
            | exception Ode_served.Replication.Resync msg ->
                Printf.eprintf "ode_server: bootstrap from %s:%d failed: %s\n" host uport msg;
                exit 3
            | exception Unix.Unix_error (e, _, _) ->
                Printf.eprintf "ode_server: cannot reach primary %s:%d: %s\n" host uport
                  (Unix.error_message e);
                exit 1)
      in
      (match slow_query_ms with
      | Some ms ->
          let log_path =
            match slow_query_log with Some f -> f | None -> Filename.concat dir "slow_query.log"
          in
          Ode_util.Slowlog.configure ~log_path ~threshold_ms:ms ()
      | None -> ());
      if trace_on then begin
        Ode_util.Trace.set_process_label
          (match replica_of with Some _ -> "ode_server (replica)" | None -> "ode_server");
        Ode_util.Trace.set_enabled true
      end;
      let server =
        try
          Ode_served.Server.create ~max_conns ~idle_timeout ~durability ~group_window
            ?repl_port ?metrics_port ~sync_repl ?replica ~domains ~db ~port ()
        with Unix.Unix_error (e, _, _) ->
          Printf.eprintf "ode_server: cannot listen on port %d: %s\n" port
            (Unix.error_message e);
          exit 1
      in
      Ode_served.Server.handle_signals server;
      let bound = Ode_served.Server.port server in
      (match port_file with
      | Some f -> Out_channel.with_open_text f (fun oc -> Printf.fprintf oc "%d\n" bound)
      | None -> ());
      (match metrics_port_file with
      | Some f ->
          Out_channel.with_open_text f (fun oc ->
              Printf.fprintf oc "%d\n" (Ode_served.Server.metrics_port server))
      | None -> ());
      let role =
        match replica with
        | Some (h, p, _) -> Printf.sprintf ", replica of %s:%d" h p
        | None -> (
            match repl_port with
            | Some _ ->
                Printf.sprintf ", replication on port %d%s"
                  (Ode_served.Server.repl_port server)
                  (if sync_repl then " (semi-sync)" else "")
            | None -> "")
      in
      let obs =
        match metrics_port with
        | Some _ ->
            Printf.sprintf ", metrics on port %d" (Ode_served.Server.metrics_port server)
        | None -> ""
      in
      Printf.printf
        "ode_server: serving %s on 127.0.0.1:%d (max %d conns, idle timeout %gs, durability \
         %s, group window %d, domains %d%s)\n\
         %!"
        dir bound max_conns idle_timeout
        (Ode.Database.durability_name durability)
        group_window domains (role ^ obs);
      Ode_served.Server.serve server;
      print_endline "ode_server: shutting down";
      Ode.Database.close db;
      exit 0

open Cmdliner

let db_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "db" ] ~docv:"DIR" ~doc:"Database directory to serve (created if missing).")

let port =
  Arg.(
    value
    & opt int default_port
    & info [ "p"; "port" ] ~docv:"PORT" ~doc:"TCP port to listen on (0 = ephemeral).")

let max_conns =
  Arg.(
    value
    & opt int 64
    & info [ "max-conns" ] ~docv:"N"
        ~doc:"Concurrent session limit; extra clients get a busy rejection.")

let idle_timeout =
  Arg.(
    value
    & opt float 300.
    & info [ "idle-timeout" ] ~docv:"SECONDS"
        ~doc:"Evict connections idle this long (0 disables).")

let durability =
  let modes =
    Ode.Database.[ ("full", Full); ("group", Group); ("async", Async) ]
  in
  Arg.(
    value
    & opt (enum modes) Ode.Database.Full
    & info [ "durability" ] ~docv:"MODE"
        ~doc:
          "When commits fsync: $(b,full) = at every commit; $(b,group) = one shared fsync \
           per scheduler batch, replies still wait for it; $(b,async) = replies don't wait, \
           loss bounded by the group window.")

let group_window =
  Arg.(
    value
    & opt int 64
    & info [ "group-window" ] ~docv:"N"
        ~doc:"Max commits deferred before a forced fsync under group/async durability.")

let port_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "port-file" ] ~docv:"FILE"
        ~doc:"Write the bound port here once listening (for scripts using --port 0).")

let repl_port =
  Arg.(
    value
    & opt (some int) None
    & info [ "repl-port" ] ~docv:"PORT"
        ~doc:"Also serve the replication stream for standbys on this port (0 = ephemeral).")

let metrics_port =
  Arg.(
    value
    & opt (some int) None
    & info [ "metrics-port" ] ~docv:"PORT"
        ~doc:
          "Serve a minimal HTTP observability endpoint on this port (0 = ephemeral): \
           $(b,GET /metrics) is Prometheus text exposition, $(b,GET /metrics.json) the \
           same as JSON, $(b,GET /health) a JSON liveness document with role and LSNs.")

let metrics_port_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-port-file" ] ~docv:"FILE"
        ~doc:"Write the bound metrics port here once listening (for --metrics-port 0).")

let slow_query_ms =
  Arg.(
    value
    & opt (some int) None
    & info [ "slow-query-ms" ] ~docv:"MS"
        ~doc:
          "Arm the slow-query log: requests slower than MS milliseconds (queue wait + \
           execution) are appended as JSON lines, with the per-plan-node profile for \
           queries. Inspect with the $(b,.slow) dot command.")

let slow_query_log =
  Arg.(
    value
    & opt (some string) None
    & info [ "slow-query-log" ] ~docv:"FILE"
        ~doc:
          "Slow-query log path (default DIR/slow_query.log). Rotated once to FILE.1 when \
           it exceeds 8 MiB.")

let trace_on =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Enable the in-memory span tracer at startup (same as the $(b,.trace on) dot \
           command); dump with $(b,.trace dump FILE).")

let sync_repl =
  Arg.(
    value & flag
    & info [ "sync-repl" ]
        ~doc:
          "Semi-synchronous replication: hold each client ack until a streaming standby \
           acknowledged the commit it covers (degrades, with a counter, if no standby keeps \
           up). Requires $(b,--repl-port).")

let replica_of =
  Arg.(
    value
    & opt (some string) None
    & info [ "replica-of" ] ~docv:"HOST:PORT"
        ~doc:
          "Run as a warm standby of the primary whose $(b,--repl-port) is HOST:PORT: \
           bootstrap the store from it, apply its WAL stream, serve reads, reject writes. \
           SIGUSR1 or the $(b,.promote) dot command promotes to primary.")

let domains =
  Arg.(
    value
    & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Serving domains: 1 (default) runs the classic single-domain loop; N > 1 adds \
           N-1 reader domains that execute read-only queries in parallel while writes stay \
           on the writer domain.")

let cmd =
  let doc = "network server for the ODE object database" in
  Cmd.v
    (Cmd.info "ode_server" ~doc)
    Term.(
      const main $ db_dir $ port $ max_conns $ idle_timeout $ durability $ group_window
      $ port_file $ repl_port $ metrics_port $ metrics_port_file $ slow_query_ms
      $ slow_query_log $ trace_on $ sync_repl $ replica_of $ domains)

let () = exit (Cmd.eval cmd)
