(* The ODE network server: serve one database directory over TCP.

     ode_server --db mydb                        # port 7764
     ode_server --db mydb --port 0 --port-file p # ephemeral port, written to p
     ode_server --db mydb --max-conns 128 --idle-timeout 60

   SIGINT/SIGTERM trigger a graceful shutdown: pending responses are
   flushed, open transactions rolled back, and the store checkpointed, so
   the directory reopens with nothing to recover. *)

let default_port = 7764

let main db_dir port max_conns idle_timeout durability group_window port_file =
  match db_dir with
  | None ->
      prerr_endline "ode_server: --db DIR is required";
      exit 2
  | Some dir ->
      let db =
        try Ode.Database.open_ dir
        with Ode_util.Codec.Corrupt msg ->
          Printf.eprintf "ode_server: %s is corrupt: %s\n" dir msg;
          exit 3
      in
      let server =
        try Ode_served.Server.create ~max_conns ~idle_timeout ~durability ~group_window ~db ~port ()
        with Unix.Unix_error (e, _, _) ->
          Printf.eprintf "ode_server: cannot listen on port %d: %s\n" port
            (Unix.error_message e);
          exit 1
      in
      Ode_served.Server.handle_signals server;
      let bound = Ode_served.Server.port server in
      (match port_file with
      | Some f -> Out_channel.with_open_text f (fun oc -> Printf.fprintf oc "%d\n" bound)
      | None -> ());
      Printf.printf
        "ode_server: serving %s on 127.0.0.1:%d (max %d conns, idle timeout %gs, durability \
         %s, group window %d)\n\
         %!"
        dir bound max_conns idle_timeout
        (Ode.Database.durability_name durability)
        group_window;
      Ode_served.Server.serve server;
      print_endline "ode_server: shutting down";
      Ode.Database.close db;
      exit 0

open Cmdliner

let db_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "db" ] ~docv:"DIR" ~doc:"Database directory to serve (created if missing).")

let port =
  Arg.(
    value
    & opt int default_port
    & info [ "p"; "port" ] ~docv:"PORT" ~doc:"TCP port to listen on (0 = ephemeral).")

let max_conns =
  Arg.(
    value
    & opt int 64
    & info [ "max-conns" ] ~docv:"N"
        ~doc:"Concurrent session limit; extra clients get a busy rejection.")

let idle_timeout =
  Arg.(
    value
    & opt float 300.
    & info [ "idle-timeout" ] ~docv:"SECONDS"
        ~doc:"Evict connections idle this long (0 disables).")

let durability =
  let modes =
    Ode.Database.[ ("full", Full); ("group", Group); ("async", Async) ]
  in
  Arg.(
    value
    & opt (enum modes) Ode.Database.Full
    & info [ "durability" ] ~docv:"MODE"
        ~doc:
          "When commits fsync: $(b,full) = at every commit; $(b,group) = one shared fsync \
           per scheduler batch, replies still wait for it; $(b,async) = replies don't wait, \
           loss bounded by the group window.")

let group_window =
  Arg.(
    value
    & opt int 64
    & info [ "group-window" ] ~docv:"N"
        ~doc:"Max commits deferred before a forced fsync under group/async durability.")

let port_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "port-file" ] ~docv:"FILE"
        ~doc:"Write the bound port here once listening (for scripts using --port 0).")

let cmd =
  let doc = "network server for the ODE object database" in
  Cmd.v
    (Cmd.info "ode_server" ~doc)
    Term.(
      const main $ db_dir $ port $ max_conns $ idle_timeout $ durability $ group_window
      $ port_file)

let () = exit (Cmd.eval cmd)
