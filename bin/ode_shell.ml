(* The ODE shell: an interactive (or scripted) interpreter for the O++-like
   surface language.

     ode_shell mydb                 # REPL against the database in ./mydb
     ode_shell --memory             # throwaway in-memory database
     ode_shell mydb -f script.oql   # run a script, then exit
     ode_shell mydb -e 'show classes;'
     ode_shell --connect localhost:7764   # remote session via ode_server

   Input is accumulated until it parses (so multi-line class declarations
   work); an empty line forces an error report instead of more input. In
   --connect mode every complete program is shipped to the server over the
   wire protocol; dot commands run remotely except [.quit] and [.read FILE],
   which the REPL resolves locally (the file is read on this machine) so
   scripts behave identically in both modes. *)

let banner =
  "ODE shell — O++ data model on OCaml. Statements end with ';'.\n\
   Try: class point { x: int; y: int; };  create cluster point;\n\
   \     p := pnew point { x = 1, y = 2 };  forall q in point { print q.x; };\n\
   Dot commands: .help .stats .recovery .metrics .trace .explain .profile\n\
   \              .durability .sync .read .quit\n"

(* What one REPL turn needs from either backend: run a dot line (true =
   keep going, false = quit), and run a parsed-complete program. *)
type driver = { run_dot : string -> bool; run_program : string -> unit }

let print_unless_empty out = if out <> "" then print_endline out

let local_driver shell =
  {
    run_dot =
      (fun line ->
        (match Ode.Shell.dot_command shell line with
        | Some out -> print_unless_empty out
        | None -> ());
        not (Ode.Shell.wants_quit shell));
    run_program =
      (fun source ->
        match Ode.Shell.exec_catching shell source with
        | Ok () -> ()
        | Error msg -> Printf.printf "error: %s\n" msg);
  }

let remote_run client source =
  match Ode_served.Client.exec client source with
  | out -> print_string out
  | exception Ode_served.Client.Server_error msg -> Printf.printf "error: %s\n" msg
  | exception Ode_served.Client.Conflict msg ->
      Printf.printf "error: conflict: %s (transaction aborted; begin again to retry)\n" msg

let remote_driver client =
  {
    run_dot =
      (fun line ->
        let cmd, rest =
          match String.index_opt line ' ' with
          | None -> (line, "")
          | Some i ->
              (String.sub line 0 i, String.trim (String.sub line i (String.length line - i)))
        in
        match cmd with
        | ".quit" -> false
        | ".read" when rest <> "" -> (
            match In_channel.with_open_text rest In_channel.input_all with
            | source ->
                remote_run client source;
                true
            | exception Sys_error msg ->
                Printf.printf "error: read: %s\n" msg;
                true)
        | _ ->
            (match Ode_served.Client.dot client line with
            | out -> print_unless_empty out
            | exception Ode_served.Client.Server_error msg -> Printf.printf "error: %s\n" msg);
            true);
    run_program = remote_run client;
  }

let run_repl driver =
  print_string banner;
  let buf = Buffer.create 256 in
  let rec loop () =
    print_string (if Buffer.length buf = 0 then "ode> " else "...> ");
    flush stdout;
    match In_channel.input_line stdin with
    | None -> print_newline ()
    | Some line
      when Buffer.length buf = 0
           && String.length (String.trim line) > 0
           && (String.trim line).[0] = '.' ->
        let keep_going = driver.run_dot (String.trim line) in
        flush stdout;
        if keep_going then loop ()
    | Some line ->
        let force = String.trim line = "" in
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        let source = Buffer.contents buf in
        let complete =
          (not force)
          &&
          match Ode_lang.Parser.program source with
          | _ -> true
          | exception Ode_lang.Parser.Parse_error (_, off)
            when off >= String.length (String.trim source) ->
              false (* likely just incomplete input: keep reading *)
          | exception _ -> true
        in
        if complete || force then begin
          Buffer.clear buf;
          driver.run_program source;
          flush stdout
        end;
        loop ()
  in
  loop ()

(* Drive a session (REPL, -f script, or -e source) over [driver]; returns
   the process exit code. [run_checked] is the non-REPL path, which must
   report failure through the exit code. *)
let drive driver run_checked file expr =
  match (file, expr) with
  | Some path, _ ->
      let source = In_channel.with_open_text path In_channel.input_all in
      run_checked source
  | None, Some src -> run_checked src
  | None, None ->
      run_repl driver;
      0

let parse_host_port s =
  match String.rindex_opt s ':' with
  | None -> ("127.0.0.1", int_of_string s)
  | Some i ->
      let host = String.sub s 0 i in
      let host = if host = "" || host = "localhost" then "127.0.0.1" else host in
      (host, int_of_string (String.sub s (i + 1) (String.length s - i - 1)))

let main memory file expr connect dir =
  match connect with
  | Some target -> (
      let host, port =
        try parse_host_port target
        with _ ->
          Printf.eprintf "ode_shell: --connect expects HOST:PORT, got %s\n" target;
          exit 2
      in
      match Ode_served.Client.connect ~host ~port () with
      | exception Ode_served.Client.Rejected msg ->
          Printf.eprintf "ode_shell: %s:%d rejected us: %s\n" host port msg;
          exit 1
      | exception Unix.Unix_error (e, _, _) ->
          Printf.eprintf "ode_shell: cannot reach %s:%d: %s\n" host port (Unix.error_message e);
          exit 1
      | client ->
          let run_checked source =
            match Ode_served.Client.exec client source with
            | out ->
                print_string out;
                0
            | exception Ode_served.Client.Server_error msg ->
                Printf.eprintf "error: %s\n" msg;
                1
            | exception Ode_served.Client.Conflict msg ->
                Printf.eprintf "error: conflict: %s\n" msg;
                1
          in
          let code = drive (remote_driver client) run_checked file expr in
          Ode_served.Client.close client;
          exit code)
  | None ->
      let db =
        if memory then Ode.Database.open_in_memory ()
        else
          match dir with
          | Some d -> (
              try Ode.Database.open_ d
              with Ode_util.Codec.Corrupt msg ->
                Printf.eprintf "ode_shell: %s is corrupt: %s\n" d msg;
                exit 3)
          | None ->
              prerr_endline "ode_shell: need a database directory (or --memory, or --connect)";
              exit 2
      in
      let shell = Ode.Shell.create db in
      let run_checked source =
        match Ode.Shell.exec_catching shell source with
        | Ok () -> 0
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            1
      in
      let code = drive (local_driver shell) run_checked file expr in
      Ode.Database.close db;
      exit code

open Cmdliner

let memory =
  Arg.(value & flag & info [ "memory"; "m" ] ~doc:"Use a throwaway in-memory database.")

let file =
  Arg.(
    value
    & opt (some string) None
    & info [ "f"; "file" ] ~docv:"SCRIPT" ~doc:"Execute a script file and exit.")

let expr =
  Arg.(
    value
    & opt (some string) None
    & info [ "e"; "exec" ] ~docv:"SOURCE" ~doc:"Execute the given source and exit.")

let connect =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"HOST:PORT"
        ~doc:"Proxy the session to a running ode_server instead of opening a database.")

let dir = Arg.(value & pos 0 (some string) None & info [] ~docv:"DBDIR")

let cmd =
  let doc = "interactive shell for the ODE object database" in
  Cmd.v (Cmd.info "ode_shell" ~doc) Term.(const main $ memory $ file $ expr $ connect $ dir)

let () = exit (Cmd.eval cmd)
