(* The ODE shell: an interactive (or scripted) interpreter for the O++-like
   surface language.

     ode_shell mydb                 # REPL against the database in ./mydb
     ode_shell --memory             # throwaway in-memory database
     ode_shell mydb -f script.oql   # run a script, then exit
     ode_shell mydb -e 'show classes;'

   Input is accumulated until it parses (so multi-line class declarations
   work); an empty line forces an error report instead of more input. *)

let banner =
  "ODE shell — O++ data model on OCaml. Statements end with ';'.\n\
   Try: class point { x: int; y: int; };  create cluster point;\n\
   \     p := pnew point { x = 1, y = 2 };  forall q in point { print q.x; };\n\
   Dot commands: .help .stats .recovery .metrics .trace .explain .profile\n"

let run_repl shell =
  print_string banner;
  let buf = Buffer.create 256 in
  let rec loop () =
    print_string (if Buffer.length buf = 0 then "ode> " else "...> ");
    flush stdout;
    match In_channel.input_line stdin with
    | None -> print_newline ()
    | Some line
      when Buffer.length buf = 0
           && String.length (String.trim line) > 0
           && (String.trim line).[0] = '.' ->
        (match Ode.Shell.dot_command shell line with
        | Some out -> print_endline out
        | None -> ());
        flush stdout;
        loop ()
    | Some line ->
        let force = String.trim line = "" in
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        let source = Buffer.contents buf in
        let complete =
          (not force)
          &&
          match Ode_lang.Parser.program source with
          | _ -> true
          | exception Ode_lang.Parser.Parse_error (_, off)
            when off >= String.length (String.trim source) ->
              false (* likely just incomplete input: keep reading *)
          | exception _ -> true
        in
        if complete || force then begin
          Buffer.clear buf;
          (match Ode.Shell.exec_catching shell source with
          | Ok () -> ()
          | Error msg -> Printf.printf "error: %s\n" msg);
          flush stdout
        end;
        loop ()
  in
  loop ()

let main memory file expr dir =
  let db =
    if memory then Ode.Database.open_in_memory ()
    else
      match dir with
      | Some d -> (
          try Ode.Database.open_ d
          with Ode_util.Codec.Corrupt msg ->
            Printf.eprintf "ode_shell: %s is corrupt: %s\n" d msg;
            exit 3)
      | None ->
          prerr_endline "ode_shell: need a database directory (or --memory)";
          exit 2
  in
  let shell = Ode.Shell.create db in
  let code =
    match (file, expr) with
    | Some path, _ -> (
        let source = In_channel.with_open_text path In_channel.input_all in
        match Ode.Shell.exec_catching shell source with
        | Ok () -> 0
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            1)
    | None, Some src -> (
        match Ode.Shell.exec_catching shell src with
        | Ok () -> 0
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            1)
    | None, None ->
        run_repl shell;
        0
  in
  Ode.Database.close db;
  exit code

open Cmdliner

let memory =
  Arg.(value & flag & info [ "memory"; "m" ] ~doc:"Use a throwaway in-memory database.")

let file =
  Arg.(
    value
    & opt (some string) None
    & info [ "f"; "file" ] ~docv:"SCRIPT" ~doc:"Execute a script file and exit.")

let expr =
  Arg.(
    value
    & opt (some string) None
    & info [ "e"; "exec" ] ~docv:"SOURCE" ~doc:"Execute the given source and exit.")

let dir = Arg.(value & pos 0 (some string) None & info [] ~docv:"DBDIR")

let cmd =
  let doc = "interactive shell for the ODE object database" in
  Cmd.v (Cmd.info "ode_shell" ~doc) Term.(const main $ memory $ file $ expr $ dir)

let () = exit (Cmd.eval cmd)
