module H = Ode_index.Hash_index
module Disk = Ode_storage.Disk
module Pool = Ode_storage.Buffer_pool

let mk () = H.attach (Pool.create ~capacity:256 (Disk.in_memory ()))
let assert_ok t = match H.check t with Ok () -> () | Error e -> Alcotest.fail e

let basic () =
  let t = mk () in
  H.insert t "a" "1";
  H.insert t "b" "2";
  Alcotest.(check (option string)) "find a" (Some "1") (H.find t "a");
  Alcotest.(check (option string)) "miss" None (H.find t "zz");
  H.insert t "a" "1'";
  Alcotest.(check (option string)) "replaced" (Some "1'") (H.find t "a");
  Tutil.check_int "count" 2 (H.count t);
  Tutil.check_bool "delete" true (H.delete t "a");
  Tutil.check_bool "delete miss" false (H.delete t "a");
  Tutil.check_int "count after" 1 (H.count t);
  assert_ok t

let grows_by_splitting () =
  let t = mk () in
  let n = 5_000 in
  for i = 0 to n - 1 do
    H.insert t (Printf.sprintf "key-%d" i) (string_of_int i)
  done;
  Tutil.check_bool "buckets grew" true (H.bucket_count t > 16);
  Tutil.check_int "count" n (H.count t);
  for i = 0 to n - 1 do
    if H.find t (Printf.sprintf "key-%d" i) <> Some (string_of_int i) then
      Alcotest.failf "lost key %d (buckets %d)" i (H.bucket_count t)
  done;
  assert_ok t

let iter_covers_everything () =
  let t = mk () in
  for i = 0 to 499 do
    H.insert t (Printf.sprintf "k%d" i) ""
  done;
  let seen = ref 0 in
  H.iter t (fun _ _ -> incr seen);
  Tutil.check_int "all entries" 500 !seen

let persistence () =
  let dir = Tutil.temp_dir "hash" in
  let path = Filename.concat dir "h.idx" in
  let d = Disk.open_file path in
  let t = H.attach (Pool.create ~capacity:64 d) in
  for i = 0 to 2_000 do
    H.insert t (Printf.sprintf "key-%d" i) (string_of_int (i * 3))
  done;
  H.flush t;
  Disk.close d;
  let d2 = Disk.open_file path in
  let t2 = H.attach (Pool.create ~capacity:64 d2) in
  Tutil.check_int "count persisted" 2_001 (H.count t2);
  Alcotest.(check (option string)) "value persisted" (Some "4500") (H.find t2 "key-1500");
  assert_ok t2;
  Disk.close d2

let prop_model =
  let ops_gen =
    QCheck.Gen.(
      list_size (int_bound 300)
        (frequency
           [
             (6, map2 (fun k v -> `Insert (k mod 200, v mod 1000)) nat nat);
             (3, map (fun k -> `Delete (k mod 200)) nat);
           ]))
  in
  QCheck.Test.make ~name:"hash index matches model" ~count:50 (QCheck.make ops_gen) (fun ops ->
      let t = mk () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun op ->
          match op with
          | `Insert (k, v) ->
              let ks = Printf.sprintf "k%d" k and vs = string_of_int v in
              H.insert t ks vs;
              Hashtbl.replace model ks vs
          | `Delete k ->
              let ks = Printf.sprintf "k%d" k in
              let was = Hashtbl.mem model ks in
              if H.delete t ks <> was then QCheck.Test.fail_report "delete mismatch";
              Hashtbl.remove model ks)
        ops;
      (match H.check t with Ok () -> () | Error e -> QCheck.Test.fail_report e);
      Hashtbl.fold (fun k v ok -> ok && H.find t k = Some v) model true
      && H.count t = Hashtbl.length model)

let suite =
  [
    ( "hash_index",
      [
        Alcotest.test_case "basic ops" `Quick basic;
        Alcotest.test_case "grows by splitting" `Quick grows_by_splitting;
        Alcotest.test_case "iter covers everything" `Quick iter_covers_everything;
        Alcotest.test_case "persists across reopen" `Quick persistence;
      ] );
    Tutil.qsuite "hash_index.props" [ prop_model ];
  ]
