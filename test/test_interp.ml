(* Statement interpreter details: scoping, control flow, nested loops, the
   implicit-this rewrite, and the new shell commands. *)

module Db = Ode.Database
module Shell = Ode.Shell
module Value = Ode_model.Value

let session script =
  let db = Db.open_in_memory () in
  let out = Buffer.create 256 in
  let shell = Shell.create ~print:(Buffer.add_string out) db in
  let result = Shell.exec_catching shell script in
  let text = Buffer.contents out in
  Db.close db;
  (result, text)

let expect script expected () =
  match session script with
  | Ok (), text -> Tutil.check_string "output" expected text
  | Error msg, _ -> Alcotest.failf "script failed: %s" msg

let loop_var_scoping =
  (* The loop variable shadows and is restored; accumulators persist. *)
  expect
    {|
    class n { v: int; };
    create cluster n;
    pnew n { v = 1 }; pnew n { v = 2 }; pnew n { v = 3 };
    x := 100;
    sum := 0;
    forall x in n { sum := sum + x.v; };
    print sum, x;
    |}
    "6 100\n"

let nested_foralls =
  expect
    {|
    class a4 { i: int; };
    create cluster a4;
    pnew a4 { i = 1 }; pnew a4 { i = 2 };
    pairs := 0;
    forall x in a4 { forall y in a4 suchthat y.i > x.i { pairs := pairs + 1; }; };
    print pairs;
    |}
    "1\n"

let implicit_this_in_methods =
  (* Bare member names inside class bodies are rewritten to this.f, with
     parameters shadowing fields. *)
  expect
    {|
    class acct {
      balance: int;
      method after(balance: int): int = balance;       // param shadows field
      method doubled(): int = balance * 2;              // field via this
    };
    create cluster acct;
    a := pnew acct { balance = 50 };
    print a.doubled(), a.after(7);
    |}
    "100 7\n"

let implicit_this_in_trigger_actions =
  expect
    {|
    class gauge {
      level: int; label: string;
      trigger over(n: int): level > n ==> { print label, "over", str(n); level := n; };
    };
    create cluster gauge;
    g := pnew gauge { level = 1, label = "boiler" };
    activate g.over(10);
    g.level := 99;
    print g.level;
    |}
    (* The update's commit queues the action; the action transaction runs
       before the next statement (weak coupling) and clamps the level via
       the implicit-this assignment [level := n]. *)
    "boiler over 10\n10\n"

let method_calling_method =
  expect
    {|
    class geom {
      w: int; h: int;
      method area(): int = w * h;
      method volume(d: int): int = this.area() * d;
    };
    create cluster geom;
    g := pnew geom { w = 3, h = 4 };
    print g.volume(10);
    |}
    "120\n"

let deep_field_chains =
  expect
    {|
    class leaf3 { tag: string; };
    class mid3 { l: ref leaf3; };
    class top3 { m: ref mid3; };
    create cluster leaf3; create cluster mid3; create cluster top3;
    l := pnew leaf3 { tag = "deep" };
    m := pnew mid3 { l = l };
    t := pnew top3 { m = m };
    print t.m.l.tag;
    m.l := null;
    print t.m.l;
    |}
    "deep\nnull\n"

let list_insert_remove =
  expect
    {|
    class seq3 { xs: list<int>; };
    create cluster seq3;
    s := pnew seq3 { };
    insert 1 into s.xs;
    insert 2 into s.xs;
    insert 1 into s.xs;
    print s.xs;
    remove 1 from s.xs;
    print s.xs, size(s.xs);
    |}
    "[1, 2, 1]\n[2] 1\n"

let if_without_else =
  expect
    {|
    x := 1;
    if (x == 1) { print "one"; };
    if (x == 2) { print "two"; };
    print "end";
    |}
    "one\nend\n"

let show_stats_runs =
  (fun () ->
    match session "show stats;" with
    | Ok (), text -> Tutil.check_bool "mentions counters" true (String.length text > 10)
    | Error e, _ -> Alcotest.failf "failed: %s" e)

let verify_command =
  expect
    {|
    class ok9 { v: int; };
    create cluster ok9;
    pnew ok9 { v = 1 };
    verify;
    |}
    "ok\n"

let dump_command_roundtrips () =
  let db = Db.open_in_memory () in
  let out = Buffer.create 256 in
  let shell = Shell.create ~print:(Buffer.add_string out) db in
  (match
     Shell.exec_catching shell
       {|
       class d9 { v: int; w: string; };
       create cluster d9;
       pnew d9 { v = 1, w = "a" };
       pnew d9 { v = 2, w = "b" };
       dump;
       |}
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "failed: %s" e);
  let script = Buffer.contents out in
  let db2 = Db.open_in_memory () in
  Ode.Dump.import db2 script;
  Tutil.check_int "reloaded extent" 2
    (Db.with_txn db2 (fun _ -> Ode.Query.count db2 ~var:"x" ~cls:"d9" ()));
  Db.close db;
  Db.close db2

let load_statement () =
  let dir = Tutil.temp_dir "load" in
  let script = Filename.concat dir "part.oql" in
  Out_channel.with_open_text script (fun oc ->
      Out_channel.output_string oc
        "class l5 { v: int; };\ncreate cluster l5;\npnew l5 { v = 11 };\n");
  let db = Db.open_in_memory () in
  let out = Buffer.create 32 in
  let shell = Shell.create ~print:(Buffer.add_string out) db in
  (match
     Shell.exec_catching shell
       (Printf.sprintf "load \"%s\";\nforall x in l5 { print x.v; };" script)
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "load failed: %s" e);
  Tutil.check_string "loaded and queried" "11\n" (Buffer.contents out);
  (* Missing files are reported, not fatal. *)
  (match Shell.exec_catching shell "load \"/nonexistent/x.oql\";" with
  | Ok () -> Alcotest.fail "expected error"
  | Error _ -> ());
  Db.close db

let error_inside_explicit_txn_keeps_it_open () =
  let db = Db.open_in_memory () in
  let shell = Shell.create ~print:ignore db in
  (match Shell.exec_catching shell "class e9 { v: int; }; create cluster e9; begin; pnew e9 { v = 1 };" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "setup failed: %s" e);
  (* A runtime error mid-transaction... *)
  (match Shell.exec_catching shell "print nosuchvar;" with
  | Ok () -> Alcotest.fail "expected an error"
  | Error _ -> ());
  (* ...leaves the transaction open; an explicit abort then works, and the
     pnew is gone. *)
  (match Shell.exec_catching shell "abort;" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "abort failed: %s" e);
  Tutil.check_int "rolled back" 0
    (Db.with_txn db (fun _ -> Ode.Query.count db ~var:"x" ~cls:"e9" ()));
  Db.close db

let suite =
  [
    ( "interp",
      [
        Alcotest.test_case "loop variable scoping" `Quick loop_var_scoping;
        Alcotest.test_case "nested foralls" `Quick nested_foralls;
        Alcotest.test_case "implicit this in methods" `Quick implicit_this_in_methods;
        Alcotest.test_case "implicit this in trigger actions" `Quick implicit_this_in_trigger_actions;
        Alcotest.test_case "method calling method" `Quick method_calling_method;
        Alcotest.test_case "deep field chains and null" `Quick deep_field_chains;
        Alcotest.test_case "list insert/remove" `Quick list_insert_remove;
        Alcotest.test_case "if without else" `Quick if_without_else;
        Alcotest.test_case "show stats" `Quick show_stats_runs;
        Alcotest.test_case "verify command" `Quick verify_command;
        Alcotest.test_case "dump command round-trips" `Quick dump_command_roundtrips;
        Alcotest.test_case "load statement" `Quick load_statement;
        Alcotest.test_case "error keeps explicit txn open" `Quick error_inside_explicit_txn_keeps_it_open;
      ] );
  ]
