(* forall iteration: suchthat, by, deep extents, fixpoint, joins, and
   index-plan/scan equivalence. *)

module Db = Ode.Database
module Query = Ode.Query
module Value = Ode_model.Value
module Parser = Ode_lang.Parser

let str s = Value.Str s
let int n = Value.Int n

let seed_university db =
  Db.with_txn db (fun txn ->
      let mk cls name age extra =
        ignore (Db.pnew txn cls ([ ("name", str name); ("age", int age); ("income", int (age * 100)) ] @ extra))
      in
      mk "person" "pat" 30 [];
      mk "person" "quinn" 40 [];
      mk "student" "ann" 20 [ ("gpa", Value.Float 3.9) ];
      mk "student" "bob" 25 [ ("gpa", Value.Float 2.1) ];
      mk "faculty" "carol" 50 [ ("salary", int 9000) ];
      mk "ta" "dave" 27 [ ("gpa", Value.Float 3.0); ("salary", int 1000); ("hours", int 10) ])

let names db ?deep ?suchthat ?by cls =
  Db.with_txn db (fun txn ->
      List.map
        (fun oid -> match Db.get_field txn oid "name" with Value.Str s -> s | _ -> "?")
        (Query.to_list db ~var:"x" ~cls ?deep ?suchthat ?by ()))

let shallow_vs_deep () =
  let db = Tutil.open_university () in
  seed_university db;
  Tutil.check_string_list "shallow person" [ "pat"; "quinn" ] (names db "person");
  Tutil.check_string_list "deep person"
    [ "pat"; "quinn"; "ann"; "bob"; "carol"; "dave" ]
    (names db ~deep:true "person");
  Tutil.check_string_list "deep faculty" [ "carol"; "dave" ] (names db ~deep:true "faculty");
  Db.close db

let suchthat_filters () =
  let db = Tutil.open_university () in
  seed_university db;
  Tutil.check_string_list "age filter" [ "quinn"; "carol" ]
    (names db ~deep:true ~suchthat:(Parser.expr "x.age >= 40") "person");
  Tutil.check_string_list "method in suchthat" [ "ann"; "dave" ]
    (names db ~deep:true ~suchthat:(Parser.expr "x.gpa >= 3.0") "student");
  Db.close db

let by_orders () =
  let db = Tutil.open_university () in
  seed_university db;
  Tutil.check_string_list "asc by age"
    [ "ann"; "bob"; "dave"; "pat"; "quinn"; "carol" ]
    (names db ~deep:true ~by:(Parser.expr "x.age", Ode_lang.Ast.Asc) "person");
  Tutil.check_string_list "desc by name"
    [ "quinn"; "pat"; "dave"; "carol"; "bob"; "ann" ]
    (names db ~deep:true ~by:(Parser.expr "x.name", Ode_lang.Ast.Desc) "person");
  Db.close db

let aggregates_via_fold () =
  let db = Tutil.open_university () in
  seed_university db;
  (* The paper's "average income of persons" loop. *)
  let total, n =
    Db.with_txn db (fun txn ->
        Query.fold db ~var:"p" ~cls:"person" ~deep:true ~init:(0, 0) (fun (t, n) oid ->
            match Db.get_field txn oid "income" with
            | Value.Int i -> (t + i, n + 1)
            | _ -> (t, n)))
  in
  Tutil.check_int "count" 6 n;
  Tutil.check_int "total" ((30 + 40 + 20 + 25 + 50 + 27) * 100) total;
  Db.close db

let index_and_scan_agree () =
  let db = Tutil.open_university () in
  seed_university db;
  let q = Parser.expr "x.age >= 25 && x.age < 50" in
  let before = names db ~deep:true ~suchthat:q "person" in
  Db.create_index db ~cls:"person" ~field:"age";
  let explain = Db.with_txn db (fun _ -> Query.explain db ~var:"x" ~cls:"person" ~suchthat:q ()) in
  Tutil.check_bool "uses the index" true
    (String.length explain >= 11 && String.sub explain 0 11 = "index range");
  let after = names db ~deep:true ~suchthat:q "person" in
  Tutil.check_bool "same rows (order may differ)" true
    (List.sort compare before = List.sort compare after);
  Db.close db

let index_eq_probe () =
  let db = Tutil.open_university () in
  seed_university db;
  Db.create_index db ~cls:"person" ~field:"name";
  let q = Parser.expr "x.name == \"carol\"" in
  let explain = Db.with_txn db (fun _ -> Query.explain db ~var:"x" ~cls:"faculty" ~suchthat:q ()) in
  Tutil.check_bool "eq probe" true (String.length explain >= 11 && String.sub explain 0 11 = "index probe");
  Tutil.check_string_list "probe result" [ "carol" ] (names db ~suchthat:q "faculty");
  Db.close db

let index_sees_txn_writes () =
  let db = Tutil.open_university () in
  seed_university db;
  Db.create_index db ~cls:"person" ~field:"age";
  let q = Parser.expr "x.age == 99" in
  let txn = Db.begin_txn db in
  (fun txn ->
      (* An object updated in this txn must be found via its NEW value and
         not via its old one, even though the index is stale. *)
      let pat = List.hd (Query.to_list db ~var:"x" ~cls:"person" ~suchthat:(Parser.expr "x.name == \"pat\"") ()) in
      Db.set_field txn pat "age" (int 99);
      let hits = Query.to_list db ~var:"x" ~cls:"person" ~suchthat:q () in
      Tutil.check_int "new value found" 1 (List.length hits);
      let old_hits = Query.to_list db ~var:"x" ~cls:"person" ~suchthat:(Parser.expr "x.age == 30") () in
      Tutil.check_int "old value not found" 0 (List.length old_hits);
      (* Created in txn: visible despite index access path. *)
      ignore (Db.pnew txn "person" [ ("name", str "new"); ("age", int 99) ]);
      let hits2 = Query.to_list db ~var:"x" ~cls:"person" ~suchthat:q () in
      Tutil.check_int "created found" 2 (List.length hits2))
    txn;
  Db.abort txn;
  Db.close db

let index_maintenance_on_delete () =
  let db = Tutil.open_university () in
  seed_university db;
  Db.create_index db ~cls:"person" ~field:"age";
  Db.with_txn db (fun txn ->
      let quinn =
        List.hd (Query.to_list db ~var:"x" ~cls:"person" ~suchthat:(Parser.expr "x.age == 40") ())
      in
      Db.pdelete txn quinn);
  Tutil.check_string_list "deleted not found via index" []
    (names db ~suchthat:(Parser.expr "x.age == 40") "person");
  Db.close db

let join_nested_loops () =
  let db = Db.open_in_memory () in
  ignore
    (Db.define db
       "class dept { dname: string; }; class emp { ename: string; dept: ref dept; };");
  Db.create_cluster db "dept";
  Db.create_cluster db "emp";
  Db.with_txn db (fun txn ->
      let cs = Db.pnew txn "dept" [ ("dname", str "cs") ] in
      let ee = Db.pnew txn "dept" [ ("dname", str "ee") ] in
      ignore (Db.pnew txn "emp" [ ("ename", str "a"); ("dept", Value.Ref cs) ]);
      ignore (Db.pnew txn "emp" [ ("ename", str "b"); ("dept", Value.Ref ee) ]);
      ignore (Db.pnew txn "emp" [ ("ename", str "c"); ("dept", Value.Ref cs) ]));
  let pairs = ref [] in
  Db.with_txn db (fun txn ->
      Query.join2 db ~outer:("d", "dept") ~inner:("e", "emp")
        ~suchthat:(Parser.expr "e.dept == d")
        (fun d e ->
          let dn = Db.get_field txn d "dname" and en = Db.get_field txn e "ename" in
          pairs := (Value.to_string dn, Value.to_string en) :: !pairs));
  Tutil.check_int "join cardinality" 3 (List.length !pairs);
  Tutil.check_bool "pairs correct" true
    (List.sort compare !pairs = [ ("\"cs\"", "\"a\""); ("\"cs\"", "\"c\""); ("\"ee\"", "\"b\"") ]);
  Db.close db

let fixpoint_sees_inserts () =
  let db = Db.open_in_memory () in
  ignore (Db.define db "class node { v: int; };");
  Db.create_cluster db "node";
  Db.with_txn db (fun txn -> ignore (Db.pnew txn "node" [ ("v", int 0) ]));
  (* Each visited node with v < 3 creates a successor; fixpoint must visit
     the additions (paper §3.2). *)
  let visited = ref 0 in
  Db.with_txn db (fun txn ->
      Query.run db ~txn ~var:"n" ~cls:"node" ~fixpoint:true (fun oid ->
          incr visited;
          match Db.get_field txn oid "v" with
          | Value.Int v when v < 3 -> ignore (Db.pnew txn "node" [ ("v", int (v + 1)) ])
          | _ -> ()));
  Tutil.check_int "visited closure" 4 !visited;
  let n = Db.with_txn db (fun _ -> Query.count db ~var:"n" ~cls:"node" ()) in
  Tutil.check_int "objects created" 4 n;
  Db.close db

let plain_scan_does_not_see_inserts () =
  let db = Db.open_in_memory () in
  ignore (Db.define db "class n2 { v: int; };");
  Db.create_cluster db "n2";
  Db.with_txn db (fun txn -> ignore (Db.pnew txn "n2" [ ("v", int 0) ]));
  let visited = ref 0 in
  Db.with_txn db (fun txn ->
      Query.run db ~txn ~var:"n" ~cls:"n2" (fun _ ->
          incr visited;
          if !visited < 3 then ignore (Db.pnew txn "n2" [ ("v", int !visited) ])));
  (* Without fixpoint, the one committed object is visited; its insertions
     during iteration are visible since the txn-created list is consulted
     once — but new inserts made *during* that consultation are not chased.
     The documented contract: fixpoint:false visits a snapshot plus the
     creations existing when the scan reaches them; it must terminate. *)
  Tutil.check_bool "terminates and bounded" true (!visited <= 3);
  Db.close db

let prop_scan_vs_index =
  (* Random data, random threshold: the planner's index path and a forced
     full scan agree exactly. *)
  QCheck.Test.make ~name:"index plan ≡ full scan" ~count:25
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 0 60) (QCheck.int_range 0 50)) (QCheck.int_range 0 50))
    (fun (ages, cut) ->
      let db = Db.open_in_memory () in
      ignore (Db.define db "class q { age: int; };");
      Db.create_cluster db "q";
      Db.with_txn db (fun txn ->
          List.iter (fun a -> ignore (Db.pnew txn "q" [ ("age", int a) ])) ages);
      let pred = Parser.expr (Printf.sprintf "x.age >= %d" cut) in
      let scan = Db.with_txn db (fun _ -> Query.to_list db ~var:"x" ~cls:"q" ~suchthat:pred ()) in
      Db.create_index db ~cls:"q" ~field:"age";
      let indexed = Db.with_txn db (fun _ -> Query.to_list db ~var:"x" ~cls:"q" ~suchthat:pred ()) in
      Db.close db;
      List.sort compare scan = List.sort compare indexed
      && List.length scan = List.length (List.filter (fun a -> a >= cut) ages))

let suite =
  [
    ( "query",
      [
        Alcotest.test_case "shallow vs deep extents" `Quick shallow_vs_deep;
        Alcotest.test_case "suchthat filters" `Quick suchthat_filters;
        Alcotest.test_case "by orders results" `Quick by_orders;
        Alcotest.test_case "aggregates via fold" `Quick aggregates_via_fold;
        Alcotest.test_case "index and scan agree" `Quick index_and_scan_agree;
        Alcotest.test_case "index equality probe" `Quick index_eq_probe;
        Alcotest.test_case "index scans see txn writes" `Quick index_sees_txn_writes;
        Alcotest.test_case "index maintained on delete" `Quick index_maintenance_on_delete;
        Alcotest.test_case "multi-variable join" `Quick join_nested_loops;
        Alcotest.test_case "fixpoint sees inserts" `Quick fixpoint_sees_inserts;
        Alcotest.test_case "plain scan is bounded" `Quick plain_scan_does_not_see_inserts;
      ] );
    Tutil.qsuite "query.props" [ prop_scan_vs_index ];
  ]
