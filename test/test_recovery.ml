(* Durability and crash recovery.

   "Crash" simulation: a database directory is copied while the engine still
   has dirty pages in its buffer pools — the copy contains exactly what a
   real crash would leave behind (synced WAL, arbitrarily stale data files).
   Opening the copy must recover every committed transaction. *)

module Db = Ode.Database
module Value = Ode_model.Value
module Parser = Ode_lang.Parser

let int n = Value.Int n

let setup dir =
  let db = Db.open_ dir in
  ignore (Db.define db "class acct { owner: string; balance: int; };");
  Db.create_cluster db "acct";
  db

let crash_copy src =
  let dst = Tutil.temp_dir "crash" in
  Sys.rmdir dst;
  Tutil.copy_dir src dst;
  dst

let survives_clean_close () =
  let dir = Tutil.temp_dir "rec" in
  let db = setup dir in
  let a = Db.with_txn db (fun txn -> Db.pnew txn "acct" [ ("owner", Value.Str "ann"); ("balance", int 10) ]) in
  Db.close db;
  let db2 = Db.open_ dir in
  Db.with_txn db2 (fun txn -> Tutil.check_value "balance" (int 10) (Db.get_field txn a "balance"));
  Db.close db2

let survives_crash_without_close () =
  let dir = Tutil.temp_dir "rec" in
  let db = setup dir in
  let a = Db.with_txn db (fun txn -> Db.pnew txn "acct" [ ("owner", Value.Str "bo"); ("balance", int 1) ]) in
  for i = 2 to 20 do
    Db.with_txn db (fun txn -> Db.set_field txn a "balance" (int i))
  done;
  (* Crash now: data files may be stale, WAL is synced. *)
  let snap = crash_copy dir in
  let db2 = Db.open_ snap in
  Db.with_txn db2 (fun txn ->
      Tutil.check_value "last committed balance" (int 20) (Db.get_field txn a "balance"));
  Db.close db2;
  Db.close db

let uncommitted_work_is_lost () =
  let dir = Tutil.temp_dir "rec" in
  let db = setup dir in
  let a = Db.with_txn db (fun txn -> Db.pnew txn "acct" [ ("owner", Value.Str "c"); ("balance", int 5) ]) in
  (* An open transaction at crash time. *)
  let txn = Db.begin_txn db in
  Db.set_field txn a "balance" (int 999);
  let ghost = Ode.Store.create txn (Ode_model.Catalog.find_exn (Db.catalog db) "acct") [] in
  let snap = crash_copy dir in
  Db.abort txn;
  let db2 = Db.open_ snap in
  Db.with_txn db2 (fun txn2 ->
      Tutil.check_value "update lost" (int 5) (Db.get_field txn2 a "balance");
      Tutil.check_bool "creation lost" false (Db.exists db2 ~txn:txn2 ghost));
  Db.close db2;
  Db.close db

let recovery_covers_everything () =
  (* Objects, versions, roots, indexes, trigger activations, schema — all
     through one crash. *)
  let dir = Tutil.temp_dir "rec" in
  let db = Db.open_ dir in
  ignore
    (Db.define db
       {|class gadget { label: string; qty: int;
           trigger low(n: int): qty < n ==> { print "low"; }; };|});
  Db.create_cluster db "gadget";
  Db.create_index db ~cls:"gadget" ~field:"qty";
  let g =
    Db.with_txn db (fun txn ->
        let g = Db.pnew txn "gadget" [ ("label", Value.Str "g"); ("qty", int 10) ] in
        ignore (Db.newversion txn g);
        Db.set_field txn g "qty" (int 20);
        Db.set_root txn "the-gadget" (Value.Ref g);
        ignore (Db.activate txn g "low" [ int 5 ]);
        g)
  in
  let snap = crash_copy dir in
  let db2 = Db.open_ snap in
  let log = Buffer.create 16 in
  Db.set_action_printer db2 (Buffer.add_string log);
  Db.with_txn db2 (fun txn ->
      Tutil.check_value "root" (Value.Ref g) (Db.root_exn txn "the-gadget");
      Tutil.check_bool "versions" true (Db.versions txn g = [ 0; 1 ]);
      let via_index =
        Ode.Query.count db2 ~var:"x" ~cls:"gadget" ~suchthat:(Parser.expr "x.qty == 20") ()
      in
      Tutil.check_int "index recovered" 1 via_index);
  (* The persisted activation still fires. *)
  Db.with_txn db2 (fun txn -> Db.set_field txn g "qty" (int 1));
  Tutil.check_bool "trigger recovered" true (String.trim (Buffer.contents log) = "low");
  Db.close db2;
  Db.close db

let oid_counters_recover () =
  (* New oids after recovery must not collide with pre-crash ones. *)
  let dir = Tutil.temp_dir "rec" in
  let db = setup dir in
  let a = Db.with_txn db (fun txn -> Db.pnew txn "acct" [ ("owner", Value.Str "x") ]) in
  let snap = crash_copy dir in
  let db2 = Db.open_ snap in
  let b = Db.with_txn db2 (fun txn -> Db.pnew txn "acct" [ ("owner", Value.Str "y") ]) in
  Tutil.check_bool "fresh oid" false (Ode_model.Oid.equal a b);
  Tutil.check_int "extent complete" 2
    (Db.with_txn db2 (fun _ -> Ode.Query.count db2 ~var:"x" ~cls:"acct" ()));
  Db.close db2;
  Db.close db

let checkpoint_bounds_wal () =
  let dir = Tutil.temp_dir "rec" in
  let db = setup dir in
  for i = 1 to 50 do
    Db.with_txn db (fun txn -> ignore (Db.pnew txn "acct" [ ("balance", int i) ]))
  done;
  Db.checkpoint db;
  Tutil.check_int "wal empty after checkpoint" 0 (Ode.Txn.wal_bytes db);
  (* Data survives a crash right after the checkpoint. *)
  let snap = crash_copy dir in
  let db2 = Db.open_ snap in
  Tutil.check_int "all rows" 50 (Db.with_txn db2 (fun _ -> Ode.Query.count db2 ~var:"x" ~cls:"acct" ()));
  Db.close db2;
  Db.close db

let repeated_crashes () =
  (* Crash-recover-crash-recover: recovery must be idempotent. *)
  let dir = Tutil.temp_dir "rec" in
  let db = setup dir in
  let a = Db.with_txn db (fun txn -> Db.pnew txn "acct" [ ("balance", int 1) ]) in
  Db.with_txn db (fun txn -> Db.set_field txn a "balance" (int 2));
  let snap1 = crash_copy dir in
  Db.close db;
  let db1 = Db.open_ snap1 in
  Db.with_txn db1 (fun txn -> Db.set_field txn a "balance" (int 3));
  let snap2 = crash_copy snap1 in
  Db.close db1;
  let db2 = Db.open_ snap2 in
  (* Open twice more without any writes. *)
  Db.close db2;
  let db3 = Db.open_ snap2 in
  Db.with_txn db3 (fun txn -> Tutil.check_value "final state" (int 3) (Db.get_field txn a "balance"));
  Tutil.check_int "no duplicates" 1 (Db.with_txn db3 (fun _ -> Ode.Query.count db3 ~var:"x" ~cls:"acct" ()));
  Db.close db3

let big_objects_survive () =
  let dir = Tutil.temp_dir "rec" in
  let db = Db.open_ dir in
  ignore (Db.define db "class blob { data: string; };");
  Db.create_cluster db "blob";
  let payload = String.init 30_000 (fun i -> Char.chr (32 + (i mod 90))) in
  let b = Db.with_txn db (fun txn -> Db.pnew txn "blob" [ ("data", Value.Str payload) ]) in
  let snap = crash_copy dir in
  let db2 = Db.open_ snap in
  Db.with_txn db2 (fun txn ->
      Tutil.check_value "chunked payload recovered" (Value.Str payload) (Db.get_field txn b "data"));
  Db.close db2;
  Db.close db

let suite =
  [
    ( "recovery",
      [
        Alcotest.test_case "clean close round-trip" `Quick survives_clean_close;
        Alcotest.test_case "crash without close" `Quick survives_crash_without_close;
        Alcotest.test_case "uncommitted work is lost" `Quick uncommitted_work_is_lost;
        Alcotest.test_case "all state kinds recover" `Quick recovery_covers_everything;
        Alcotest.test_case "oid counters recover" `Quick oid_counters_recover;
        Alcotest.test_case "checkpoint bounds the wal" `Quick checkpoint_bounds_wal;
        Alcotest.test_case "repeated crashes are idempotent" `Quick repeated_crashes;
        Alcotest.test_case "chunked objects survive" `Quick big_objects_survive;
      ] );
  ]
