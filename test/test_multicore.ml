(* Multicore safety: the domain-shared primitives (bounded channel,
   sharded LRU, RW lock, lock-striped buffer pool) under real parallel
   load, plus a seeded stress test running reader domains against a
   writing domain over one embedded database with the same RW-lock
   discipline the server uses. Oracles: no torn observations, the
   object cache agrees with an uncached re-read, and the structural
   integrity checker is clean afterwards (including after reopen). *)

module Chan = Ode_util.Chan
module Slru = Ode_util.Slru
module Rwlock = Ode_util.Rwlock
module Disk = Ode_storage.Disk
module Pool = Ode_storage.Buffer_pool
module Page = Ode_storage.Page
module Db = Ode.Database
module Value = Ode_model.Value

(* -- bounded channel ---------------------------------------------------- *)

let chan_basics () =
  let c = Chan.create 2 in
  Tutil.check_int "capacity" 2 (Chan.capacity c);
  Tutil.check_bool "push 1" true (Chan.try_push c 1);
  Tutil.check_bool "push 2" true (Chan.try_push c 2);
  Tutil.check_bool "full refuses" false (Chan.try_push c 3);
  Tutil.check_int "length" 2 (Chan.length c);
  Tutil.check_int "fifo 1" 1 (Chan.pop c);
  Tutil.check_int "fifo 2" 2 (Chan.pop c);
  Tutil.check_bool "empty" true (Chan.try_pop c = None);
  Tutil.check_int "cap clamped to 1" 1 (Chan.capacity (Chan.create 0))

(* Two producer domains block-push 1000 values each through a 4-slot
   channel; the consumer (this domain) pops all 2000. Nothing is lost,
   nothing duplicated, and every push eventually unblocks. *)
let chan_cross_domain () =
  let per = 1000 in
  let c = Chan.create 4 in
  let producer base =
    Domain.spawn (fun () ->
        for i = 1 to per do
          Chan.push c (base + i)
        done)
  in
  let ds = [ producer 0; producer 10_000 ] in
  let sum = ref 0 and count = ref 0 in
  for _ = 1 to 2 * per do
    sum := !sum + Chan.pop c;
    incr count
  done;
  List.iter Domain.join ds;
  Tutil.check_int "received all" (2 * per) !count;
  Tutil.check_int "sum of both ranges" (per * (per + 1) + (10_000 * per)) !sum;
  Tutil.check_int "drained" 0 (Chan.length c)

(* -- sharded LRU -------------------------------------------------------- *)

let slru_basics () =
  let t = Slru.create ~shards:4 8 in
  Tutil.check_int "capacity" 8 (Slru.capacity t);
  Tutil.check_int "shards" 4 (Slru.nshards t);
  (* Keys hash unevenly across shards, and each shard only holds its own
     share of the capacity — so a fresh add is always resident, but an
     earlier one may already have been evicted by its shard. *)
  for k = 0 to 7 do
    Slru.add t k (k * 31);
    Tutil.check_bool "fresh add resident" true (Slru.find t k = Some (k * 31))
  done;
  for k = 0 to 7 do
    match Slru.find t k with
    | Some v -> Tutil.check_int "value coherent" (k * 31) v
    | None -> ()
  done;
  Tutil.check_bool "mostly resident" true (Slru.length t > 0);
  (* Overflow evicts within the key's shard; total never exceeds cap. *)
  for k = 8 to 63 do
    Slru.add t k (k * 31)
  done;
  Tutil.check_bool "bounded" true (Slru.length t <= 8);
  Tutil.check_bool "remove resident" true
    (let k = ref (-1) in
     for i = 0 to 63 do
       if !k < 0 && Slru.mem t i then k := i
     done;
     Slru.remove t !k);
  Tutil.check_bool "remove absent" false (Slru.remove t 9999);
  Slru.clear t;
  Tutil.check_int "cleared" 0 (Slru.length t)

(* 4 domains hammer overlapping keys with seeded add/find/remove streams.
   Values are a pure function of the key, so any resident binding another
   domain observes must still be coherent. *)
let slru_concurrent () =
  let t = Slru.create ~shards:8 256 in
  let bad = Atomic.make 0 in
  let worker seed =
    Domain.spawn (fun () ->
        let rng = Random.State.make [| seed |] in
        for _ = 1 to 5000 do
          let k = Random.State.int rng 512 in
          match Random.State.int rng 3 with
          | 0 -> Slru.add t k (k * 31)
          | 1 -> (
              match Slru.find t k with
              | Some v when v <> k * 31 -> Atomic.incr bad
              | _ -> ())
          | _ -> ignore (Slru.remove t k)
        done)
  in
  let ds = List.map worker [ 101; 202; 303; 404 ] in
  List.iter Domain.join ds;
  Tutil.check_int "no incoherent hits" 0 (Atomic.get bad);
  Tutil.check_bool "bounded" true (Slru.length t <= 256)

(* -- RW lock ------------------------------------------------------------ *)

(* Writers keep a two-cell invariant (x = y) under the exclusive lock with
   a deliberate window between the stores; readers under the shared lock
   must never observe the window. *)
let rwlock_excludes_writers () =
  let l = Rwlock.create () in
  let x = ref 0 and y = ref 0 in
  let torn = Atomic.make 0 in
  let writer =
    Domain.spawn (fun () ->
        for _ = 1 to 400 do
          Rwlock.write l (fun () ->
              incr x;
              Domain.cpu_relax ();
              incr y)
        done)
  in
  let reader seed =
    Domain.spawn (fun () ->
        let rng = Random.State.make [| seed |] in
        for _ = 1 to 2000 do
          Rwlock.read l (fun () ->
              let a = !x in
              if Random.State.bool rng then Domain.cpu_relax ();
              if a <> !y then Atomic.incr torn)
        done)
  in
  let ds = [ writer; reader 7; reader 8 ] in
  List.iter Domain.join ds;
  Tutil.check_int "writer ran" 400 !x;
  Tutil.check_int "invariant held" 400 !y;
  Tutil.check_int "no torn reads" 0 (Atomic.get torn)

(* -- lock-striped buffer pool ------------------------------------------- *)

(* 150 pages through a 64-frame striped pool: the seeded readers force
   constant eviction and reload across stripes while checking every byte
   pattern they pin. *)
let pool_striped_parallel () =
  let d = Disk.in_memory () in
  let p = Pool.create ~capacity:64 d in
  Tutil.check_bool "striped" true (Pool.stripes p > 1);
  let pages = 150 in
  for _ = 1 to pages do
    let f = Pool.allocate p in
    let b = Pool.data f in
    Bytes.fill b 0 (Bytes.length b) (Char.chr (Pool.page_no f land 0xff));
    Pool.mark_dirty p f;
    Pool.unpin p f
  done;
  Pool.flush_all p;
  let bad = Atomic.make 0 in
  let worker seed =
    Domain.spawn (fun () ->
        let rng = Random.State.make [| seed |] in
        for _ = 1 to 3000 do
          let n = Random.State.int rng pages in
          Pool.with_page p n (fun f ->
              let b = Pool.data f in
              let expect = Char.chr (n land 0xff) in
              if Bytes.get b 0 <> expect || Bytes.get b (Page.size - 1) <> expect then
                Atomic.incr bad)
        done)
  in
  let ds = List.map worker [ 11; 22; 33; 44 ] in
  List.iter Domain.join ds;
  Tutil.check_int "no corrupted page reads" 0 (Atomic.get bad);
  Pool.flush_all p;
  (* The disk image is intact after all that churn. *)
  for n = 0 to pages - 1 do
    let b = Disk.read d n in
    if Bytes.get b 0 <> Char.chr (n land 0xff) then
      Alcotest.failf "page %d corrupted on disk" n
  done

(* -- detached read-only transactions refuse writes ----------------------- *)

(* The guard the server's reroute path relies on: a write attempt inside a
   detached read transaction raises before any shared state is touched, so
   the request can be replayed on the writer domain. *)
let read_txn_rejects_writes () =
  let db = Db.open_in_memory () in
  ignore (Db.define db "class cell { a: int; b: int; };");
  Db.create_cluster db "cell";
  let oid =
    Db.with_txn db (fun txn -> Db.pnew txn "cell" [ ("a", Value.Int 1); ("b", Value.Int 1) ])
  in
  (match Db.with_read_txn db (fun txn -> Db.pnew txn "cell" []) with
  | _ -> Alcotest.fail "pnew in a read txn must raise"
  | exception Ode.Types.Read_only_txn -> ());
  (match Db.with_read_txn db (fun txn -> Db.set_field txn oid "a" (Value.Int 9)) with
  | _ -> Alcotest.fail "set_field in a read txn must raise"
  | exception Ode.Types.Read_only_txn -> ());
  (match Db.with_read_txn db (fun txn -> Db.pdelete txn oid) with
  | _ -> Alcotest.fail "pdelete in a read txn must raise"
  | exception Ode.Types.Read_only_txn -> ());
  (* Nothing leaked: the population and the field are untouched, and the
     engine's single transaction slot is still free. *)
  Tutil.check_int "population untouched" 1 (Ode.Query.count db ~var:"x" ~cls:"cell" ());
  Db.with_txn db (fun txn ->
      Tutil.check_value "field untouched" (Value.Int 1) (Db.get_field txn oid "a"));
  Db.close db

(* -- seeded reader-domains vs writer stress over one database ----------- *)

(* The server's discipline in miniature: 3 reader domains run detached
   read-only transactions under the shared lock while this domain updates
   overlapping objects under the exclusive lock, every object keeping
   a = b inside each committed transaction. Readers must never see a
   half-applied update or a cache/heap disagreement; afterwards the
   object cache must agree with an uncached re-read and Verify must pass,
   before and after a reopen. *)
let stress_readers_vs_writer () =
  let dir = Tutil.temp_dir "ode-mc" in
  let db = Db.open_ dir in
  ignore (Db.define db "class cell { a: int; b: int; };");
  Db.create_cluster db "cell";
  let nobjs = 32 in
  let oids =
    Array.init nobjs (fun i ->
        Db.with_txn db (fun txn -> Db.pnew txn "cell" [ ("a", Value.Int i); ("b", Value.Int i) ]))
  in
  let lock = Rwlock.create () in
  let torn = Atomic.make 0 in
  let reads = Atomic.make 0 in
  let stop = Atomic.make false in
  let reader seed =
    Domain.spawn (fun () ->
        let rng = Random.State.make [| seed |] in
        while not (Atomic.get stop) do
          let oid = oids.(Random.State.int rng nobjs) in
          Rwlock.read lock (fun () ->
              Db.with_read_txn db (fun txn ->
                  match Db.get txn oid with
                  | None -> () (* deleted and replaced under the write lock *)
                  | Some fields -> (
                      Atomic.incr reads;
                      match (List.assoc "a" fields, List.assoc "b" fields) with
                      | Value.Int a, Value.Int b when a = b -> ()
                      | _ -> Atomic.incr torn)))
        done)
  in
  let ds = List.map reader [ 1; 2; 3 ] in
  let rng = Random.State.make [| 42 |] in
  for i = 1 to 400 do
    let slot = Random.State.int rng nobjs in
    Rwlock.write lock (fun () ->
        if i mod 16 = 0 then
          (* Churn identity too: delete one object, mint a replacement. *)
          Db.with_txn db (fun txn ->
              Db.pdelete txn oids.(slot);
              oids.(slot) <-
                Db.pnew txn "cell" [ ("a", Value.Int i); ("b", Value.Int i) ])
        else
          Db.with_txn db (fun txn ->
              Db.update txn oids.(slot) [ ("a", Value.Int i); ("b", Value.Int i) ]))
  done;
  Atomic.set stop true;
  List.iter Domain.join ds;
  Tutil.check_int "no torn reads" 0 (Atomic.get torn);
  Tutil.check_bool "readers made progress" true (Atomic.get reads > 0);
  (* Cache coherence: the warm decoded-object cache must agree with a
     cold re-read of the same objects. *)
  let snap oid = Db.with_read_txn db (fun txn -> Db.get txn oid) in
  let warm = Array.map snap oids in
  Ode.Ocache.clear db;
  Array.iteri
    (fun i oid ->
      if snap oid <> warm.(i) then Alcotest.failf "cache incoherent for object %d" i)
    oids;
  (match Ode.Verify.run db with
  | Ok () -> ()
  | Error ps -> Alcotest.failf "verify after stress: %s" (String.concat "; " ps));
  Tutil.check_int "population stable" nobjs (Ode.Query.count db ~var:"x" ~cls:"cell" ());
  Db.close db;
  (* And the directory reopens clean. *)
  let db2 = Db.open_ dir in
  (match Ode.Verify.run db2 with
  | Ok () -> ()
  | Error ps -> Alcotest.failf "verify after reopen: %s" (String.concat "; " ps));
  Tutil.check_int "population persisted" nobjs (Ode.Query.count db2 ~var:"x" ~cls:"cell" ());
  Db.close db2

let suite =
  [
    ( "multicore",
      [
        Alcotest.test_case "chan: bounded fifo semantics" `Quick chan_basics;
        Alcotest.test_case "chan: producers block and drain across domains" `Quick
          chan_cross_domain;
        Alcotest.test_case "slru: capacity, eviction, remove" `Quick slru_basics;
        Alcotest.test_case "slru: concurrent domains stay coherent" `Quick slru_concurrent;
        Alcotest.test_case "rwlock: readers never see writer windows" `Quick
          rwlock_excludes_writers;
        Alcotest.test_case "read txn rejects writes before shared state" `Quick
          read_txn_rejects_writes;
        Alcotest.test_case "buffer pool: striped pins under eviction" `Quick
          pool_striped_parallel;
        Alcotest.test_case "stress: reader domains vs writer, seeded" `Quick
          stress_readers_vs_writer;
      ] );
  ]
