(* Coherence of the decoded-object cache: the transactional overlay always
   wins, aborts leave the cache untouched, commits invalidate exactly the
   rewritten keys, and recovery never serves a pre-crash entry. *)

module Db = Ode.Database
module Store = Ode.Store
module Value = Ode_model.Value
module Stats = Ode_util.Stats
module Parser = Ode_lang.Parser

let setup ?object_cache () =
  let db = Db.open_in_memory ?object_cache () in
  ignore (Db.define db {|class pt { x: int; y: int; };|});
  Db.create_cluster db "pt";
  db

let mk db n =
  Db.with_txn db (fun txn ->
      List.init n (fun i -> Db.pnew txn "pt" [ ("x", Value.Int i); ("y", Value.Int 0) ]))

(* A committed read warms the cache (header + current-version fields). *)
let warm db oids = List.iter (fun o -> ignore (Store.get_fields db None o)) oids

let read_your_writes () =
  let db = setup () in
  let o = List.hd (mk db 1) in
  warm db [ o ];
  Db.with_txn db (fun txn ->
      Db.set_field txn o "x" (Value.Int 42);
      Tutil.check_bool "txn sees its write over the warm cache" true
        (Db.get_field txn o "x" = Value.Int 42));
  Tutil.check_bool "committed read sees the new value" true
    (Store.get_field db None o "x" = Some (Value.Int 42));
  Db.close db

let abort_leaves_clean () =
  let db = setup () in
  let o = List.hd (mk db 1) in
  warm db [ o ];
  let inv0 = Stats.(obj_cache_invalidations (snapshot ())) in
  let txn = Db.begin_txn db in
  Db.set_field txn o "x" (Value.Int 99);
  Db.abort txn;
  let inv1 = Stats.(obj_cache_invalidations (snapshot ())) in
  Tutil.check_int "abort invalidates nothing" 0 (inv1 - inv0);
  Tutil.check_bool "committed value survives the abort" true
    (Store.get_field db None o "x" = Some (Value.Int 0));
  Db.close db

let commit_invalidates_touched () =
  let db = setup () in
  let oids = mk db 3 in
  warm db oids;
  let a = List.nth oids 0 and b = List.nth oids 1 in
  let inv0 = Stats.(obj_cache_invalidations (snapshot ())) in
  Db.with_txn db (fun txn -> Db.set_field txn a "x" (Value.Int 7));
  let inv1 = Stats.(obj_cache_invalidations (snapshot ())) in
  (* set_field rewrites only the current-version record, so exactly one
     cached key is dropped. *)
  Tutil.check_int "exactly one key invalidated" 1 (inv1 - inv0);
  Tutil.check_bool "touched object reads fresh" true
    (Store.get_field db None a "x" = Some (Value.Int 7));
  let h0 = Stats.(obj_cache_hits (snapshot ())) in
  ignore (Store.get_fields db None b);
  let h1 = Stats.(obj_cache_hits (snapshot ())) in
  Tutil.check_bool "untouched object still served from cache" true (h1 - h0 >= 1);
  Db.close db

let crash_reopen_fresh () =
  let dir = Tutil.temp_dir "ocache" in
  let db = Db.open_ dir in
  ignore (Db.define db {|class pt { x: int; y: int; };|});
  Db.create_cluster db "pt";
  let o = Db.with_txn db (fun txn -> Db.pnew txn "pt" [ ("x", Value.Int 1) ]) in
  warm db [ o ];
  Db.with_txn db (fun txn -> Db.set_field txn o "x" (Value.Int 2));
  Db.crash db;
  let db2 = Db.open_ dir in
  Tutil.check_int "cache empty after recovery" 0 (Ode_util.Slru.length db2.Ode.Types.ocache);
  Tutil.check_bool "reopen reads the committed value" true
    (Store.get_field db2 None o "x" = Some (Value.Int 2));
  Db.close db2

let eviction_bounded () =
  let db = setup ~object_cache:4 () in
  let oids = mk db 50 in
  warm db oids;
  Tutil.check_bool "cache never exceeds its capacity" true
    (Ode_util.Slru.length db.Ode.Types.ocache <= 4);
  (* Evicted entries are just misses, never wrong answers. *)
  List.iteri
    (fun i o ->
      if Store.get_field db None o "x" <> Some (Value.Int i) then
        Alcotest.failf "object %d read wrong value after eviction" i)
    oids;
  Db.close db

let disabled_counts_nothing () =
  let db = setup ~object_cache:0 () in
  let oids = mk db 5 in
  let s0 = Stats.snapshot () in
  warm db oids;
  warm db oids;
  let s1 = Stats.snapshot () in
  Tutil.check_int "no hits when disabled" 0 Stats.(obj_cache_hits s1 - obj_cache_hits s0);
  Tutil.check_int "no misses when disabled" 0
    Stats.(obj_cache_misses s1 - obj_cache_misses s0);
  Tutil.check_int "cache stays empty" 0 (Ode_util.Slru.length db.Ode.Types.ocache);
  Db.close db

let query_workload_hits () =
  let db = setup () in
  ignore (mk db 200);
  let q () =
    Ode.Query.count db ~var:"p" ~cls:"pt" ~suchthat:(Parser.expr "p.x + p.y > 10") ()
  in
  Tutil.check_int "cold count" 189 (q ());
  let h0 = Stats.(obj_cache_hits (snapshot ())) in
  Tutil.check_int "warm count" 189 (q ());
  let h1 = Stats.(obj_cache_hits (snapshot ())) in
  Tutil.check_bool "repeated predicate scan hits the cache" true (h1 - h0 > 0);
  Db.close db

let exists_early_exit () =
  let db = setup () in
  ignore (mk db 500);
  let s0 = Stats.(objects_scanned (snapshot ())) in
  Tutil.check_bool "exists finds a match" true
    (Ode.Query.exists db ~var:"p" ~cls:"pt" ~suchthat:(Parser.expr "p.x == 0") ());
  let s1 = Stats.(objects_scanned (snapshot ())) in
  Tutil.check_int "first-object match scans one object" 1 (s1 - s0);
  Tutil.check_bool "exists with no match is false" false
    (Ode.Query.exists db ~var:"p" ~cls:"pt" ~suchthat:(Parser.expr "p.x == 0 - 1") ());
  Db.close db

let suite =
  [
    ( "obj_cache",
      [
        Alcotest.test_case "read-your-writes in a txn" `Quick read_your_writes;
        Alcotest.test_case "abort leaves cache clean" `Quick abort_leaves_clean;
        Alcotest.test_case "commit invalidates exactly touched keys" `Quick
          commit_invalidates_touched;
        Alcotest.test_case "crash/reopen never serves stale entries" `Quick crash_reopen_fresh;
        Alcotest.test_case "eviction respects capacity" `Quick eviction_bounded;
        Alcotest.test_case "capacity 0 disables the cache" `Quick disabled_counts_nothing;
        Alcotest.test_case "repeated query workload hits" `Quick query_workload_hits;
        Alcotest.test_case "exists exits early" `Quick exists_early_exit;
      ] );
  ]
