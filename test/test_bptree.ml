module Bptree = Ode_index.Bptree
module Disk = Ode_storage.Disk
module Pool = Ode_storage.Buffer_pool

let mk () = Bptree.attach (Pool.create ~capacity:128 (Disk.in_memory ()))
let assert_ok t = match Bptree.check t with Ok () -> () | Error e -> Alcotest.fail e

let basic () =
  let t = mk () in
  Bptree.insert t "b" "2";
  Bptree.insert t "a" "1";
  Bptree.insert t "c" "3";
  Alcotest.(check (option string)) "find a" (Some "1") (Bptree.find t "a");
  Alcotest.(check (option string)) "find c" (Some "3") (Bptree.find t "c");
  Alcotest.(check (option string)) "miss" None (Bptree.find t "zz");
  Tutil.check_int "count" 3 (Bptree.count t);
  assert_ok t

let replace () =
  let t = mk () in
  Bptree.insert t "k" "old";
  Bptree.insert t "k" "new";
  Alcotest.(check (option string)) "replaced" (Some "new") (Bptree.find t "k");
  Tutil.check_int "count unchanged" 1 (Bptree.count t)

let delete () =
  let t = mk () in
  Bptree.insert t "x" "1";
  Tutil.check_bool "delete hit" true (Bptree.delete t "x");
  Tutil.check_bool "delete miss" false (Bptree.delete t "x");
  Alcotest.(check (option string)) "gone" None (Bptree.find t "x");
  Tutil.check_int "count" 0 (Bptree.count t)

let key k = Printf.sprintf "key-%06d" k

let many_keys_split () =
  let t = mk () in
  let n = 5000 in
  for i = 0 to n - 1 do
    Bptree.insert t (key i) (string_of_int (i * 7))
  done;
  Tutil.check_bool "tree grew" true (Bptree.height t >= 2);
  Tutil.check_int "count" n (Bptree.count t);
  for i = 0 to n - 1 do
    if Bptree.find t (key i) <> Some (string_of_int (i * 7)) then
      Alcotest.failf "lost key %d" i
  done;
  assert_ok t

let range_scan () =
  let t = mk () in
  for i = 0 to 99 do
    Bptree.insert t (key i) ""
  done;
  let got = ref [] in
  Bptree.iter_range t ~lo:(key 10) ~hi:(key 20) (fun k _ ->
      got := k :: !got;
      true);
  Alcotest.(check int) "half-open range" 10 (List.length !got);
  Tutil.check_string "first" (key 10) (List.nth (List.rev !got) 0);
  let got2 = ref 0 in
  Bptree.iter_range t ~lo:(key 10) ~hi:(key 20) ~inclusive_hi:true (fun _ _ ->
      incr got2;
      true);
  Tutil.check_int "inclusive range" 11 !got2

let range_early_stop () =
  let t = mk () in
  for i = 0 to 99 do
    Bptree.insert t (key i) ""
  done;
  let n = ref 0 in
  Bptree.iter_range t (fun _ _ ->
      incr n;
      !n < 5);
  Tutil.check_int "stopped early" 5 !n

let prefix_scan () =
  let t = mk () in
  List.iter (fun k -> Bptree.insert t k "") [ "ap"; "apple"; "apricot"; "banana"; "ba" ];
  let got = ref [] in
  Bptree.iter_prefix t "ap" (fun k _ ->
      got := k :: !got;
      true);
  Tutil.check_string_list "ap-prefixed" [ "ap"; "apple"; "apricot" ] (List.rev !got)

let persistence () =
  let dir = Tutil.temp_dir "bpt" in
  let path = Filename.concat dir "t.bpt" in
  let d = Disk.open_file path in
  let t = Bptree.attach (Pool.create ~capacity:64 d) in
  for i = 0 to 999 do
    Bptree.insert t (key i) (string_of_int i)
  done;
  Bptree.flush t;
  Disk.close d;
  let d2 = Disk.open_file path in
  let t2 = Bptree.attach (Pool.create ~capacity:64 d2) in
  Tutil.check_int "count persisted" 1000 (Bptree.count t2);
  Alcotest.(check (option string)) "value persisted" (Some "777") (Bptree.find t2 (key 777));
  assert_ok t2;
  Disk.close d2

let large_entries_rejected () =
  let t = mk () in
  match Bptree.insert t (String.make 2000 'k') "v" with
  | () -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

let reverse_range () =
  let t = mk () in
  for i = 0 to 99 do
    Bptree.insert t (key i) (string_of_int i)
  done;
  let got = ref [] in
  Bptree.iter_range_rev t ~lo:(key 10) ~hi:(key 20) (fun k _ ->
      got := k :: !got;
      true);
  Alcotest.(check (list string)) "reverse of forward"
    (List.init 10 (fun i -> key (10 + i)))
    !got;
  (* Early stop from the top. *)
  let n = ref 0 in
  Bptree.iter_range_rev t (fun _ _ ->
      incr n;
      !n < 3);
  Tutil.check_int "stopped early" 3 !n

let cursor_basics () =
  let t = mk () in
  for i = 0 to 99 do
    Bptree.insert t (key i) (string_of_int i)
  done;
  (* Seek lands on the first entry >= lo even when lo is absent from the tree. *)
  Bptree.delete t (key 10) |> ignore;
  let cur = Bptree.cursor t ~lo:(key 10) ~hi:(key 14) () in
  let got = ref [] in
  let rec drain () =
    match Bptree.cursor_next cur with
    | Some (k, _) ->
        got := k :: !got;
        drain ()
    | None -> ()
  in
  drain ();
  Tutil.check_string_list "half-open, seek past hole" [ key 11; key 12; key 13 ] (List.rev !got);
  Tutil.check_bool "exhausted stays exhausted" true (Bptree.cursor_next cur = None);
  let cur2 = Bptree.cursor t ~lo:(key 95) () in
  let n = ref 0 in
  while Bptree.cursor_next cur2 <> None do
    incr n
  done;
  Tutil.check_int "open hi runs to the end" 5 !n

let cursor_prefix () =
  let t = mk () in
  List.iter (fun k -> Bptree.insert t k "") [ "ap"; "apple"; "apricot"; "banana"; "ba" ];
  let cur = Bptree.cursor_prefix t "ap" in
  let got = ref [] in
  let rec drain () =
    match Bptree.cursor_next cur with
    | Some (k, _) ->
        got := k :: !got;
        drain ()
    | None -> ()
  in
  drain ();
  Tutil.check_string_list "ap-prefixed" [ "ap"; "apple"; "apricot" ] (List.rev !got)

let cursor_early_exit_pages () =
  let t = mk () in
  let n = 5000 in
  for i = 0 to n - 1 do
    Bptree.insert t (key i) (string_of_int i)
  done;
  Tutil.check_bool "multi-leaf tree" true (Bptree.height t >= 2);
  let pages_during fn =
    let before = Ode_util.Stats.(cursor_pages_read (snapshot ())) in
    fn ();
    Ode_util.Stats.(cursor_pages_read (snapshot ())) - before
  in
  let full =
    pages_during (fun () ->
        let cur = Bptree.cursor t () in
        while Bptree.cursor_next cur <> None do
          ()
        done)
  in
  let early =
    pages_during (fun () ->
        let cur = Bptree.cursor t () in
        ignore (Bptree.cursor_next cur))
  in
  Tutil.check_bool "full scan reads many leaves" true (full > 2);
  Tutil.check_int "abandoned cursor reads one leaf" 1 early

let prop_cursor_matches_iter_range =
  QCheck.Test.make ~name:"cursor = iter_range" ~count:100
    QCheck.(triple (list (int_bound 300)) (int_bound 300) (int_bound 300))
    (fun (ks, a, b) ->
      let lo_i = min a b and hi_i = max a b in
      let t = mk () in
      List.iter (fun k -> Bptree.insert t (key k) (string_of_int k)) ks;
      let lo = key lo_i and hi = key hi_i in
      let via_iter = ref [] in
      Bptree.iter_range t ~lo ~hi (fun k v -> via_iter := (k, v) :: !via_iter; true);
      let cur = Bptree.cursor t ~lo ~hi () in
      let via_cursor = ref [] in
      let rec drain () =
        match Bptree.cursor_next cur with
        | Some kv ->
            via_cursor := kv :: !via_cursor;
            drain ()
        | None -> ()
      in
      drain ();
      !via_cursor = !via_iter)

let prop_reverse_matches_forward =
  QCheck.Test.make ~name:"iter_range_rev = rev iter_range" ~count:100
    QCheck.(triple (list (int_bound 300)) (int_bound 300) (int_bound 300))
    (fun (ks, a, b) ->
      let lo_i = min a b and hi_i = max a b in
      let t = mk () in
      List.iter (fun k -> Bptree.insert t (key k) "") ks;
      let lo = key lo_i and hi = key hi_i in
      let fwd = ref [] and bwd = ref [] in
      Bptree.iter_range t ~lo ~hi (fun k _ -> fwd := k :: !fwd; true);
      Bptree.iter_range_rev t ~lo ~hi (fun k _ -> bwd := k :: !bwd; true);
      !fwd = List.rev !bwd)

let prop_model =
  let ops_gen =
    QCheck.Gen.(
      list_size (int_bound 400)
        (frequency
           [
             (6, map2 (fun k v -> `Insert (k mod 500, v mod 1000)) nat nat);
             (3, map (fun k -> `Delete (k mod 500)) nat);
           ]))
  in
  QCheck.Test.make ~name:"bptree matches Map" ~count:60 (QCheck.make ops_gen) (fun ops ->
      let t = mk () in
      let model = ref [] in
      List.iter
        (fun op ->
          match op with
          | `Insert (k, v) ->
              let ks = key k and vs = string_of_int v in
              Bptree.insert t ks vs;
              model := (ks, vs) :: List.remove_assoc ks !model
          | `Delete k ->
              let ks = key k in
              let present = List.mem_assoc ks !model in
              let deleted = Bptree.delete t ks in
              if present <> deleted then QCheck.Test.fail_report "delete result mismatch";
              model := List.remove_assoc ks !model)
        ops;
      (match Bptree.check t with Ok () -> () | Error e -> QCheck.Test.fail_report e);
      (* Contents and order both match the reference. *)
      let scan = ref [] in
      Bptree.iter_range t (fun k v ->
          scan := (k, v) :: !scan;
          true);
      let expected = List.sort compare !model in
      List.rev !scan = expected && Bptree.count t = List.length expected)

let suite =
  [
    ( "bptree",
      [
        Alcotest.test_case "basic ops" `Quick basic;
        Alcotest.test_case "insert replaces" `Quick replace;
        Alcotest.test_case "delete" `Quick delete;
        Alcotest.test_case "splits under load" `Quick many_keys_split;
        Alcotest.test_case "range scan" `Quick range_scan;
        Alcotest.test_case "range early stop" `Quick range_early_stop;
        Alcotest.test_case "reverse range" `Quick reverse_range;
        Alcotest.test_case "prefix scan" `Quick prefix_scan;
        Alcotest.test_case "cursor basics" `Quick cursor_basics;
        Alcotest.test_case "cursor prefix" `Quick cursor_prefix;
        Alcotest.test_case "cursor early exit stops page reads" `Quick cursor_early_exit_pages;
        Alcotest.test_case "persists across reopen" `Quick persistence;
        Alcotest.test_case "oversized entries rejected" `Quick large_entries_rejected;
      ] );
    Tutil.qsuite "bptree.props"
      [ prop_model; prop_reverse_matches_forward; prop_cursor_matches_iter_range ];
  ]
