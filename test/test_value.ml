module Value = Ode_model.Value
module Oid = Ode_model.Oid

let v_int n = Value.Int n
let v_str s = Value.Str s

let oid cls num : Oid.t = { cls; num }

let compare_total_order () =
  (* Constructor rank keeps unlike types ordered deterministically. *)
  Tutil.check_bool "null < bool" true (Value.compare Value.Null (Value.Bool false) < 0);
  Tutil.check_bool "bool < int" true (Value.compare (Value.Bool true) (v_int 0) < 0);
  Tutil.check_bool "int/float mix" true (Value.compare (v_int 1) (Value.Float 1.5) < 0);
  Tutil.check_bool "int = float" true (Value.compare (v_int 2) (Value.Float 2.0) = 0);
  Tutil.check_bool "refs by oid" true
    (Value.compare (Value.Ref (oid 0 1)) (Value.Ref (oid 0 2)) < 0)

let set_normalization () =
  let s = Value.set_of_list [ v_int 3; v_int 1; v_int 3; v_int 2 ] in
  Tutil.check_value "sorted, deduped" (Value.VSet [ v_int 1; v_int 2; v_int 3 ]) s;
  let s2 = Value.set_add (v_int 2) s in
  Tutil.check_value "add existing is idempotent" s s2;
  let s3 = Value.set_add (v_int 0) s in
  Tutil.check_value "add keeps order" (Value.VSet [ v_int 0; v_int 1; v_int 2; v_int 3 ]) s3;
  let s4 = Value.set_remove (v_int 1) s in
  Tutil.check_value "remove" (Value.VSet [ v_int 2; v_int 3 ]) s4;
  Tutil.check_bool "mem" true (Value.set_mem (v_int 2) s);
  Tutil.check_bool "not mem" false (Value.set_mem (v_int 9) s4)

let value_gen =
  let open QCheck.Gen in
  let base =
    oneof
      [
        return Value.Null;
        map (fun n -> Value.Int n) int;
        map (fun b -> Value.Bool b) bool;
        map (fun f -> Value.Float f) (float_bound_exclusive 1e6);
        map (fun s -> Value.Str s) (string_size (int_bound 12));
        map2 (fun c n -> Value.Ref (oid (abs c mod 8) (abs n mod 1000))) int int;
        map2 (fun c n -> Value.Vref { oid = oid (abs c mod 8) (abs n mod 1000); ver = abs n mod 5 }) int int;
      ]
  in
  let container =
    oneof
      [
        base;
        map (fun vs -> Value.VList vs) (list_size (int_bound 5) base);
        map (fun vs -> Value.set_of_list vs) (list_size (int_bound 5) base);
      ]
  in
  container

let arb_value = QCheck.make ~print:Value.to_string value_gen

let prop_roundtrip =
  QCheck.Test.make ~name:"value encode/decode roundtrip" ~count:500 arb_value (fun v ->
      let b = Buffer.create 32 in
      Value.encode b v;
      Value.equal v (Value.decode (Ode_util.Codec.cursor (Buffer.contents b))))

let prop_fields_roundtrip =
  QCheck.Test.make ~name:"fields encode/decode roundtrip" ~count:300
    QCheck.(list (pair (string_of_size (QCheck.Gen.int_bound 8)) arb_value))
    (fun fields ->
      let fields = List.map (fun (n, v) -> (n, v)) fields in
      let decoded = Value.fields_decode (Value.fields_encode fields) in
      List.length decoded = List.length fields
      && List.for_all2 (fun (n, v) (n', v') -> n = n' && Value.equal v v') fields decoded)

let prop_compare_antisym =
  QCheck.Test.make ~name:"compare is antisymmetric" ~count:500 (QCheck.pair arb_value arb_value)
    (fun (a, b) -> Value.compare a b = -Value.compare b a)

let prop_compare_trans =
  QCheck.Test.make ~name:"sorting is stable under compare" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_bound 20) arb_value)
    (fun vs ->
      let sorted = List.sort Value.compare vs in
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> Value.compare a b <= 0 && nondecreasing rest
        | _ -> true
      in
      nondecreasing sorted)

let indexable_gen =
  QCheck.Gen.(
    oneof
      [
        return Value.Null;
        map (fun n -> Value.Int n) (int_range (-100000) 100000);
        map (fun f -> Value.Float f) (float_bound_exclusive 1e6);
        map (fun b -> Value.Bool b) bool;
        map (fun s -> Value.Str s) (string_size (int_bound 12));
      ])

let prop_index_key_order =
  QCheck.Test.make ~name:"index keys order like values" ~count:1000
    (QCheck.make ~print:Value.to_string indexable_gen |> fun a -> QCheck.pair a a)
    (fun (a, b) ->
      let sign n = compare n 0 in
      (* Only comparable when both are numeric or same constructor. *)
      let comparable =
        match (a, b) with
        | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) -> true
        | Value.Str _, Value.Str _ | Value.Bool _, Value.Bool _ | Value.Null, Value.Null -> true
        | _ -> false
      in
      QCheck.assume comparable;
      sign (compare (Value.index_key a) (Value.index_key b)) = sign (Value.compare a b))

let index_key_rejects_containers () =
  match Value.index_key (Value.VSet [ v_str "x" ]) with
  | _ -> Alcotest.fail "sets must not be indexable"
  | exception Invalid_argument _ -> ()

let suite =
  [
    ( "value",
      [
        Alcotest.test_case "total order across types" `Quick compare_total_order;
        Alcotest.test_case "set normalization" `Quick set_normalization;
        Alcotest.test_case "index_key rejects containers" `Quick index_key_rejects_containers;
      ] );
    Tutil.qsuite "value.props"
      [
        prop_roundtrip;
        prop_fields_roundtrip;
        prop_compare_antisym;
        prop_compare_trans;
        prop_index_key_order;
      ];
  ]
