(* Model-based testing of the transactional engine.

   Random sequences of transactions (each a list of create/update/delete/
   newversion operations, ending in commit or abort) run against both the
   real database and a trivial pure model. After every transaction the
   visible state must match exactly: extents, field values, version lists,
   and indexed query results. This is the strongest single check that
   deferred apply, the write-set overlay, index maintenance and abort
   semantics compose correctly. *)

module Db = Ode.Database
module Query = Ode.Query
module Value = Ode_model.Value
module Oid = Ode_model.Oid
module Parser = Ode_lang.Parser

type op =
  | Create of int            (* field value *)
  | Update of int * int      (* object pick, new value *)
  | Delete of int            (* object pick *)
  | New_version of int       (* object pick *)
  | Delete_version of int    (* object pick; deletes the oldest version *)

type txn_script = { ops : op list; commit : bool }

(* -- generator ------------------------------------------------------------ *)

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun k -> Create (k mod 40)) nat);
        (4, map2 (fun p k -> Update (p, k mod 40)) nat nat);
        (2, map (fun p -> Delete p) nat);
        (2, map (fun p -> New_version p) nat);
        (1, map (fun p -> Delete_version p) nat);
      ])

let txn_gen =
  QCheck.Gen.(
    map2
      (fun ops commit -> { ops; commit })
      (list_size (int_range 1 8) op_gen)
      (frequency [ (4, return true); (1, return false) ]))

let script_gen = QCheck.Gen.(list_size (int_range 1 25) txn_gen)

let print_script s =
  String.concat "; "
    (List.map
       (fun t ->
         Printf.sprintf "[%s]%s"
           (String.concat ","
              (List.map
                 (function
                   | Create k -> Printf.sprintf "C%d" k
                   | Update (p, k) -> Printf.sprintf "U%d=%d" p k
                   | Delete p -> Printf.sprintf "D%d" p
                   | New_version p -> Printf.sprintf "V%d" p
                   | Delete_version p -> Printf.sprintf "X%d" p)
                 t.ops))
           (if t.commit then "!" else "?"))
       s)

(* -- the model ------------------------------------------------------------- *)

type mobj = { mutable mk : int; mutable mversions : int }

let run_script script =
  let db = Db.open_in_memory () in
  ignore (Db.define db "class m { k: int; };");
  Db.create_cluster db "m";
  Db.create_index db ~cls:"m" ~field:"k";
  (* committed model state; oid order tracked for deterministic picks *)
  let model : (Oid.t * mobj) list ref = ref [] in
  let ok = ref true in
  let fail _fmt = ok := false in
  List.iter
    (fun t ->
      (* Run one transaction against a scratch copy of the model. *)
      let scratch = List.map (fun (o, m) -> (o, { mk = m.mk; mversions = m.mversions })) !model in
      let scratch = ref scratch in
      let pick p = if !scratch = [] then None else Some (List.nth !scratch (p mod List.length !scratch)) in
      let txn = Db.begin_txn db in
      List.iter
        (fun op ->
          match op with
          | Create k ->
              let oid = Db.pnew txn "m" [ ("k", Int k) ] in
              scratch := !scratch @ [ (oid, { mk = k; mversions = 1 }) ]
          | Update (p, k) -> (
              match pick p with
              | Some (oid, m) ->
                  Db.set_field txn oid "k" (Int k);
                  m.mk <- k
              | None -> ())
          | Delete p -> (
              match pick p with
              | Some (oid, _) ->
                  Db.pdelete txn oid;
                  scratch := List.filter (fun (o, _) -> not (Oid.equal o oid)) !scratch
              | None -> ())
          | New_version p -> (
              match pick p with
              | Some (oid, m) ->
                  ignore (Db.newversion txn oid);
                  m.mversions <- m.mversions + 1
              | None -> ())
          | Delete_version p -> (
              match pick p with
              | Some (oid, m) ->
                  let versions = Db.versions txn oid in
                  let oldest = List.fold_left min (List.hd versions) versions in
                  Db.pdelete_version txn { oid; ver = oldest };
                  if m.mversions = 1 then
                    scratch := List.filter (fun (o, _) -> not (Oid.equal o oid)) !scratch
                  else m.mversions <- m.mversions - 1
              | None -> ()))
        t.ops;
      if t.commit then begin
        Db.commit txn;
        model := !scratch
      end
      else Db.abort txn;
      (* Compare visible committed state. *)
      Db.with_txn db (fun txn ->
          let extent = Query.to_list db ~var:"x" ~cls:"m" () in
          if List.length extent <> List.length !model then fail "extent size";
          List.iter
            (fun (oid, m) ->
              (match Db.get_field txn oid "k" with
              | Value.Int k when k = m.mk -> ()
              | v -> fail (Value.to_string v));
              if List.length (Db.versions txn oid) <> m.mversions then fail "versions")
            !model;
          (* Indexed counts agree with the model for a few values. *)
          for k = 0 to 9 do
            let via_index =
              Query.count db ~var:"x" ~cls:"m"
                ~suchthat:(Parser.expr (Printf.sprintf "x.k == %d" (k * 4)))
                ()
            in
            let in_model =
              List.length (List.filter (fun (_, m) -> m.mk = k * 4) !model)
            in
            if via_index <> in_model then fail "index count"
          done))
    script;
  (match Ode.Verify.run db with Ok () -> () | Error _ -> ok := false);
  Db.close db;
  !ok

let prop_model =
  QCheck.Test.make ~name:"database matches reference model" ~count:40
    (QCheck.make ~print:print_script script_gen)
    run_script

let suite = [ Tutil.qsuite "model.props" [ prop_model ] ]
