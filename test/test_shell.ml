(* The surface-language driver: scripted sessions including the paper's
   worked examples. *)

module Db = Ode.Database
module Shell = Ode.Shell

let session script =
  let db = Db.open_in_memory () in
  let out = Buffer.create 256 in
  let shell = Shell.create ~print:(Buffer.add_string out) db in
  let result = Shell.exec_catching shell script in
  let text = Buffer.contents out in
  Db.close db;
  (result, text)

let expect_output script expected () =
  match session script with
  | Ok (), text -> Tutil.check_string "output" expected text
  | Error msg, _ -> Alcotest.failf "script failed: %s" msg

let expect_error script fragment () =
  match session script with
  | Ok (), _ -> Alcotest.fail "expected an error"
  | Error msg, _ ->
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        m = 0 || go 0
      in
      if not (contains msg fragment) then Alcotest.failf "error %S lacks %S" msg fragment

let stockitem_example =
  {|
  class supplier { sname: string; city: string; };
  class stockitem {
    name: string; qty: int; price: float; sup: ref supplier;
    constraint positive: qty >= 0;
    method cost(): float = qty * price;
  };
  create cluster supplier;
  create cluster stockitem;
  s := pnew supplier { sname = "att", city = "berkeley hts" };
  i := pnew stockitem { name = "512 dram", qty = 3, price = 5.0, sup = s };
  j := pnew stockitem { name = "256 dram", qty = 100, price = 2.0, sup = s };
  forall x in stockitem suchthat x.qty < 50 { print x.name, x.cost(), x.sup.city; };
  |}

let basics = expect_output stockitem_example "512 dram 15 berkeley hts\n"

let ordering =
  expect_output
    (stockitem_example ^ {| forall x in stockitem by x.qty desc { print x.name; }; |})
    "512 dram 15 berkeley hts\n256 dram\n512 dram\n"

let hierarchy_query =
  expect_output
    (Tutil.university_schema
    ^ {|
      create cluster person; create cluster student; create cluster faculty; create cluster ta;
      pnew person { name = "p", age = 30 };
      pnew student { name = "s", age = 20, gpa = 3.0 };
      pnew faculty { name = "f", age = 50 };
      total := 0;
      forall x in person* { total := total + x.age; };
      print total;
      forall x in person* suchthat x is faculty { print x.describe(); };
      |})
    "100\nfaculty f\n"

let txn_control =
  expect_output
    {|
    class t { v: int; };
    create cluster t;
    begin;
    pnew t { v = 1 };
    abort;
    begin;
    pnew t { v = 2 };
    commit;
    forall x in t { print x.v; };
    |}
    "2\n"

let constraint_error =
  expect_error
    {|
    class c { q: int; constraint pos: q >= 0; };
    create cluster c;
    pnew c { q = 0-1 };
    |}
    "constraint c.pos violated"

let explain_statement =
  expect_output
    {|
    class e { f: int; };
    create cluster e;
    create index on e(f);
    explain forall x in e suchthat x.f == 3;
    explain forall x in e;
    |}
    ("index probe e(f) = 3 \xe2\x80\x94 est ~50 rows, cost ~208 (heuristic)\n"
    ^ "full scan of cluster e \xe2\x80\x94 est ~1000 rows, cost ~1000 (heuristic)\n")

let insert_remove_sets =
  expect_output
    {|
    class bag { items: set<string>; };
    create cluster bag;
    b := pnew bag { };
    insert "x" into b.items;
    insert "y" into b.items;
    insert "x" into b.items;
    print size(b.items);
    remove "x" from b.items;
    print b.items, "y" in b.items;
    |}
    "2\n{\"y\"} true\n"

let if_else_and_vars =
  expect_output
    {|
    x := 3;
    if (x > 2) { print "big"; } else { print "small"; };
    y := x * 2 + 1;
    print y, min(y, 5);
    |}
    "big\n7 5\n"

let parse_error_reported = expect_error "class { broken" "error"
let unknown_class_reported = expect_error "pnew ghost { };" "unknown class ghost"
let no_cluster_hint = expect_error "class nc { v: int; }; pnew nc { };" "create cluster nc"

let show_classes =
  expect_output
    {|
    class a { v: int; };
    class b : a { w: int; };
    create cluster a;
    show classes;
    |}
    "class a  [cluster]\nclass b : a\n"

let shell_vars_tracked () =
  let db = Db.open_in_memory () in
  let shell = Shell.create ~print:ignore db in
  (match Shell.exec_catching shell "class v { x: int; }; create cluster v; q := pnew v { x = 1 }; n := 5;" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "script failed: %s" e);
  let vars = Shell.vars shell in
  Tutil.check_bool "n bound" true (List.assoc_opt "n" vars = Some (Ode_model.Value.Int 5));
  Tutil.check_bool "q bound to a ref" true
    (match List.assoc_opt "q" vars with Some (Ode_model.Value.Ref _) -> true | _ -> false);
  Db.close db

let bank_script_runs () =
  let path = "../examples/scripts/bank.oql" in
  if not (Sys.file_exists path) then Alcotest.skip ()
  else begin
    let source = In_channel.with_open_text path In_channel.input_all in
    match session source with
    | Ok (), text ->
        Tutil.check_bool "produces the report" true
          (String.length text > 0
          && List.exists
               (fun line -> line = "total deposits: 1520 across 3 accounts")
               (String.split_on_char '\n' text))
    | Error msg, _ -> Alcotest.failf "bank.oql failed: %s" msg
  end

let suite =
  [
    ( "shell",
      [
        Alcotest.test_case "stockitem example" `Quick basics;
        Alcotest.test_case "by ordering" `Quick ordering;
        Alcotest.test_case "hierarchy queries and is" `Quick hierarchy_query;
        Alcotest.test_case "begin/abort/commit" `Quick txn_control;
        Alcotest.test_case "constraint violations reported" `Quick constraint_error;
        Alcotest.test_case "explain" `Quick explain_statement;
        Alcotest.test_case "set insert/remove" `Quick insert_remove_sets;
        Alcotest.test_case "if/else and variables" `Quick if_else_and_vars;
        Alcotest.test_case "parse errors reported" `Quick parse_error_reported;
        Alcotest.test_case "unknown class reported" `Quick unknown_class_reported;
        Alcotest.test_case "missing cluster hint" `Quick no_cluster_hint;
        Alcotest.test_case "show classes" `Quick show_classes;
        Alcotest.test_case "shell variables tracked" `Quick shell_vars_tracked;
        Alcotest.test_case "bank.oql example script" `Quick bank_script_runs;
      ] );
  ]
