(* The expression evaluator with null hooks (closed expressions) and the
   static typechecker. Object-touching evaluation is covered in
   test_database and test_query. *)

module Ast = Ode_lang.Ast
module Parser = Ode_lang.Parser
module Value = Ode_model.Value
module Eval = Ode_model.Eval
module Typecheck = Ode_model.Typecheck
module Catalog = Ode_model.Catalog
module Otype = Ode_model.Otype

let ev ?(vars = []) src =
  Eval.eval Eval.null_hooks ~vars ~this:None (Parser.expr src)

let check src expected = Tutil.check_value src expected (ev src)

let arithmetic () =
  check "1 + 2 * 3" (Value.Int 7);
  check "7 / 2" (Value.Int 3);
  check "7.0 / 2" (Value.Float 3.5);
  check "1 + 2.5" (Value.Float 3.5);
  check "7 % 3" (Value.Int 1);
  check "-(4)" (Value.Int (-4));
  check "\"a\" + \"b\"" (Value.Str "ab")

let division_by_zero () =
  match ev "1 / 0" with
  | _ -> Alcotest.fail "expected error"
  | exception Eval.Error _ -> ()

let comparisons () =
  check "1 < 2" (Value.Bool true);
  check "2 <= 2" (Value.Bool true);
  check "\"a\" < \"b\"" (Value.Bool true);
  check "1 == 1.0" (Value.Bool true);
  check "1 != 2" (Value.Bool true);
  check "3 > 4" (Value.Bool false)

let null_semantics () =
  check "null == null" (Value.Bool true);
  check "null != 1" (Value.Bool true);
  check "null < 1" (Value.Bool false);
  check "null > 1" (Value.Bool false);
  check "null + 1" Value.Null;
  check "-(null)" Value.Null

let logic_short_circuit () =
  check "true || (1 / 0 == 0)" (Value.Bool true);
  check "false && (1 / 0 == 0)" (Value.Bool false);
  check "!true" (Value.Bool false);
  check "null || true" (Value.Bool true) (* null is falsy in conditions *)

let sets_and_lists () =
  check "2 in {1, 2, 3}" (Value.Bool true);
  check "9 in {1, 2, 3}" (Value.Bool false);
  check "{3, 1, 2}" (Value.set_of_list [ Value.Int 1; Value.Int 2; Value.Int 3 ]);
  check "{1, 2} + {2, 3}" (Value.set_of_list [ Value.Int 1; Value.Int 2; Value.Int 3 ]);
  check "{1, 2, 3} - {2}" (Value.set_of_list [ Value.Int 1; Value.Int 3 ]);
  check "[1, 2] + [2]" (Value.VList [ Value.Int 1; Value.Int 2; Value.Int 2 ]);
  check "2 in [1, 2]" (Value.Bool true)

let builtins () =
  check "abs(-4)" (Value.Int 4);
  check "abs(-4.5)" (Value.Float 4.5);
  check "size(\"abc\")" (Value.Int 3);
  check "size({1, 2})" (Value.Int 2);
  check "min(3, 5)" (Value.Int 3);
  check "max(3, 5)" (Value.Int 5);
  check "int(3.9)" (Value.Int 3);
  check "float(3)" (Value.Float 3.0);
  check "str(12)" (Value.Str "12")

let vars_and_errors () =
  Tutil.check_value "bound var" (Value.Int 5) (ev ~vars:[ ("x", Value.Int 5) ] "x + 0");
  (match ev "unbound" with
  | _ -> Alcotest.fail "expected unbound error"
  | exception Eval.Error _ -> ());
  (match ev "this" with
  | _ -> Alcotest.fail "expected no-this error"
  | exception Eval.Error _ -> ());
  match ev "1 + \"s\"" with
  | _ -> Alcotest.fail "expected type error"
  | exception Eval.Error _ -> ()

let truthiness () =
  Tutil.check_bool "true" true (Eval.truthy (Value.Bool true));
  Tutil.check_bool "false" false (Eval.truthy (Value.Bool false));
  Tutil.check_bool "null" false (Eval.truthy Value.Null);
  match Eval.truthy (Value.Int 1) with
  | _ -> Alcotest.fail "ints are not conditions"
  | exception Eval.Error _ -> ()

(* -- typechecker --------------------------------------------------------- *)

let mk_env () =
  let t = Catalog.create () in
  List.iter
    (function Ast.TClass c -> ignore (Catalog.define t c) | _ -> ())
    (Ode_lang.Parser.program Tutil.university_schema);
  fun ?this_class vars ->
    {
      Typecheck.catalog = t;
      vars;
      this_class = Option.map (Catalog.find_exn t) this_class;
    }

let tc_infers () =
  let env = mk_env () in
  let infer ?this_class vars src = Typecheck.infer (env ?this_class vars) (Parser.expr src) in
  Tutil.check_bool "int" true (infer [] "1 + 2" = Known Otype.TInt);
  Tutil.check_bool "promote" true (infer [] "1 + 2.0" = Known Otype.TFloat);
  Tutil.check_bool "bool" true (infer [] "1 < 2" = Known Otype.TBool);
  Tutil.check_bool "field through ref" true
    (infer [ ("p", Typecheck.Known (Otype.TRef "student")) ] "p.gpa" = Known Otype.TFloat);
  Tutil.check_bool "inherited field" true
    (infer [ ("p", Typecheck.Known (Otype.TRef "student")) ] "p.age" = Known Otype.TInt);
  Tutil.check_bool "this" true (infer ~this_class:"person" [] "this.age + 1" = Known Otype.TInt);
  Tutil.check_bool "method return" true
    (infer [ ("p", Typecheck.Known (Otype.TRef "person")) ] "p.describe()" = Known Otype.TString);
  Tutil.check_bool "dyn var" true (infer [ ("x", Typecheck.Dyn) ] "x.anything" = Dyn)

let tc_rejects () =
  let env = mk_env () in
  let bad ?this_class vars src =
    match Typecheck.infer (env ?this_class vars) (Parser.expr src) with
    | _ -> Alcotest.failf "expected type error for %s" src
    | exception Typecheck.Error _ -> ()
  in
  bad [] "1 + \"s\"";
  bad [] "unbound_var";
  bad [ ("p", Typecheck.Known (Otype.TRef "person")) ] "p.ghost";
  bad [ ("p", Typecheck.Known (Otype.TRef "person")) ] "p.describe(1)";
  bad [ ("p", Typecheck.Known (Otype.TRef "person")) ] "p.nosuch()";
  bad [] "this.age";
  bad [] "1 is ghostclass" |> ignore;
  bad [ ("s", Typecheck.Known (Otype.TSet Otype.TInt)) ] "s < s"

let tc_class_bodies () =
  let t = Catalog.create () in
  let define src =
    match Ode_lang.Parser.program src with
    | [ Ast.TClass c ] -> Catalog.define t c
    | _ -> Alcotest.fail "one class"
  in
  (* check_class validates the bodies as the database layer would (after the
     implicit-this rewrite, which these sources spell explicitly). *)
  let good = define "class ok { q: int; constraint pos: this.q >= 0; method m(): int = this.q * 2; };" in
  (match Typecheck.check_class t good with () -> () | exception e -> raise e);
  let bad = define "class nok { q: int; method m(): string = this.q + 1; };" in
  match Typecheck.check_class t bad with
  | _ -> Alcotest.fail "expected method return mismatch"
  | exception Typecheck.Error _ -> ()

let suite =
  [
    ( "eval",
      [
        Alcotest.test_case "arithmetic" `Quick arithmetic;
        Alcotest.test_case "division by zero" `Quick division_by_zero;
        Alcotest.test_case "comparisons" `Quick comparisons;
        Alcotest.test_case "null semantics" `Quick null_semantics;
        Alcotest.test_case "short-circuit logic" `Quick logic_short_circuit;
        Alcotest.test_case "sets and lists" `Quick sets_and_lists;
        Alcotest.test_case "builtins" `Quick builtins;
        Alcotest.test_case "variables and errors" `Quick vars_and_errors;
        Alcotest.test_case "truthiness" `Quick truthiness;
      ] );
    ( "typecheck",
      [
        Alcotest.test_case "inference" `Quick tc_infers;
        Alcotest.test_case "rejections" `Quick tc_rejects;
        Alcotest.test_case "class body validation" `Quick tc_class_bodies;
      ] );
  ]
