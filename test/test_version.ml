(* Linear versioning (paper §4): newversion, generic vs specific references,
   vprev/vnext navigation, version deletion. *)

module Db = Ode.Database
module Value = Ode_model.Value
module Oid = Ode_model.Oid
module Parser = Ode_lang.Parser

let int n = Value.Int n

let setup () =
  let db = Db.open_in_memory () in
  ignore (Db.define db "class doc { body: string; rev: int; };");
  Db.create_cluster db "doc";
  db

let newversion_becomes_current () =
  let db = setup () in
  Db.with_txn db (fun txn ->
      let d = Db.pnew txn "doc" [ ("body", Value.Str "v0"); ("rev", int 0) ] in
      Tutil.check_int "initial version list" 1 (List.length (Db.versions txn d));
      let v1 = Db.newversion txn d in
      Tutil.check_int "new number" 1 v1;
      Tutil.check_int "current moved" 1 (Db.current_version txn d);
      (* The new current starts as a copy. *)
      Tutil.check_value "copied" (Value.Str "v0") (Db.get_field txn d "body");
      (* Updates hit the current version only. *)
      Db.set_field txn d "body" (Value.Str "v1");
      Tutil.check_value "old frozen" (Value.Str "v0")
        (List.assoc "body" (Option.get (Db.get_version txn { oid = d; ver = 0 })));
      Tutil.check_value "generic ref sees current" (Value.Str "v1") (Db.get_field txn d "body"));
  Db.close db

let navigation_builtins () =
  let db = setup () in
  Db.with_txn db (fun txn ->
      let d = Db.pnew txn "doc" [ ("rev", int 0) ] in
      for i = 1 to 3 do
        ignore (Db.newversion txn d);
        Db.set_field txn d "rev" (int i)
      done;
      let vars = [ ("d", Value.Ref d) ] in
      let ev src = Db.eval txn ~vars (Parser.expr src) in
      Tutil.check_value "nversions" (int 4) (ev "nversions(d)");
      Tutil.check_value "vnum current" (int 3) (ev "vnum(d)");
      Tutil.check_value "vprev of generic" (int 2) (ev "vprev(d).rev");
      Tutil.check_value "vprev chain" (int 1) (ev "vprev(vprev(d)).rev");
      Tutil.check_value "vnext" (int 2) (ev "vnext(vprev(vprev(d))).rev");
      Tutil.check_value "vnext at tip" Value.Null (ev "vnext(vref(d, 3))");
      Tutil.check_value "vprev at root" Value.Null (ev "vprev(vref(d, 0))");
      Tutil.check_value "specific ref" (int 1) (ev "vref(d, 1).rev");
      Tutil.check_value "missing version" Value.Null (ev "vref(d, 9)");
      Tutil.check_value "current of vref" (int 3) (ev "current(vref(d, 0)).rev"));
  Db.close db

let delete_old_version () =
  let db = setup () in
  Db.with_txn db (fun txn ->
      let d = Db.pnew txn "doc" [ ("rev", int 0) ] in
      ignore (Db.newversion txn d);
      Db.set_field txn d "rev" (int 1);
      ignore (Db.newversion txn d);
      Db.set_field txn d "rev" (int 2);
      Db.pdelete_version txn { oid = d; ver = 1 };
      Tutil.check_bool "list shrunk" true (Db.versions txn d = [ 0; 2 ]);
      Tutil.check_int "current intact" 2 (Db.current_version txn d);
      (* vprev skips the deleted one. *)
      Tutil.check_value "vprev skips" (int 0)
        (Db.eval txn ~vars:[ ("d", Value.Ref d) ] (Parser.expr "vprev(d).rev")));
  Db.close db

let delete_current_promotes () =
  let db = setup () in
  Db.with_txn db (fun txn ->
      let d = Db.pnew txn "doc" [ ("rev", int 0) ] in
      ignore (Db.newversion txn d);
      Db.set_field txn d "rev" (int 1);
      Db.pdelete_version txn { oid = d; ver = 1 };
      Tutil.check_int "previous promoted" 0 (Db.current_version txn d);
      Tutil.check_value "state restored" (int 0) (Db.get_field txn d "rev"));
  Db.close db

let delete_last_version_deletes_object () =
  let db = setup () in
  Db.with_txn db (fun txn ->
      let d = Db.pnew txn "doc" [] in
      Db.pdelete_version txn { oid = d; ver = 0 };
      Tutil.check_bool "object gone" false (Db.exists db ~txn d));
  Db.close db

let versions_persist () =
  let dir = Tutil.temp_dir "vers" in
  let db = Db.open_ dir in
  ignore (Db.define db "class doc { body: string; rev: int; };");
  Db.create_cluster db "doc";
  let d =
    Db.with_txn db (fun txn ->
        let d = Db.pnew txn "doc" [ ("rev", int 0) ] in
        ignore (Db.newversion txn d);
        Db.set_field txn d "rev" (int 1);
        d)
  in
  Db.close db;
  let db2 = Db.open_ dir in
  Db.with_txn db2 (fun txn ->
      Tutil.check_bool "versions persisted" true (Db.versions txn d = [ 0; 1 ]);
      Tutil.check_value "old readable" (int 0)
        (List.assoc "rev" (Option.get (Db.get_version txn { oid = d; ver = 0 })));
      Tutil.check_value "current readable" (int 1) (Db.get_field txn d "rev"));
  Db.close db2

let index_follows_current_version () =
  let db = Db.open_in_memory () in
  ignore (Db.define db "class item { qty: int; };");
  Db.create_cluster db "item";
  Db.create_index db ~cls:"item" ~field:"qty";
  let d = Db.with_txn db (fun txn -> Db.pnew txn "item" [ ("qty", int 5) ]) in
  Db.with_txn db (fun txn ->
      ignore (Db.newversion txn d);
      Db.set_field txn d "qty" (int 50));
  let count q =
    Db.with_txn db (fun _ ->
        Ode.Query.count db ~var:"x" ~cls:"item" ~suchthat:(Parser.expr q) ())
  in
  Tutil.check_int "new value indexed" 1 (count "x.qty == 50");
  Tutil.check_int "old value not indexed" 0 (count "x.qty == 5");
  (* Deleting the current version must re-index the promoted one. *)
  Db.with_txn db (fun txn -> Db.pdelete_version txn { oid = d; ver = 1 });
  Tutil.check_int "promoted value indexed" 1 (count "x.qty == 5");
  Tutil.check_int "dead value gone" 0 (count "x.qty == 50");
  Db.close db

let vref_values_storable () =
  (* Specific version references are first-class values (paper: "specific
     reference to a particular version"). *)
  let db = Db.open_in_memory () in
  ignore (Db.define db "class doc2 { rev: int; }; class pin { target: ref doc2; };");
  Db.create_cluster db "doc2";
  Db.create_cluster db "pin";
  Db.with_txn db (fun txn ->
      let d = Db.pnew txn "doc2" [ ("rev", int 0) ] in
      ignore (Db.newversion txn d);
      Db.set_field txn d "rev" (int 1);
      let p = Db.pnew txn "pin" [ ("target", Value.Vref { oid = d; ver = 0 }) ] in
      Tutil.check_value "pinned version read" (int 0)
        (Db.eval txn ~vars:[ ("p", Value.Ref p) ] (Parser.expr "p.target.rev")));
  Db.close db

let suite =
  [
    ( "version",
      [
        Alcotest.test_case "newversion becomes current" `Quick newversion_becomes_current;
        Alcotest.test_case "navigation builtins" `Quick navigation_builtins;
        Alcotest.test_case "delete old version" `Quick delete_old_version;
        Alcotest.test_case "delete current promotes" `Quick delete_current_promotes;
        Alcotest.test_case "delete last version deletes object" `Quick delete_last_version_deletes_object;
        Alcotest.test_case "versions persist across reopen" `Quick versions_persist;
        Alcotest.test_case "index follows current version" `Quick index_follows_current_version;
        Alcotest.test_case "vrefs are storable values" `Quick vref_values_storable;
      ] );
  ]
