(* End-to-end serving tests over loopback: a forked ode-served event loop
   on a temp database, driven by real protocol clients. Covers concurrent
   sessions (interleaved autocommit + concurrent MVCC explicit transactions
   with first-committer-wins conflicts), idle-timeout eviction, max-conns
   rejection, and graceful shutdown leaving the store recoverable. *)

module Server = Ode_served.Server
module Client = Ode_served.Client
module Db = Ode.Database

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Parse "name 123" out of a [.stats]-style dump. *)
let counter_value dump name =
  match String.index_from_opt dump 0 ' ' with
  | _ -> (
      let re_prefix = name ^ " " in
      let rec find i =
        if i + String.length re_prefix > String.length dump then None
        else if String.sub dump i (String.length re_prefix) = re_prefix then Some (i + String.length re_prefix)
        else find (i + 1)
      in
      match find 0 with
      | None -> None
      | Some p ->
          let e = ref p in
          while !e < String.length dump && dump.[!e] >= '0' && dump.[!e] <= '9' do incr e done;
          if !e = p then None else Some (int_of_string (String.sub dump p (!e - p))))

(* Run [f client...] against a freshly spawned server; always reap the
   child, even on test failure. Returns the db dir for post-mortems. *)
let with_server ?max_conns ?idle_timeout ?durability ?group_window ?domains f =
  let dir = Tutil.temp_dir "ode-served" in
  let pid, port =
    Server.spawn ?max_conns ?idle_timeout ?durability ?group_window ?domains ~db_dir:dir ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid))
    (fun () -> f port);
  dir

let connect port = Client.connect ~timeout:10. ~host:"127.0.0.1" ~port ()

let schema = "class acct { owner: string; bal: int; }; create cluster acct;"

(* -- basic round trips ---------------------------------------------------- *)

let basic () =
  ignore
    (with_server (fun port ->
         let c = connect port in
         Client.ping c;
         Tutil.check_string "ddl output" "" (Client.exec c schema);
         Tutil.check_string "exec output" "opened 10\n"
           (Client.exec c
              "a := pnew acct { owner = \"ada\", bal = 10 }; print \"opened\", a.bal;");
         (* Query rows render oid + fields. *)
         (match Client.query c "forall x in acct" with
         | [ row ] ->
             Tutil.check_bool "row has owner" true (contains row "owner = \"ada\"");
             Tutil.check_bool "row has bal" true (contains row "bal = 10")
         | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows));
         (* Errors come back rendered, connection stays usable. *)
         (match Client.exec c "forall x in nope { print x; };" with
         | _ -> Alcotest.fail "expected Server_error"
         | exception Client.Server_error msg ->
             Tutil.check_bool "rendered error" true (contains msg "nope"));
         Client.ping c;
         (* Dot commands run remotely; serving counters are visible. *)
         let stats = Client.dot c ".stats" in
         Tutil.check_bool "server.requests counted" true
           (match counter_value stats "server.requests" with Some n -> n >= 5 | None -> false);
         let hist = Client.dot c ".hist server.request" in
         Tutil.check_bool "request histogram" true (contains hist "server.request count");
         Client.close c))

(* -- 4 concurrent sessions ------------------------------------------------ *)

let concurrent_sessions () =
  ignore
    (with_server (fun port ->
         let cs = Array.init 4 (fun _ -> connect port) in
         Tutil.check_string "schema" "" (Client.exec cs.(0) schema);
         (* Interleaved autocommit writes: each statement is its own
            transaction, sessions take turns round-robin. *)
         for round = 0 to 4 do
           Array.iteri
             (fun i c ->
               ignore
                 (Client.exec c
                    (Printf.sprintf "pnew acct { owner = \"c%d\", bal = %d };" i round)))
             cs
         done;
         (match Client.query cs.(3) "forall x in acct" with
         | rows -> Tutil.check_int "20 interleaved objects" 20 (List.length rows));
         (* Session variables are per-connection. *)
         ignore (Client.exec cs.(0) "secret := 41;");
         Tutil.check_string "own vars visible" "42\n" (Client.exec cs.(0) "print secret + 1;");
         (match Client.exec cs.(1) "print secret;" with
         | _ -> Alcotest.fail "sessions must not share variables"
         | exception Client.Server_error _ -> ());
         (* MVCC: sessions hold explicit transactions concurrently, each on
            its own snapshot, while other sessions keep autocommitting. *)
         ignore (Client.exec cs.(0) "begin; pnew acct { owner = \"uncommitted\", bal = 0 };");
         ignore (Client.exec cs.(1) "begin; pnew acct { owner = \"second\", bal = 0 };");
         ignore (Client.exec cs.(2) "pnew acct { owner = \"not_blocked\", bal = 0 };");
         (* Each holder sees its own uncommitted write plus the autocommit,
            not the other's; snapshots were taken at [begin], before the
            autocommit, so neither sees "not_blocked". *)
         Tutil.check_int "holder 0 sees own write" 21
           (List.length (Client.query cs.(0) "forall x in acct"));
         Tutil.check_int "holder 1 sees own write" 21
           (List.length (Client.query cs.(1) "forall x in acct"));
         ignore (Client.exec cs.(0) "abort;");
         ignore (Client.exec cs.(1) "commit;");
         (* After the dust settles: 20 + autocommit + session 1's commit. *)
         Tutil.check_int "abort rolled back, commit kept" 22
           (List.length (Client.query cs.(3) "forall x in acct"));
         (* The .txns introspection reflects open transactions. *)
         ignore (Client.exec cs.(0) "begin;");
         Tutil.check_bool ".txns reports the open txn" true
           (contains (Client.dot cs.(1) ".txns") "open txns 1");
         ignore (Client.exec cs.(0) "abort;");
         (* Write-write conflict: two explicit transactions race on the
            same object. The loser's commit comes back as the retryable
            conflict; spread over several requests the client's automatic
            replay (of the commit request alone) cannot win, so it
            surfaces as [Client.Conflict] — and a whole-transaction replay
            in one request then lands. *)
         ignore (Client.exec cs.(2) "t := pnew acct { owner = \"hot\", bal = 0 };");
         ignore (Client.exec cs.(0) "forall x in acct suchthat x.owner = \"hot\" { r := x; };");
         ignore (Client.exec cs.(1) "forall x in acct suchthat x.owner = \"hot\" { r := x; };");
         ignore (Client.exec cs.(1) "begin;");
         ignore (Client.exec cs.(1) "r.bal := r.bal + 10;");
         (* Session 0 commits the same object first, in one request. *)
         ignore (Client.exec cs.(0) "begin; r.bal := r.bal + 100; commit;");
         (match Client.exec cs.(1) "commit;" with
         | _ -> Alcotest.fail "losing commit must conflict"
         | exception Client.Conflict msg ->
             Tutil.check_bool "conflict names the object" true (contains msg "conflict"));
         (* Replayed as one self-contained request, the transaction reads
            the winner's state and applies cleanly. *)
         ignore (Client.exec cs.(1) "begin; r.bal := r.bal + 10; commit;");
         Tutil.check_string "both increments landed" "110\n"
           (Client.exec cs.(2)
              "forall x in acct suchthat x.owner = \"hot\" { print x.bal; };");
         Array.iter Client.close cs))

(* -- idle-timeout eviction ------------------------------------------------ *)

let idle_eviction () =
  ignore
    (with_server ~idle_timeout:0.4 (fun port ->
         let c = connect port in
         ignore (Client.exec c schema);
         (* Park an open explicit transaction and go idle past the limit. *)
         ignore (Client.exec c "begin; pnew acct { owner = \"ghost\", bal = 1 };");
         Unix.sleepf 1.2;
         (* The server hung up; the client reconnects once, transparently,
            into a fresh session. *)
         Client.ping c;
         (* Eviction rolled the parked transaction back and was counted. *)
         Tutil.check_int "evicted txn rolled back" 0
           (List.length (Client.query c "forall x in acct"));
         let stats = Client.dot c ".stats" in
         Tutil.check_bool "timeout counted" true
           (match counter_value stats "server.timeouts" with Some n -> n >= 1 | None -> false);
         Client.close c))

(* -- max-conns rejection -------------------------------------------------- *)

let busy_rejection () =
  ignore
    (with_server ~max_conns:2 (fun port ->
         let c1 = connect port in
         let c2 = connect port in
         Client.ping c1;
         Client.ping c2;
         (match connect port with
         | _ -> Alcotest.fail "third client must be rejected"
         | exception Client.Rejected msg ->
             Tutil.check_bool "friendly busy message" true (contains msg "busy"));
         (* Rejection is counted, and the slot frees once a client leaves. *)
         let stats = Client.dot c1 ".stats" in
         Tutil.check_bool "reject counted" true
           (match counter_value stats "server.rejects" with Some n -> n >= 1 | None -> false);
         Client.close c2;
         let rec retry_connect n =
           match connect port with
           | c -> c
           | exception Client.Rejected _ when n > 0 ->
               Unix.sleepf 0.1;
               retry_connect (n - 1)
         in
         let c4 = retry_connect 20 in
         Client.ping c4;
         Client.close c4;
         Client.close c1))

(* -- graceful shutdown leaves the store recoverable ----------------------- *)

let graceful_shutdown () =
  let dir = Tutil.temp_dir "ode-served" in
  let pid, port = Server.spawn ~db_dir:dir () in
  let c = connect port in
  ignore (Client.exec c schema);
  ignore (Client.exec c "pnew acct { owner = \"durable\", bal = 100 };");
  (* Leave an explicit transaction open across the shutdown. *)
  ignore (Client.exec c "begin; pnew acct { owner = \"doomed\", bal = -1 };");
  Unix.kill pid Sys.sigterm;
  let _, status = Unix.waitpid [] pid in
  Tutil.check_bool "clean exit" true (status = Unix.WEXITED 0);
  (* Reopen the directory: the open transaction was aborted, the committed
     state survived, and the integrity checker is happy. *)
  let db = Db.open_ dir in
  (match Ode.Verify.run db with
  | Ok () -> ()
  | Error ps -> Alcotest.failf "verify after shutdown: %s" (String.concat "; " ps));
  Tutil.check_int "only the committed object survives" 1
    (Ode.Query.count db ~var:"x" ~cls:"acct" ());
  Db.close db;
  (try Client.close c with _ -> ())

(* -- group commit: shared fsync across concurrent autocommits ------------- *)

(* 4 client processes hammer autocommit writes at a [Group]-durability
   server. Every reply is a durable commit (acked after the batch fsync),
   yet the server must have paid far fewer than one fsync per commit: the
   scheduler batches whatever arrived in a tick under one [Wal.sync], and
   [wal_sync_saved] counts exactly the fsyncs the batching avoided. *)
let group_commit_batching () =
  let clients = 4 and per_client = 40 in
  ignore
    (with_server ~durability:Db.Group (fun port ->
         let control = connect port in
         Tutil.check_string "schema" "" (Client.exec control schema);
         let spawn_writer i =
           flush stdout;
           flush stderr;
           match Unix.fork () with
           | 0 ->
               let errors = ref 0 in
               (try
                  let c = connect port in
                  for n = 0 to per_client - 1 do
                    try
                      ignore
                        (Client.exec c
                           (Printf.sprintf "pnew acct { owner = \"w%d\", bal = %d };" i n))
                    with _ -> incr errors
                  done;
                  Client.close c
                with _ -> errors := 100);
               Unix._exit (min 100 !errors)
           | pid -> pid
         in
         let pids = List.init clients spawn_writer in
         List.iter
           (fun pid ->
             match Unix.waitpid [] pid with
             | _, Unix.WEXITED 0 -> ()
             | _, Unix.WEXITED n -> Alcotest.failf "writer reported %d errors" n
             | _ -> Alcotest.fail "writer died abnormally")
           pids;
         let commits = clients * per_client in
         Tutil.check_int "every autocommit visible" commits
           (List.length (Client.query control "forall x in acct"));
         let stats = Client.dot control ".stats" in
         let counter name =
           match counter_value stats name with
           | Some n -> n
           | None -> Alcotest.failf "no %s in stats dump" name
         in
         (* Batching happened: at least one tick held 2+ commits under one
            fsync, and the sync total stayed below one-per-commit. *)
         Tutil.check_bool "some shared fsyncs" true (counter "wal_sync_saved" >= 1);
         Tutil.check_bool "syncs sublinear in commits" true (counter "wal_syncs" < commits);
         let hist = Client.dot control ".hist wal.group_size" in
         Tutil.check_bool "group size histogram populated" true
           (contains hist "wal.group_size count");
         Client.close control))

(* -- acked means durable: SIGKILL after replies, nothing may be lost ------ *)

let group_kill9_durability () =
  let n = 30 in
  let dir = Tutil.temp_dir "ode-served" in
  let pid, port = Server.spawn ~durability:Db.Group ~db_dir:dir () in
  let c = connect port in
  ignore (Client.exec c schema);
  for i = 0 to n - 1 do
    ignore (Client.exec c (Printf.sprintf "pnew acct { owner = \"k%d\", bal = %d };" i i))
  done;
  (* Every exec above was replied to, so its commit must already be on disk:
     the scheduler fsyncs before flushing replies. SIGKILL — no shutdown
     path, no drain, no checkpoint. *)
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  (try Client.close c with _ -> ());
  let db = Db.open_ dir in
  (match Ode.Verify.run db with
  | Ok () -> ()
  | Error ps -> Alcotest.failf "verify after kill -9: %s" (String.concat "; " ps));
  Tutil.check_int "all acked commits survive kill -9" n
    (Ode.Query.count db ~var:"x" ~cls:"acct" ());
  Db.close db

(* -- beyond select's FD_SETSIZE: >1024 live connections ------------------- *)

(* The poll-based loop has no 1024-descriptor ceiling: hold 1100 sessions
   open at once, serve them all, and see the accept counter agree. *)
let thousand_plus_connections () =
  let n = 1100 in
  ignore
    (with_server ~max_conns:1500 ~idle_timeout:120. (fun port ->
         let cs = Array.init n (fun _ -> connect port) in
         Tutil.check_string "schema over conn 0" "" (Client.exec cs.(0) schema);
         ignore (Client.exec cs.(0) "pnew acct { owner = \"many\", bal = 1 };");
         (* Every one of the 1100 concurrently-open sessions is live. *)
         Array.iter Client.ping cs;
         Tutil.check_int "query over the last conn" 1
           (List.length (Client.query cs.(n - 1) "forall x in acct"));
         let stats = Client.dot cs.(0) ".stats" in
         Tutil.check_bool "accepts counted past 1024" true
           (match counter_value stats "server.accepts" with
           | Some v -> v >= n
           | None -> false);
         Array.iter Client.close cs))

(* -- reader domains: parallel queries, funneled writes -------------------- *)

(* A --domains 3 server (1 writer + 2 readers): concurrent reader processes
   stream queries while the parent keeps writing. Every query reply must be
   a consistent snapshot (row count only ever grows), writes all land,
   explicit transactions from several sessions coexist on stable snapshots,
   and a query that turns out to write is re-routed to the writer and still
   answered correctly. *)
let reader_domains_e2e () =
  let readers = 3 and queries_per_reader = 120 in
  ignore
    (with_server ~domains:3 (fun port ->
         let control = connect port in
         Tutil.check_string "schema" "" (Client.exec control schema);
         for i = 0 to 19 do
           ignore
             (Client.exec control
                (Printf.sprintf "pnew acct { owner = \"pre%d\", bal = %d };" i i))
         done;
         let spawn_reader id =
           flush stdout;
           flush stderr;
           match Unix.fork () with
           | 0 ->
               let errors = ref 0 in
               (try
                  let c = connect port in
                  let last = ref 20 in
                  for _ = 1 to queries_per_reader do
                    Client.ping c;
                    let rows = List.length (Client.query c "forall x in acct") in
                    (* Snapshots are consistent and monotone: never torn
                       mid-write, never going backwards. *)
                    if rows < !last || rows > 40 then incr errors;
                    last := max !last rows
                  done;
                  Client.close c
                with _ -> errors := 100 + id);
               Unix._exit (min 120 !errors)
           | pid -> pid
         in
         let pids = List.init readers spawn_reader in
         for i = 20 to 39 do
           ignore
             (Client.exec control
                (Printf.sprintf "pnew acct { owner = \"mid%d\", bal = %d };" i i))
         done;
         List.iter
           (fun pid ->
             match Unix.waitpid [] pid with
             | _, Unix.WEXITED 0 -> ()
             | _, Unix.WEXITED e -> Alcotest.failf "reader process reported %d errors" e
             | _ -> Alcotest.fail "reader process died abnormally")
           pids;
         Tutil.check_int "all writes landed" 40
           (List.length (Client.query control "forall x in acct"));
         (* Explicit transactions from several sessions coexist across
            domains: while [control] holds one open, another session's
            begin succeeds and reader-domain queries see a stable snapshot
            that excludes both sessions' uncommitted writes. *)
         let c2 = connect port in
         let c3 = connect port in
         ignore (Client.exec control "begin; pnew acct { owner = \"held\", bal = 0 };");
         ignore (Client.exec c2 "begin; pnew acct { owner = \"held2\", bal = 0 };");
         Tutil.check_int "reader sees neither uncommitted write" 40
           (List.length (Client.query c3 "forall x in acct"));
         ignore (Client.exec control "abort;");
         (* Queries inside an explicit transaction stay on the writer (they
            must see the transaction's own uncommitted writes). *)
         Tutil.check_int "txn query sees own write" 41
           (List.length (Client.query c2 "forall x in acct"));
         ignore (Client.exec c2 "abort;");
         (* A transaction's snapshot is stable mid-write: a commit from
            another session after [begin] stays invisible until the
            transaction ends (the committed row is undone through the
            version chains on read). *)
         ignore (Client.exec c2 "begin;");
         Tutil.check_int "snapshot taken at begin" 40
           (List.length (Client.query c2 "forall x in acct"));
         ignore (Client.exec control "pnew acct { owner = \"leak\", bal = 1 };");
         Tutil.check_int "foreign commit invisible mid-txn" 40
           (List.length (Client.query c2 "forall x in acct"));
         ignore (Client.exec c2 "commit;");
         Tutil.check_int "visible once the txn ends" 41
           (List.length (Client.query c2 "forall x in acct"));
         Client.close c3;
         let stats = Client.dot control ".stats" in
         Tutil.check_bool "requests counted" true
           (match counter_value stats "server.requests" with
           | Some v -> v >= readers * 2 * queries_per_reader
           | None -> false);
         Client.close c2;
         Client.close control))

(* -- observability: /metrics endpoint, /health, slow-query log ------------ *)

(* One-shot HTTP GET against the metrics listener: write the request line,
   read to EOF (the server answers exactly one request and closes). *)
let http_get port path =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let rq = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      let rec send pos =
        if pos < String.length rq then
          send (pos + Unix.write_substring fd rq pos (String.length rq - pos))
      in
      send 0;
      let b = Buffer.create 4096 in
      let buf = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes b buf 0 n;
            drain ()
        | exception Unix.Unix_error (EINTR, _, _) -> drain ()
      in
      drain ();
      Buffer.contents b)

(* The body of an HTTP response: everything after the header separator. *)
let http_body resp =
  let rec find i =
    if i + 4 > String.length resp then String.length resp
    else if String.sub resp i 4 = "\r\n\r\n" then i + 4
    else find (i + 1)
  in
  let p = find 0 in
  String.sub resp p (String.length resp - p)

(* A --domains 2 server with the metrics endpoint bound and the slow-query
   log armed at 0 ms (every request logs). Drive real load, then assert the
   whole observability surface: a parseable Prometheus scrape with counters,
   gauges and latency quantiles; the health document; 404s; the JSON twin;
   and a slow-query log whose entries carry trace ids, the queue-wait /
   execute split and per-plan-node profiles — also visible via [.slow]. *)
let observability_endpoint () =
  let dir = Tutil.temp_dir "ode-served" in
  let pid, port, _, mport =
    Server.spawn_full ~domains:2 ~metrics_port:0 ~slow_query_ms:0 ~db_dir:dir ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid))
    (fun () ->
      let c = connect port in
      Tutil.check_string "schema" "" (Client.exec c schema);
      for i = 0 to 9 do
        ignore (Client.exec c (Printf.sprintf "pnew acct { owner = \"m%d\", bal = %d };" i i))
      done;
      for _ = 1 to 5 do
        ignore (Client.query c "forall x in acct")
      done;
      let resp = http_get mport "/metrics" in
      Tutil.check_bool "scrape is 200" true (contains resp "200 OK");
      Tutil.check_bool "prometheus content type" true
        (contains resp "text/plain; version=0.0.4");
      let body = http_body resp in
      Tutil.check_bool "requests counter exposed" true (contains body "ode_server_requests");
      Tutil.check_bool "counter TYPE line" true
        (contains body "# TYPE ode_server_requests counter");
      Tutil.check_bool "repl lag gauge exposed" true (contains body "ode_repl_lag_commits");
      Tutil.check_bool "queue depth gauge exposed" true
        (contains body "ode_server_read_queue_depth");
      Tutil.check_bool "connections gauge exposed" true (contains body "ode_server_connections");
      Tutil.check_bool "latency quantiles exposed" true (contains body "quantile=\"0.5\"");
      (* Every sample line must end in a number a scraper can parse. *)
      List.iter
        (fun line ->
          if line <> "" && line.[0] <> '#' then
            match String.rindex_opt line ' ' with
            | None -> Alcotest.failf "unparseable sample line: %s" line
            | Some i -> (
                match float_of_string_opt (String.sub line (i + 1) (String.length line - i - 1)) with
                | Some _ -> ()
                | None -> Alcotest.failf "non-numeric sample value in: %s" line))
        (String.split_on_char '\n' body);
      let h = http_body (http_get mport "/health") in
      Tutil.check_bool "health: primary role" true (contains h "\"role\":\"primary\"");
      Tutil.check_bool "health: nonzero lsn" false (contains h "\"lsn\":0,");
      Tutil.check_bool "health: domain count" true (contains h "\"domains\":2");
      Tutil.check_bool "health: slow log armed" true (contains h "\"slow_log_armed\":true");
      Tutil.check_bool "unknown path 404s" true (contains (http_get mport "/nope") "404");
      let j = http_body (http_get mport "/metrics.json") in
      Tutil.check_bool "json scrape has counters" true (contains j "\"counters\"");
      Tutil.check_bool "json scrape has histograms" true (contains j "\"histograms\"");
      let log =
        In_channel.with_open_text (Filename.concat dir "slow_query.log") In_channel.input_all
      in
      Tutil.check_bool "slow log carries trace ids" true (contains log "\"trace\":");
      Tutil.check_bool "slow log splits queue wait" true (contains log "\"queue_wait_ns\":");
      Tutil.check_bool "slow log has plan profiles" true (contains log "\"profile\":");
      Tutil.check_bool "slow log names the statement" true (contains log "forall x in acct");
      let slow = Client.dot c ".slow 3" in
      Tutil.check_bool ".slow shows retained entries" true (contains slow "\"exec_ns\":");
      let mj = Client.dot c ".metrics json" in
      Tutil.check_bool ".metrics json over the wire" true (contains mj "\"gauges\"");
      Client.close c)

let suite =
  [
    ( "server",
      [
        Alcotest.test_case "exec/query/dot round trips" `Quick basic;
        Alcotest.test_case "4 concurrent sessions, interleaved txns" `Quick concurrent_sessions;
        Alcotest.test_case "idle timeout evicts and rolls back" `Quick idle_eviction;
        Alcotest.test_case "max-conns busy rejection" `Quick busy_rejection;
        Alcotest.test_case "graceful shutdown recoverable" `Quick graceful_shutdown;
        Alcotest.test_case "group commit shares fsyncs across clients" `Quick
          group_commit_batching;
        Alcotest.test_case "group commit: acked survives kill -9" `Quick group_kill9_durability;
        Alcotest.test_case "poll loop serves >1024 concurrent connections" `Slow
          thousand_plus_connections;
        Alcotest.test_case "reader domains: parallel queries, funneled writes" `Quick
          reader_domains_e2e;
        Alcotest.test_case "metrics endpoint, health, slow-query log" `Quick
          observability_endpoint;
      ] );
  ]
