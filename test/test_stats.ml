(* Planner statistics: histogram selectivity on skewed data, persistence
   through close/reopen, crash recovery and logical dumps, staleness
   fallback, and the cost-based plan switching they enable. *)

module Db = Ode.Database
module Query = Ode.Query
module Planner = Ode.Planner
module Dump = Ode.Dump
module Value = Ode_model.Value
module Parser = Ode_lang.Parser

let int n = Value.Int n
let str s = Value.Str s

(* One extent with two indexed int fields: [a] heavily skewed (150 copies of
   1, the rest unique), [b] uniform and unique. 180 objects total. *)
let setup_skewed db =
  ignore (Db.define db "class item { a: int; b: int; };");
  Db.create_cluster db "item";
  Db.create_index db ~cls:"item" ~field:"a";
  Db.create_index db ~cls:"item" ~field:"b";
  Db.with_txn db (fun txn ->
      for i = 0 to 179 do
        let a = if i < 150 then 1 else 1000 + i in
        ignore (Db.pnew txn "item" [ ("a", int a); ("b", int i) ])
      done)

let plan db src =
  Planner.plan db ~var:"x" ~cls:"item" ~deep:false ~suchthat:(Some (Parser.expr src)) ()

let exact db src =
  Db.with_txn db (fun txn ->
      Query.count db ~txn ~var:"x" ~cls:"item" ~suchthat:(Parser.expr src) ())

(* Histogram estimates must track exact counts on skewed data: within 2x for
   the heavy value, and not confusing heavy with rare. *)
let selectivity_tracks_skew () =
  let db = Db.open_in_memory () in
  setup_skewed db;
  ignore (Db.analyze db);
  let est src = (plan db src).Planner.p_est.Planner.est_out in
  let heavy_exact = float_of_int (exact db "x.a == 1") in
  let heavy_est = est "x.a == 1" in
  Tutil.check_bool
    (Printf.sprintf "heavy estimate %.0f within 2x of exact %.0f" heavy_est heavy_exact)
    true
    (heavy_est >= heavy_exact /. 2.0 && heavy_est <= heavy_exact *. 2.0);
  let rare_est = est "x.a == 1105" in
  Tutil.check_bool
    (Printf.sprintf "rare estimate %.0f stays small" rare_est)
    true (rare_est <= 20.0);
  Tutil.check_bool "heavy ≫ rare" true (heavy_est > rare_est *. 5.0);
  (* Range estimate over roughly half the b domain. *)
  let half_est = est "x.b < 90" in
  let half_exact = float_of_int (exact db "x.b < 90") in
  Tutil.check_bool
    (Printf.sprintf "range estimate %.0f within 2x of exact %.0f" half_est half_exact)
    true
    (half_est >= half_exact /. 2.0 && half_est <= half_exact *. 2.0);
  Db.close db

(* The acceptance demo: an eq conjunct on the skewed field is planned first
   by the heuristics; after [analyze] the histograms reveal the other
   conjunct is far more selective and the plan switches. *)
let plan_switches_after_analyze () =
  let db = Db.open_in_memory () in
  setup_skewed db;
  let field p =
    match p.Planner.p_access with
    | Planner.Index_eq { field; _ } -> field
    | _ -> "(not an eq probe)"
  in
  let before = plan db "x.a == 1 && x.b == 17" in
  Tutil.check_string "heuristic picks first eq conjunct" "a" (field before);
  Tutil.check_bool "heuristic estimate flagged" false before.Planner.p_est.Planner.est_stats;
  ignore (Db.analyze db);
  let after = plan db "x.a == 1 && x.b == 17" in
  Tutil.check_string "cost model picks the selective index" "b" (field after);
  Tutil.check_bool "stats estimate flagged" true after.Planner.p_est.Planner.est_stats;
  (* Both plans return the same rows. *)
  Tutil.check_int "result unchanged" 1 (exact db "x.a == 1 && x.b == 17");
  Db.close db

let analyzed_and_fresh db = Db.stats_analyzed db && not (Db.stats_stale db)

(* Statistics are written through an ordinary transaction, so a clean
   close/reopen and a crash (WAL-tail replay) both restore them. *)
let stats_survive_reopen_and_crash () =
  let dir = Tutil.temp_dir "stats" in
  let db = Db.open_ dir in
  setup_skewed db;
  ignore (Db.analyze db);
  Tutil.check_bool "fresh after analyze" true (analyzed_and_fresh db);
  (* Crash image taken while the db is still open: no clean shutdown. *)
  let snap = Tutil.temp_dir "stats-crash" in
  Sys.rmdir snap;
  Tutil.copy_dir dir snap;
  Db.close db;
  let db2 = Db.open_ dir in
  Tutil.check_bool "fresh after clean reopen" true (analyzed_and_fresh db2);
  Tutil.check_bool "histograms restored" true
    (plan db2 "x.a == 1 && x.b == 17").Planner.p_est.Planner.est_stats;
  Db.close db2;
  let db3 = Db.open_ snap in
  Tutil.check_bool "fresh after crash recovery" true (analyzed_and_fresh db3);
  Db.close db3

(* A logical dump replays [analyze;] at the end, so the restored store
   plans like the source did. *)
let stats_survive_dump () =
  let db = Db.open_in_memory () in
  setup_skewed db;
  ignore (Db.analyze db);
  let script = Dump.export db in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Tutil.check_bool "dump carries analyze" true (contains script "analyze;");
  let db2 = Db.open_in_memory () in
  Dump.import db2 script;
  Tutil.check_bool "fresh after import" true (analyzed_and_fresh db2);
  Tutil.check_int "objects restored" 150 (exact db2 "x.a == 1");
  Db.close db;
  Db.close db2

(* Enough churn after analyze flips [stale] and sends the planner back to
   the heuristics (first-eq-conjunct wins again). *)
let stale_stats_fall_back () =
  let db = Db.open_in_memory () in
  setup_skewed db;
  ignore (Db.analyze db);
  Tutil.check_bool "fresh" true (analyzed_and_fresh db);
  (* Threshold is max 100 (base/5); base is ~180 here, so 101 creates
     cross it. *)
  Db.with_txn db (fun txn ->
      for i = 0 to 100 do
        ignore (Db.pnew txn "item" [ ("a", int (5000 + i)); ("b", int (5000 + i)) ])
      done);
  Tutil.check_bool "stale after churn" true (Db.stats_stale db);
  let p = plan db "x.a == 1 && x.b == 17" in
  Tutil.check_bool "estimate no longer from stats" false p.Planner.p_est.Planner.est_stats;
  (match p.Planner.p_access with
  | Planner.Index_eq { field; _ } -> Tutil.check_string "heuristic order restored" "a" field
  | _ -> Alcotest.fail "expected an eq probe");
  (* Re-analyzing refreshes. *)
  ignore (Db.analyze db);
  Tutil.check_bool "fresh again" true (analyzed_and_fresh db);
  Db.close db

(* Without any analyze the planner must still work (and say so). *)
let absent_stats_use_heuristics () =
  let db = Db.open_in_memory () in
  setup_skewed db;
  Tutil.check_bool "not analyzed" false (Db.stats_analyzed db);
  Tutil.check_bool "stale by definition" true (Db.stats_stale db);
  let p = plan db "x.b == 17" in
  Tutil.check_bool "heuristic estimate" false p.Planner.p_est.Planner.est_stats;
  Tutil.check_bool "still plans a probe" true
    (match p.Planner.p_access with Planner.Index_eq _ -> true | _ -> false);
  Db.close db

(* -- join planning over statistics ----------------------------------------- *)

let setup_join db ~emps =
  ignore
    (Db.define db
       {|class dept { dname: string; head: ref dept; };
         class emp { ename: string; works: string; boss: ref dept; team: set<int>; };|});
  Db.create_cluster db "dept";
  Db.create_cluster db "emp";
  let d1, d2 =
    Db.with_txn db (fun txn ->
        let d1 = Db.pnew txn "dept" [ ("dname", str "eng") ] in
        let d2 = Db.pnew txn "dept" [ ("dname", str "ops") ] in
        (d1, d2))
  in
  Db.with_txn db (fun txn ->
      for i = 0 to emps - 1 do
        let d = if i mod 2 = 0 then "eng" else "ops" in
        let boss = if i mod 2 = 0 then d1 else d2 in
        ignore
          (Db.pnew txn "emp"
             [ ("ename", str (Printf.sprintf "e%d" i)); ("works", str d);
               ("boss", Value.Ref boss) ])
      done)

let join_plan db ?(inner_st = "e.works == d.dname") () =
  Planner.plan_join db ~outer:("d", "dept", false) ~inner:("e", "emp", false)
    ~inner_suchthat:(Parser.expr inner_st) ()

let join_strategy_selection () =
  let db = Db.open_in_memory () in
  setup_join db ~emps:60;
  (* Field-equality link without statistics: stay on the nested loop. *)
  (match (join_plan db ()).Planner.j_strategy with
  | Planner.Nested_loop -> ()
  | _ -> Alcotest.fail "heuristics must keep the nested loop");
  (* Deref and membership links fuse with or without statistics. *)
  (match
     (Planner.plan_join db ~outer:("e", "emp", false) ~inner:("d", "dept", false)
        ~inner_suchthat:(Parser.expr "d == e.boss") ())
       .Planner.j_strategy
   with
  | Planner.Fused_deref "boss" -> ()
  | _ -> Alcotest.fail "expected deref fusion via e.boss");
  ignore (Db.analyze db);
  (* With fresh statistics the one-pass hash build beats rescanning 60
     employees per department. *)
  (match (join_plan db ()).Planner.j_strategy with
  | Planner.Hash_join { outer_field = "dname"; inner_field = "works" } -> ()
  | _ -> Alcotest.fail "expected a hash join after analyze");
  (* A set-typed field can never key a hash join. *)
  (match (join_plan db ~inner_st:"e.team == d.head" ()).Planner.j_strategy with
  | Planner.Hash_join _ -> Alcotest.fail "hash join on a set-typed field"
  | _ -> ());
  Db.close db

(* Every strategy must emit exactly the nested loop's pairs. *)
let fused_joins_match_nested () =
  let db = Db.open_in_memory () in
  setup_join db ~emps:40;
  let pairs ?outer_suchthat ?inner_suchthat () =
    let acc = ref [] in
    Query.run_join db ~outer:("d", "dept", false) ~inner:("e", "emp", false) ?outer_suchthat
      ?inner_suchthat
      (fun o i -> acc := (o, i) :: !acc);
    List.sort compare !acc
  in
  let nested_pairs ?outer_suchthat ?inner_suchthat () =
    let acc = ref [] in
    Query.run db ~var:"d" ~cls:"dept" ?suchthat:outer_suchthat (fun o ->
        Query.run db
          ~env:[ ("d", Value.Ref o) ]
          ~var:"e" ~cls:"emp" ?suchthat:inner_suchthat
          (fun i -> acc := (o, i) :: !acc));
    List.sort compare !acc
  in
  let cases =
    [
      (None, Some (Parser.expr "e.works == d.dname"));
      (None, Some (Parser.expr "e.boss == d"));
      (Some (Parser.expr "d.dname == \"eng\""), Some (Parser.expr "e.works == d.dname && e.ename != \"e2\""));
    ]
  in
  let check () =
    List.iter
      (fun (o_st, i_st) ->
        let a = pairs ?outer_suchthat:o_st ?inner_suchthat:i_st () in
        let b = nested_pairs ?outer_suchthat:o_st ?inner_suchthat:i_st () in
        Tutil.check_int "pair sets agree" (List.length b) (List.length a);
        Tutil.check_bool "same pairs" true (a = b))
      cases
  in
  check ();
  ignore (Db.analyze db);
  check ();
  Db.close db

(* Per-node attribution must stay exact for stats-priced plans too: the
   node sums equal the query totals, and every node label carries its
   estimate. *)
let profile_sums_with_stats () =
  let db = Db.open_in_memory () in
  setup_skewed db;
  ignore (Db.analyze db);
  let pf =
    Db.with_txn db (fun txn ->
        Query.profile db ~txn ~var:"x" ~cls:"item"
          ~suchthat:(Parser.expr "x.a == 1 && x.b < 40") ())
  in
  let node_ns = List.fold_left (fun acc n -> acc + n.Query.ns_ns) 0 pf.Query.pf_nodes in
  Tutil.check_int "node time sums to total" pf.Query.pf_total_ns node_ns;
  Tutil.check_bool "labels carry estimates" true
    (List.for_all
       (fun n ->
         match n.Query.ns_kind with
         | Ode.Planner.Access | Ode.Planner.Filter -> String.contains n.Query.ns_label '~'
         | _ -> true)
       pf.Query.pf_nodes);
  Db.close db

let suite =
  [
    ( "stats",
      [
        Alcotest.test_case "selectivity tracks skew" `Quick selectivity_tracks_skew;
        Alcotest.test_case "plan switches after analyze" `Quick plan_switches_after_analyze;
        Alcotest.test_case "survive reopen and crash" `Quick stats_survive_reopen_and_crash;
        Alcotest.test_case "survive logical dump" `Quick stats_survive_dump;
        Alcotest.test_case "stale stats fall back" `Quick stale_stats_fall_back;
        Alcotest.test_case "absent stats use heuristics" `Quick absent_stats_use_heuristics;
        Alcotest.test_case "join strategy selection" `Quick join_strategy_selection;
        Alcotest.test_case "fused joins match nested" `Quick fused_joins_match_nested;
        Alcotest.test_case "profile sums with stats" `Quick profile_sums_with_stats;
      ] );
  ]
