(* Observability: the span tracer, latency histograms, the Stats registry,
   and per-query EXPLAIN ANALYZE profiling. Trace and Histogram are
   process-global, so every test restores the defaults (tracing off and
   cleared, histograms on) before returning. *)

module Trace = Ode_util.Trace
module Histogram = Ode_util.Histogram
module Stats = Ode_util.Stats
module Db = Ode.Database
module Shell = Ode.Shell
module Query = Ode.Query

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_contains what s sub =
  if not (contains s sub) then Alcotest.failf "%s: %S lacks %S" what s sub

let with_tracing f =
  Trace.clear ();
  Trace.set_enabled true;
  Fun.protect f ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.clear ();
      Histogram.set_enabled true)

(* -- tracer ---------------------------------------------------------------- *)

let span_nesting () =
  with_tracing @@ fun () ->
  let r =
    Trace.with_span "outer" (fun () ->
        Trace.instant ~cat:"t" "tick";
        Trace.with_span "inner" (fun () -> 42))
  in
  Alcotest.(check int) "with_span returns" 42 r;
  match Trace.spans () with
  | [ tick; inner; outer ] ->
      (* spans record at completion, so innermost-first *)
      Alcotest.(check string) "first" "tick" tick.Trace.sp_name;
      Alcotest.(check string) "second" "inner" inner.Trace.sp_name;
      Alcotest.(check string) "third" "outer" outer.Trace.sp_name;
      Alcotest.(check int) "tick depth" 1 tick.Trace.sp_depth;
      Alcotest.(check int) "inner depth" 1 inner.Trace.sp_depth;
      Alcotest.(check int) "outer depth" 0 outer.Trace.sp_depth;
      assert (tick.Trace.sp_phase = Trace.Instant);
      assert (inner.Trace.sp_phase = Trace.Complete);
      (* the outer span covers the inner one *)
      assert (outer.Trace.sp_start_ns <= inner.Trace.sp_start_ns);
      assert (
        outer.Trace.sp_start_ns + outer.Trace.sp_dur_ns
        >= inner.Trace.sp_start_ns + inner.Trace.sp_dur_ns)
  | l -> Alcotest.failf "expected 3 spans, got %d" (List.length l)

let span_exception_safe () =
  with_tracing @@ fun () ->
  (try Trace.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  match Trace.spans () with
  | [ s ] ->
      Alcotest.(check string) "recorded on raise" "boom" s.Trace.sp_name;
      Alcotest.(check int) "depth restored" 0 s.Trace.sp_depth
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

let ring_wraparound () =
  with_tracing @@ fun () ->
  let cap0 = Trace.capacity () in
  Fun.protect
    (fun () ->
      Trace.set_capacity 4;
      for i = 1 to 10 do
        Trace.instant (Printf.sprintf "e%d" i)
      done;
      Alcotest.(check int) "total includes overwritten" 10 (Trace.total_recorded ());
      let names = List.map (fun s -> s.Trace.sp_name) (Trace.spans ()) in
      Alcotest.(check (list string)) "last 4, oldest first" [ "e7"; "e8"; "e9"; "e10" ] names)
    ~finally:(fun () -> Trace.set_capacity cap0)

(* Seeded multi-domain stress: four domains blast spans through a small
   ring (forcing wraparound) under distinct ambient trace ids. Span ids
   must stay unique across domains and every span must carry its emitting
   domain's trace id — the invariants `.trace dump` correlation rests on. *)
let concurrent_span_ids () =
  with_tracing @@ fun () ->
  let cap0 = Trace.capacity () in
  Fun.protect ~finally:(fun () -> Trace.set_capacity cap0) @@ fun () ->
  Trace.set_capacity 512;
  let per_domain = 400 in
  let doms =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            Trace.with_trace_id (1000 + d) (fun () ->
                for i = 1 to per_domain do
                  if i mod 3 = 0 then Trace.instant (Printf.sprintf "d%d.i%d" d i)
                  else Trace.with_span (Printf.sprintf "d%d.s%d" d i) (fun () -> ())
                done)))
  in
  List.iter Domain.join doms;
  Alcotest.(check int) "total counts overwritten" (4 * per_domain) (Trace.total_recorded ());
  let spans = Trace.spans () in
  Alcotest.(check int) "ring holds exactly capacity" 512 (List.length spans);
  let ids = List.map (fun s -> s.Trace.sp_id) spans in
  let tbl = Hashtbl.create 1024 in
  List.iter (fun id -> Hashtbl.replace tbl id ()) ids;
  Alcotest.(check int) "span ids unique across domains" (List.length ids) (Hashtbl.length tbl);
  List.iter
    (fun s ->
      let d = s.Trace.sp_trace - 1000 in
      if d < 0 || d > 3 then Alcotest.failf "span %s has trace %d" s.Trace.sp_name s.Trace.sp_trace;
      check_contains "trace id matches emitting domain" s.Trace.sp_name
        (Printf.sprintf "d%d." d))
    spans

let disabled_noop () =
  Trace.clear ();
  Trace.set_enabled false;
  let r = Trace.with_span "ghost" (fun () -> Trace.instant "ghost2"; 7) in
  Alcotest.(check int) "thunk still runs" 7 r;
  Alcotest.(check int) "nothing retained" 0 (List.length (Trace.spans ()));
  Alcotest.(check int) "nothing counted" 0 (Trace.total_recorded ())

let chrome_json () =
  with_tracing @@ fun () ->
  Trace.with_span ~cat:"demo" ~args:[ ("k", "v\"q") ] "work" (fun () -> ());
  Trace.instant "mark";
  let j = Trace.to_chrome_json () in
  check_contains "doc" j "\"traceEvents\"";
  check_contains "complete event" j "\"ph\":\"X\"";
  check_contains "instant event" j "\"ph\":\"i\"";
  check_contains "escaped arg" j "v\\\"q";
  let path = Filename.temp_file "ode_trace" ".json" in
  Fun.protect
    (fun () ->
      Trace.dump path;
      let written = In_channel.with_open_text path In_channel.input_all in
      Alcotest.(check string) "dump writes to_chrome_json" j written)
    ~finally:(fun () -> Sys.remove path)

(* -- histograms ------------------------------------------------------------ *)

let histogram_buckets () =
  List.iter
    (fun (ns, want) ->
      Alcotest.(check int) (Printf.sprintf "bucket(%d)" ns) want (Histogram.bucket_index ns))
    [ (0, 0); (1, 0); (2, 1); (3, 1); (4, 2); (1023, 9); (1024, 10) ]

let histogram_percentiles () =
  let h = Histogram.create "test.obs.percentiles" in
  Histogram.reset h;
  for _ = 1 to 90 do
    Histogram.observe h 10
  done;
  for _ = 1 to 10 do
    Histogram.observe h 100_000
  done;
  Alcotest.(check int) "count" 100 (Histogram.count h);
  Alcotest.(check int) "max" 100_000 (Histogram.max_ns h);
  (* 10ns lands in bucket [8,15]: the p50 estimate is that bucket's upper
     bound; the tail percentiles clamp to the observed max. *)
  Alcotest.(check int) "p50" 15 (Histogram.percentile h 50.0);
  Alcotest.(check int) "p95" 100_000 (Histogram.percentile h 95.0);
  Alcotest.(check int) "p99" 100_000 (Histogram.percentile h 99.0);
  let mean = Histogram.mean_ns h in
  assert (mean > 10_000.0 && mean < 11_000.0);
  check_contains "summary row" (Histogram.summary ()) "test.obs.percentiles";
  Histogram.reset h

(* Regression for the cross-domain `.metrics reset` race: draining
   snapshots (snapshot ~reset) while other domains observe concurrently
   must neither lose nor double-count a sample — each observation lands in
   exactly one drained snapshot or the final residue. *)
let histogram_concurrent_drain () =
  let h = Histogram.create "test.obs.drain" in
  Histogram.reset h;
  let n_per = 20_000 in
  let writers =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            for i = 1 to n_per do
              Histogram.observe h i
            done))
  in
  let drained = ref 0 in
  for _ = 1 to 50 do
    let r = Histogram.snapshot ~reset:true h in
    drained := !drained + r.Histogram.r_count
  done;
  List.iter Domain.join writers;
  let final = Histogram.snapshot ~reset:true h in
  Alcotest.(check int) "no sample lost or double-counted" (3 * n_per)
    (!drained + final.Histogram.r_count)

let histogram_time_disabled () =
  let h = Histogram.create "test.obs.disabled" in
  Histogram.reset h;
  Histogram.set_enabled false;
  Fun.protect
    (fun () ->
      let r = Histogram.time h (fun () -> 3) in
      Alcotest.(check int) "thunk runs" 3 r;
      Alcotest.(check int) "nothing recorded" 0 (Histogram.count h))
    ~finally:(fun () -> Histogram.set_enabled true)

(* -- stats registry -------------------------------------------------------- *)

let stats_registry () =
  let before = Stats.snapshot () in
  Stats.incr_pages_read ();
  Stats.incr_index_probes ();
  Stats.incr_index_probes ();
  let after = Stats.snapshot () in
  let d = Stats.diff after before in
  Alcotest.(check int) "accessor sees delta" 1 (Stats.pages_read d);
  Alcotest.(check int) "get by name" 1 (Stats.get d "pages_read");
  Alcotest.(check int) "probes" 2 (Stats.get d "index_probes");
  Alcotest.(check int) "unknown name" 0 (Stats.get d "no_such_counter");
  let names = List.map fst (Stats.to_list d) in
  Alcotest.(check (list string)) "to_list follows registration order" (Stats.registered ()) names;
  (* pp is derived from the registry: every workload counter appears *)
  let pp = Fmt.str "%a" Stats.pp d in
  check_contains "pp" pp "pages_read 1";
  check_contains "pp" pp "index_probes 2";
  let z = Stats.zero () in
  Stats.accum ~into:z after before;
  Alcotest.(check int) "accum" 1 (Stats.pages_read z)

(* -- metrics exposition ---------------------------------------------------- *)

let prometheus_exposition () =
  let h = Histogram.create "test.obs.expo" in
  Histogram.reset h;
  Histogram.observe h 1000;
  Histogram.observe h 2000;
  Stats.register_gauge "test.gauge_ok" (fun () -> 42);
  Stats.register_gauge "test.gauge_raises" (fun () -> failwith "sampler died");
  Fun.protect
    ~finally:(fun () ->
      Stats.unregister_gauge "test.gauge_ok";
      Stats.unregister_gauge "test.gauge_raises";
      Histogram.reset h)
  @@ fun () ->
  let text = Ode_util.Metrics.prometheus () in
  check_contains "sampled gauge" text "ode_test_gauge_ok 42";
  check_contains "raising sampler reads 0" text "ode_test_gauge_raises 0";
  check_contains "counter TYPE" text "# TYPE ode_server_requests counter";
  check_contains "lag slot is a gauge" text "# TYPE ode_repl_lag_commits gauge";
  check_contains "histogram p50" text "ode_test_obs_expo_ns{quantile=\"0.5\"}";
  check_contains "histogram p95" text "ode_test_obs_expo_ns{quantile=\"0.95\"}";
  check_contains "histogram p99" text "ode_test_obs_expo_ns{quantile=\"0.99\"}";
  check_contains "histogram sum" text "ode_test_obs_expo_ns_sum 3000";
  check_contains "histogram count" text "ode_test_obs_expo_ns_count 2";
  (* Parseability: every non-comment line is `name[{labels}] value` with a
     numeric value — the contract a Prometheus scraper relies on. *)
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if line <> "" && line.[0] <> '#' then
           match String.rindex_opt line ' ' with
           | None -> Alcotest.failf "unparseable exposition line %S" line
           | Some i -> (
               let v = String.sub line (i + 1) (String.length line - i - 1) in
               match float_of_string_opt v with
               | Some _ -> ()
               | None -> Alcotest.failf "non-numeric value in %S" line))

let metrics_json_shape () =
  Stats.register_gauge "test.gauge_json" (fun () -> 7)
  ;
  Fun.protect ~finally:(fun () -> Stats.unregister_gauge "test.gauge_json") @@ fun () ->
  let j = Ode_util.Metrics.json () in
  check_contains "counters object" j "\"counters\":{";
  check_contains "gauges object" j "\"gauges\":{";
  check_contains "histograms object" j "\"histograms\":{";
  check_contains "gauge value" j "\"test.gauge_json\":7";
  check_contains "request histogram" j "\"server.request\":{"

(* Satellite: `.stats` output is name-sorted, not registration-ordered, so
   fresh-open and post-recovery sessions print comparable reports. *)
let stats_sorted_output () =
  let pp = Fmt.str "%a" Stats.pp (Stats.snapshot ()) in
  let is_number tok = tok <> "" && float_of_string_opt tok <> None in
  let names =
    String.split_on_char ' ' pp
    |> List.filter (fun tok -> tok <> "" && not (is_number tok))
  in
  if List.length names < 10 then Alcotest.failf "suspiciously few counters in %S" pp;
  Alcotest.(check (list string)) "names sorted" (List.sort compare names) names

(* -- slow-query log -------------------------------------------------------- *)

let slowlog_basics () =
  let dir = Tutil.temp_dir "ode-slowlog" in
  let path = Filename.concat dir "slow.log" in
  Ode_util.Slowlog.configure ~log_path:path ~log_max_bytes:4096 ~keep:4 ~threshold_ms:5 ();
  Fun.protect ~finally:(fun () -> Ode_util.Slowlog.disarm ()) @@ fun () ->
  Alcotest.(check bool) "armed" true (Ode_util.Slowlog.armed ());
  Alcotest.(check int) "threshold in ns" 5_000_000 (Ode_util.Slowlog.threshold_ns ());
  for i = 1 to 6 do
    Ode_util.Slowlog.record ~dur_ns:(i * 1000) (Printf.sprintf "{\"n\":%d}" i)
  done;
  (* the ring keeps the newest [keep]; [worst] sorts by duration, worst
     first *)
  Alcotest.(check int) "retained" 4 (Ode_util.Slowlog.retained ());
  Alcotest.(check (list string))
    "worst first" [ "{\"n\":6}"; "{\"n\":5}" ]
    (Ode_util.Slowlog.worst 2);
  (* the file keeps everything, one JSON line per entry *)
  let lines = In_channel.with_open_text path In_channel.input_lines in
  Alcotest.(check int) "file lines" 6 (List.length lines);
  Alcotest.(check string) "first line" "{\"n\":1}" (List.hd lines);
  (* rotation: push past the byte cap; the old generation lands in .1 *)
  Ode_util.Slowlog.record ~dur_ns:1
    (Printf.sprintf "{\"pad\":\"%s\"}" (String.make 4200 'x'));
  Ode_util.Slowlog.record ~dur_ns:1 "{\"after\":1}";
  Alcotest.(check bool) "rotated generation exists" true (Sys.file_exists (path ^ ".1"));
  let fresh = In_channel.with_open_text path In_channel.input_lines in
  Alcotest.(check (list string)) "fresh file holds post-rotation entry" [ "{\"after\":1}" ] fresh;
  (* disarm drops the threshold back to never *)
  Ode_util.Slowlog.disarm ();
  Alcotest.(check bool) "disarmed" false (Ode_util.Slowlog.armed ())

(* -- EXPLAIN ANALYZE ------------------------------------------------------- *)

let stockitem_db () =
  let db = Db.open_in_memory () in
  let shell = Shell.create ~print:(fun _ -> ()) db in
  (match
     Shell.exec_catching shell
       {|
       class supplier { sname: string; city: string; };
       class stockitem { name: string; qty: int; price: float; sup: ref supplier; };
       create cluster supplier;
       create cluster stockitem;
       s := pnew supplier { sname = "att", city = "berkeley hts" };
       i := pnew stockitem { name = "512 dram", qty = 3, price = 5.0, sup = s };
       j := pnew stockitem { name = "256 dram", qty = 100, price = 2.0, sup = s };
       |}
   with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "setup failed: %s" msg);
  (db, shell)

let reorder_suchthat () =
  match Ode_lang.Parser.program "explain forall x in stockitem suchthat x.qty < 50;" with
  | [ Ode_lang.Ast.TExplain f ] -> f.Ode_lang.Ast.q_suchthat
  | _ -> Alcotest.fail "unexpected parse"

let profile_attribution () =
  let db, _shell = stockitem_db () in
  Fun.protect ~finally:(fun () -> Db.close db) @@ fun () ->
  let pf =
    Query.profile db ~var:"x" ~cls:"stockitem" ?suchthat:(reorder_suchthat ()) ()
  in
  Alcotest.(check int) "rows" 1 pf.Query.pf_rows;
  check_contains "plan" pf.Query.pf_plan "full scan of cluster stockitem";
  (* exact attribution: per-node time and counters sum to the query totals *)
  let sum_ns =
    List.fold_left (fun acc n -> acc + n.Query.ns_ns) 0 pf.Query.pf_nodes
  in
  Alcotest.(check int) "node times sum to total" pf.Query.pf_total_ns sum_ns;
  List.iter
    (fun (name, total) ->
      let s =
        List.fold_left
          (fun acc n -> acc + Stats.get n.Query.ns_stats name)
          0 pf.Query.pf_nodes
      in
      Alcotest.(check int) (name ^ " sums to total") total s)
    (Stats.to_list pf.Query.pf_stats);
  (* both objects are scanned, one survives the predicate *)
  let node kind =
    List.find (fun n -> n.Query.ns_kind = kind) pf.Query.pf_nodes
  in
  Alcotest.(check int) "access candidates" 2 (node Ode.Planner.Access).Query.ns_rows;
  Alcotest.(check int) "filter survivors" 1 (node Ode.Planner.Filter).Query.ns_rows;
  Alcotest.(check int) "output rows" 1 (node Ode.Planner.Output).Query.ns_rows;
  Alcotest.(check int)
    "scan work attributed" 2
    (Stats.get pf.Query.pf_stats "objects_scanned");
  let rendered = Query.profile_to_string pf in
  check_contains "rendered plan" rendered "plan: full scan";
  check_contains "rendered filter" rendered "filter";
  check_contains "rendered total" rendered "total"

let profile_emits_spans () =
  let db, _shell = stockitem_db () in
  Fun.protect ~finally:(fun () -> Db.close db) @@ fun () ->
  with_tracing @@ fun () ->
  Query.run db ~var:"x" ~cls:"stockitem" ?suchthat:(reorder_suchthat ()) ignore;
  let names = List.map (fun s -> s.Trace.sp_name) (Trace.spans ()) in
  if not (List.mem "query.execute" names) then
    Alcotest.failf "no query.execute span in %s" (String.concat "," names)

(* -- shell dot commands ---------------------------------------------------- *)

let dot_shell () =
  let db, shell = stockitem_db () in
  Fun.protect
    ~finally:(fun () ->
      Db.close db;
      Trace.set_enabled false;
      Trace.clear ();
      Histogram.set_enabled true)
  @@ fun () ->
  let dot line =
    match Shell.dot_command shell line with
    | Some out -> out
    | None -> Alcotest.failf "%S not handled" line
  in
  Alcotest.(check (option string)) "non-dot" None (Shell.dot_command shell "print 1;");
  check_contains ".help" (dot ".help") ".profile";
  check_contains ".stats" (dot ".stats") "pages_read";
  Alcotest.(check string) ".stats reset" "counters reset" (dot "  .stats reset ");
  check_contains ".recovery" (dot ".recovery") "recovery_replayed";
  check_contains ".metrics" (dot ".metrics") "p50";
  Alcotest.(check string) ".trace on" "tracing on" (dot ".trace on");
  assert (Trace.enabled ());
  check_contains ".explain" (dot ".explain forall x in stockitem suchthat x.qty < 50")
    "full scan of cluster stockitem";
  check_contains ".profile"
    (dot ".profile forall x in stockitem suchthat x.qty < 50 { print x.name; };")
    "filter";
  let path = Filename.temp_file "ode_dot_trace" ".json" in
  Fun.protect
    (fun () ->
      check_contains ".trace dump" (dot (".trace dump " ^ path)) "wrote";
      let written = In_channel.with_open_text path In_channel.input_all in
      check_contains "dump file" written "\"traceEvents\"")
    ~finally:(fun () -> Sys.remove path);
  Alcotest.(check string) ".trace off" "tracing off" (dot ".trace off");
  check_contains ".trace status" (dot ".trace") "tracing off";
  check_contains "bad query" (dot ".profile nonsense") "expected";
  check_contains "unknown" (dot ".bogus") "unknown command"

let dot_profile_body_binding () =
  (* .profile with a body must not clobber an existing shell variable *)
  let db, shell = stockitem_db () in
  Fun.protect ~finally:(fun () -> Db.close db) @@ fun () ->
  (match Shell.exec_catching shell "x := 99;" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (match Shell.dot_command shell ".profile forall x in stockitem { print x.name; };" with
  | Some _ -> ()
  | None -> Alcotest.fail "not handled");
  match List.assoc_opt "x" (Shell.vars shell) with
  | Some (Ode_model.Value.Int 99) -> ()
  | _ -> Alcotest.fail "outer binding of x was not restored"

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "span nesting and ordering" `Quick span_nesting;
        Alcotest.test_case "span records on exception" `Quick span_exception_safe;
        Alcotest.test_case "ring buffer wraparound" `Quick ring_wraparound;
        Alcotest.test_case "concurrent span ids and trace ids" `Quick concurrent_span_ids;
        Alcotest.test_case "disabled tracer is a no-op" `Quick disabled_noop;
        Alcotest.test_case "chrome trace JSON export" `Quick chrome_json;
        Alcotest.test_case "histogram bucket boundaries" `Quick histogram_buckets;
        Alcotest.test_case "histogram percentiles" `Quick histogram_percentiles;
        Alcotest.test_case "histogram concurrent drain" `Quick histogram_concurrent_drain;
        Alcotest.test_case "histogram disabled" `Quick histogram_time_disabled;
        Alcotest.test_case "stats registry round-trip" `Quick stats_registry;
        Alcotest.test_case "prometheus exposition" `Quick prometheus_exposition;
        Alcotest.test_case "metrics json shape" `Quick metrics_json_shape;
        Alcotest.test_case "stats output name-sorted" `Quick stats_sorted_output;
        Alcotest.test_case "slow-query log basics" `Quick slowlog_basics;
        Alcotest.test_case "profile attribution sums exactly" `Quick profile_attribution;
        Alcotest.test_case "tracing emits query spans" `Quick profile_emits_spans;
        Alcotest.test_case "shell dot commands" `Quick dot_shell;
        Alcotest.test_case "profile restores loop binding" `Quick dot_profile_body_binding;
      ] );
  ]
