(* End-to-end sessions exercising every subsystem together: DDL, data,
   hierarchy queries, versions, constraints, triggers, crash recovery,
   integrity verification and dump/reload. *)

module Db = Ode.Database
module Query = Ode.Query
module Value = Ode_model.Value
module Parser = Ode_lang.Parser

let int n = Value.Int n
let str s = Value.Str s

let full_lifecycle () =
  let dir = Tutil.temp_dir "integ" in
  let trigger_log = Buffer.create 64 in

  (* --- phase 1: build ---------------------------------------------------- *)
  let db = Db.open_ dir in
  Db.set_action_printer db (Buffer.add_string trigger_log);
  ignore
    (Db.define db
       {|
       class asset {
         label: string;
         worth: int;
         constraint valued: worth >= 0;
         method pretty(): string = label + "=" + str(worth);
       };
       class machine : asset {
         hours: int;
         trigger service(limit: int): hours > limit ==> { print "service", label; hours := 0; };
       };
       class building : asset { floors: int; };
       |});
  List.iter (Db.create_cluster db) [ "asset"; "machine"; "building" ];
  Db.create_index db ~cls:"asset" ~field:"worth";

  let lathe =
    Db.with_txn db (fun txn ->
        let lathe = Db.pnew txn "machine" [ ("label", str "lathe"); ("worth", int 900); ("hours", int 10) ] in
        ignore (Db.pnew txn "machine" [ ("label", str "press"); ("worth", int 1500); ("hours", int 5) ]);
        ignore (Db.pnew txn "building" [ ("label", str "shed"); ("worth", int 20000); ("floors", int 1) ]);
        ignore (Db.activate txn lathe "service" [ int 100 ]);
        Db.set_root txn "flagship" (Value.Ref lathe);
        lathe)
  in

  (* --- phase 2: work ------------------------------------------------------ *)
  (* Wear the lathe past its service limit; the trigger resets its hours. *)
  Db.with_txn db (fun txn -> Db.set_field txn lathe "hours" (int 150));
  Tutil.check_string "trigger ran" "service lathe\n" (Buffer.contents trigger_log);
  Db.with_txn db (fun txn -> Tutil.check_value "action applied" (int 0) (Db.get_field txn lathe "hours"));

  (* Version the lathe before revaluing it. *)
  Db.with_txn db (fun txn ->
      ignore (Db.newversion txn lathe);
      Db.set_field txn lathe "worth" (int 750));

  (* A violating revaluation rolls everything back. *)
  (match
     Db.with_txn db (fun txn ->
         Db.set_field txn lathe "hours" (int 3);
         Db.set_field txn lathe "worth" (int (-1)))
   with
  | () -> Alcotest.fail "constraint should have fired"
  | exception Ode.Types.Constraint_violation _ -> ());
  Db.with_txn db (fun txn ->
      Tutil.check_value "rollback kept worth" (int 750) (Db.get_field txn lathe "worth");
      Tutil.check_value "rollback kept hours" (int 0) (Db.get_field txn lathe "hours"));

  (* Queries across the hierarchy, via the index. *)
  let rich =
    Db.with_txn db (fun _ ->
        Query.count db ~var:"a" ~cls:"asset" ~deep:true ~suchthat:(Parser.expr "a.worth >= 1000") ())
  in
  Tutil.check_int "deep indexed query" 2 rich;

  (* --- phase 3: crash ------------------------------------------------------ *)
  let snap = Tutil.temp_dir "integ-crash" in
  Sys.rmdir snap;
  Tutil.copy_dir dir snap;
  Db.close db;

  let db2 = Db.open_ snap in
  Ode.Verify.run_exn db2;
  Db.with_txn db2 (fun txn ->
      (match Db.root_exn txn "flagship" with
      | Value.Ref o ->
          Tutil.check_value "root survives crash" (str "lathe") (Db.get_field txn o "label");
          Tutil.check_bool "versions survive" true (List.length (Db.versions txn o) = 2);
          Tutil.check_value "method dispatch works" (str "lathe=750") (Db.call txn o "pretty" [])
      | v -> Alcotest.failf "bad root: %s" (Value.to_string v)));

  (* The persisted trigger is still armed after recovery (it was once-only
     and already fired, so re-activate, then fire it). *)
  Buffer.clear trigger_log;
  Db.set_action_printer db2 (Buffer.add_string trigger_log);
  Db.with_txn db2 (fun txn ->
      match Db.root_exn txn "flagship" with
      | Value.Ref o -> ignore (Db.activate txn o "service" [ int 1 ])
      | _ -> ());
  Db.with_txn db2 (fun txn ->
      match Db.root_exn txn "flagship" with
      | Value.Ref o -> Db.set_field txn o "hours" (int 2)
      | _ -> ());
  Tutil.check_string "trigger re-armed post-crash" "service lathe\n" (Buffer.contents trigger_log);

  (* --- phase 4: dump and reload --------------------------------------------- *)
  let script = Ode.Dump.export db2 in
  let db3 = Db.open_in_memory () in
  Ode.Dump.import db3 script;
  Ode.Verify.run_exn db3;
  let labels d =
    Db.with_txn d (fun txn ->
        List.sort compare
          (List.map
             (fun o -> Value.to_string (Db.get_field txn o "label"))
             (Query.to_list d ~var:"a" ~cls:"asset" ~deep:true ())))
  in
  Tutil.check_bool "dump preserves extents" true (labels db2 = labels db3);
  Db.close db2;
  Db.close db3

let shell_session_lifecycle () =
  (* The same story driven purely through the surface language. *)
  let db = Db.open_in_memory () in
  let out = Buffer.create 256 in
  let shell = Ode.Shell.create ~print:(Buffer.add_string out) db in
  (match
     Ode.Shell.exec_catching shell
       {|
       class task {
         title: string; done: int; priority: int;
         constraint prio: priority >= 0 && priority <= 9;
         trigger nag(): done == 0 && priority > 7 ==> { print "URGENT:", title; };
       };
       create cluster task;
       create index on task(priority);
       t1 := pnew task { title = "ship", priority = 3 };
       t2 := pnew task { title = "test", priority = 5 };
       activate t1.nag();
       begin;
       t1.priority := 9;
       commit;
       forall t in task suchthat t.priority > 4 by t.priority desc { print t.title, t.priority; };
       verify;
       |}
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "session failed: %s" e);
  Tutil.check_string "full session output" "URGENT: ship\nship 9\ntest 5\nok\n" (Buffer.contents out);
  Db.close db

let pred_k k = Parser.expr (Printf.sprintf "x.k == %d" k)

let stress_mixed_workload () =
  (* Many transactions mixing creates, updates, deletes, versions and
     queries; invariants checked by the verifier and by bookkeeping. *)
  let db = Db.open_in_memory () in
  ignore (Db.define db "class s7 { k: int; alive: int; };");
  Db.create_cluster db "s7";
  Db.create_index db ~cls:"s7" ~field:"k";
  let rng = Ode_util.Prng.create 99 in
  let live = Hashtbl.create 256 in
  for round = 1 to 400 do
    Db.with_txn db (fun txn ->
        match Ode_util.Prng.int rng 5 with
        | 0 | 1 ->
            let o = Db.pnew txn "s7" [ ("k", int (Ode_util.Prng.int rng 50)) ] in
            Hashtbl.replace live o round
        | 2 when Hashtbl.length live > 0 ->
            let o = List.hd (Hashtbl.fold (fun k _ acc -> k :: acc) live []) in
            Db.set_field txn o "k" (int (Ode_util.Prng.int rng 50))
        | 3 when Hashtbl.length live > 0 ->
            let o = List.hd (Hashtbl.fold (fun k _ acc -> k :: acc) live []) in
            ignore (Db.newversion txn o)
        | 4 when Hashtbl.length live > 3 ->
            let o = List.hd (Hashtbl.fold (fun k _ acc -> k :: acc) live []) in
            Db.pdelete txn o;
            Hashtbl.remove live o
        | _ -> ())
  done;
  Ode.Verify.run_exn db;
  let n = Db.with_txn db (fun _ -> Query.count db ~var:"x" ~cls:"s7" ()) in
  Tutil.check_int "extent matches bookkeeping" (Hashtbl.length live) n;
  (* Every indexed query agrees with a filtered full state. *)
  Db.with_txn db (fun txn ->
      for k = 0 to 49 do
        let via_index =
          Query.count db ~var:"x" ~cls:"s7" ~suchthat:(pred_k k) ()
        and by_hand =
          Hashtbl.fold
            (fun o _ acc -> if Db.get_field txn o "k" = int k then acc + 1 else acc)
            live 0
        in
        if via_index <> by_hand then Alcotest.failf "k=%d: index %d vs model %d" k via_index by_hand
      done);
  Db.close db

let suite =
  [
    ( "integration",
      [
        Alcotest.test_case "full lifecycle with crash" `Slow full_lifecycle;
        Alcotest.test_case "shell session lifecycle" `Quick shell_session_lifecycle;
        Alcotest.test_case "stress mixed workload" `Slow stress_mixed_workload;
      ] );
  ]
