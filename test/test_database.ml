(* Persistence by instance, transactions, constraints and the object API. *)

module Db = Ode.Database
module Value = Ode_model.Value
module Oid = Ode_model.Oid
open Ode.Types

let str s = Value.Str s
let int n = Value.Int n

let pnew_and_read () =
  let db = Tutil.open_university () in
  let oid =
    Db.with_txn db (fun txn ->
        Db.pnew txn "student" [ ("name", str "ann"); ("age", int 20); ("gpa", Value.Float 3.5) ])
  in
  Db.with_txn db (fun txn ->
      Tutil.check_value "name" (str "ann") (Db.get_field txn oid "name");
      Tutil.check_value "default income" (int 0) (Db.get_field txn oid "income");
      Tutil.check_value "gpa" (Value.Float 3.5) (Db.get_field txn oid "gpa");
      let fields = Option.get (Db.get txn oid) in
      Tutil.check_int "all fields incl. inherited" 4 (List.length fields));
  Db.close db

let pnew_requires_cluster () =
  let db = Db.open_in_memory () in
  ignore (Db.define db "class lone { x: int; };");
  Db.with_txn db (fun txn ->
      match Db.pnew txn "lone" [] with
      | _ -> Alcotest.fail "expected No_cluster"
      | exception Ode.Store.No_cluster "lone" -> ());
  Db.close db

let pnew_type_checks () =
  let db = Tutil.open_university () in
  Db.with_txn db (fun txn ->
      (match Db.pnew txn "person" [ ("age", str "old") ] with
      | _ -> Alcotest.fail "wrong type accepted"
      | exception Ode.Store.Type_error _ -> ());
      (match Db.pnew txn "person" [ ("ghost", int 1) ] with
      | _ -> Alcotest.fail "unknown field accepted"
      | exception Ode.Store.Type_error _ -> ());
      (* int into float field is fine (promotion). *)
      ignore (Db.pnew txn "student" [ ("gpa", int 3) ]));
  Db.close db

let ref_fields_check_class () =
  let db = Db.open_in_memory () in
  ignore
    (Db.define db
       "class dept { title: string; }; class emp { name: string; d: ref dept; };");
  Db.create_cluster db "dept";
  Db.create_cluster db "emp";
  Db.with_txn db (fun txn ->
      let d = Db.pnew txn "dept" [ ("title", str "cs") ] in
      let e = Db.pnew txn "emp" [ ("name", str "bo"); ("d", Value.Ref d) ] in
      (* Wrong class ref rejected. *)
      (match Db.set_field txn e "d" (Value.Ref e) with
      | _ -> Alcotest.fail "emp is not a dept"
      | exception Ode.Store.Type_error _ -> ());
      (* Null allowed for refs. *)
      Db.set_field txn e "d" Value.Null;
      Tutil.check_value "nulled" Value.Null (Db.get_field txn e "d"));
  Db.close db

let update_and_delete () =
  let db = Tutil.open_university () in
  let oid = Db.with_txn db (fun txn -> Db.pnew txn "person" [ ("name", str "joe") ]) in
  Db.with_txn db (fun txn ->
      Db.update txn oid [ ("age", int 31); ("income", int 100) ];
      Tutil.check_value "updated" (int 31) (Db.get_field txn oid "age"));
  Db.with_txn db (fun txn -> Db.pdelete txn oid);
  Db.with_txn db (fun txn ->
      Tutil.check_bool "gone" true (Db.get txn oid = None);
      match Db.set_field txn oid "age" (int 1) with
      | _ -> Alcotest.fail "update of deleted object"
      | exception Ode.Store.Type_error _ -> ());
  Db.close db

let abort_discards () =
  let db = Tutil.open_university () in
  let txn = Db.begin_txn db in
  let oid = Db.pnew txn "person" [ ("name", str "ghost") ] in
  Db.abort txn;
  Db.with_txn db (fun txn2 ->
      Tutil.check_bool "never existed" false (Db.exists db ~txn:txn2 oid));
  Db.close db

let txn_sees_own_writes () =
  let db = Tutil.open_university () in
  Db.with_txn db (fun txn ->
      let oid = Db.pnew txn "person" [ ("name", str "me"); ("age", int 1) ] in
      Db.set_field txn oid "age" (int 2);
      Tutil.check_value "read-your-writes" (int 2) (Db.get_field txn oid "age");
      Db.pdelete txn oid;
      Tutil.check_bool "deleted in txn" false (Db.exists db ~txn oid));
  Db.close db

let concurrent_txns () =
  let db = Tutil.open_university () in
  (* Two explicit transactions open at once, each on its own snapshot. *)
  let t1 = Db.begin_txn db in
  let t2 = Db.begin_txn db in
  let oid = Db.pnew t1 "person" [ ("name", str "early"); ("age", int 30) ] in
  Db.commit t1;
  (* t2's snapshot predates t1's commit: the new object is invisible. *)
  Tutil.check_bool "snapshot isolation" false (Db.exists db ~txn:t2 oid);
  (* ... but a fresh transaction sees it. *)
  let t3 = Db.begin_txn db in
  Tutil.check_bool "later snapshot sees it" true (Db.exists db ~txn:t3 oid);
  Db.abort t3;
  (* t2 can still commit disjoint writes. *)
  let oid2 = Db.pnew t2 "person" [ ("name", str "late"); ("age", int 40) ] in
  Db.commit t2;
  Db.with_txn db (fun txn ->
      Tutil.check_bool "both commits landed" true
        (Db.exists db ~txn oid && Db.exists db ~txn oid2));
  Db.close db

let first_committer_wins () =
  let db = Tutil.open_university () in
  let oid =
    Db.with_txn db (fun txn -> Db.pnew txn "person" [ ("name", str "c"); ("age", int 1) ])
  in
  let ta = Db.begin_txn db in
  let tb = Db.begin_txn db in
  Db.set_field ta oid "age" (int 2);
  Db.set_field tb oid "age" (int 3);
  Db.commit ta;
  (match Db.commit tb with
  | () -> Alcotest.fail "conflicting commit succeeded"
  | exception Txn_conflict _ -> ());
  (* Exactly one winner: the first committer's write is the state. *)
  Db.with_txn db (fun txn ->
      Tutil.check_value "winner's write" (int 2) (Db.get_field txn oid "age"));
  (* The loser's transaction is gone; a replay succeeds. *)
  Db.with_txn db (fun txn -> Db.set_field txn oid "age" (int 3));
  Db.with_txn db (fun txn ->
      Tutil.check_value "replay landed" (int 3) (Db.get_field txn oid "age"));
  Db.close db

let constraint_violation_aborts () =
  let db = Tutil.open_university () in
  (* gpa constraint: 0.0 <= gpa <= 4.0 *)
  (match
     Db.with_txn db (fun txn ->
         ignore (Db.pnew txn "student" [ ("name", str "bad"); ("gpa", Value.Float 9.0) ]))
   with
  | _ -> Alcotest.fail "violation not raised"
  | exception Constraint_violation { cls = "student"; cname = "gpa_range"; _ } -> ());
  (* The whole transaction rolled back, including unrelated writes. *)
  let n =
    Db.with_txn db (fun _ -> Ode.Query.count db ~var:"x" ~cls:"student" ())
  in
  Tutil.check_int "nothing persisted" 0 n;
  (* Violation via update too. *)
  let oid =
    Db.with_txn db (fun txn -> Db.pnew txn "student" [ ("name", str "ok"); ("gpa", Value.Float 3.0) ])
  in
  (match Db.with_txn db (fun txn -> Db.set_field txn oid "gpa" (Value.Float (-1.0))) with
  | _ -> Alcotest.fail "update violation not raised"
  | exception Constraint_violation _ -> ());
  Db.with_txn db (fun txn ->
      Tutil.check_value "old value preserved" (Value.Float 3.0) (Db.get_field txn oid "gpa"));
  Db.close db

let constraint_inherited_from_parent () =
  let db = Db.open_in_memory () in
  ignore
    (Db.define db
       {|class account { balance: int; constraint solvent: balance >= 0; };
         class savings : account { rate: float; };|});
  Db.create_cluster db "account";
  Db.create_cluster db "savings";
  (match
     Db.with_txn db (fun txn -> ignore (Db.pnew txn "savings" [ ("balance", int (-5)) ]))
   with
  | _ -> Alcotest.fail "inherited constraint not checked"
  | exception Constraint_violation { cls = "savings"; cname = "solvent"; _ } -> ());
  Db.close db

let methods_dispatch_dynamically () =
  let db = Tutil.open_university () in
  Db.with_txn db (fun txn ->
      let p = Db.pnew txn "person" [ ("name", str "p") ] in
      let f = Db.pnew txn "faculty" [ ("name", str "f") ] in
      Tutil.check_value "base" (str "person p") (Db.call txn p "describe" []);
      Tutil.check_value "derived" (str "faculty f") (Db.call txn f "describe" []));
  Db.close db

let is_instance_tests () =
  let db = Tutil.open_university () in
  Db.with_txn db (fun txn ->
      let s = Db.pnew txn "student" [ ("name", str "s") ] in
      Tutil.check_bool "is person" true (Db.is_instance db s "person");
      Tutil.check_bool "is student" true (Db.is_instance db s "student");
      Tutil.check_bool "not faculty" false (Db.is_instance db s "faculty");
      (* The surface operator goes through eval. *)
      Tutil.check_value "is operator" (Value.Bool true)
        (Db.eval txn ~vars:[ ("s", Value.Ref s) ] (Ode_lang.Parser.expr "s is person")));
  Db.close db

let roots_persist () =
  let dir = Tutil.temp_dir "roots" in
  let db = Db.open_ dir in
  ignore (Db.define db "class cfg { v: int; };");
  Db.create_cluster db "cfg";
  let oid =
    Db.with_txn db (fun txn ->
        let oid = Db.pnew txn "cfg" [ ("v", int 7) ] in
        Db.set_root txn "config" (Value.Ref oid);
        Db.set_root txn "greeting" (str "hi");
        oid)
  in
  Db.close db;
  let db2 = Db.open_ dir in
  Db.with_txn db2 (fun txn ->
      Tutil.check_value "ref root" (Value.Ref oid) (Db.root_exn txn "config");
      Tutil.check_value "str root" (str "hi") (Db.root_exn txn "greeting");
      Tutil.check_bool "missing root" true (Db.root txn "nope" = None));
  Db.close db2

let ddl_rejected_inside_txn () =
  let db = Tutil.open_university () in
  let txn = Db.begin_txn db in
  (match Db.define db "class x { a: int; };" with
  | _ -> Alcotest.fail "DDL inside txn allowed"
  | exception Invalid_argument _ -> ());
  Db.abort txn;
  Db.close db

let bad_method_body_rolls_back_class () =
  let db = Db.open_in_memory () in
  (match Db.define db "class broken { q: int; method m(): string = q + 1; };" with
  | _ -> Alcotest.fail "expected type error"
  | exception Ode_model.Typecheck.Error _ -> ());
  (* The class must not linger half-defined. *)
  Tutil.check_bool "not registered" true
    (Ode_model.Catalog.find (Db.catalog db) "broken" = None);
  ignore (Db.define db "class broken { q: int; };");
  Db.close db

let suite =
  [
    ( "database",
      [
        Alcotest.test_case "pnew and read with defaults" `Quick pnew_and_read;
        Alcotest.test_case "pnew requires a cluster" `Quick pnew_requires_cluster;
        Alcotest.test_case "pnew type-checks values" `Quick pnew_type_checks;
        Alcotest.test_case "ref fields check target class" `Quick ref_fields_check_class;
        Alcotest.test_case "update and delete" `Quick update_and_delete;
        Alcotest.test_case "abort discards everything" `Quick abort_discards;
        Alcotest.test_case "read-your-writes" `Quick txn_sees_own_writes;
        Alcotest.test_case "concurrent transactions" `Quick concurrent_txns;
        Alcotest.test_case "first committer wins" `Quick first_committer_wins;
        Alcotest.test_case "constraint violation aborts txn" `Quick constraint_violation_aborts;
        Alcotest.test_case "constraints inherit" `Quick constraint_inherited_from_parent;
        Alcotest.test_case "dynamic method dispatch" `Quick methods_dispatch_dynamically;
        Alcotest.test_case "is-instance tests" `Quick is_instance_tests;
        Alcotest.test_case "named roots persist" `Quick roots_persist;
        Alcotest.test_case "DDL rejected inside txn" `Quick ddl_rejected_inside_txn;
        Alcotest.test_case "failed class definition rolls back" `Quick bad_method_body_rolls_back_class;
      ] );
  ]
