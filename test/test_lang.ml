(* Lexer, parser and the pretty-printer round-trip (the catalog persists
   schemas as source, so parse(pp(ast)) = ast is load-bearing). *)

module Ast = Ode_lang.Ast
module Lexer = Ode_lang.Lexer
module Parser = Ode_lang.Parser
module Pp = Ode_lang.Pp

let lex_kinds () =
  let toks = List.map fst (Lexer.tokenize {|class x 12 3.5 "s\"q" := ==> // comment
  /* multi
     line */ y|}) in
  let expected =
    Lexer.
      [
        KW "class";
        IDENT "x";
        INT 12;
        FLOAT 3.5;
        STRING "s\"q";
        PUNCT ":=";
        PUNCT "==>";
        IDENT "y";
        EOF;
      ]
  in
  Tutil.check_bool "token stream" true (toks = expected)

let lex_errors () =
  (match Lexer.tokenize "@" with
  | _ -> Alcotest.fail "expected lex error"
  | exception Lexer.Lex_error _ -> ());
  (match Lexer.tokenize "\"unterminated" with
  | _ -> Alcotest.fail "expected lex error"
  | exception Lexer.Lex_error _ -> ());
  match Lexer.tokenize "/* open" with
  | _ -> Alcotest.fail "expected lex error"
  | exception Lexer.Lex_error _ -> ()

let parse_expr_precedence () =
  let e = Parser.expr "1 + 2 * 3 == 7 && !false" in
  Tutil.check_bool "precedence tree" true
    (e
    = Ast.Binop
        ( And,
          Binop (Eq, Binop (Add, Int 1, Binop (Mul, Int 2, Int 3)), Int 7),
          Unop (Not, Bool false) ))

let parse_postfix_chain () =
  let e = Parser.expr "x.sup.city" in
  Tutil.check_bool "field chain" true (e = Ast.Field (Field (Var "x", "sup"), "city"));
  let e2 = Parser.expr "x.value(1, y.q)" in
  Tutil.check_bool "method call" true
    (e2 = Ast.Call (Some (Var "x"), "value", [ Int 1; Field (Var "y", "q") ]))

let parse_is_and_in () =
  Tutil.check_bool "is" true (Parser.expr "p is faculty" = Ast.Is (Var "p", "faculty"));
  Tutil.check_bool "in" true (Parser.expr "x in {1, 2}" = Ast.Binop (In, Var "x", SetLit [ Int 1; Int 2 ]))

let parse_class_full () =
  match Parser.program Tutil.university_schema with
  | [ TClass p; TClass s; TClass f; TClass t ] ->
      Tutil.check_string "person" "person" p.c_name;
      Tutil.check_int "person fields" 3 (List.length p.c_fields);
      Tutil.check_int "person methods" 1 (List.length p.c_methods);
      Tutil.check_string_list "student parents" [ "person" ] s.c_parents;
      Tutil.check_int "student constraints" 1 (List.length s.c_constraints);
      Tutil.check_string_list "ta parents" [ "student"; "faculty" ] t.c_parents;
      Tutil.check_string "faculty override" "describe" (List.hd f.c_methods).m_name
  | _ -> Alcotest.fail "expected four classes"

let parse_trigger_decl () =
  let src =
    {|class c { qty: int;
       trigger perpetual watch(n: int): within n + 1 : qty < n ==> { print "low"; } timeout { print "late"; };
     };|}
  in
  match Parser.program src with
  | [ TClass c ] ->
      let g = List.hd c.c_triggers in
      Tutil.check_bool "perpetual" true g.g_perpetual;
      Tutil.check_bool "within" true (g.g_within <> None);
      Tutil.check_int "timeout stmts" 1 (List.length g.g_timeout)
  | _ -> Alcotest.fail "expected one class"

let parse_forall_variants () =
  (match Parser.stmts "forall x in item { print x; };" with
  | [ SForall q ] -> Tutil.check_bool "plain" true ((not q.q_deep) && q.q_suchthat = None)
  | _ -> Alcotest.fail "plain forall");
  (match Parser.stmts "forall x in item* suchthat x.q > 2 by x.n desc { };" with
  | [ SForall q ] ->
      Tutil.check_bool "deep" true q.q_deep;
      Tutil.check_bool "suchthat" true (q.q_suchthat <> None);
      Tutil.check_bool "desc" true (match q.q_by with Some (_, Desc) -> true | _ -> false)
  | _ -> Alcotest.fail "decorated forall");
  match Parser.stmts "x := pnew c { a = 1 }; x.f := 2; pdelete x;" with
  | [ SNew (Some "x", "c", [ ("a", Int 1) ]); SSetField (Var "x", "f", Int 2); SDelete (Var "x") ]
    ->
      ()
  | _ -> Alcotest.fail "statement forms"

let parse_tops () =
  let tops =
    Parser.program
      "create cluster a; create index on a(f); begin; commit; abort; show classes; advance time 5;"
  in
  Tutil.check_bool "top forms" true
    (tops
    = [
        TCreateCluster "a";
        TCreateIndex ("a", "f");
        TBegin;
        TCommit;
        TAbort;
        TShowClasses;
        TAdvance (Int 5);
      ])

let parse_error_position () =
  match Parser.program "class { }" with
  | _ -> Alcotest.fail "expected parse error"
  | exception Parser.Parse_error (_, off) -> Tutil.check_bool "offset sane" true (off >= 6)

(* -- round-trip property ----------------------------------------------------- *)

let ident_gen = QCheck.Gen.(map (fun n -> Printf.sprintf "v%d" (abs n mod 20)) int)

let expr_gen =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         let leaf =
           oneof
             [
               return Ast.Null;
               map (fun i -> Ast.Int (abs i)) int;
               map (fun b -> Ast.Bool b) bool;
               map (fun f -> Ast.Float (Float.abs f)) (float_bound_exclusive 1e6);
               map (fun s -> Ast.Str s) (string_size ~gen:(char_range 'a' 'z') (int_bound 8));
               map (fun v -> Ast.Var v) ident_gen;
               return Ast.This;
             ]
         in
         if n = 0 then leaf
         else
           let sub = self (n / 2) in
           oneof
             [
               leaf;
               map2 (fun e f -> Ast.Field (e, f)) sub ident_gen;
               map3
                 (fun op a b -> Ast.Binop (op, a, b))
                 (oneofl Ast.[ Add; Sub; Mul; Div; Mod; Eq; Ne; Lt; Le; Gt; Ge; And; Or; In ])
                 sub sub;
               map (fun e -> Ast.Unop (Neg, e)) sub;
               map (fun e -> Ast.Unop (Not, e)) sub;
               map2 (fun e c -> Ast.Is (e, c)) sub ident_gen;
               map2 (fun f args -> Ast.Call (None, f, args)) ident_gen (list_size (int_bound 3) sub);
               map3 (fun r f args -> Ast.Call (Some r, f, args)) sub ident_gen (list_size (int_bound 2) sub);
               map (fun es -> Ast.SetLit es) (list_size (int_bound 3) sub);
               map (fun es -> Ast.ListLit es) (list_size (int_bound 3) sub);
             ])

let arb_expr = QCheck.make ~print:Pp.expr_to_string expr_gen

let prop_expr_roundtrip =
  QCheck.Test.make ~name:"parse (pp expr) = expr" ~count:500 arb_expr (fun e ->
      Parser.expr (Pp.expr_to_string e) = e)

let stmt_gen =
  let open QCheck.Gen in
  let e = expr_gen in
  oneof
    [
      map (fun x -> Ast.SExpr x) e;
      map (fun x -> Ast.SPrint [ x ]) e;
      map2 (fun v x -> Ast.SAssign (v, x)) ident_gen e;
      map3 (fun o f x -> Ast.SSetField (o, f, x)) e ident_gen e;
      map2 (fun c x -> Ast.SNew (Some "t", c, [ ("f", x) ])) ident_gen e;
      map (fun x -> Ast.SDelete x) e;
      map (fun x -> Ast.SNewVersion x) e;
      map3 (fun c a b -> Ast.SIf (c, [ Ast.SPrint [ a ] ], [ Ast.SPrint [ b ] ])) e e e;
      map2 (fun v x -> Ast.SInsert (x, "f", Ast.Var v)) ident_gen e;
      map (fun x -> Ast.SReturn x) e;
    ]

let prop_stmt_roundtrip =
  QCheck.Test.make ~name:"parse (pp stmt) = stmt" ~count:300
    (QCheck.make
       ~print:(fun s -> Pp.stmts_to_string [ s ])
       stmt_gen)
    (fun s -> Parser.stmts (Pp.stmts_to_string [ s ]) = [ s ])

let class_roundtrip () =
  match Parser.program Tutil.university_schema with
  | decls ->
      List.iter
        (function
          | Ast.TClass c ->
              let src = Pp.class_to_string c in
              (match Parser.program src with
              | [ Ast.TClass c' ] ->
                  if not (Ast.equal_class_decl c c') then
                    Alcotest.failf "class %s did not round-trip:\n%s" c.c_name src
              | _ -> Alcotest.failf "class %s re-parse shape" c.c_name)
          | _ -> ())
        decls

let trigger_class_roundtrip () =
  let src =
    {|class c { qty: int;
       trigger perpetual watch(n: int): within n + 1 : qty < n ==> { print "low"; } timeout { print "late"; };
       trigger once(m: int): qty == m ==> { qty := qty + 1; };
     };|}
  in
  match Parser.program src with
  | [ Ast.TClass c ] -> (
      match Parser.program (Pp.class_to_string c) with
      | [ Ast.TClass c' ] -> Tutil.check_bool "triggers round-trip" true (Ast.equal_class_decl c c')
      | _ -> Alcotest.fail "re-parse shape")
  | _ -> Alcotest.fail "parse shape"

let suite =
  [
    ( "lexer",
      [
        Alcotest.test_case "token kinds" `Quick lex_kinds;
        Alcotest.test_case "lex errors" `Quick lex_errors;
      ] );
    ( "parser",
      [
        Alcotest.test_case "expression precedence" `Quick parse_expr_precedence;
        Alcotest.test_case "postfix chains" `Quick parse_postfix_chain;
        Alcotest.test_case "is and in" `Quick parse_is_and_in;
        Alcotest.test_case "full class declarations" `Quick parse_class_full;
        Alcotest.test_case "trigger declarations" `Quick parse_trigger_decl;
        Alcotest.test_case "forall variants" `Quick parse_forall_variants;
        Alcotest.test_case "top-level forms" `Quick parse_tops;
        Alcotest.test_case "parse errors carry offsets" `Quick parse_error_position;
        Alcotest.test_case "schema classes round-trip" `Quick class_roundtrip;
        Alcotest.test_case "trigger classes round-trip" `Quick trigger_class_roundtrip;
      ] );
    Tutil.qsuite "lang.props" [ prop_expr_roundtrip; prop_stmt_roundtrip ];
  ]
