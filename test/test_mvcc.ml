(* MVCC unit tests (version chains, visibility, first-committer-wins, GC)
   plus database-level snapshot-isolation behaviour that exercises the
   chain-merge scan path. *)

module Db = Ode.Database
module Mvcc = Ode.Mvcc
module Value = Ode_model.Value
open Ode.Types

let str s = Value.Str s
let int n = Value.Int n

let vis =
  Alcotest.testable
    (fun ppf -> function
      | Mvcc.Latest -> Fmt.string ppf "Latest"
      | Mvcc.Older None -> Fmt.string ppf "Older None"
      | Mvcc.Older (Some s) -> Fmt.pf ppf "Older (Some %S)" s)
    ( = )

let check_vis = Alcotest.check vis

(* -- unit: visibility through a version chain ----------------------------- *)

let visibility () =
  let m = Mvcc.create () in
  (* No chains: everything is Latest, snapshot or not. *)
  check_vis "empty store" Mvcc.Latest (Mvcc.read m ~read_ts:0 "k");
  let tok = Mvcc.snapshot m ~read_ts:5 in
  Mvcc.commit m ~ts:10 ~except:0 ~pre:(fun _ -> Some "old") [ ("k", Some "new") ];
  check_vis "snapshot predates the commit" (Mvcc.Older (Some "old"))
    (Mvcc.read m ~read_ts:5 "k");
  check_vis "at the commit ts the head is visible" Mvcc.Latest (Mvcc.read m ~read_ts:10 "k");
  Mvcc.commit m ~ts:20 ~except:0 ~pre:(fun _ -> assert false) [ ("k", Some "newer") ];
  check_vis "middle version for a middle snapshot" (Mvcc.Older (Some "new"))
    (Mvcc.read m ~read_ts:15 "k");
  check_vis "oldest snapshot still sees the base" (Mvcc.Older (Some "old"))
    (Mvcc.read m ~read_ts:5 "k");
  Tutil.check_string_list "keys_matching finds the chain" [ "k" ]
    (Mvcc.keys_matching m (fun _ -> true));
  Mvcc.release m tok

let tombstones () =
  let m = Mvcc.create () in
  let tok = Mvcc.snapshot m ~read_ts:5 in
  (* Delete after the snapshot: the snapshot keeps the pre-image. *)
  Mvcc.commit m ~ts:10 ~except:0 ~pre:(fun _ -> Some "alive") [ ("dead", None) ];
  check_vis "pre-image survives the delete" (Mvcc.Older (Some "alive"))
    (Mvcc.read m ~read_ts:5 "dead");
  check_vis "deleter's own view is Latest" Mvcc.Latest (Mvcc.read m ~read_ts:10 "dead");
  (* Create after the snapshot: the base entry is a tombstone, so the
     snapshot sees "no such key". *)
  Mvcc.commit m ~ts:11 ~except:0 ~pre:(fun _ -> None) [ ("born", Some "x") ];
  check_vis "created-after-snapshot is invisible" (Mvcc.Older None)
    (Mvcc.read m ~read_ts:5 "born");
  Mvcc.release m tok

let conflict_check () =
  let m = Mvcc.create () in
  let a = Mvcc.snapshot m ~read_ts:5 in
  let b = Mvcc.snapshot m ~read_ts:5 in
  (* a commits "x" at ts 6 (recorded because b is live). *)
  Mvcc.commit m ~ts:6 ~except:a ~pre:(fun _ -> None) [ ("x", Some "a") ];
  Mvcc.release m a;
  Alcotest.(check (option string))
    "b's write-set now conflicts" (Some "x")
    (Mvcc.conflict m ~read_ts:5 [ "y"; "x" ]);
  Alcotest.(check (option string))
    "disjoint write-set does not" None
    (Mvcc.conflict m ~read_ts:5 [ "y"; "z" ]);
  Alcotest.(check (option string))
    "a later snapshot does not" None
    (Mvcc.conflict m ~read_ts:6 [ "x" ]);
  Mvcc.release m b

let gc_horizon () =
  let m = Mvcc.create () in
  let old_snap = Mvcc.snapshot m ~read_ts:5 in
  let mid_snap = Mvcc.snapshot m ~read_ts:15 in
  Mvcc.commit m ~ts:10 ~except:0 ~pre:(fun _ -> Some "base") [ ("k", Some "v10") ];
  Mvcc.commit m ~ts:20 ~except:0 ~pre:(fun _ -> assert false) [ ("k", Some "v20") ];
  Mvcc.gc m;
  (* Horizon 5: every version is still reachable by some snapshot. *)
  check_vis "old snapshot sees the base" (Mvcc.Older (Some "base"))
    (Mvcc.read m ~read_ts:5 "k");
  Mvcc.release m old_snap;
  Mvcc.gc m;
  (* Horizon 15: the base entry (superseded by ts 10 <= 15) is reclaimable. *)
  check_vis "mid snapshot sees v10" (Mvcc.Older (Some "v10")) (Mvcc.read m ~read_ts:15 "k");
  Tutil.check_bool "something was reclaimed" true (Mvcc.reclaimed_total m > 0);
  Mvcc.release m mid_snap;
  (* No snapshots left: the whole table empties. *)
  Tutil.check_int "no chains survive the last release" 0 (Mvcc.chain_count m);
  Tutil.check_int "no dead versions either" 0 (Mvcc.dead_versions m);
  check_vis "reads are Latest again" Mvcc.Latest (Mvcc.read m ~read_ts:5 "k")

(* -- database-level: snapshot scans through the chain merge --------------- *)

(* An extent scan from an old snapshot must still surface an object whose
   directory entry a later commit deleted: the candidate comes from the
   version chain, not the B+tree. *)
let snapshot_scan_sees_deleted () =
  let db = Tutil.open_university () in
  let a, b =
    Db.with_txn db (fun txn ->
        ( Db.pnew txn "person" [ ("name", str "a"); ("age", int 1) ],
          Db.pnew txn "person" [ ("name", str "b"); ("age", int 2) ] ))
  in
  let t1 = Db.begin_txn db in
  Tutil.check_int "snapshot sees both" 2 (Ode.Query.count db ~txn:t1 ~var:"x" ~cls:"person" ());
  Db.with_txn db (fun txn -> Db.pdelete txn b);
  Tutil.check_bool "deleted object still exists for the snapshot" true
    (Db.exists db ~txn:t1 b);
  Tutil.check_int "snapshot extent scan still finds it" 2
    (Ode.Query.count db ~txn:t1 ~var:"x" ~cls:"person" ());
  Tutil.check_value "and reads its pre-image fields" (str "b") (Db.get_field t1 b "name");
  Db.abort t1;
  Db.with_txn db (fun txn ->
      Tutil.check_bool "gone for later transactions" false (Db.exists db ~txn b);
      Tutil.check_bool "the other object remains" true (Db.exists db ~txn a));
  Db.close db

(* An indexed probe from an old snapshot: the index entry moved (the field
   was updated after the snapshot), so the old value's entry comes from the
   chain and the new value's entry is filtered by re-evaluation. *)
let snapshot_index_probe () =
  let db = Tutil.open_university () in
  Db.create_index db ~cls:"person" ~field:"age";
  let o =
    Db.with_txn db (fun txn -> Db.pnew txn "person" [ ("name", str "i"); ("age", int 30) ])
  in
  let t1 = Db.begin_txn db in
  Db.with_txn db (fun txn -> Db.set_field txn o "age" (int 40));
  let count age =
    Ode.Query.count db ~txn:t1 ~var:"x" ~cls:"person"
      ~suchthat:(Ode_lang.Parser.expr (Printf.sprintf "x.age = %d" age))
      ()
  in
  Tutil.check_int "old value still matches under the snapshot" 1 (count 30);
  Tutil.check_int "new value does not" 0 (count 40);
  Db.abort t1;
  Db.close db

let gc_after_release () =
  let db = Tutil.open_university () in
  let o =
    Db.with_txn db (fun txn -> Db.pnew txn "person" [ ("name", str "g"); ("age", int 1) ])
  in
  let t1 = Db.begin_txn db in
  Db.with_txn db (fun txn -> Db.set_field txn o "age" (int 2));
  Tutil.check_bool "chains recorded while the snapshot lives" true (Db.mvcc_chains db > 0);
  Db.abort t1;
  Tutil.check_int "last release empties the chains" 0 (Db.mvcc_chains db);
  Tutil.check_bool "reclaim counted" true (Db.mvcc_reclaimed db > 0);
  Tutil.check_int "no snapshots registered" 0 (Db.live_snapshots db);
  Db.close db

let suite =
  [
    ( "mvcc",
      [
        Alcotest.test_case "visibility through chains" `Quick visibility;
        Alcotest.test_case "tombstones" `Quick tombstones;
        Alcotest.test_case "first-committer-wins check" `Quick conflict_check;
        Alcotest.test_case "gc horizon" `Quick gc_horizon;
        Alcotest.test_case "snapshot scan sees deleted" `Quick snapshot_scan_sees_deleted;
        Alcotest.test_case "snapshot index probe" `Quick snapshot_index_probe;
        Alcotest.test_case "gc after release" `Quick gc_after_release;
      ] );
  ]
