(* Shared helpers for the test suite. *)

let counter = ref 0

(* A fresh directory under the system temp dir; cleaned lazily by the OS. *)
let temp_dir prefix =
  incr counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !counter)
  in
  if Sys.file_exists d then begin
    let rec rm path =
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
    in
    rm d
  end;
  Sys.mkdir d 0o755;
  d

let copy_file src dst =
  let contents = In_channel.with_open_bin src In_channel.input_all in
  Out_channel.with_open_bin dst (fun oc -> Out_channel.output_string oc contents)

(* Snapshot a database directory as-is (simulating a crash: whatever the OS
   has is what survives). *)
let copy_dir src dst =
  Sys.mkdir dst 0o755;
  Array.iter
    (fun f -> copy_file (Filename.concat src f) (Filename.concat dst f))
    (Sys.readdir src)

let qsuite name props = (name, List.map QCheck_alcotest.to_alcotest props)

(* Common alcotest checkers. *)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_string_list = Alcotest.(check (list string))

let value : Ode_model.Value.t Alcotest.testable =
  Alcotest.testable Ode_model.Value.pp Ode_model.Value.equal

let check_value = Alcotest.check value
let check_values = Alcotest.(check (list value))

(* A tiny schema used across many tests: the paper's university example. *)
let university_schema =
  {|
  class person {
    name: string;
    age: int;
    income: int;
    method describe(): string = "person " + name;
  };
  class student : person {
    gpa: float;
    constraint gpa_range: gpa >= 0.0 && gpa <= 4.0;
  };
  class faculty : person {
    salary: int;
    method describe(): string = "faculty " + name;
  };
  class ta : student, faculty { hours: int; };
  |}

let open_university () =
  let db = Ode.Database.open_in_memory () in
  ignore (Ode.Database.define db university_schema);
  Ode.Database.create_cluster db "person";
  Ode.Database.create_cluster db "student";
  Ode.Database.create_cluster db "faculty";
  Ode.Database.create_cluster db "ta";
  db
