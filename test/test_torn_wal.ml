(* Torn-write simulation: truncate the WAL at arbitrary byte positions and
   reopen. The recovered database must contain exactly a committed prefix of
   the transaction history (never a partial transaction) and pass the
   integrity checker. *)

module Db = Ode.Database
module Query = Ode.Query
module Value = Ode_model.Value

let build dir txns =
  (* Prevent auto-checkpointing so the whole history stays in the WAL. *)
  let db = Db.open_ ~wal_checkpoint_bytes:max_int dir in
  ignore (Db.define db "class w { seq: int; payload: string; };");
  Db.create_cluster db "w";
  Db.create_index db ~cls:"w" ~field:"seq";
  for i = 1 to txns do
    Db.with_txn db (fun txn ->
        ignore (Db.pnew txn "w" [ ("seq", Int i); ("payload", Str (String.make (i mod 50) 'p')) ]);
        if i mod 3 = 0 then Db.set_root txn "last" (Value.Int i))
  done;
  (* No close: the data files stay stale; only the WAL is durable. *)
  db

let wal_size dir = (Unix.stat (Filename.concat dir "wal.log")).Unix.st_size

let truncate_wal dir bytes =
  let fd = Unix.openfile (Filename.concat dir "wal.log") [ Unix.O_RDWR ] 0o644 in
  Unix.ftruncate fd bytes;
  Unix.close fd

let check_prefix dir =
  let db = Db.open_ dir in
  (match Ode.Verify.run db with
  | Ok () -> ()
  | Error ps -> Alcotest.failf "integrity after torn WAL: %s" (String.concat "; " ps));
  if Ode_model.Catalog.find (Db.catalog db) "w" = None then begin
    (* The cut fell before the schema's commit: a valid zero-length prefix. *)
    Db.close db;
    0
  end
  else begin
  (* The visible objects must be exactly seq = 1..k for some k. *)
  let seqs =
    Db.with_txn db (fun txn ->
        List.sort compare
          (List.map
             (fun o -> match Db.get_field txn o "seq" with Value.Int s -> s | _ -> -1)
             (Query.to_list db ~var:"x" ~cls:"w" ())))
  in
  let k = List.length seqs in
  if seqs <> List.init k (fun i -> i + 1) then
    Alcotest.failf "non-prefix recovery: [%s]" (String.concat ";" (List.map string_of_int seqs));
  (* The root, when present, was written by txn 3*floor and must be <= k. *)
  Db.with_txn db (fun txn ->
      match Db.root txn "last" with
      | Some (Value.Int r) -> if r > k then Alcotest.failf "root from lost txn: %d > %d" r k
      | Some _ -> Alcotest.fail "bad root type"
      | None -> if k >= 3 then Alcotest.fail "root missing despite committed writer");
  Db.close db;
  k
  end

let torn_wal_prefixes () =
  let dir = Tutil.temp_dir "torn" in
  let db = build dir 40 in
  let total = wal_size dir in
  ignore db;
  (* Try a spread of cut points, each on a fresh copy. *)
  let rng = Ode_util.Prng.create 123 in
  let cuts = 0 :: total :: List.init 12 (fun _ -> Ode_util.Prng.int rng total) in
  let last_k = ref (-1) in
  List.iter
    (fun cut ->
      let snap = Tutil.temp_dir "torn-cut" in
      Sys.rmdir snap;
      Tutil.copy_dir dir snap;
      truncate_wal snap cut;
      let k = check_prefix snap in
      if cut = total then last_k := k)
    (List.sort compare cuts);
  Tutil.check_int "untruncated WAL recovers everything" 40 !last_k

let garbage_tail () =
  (* Appending garbage instead of truncating must behave the same. *)
  let dir = Tutil.temp_dir "torn-g" in
  ignore (build dir 10);
  let snap = Tutil.temp_dir "torn-g2" in
  Sys.rmdir snap;
  Tutil.copy_dir dir snap;
  let oc =
    Out_channel.open_gen [ Open_append; Open_binary ] 0o644 (Filename.concat snap "wal.log")
  in
  Out_channel.output_string oc "\255\254\253GARBAGE-NOT-A-FRAME";
  Out_channel.close oc;
  let k = check_prefix snap in
  Tutil.check_int "all committed txns recovered" 10 k

let corrupt_frame_checksum () =
  (* A bit flip *inside* a committed WAL frame — not just a truncated tail.
     Replay must stop at the corrupt frame, keep the committed prefix, and
     account the discarded bytes in the recovery stats. *)
  let dir = Tutil.temp_dir "torn-flip" in
  ignore (build dir 30);
  let snap = Tutil.temp_dir "torn-flip2" in
  Sys.rmdir snap;
  Tutil.copy_dir dir snap;
  let total = wal_size snap in
  let off = 2 * total / 5 in
  let fd = Unix.openfile (Filename.concat snap "wal.log") [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let b = Bytes.create 1 in
  if Unix.read fd b 0 1 <> 1 then Alcotest.fail "short read";
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x10));
  if Unix.write fd b 0 1 <> 1 then Alcotest.fail "short write";
  Unix.close fd;
  let torn_before = Ode_util.Stats.(wal_torn_bytes (snapshot ())) in
  let k = check_prefix snap in
  let torn_after = Ode_util.Stats.(wal_torn_bytes (snapshot ())) in
  Tutil.check_bool "txns after the flipped frame are discarded" true (k < 30);
  Tutil.check_bool "torn-byte counter grew" true (torn_after > torn_before)

let suite =
  [
    ( "torn_wal",
      [
        Alcotest.test_case "random truncation points recover a prefix" `Slow torn_wal_prefixes;
        Alcotest.test_case "garbage tail ignored" `Quick garbage_tail;
        Alcotest.test_case "mid-file frame corruption recovers a prefix" `Quick
          corrupt_frame_checksum;
      ] );
  ]
