(* Randomized crash-recovery torture (fault-injection failpoints).

   Each iteration runs a random O++ workload against a file-backed database,
   arms one failpoint (page writes, fsyncs, WAL appends, journal writes,
   evictions...), catches the simulated crash, reopens from disk and checks
   the durability invariant:

     every acknowledged transaction is visible, no unacknowledged effect is,
     and [Verify.run] finds a consistent database.

   The only slack is the single in-doubt transaction executing when the
   crash hit: the recovered state must equal one of its *admissible* states
   — before the transaction, after its main effects, or after its trigger
   action (which runs as its own transaction under weak coupling, so it can
   be lost independently).

   The workload covers inserts (including multi-page chunked records),
   updates, deletes, named roots, a secondary index, and once-only triggers
   whose actions mutate the database. Some iterations re-arm a failpoint
   before reopening so recovery itself crashes and is retried (recovery must
   be idempotent). Iterations where the failpoint never fires still simulate
   power loss (close without checkpoint) and demand an exact state match.

   A third of the iterations run under [Group] durability: commits are
   prepared but their fsync deferred to a randomly interleaved shared
   [sync_commits] ack. A crash then may lose any suffix of the
   unacknowledged commits — WAL frames land in commit order, so the
   admissible states are the prefixes of the unacked chain (each commit
   individually atomic, trigger-action transactions as separate steps),
   never a subset with holes and never anything past the in-flight
   transaction. Acknowledged commits must always survive.

   A fifth of the seeds additionally run every workload step as 2–3
   *interleaved* explicit MVCC transactions: all opened on the same
   snapshot, their buffered ops applied round-robin, then committed in a
   shuffled order. Tag sets are disjoint by construction, so the only key
   two of them can collide on is the shared named root — when they do,
   first-committer-wins must abort the later committer, which then
   contributes nothing to the oracle. Committed transactions enter the
   model in commit order (that IS the WAL order), so recovery and the
   admissible-prefix logic keep working unchanged: each commit is one
   atomic step of the chain.

   Reproduce a failure with TORTURE_SEED=<seed> [TORTURE_ITERS=<n>]; each
   failure message carries the iteration number and seed. *)

module Db = Ode.Database
module Query = Ode.Query
module Verify = Ode.Verify
module Value = Ode_model.Value
module Failpoint = Ode_util.Failpoint
module Prng = Ode_util.Prng
module IM = Map.Make (Int)

let iters =
  match Sys.getenv_opt "TORTURE_ITERS" with Some s -> int_of_string s | None -> 200

let seed0 =
  match Sys.getenv_opt "TORTURE_SEED" with Some s -> int_of_string s | None -> 42

let schema =
  {|
  class t {
    tag: int;
    grp: int;
    payload: string;
    flagged: int;
    trigger mark(): flagged >= 0 ==> { this.flagged := this.flagged + 1; };
  };
|}

(* -- model ----------------------------------------------------------------- *)

(* The oracle: a pure map tag -> (payload, flagged) plus one named root,
   mirroring what the workload does to class [t]. *)

type op =
  | Insert of int * string
  | Update of int * string
  | Remove of int
  | SetRoot of int
  | Activate of int

type st = { objs : (string * int) IM.t; root : int option }

let empty_state = { objs = IM.empty; root = None }

let state_equal a b =
  a.root = b.root
  && IM.equal (fun (p1, f1) (p2, f2) -> String.equal p1 p2 && f1 = f2) a.objs b.objs

let pp_state fmt st =
  Format.fprintf fmt "root=%s objs={%s}"
    (match st.root with None -> "-" | Some v -> string_of_int v)
    (String.concat ", "
       (List.rev
          (IM.fold
             (fun k (p, f) acc ->
               Printf.sprintf "%d:#%08x/%dB+%d" k (Hashtbl.hash p) (String.length p) f
               :: acc)
             st.objs [])))

let apply_main st ops =
  List.fold_left
    (fun st op ->
      match op with
      | Insert (tag, p) -> { st with objs = IM.add tag (p, 0) st.objs }
      | Update (tag, p) ->
          { st with objs = IM.update tag (Option.map (fun (_, f) -> (p, f))) st.objs }
      | Remove tag -> { st with objs = IM.remove tag st.objs }
      | SetRoot v -> { st with root = Some v }
      | Activate _ -> st)
    st ops

(* Admissible post-crash states for a transaction that was in flight: before
   it, after its main effects, and after each trigger-action transaction it
   scheduled (actions run separately, in order, after the main commit). *)
let admissible st ops =
  let after_main = apply_main st ops in
  let fire st tag =
    { st with objs = IM.update tag (Option.map (fun (p, f) -> (p, f + 1))) st.objs }
  in
  let rec steps st = function
    | [] -> []
    | tag :: rest ->
        let st' = fire st tag in
        st' :: steps st' rest
  in
  let activations = List.filter_map (function Activate t -> Some t | _ -> None) ops in
  st :: after_main :: steps after_main activations

(* State after the transaction fully completes, trigger actions included. *)
let final_state st ops =
  match List.rev (admissible st ops) with last :: _ -> last | [] -> assert false

(* -- workload -------------------------------------------------------------- *)

let apply_op txn oids op =
  match op with
  | Insert (tag, p) ->
      let oid =
        Db.pnew txn "t"
          [
            ("tag", Value.Int tag);
            ("grp", Value.Int (tag mod 7));
            ("payload", Value.Str p);
            ("flagged", Value.Int 0);
          ]
      in
      Hashtbl.replace oids tag oid
  | Update (tag, p) -> Db.set_field txn (Hashtbl.find oids tag) "payload" (Value.Str p)
  | Remove tag -> Db.pdelete txn (Hashtbl.find oids tag)
  | SetRoot v -> Db.set_root txn "last" (Value.Int v)
  | Activate tag -> ignore (Db.activate txn (Hashtbl.find oids tag) "mark" [])

let execute db oids ops = Db.with_txn db (fun txn -> List.iter (apply_op txn oids) ops)

(* Random ops for one transaction. Each tag is targeted by at most one op
   and at most one trigger is activated, so the admissible-state chain stays
   unambiguous. [pressure] biases towards large chunked payloads to fill the
   buffer pool with dirty pages (the eviction failpoint needs that). [used]
   is shared across the transactions of one interleaved group so their tag
   sets stay disjoint — only the named root can then collide. *)
let gen_ops_shared rng st next_tag ~pressure ~used =
  let live () =
    List.rev
      (IM.fold (fun k _ acc -> if Hashtbl.mem used k then acc else k :: acc) st.objs [])
  in
  let pick_live () =
    match live () with
    | [] -> None
    | l ->
        let tag = List.nth l (Prng.int rng (List.length l)) in
        Hashtbl.replace used tag ();
        Some tag
  in
  let payload () =
    if pressure then Prng.string rng (2000 + Prng.int rng 6000)
    else if Prng.int rng 12 = 0 then Prng.string rng (2000 + Prng.int rng 10_000)
    else Prng.string rng (1 + Prng.int rng 100)
  in
  let insert () =
    let tag = !next_tag in
    incr next_tag;
    Hashtbl.replace used tag ();
    Insert (tag, payload ())
  in
  let activated = ref false in
  let n = 1 + Prng.int rng (if pressure then 3 else 5) in
  List.init n (fun _ ->
      match Prng.int rng 10 with
      | 0 | 1 | 2 | 3 -> insert ()
      | 4 | 5 -> (
          match pick_live () with Some tag -> Update (tag, payload ()) | None -> insert ())
      | 6 -> (
          match pick_live () with
          | Some tag -> Remove tag
          | None -> SetRoot (Prng.int rng 1000))
      | 7 -> SetRoot (Prng.int rng 1000)
      | _ ->
          if !activated then SetRoot (Prng.int rng 1000)
          else (
            match pick_live () with
            | Some tag ->
                activated := true;
                Activate tag
            | None -> SetRoot (Prng.int rng 1000)))

let gen_ops rng st next_tag ~pressure =
  gen_ops_shared rng st next_tag ~pressure ~used:(Hashtbl.create 8)

let shuffle rng l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Prng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

(* -- per-site tuning ------------------------------------------------------- *)

let all_sites =
  [|
    "disk.write";
    "disk.sync";
    "disk.journal.write";
    "disk.journal.clear";
    "wal.sync";
    "wal.fsync";
    "wal.reset";
    "wal.lsn";
    "pool.flush";
    "pool.evict";
    "heap.flush";
  |]

(* (after_hits upper bound, explicit-checkpoint probability, pressure).
   Bounds are scaled to how often each site is hit per iteration so the
   failpoint usually fires somewhere in the middle of the workload. *)
let profile = function
  | "wal.sync" | "wal.fsync" -> (30, 0.15, false)
  | "disk.write" -> (20, 0.2, false)
  | "pool.flush" -> (6, 0.3, false)
  | "disk.sync" -> (5, 0.3, false)
  | "disk.journal.write" | "disk.journal.clear" -> (4, 0.3, false)
  | "wal.reset" | "wal.lsn" -> (3, 0.4, false)
  | "heap.flush" -> (2, 0.4, false)
  | "pool.evict" -> (2, 0.0, true)
  | _ -> (5, 0.2, false)

(* Partial-effect faults only make sense at sites that write an image. *)
let gen_action rng = function
  | "disk.write" | "disk.journal.write" | "wal.sync" -> (
      match Prng.int rng 3 with
      | 0 -> Failpoint.Crash_site
      | 1 -> Failpoint.Short_effect (Prng.float rng 1.0)
      | _ -> Failpoint.Flip_bit (Prng.int rng (4096 * 8)))
  | _ -> Failpoint.Crash_site

(* -- one iteration --------------------------------------------------------- *)

let run_iteration ~iter ~seed ~site ~coverage =
  let rng = Prng.create seed in
  let dir = Tutil.temp_dir "torture" in
  let range, ckpt_prob, pressure = profile site in
  let wal_cp = if pressure then max_int else 2048 + Prng.int rng 16_384 in
  (* A third of the iterations defers durability: commits pend until a
     randomly placed shared sync acknowledges the batch (group commit). *)
  let group = seed mod 3 = 1 in
  (* A fifth of the seeds runs every step as a group of interleaved explicit
     transactions committed in shuffled order (the MVCC slice). *)
  let interleaved = seed mod 5 = 2 in
  let fail fmt =
    Format.kasprintf
      (fun s ->
        Alcotest.failf "iteration %d (seed %d, site %s%s%s): %s" iter seed site
          (if group then ", group durability" else "")
          (if interleaved then ", interleaved" else "")
          s)
      fmt
  in

  (* A fraction of iterations runs with the decoded-object cache enabled —
     small enough to force evictions — so the cache/recovery interplay is
     tortured too; the rest runs uncached, preserving the original regime. *)
  let ocache = if seed mod 4 = 0 then 0 else 48 in

  (* Durable baseline, no failpoints armed yet. *)
  let db =
    Db.open_ ~pool_pages:8 ~wal_checkpoint_bytes:wal_cp ~object_cache:ocache
      ~durability:(if group then Db.Group else Db.Full)
      dir
  in
  ignore (Db.define db schema);
  Db.create_cluster db "t";
  Db.create_index db ~cls:"t" ~field:"grp";
  Db.checkpoint db;

  Failpoint.arm site ~policy:(Failpoint.After_hits (Prng.int rng range))
    ~action:(gen_action rng site);

  let debug = Sys.getenv_opt "TORTURE_DEBUG" <> None in
  let dbg fmt =
    if debug then Format.eprintf (fmt ^^ "@.") else Format.ifprintf Format.err_formatter fmt
  in
  let pp_op fmt = function
    | Insert (t, p) -> Format.fprintf fmt "ins %d (%dB)" t (String.length p)
    | Update (t, p) -> Format.fprintf fmt "upd %d (%dB)" t (String.length p)
    | Remove t -> Format.fprintf fmt "del %d" t
    | SetRoot v -> Format.fprintf fmt "root %d" v
    | Activate t -> Format.fprintf fmt "act %d" t
  in
  let pp_ops fmt ops =
    Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp_op fmt ops
  in
  let model = ref empty_state in
  let oids : (int, Ode_model.Oid.t) Hashtbl.t = Hashtbl.create 64 in
  let next_tag = ref 0 in
  let pending = ref None in
  let in_doubt = ref None in
  (* Group commit bookkeeping: [acked] is the state as of the last shared
     sync; [unacked] the op lists of commits prepared since, in commit
     order. Under eager durability every commit acks itself. *)
  let acked = ref empty_state in
  let unacked = ref [] in
  let ntxns = if pressure then 25 else 40 in
  (try
     for t = 1 to ntxns do
       if ckpt_prob > 0.0 && Prng.float rng 1.0 < ckpt_prob then begin
         dbg "txn %d: explicit checkpoint" t;
         Db.checkpoint db;
         (* A checkpoint syncs the WAL: everything so far is acked. *)
         acked := !model;
         unacked := []
       end;
       (if interleaved then begin
          (* Interleaved explicit transactions on one snapshot. Buffered ops
             round-robin across the open transactions, commits in shuffled
             order; each commit is one atomic oracle step, in commit order.
             A first-committer-wins loser (only the named root can collide —
             tag sets are disjoint) aborts wholesale and contributes
             nothing. *)
          let nt = 2 + Prng.int rng 2 in
          let used = Hashtbl.create 8 in
          let txns =
            List.init nt (fun _ ->
                (Db.begin_txn db, gen_ops_shared rng !model next_tag ~pressure ~used))
          in
          List.iteri (fun i (_, ops) -> dbg "txn %d.%d: %a" t i pp_ops ops) txns;
          let queues = List.map (fun (txn, ops) -> (txn, ref ops)) txns in
          let progressed = ref true in
          while !progressed do
            progressed := false;
            List.iter
              (fun (txn, q) ->
                match !q with
                | [] -> ()
                | op :: rest ->
                    q := rest;
                    apply_op txn oids op;
                    progressed := true)
              queues
          done;
          List.iter
            (fun (txn, ops) ->
              pending := Some ops;
              (match Db.commit txn with
              | () ->
                  model := final_state !model ops;
                  if group then unacked := !unacked @ [ ops ] else acked := !model
              | exception Ode.Types.Txn_conflict key ->
                  dbg "txn %d: conflict loser on %s: %a" t key pp_ops ops);
              pending := None)
            (shuffle rng txns)
        end
        else begin
          let ops = gen_ops rng !model next_tag ~pressure in
          dbg "txn %d: %a" t pp_ops ops;
          pending := Some ops;
          execute db oids ops;
          model := final_state !model ops;
          pending := None;
          if group then unacked := !unacked @ [ ops ] else acked := !model
        end);
       if group && Prng.float rng 1.0 < 0.35 then begin
         dbg "txn %d: shared ack over %d pending commits" t (Db.pending_commits db);
         Db.sync_commits db;
         acked := !model;
         unacked := []
       end
     done
   with Failpoint.Crash s ->
     dbg "CRASH at %s (in-doubt: %s)" s
       (match !pending with
       | None -> "-"
       | Some ops -> Format.asprintf "%a" pp_ops ops);
     Hashtbl.replace coverage s (1 + Option.value (Hashtbl.find_opt coverage s) ~default:0);
     in_doubt := !pending);

  (* Process death: drop everything that wasn't flushed. Iterations where
     the failpoint never fired become plain power-loss tests. *)
  Failpoint.clear ();
  Db.crash db;

  (* Sometimes crash recovery itself, then recover from *that*. *)
  if (not pressure) && Prng.int rng 4 = 0 then
    Failpoint.arm site
      ~policy:(Failpoint.After_hits (Prng.int rng 3))
      ~action:Failpoint.Crash_site;
  let rec reopen tries =
    match Db.open_ ~pool_pages:8 ~object_cache:ocache dir with
    | db -> db
    | exception Failpoint.Crash s ->
        Hashtbl.replace coverage s (1 + Option.value (Hashtbl.find_opt coverage s) ~default:0);
        Failpoint.clear ();
        if tries >= 3 then fail "recovery kept crashing";
        reopen (tries + 1)
  in
  let s0 = Ode_util.Stats.snapshot () in
  let db2 = reopen 0 in
  (* The recovery re-arm may not have fired; nothing past this point is a
     simulated fault. *)
  Failpoint.clear ();
  (if debug then begin
     let s1 = Ode_util.Stats.snapshot () in
     dbg "recovery: replayed %d, orphans %d, journal restored %d, cksum fails %d, reformatted %d"
       Ode_util.Stats.(recovery_replayed s1 - recovery_replayed s0)
       Ode_util.Stats.(orphans_reclaimed s1 - orphans_reclaimed s0)
       Ode_util.Stats.(journal_pages_restored s1 - journal_pages_restored s0)
       Ode_util.Stats.(checksum_failures s1 - checksum_failures s0)
       Ode_util.Stats.(pages_reformatted s1 - pages_reformatted s0);
     Hashtbl.iter
       (fun tag oid ->
         dbg "tag %d: header %b (oid %a)" tag
           (Ode.Kv.mem db2 (Ode.Keys.header oid))
           Ode_model.Oid.pp oid)
       oids;
     Ode_index.Bptree.iter_range db2.Ode.Types.kv_dir (fun key rid_s ->
         let rid = Ode.Kv.decode_rid rid_s in
         let status =
           match Ode_storage.Heap.get db2.Ode.Types.kv_heap rid with
           | Some p -> Printf.sprintf "ok (%dB)" (String.length p)
           | None -> "DEAD"
           | exception Ode_util.Codec.Corrupt m -> "CORRUPT " ^ m
         in
         dbg "dir %C.. (%d) -> %a %s" key.[0] (String.length key) Ode_storage.Heap.pp_rid rid
           status;
         true)
   end);

  let actual =
    Db.with_txn db2 (fun txn ->
        let objs =
          List.fold_left
            (fun m oid ->
              let geti f =
                match Db.get_field txn oid f with Value.Int i -> i | _ -> fail "non-int %s" f
              in
              let p =
                match Db.get_field txn oid "payload" with
                | Value.Str s -> s
                | _ -> fail "non-string payload"
              in
              IM.add (geti "tag") (p, geti "flagged") m)
            IM.empty
            (Query.to_list db2 ~txn ~var:"x" ~cls:"t" ())
        in
        let root =
          match Db.root txn "last" with
          | Some (Value.Int v) -> Some v
          | Some _ -> fail "non-int root"
          | None -> None
        in
        { objs; root })
  in
  (* Admissible recovered states. Walk the unacked chain from the last
     acked snapshot: the crash may have cut durability at any commit
     boundary in it (WAL frames land in commit order, so what survives is a
     prefix — each commit individually atomic, trigger-action transactions
     as separate steps in between). The in-flight transaction, if any,
     contributes its own admissible chain at the very end. Under eager
     durability [unacked] is empty and this reduces to the original oracle:
     exactly [!model], give or take the in-doubt transaction. *)
  let candidates =
    let rec go st acc = function
      | [] -> (
          match !in_doubt with
          | None -> st :: acc
          | Some ops -> admissible st ops @ acc)
      | ops :: rest -> go (final_state st ops) (admissible st ops @ acc) rest
    in
    go !acked [] !unacked
  in
  if not (List.exists (state_equal actual) candidates) then
    fail "recovered state is not admissible@.  actual:   %a@.  expected one of:@.%s" pp_state
      actual
      (String.concat "\n"
         (List.map (Format.asprintf "    %a" pp_state) candidates));
  (match Verify.run db2 with
  | Ok () -> ()
  | Error ps -> fail "integrity check failed after recovery: %s" (String.concat "; " ps));
  Db.close db2

let torture () =
  Failpoint.clear ();
  let coverage = Hashtbl.create 16 in
  for i = 0 to iters - 1 do
    (* The site is derived from the seed (not the loop index) so a failure
       reproduces exactly with TORTURE_SEED=<seed> TORTURE_ITERS=1; since
       the seed increments per iteration the sites still round-robin. *)
    let seed = seed0 + i in
    let site = all_sites.(seed mod Array.length all_sites) in
    run_iteration ~iter:i ~seed ~site ~coverage
  done;
  Failpoint.clear ();
  (* Every registered site must have produced at least one simulated crash;
     a site that never fires is dead instrumentation. *)
  Array.iter
    (fun site ->
      if not (Hashtbl.mem coverage site) then
        Alcotest.failf "failpoint site %s never crashed in %d iterations" site iters)
    all_sites;
  (* And the torture only means something if the sites actually exist. *)
  Array.iter
    (fun site ->
      if not (List.mem site (Failpoint.sites ())) then
        Alcotest.failf "failpoint site %s is not registered" site)
    all_sites

(* -- the harness must catch real bugs -------------------------------------- *)

(* Deliberately broken storage: an fsync that lies (reports success, syncs
   nothing — here the WAL batch is dropped wholesale). Acknowledged
   transactions evaporate and the invariant check must notice. *)
let lying_wal_sync () =
  Failpoint.clear ();
  let dir = Tutil.temp_dir "torture-lying" in
  let db = Db.open_ ~wal_checkpoint_bytes:max_int dir in
  ignore (Db.define db schema);
  Db.create_cluster db "t";
  Db.checkpoint db;
  Failpoint.arm "wal.sync" ~policy:Failpoint.Always ~action:Failpoint.Skip_effect;
  for i = 0 to 4 do
    Db.with_txn db (fun txn ->
        ignore
          (Db.pnew txn "t"
             [
               ("tag", Value.Int i);
               ("grp", Value.Int 0);
               ("payload", Value.Str "durable, honest");
               ("flagged", Value.Int 0);
             ]))
  done;
  Failpoint.clear ();
  Db.crash db;
  let db2 = Db.open_ dir in
  let survivors = List.length (Query.to_list db2 ~var:"x" ~cls:"t" ()) in
  Db.close db2;
  (* All five transactions were acknowledged; with a lying sync none
     survive. This is the state mismatch the torture oracle reports. *)
  Tutil.check_int "acked txns lost to lying fsync (harness detects the bug)" 0 survivors

(* -- checksum detection of silent corruption ------------------------------- *)

let page_size = Ode_storage.Page.size

let flip_byte path off =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      let b = Bytes.create 1 in
      if Unix.read fd b 0 1 <> 1 then failwith "flip_byte: short read";
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
      if Unix.write fd b 0 1 <> 1 then failwith "flip_byte: short write")

(* A database big enough that page 1 of every file is interior (corruption
   of a *trailing* page is indistinguishable from a torn allocation and is
   deliberately truncated away, so we must hit the middle of the file). *)
let build_flip_base dir =
  let db = Db.open_ dir in
  ignore (Db.define db schema);
  Db.create_cluster db "t";
  Db.create_index db ~cls:"t" ~field:"grp";
  let rng = Prng.create 7 in
  for batch = 0 to 19 do
    Db.with_txn db (fun txn ->
        for i = 0 to 19 do
          let tag = (batch * 20) + i in
          ignore
            (Db.pnew txn "t"
               [
                 ("tag", Value.Int tag);
                 ("grp", Value.Int (tag mod 7));
                 ("payload", Value.Str (Prng.string rng (60 + Prng.int rng 200)));
                 ("flagged", Value.Int 0);
               ])
        done)
  done;
  Db.close db

let corruption_detected dir file =
  let src = Filename.concat dir "base" in
  let victim = Filename.concat dir ("flip-" ^ file) in
  Tutil.copy_dir src victim;
  let path = Filename.concat victim file in
  let size = (Unix.stat path).Unix.st_size in
  if size < 3 * page_size then
    Alcotest.failf "%s too small (%d bytes) for an interior-page flip" file size;
  flip_byte path (page_size + 1234);
  (* Either opening (heap scan, directory walk) or verification (index walk)
     must surface the corruption — silent acceptance is the failure. *)
  match Db.open_ victim with
  | exception Ode_util.Codec.Corrupt _ -> ()
  | db -> (
      match Verify.run db with
      | exception Ode_util.Codec.Corrupt _ -> Db.close db
      | Error _ -> Db.close db
      | Ok () ->
          Db.close db;
          Alcotest.failf "flipped byte in %s went undetected" file)

let checksum_catches_bit_rot () =
  Failpoint.clear ();
  let dir = Tutil.temp_dir "torture-flip" in
  let base = Filename.concat dir "base" in
  build_flip_base base;
  corruption_detected dir "objects.heap";
  corruption_detected dir "directory.bpt";
  corruption_detected dir "indexes.bpt"

(* -- replicated torture: faults on the replication stream ------------------ *)

(* Each iteration spawns a real primary server, bootstraps an in-process
   standby from its replication port (half the seeds through the snapshot
   path, half through a WAL resume), then pumps the stream by hand while a
   seeded adversary drops, duplicates, reorders, truncates and corrupts
   batches. Every fault must end in a clean resync from the exact local
   position; the oracle is that the standby's state is always the exact
   commit-prefix of the primary's (one row per commit, so the visible tags
   are computable from the replication LSN alone — divergence of any kind
   fails). A third of the iterations SIGKILL the primary mid-stream, drain
   the socket, promote the standby in place and check the prefix invariant
   against what the primary's directory recovers to; the rest converge and
   demand byte-identical logical dumps (physical replication preserves
   oids). Reproduce with TORTURE_SEED=<seed> TORTURE_REPL_ITERS=1. *)

module Srv = Ode_served.Server
module Cl = Ode_served.Client
module Repl = Ode_served.Replication
module RP = Ode_served.Protocol
module Dump = Ode.Dump

let repl_iters =
  match Sys.getenv_opt "TORTURE_REPL_ITERS" with Some s -> int_of_string s | None -> 100

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let rec reap pid =
  match Unix.waitpid [] pid with
  | _ -> ()
  | exception Unix.Unix_error (EINTR, _, _) -> reap pid
  | exception Unix.Unix_error _ -> ()

let kill_reap pid signal =
  (try Unix.kill pid signal with Unix.Unix_error _ -> ());
  reap pid

(* Sorted tags of the replicated class. *)
let rtags db =
  Db.with_txn db (fun txn ->
      List.sort compare
        (List.map
           (fun oid ->
             match Db.get_field txn oid "tag" with
             | Value.Int i -> i
             | _ -> Alcotest.fail "non-int tag")
           (Query.to_list db ~txn ~var:"x" ~cls:"r" ())))

let run_repl_iteration ~iter ~seed =
  let rng = Prng.create seed in
  let fail fmt =
    Format.kasprintf
      (fun s -> Alcotest.failf "repl iteration %d (seed %d): %s" iter seed s)
      fmt
  in
  let host = "127.0.0.1" in
  let pdir = Tutil.temp_dir "torture-repl-p" in
  let rdir = Filename.concat (Tutil.temp_dir "torture-repl-r") "db" in
  (* Even seeds pre-populate and checkpoint the primary so a fresh standby
     cannot resume from LSN 0: bootstrap must ship a snapshot. Odd seeds
     start the primary empty: bootstrap resumes and even the DDL arrives as
     replicated WAL batches. *)
  let pre =
    if seed mod 2 = 0 then begin
      let db = Db.open_ pdir in
      ignore (Db.define db "class r { tag: int; };");
      Db.create_cluster db "r";
      for i = 0 to 2 do
        Db.with_txn db (fun txn -> ignore (Db.pnew txn "r" [ ("tag", Value.Int i) ]))
      done;
      Db.close db;
      3
    end
    else 0
  in
  let ppid, pport, prepl, _ = Srv.spawn_full ~repl_port:0 ~durability:Db.Full ~db_dir:pdir () in
  let pdead = ref false in
  Fun.protect
    ~finally:(fun () -> if not !pdead then kill_reap ppid Sys.sigterm)
  @@ fun () ->
  let rdb, up0 = Repl.bootstrap ~db_dir:rdir ~host ~port:prepl () in
  let upref = ref up0 in
  let closed = ref false in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close (!upref).Repl.up_fd with Unix.Unix_error _ -> ());
      if not !closed then Db.crash rdb)
  @@ fun () ->
  let c = Cl.connect ~timeout:10. ~host ~port:pport () in
  (* [base]: the primary LSN with schema in place and [pre] rows; every
     commit past it inserts exactly one row, tags counting up from [pre]. *)
  let base =
    if pre = 0 then ignore (Cl.exec c "class r { tag: int; }; create cluster r;")
    else Cl.ping c;
    Cl.last_seen_lsn c
  in
  let expected_tags lsn = List.init (pre + max 0 (lsn - base)) (fun i -> i) in
  let check_prefix what =
    let got = rtags rdb in
    let want = expected_tags (Db.lsn rdb) in
    if got <> want then
      fail "%s: standby diverged at lsn %d: has tags [%s], wants [%s]" what (Db.lsn rdb)
        (String.concat ";" (List.map string_of_int got))
        (String.concat ";" (List.map string_of_int want))
  in
  let nrows = 6 + Prng.int rng 6 in
  for i = 0 to nrows - 1 do
    ignore (Cl.exec c (Printf.sprintf "pnew r { tag = %d };" (pre + i)))
  done;
  let target = Cl.last_seen_lsn c in
  (* Tear the stream down and re-handshake from the exact local position —
     the recovery every injected fault must funnel into. *)
  let resync () =
    (try Unix.close (!upref).Repl.up_fd with Unix.Unix_error _ -> ());
    let deadline = Unix.gettimeofday () +. 5. in
    let rec go () =
      match Repl.reconnect ~host ~port:prepl rdb with
      | Ok up -> upref := up
      | Error m ->
          if Unix.gettimeofday () > deadline then fail "reconnect kept failing: %s" m;
          Unix.sleepf 0.02;
          go ()
    in
    go ()
  in
  let apply_clean ~from_lsn ~to_lsn ~data =
    match Repl.apply_batch rdb ~from_lsn ~to_lsn ~data with
    | `Applied | `Duplicate -> ()
    | exception Repl.Resync _ -> resync ()
  in
  (* The adversary: what to do with one delivered batch. *)
  let deliver ~from_lsn ~to_lsn ~data =
    match Prng.int rng 8 with
    | 0 ->
        (* Truncated mid-frame: must refuse without applying anything. *)
        let cut = 1 + Prng.int rng (min 8 (String.length data - 1)) in
        let l = Db.lsn rdb in
        (match
           Repl.apply_batch rdb ~from_lsn ~to_lsn
             ~data:(String.sub data 0 (String.length data - cut))
         with
        | `Applied -> fail "torn batch applied"
        | `Duplicate -> ()
        | exception Repl.Resync _ ->
            if Db.lsn rdb <> l then fail "torn batch moved the lsn";
            resync ())
    | 1 ->
        (* One flipped bit: the frame checksum must catch it. *)
        let b = Bytes.of_string data in
        let i = Prng.int rng (Bytes.length b) in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Prng.int rng 8)));
        (match Repl.apply_batch rdb ~from_lsn ~to_lsn ~data:(Bytes.to_string b) with
        | `Applied -> fail "corrupt batch applied"
        | `Duplicate -> ()
        | exception Repl.Resync _ -> resync ())
    | 2 ->
        (* Dropped: the next delivery gaps (or the stream stalls); either
           way the pump resyncs. *)
        ()
    | 3 ->
        (* Duplicated: the redelivery must be skipped, not reapplied. *)
        apply_clean ~from_lsn ~to_lsn ~data;
        (match Repl.apply_batch rdb ~from_lsn ~to_lsn ~data with
        | `Duplicate -> ()
        | `Applied -> fail "second delivery of (%d,%d] applied twice" from_lsn to_lsn
        | exception Repl.Resync _ -> resync ())
    | _ -> apply_clean ~from_lsn ~to_lsn ~data
  in
  let buf = Bytes.create 65536 in
  let read_upstream ~timeout =
    let fd = (!upref).Repl.up_fd in
    match Unix.select [ fd ] [] [] timeout with
    | [], _, _ -> `Idle
    | _ -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> `Eof
        | n ->
            RP.feed (!upref).Repl.up_rd buf n;
            `Fed
        | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> `Eof
        | exception Unix.Unix_error (EINTR, _, _) -> `Idle)
  in
  let drain_frames () =
    let rec go acc =
      match RP.next_frame (!upref).Repl.up_rd with
      | Some body -> go (RP.decode_repl body :: acc)
      | None -> List.rev acc
    in
    go []
  in
  let handle_msgs msgs =
    (* Sometimes swap an adjacent pair: a reordered delivery gaps and must
       resync exactly like a drop. *)
    let msgs =
      match msgs with
      | a :: b :: rest when Prng.int rng 6 = 0 -> b :: a :: rest
      | _ -> msgs
    in
    List.iter
      (fun msg ->
        match (msg : RP.repl_msg) with
        | RP.R_batch (from_lsn, to_lsn, data) -> deliver ~from_lsn ~to_lsn ~data
        | _ -> fail "unexpected message on an established stream")
      msgs
  in
  let pump_to ~lsn:goal =
    let deadline = Unix.gettimeofday () +. 15. in
    while Db.lsn rdb < goal do
      if Unix.gettimeofday () > deadline then
        fail "standby never converged: lsn %d of %d" (Db.lsn rdb) goal;
      match drain_frames () with
      | [] -> (
          match read_upstream ~timeout:0.2 with
          | `Fed -> handle_msgs (drain_frames ())
          | `Eof -> fail "stream closed before convergence"
          | `Idle ->
              (* A dropped batch stalled the stream; recover by resync. *)
              if Db.lsn rdb < goal then resync ())
      | msgs -> handle_msgs msgs
    done
  in
  if seed mod 3 = 0 then begin
    (* SIGKILL the primary mid-stream, drain what made it out, promote. *)
    pump_to ~lsn:(base + Prng.int rng (max 1 (target - base)));
    Unix.kill ppid Sys.sigkill;
    pdead := true;
    reap ppid;
    (let draining = ref true in
     while !draining do
       match drain_frames () with
       | [] -> (
           match read_upstream ~timeout:0.2 with
           | `Eof -> draining := false
           | `Idle | `Fed -> ())
       | msgs -> (
           try
             List.iter
               (fun msg ->
                 match (msg : RP.repl_msg) with
                 | RP.R_batch (from_lsn, to_lsn, data) -> (
                     match Repl.apply_batch rdb ~from_lsn ~to_lsn ~data with
                     | `Applied | `Duplicate -> ())
                 | _ -> ())
               msgs
           with Repl.Resync _ -> draining := false)
     done);
    check_prefix "after primary SIGKILL";
    (* Promote in place: writable again, and still internally consistent. *)
    Db.set_read_only rdb false;
    Db.with_txn rdb (fun txn -> ignore (Db.pnew txn "r" [ ("tag", Value.Int 9999) ]));
    (match Verify.run rdb with
    | Ok () -> ()
    | Error ps -> fail "promoted standby fails verify: %s" (String.concat "; " ps));
    Db.close rdb;
    closed := true;
    (* The dead primary's directory must recover to a state the standby was
       a prefix of: every acknowledged commit (Full durability) intact. *)
    let pdb = Db.open_ pdir in
    let want = List.init (pre + nrows) (fun i -> i) in
    if rtags pdb <> want then fail "primary recovery lost acknowledged commits";
    (match Verify.run pdb with
    | Ok () -> ()
    | Error ps -> fail "recovered primary fails verify: %s" (String.concat "; " ps));
    Db.close pdb
  end
  else begin
    (* Converge through the faults, then compare against the primary's
       directory after a graceful shutdown: identical logical dumps. *)
    pump_to ~lsn:target;
    check_prefix "after convergence";
    Cl.close c;
    kill_reap ppid Sys.sigterm;
    pdead := true;
    let pdb = Db.open_ pdir in
    if rtags pdb <> rtags rdb then fail "primary and standby disagree";
    if Dump.export pdb <> Dump.export rdb then
      fail "logical dumps differ (oid preservation broken?)";
    (match Verify.run rdb with
    | Ok () -> ()
    | Error ps -> fail "standby fails verify: %s" (String.concat "; " ps));
    Db.close pdb;
    Db.set_read_only rdb false;
    Db.close rdb;
    closed := true
  end

let repl_torture () =
  Failpoint.clear ();
  for i = 0 to repl_iters - 1 do
    run_repl_iteration ~iter:i ~seed:(seed0 + i)
  done

(* -- replicated torture: kill the primary under semi-sync, fail over ------- *)

(* Forked primary (semi-sync) and forked standby; a client with the standby
   in its pool writes acknowledged rows, the primary is SIGKILLed between
   acks, the standby is promoted with SIGUSR1, and the client's retry loop
   must land the remaining writes on the promoted primary. Semi-sync makes
   the oracle exact: every acknowledged commit must be present after
   failover — none lost, none duplicated. *)

let failover_iters =
  match Sys.getenv_opt "TORTURE_FAILOVER_ITERS" with Some s -> int_of_string s | None -> 6

let run_failover_iteration ~iter ~seed =
  let rng = Prng.create seed in
  let fail fmt =
    Format.kasprintf
      (fun s -> Alcotest.failf "failover iteration %d (seed %d): %s" iter seed s)
      fmt
  in
  let pdir = Tutil.temp_dir "torture-fo-p" in
  let rdir = Tutil.temp_dir "torture-fo-r" in
  let ppid, pport, prepl, _ =
    Srv.spawn_full ~repl_port:0 ~sync_repl:true ~durability:Db.Group ~db_dir:pdir ()
  in
  let pdead = ref false in
  Fun.protect
    ~finally:(fun () -> if not !pdead then kill_reap ppid Sys.sigterm)
  @@ fun () ->
  let rpid, rport = Srv.spawn ~replica_of:("127.0.0.1", prepl) ~db_dir:rdir () in
  Fun.protect
    ~finally:(fun () -> kill_reap rpid Sys.sigterm)
  @@ fun () ->
  let c =
    Cl.connect ~timeout:10. ~retries:12
      ~replicas:[ ("127.0.0.1", rport) ]
      ~host:"127.0.0.1" ~port:pport ()
  in
  ignore (Cl.exec c "class r { tag: int; }; create cluster r;");
  let before = 2 + Prng.int rng 6 in
  for i = 0 to before - 1 do
    ignore (Cl.exec c (Printf.sprintf "pnew r { tag = %d };" i))
  done;
  (* Between acks: the client holds no in-flight request, so the acked set
     is exact — semi-sync guarantees the standby holds all of it. *)
  Unix.kill ppid Sys.sigkill;
  pdead := true;
  reap ppid;
  Unix.kill rpid Sys.sigusr1;
  let after = 1 + Prng.int rng 3 in
  for i = before to before + after - 1 do
    ignore (Cl.exec c (Printf.sprintf "pnew r { tag = %d };" i))
  done;
  let n = before + after in
  let rows = Cl.query c "forall x in r" in
  if List.length rows <> n then
    fail "acked %d commits, promoted standby has %d rows" n (List.length rows);
  for i = 0 to n - 1 do
    if not (List.exists (fun r -> contains r (Printf.sprintf "tag = %d" i)) rows) then
      fail "acked tag %d lost in failover" i
  done;
  if not (contains (Cl.dot c ".verify") "ok") then fail "promoted standby fails .verify";
  if not (contains (Cl.dot c ".replication") "role           primary") then
    fail "promoted standby does not report as primary";
  Cl.close c

let failover_torture () =
  Failpoint.clear ();
  for i = 0 to failover_iters - 1 do
    run_failover_iteration ~iter:i ~seed:(seed0 + 1000 + i)
  done

let suite =
  [
    ( "crash_torture",
      [
        Alcotest.test_case
          (Printf.sprintf "randomized torture (%d iterations, seed %d)" iters seed0)
          `Slow torture;
        Alcotest.test_case "lying wal sync is detected" `Quick lying_wal_sync;
        Alcotest.test_case "checksums catch bit rot" `Quick checksum_catches_bit_rot;
        Alcotest.test_case
          (Printf.sprintf "replicated stream-fault torture (%d iterations)" repl_iters)
          `Slow repl_torture;
        Alcotest.test_case
          (Printf.sprintf "semi-sync kill/promote/failover (%d iterations)" failover_iters)
          `Slow failover_torture;
      ] );
  ]
