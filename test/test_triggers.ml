(* Triggers (paper §6): once-only vs perpetual, weak coupling, deactivation,
   timed triggers, cascades, and abort semantics. *)

module Db = Ode.Database
module Value = Ode_model.Value
module Parser = Ode_lang.Parser

let int n = Value.Int n

(* A database whose trigger actions append to [log]. *)
let setup () =
  let db = Db.open_in_memory () in
  let log = Buffer.create 64 in
  Db.set_action_printer db (Buffer.add_string log);
  ignore
    (Db.define db
       {|class item {
           name: string;
           qty: int;
           trigger reorder(n: int): qty <= n ==> { print "reorder", name; };
           trigger perpetual audit(): qty < 0 ==> { print "negative", name; };
           trigger expedite(): within 5 : qty > 100 ==> { print "arrived", name; }
                    timeout { print "late", name; };
         };|});
  Db.create_cluster db "item";
  (db, log)

let lines log = String.split_on_char '\n' (String.trim (Buffer.contents log))
let no_output log = String.trim (Buffer.contents log) = ""

let fires_when_condition_becomes_true () =
  let db, log = setup () in
  let i =
    Db.with_txn db (fun txn ->
        let i = Db.pnew txn "item" [ ("name", Value.Str "bolt"); ("qty", int 100) ] in
        ignore (Db.activate txn i "reorder" [ int 10 ]);
        i)
  in
  Tutil.check_bool "armed but silent" true (no_output log);
  Db.with_txn db (fun txn -> Db.set_field txn i "qty" (int 5));
  Tutil.check_string_list "fired after commit" [ "reorder bolt" ] (lines log);
  (* Once-only: further matching updates stay silent. *)
  Db.with_txn db (fun txn -> Db.set_field txn i "qty" (int 1));
  Tutil.check_string_list "once-only" [ "reorder bolt" ] (lines log);
  Db.close db

let fires_if_already_true_at_activation () =
  let db, log = setup () in
  Db.with_txn db (fun txn ->
      let i = Db.pnew txn "item" [ ("name", Value.Str "low"); ("qty", int 1) ] in
      ignore (Db.activate txn i "reorder" [ int 10 ]));
  Tutil.check_string_list "fires at activating commit" [ "reorder low" ] (lines log);
  Db.close db

let perpetual_keeps_firing () =
  let db, log = setup () in
  let i =
    Db.with_txn db (fun txn ->
        let i = Db.pnew txn "item" [ ("name", Value.Str "odd"); ("qty", int 5) ] in
        ignore (Db.activate txn i "audit" []);
        i)
  in
  (* Perpetual triggers are edge-triggered ("fires when its condition
     becomes true"): each false→true transition fires, staying true does
     not. *)
  Db.with_txn db (fun txn -> Db.set_field txn i "qty" (int (-1)));
  Db.with_txn db (fun txn -> Db.set_field txn i "qty" (int (-2)));
  Tutil.check_string_list "no refire while still true" [ "negative odd" ] (lines log);
  Db.with_txn db (fun txn -> Db.set_field txn i "qty" (int 5));
  Db.with_txn db (fun txn -> Db.set_field txn i "qty" (int (-3)));
  Tutil.check_string_list "fires on each transition" [ "negative odd"; "negative odd" ] (lines log);
  Db.close db

let reactivation_rearms_once_only () =
  let db, log = setup () in
  let i =
    Db.with_txn db (fun txn ->
        let i = Db.pnew txn "item" [ ("name", Value.Str "re"); ("qty", int 100) ] in
        ignore (Db.activate txn i "reorder" [ int 10 ]);
        i)
  in
  Db.with_txn db (fun txn -> Db.set_field txn i "qty" (int 5));
  Db.with_txn db (fun txn -> ignore (Db.activate txn i "reorder" [ int 10 ]));
  (* Condition already true at reactivation: fires again immediately. *)
  Tutil.check_string_list "re-armed" [ "reorder re"; "reorder re" ] (lines log);
  Db.close db

let deactivate_silences () =
  let db, log = setup () in
  let i, tid =
    Db.with_txn db (fun txn ->
        let i = Db.pnew txn "item" [ ("name", Value.Str "x"); ("qty", int 100) ] in
        let tid = Db.activate txn i "reorder" [ int 10 ] in
        (i, tid))
  in
  Db.with_txn db (fun txn -> Db.deactivate txn tid);
  Db.with_txn db (fun txn -> Db.set_field txn i "qty" (int 0));
  Tutil.check_bool "silent" true (no_output log);
  Db.close db

let aborted_txn_fires_nothing () =
  let db, log = setup () in
  let i =
    Db.with_txn db (fun txn ->
        let i = Db.pnew txn "item" [ ("name", Value.Str "a"); ("qty", int 100) ] in
        ignore (Db.activate txn i "reorder" [ int 10 ]);
        i)
  in
  let txn = Db.begin_txn db in
  Db.set_field txn i "qty" (int 0);
  Db.abort txn;
  Tutil.check_bool "weak coupling respects abort" true (no_output log);
  (* And the trigger is still armed for a real commit. *)
  Db.with_txn db (fun txn -> Db.set_field txn i "qty" (int 0));
  Tutil.check_string_list "armed" [ "reorder a" ] (lines log);
  Db.close db

let deleted_object_drops_activations () =
  let db, log = setup () in
  let i =
    Db.with_txn db (fun txn ->
        let i = Db.pnew txn "item" [ ("name", Value.Str "d"); ("qty", int 100) ] in
        ignore (Db.activate txn i "reorder" [ int 10 ]);
        i)
  in
  Db.with_txn db (fun txn -> Db.pdelete txn i);
  Tutil.check_bool "no firing on delete" true (no_output log);
  Db.close db

let action_self_touch_does_not_loop () =
  (* A perpetual action that leaves its own condition true must not fire
     itself forever: edge-triggering stops it after one firing. *)
  let db = Db.open_in_memory () in
  let log = Buffer.create 64 in
  Db.set_action_printer db (Buffer.add_string log);
  ignore
    (Db.define db
       {|class cnt {
           v: int;
           trigger perpetual bump(): v > 0 ==> { this.v := this.v + 1; print "bumped", str(this.v); };
         };|});
  Db.create_cluster db "cnt";
  Db.with_txn db (fun txn ->
      let c = Db.pnew txn "cnt" [ ("v", int 0) ] in
      ignore (Db.activate txn c "bump" []);
      Db.set_field txn c "v" (int 1));
  Tutil.check_string_list "one firing only" [ "bumped 2" ] (lines log);
  Db.close db

let action_cascade_across_objects () =
  (* Cascades still work when each firing is a genuine transition: a chain
     of dominoes, each trigger toppling the next object. *)
  let db = Db.open_in_memory () in
  let log = Buffer.create 64 in
  Db.set_action_printer db (Buffer.add_string log);
  ignore
    (Db.define db
       {|class domino {
           n: int; fallen: bool; next: ref domino;
           trigger topple(): fallen ==>
             { print "domino", str(n);
               if (next != null) { next.fallen := true; }; };
         };|});
  Db.create_cluster db "domino";
  Db.with_txn db (fun txn ->
      let d3 = Db.pnew txn "domino" [ ("n", int 3) ] in
      let d2 = Db.pnew txn "domino" [ ("n", int 2); ("next", Value.Ref d3) ] in
      let d1 = Db.pnew txn "domino" [ ("n", int 1); ("next", Value.Ref d2) ] in
      ignore (Db.activate txn d1 "topple" []);
      ignore (Db.activate txn d2 "topple" []);
      ignore (Db.activate txn d3 "topple" []);
      Db.set_field txn d1 "fallen" (Value.Bool true));
  Tutil.check_string_list "chain reaction" [ "domino 1"; "domino 2"; "domino 3" ] (lines log);
  Db.close db

let timed_trigger_timeout () =
  let db, log = setup () in
  Db.with_txn db (fun txn ->
      let i = Db.pnew txn "item" [ ("name", Value.Str "t"); ("qty", int 1) ] in
      ignore (Db.activate txn i "expedite" []));
  Db.advance_time db 3;
  Tutil.check_bool "before deadline: silent" true (no_output log);
  Db.advance_time db 3;
  Tutil.check_string_list "timeout action" [ "late t" ] (lines log);
  (* Only once. *)
  Db.advance_time db 10;
  Tutil.check_string_list "timeout once" [ "late t" ] (lines log);
  Db.close db

let timed_trigger_satisfied_before_deadline () =
  let db, log = setup () in
  let i =
    Db.with_txn db (fun txn ->
        let i = Db.pnew txn "item" [ ("name", Value.Str "ok"); ("qty", int 1) ] in
        ignore (Db.activate txn i "expedite" []);
        i)
  in
  Db.with_txn db (fun txn -> Db.set_field txn i "qty" (int 500));
  Tutil.check_string_list "normal action" [ "arrived ok" ] (lines log);
  Db.advance_time db 10;
  Tutil.check_string_list "no timeout after firing" [ "arrived ok" ] (lines log);
  Db.close db

let activations_persist () =
  let dir = Tutil.temp_dir "trig" in
  let db = Db.open_ dir in
  ignore
    (Db.define db
       {|class it { qty: int; trigger low(n: int): qty < n ==> { print "low!"; }; };|});
  Db.create_cluster db "it";
  let i =
    Db.with_txn db (fun txn ->
        let i = Db.pnew txn "it" [ ("qty", int 100) ] in
        ignore (Db.activate txn i "low" [ int 10 ]);
        i)
  in
  Db.close db;
  let db2 = Db.open_ dir in
  let log = Buffer.create 16 in
  Db.set_action_printer db2 (Buffer.add_string log);
  Db.with_txn db2 (fun txn -> Db.set_field txn i "qty" (int 5));
  Tutil.check_string_list "fired after reopen" [ "low!" ] (lines log);
  Db.close db2

let trigger_params_used_in_condition () =
  let db, log = setup () in
  Db.with_txn db (fun txn ->
      let a = Db.pnew txn "item" [ ("name", Value.Str "a"); ("qty", int 7) ] in
      let b = Db.pnew txn "item" [ ("name", Value.Str "b"); ("qty", int 7) ] in
      ignore (Db.activate txn a "reorder" [ int 5 ]);
      ignore (Db.activate txn b "reorder" [ int 10 ]));
  (* qty=7: below b's threshold only. *)
  Tutil.check_string_list "parameterized" [ "reorder b" ] (lines log);
  Db.close db

let suite =
  [
    ( "triggers",
      [
        Alcotest.test_case "fires when condition becomes true" `Quick fires_when_condition_becomes_true;
        Alcotest.test_case "fires if already true at activation" `Quick fires_if_already_true_at_activation;
        Alcotest.test_case "perpetual keeps firing" `Quick perpetual_keeps_firing;
        Alcotest.test_case "reactivation re-arms once-only" `Quick reactivation_rearms_once_only;
        Alcotest.test_case "deactivate silences" `Quick deactivate_silences;
        Alcotest.test_case "aborted txn fires nothing" `Quick aborted_txn_fires_nothing;
        Alcotest.test_case "deleting object drops activations" `Quick deleted_object_drops_activations;
        Alcotest.test_case "self-touching action does not loop" `Quick action_self_touch_does_not_loop;
        Alcotest.test_case "cascades across objects" `Quick action_cascade_across_objects;
        Alcotest.test_case "timed trigger timeout" `Quick timed_trigger_timeout;
        Alcotest.test_case "timed trigger satisfied early" `Quick timed_trigger_satisfied_before_deadline;
        Alcotest.test_case "activations persist" `Quick activations_persist;
        Alcotest.test_case "parameterized conditions" `Quick trigger_params_used_in_condition;
      ] );
  ]
