(* Wire-protocol codec: fuzzed round trips through the frame reader, plus
   the rejection paths (truncation, oversized frames, garbage handshakes)
   the server leans on to survive hostile peers. *)

module P = Ode_served.Protocol
module Codec = Ode_util.Codec
module Prng = Ode_util.Prng

(* Random binary payload, including NULs and high bytes. *)
let rand_payload rng =
  String.init (Prng.int rng 2048) (fun _ -> Char.chr (Prng.int rng 256))

let rand_op rng : P.op =
  match Prng.int rng 5 with
  | 0 -> Ping
  | 1 -> Exec (rand_payload rng)
  | 2 -> Query (rand_payload rng)
  | 3 -> Dot (rand_payload rng)
  | _ -> Close

let rand_reply rng : P.reply =
  match Prng.int rng 5 with
  | 0 -> Pong
  | 1 -> Output (rand_payload rng)
  | 2 -> Rows (List.init (Prng.int rng 20) (fun _ -> rand_payload rng))
  | 3 -> Err_conflict (rand_payload rng)
  | _ -> Error (rand_payload rng)

let op_eq (a : P.op) (b : P.op) = a = b
let reply_eq (a : P.reply) (b : P.reply) = a = b

(* Feed [data] to a reader in random-sized slices, as a socket would. *)
let feed_in_chunks rng rd data =
  let n = String.length data in
  let pos = ref 0 in
  while !pos < n do
    let k = 1 + Prng.int rng (max 1 (n - !pos)) in
    let k = min k (n - !pos) in
    P.feed rd (Bytes.of_string (String.sub data !pos k)) k;
    pos := !pos + k
  done

let fuzz_requests () =
  let rng = Prng.create 401 in
  let rd = P.reader () in
  for round = 0 to 99 do
    (* A burst of frames arrives as one byte stream split arbitrarily. *)
    let reqs =
      List.init (1 + Prng.int rng 5) (fun i ->
          {
            P.rq_id = (round * 10) + i;
            rq_trace = Prng.int rng 1_000_000;
            rq_op = rand_op rng;
          })
    in
    let b = Buffer.create 4096 in
    List.iter (P.encode_request b) reqs;
    feed_in_chunks rng rd (Buffer.contents b);
    let decoded =
      List.map
        (fun _ ->
          match P.next_frame rd with
          | Some body -> P.decode_request body
          | None -> Alcotest.fail "frame should be complete")
        reqs
    in
    List.iter2
      (fun (a : P.request) (b : P.request) ->
        Tutil.check_int "id" a.rq_id b.rq_id;
        Tutil.check_int "trace" a.rq_trace b.rq_trace;
        Tutil.check_bool "op" true (op_eq a.rq_op b.rq_op))
      reqs decoded;
    Tutil.check_bool "drained" true (P.next_frame rd = None)
  done;
  Tutil.check_int "no leftover bytes" 0 (P.buffered rd)

let fuzz_responses () =
  let rng = Prng.create 402 in
  for i = 0 to 199 do
    let resp = { P.rs_id = i; rs_lsn = Prng.int rng 1_000_000; rs_reply = rand_reply rng } in
    let b = Buffer.create 4096 in
    P.encode_response b resp;
    let rd = P.reader () in
    feed_in_chunks rng rd (Buffer.contents b);
    match P.next_frame rd with
    | None -> Alcotest.fail "complete frame expected"
    | Some body ->
        let got = P.decode_response body in
        Tutil.check_int "id" resp.rs_id got.rs_id;
        Tutil.check_int "lsn" resp.rs_lsn got.rs_lsn;
        Tutil.check_bool "reply" true (reply_eq resp.rs_reply got.rs_reply)
  done

let truncated_frame () =
  let b = Buffer.create 64 in
  P.encode_request b { rq_id = 7; rq_trace = 0; rq_op = Exec "print 1;" };
  let whole = Buffer.contents b in
  (* Every proper prefix must yield "need more bytes", never a frame. *)
  for n = 0 to String.length whole - 1 do
    let rd = P.reader () in
    P.feed rd (Bytes.of_string (String.sub whole 0 n)) n;
    Tutil.check_bool "incomplete" true (P.next_frame rd = None)
  done;
  (* A truncated *body* (length prefix lies) is Corrupt at decode. *)
  let body =
    let rd = P.reader () in
    P.feed rd (Bytes.of_string whole) (String.length whole);
    match P.next_frame rd with Some body -> body | None -> assert false
  in
  let clipped = String.sub body 0 (String.length body - 1) in
  (match P.decode_request clipped with
  | _ -> Alcotest.fail "expected Corrupt on clipped body"
  | exception Codec.Corrupt _ -> ());
  (* ... and so are trailing bytes. *)
  match P.decode_request (body ^ "x") with
  | _ -> Alcotest.fail "expected Corrupt on trailing bytes"
  | exception Codec.Corrupt _ -> ()

let oversized_frame () =
  (* A hostile header announcing a huge body must be rejected from the 4
     header bytes alone — before any body arrives or is buffered. *)
  let b = Buffer.create 8 in
  Codec.put_u32 b (P.max_frame_len + 1);
  let hdr = Buffer.contents b in
  let rd = P.reader () in
  P.feed rd (Bytes.of_string hdr) (String.length hdr);
  (match P.next_frame rd with
  | _ -> Alcotest.fail "expected Corrupt on oversized header"
  | exception Codec.Corrupt _ -> ());
  (* The encoder refuses to build such a frame in the first place. *)
  match P.encode_request (Buffer.create 16) { rq_id = 1; rq_trace = 0; rq_op = Exec (String.make (P.max_frame_len + 1) 'x') } with
  | _ -> Alcotest.fail "expected Invalid_argument on oversized encode"
  | exception Invalid_argument _ -> ()

let garbage_handshake () =
  let rng = Prng.create 403 in
  Tutil.check_bool "good hello" true (P.parse_hello P.hello = Ok P.version);
  Tutil.check_bool "good reply" true (P.parse_hello_reply (P.hello_reply Accepted) = Ok P.version);
  (* The reply echoes the negotiated version for the client to encode with. *)
  Tutil.check_bool "negotiated reply" true
    (P.parse_hello_reply (P.hello_reply ~negotiated:P.min_version Accepted) = Ok P.min_version);
  (* Busy / version-mismatch replies render reasons. *)
  (match P.parse_hello_reply (P.hello_reply Busy) with
  | Error msg -> Tutil.check_bool "busy reason" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "busy must not parse as accepted");
  (match P.parse_hello_reply (P.hello_reply Bad_version) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad version must not parse as accepted");
  (* Random garbage of the right length: rejected unless it happens to start
     with the magic (the prng won't produce that). *)
  for _ = 0 to 99 do
    let g = String.init P.hello_len (fun _ -> Char.chr (Prng.int rng 256)) in
    if String.sub g 0 4 <> P.magic then
      Tutil.check_bool "garbage hello rejected" true (Result.is_error (P.parse_hello g))
  done;
  (* Wrong lengths are rejected outright. *)
  Tutil.check_bool "short hello" true (Result.is_error (P.parse_hello "OD"));
  Tutil.check_bool "long hello" true (Result.is_error (P.parse_hello (P.hello ^ "x")));
  Tutil.check_bool "short reply" true (Result.is_error (P.parse_hello_reply "ODEP"))

(* v2 framing carries no trace id: a v2-encoded request decodes per v2 with
   [rq_trace = 0], and the strict trailing-bytes check means decoding one
   version's frame with the other's layout is rejected, never silently
   misread. *)
let version_negotiation () =
  let rq = { P.rq_id = 42; rq_trace = 0xbeef; rq_op = Exec "print 1;" } in
  let b = Buffer.create 64 in
  P.encode_request ~version:P.min_version b rq;
  let rd = P.reader () in
  let frame = Buffer.contents b in
  P.feed rd (Bytes.of_string frame) (String.length frame);
  (match P.next_frame rd with
  | None -> Alcotest.fail "complete frame expected"
  | Some body -> (
      let got = P.decode_request ~version:P.min_version body in
      Tutil.check_int "v2 id" rq.rq_id got.rq_id;
      Tutil.check_int "v2 trace dropped" 0 got.rq_trace;
      Tutil.check_bool "v2 op" true (op_eq rq.rq_op got.rq_op);
      (* Decoding a v2 body as v3 misparses the layout: Corrupt, not junk. *)
      match P.decode_request body with
      | _ -> Alcotest.fail "v2 body must not decode as v3"
      | exception Codec.Corrupt _ -> ()));
  (* And a v3 frame must not pass a v2 decode. *)
  let b3 = Buffer.create 64 in
  P.encode_request b3 rq;
  let rd3 = P.reader () in
  let f3 = Buffer.contents b3 in
  P.feed rd3 (Bytes.of_string f3) (String.length f3);
  match P.next_frame rd3 with
  | None -> Alcotest.fail "complete frame expected"
  | Some body -> (
      let got = P.decode_request body in
      Tutil.check_int "v3 trace" rq.rq_trace got.rq_trace;
      match P.decode_request ~version:P.min_version body with
      | _ -> Alcotest.fail "v3 body must not decode as v2"
      | exception Codec.Corrupt _ -> ())

(* The conflict reply is v4 vocabulary: a v4 peer gets the distinct tag
   back verbatim; an older peer must receive an ordinary [Error] whose
   "conflict: " prefix still marks it as retryable. *)
let conflict_downgrade () =
  let decode_one frame =
    let rd = P.reader () in
    P.feed rd (Bytes.of_string frame) (String.length frame);
    match P.next_frame rd with
    | Some body -> (P.decode_response body).P.rs_reply
    | None -> Alcotest.fail "complete frame expected"
  in
  let resp = { P.rs_id = 9; rs_lsn = 17; rs_reply = Err_conflict "root last" } in
  let b4 = Buffer.create 64 in
  P.encode_response b4 resp;
  Tutil.check_bool "v4 keeps the distinct tag" true
    (decode_one (Buffer.contents b4) = Err_conflict "root last");
  let b3 = Buffer.create 64 in
  P.encode_response ~version:3 b3 resp;
  Tutil.check_bool "pre-v4 gets a prefixed plain error" true
    (decode_one (Buffer.contents b3) = Error "conflict: root last")

let reader_take () =
  let rd = P.reader () in
  P.feed rd (Bytes.of_string "abcdef") 6;
  Tutil.check_bool "short take" true (P.take rd 7 = None);
  Tutil.check_bool "take 4" true (P.take rd 4 = Some "abcd");
  Tutil.check_int "left" 2 (P.buffered rd);
  Tutil.check_bool "take rest" true (P.take rd 2 = Some "ef");
  Tutil.check_int "empty" 0 (P.buffered rd)

let suite =
  [
    ( "protocol",
      [
        Alcotest.test_case "fuzz request round-trips" `Quick fuzz_requests;
        Alcotest.test_case "fuzz response round-trips" `Quick fuzz_responses;
        Alcotest.test_case "truncated frames wait or reject" `Quick truncated_frame;
        Alcotest.test_case "oversized frames rejected early" `Quick oversized_frame;
        Alcotest.test_case "garbage handshakes rejected" `Quick garbage_handshake;
        Alcotest.test_case "version negotiation framing" `Quick version_negotiation;
        Alcotest.test_case "conflict reply downgrade" `Quick conflict_downgrade;
        Alcotest.test_case "reader take semantics" `Quick reader_take;
      ] );
  ]
