module Db = Ode.Database
module Query = Ode.Query
module Value = Ode_model.Value
module Parser = Ode_lang.Parser

let setup () =
  let db = Tutil.open_university () in
  Db.with_txn db (fun txn ->
      let mk cls name age income extra =
        ignore
          (Db.pnew txn cls
             ([ ("name", Value.Str name); ("age", Value.Int age); ("income", Value.Int income) ]
             @ extra))
      in
      mk "person" "a" 30 100 [];
      mk "person" "b" 40 300 [];
      mk "student" "c" 20 50 [ ("gpa", Value.Float 3.0) ];
      mk "faculty" "d" 50 900 [ ("salary", Value.Int 900) ]);
  db

let e = Parser.expr

let sums_and_averages () =
  let db = setup () in
  Db.with_txn db (fun _ ->
      Alcotest.(check (float 1e-9)) "sum shallow" 400.0
        (Query.sum db ~var:"p" ~cls:"person" ~expr:(e "p.income") ());
      Alcotest.(check (float 1e-9)) "sum deep" 1350.0
        (Query.sum db ~var:"p" ~cls:"person" ~deep:true ~expr:(e "p.income") ());
      Alcotest.(check (option (float 1e-9))) "avg with filter" (Some 600.0)
        (Query.average db ~var:"p" ~cls:"person" ~deep:true
           ~suchthat:(e "p.income >= 300") ~expr:(e "p.income") ());
      Alcotest.(check (option (float 1e-9))) "avg of empty" None
        (Query.average db ~var:"p" ~cls:"person" ~suchthat:(e "p.age > 99") ~expr:(e "p.income") ()));
  Db.close db

let min_max () =
  let db = setup () in
  Db.with_txn db (fun _ ->
      Tutil.check_bool "min" true
        (Query.minimum db ~var:"p" ~cls:"person" ~deep:true ~expr:(e "p.age") ()
        = Some (Value.Int 20));
      Tutil.check_bool "max over strings" true
        (Query.maximum db ~var:"p" ~cls:"person" ~deep:true ~expr:(e "p.name") ()
        = Some (Value.Str "d")));
  Db.close db

let expr_aggregates_use_methods () =
  let db = setup () in
  (* Aggregate over a computed expression, not just a field. *)
  Db.with_txn db (fun _ ->
      Alcotest.(check (float 1e-9)) "sum of expr" (2.0 *. 1350.0)
        (Query.sum db ~var:"p" ~cls:"person" ~deep:true ~expr:(e "p.income * 2") ()));
  Db.close db

let grouping () =
  let db = setup () in
  Db.with_txn db (fun _ ->
      let groups =
        Query.group_count db ~var:"p" ~cls:"person" ~deep:true
          ~expr:(e "p.age >= 40") ()
      in
      Tutil.check_bool "two groups" true
        (groups = [ (Value.Bool false, 2); (Value.Bool true, 2) ]));
  Db.close db

let null_skipped () =
  let db = Db.open_in_memory () in
  ignore (Db.define db "class n8 { link: ref n8; v: int; };");
  Db.create_cluster db "n8";
  Db.with_txn db (fun txn ->
      let a = Db.pnew txn "n8" [ ("v", Value.Int 10) ] in
      (* b.link.v is null for objects with no link *)
      ignore (Db.pnew txn "n8" [ ("v", Value.Int 20); ("link", Value.Ref a) ]));
  Db.with_txn db (fun _ ->
      (* only the linked object contributes link.v = 10 *)
      Alcotest.(check (float 1e-9)) "nulls skipped" 10.0
        (Query.sum db ~var:"x" ~cls:"n8" ~expr:(e "x.link.v") ()));
  Db.close db

let suite =
  [
    ( "aggregates",
      [
        Alcotest.test_case "sum and average" `Quick sums_and_averages;
        Alcotest.test_case "min and max" `Quick min_max;
        Alcotest.test_case "computed expressions" `Quick expr_aggregates_use_methods;
        Alcotest.test_case "group_count" `Quick grouping;
        Alcotest.test_case "null results skipped" `Quick null_skipped;
      ] );
  ]
