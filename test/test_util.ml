(* LRU, PRNG and order-preserving key encodings. *)

module Lru = Ode_util.Lru
module Prng = Ode_util.Prng
module Key = Ode_util.Key

(* -- lru -------------------------------------------------------------- *)

let lru_basic () =
  let t = Lru.create 4 in
  Lru.add t 1 "a";
  Lru.add t 2 "b";
  Lru.add t 3 "c";
  Tutil.check_int "len" 3 (Lru.length t);
  Alcotest.(check (option string)) "find" (Some "a") (Lru.find t 1);
  Alcotest.(check (option string)) "miss" None (Lru.find t 9);
  Lru.remove t 2;
  Tutil.check_bool "removed" false (Lru.mem t 2)

let lru_eviction_order () =
  let t = Lru.create 3 in
  Lru.add t 1 "a";
  Lru.add t 2 "b";
  Lru.add t 3 "c";
  (* Touch 1 so 2 becomes the LRU. *)
  ignore (Lru.find t 1);
  (match Lru.evict t (fun _ _ -> true) with
  | Some (k, _) -> Tutil.check_int "evicts LRU" 2 k
  | None -> Alcotest.fail "nothing evicted");
  (* Predicate can skip entries. *)
  match Lru.evict t (fun k _ -> k <> 3) with
  | Some (k, _) -> Tutil.check_int "skips pinned" 1 k
  | None -> Alcotest.fail "nothing evicted"

let lru_replace_refreshes () =
  let t = Lru.create 2 in
  Lru.add t 1 "a";
  Lru.add t 2 "b";
  Lru.add t 1 "a2";
  (match Lru.evict t (fun _ _ -> true) with
  | Some (k, _) -> Tutil.check_int "2 is LRU after 1 re-add" 2 k
  | None -> Alcotest.fail "nothing evicted");
  Alcotest.(check (option string)) "value replaced" (Some "a2") (Lru.peek t 1)

let lru_iter_order () =
  let t = Lru.create 8 in
  List.iter (fun k -> Lru.add t k (string_of_int k)) [ 5; 6; 7 ];
  ignore (Lru.find t 5);
  let order = ref [] in
  Lru.iter t (fun k _ -> order := k :: !order);
  Alcotest.(check (list int)) "LRU to MRU" [ 6; 7; 5 ] (List.rev !order)

(* -- prng ------------------------------------------------------------- *)

let prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Tutil.check_bool "same stream" true (Prng.next a = Prng.next b)
  done

let prng_int_range () =
  let r = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int r 17 in
    Tutil.check_bool "in range" true (v >= 0 && v < 17)
  done

let prng_shuffle_permutes () =
  let r = Prng.create 3 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 Fun.id) sorted;
  Tutil.check_bool "actually shuffled" true (arr <> Array.init 50 Fun.id)

let prng_float_range () =
  let r = Prng.create 11 in
  for _ = 1 to 1000 do
    let v = Prng.float r 2.5 in
    Tutil.check_bool "in range" true (v >= 0.0 && v < 2.5)
  done

(* -- keys ------------------------------------------------------------- *)

let prop_int_order =
  QCheck.Test.make ~name:"int keys preserve order" ~count:1000
    QCheck.(pair int int)
    (fun (a, b) -> compare (Key.of_int a) (Key.of_int b) = compare a b)

let prop_float_order =
  let finite = QCheck.float in
  QCheck.Test.make ~name:"float keys preserve order" ~count:1000
    QCheck.(pair finite finite)
    (fun (a, b) ->
      QCheck.assume (Float.is_finite a && Float.is_finite b);
      compare (Key.of_float a) (Key.of_float b) = compare a b)

let prop_string_order =
  QCheck.Test.make ~name:"string keys preserve order" ~count:1000
    QCheck.(pair string string)
    (fun (a, b) -> compare (Key.of_string a) (Key.of_string b) = compare a b)

let prop_composite_boundary =
  (* A component never bleeds into its neighbour: ("ab","c") vs ("a","bc"). *)
  QCheck.Test.make ~name:"composite keys compare per component" ~count:1000
    QCheck.(pair (pair string string) (pair string string))
    (fun ((a1, a2), (b1, b2)) ->
      let ka = Key.concat [ Key.of_string a1; Key.of_string a2 ] in
      let kb = Key.concat [ Key.of_string b1; Key.of_string b2 ] in
      compare ka kb = compare (a1, a2) (b1, b2))

let prop_succ_prefix =
  QCheck.Test.make ~name:"succ_prefix bounds all extensions" ~count:1000
    QCheck.(pair string (string_of_size (QCheck.Gen.return 3)))
    (fun (p, ext) ->
      match Key.succ_prefix p with
      | None -> String.for_all (fun c -> c = '\255') p
      | Some s -> compare (p ^ ext) s < 0 && compare p s < 0)

let neg_float_order () =
  Tutil.check_bool "-1.0 < 1.0" true (compare (Key.of_float (-1.0)) (Key.of_float 1.0) < 0);
  Tutil.check_bool "-2.0 < -1.0" true (compare (Key.of_float (-2.0)) (Key.of_float (-1.0)) < 0);
  Tutil.check_bool "0.0 < 1e300" true (compare (Key.of_float 0.0) (Key.of_float 1e300) < 0)

let suite =
  [
    ( "lru",
      [
        Alcotest.test_case "basic ops" `Quick lru_basic;
        Alcotest.test_case "eviction order" `Quick lru_eviction_order;
        Alcotest.test_case "replace refreshes recency" `Quick lru_replace_refreshes;
        Alcotest.test_case "iter order" `Quick lru_iter_order;
      ] );
    ( "prng",
      [
        Alcotest.test_case "deterministic" `Quick prng_deterministic;
        Alcotest.test_case "int range" `Quick prng_int_range;
        Alcotest.test_case "shuffle permutes" `Quick prng_shuffle_permutes;
        Alcotest.test_case "float range" `Quick prng_float_range;
      ] );
    ("keys", [ Alcotest.test_case "negative floats order" `Quick neg_float_order ]);
    Tutil.qsuite "keys.props"
      [ prop_int_order; prop_float_order; prop_string_order; prop_composite_boundary; prop_succ_prefix ];
  ]
