module Codec = Ode_util.Codec

let roundtrip_unit () =
  let b = Buffer.create 64 in
  Codec.put_u8 b 0xab;
  Codec.put_u16 b 0xbeef;
  Codec.put_u32 b 0xdeadbeef;
  Codec.put_int b (-42);
  Codec.put_int b max_int;
  Codec.put_float b 3.25;
  Codec.put_bool b true;
  Codec.put_bool b false;
  Codec.put_string b "hello\000world";
  Codec.put_raw b "tail";
  let c = Codec.cursor (Buffer.contents b) in
  Tutil.check_int "u8" 0xab (Codec.get_u8 c);
  Tutil.check_int "u16" 0xbeef (Codec.get_u16 c);
  Tutil.check_int "u32" 0xdeadbeef (Codec.get_u32 c);
  Tutil.check_int "int neg" (-42) (Codec.get_int c);
  Tutil.check_int "int max" max_int (Codec.get_int c);
  Alcotest.(check (float 0.0)) "float" 3.25 (Codec.get_float c);
  Tutil.check_bool "bool t" true (Codec.get_bool c);
  Tutil.check_bool "bool f" false (Codec.get_bool c);
  Tutil.check_string "string" "hello\000world" (Codec.get_string c);
  Tutil.check_string "raw" "tail" (Codec.get_raw c 4);
  Tutil.check_bool "at end" true (Codec.at_end c)

let truncated () =
  let c = Codec.cursor "ab" in
  match
    ignore (Codec.get_u16 c);
    Codec.get_u16 c
  with
  | _ -> Alcotest.fail "expected Corrupt on truncated input"
  | exception Codec.Corrupt _ -> ()

let bad_bool () =
  let c = Codec.cursor "\007" in
  (match Codec.get_bool c with
  | _ -> Alcotest.fail "expected Corrupt"
  | exception Codec.Corrupt _ -> ())

let string_prefix_independent () =
  (* Two strings encoded back to back decode independently. *)
  let b = Buffer.create 16 in
  Codec.put_string b "";
  Codec.put_string b "x";
  let c = Codec.cursor (Buffer.contents b) in
  Tutil.check_string "empty" "" (Codec.get_string c);
  Tutil.check_string "x" "x" (Codec.get_string c)

let fnv_distinct () =
  Tutil.check_bool "hash differs" true (Codec.fnv64 "abc" <> Codec.fnv64 "abd");
  Tutil.check_bool "hash stable" true (Codec.fnv64 "abc" = Codec.fnv64 "abc")

let prop_int_roundtrip =
  QCheck.Test.make ~name:"int roundtrip" ~count:500 QCheck.int (fun n ->
      let b = Buffer.create 8 in
      Codec.put_int b n;
      Codec.get_int (Codec.cursor (Buffer.contents b)) = n)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"string roundtrip" ~count:500 QCheck.string (fun s ->
      let b = Buffer.create 8 in
      Codec.put_string b s;
      Codec.get_string (Codec.cursor (Buffer.contents b)) = s)

let prop_float_roundtrip =
  QCheck.Test.make ~name:"float roundtrip" ~count:500 QCheck.float (fun f ->
      let b = Buffer.create 8 in
      Codec.put_float b f;
      let f' = Codec.get_float (Codec.cursor (Buffer.contents b)) in
      Int64.bits_of_float f = Int64.bits_of_float f')

let suite =
  [
    ( "codec",
      [
        Alcotest.test_case "roundtrip all types" `Quick roundtrip_unit;
        Alcotest.test_case "truncated input raises" `Quick truncated;
        Alcotest.test_case "bad bool raises" `Quick bad_bool;
        Alcotest.test_case "strings are framed" `Quick string_prefix_independent;
        Alcotest.test_case "fnv64 behaves" `Quick fnv_distinct;
      ] );
    Tutil.qsuite "codec.props" [ prop_int_roundtrip; prop_string_roundtrip; prop_float_roundtrip ];
  ]
