let () =
  Alcotest.run "ode"
    (List.concat
       [
         Test_codec.suite;
         Test_util.suite;
         Test_page.suite;
         Test_storage.suite;
         Test_bptree.suite;
         Test_value.suite;
         Test_lang.suite;
         Test_catalog.suite;
         Test_eval.suite;
         Test_database.suite;
         Test_mvcc.suite;
         Test_query.suite;
         Test_version.suite;
         Test_triggers.suite;
         Test_recovery.suite;
         Test_shell.suite;
         Test_odeset.suite;
         Test_tools.suite;
         Test_interp.suite;
         Test_integration.suite;
         Test_model_db.suite;
         Test_defaults.suite;
         Test_hash_index.suite;
         Test_planner.suite;
         Test_stats.suite;
         Test_plans.suite;
         Test_obj_cache.suite;
         Test_torn_wal.suite;
         Test_aggregates.suite;
         Test_crash_torture.suite;
         Test_protocol.suite;
         Test_server.suite;
         Test_replication.suite;
         (* Domain-spawning suites must come after every forking suite:
            on OCaml 5.x, once a process has ever created a domain,
            Unix.fork refuses for the rest of its life. *)
         Test_obs.suite;
         Test_multicore.suite;
       ])
