module Ast = Ode_lang.Ast
module Parser = Ode_lang.Parser
module Catalog = Ode_model.Catalog
module Schema = Ode_model.Schema
module Otype = Ode_model.Otype

let decl src =
  match Parser.program src with
  | [ Ast.TClass c ] -> c
  | _ -> Alcotest.fail "expected one class"

let mk_university () =
  let t = Catalog.create () in
  List.iter
    (function Ast.TClass c -> ignore (Catalog.define t c) | _ -> ())
    (Parser.program Tutil.university_schema);
  t

let field_layout () =
  let t = mk_university () in
  let ta = Catalog.find_exn t "ta" in
  let names = Schema.field_names (Catalog.all_fields t ta) in
  (* Diamond: person's fields appear exactly once, base-first. *)
  Tutil.check_string_list "layout" [ "name"; "age"; "income"; "gpa"; "salary"; "hours" ] names

let lineage_order () =
  let t = mk_university () in
  let ta = Catalog.find_exn t "ta" in
  let names = List.map (fun (c : Schema.cls) -> c.Schema.name) (Catalog.lineage t ta) in
  Tutil.check_string_list "lineage" [ "person"; "student"; "faculty"; "ta" ] names

let subclass_queries () =
  let t = mk_university () in
  Tutil.check_bool "reflexive" true (Catalog.is_subclass t ~sub:"person" ~super:"person");
  Tutil.check_bool "direct" true (Catalog.is_subclass t ~sub:"student" ~super:"person");
  Tutil.check_bool "transitive" true (Catalog.is_subclass t ~sub:"ta" ~super:"person");
  Tutil.check_bool "not super" false (Catalog.is_subclass t ~sub:"person" ~super:"student");
  Tutil.check_bool "siblings" false (Catalog.is_subclass t ~sub:"student" ~super:"faculty");
  Tutil.check_string_list "subclasses of person" [ "person"; "student"; "faculty"; "ta" ]
    (Catalog.subclasses t "person");
  Tutil.check_string_list "subclasses of faculty" [ "faculty"; "ta" ] (Catalog.subclasses t "faculty")

let method_dispatch () =
  let t = mk_university () in
  let ta = Catalog.find_exn t "ta" in
  let person = Catalog.find_exn t "person" in
  (* ta inherits describe from faculty (more derived than person's). *)
  let m = Option.get (Catalog.find_method t ta "describe") in
  Tutil.check_bool "override wins" true
    (Ode_lang.Pp.expr_to_string m.mbody |> fun s -> String.length s > 0 && String.sub s 1 9 = "\"faculty ");
  let m0 = Option.get (Catalog.find_method t person "describe") in
  Tutil.check_bool "base version differs" true (m0.mbody <> m.mbody)

let constraints_inherited () =
  let t = mk_university () in
  let ta = Catalog.find_exn t "ta" in
  Tutil.check_int "inherits student constraint" 1 (List.length (Catalog.all_constraints t ta))

let duplicate_class_rejected () =
  let t = mk_university () in
  match Catalog.define t (decl "class person { x: int; };") with
  | _ -> Alcotest.fail "expected Schema_error"
  | exception Catalog.Schema_error _ -> ()

let unknown_parent_rejected () =
  let t = Catalog.create () in
  match Catalog.define t (decl "class a : ghost { x: int; };") with
  | _ -> Alcotest.fail "expected Schema_error"
  | exception Catalog.Schema_error _ -> ()

let field_clash_rejected () =
  let t = Catalog.create () in
  ignore (Catalog.define t (decl "class a { x: int; };"));
  ignore (Catalog.define t (decl "class b { x: int; };"));
  (match Catalog.define t (decl "class c : a, b { y: int; };") with
  | _ -> Alcotest.fail "expected ambiguity error"
  | exception Catalog.Schema_error _ -> ());
  (* Failed definition must not linger. *)
  Tutil.check_bool "rolled back" true (Catalog.find t "c" = None);
  match Catalog.define t (decl "class d : a { x: int; };") with
  | _ -> Alcotest.fail "own field clashing with inherited"
  | exception Catalog.Schema_error _ -> ()

let unknown_ref_rejected () =
  let t = Catalog.create () in
  match Catalog.define t (decl "class a { r: ref ghost; };") with
  | _ -> Alcotest.fail "expected Schema_error"
  | exception Catalog.Schema_error _ -> ()

let self_reference_allowed () =
  let t = Catalog.create () in
  let c = Catalog.define t (decl "class node { next: ref node; v: int; };") in
  Tutil.check_string "self ref ok" "node" c.name

let cluster_lifecycle () =
  let t = mk_university () in
  let person = Catalog.find_exn t "person" in
  Tutil.check_bool "initially absent" false (Catalog.has_cluster t person);
  Catalog.create_cluster t "person";
  Tutil.check_bool "created" true (Catalog.has_cluster t person);
  match Catalog.create_cluster t "person" with
  | _ -> Alcotest.fail "duplicate cluster"
  | exception Catalog.Schema_error _ -> ()

let index_metadata () =
  let t = mk_university () in
  Catalog.add_index t ~cls:"person" ~field:"age";
  Catalog.add_index t ~cls:"student" ~field:"gpa";
  Tutil.check_string_list "on person" [ "age" ] (Catalog.indexes_on t "person");
  (* student sees its own index and the inherited person(age) one. *)
  Tutil.check_string_list "on student" [ "age"; "gpa" ] (List.sort compare (Catalog.indexes_on t "student"));
  (match Catalog.add_index t ~cls:"person" ~field:"age" with
  | _ -> Alcotest.fail "duplicate index"
  | exception Catalog.Schema_error _ -> ());
  (match Catalog.add_index t ~cls:"person" ~field:"ghost" with
  | _ -> Alcotest.fail "unknown field"
  | exception Catalog.Schema_error _ -> ());
  let t2 = Catalog.create () in
  ignore (Catalog.define t2 (decl "class a { s: set<int>; };"));
  match Catalog.add_index t2 ~cls:"a" ~field:"s" with
  | _ -> Alcotest.fail "set fields are not indexable"
  | exception Catalog.Schema_error _ -> ()

let encode_decode_roundtrip () =
  let t = mk_university () in
  Catalog.create_cluster t "person";
  Catalog.add_index t ~cls:"person" ~field:"age";
  (Catalog.find_exn t "person").next_num <- 42;
  let t' = Catalog.decode (Catalog.encode t) in
  let person = Catalog.find_exn t' "person" in
  Tutil.check_bool "cluster flag" true (Catalog.has_cluster t' person);
  Tutil.check_int "oid counter" 42 person.next_num;
  Tutil.check_int "class id stable" (Catalog.find_exn t "person").id person.id;
  Tutil.check_bool "indexes" true (Catalog.indexes t' = [ ("person", "age") ]);
  Tutil.check_string_list "subclasses preserved" (Catalog.subclasses t "person")
    (Catalog.subclasses t' "person");
  (* Constraints and methods survive the source round-trip. *)
  let ta = Catalog.find_exn t' "ta" in
  Tutil.check_int "constraints" 1 (List.length (Catalog.all_constraints t' ta));
  Tutil.check_bool "methods" true (Catalog.find_method t' ta "describe" <> None)

let otype_defaults () =
  Tutil.check_value "int" (Ode_model.Value.Int 0) (Otype.default_value Otype.TInt);
  Tutil.check_value "ref" Ode_model.Value.Null (Otype.default_value (Otype.TRef "x"));
  Tutil.check_value "set" (Ode_model.Value.VSet []) (Otype.default_value (Otype.TSet Otype.TInt))

let suite =
  [
    ( "catalog",
      [
        Alcotest.test_case "field layout with diamond" `Quick field_layout;
        Alcotest.test_case "lineage order" `Quick lineage_order;
        Alcotest.test_case "subclass queries" `Quick subclass_queries;
        Alcotest.test_case "method dispatch picks most derived" `Quick method_dispatch;
        Alcotest.test_case "constraints are inherited" `Quick constraints_inherited;
        Alcotest.test_case "duplicate class rejected" `Quick duplicate_class_rejected;
        Alcotest.test_case "unknown parent rejected" `Quick unknown_parent_rejected;
        Alcotest.test_case "field clashes rejected" `Quick field_clash_rejected;
        Alcotest.test_case "unknown ref type rejected" `Quick unknown_ref_rejected;
        Alcotest.test_case "self reference allowed" `Quick self_reference_allowed;
        Alcotest.test_case "cluster lifecycle" `Quick cluster_lifecycle;
        Alcotest.test_case "index metadata" `Quick index_metadata;
        Alcotest.test_case "encode/decode round-trip" `Quick encode_decode_roundtrip;
        Alcotest.test_case "otype defaults" `Quick otype_defaults;
      ] );
  ]
