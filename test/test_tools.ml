(* The integrity verifier, logical dump/load, the index-order by-clause
   optimization, and the root builtins. *)

module Db = Ode.Database
module Query = Ode.Query
module Value = Ode_model.Value
module Parser = Ode_lang.Parser

let int n = Value.Int n
let str s = Value.Str s

(* A database exercising every state kind. *)
let build_rich () =
  let db = Db.open_in_memory () in
  ignore
    (Db.define db
       {|
       class tag { label: string; };
       class note {
         title: string;
         weight: int;
         tags: set<ref tag>;
         link: ref note;
         trigger hot(n: int): weight > n ==> { print "hot"; };
       };
       |});
  Db.create_cluster db "tag";
  Db.create_cluster db "note";
  Db.create_index db ~cls:"note" ~field:"weight";
  Db.with_txn db (fun txn ->
      let t1 = Db.pnew txn "tag" [ ("label", str "work") ] in
      let t2 = Db.pnew txn "tag" [ ("label", str "home") ] in
      let n1 =
        Db.pnew txn "note"
          [ ("title", str "first"); ("weight", int 5); ("tags", Value.set_of_list [ Ref t1 ]) ]
      in
      let n2 =
        Db.pnew txn "note"
          [
            ("title", str "second");
            ("weight", int 9);
            ("tags", Value.set_of_list [ Ref t1; Ref t2 ]);
            ("link", Ref n1);
          ]
      in
      (* a version history *)
      ignore (Db.newversion txn n1);
      Db.set_field txn n1 "weight" (int 7);
      (* cyclic reference *)
      Db.set_field txn n1 "link" (Value.Ref n2);
      Db.set_root txn "inbox" (Value.Ref n2);
      ignore (Db.activate txn n1 "hot" [ int 100 ]));
  db

(* -- verifier ---------------------------------------------------------- *)

let verify_clean () =
  let db = build_rich () in
  (match Ode.Verify.run db with
  | Ok () -> ()
  | Error ps -> Alcotest.failf "unexpected problems: %s" (String.concat "; " ps));
  Db.close db

let verify_after_crash () =
  let dir = Tutil.temp_dir "vfy" in
  let db = Db.open_ dir in
  ignore (Db.define db "class k { v: int; };");
  Db.create_cluster db "k";
  Db.create_index db ~cls:"k" ~field:"v";
  for i = 1 to 200 do
    Db.with_txn db (fun txn -> ignore (Db.pnew txn "k" [ ("v", int i) ]))
  done;
  let snap = Tutil.temp_dir "vfy2" in
  Sys.rmdir snap;
  Tutil.copy_dir dir snap;
  let db2 = Db.open_ snap in
  Ode.Verify.run_exn db2;
  Db.close db2;
  Db.close db

let verify_detects_corruption () =
  let db = Db.open_in_memory () in
  ignore (Db.define db "class z { v: int; };");
  Db.create_cluster db "z";
  let o = Db.with_txn db (fun txn -> Db.pnew txn "z" [ ("v", int 1) ]) in
  (* Surgically delete the version record behind the header's back. *)
  Ode.Kv.delete db (Ode.Keys.version o 0);
  (match Ode.Verify.run db with
  | Ok () -> Alcotest.fail "corruption not detected"
  | Error ps ->
      Tutil.check_bool "mentions the missing version" true
        (List.exists (fun p -> String.length p > 0 && String.sub p 0 6 = "object") ps));
  Db.close db

(* -- dump/load ----------------------------------------------------------- *)

let dump_roundtrip () =
  let db = build_rich () in
  let script = Ode.Dump.export db in
  let db2 = Db.open_in_memory () in
  Ode.Dump.import db2 script;
  Ode.Verify.run_exn db2;
  (* Same extents. *)
  let count d cls = Db.with_txn d (fun _ -> Query.count d ~var:"x" ~cls ()) in
  Tutil.check_int "tags" (count db "tag") (count db2 "tag");
  Tutil.check_int "notes" (count db "note") (count db2 "note");
  (* Same data (modulo oids): compare title->weight maps. *)
  let snapshot d =
    Db.with_txn d (fun txn ->
        List.sort compare
          (List.map
             (fun oid ->
               ( Value.to_string (Db.get_field txn oid "title"),
                 Value.to_string (Db.get_field txn oid "weight"),
                 (match Db.get_field txn oid "tags" with Value.VSet l -> List.length l | _ -> -1),
                 List.length (Db.versions txn oid) ))
             (Query.to_list d ~var:"x" ~cls:"note" ())))
  in
  Tutil.check_bool "note contents match" true (snapshot db = snapshot db2);
  (* Root present and pointing at the right object. *)
  Db.with_txn db2 (fun txn ->
      match Db.root_exn txn "inbox" with
      | Value.Ref o -> Tutil.check_value "root title" (str "second") (Db.get_field txn o "title")
      | v -> Alcotest.failf "bad root %s" (Value.to_string v));
  (* Activations were re-armed: firing still works. *)
  let log = Buffer.create 16 in
  Db.set_action_printer db2 (Buffer.add_string log);
  Db.with_txn db2 (fun txn ->
      Query.run db2 ~txn ~var:"x" ~cls:"note"
        ~suchthat:(Parser.expr "x.title == \"first\"")
        (fun o -> Db.set_field txn o "weight" (int 1000)));
  Tutil.check_string "trigger survived dump" "hot\n" (Buffer.contents log);
  Db.close db;
  Db.close db2

let dump_version_history () =
  let db = Db.open_in_memory () in
  ignore (Db.define db "class d { v: int; };");
  Db.create_cluster db "d";
  let o = Db.with_txn db (fun txn -> Db.pnew txn "d" [ ("v", int 0) ]) in
  Db.with_txn db (fun txn ->
      for i = 1 to 3 do
        ignore (Db.newversion txn o);
        Db.set_field txn o "v" (int i)
      done);
  let db2 = Db.open_in_memory () in
  Ode.Dump.import db2 (Ode.Dump.export db);
  Db.with_txn db2 (fun txn ->
      let o2 = List.hd (Query.to_list db2 ~var:"x" ~cls:"d" ()) in
      Tutil.check_int "versions replayed" 4 (List.length (Db.versions txn o2));
      Tutil.check_value "current" (int 3) (Db.get_field txn o2 "v");
      Tutil.check_value "v1 state" (int 1)
        (List.assoc "v" (Option.get (Db.get_version txn { oid = o2; ver = 1 }))));
  Db.close db;
  Db.close db2

(* -- index-order by ------------------------------------------------------- *)

let by_index_order_matches_sort () =
  let db = Db.open_in_memory () in
  ignore (Db.define db "class s { k: int; };");
  Db.create_cluster db "s";
  let rng = Ode_util.Prng.create 4 in
  Db.with_txn db (fun txn ->
      for _ = 1 to 500 do
        ignore (Db.pnew txn "s" [ ("k", int (Ode_util.Prng.int rng 100)) ])
      done);
  let by order = (Parser.expr "x.k", order) in
  let keys d order =
    Db.with_txn d (fun txn ->
        List.map
          (fun o -> Db.get_field txn o "k")
          (Query.to_list d ~var:"x" ~cls:"s" ~by:(by order) ()))
  in
  let before_asc = keys db Ode_lang.Ast.Asc in
  let before_desc = keys db Ode_lang.Ast.Desc in
  Db.create_index db ~cls:"s" ~field:"k";
  let after_asc = keys db Ode_lang.Ast.Asc in
  let after_desc = keys db Ode_lang.Ast.Desc in
  Tutil.check_values "asc agrees" before_asc after_asc;
  Tutil.check_values "desc agrees" before_desc after_desc;
  (* With a dirty transaction the engine must fall back to sorting (and see
     the txn's writes). *)
  Db.with_txn db (fun txn ->
      ignore (Db.pnew txn "s" [ ("k", int (-5)) ]);
      let ks =
        List.map (fun o -> Db.get_field txn o "k") (Query.to_list db ~var:"x" ~cls:"s" ~by:(by Ode_lang.Ast.Asc) ())
      in
      Tutil.check_value "txn-created first" (int (-5)) (List.hd ks);
      Tutil.check_int "all rows" 501 (List.length ks));
  Db.close db

let by_with_suchthat_and_index_order () =
  let db = Db.open_in_memory () in
  ignore (Db.define db "class t2 { k: int; grp: int; };");
  Db.create_cluster db "t2";
  Db.with_txn db (fun txn ->
      for i = 1 to 100 do
        ignore (Db.pnew txn "t2" [ ("k", int (101 - i)); ("grp", int (i mod 3)) ])
      done);
  Db.create_index db ~cls:"t2" ~field:"k";
  let got =
    Db.with_txn db (fun txn ->
        List.map
          (fun o -> match Db.get_field txn o "k" with Value.Int k -> k | _ -> -1)
          (Query.to_list db ~var:"x" ~cls:"t2" ~suchthat:(Parser.expr "x.grp == 0")
             ~by:(Parser.expr "x.k", Ode_lang.Ast.Asc) ()))
  in
  let rec sorted = function a :: (b :: _ as r) -> a <= b && sorted r | _ -> true in
  Tutil.check_bool "filtered and sorted" true (sorted got && List.length got = 33);
  Db.close db

(* -- root builtins ----------------------------------------------------------- *)

let root_builtins () =
  let db = Db.open_in_memory () in
  let out = Buffer.create 32 in
  let shell = Ode.Shell.create ~print:(Buffer.add_string out) db in
  Ode.Shell.exec shell
    {|
    class c3 { v: int; };
    create cluster c3;
    x := pnew c3 { v = 42 };
    setroot("main", x);
    y := getroot("main");
    print y.v, getroot("missing");
    |};
  Tutil.check_string "root round-trip" "42 null\n" (Buffer.contents out);
  Db.close db

let suite =
  [
    ( "verify",
      [
        Alcotest.test_case "clean database passes" `Quick verify_clean;
        Alcotest.test_case "recovered database passes" `Quick verify_after_crash;
        Alcotest.test_case "corruption is detected" `Quick verify_detects_corruption;
      ] );
    ( "dump",
      [
        Alcotest.test_case "export/import round-trip" `Quick dump_roundtrip;
        Alcotest.test_case "version history replayed" `Quick dump_version_history;
      ] );
    ( "query.by_index",
      [
        Alcotest.test_case "index order matches sort" `Quick by_index_order_matches_sort;
        Alcotest.test_case "with suchthat" `Quick by_with_suchthat_and_index_order;
      ] );
    ("roots", [ Alcotest.test_case "setroot/getroot builtins" `Quick root_builtins ]);
  ]
