(* WAL-shipping replication: commit-LSN accounting across checkpoints and
   crashes, the replica's batch-apply discipline, checkpoint-bounded
   recovery, and end-to-end primary/standby serving — streaming, read-only
   rejection, promotion, client failover — over real forked servers. *)

module Db = Ode.Database
module Query = Ode.Query
module Verify = Ode.Verify
module Value = Ode_model.Value
module Failpoint = Ode_util.Failpoint
module Stats = Ode_util.Stats
module Repl = Ode_served.Replication
module Server = Ode_served.Server
module Client = Ode_served.Client
module P = Ode_served.Protocol

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let schema = "class t { tag: int; v: string; }; create cluster t;"

let setup db =
  ignore (Db.define db "class t { tag: int; v: string; };");
  Db.create_cluster db "t"

let put db tag =
  Db.with_txn db (fun txn ->
      ignore (Db.pnew txn "t" [ ("tag", Value.Int tag); ("v", Value.Str "payload") ]))

(* Sorted tags of every live object — the state oracle. *)
let tags db =
  Db.with_txn db (fun txn ->
      List.sort compare
        (List.map
           (fun oid ->
             match Db.get_field txn oid "tag" with
             | Value.Int i -> i
             | _ -> Alcotest.fail "non-int tag")
           (Query.to_list db ~txn ~var:"x" ~cls:"t" ())))

let check_verified name db =
  match Verify.run db with
  | Ok () -> ()
  | Error ps -> Alcotest.failf "%s: integrity check failed: %s" name (String.concat "; " ps)

(* -- commit LSNs across checkpoints and reopens --------------------------- *)

let lsn_counting () =
  let dir = Tutil.temp_dir "repl-lsn" in
  let db = Db.open_ dir in
  setup db;
  let l0 = Db.lsn db in
  for i = 0 to 4 do put db i done;
  Tutil.check_int "5 commits advance the lsn by 5" (l0 + 5) (Db.lsn db);
  Tutil.check_int "eager durability keeps durable in step" (Db.lsn db) (Db.durable_lsn db);
  (* The log still reaches back: a replica at l0 can resume. *)
  (match Db.wal_tail db ~lsn:l0 with
  | Some s -> Tutil.check_bool "resume tail non-empty" true (String.length s > 0)
  | None -> Alcotest.fail "tail should reach back to l0");
  (* A checkpoint truncates the log but not the count. *)
  Db.checkpoint db;
  Tutil.check_int "checkpoint keeps the lsn" (l0 + 5) (Db.lsn db);
  Tutil.check_bool "pre-checkpoint positions are gone" true (Db.wal_tail db ~lsn:l0 = None);
  Tutil.check_bool "current position resumes empty" true
    (Db.wal_tail db ~lsn:(Db.lsn db) = Some "");
  Tutil.check_bool "future positions are refused" true
    (Db.wal_tail db ~lsn:(Db.lsn db + 1) = None);
  for i = 5 to 7 do put db i done;
  Db.close db;
  let db2 = Db.open_ dir in
  Tutil.check_int "lsn exact after clean reopen" (l0 + 8) (Db.lsn db2);
  check_verified "lsn_counting" db2;
  Db.close db2

(* The [wal.lsn] failpoint sits between the sidecar write and the log
   truncation. A crash there leaves a sidecar claiming commits the log still
   physically holds; the checkpoint record's LSN must reconcile the double
   count on replay. *)
let lsn_sidecar_crash () =
  Failpoint.clear ();
  let dir = Tutil.temp_dir "repl-lsn-crash" in
  let db = Db.open_ dir in
  setup db;
  for i = 0 to 5 do put db i done;
  let l = Db.lsn db in
  Failpoint.arm "wal.lsn" ~policy:Failpoint.One_shot ~action:Failpoint.Crash_site;
  (match Db.checkpoint db with
  | () -> Alcotest.fail "expected simulated crash in checkpoint"
  | exception Failpoint.Crash _ -> ());
  Failpoint.clear ();
  Db.crash db;
  let db2 = Db.open_ dir in
  Tutil.check_int "lsn exact after sidecar/truncate crash" l (Db.lsn db2);
  Tutil.check_int "state intact" 6 (List.length (tags db2));
  put db2 6;
  Tutil.check_int "lsn keeps counting" (l + 1) (Db.lsn db2);
  check_verified "lsn_sidecar_crash" db2;
  Db.close db2

(* [Skip_effect] models a truncation that silently never happened (the
   sidecar advanced, the frames stayed). Replay must not double-count the
   retained commits. *)
let lsn_lost_truncation () =
  Failpoint.clear ();
  let dir = Tutil.temp_dir "repl-lsn-skip" in
  let db = Db.open_ dir in
  setup db;
  for i = 0 to 5 do put db i done;
  let l = Db.lsn db in
  Failpoint.arm "wal.lsn" ~policy:Failpoint.One_shot ~action:Failpoint.Skip_effect;
  Db.checkpoint db;
  Failpoint.clear ();
  Tutil.check_int "lsn unchanged by checkpoint" l (Db.lsn db);
  put db 6;
  Db.crash db;
  let db2 = Db.open_ dir in
  Tutil.check_int "lsn exact despite lost truncation" (l + 1) (Db.lsn db2);
  Tutil.check_int "state intact" 7 (List.length (tags db2));
  check_verified "lsn_lost_truncation" db2;
  Db.close db2

(* -- the replica's batch-apply discipline --------------------------------- *)

let apply_discipline () =
  let pdir = Tutil.temp_dir "repl-apply-p" in
  let rdir = Filename.concat (Tutil.temp_dir "repl-apply-r") "db" in
  (* Build the primary, checkpoint it closed, and clone the files: a
     byte-faithful standby at the same position (what a snapshot installs). *)
  let db = Db.open_ pdir in
  setup db;
  put db 0;
  Db.close db;
  Tutil.copy_dir pdir rdir;
  let pri = Db.open_ pdir and rep = Db.open_ rdir in
  Db.set_read_only rep true;
  let r0 = Db.lsn rep in
  Tutil.check_int "clone opens at the primary's lsn" (Db.lsn pri) r0;
  (* Local writes are refused — only shipped batches may move a standby. *)
  (match put rep 99 with
  | () -> Alcotest.fail "replica accepted a local write"
  | exception Ode.Types.Read_only_store -> ());
  put pri 1;
  put pri 2;
  let batch = Option.get (Db.wal_tail pri ~lsn:r0) in
  Tutil.check_bool "batch applies" true
    (Repl.apply_batch rep ~from_lsn:r0 ~to_lsn:(r0 + 2) ~data:batch = `Applied);
  Tutil.check_int "apply advances the lsn" (r0 + 2) (Db.lsn rep);
  Tutil.check_bool "replica state matches" true (tags rep = [ 0; 1; 2 ]);
  (* Redelivery after a resync: skipped, not an error. *)
  Tutil.check_bool "duplicate batch skipped" true
    (Repl.apply_batch rep ~from_lsn:r0 ~to_lsn:(r0 + 2) ~data:batch = `Duplicate);
  Tutil.check_int "duplicate does not move the lsn" (r0 + 2) (Db.lsn rep);
  put pri 3;
  put pri 4;
  (* A gap (stream skipped a batch) must force a resync... *)
  let gap = Option.get (Db.wal_tail pri ~lsn:(r0 + 3)) in
  (match Repl.apply_batch rep ~from_lsn:(r0 + 3) ~to_lsn:(r0 + 4) ~data:gap with
  | _ -> Alcotest.fail "gap must raise Resync"
  | exception Repl.Resync _ -> ());
  (* ... and so must a torn batch ... *)
  let full = Option.get (Db.wal_tail pri ~lsn:(r0 + 2)) in
  (match
     Repl.apply_batch rep ~from_lsn:(r0 + 2) ~to_lsn:(r0 + 4)
       ~data:(String.sub full 0 (String.length full - 1))
   with
  | _ -> Alcotest.fail "torn batch must raise Resync"
  | exception Repl.Resync _ -> ());
  (* ... and a corrupt one (checksummed frames catch the flip). *)
  let corrupt = Bytes.of_string full in
  Bytes.set corrupt
    (Bytes.length corrupt / 2)
    (Char.chr (Char.code (Bytes.get corrupt (Bytes.length corrupt / 2)) lxor 0xff));
  (match Repl.apply_batch rep ~from_lsn:(r0 + 2) ~to_lsn:(r0 + 4) ~data:(Bytes.to_string corrupt) with
  | _ -> Alcotest.fail "corrupt batch must raise Resync"
  | exception Repl.Resync _ -> ());
  Tutil.check_int "failed applies do not move the lsn" (r0 + 2) (Db.lsn rep);
  (* After the faults, the correct batch still applies — the resync path
     re-ships from the exact position. *)
  Tutil.check_bool "clean batch applies after faults" true
    (Repl.apply_batch rep ~from_lsn:(r0 + 2) ~to_lsn:(r0 + 4) ~data:full = `Applied);
  Tutil.check_bool "converged" true (tags rep = tags pri);
  (* Physical replication preserves oids, so the logical dumps are
     byte-identical — the strongest equivalence we can ask for. *)
  Tutil.check_string "dumps identical" (Ode.Dump.export pri) (Ode.Dump.export rep);
  check_verified "apply_discipline primary" pri;
  check_verified "apply_discipline replica" rep;
  Db.close pri;
  (* A read-only close must not write; promote first. *)
  Db.set_read_only rep false;
  Db.close rep

(* answer_hello picks resume vs snapshot correctly. *)
let hello_answers () =
  let dir = Tutil.temp_dir "repl-hello" in
  let db = Db.open_ dir in
  setup db;
  for i = 0 to 3 do put db i done;
  let l = Db.lsn db in
  (* In reach: resume with the exact suffix. *)
  (match Repl.answer_hello db ~replica_lsn:(l - 2) with
  | Repl.Resume { from_lsn; to_lsn; backlog } ->
      Tutil.check_int "resume from" (l - 2) from_lsn;
      Tutil.check_int "resume to" l to_lsn;
      Tutil.check_bool "backlog non-empty" true (String.length backlog > 0)
  | Repl.Snapshot _ -> Alcotest.fail "reachable position must resume");
  (* Checkpointed past: a snapshot of all five store files, at the lsn. *)
  Db.checkpoint db;
  put db 4;
  (match Repl.answer_hello db ~replica_lsn:(l - 2) with
  | Repl.Snapshot { lsn; files } ->
      Tutil.check_int "snapshot lsn" (Db.lsn db) lsn;
      List.iter
        (fun name ->
          Tutil.check_bool (name ^ " shipped") true (List.mem_assoc name files))
        Repl.snapshot_files
  | Repl.Resume _ -> Alcotest.fail "truncated position must snapshot");
  (* A replica claiming commits we never made durable has diverged:
     snapshot, never resume. *)
  (match Repl.answer_hello db ~replica_lsn:(Db.lsn db + 5) with
  | Repl.Snapshot _ -> ()
  | Repl.Resume _ -> Alcotest.fail "a diverged replica must get a snapshot");
  Db.close db

(* -- checkpoint-bounded recovery ------------------------------------------ *)

(* Recovery work is bounded by the checkpoint interval, not by history:
   after 400 transactions against a log that auto-checkpoints every few KB,
   reopening replays only the post-checkpoint tail. *)
let recovery_bounded () =
  let dir = Tutil.temp_dir "repl-bounded" in
  let db = Db.open_ ~wal_checkpoint_bytes:4096 dir in
  setup db;
  let n = 400 in
  for i = 0 to n - 1 do put db i done;
  let l = Db.lsn db in
  Db.crash db;
  let s0 = Stats.snapshot () in
  let db2 = Db.open_ ~wal_checkpoint_bytes:4096 dir in
  let replayed = Stats.(recovery_replayed (snapshot ()) - recovery_replayed s0) in
  Tutil.check_int "no commit lost" n (List.length (tags db2));
  Tutil.check_int "lsn exact" l (Db.lsn db2);
  Tutil.check_bool
    (Printf.sprintf "recovery bounded by the checkpoint interval (replayed %d of %d txns)"
       replayed n)
    true
    (replayed < n / 2);
  check_verified "recovery_bounded" db2;
  Db.close db2

(* -- end-to-end: forked primary + standby over loopback ------------------- *)

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | v -> v
  | exception Unix.Unix_error (EINTR, _, _) -> waitpid_retry pid

let kill_wait pid signal =
  (try Unix.kill pid signal with Unix.Unix_error _ -> ());
  ignore (waitpid_retry pid)

(* Spawn a primary (replication on an ephemeral port) and a standby of it;
   always reap both. *)
let with_cluster ?(sync_repl = false) f =
  let pdir = Tutil.temp_dir "repl-e2e-p" and rdir = Tutil.temp_dir "repl-e2e-r" in
  let ppid, pport, prepl, _ =
    Server.spawn_full ~repl_port:0 ~sync_repl ~durability:Db.Group ~db_dir:pdir ()
  in
  let killed_primary = ref false in
  Fun.protect
    ~finally:(fun () -> if not !killed_primary then kill_wait ppid Sys.sigterm)
    (fun () ->
      let rpid, rport = Server.spawn ~replica_of:("127.0.0.1", prepl) ~db_dir:rdir () in
      Fun.protect
        ~finally:(fun () -> kill_wait rpid Sys.sigterm)
        (fun () ->
          f ~pport ~rport ~kill_primary:(fun () ->
              killed_primary := true;
              kill_wait ppid Sys.sigkill)
            ~promote_replica:(fun () -> Unix.kill rpid Sys.sigusr1)))

let connect ?retries ?replicas port =
  Client.connect ~timeout:10. ?retries ?replicas ~host:"127.0.0.1" ~port ()

(* Poll until [cond ()]; replication is asynchronous, promotion is
   signal-driven — both need a beat. *)
let eventually ?(timeout = 10.) name cond =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if (try cond () with _ -> false) then ()
    else if Unix.gettimeofday () > deadline then Alcotest.failf "timed out waiting: %s" name
    else begin
      Unix.sleepf 0.05;
      go ()
    end
  in
  go ()

let e2e_streaming () =
  with_cluster (fun ~pport ~rport ~kill_primary:_ ~promote_replica:_ ->
      let c = connect pport in
      Tutil.check_string "ddl" "" (Client.exec c schema);
      for i = 0 to 4 do
        ignore (Client.exec c (Printf.sprintf "pnew t { tag = %d, v = \"row\" };" i))
      done;
      (* The standby converges without any further primary traffic. *)
      let rc = connect rport in
      eventually "replica caught up" (fun () ->
          List.length (Client.query rc "forall x in t") = 5);
      (* Reads serve; writes are refused with the retryable redirect. *)
      (match Client.exec rc "pnew t { tag = 99, v = \"nope\" };" with
      | _ -> Alcotest.fail "replica accepted a write"
      | exception Client.Server_error msg ->
          Tutil.check_bool "redirect error names the primary" true
            (contains msg "read-only replica"));
      (* Roles and lag are observable. *)
      let pr = Client.dot c ".replication" in
      Tutil.check_bool "primary role" true (contains pr "role           primary");
      Tutil.check_bool "primary sees a standby" true (contains pr "streaming");
      let rr = Client.dot rc ".replication" in
      Tutil.check_bool "replica role" true (contains rr "replica of");
      Tutil.check_bool "replica connected" true (contains rr "connected");
      (* .promote over the wire is refused on a primary. *)
      (match Client.dot c ".promote" with
      | _ -> Alcotest.fail ".promote on a primary must fail"
      | exception Client.Server_error msg ->
          Tutil.check_bool "already primary" true (contains msg "already primary"));
      (* Replication counters made it to the stats surface. *)
      eventually "lag gauges settle" (fun () ->
          let stats = Client.dot c ".stats" in
          contains stats "repl.batches_sent" && contains stats "repl.acks");
      Client.close rc;
      Client.close c)

(* Kill the primary mid-service, promote the standby with SIGUSR1, and let
   the client's retry/failover machinery find it. Semi-sync replication on
   the primary makes the oracle exact: every acknowledged write must be on
   the promoted standby. *)
let e2e_promotion_failover () =
  with_cluster ~sync_repl:true (fun ~pport ~rport ~kill_primary ~promote_replica ->
      let c = connect ~retries:10 ~replicas:[ ("127.0.0.1", rport) ] pport in
      Tutil.check_string "ddl" "" (Client.exec c schema);
      let acked = ref [] in
      for i = 0 to 9 do
        ignore (Client.exec c (Printf.sprintf "pnew t { tag = %d, v = \"row\" };" i));
        acked := i :: !acked
      done;
      (* Read routing: queries hit the standby but never travel back in
         time past the client's own acknowledged writes. *)
      Tutil.check_int "read-your-writes through the replica pool" 10
        (List.length (Client.query c "forall x in t"));
      Tutil.check_bool "client tracked an lsn watermark" true (Client.last_seen_lsn c > 0);
      kill_primary ();
      promote_replica ();
      (* The next write bounces off the dead primary (connection refused)
         and the standby (read-only redirect) until promotion lands, then
         sticks to the new primary. *)
      ignore (Client.exec c "pnew t { tag = 10, v = \"after failover\" };");
      acked := 10 :: !acked;
      let rows = Client.query c "forall x in t" in
      Tutil.check_int "every acked write survived failover" (List.length !acked)
        (List.length rows);
      List.iter
        (fun tag ->
          Tutil.check_bool
            (Printf.sprintf "acked tag %d present after promotion" tag)
            true
            (List.exists (fun r -> contains r (Printf.sprintf "tag = %d" tag)) rows))
        !acked;
      (* The promoted store passes a full integrity check, and reports as
         primary now. *)
      Tutil.check_bool "promoted store verifies" true (contains (Client.dot c ".verify") "ok");
      Tutil.check_bool "promoted role" true
        (contains (Client.dot c ".replication") "role           primary");
      Client.close c)

(* -- distributed tracing: one trace id across primary and standby ---------- *)

(* Turn the span tracer on in both server processes, do one traced write on
   the primary, and dump both rings: the client-assigned trace id must
   appear in the primary's dump (the server.request span) AND in the
   standby's (the repl.apply span for the shipped batch) — the id rode the
   wire protocol into the WAL commit record and out through replication. *)
let e2e_trace_correlation () =
  with_cluster (fun ~pport ~rport ~kill_primary:_ ~promote_replica:_ ->
      let c = connect pport in
      let rc = connect rport in
      Tutil.check_bool "tracer on (primary)" true
        (contains (Client.dot c ".trace on") "on");
      Tutil.check_bool "tracer on (standby)" true
        (contains (Client.dot rc ".trace on") "on");
      Tutil.check_string "ddl" "" (Client.exec c schema);
      ignore (Client.exec c "pnew t { tag = 7, v = \"traced\" };");
      let tid = Client.last_trace_id c in
      Tutil.check_bool "client assigned a trace id" true (tid <> 0);
      let needle = Ode_util.Trace.id_to_string tid in
      eventually "standby applied the traced write" (fun () ->
          List.length (Client.query rc "forall x in t") = 1);
      let pdump = Filename.temp_file "ode-trace-p" ".json" in
      let rdump = Filename.temp_file "ode-trace-r" ".json" in
      Fun.protect
        ~finally:(fun () ->
          List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ pdump; rdump ])
        (fun () ->
          Tutil.check_bool "primary dump written" true
            (contains (Client.dot c (".trace dump " ^ pdump)) "wrote");
          Tutil.check_bool "standby dump written" true
            (contains (Client.dot rc (".trace dump " ^ rdump)) "wrote");
          let read f = In_channel.with_open_text f In_channel.input_all in
          let pj = read pdump and rj = read rdump in
          Tutil.check_bool "primary recorded the request span" true
            (contains pj "server.request");
          Tutil.check_bool "primary span carries the client's trace id" true
            (contains pj needle);
          Tutil.check_bool "standby recorded the apply span" true (contains rj "repl.apply");
          Tutil.check_bool "standby apply carries the same trace id" true (contains rj needle);
          (* The two processes keep distinct identities in a merged view. *)
          Tutil.check_bool "standby labeled as replica" true (contains rj "replica"));
      Client.close rc;
      Client.close c)

(* -- exec_many partial-failure reporting ---------------------------------- *)

let rec read_exact fd buf pos len =
  if len > 0 then
    match Unix.read fd buf pos len with
    | 0 -> failwith "peer closed"
    | n -> read_exact fd buf (pos + n) (len - n)
    | exception Unix.Unix_error (EINTR, _, _) -> read_exact fd buf pos len

let rec write_all fd s pos len =
  if len > 0 then
    match Unix.write_substring fd s pos len with
    | n -> write_all fd s (pos + n) (len - n)
    | exception Unix.Unix_error (EINTR, _, _) -> write_all fd s pos len

(* A server that dies mid-batch: accepts one connection, answers the first
   [k] requests, drains the rest and hangs up. The client's pipelined
   exec_many must surface exactly which requests were acknowledged. *)
let half_answering_server k =
  let lfd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lfd 1;
  let port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  match Unix.fork () with
  | 0 ->
      let ok = ref false in
      (try
         let c, _ = Unix.accept lfd in
         Unix.close lfd;
         let hello = Bytes.create P.hello_len in
         read_exact c hello 0 P.hello_len;
         write_all c (P.hello_reply P.Accepted) 0 P.hello_reply_len;
         let rd = P.reader () in
         let buf = Bytes.create 65536 in
         let answered = ref 0 in
         while !answered < k do
           (match P.next_frame rd with
           | Some body ->
               let rq = P.decode_request body in
               let b = Buffer.create 64 in
               P.encode_response b
                 { P.rs_id = rq.P.rq_id; rs_lsn = 7; rs_reply = P.Output "ok" };
               let s = Buffer.contents b in
               write_all c s 0 (String.length s);
               incr answered
           | None ->
               let n = Unix.read c buf 0 (Bytes.length buf) in
               if n = 0 then failwith "client closed early" else P.feed rd buf n)
         done;
         (* Drain whatever else the batch carried so closing sends FIN, not
            RST (an RST could discard the responses above in flight). *)
         Unix.setsockopt_float c Unix.SO_RCVTIMEO 0.3;
         (try
            while Unix.read c buf 0 (Bytes.length buf) > 0 do
              ()
            done
          with Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ());
         Unix.close c;
         ok := true
       with _ -> ());
      Unix._exit (if !ok then 0 else 1)
  | pid -> (pid, port, lfd)

let exec_many_broken_pipeline () =
  let k = 3 and n = 5 in
  let pid, port, lfd = half_answering_server k in
  Fun.protect
    ~finally:(fun () ->
      Unix.close lfd;
      kill_wait pid Sys.sigkill)
    (fun () ->
      let c = connect port in
      let progs = List.init n (fun i -> Printf.sprintf "print %d;" i) in
      match Client.exec_many c progs with
      | _ -> Alcotest.fail "expected Pipeline_broken"
      | exception Client.Pipeline_broken { acked; pending } ->
          Tutil.check_int "acked prefix length" k (List.length acked);
          List.iter
            (fun r -> Tutil.check_bool "acked entries are Ok" true (r = Ok "ok"))
            acked;
          Tutil.check_int "unacknowledged suffix counted" (n - k) pending;
          Tutil.check_int "watermark from acked responses" 7 (Client.last_seen_lsn c))

let suite =
  [
    ( "replication",
      [
        Alcotest.test_case "commit lsns survive checkpoints and reopens" `Quick lsn_counting;
        Alcotest.test_case "crash between sidecar and truncation" `Quick lsn_sidecar_crash;
        Alcotest.test_case "lost truncation reconciled on replay" `Quick lsn_lost_truncation;
        Alcotest.test_case "batch apply discipline" `Quick apply_discipline;
        Alcotest.test_case "handshake picks resume vs snapshot" `Quick hello_answers;
        Alcotest.test_case "recovery bounded by checkpoint interval" `Quick recovery_bounded;
        Alcotest.test_case "primary streams to a read-only standby" `Quick e2e_streaming;
        Alcotest.test_case "kill, promote, client failover" `Quick e2e_promotion_failover;
        Alcotest.test_case "trace id correlates primary and standby" `Quick
          e2e_trace_correlation;
        Alcotest.test_case "exec_many reports the acked prefix" `Quick exec_many_broken_pipeline;
      ] );
  ]
