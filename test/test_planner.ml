(* Access-path selection: which plans the planner picks for which
   predicates. *)

module Db = Ode.Database
module Planner = Ode.Planner
module Value = Ode_model.Value
module Parser = Ode_lang.Parser

let setup () =
  let db = Db.open_in_memory () in
  ignore
    (Db.define db
       {|class item { sku: int; qty: int; name: string; tagset: set<int>; };
         class special : item { rank: int; };|});
  Db.create_cluster db "item";
  Db.create_cluster db "special";
  Db.create_index db ~cls:"item" ~field:"qty";
  Db.create_index db ~cls:"special" ~field:"rank";
  db

let plan db ?env ?(cls = "item") ?(deep = false) src =
  Planner.plan db ?env ~var:"x" ~cls ~deep ~suchthat:(Some (Parser.expr src)) ()

let is_full p = match p.Planner.p_access with Planner.Full_scan -> true | _ -> false
let is_eq p = match p.Planner.p_access with Planner.Index_eq _ -> true | _ -> false
let is_range p = match p.Planner.p_access with Planner.Index_range _ -> true | _ -> false

let picks_eq_probe () =
  let db = setup () in
  Tutil.check_bool "eq on indexed" true (is_eq (plan db "x.qty == 5"));
  Tutil.check_bool "mirrored eq" true (is_eq (plan db "5 == x.qty"));
  Tutil.check_bool "eq wins over range" true (is_eq (plan db "x.qty > 1 && x.qty == 5"));
  Db.close db

let picks_range () =
  let db = setup () in
  Tutil.check_bool "gt" true (is_range (plan db "x.qty > 5"));
  Tutil.check_bool "both bounds" true (is_range (plan db "x.qty >= 2 && x.qty < 9"));
  (match (plan db "x.qty >= 2 && x.qty < 9").Planner.p_access with
  | Planner.Index_range { lo = Some (Value.Int 2, true); hi = Some (Value.Int 9, false); _ } -> ()
  | _ -> Alcotest.fail "bounds mis-extracted");
  Db.close db

let tightest_bounds () =
  let db = setup () in
  (* Redundant conjuncts must fold to the tightest bound, whatever their
     order in the predicate. *)
  (match (plan db "x.qty > 10 && x.qty > 5").Planner.p_access with
  | Planner.Index_range { lo = Some (Value.Int 10, false); hi = None; _ } -> ()
  | _ -> Alcotest.fail "lo not tightened to > 10");
  (match (plan db "x.qty > 5 && x.qty > 10").Planner.p_access with
  | Planner.Index_range { lo = Some (Value.Int 10, false); hi = None; _ } -> ()
  | _ -> Alcotest.fail "lo not tightened (order flipped)");
  (match (plan db "x.qty < 5 && x.qty <= 9").Planner.p_access with
  | Planner.Index_range { lo = None; hi = Some (Value.Int 5, false); _ } -> ()
  | _ -> Alcotest.fail "hi not tightened to < 5");
  (* On equal constants a strict bound beats an inclusive one. *)
  (match (plan db "x.qty >= 7 && x.qty > 7").Planner.p_access with
  | Planner.Index_range { lo = Some (Value.Int 7, false); hi = None; _ } -> ()
  | _ -> Alcotest.fail "strict not preferred on tie");
  (match (plan db "x.qty > 2 && x.qty >= 0 && x.qty < 9 && x.qty <= 12").Planner.p_access with
  | Planner.Index_range { lo = Some (Value.Int 2, false); hi = Some (Value.Int 9, false); _ } -> ()
  | _ -> Alcotest.fail "four-conjunct combination wrong");
  Db.close db

let falls_back_to_scan () =
  let db = setup () in
  Tutil.check_bool "unindexed field" true (is_full (plan db "x.sku == 5"));
  Tutil.check_bool "non-sargable" true (is_full (plan db "x.qty + 1 == 6"));
  Tutil.check_bool "disjunction" true (is_full (plan db "x.qty == 5 || x.qty == 6"));
  Tutil.check_bool "ne" true (is_full (plan db "x.qty != 5"));
  Tutil.check_bool "var on both sides" true (is_full (plan db "x.qty == x.sku"));
  Db.close db

let constant_folding () =
  let db = setup () in
  (* The comparand may be any closed expression. *)
  Tutil.check_bool "computed constant" true (is_eq (plan db "x.qty == 2 + 3"));
  (* ... including outer loop variables supplied via env. *)
  let env = [ ("y", Value.Int 7) ] in
  Tutil.check_bool "env var" true (is_eq (plan db ~env "x.qty == y"));
  (* Without the binding it cannot be evaluated: full scan. *)
  Tutil.check_bool "unbound comparand" true (is_full (plan db "x.qty == y"));
  Db.close db

let inherited_index_used () =
  let db = setup () in
  (* special inherits item's qty index. *)
  Tutil.check_bool "inherited" true (is_eq (plan db ~cls:"special" "x.qty == 1"));
  Tutil.check_bool "own" true (is_eq (plan db ~cls:"special" "x.rank == 1"));
  (* item must NOT use special's rank index (rank is not its field). *)
  (match plan db ~cls:"item" "x.qty == 1 && x.name == \"a\"" with
  | p ->
      Tutil.check_bool "residual keeps extra conjunct" true (p.Planner.p_residual <> None));
  Db.close db

let deep_plan_classes () =
  let db = setup () in
  let p = plan db ~deep:true "x.qty > 1" in
  Tutil.check_string_list "hierarchy clusters" [ "item"; "special" ] p.Planner.p_classes;
  Db.close db

let explain_strings () =
  let db = setup () in
  let ex ?cls src = Planner.explain (plan db ?cls src) in
  Tutil.check_bool "probe text" true
    (String.length (ex "x.qty == 5") >= 11 && String.sub (ex "x.qty == 5") 0 11 = "index probe");
  Tutil.check_bool "scan text" true
    (String.length (ex "x.sku == 5") >= 9 && String.sub (ex "x.sku == 5") 0 9 = "full scan");
  Db.close db

let suite =
  [
    ( "planner",
      [
        Alcotest.test_case "equality probes" `Quick picks_eq_probe;
        Alcotest.test_case "range bounds" `Quick picks_range;
        Alcotest.test_case "tightest bounds win" `Quick tightest_bounds;
        Alcotest.test_case "scan fallbacks" `Quick falls_back_to_scan;
        Alcotest.test_case "constant folding and env" `Quick constant_folding;
        Alcotest.test_case "inherited indexes" `Quick inherited_index_used;
        Alcotest.test_case "deep plans expand classes" `Quick deep_plan_classes;
        Alcotest.test_case "explain strings" `Quick explain_strings;
      ] );
  ]
