(* Member initializers: [qty: int = 100;]. *)

module Db = Ode.Database
module Value = Ode_model.Value

let defaults_applied () =
  let db = Db.open_in_memory () in
  ignore
    (Db.define db
       {|class cfg { retries: int = 3; ratio: float = 1.0 / 2; name: string = "anon";
                     flags: set<int> = {1, 2}; plain: int; };|});
  Db.create_cluster db "cfg";
  Db.with_txn db (fun txn ->
      let c = Db.pnew txn "cfg" [] in
      Tutil.check_value "int default" (Value.Int 3) (Db.get_field txn c "retries");
      Tutil.check_value "computed default" (Value.Float 0.5) (Db.get_field txn c "ratio");
      Tutil.check_value "string default" (Value.Str "anon") (Db.get_field txn c "name");
      Tutil.check_value "set default" (Value.set_of_list [ Value.Int 1; Value.Int 2 ])
        (Db.get_field txn c "flags");
      Tutil.check_value "undeclared default is zero" (Value.Int 0) (Db.get_field txn c "plain");
      (* Explicit inits still win. *)
      let d = Db.pnew txn "cfg" [ ("retries", Value.Int 9) ] in
      Tutil.check_value "explicit wins" (Value.Int 9) (Db.get_field txn d "retries"));
  Db.close db

let defaults_inherited () =
  let db = Db.open_in_memory () in
  ignore
    (Db.define db
       {|class base7 { level: int = 5; };
         class derived7 : base7 { extra: int = 7; };|});
  Db.create_cluster db "derived7";
  Db.with_txn db (fun txn ->
      let o = Db.pnew txn "derived7" [] in
      Tutil.check_value "inherited default" (Value.Int 5) (Db.get_field txn o "level");
      Tutil.check_value "own default" (Value.Int 7) (Db.get_field txn o "extra"));
  Db.close db

let defaults_typechecked () =
  let db = Db.open_in_memory () in
  (match Db.define db {|class bad7 { n: int = "oops"; };|} with
  | _ -> Alcotest.fail "mistyped default accepted"
  | exception Ode_model.Typecheck.Error _ -> ());
  (* And they must be closed: field references are unbound here. *)
  (match Db.define db {|class bad8 { a: int; b: int = a + 1; };|} with
  | _ -> Alcotest.fail "open default accepted"
  | exception Ode_model.Typecheck.Error _ -> ());
  Db.close db

let defaults_survive_catalog_roundtrip () =
  let dir = Tutil.temp_dir "dflt" in
  let db = Db.open_ dir in
  ignore (Db.define db {|class cfg9 { retries: int = 3; };|});
  Db.create_cluster db "cfg9";
  Db.close db;
  let db2 = Db.open_ dir in
  Db.with_txn db2 (fun txn ->
      let c = Db.pnew txn "cfg9" [] in
      Tutil.check_value "default after reopen" (Value.Int 3) (Db.get_field txn c "retries"));
  Db.close db2

let suite =
  [
    ( "defaults",
      [
        Alcotest.test_case "applied at pnew" `Quick defaults_applied;
        Alcotest.test_case "inherited" `Quick defaults_inherited;
        Alcotest.test_case "typechecked and closed" `Quick defaults_typechecked;
        Alcotest.test_case "survive catalog round-trip" `Quick defaults_survive_catalog_roundtrip;
      ] );
  ]
