module S = Ode.Odeset
module Value = Ode_model.Value

let int n = Value.Int n
let s123 = S.of_list [ int 1; int 2; int 3 ]

let basics () =
  Tutil.check_int "cardinal" 3 (S.cardinal s123);
  Tutil.check_bool "mem" true (S.mem (int 2) s123);
  Tutil.check_value "add" (S.of_list [ int 1; int 2; int 3; int 4 ]) (S.add (int 4) s123);
  Tutil.check_value "remove" (S.of_list [ int 1; int 3 ]) (S.remove (int 2) s123);
  Tutil.check_value "union" (S.of_list [ int 1; int 2; int 3; int 4 ]) (S.union s123 (S.of_list [ int 3; int 4 ]));
  Tutil.check_value "inter" (S.of_list [ int 2; int 3 ]) (S.inter s123 (S.of_list [ int 2; int 3; int 9 ]));
  Tutil.check_value "diff" (S.of_list [ int 1 ]) (S.diff s123 (S.of_list [ int 2; int 3 ]));
  Tutil.check_bool "subset" true (S.subset (S.of_list [ int 1 ]) s123);
  Tutil.check_bool "not subset" false (S.subset s123 (S.of_list [ int 1 ]))

let iteration_order () =
  let seen = ref [] in
  S.iter (fun v -> seen := v :: !seen) (S.of_list [ int 3; int 1; int 2 ]);
  Tutil.check_values "value order" [ int 1; int 2; int 3 ] (List.rev !seen)

let fixpoint_closure () =
  (* Transitive closure of n -> 2n, 3n below 50, starting from {1}. *)
  let w = S.worklist (S.of_list [ int 1 ]) in
  let visited = ref 0 in
  S.iter_fix w (fun v ->
      incr visited;
      match v with
      | Value.Int n ->
          if 2 * n < 50 then ignore (S.insert w (int (2 * n)));
          if 3 * n < 50 then ignore (S.insert w (int (3 * n)))
      | _ -> ());
  let closure = S.seen w in
  (* {1,2,3,4,6,8,9,12,16,18,24,27,32,36,48} *)
  Tutil.check_int "closure size" 15 (S.cardinal closure);
  Tutil.check_int "each visited once" 15 !visited;
  Tutil.check_bool "27 reached" true (S.mem (int 27) closure);
  Tutil.check_bool "5 not reached" false (S.mem (int 5) closure)

let insert_dedup () =
  let w = S.worklist S.empty in
  Tutil.check_bool "first" true (S.insert w (int 1));
  Tutil.check_bool "dup" false (S.insert w (int 1));
  let n = ref 0 in
  S.iter_fix w (fun _ -> incr n);
  Tutil.check_int "visited once" 1 !n

let prop_union_comm =
  let arb = QCheck.(list (int_range 0 20)) in
  QCheck.Test.make ~name:"union is commutative and idempotent" ~count:300 (QCheck.pair arb arb)
    (fun (a, b) ->
      let sa = S.of_list (List.map int a) and sb = S.of_list (List.map int b) in
      Value.equal (S.union sa sb) (S.union sb sa)
      && Value.equal (S.union sa sa) sa
      && S.subset sa (S.union sa sb))

let prop_demorgan =
  let arb = QCheck.(list (int_range 0 15)) in
  QCheck.Test.make ~name:"diff/inter laws" ~count:300 (QCheck.pair arb arb) (fun (a, b) ->
      let sa = S.of_list (List.map int a) and sb = S.of_list (List.map int b) in
      (* (a - b) ∪ (a ∩ b) = a *)
      Value.equal (S.union (S.diff sa sb) (S.inter sa sb)) sa)

let suite =
  [
    ( "odeset",
      [
        Alcotest.test_case "basic operations" `Quick basics;
        Alcotest.test_case "iteration order" `Quick iteration_order;
        Alcotest.test_case "fixpoint closure" `Quick fixpoint_closure;
        Alcotest.test_case "worklist dedups" `Quick insert_dedup;
      ] );
    Tutil.qsuite "odeset.props" [ prop_union_comm; prop_demorgan ];
  ]
