(* Plan-snapshot regression gate: a fixed catalog of representative queries
   is planned pre- and post-[analyze] and the rendered plans are diffed
   against the committed golden file [test/plans.expected]. Estimated
   figures (digit runs after '~') are normalized to '#' so cost-constant
   tuning does not churn the snapshot; the plan *shapes* and their
   stats/heuristic provenance are what the gate pins.

   On mismatch the test fails with a full diff and writes the actual
   snapshot to [plans.actual] in the test's working directory
   (_build/default/test/); to accept a deliberate planner change, copy it
   over [test/plans.expected]. *)

module Db = Ode.Database
module Query = Ode.Query
module Planner = Ode.Planner
module Value = Ode_model.Value
module Parser = Ode_lang.Parser

(* Anchor on the test binary so the paths work under both [dune runtest]
   (cwd = _build/default/test) and [dune exec] from the project root: the
   golden file is declared as a dep in [test/dune], so dune copies it next
   to the executable. *)
let here = Filename.dirname Sys.executable_name
let expected_path = Filename.concat here "plans.expected"
let actual_path = Filename.concat here "plans.actual"

(* A deterministic store: an inventory hierarchy with indexed [qty]/[rank]
   and unindexed [sku]; a skewed extent with two indexed fields; and a
   dept/emp pair for joins. *)
let setup () =
  let db = Db.open_in_memory () in
  ignore
    (Db.define db
       {|class item { sku: int; qty: int; name: string; };
         class special : item { rank: int; };
         class skew { a: int; b: int; };
         class dept { dname: string; budget: int; };
         class emp { ename: string; works: string; boss: ref dept; team: set<int>; salary: int; };
         class squad { sname: string; roster: set<ref emp>; };|});
  List.iter (Db.create_cluster db) [ "item"; "special"; "skew"; "dept"; "emp"; "squad" ];
  Db.create_index db ~cls:"item" ~field:"qty";
  Db.create_index db ~cls:"item" ~field:"name";
  Db.create_index db ~cls:"special" ~field:"rank";
  Db.create_index db ~cls:"skew" ~field:"a";
  Db.create_index db ~cls:"skew" ~field:"b";
  Db.with_txn db (fun txn ->
      for i = 0 to 99 do
        ignore
          (Db.pnew txn "item"
             [ ("sku", Value.Int i); ("qty", Value.Int (i mod 10));
               ("name", Value.Str (Printf.sprintf "n%d" i)) ])
      done;
      for i = 0 to 19 do
        ignore
          (Db.pnew txn "special"
             [ ("sku", Value.Int (1000 + i)); ("qty", Value.Int (i mod 5));
               ("name", Value.Str (Printf.sprintf "s%d" i)); ("rank", Value.Int i) ])
      done;
      for i = 0 to 179 do
        let a = if i < 150 then 1 else 1000 + i in
        ignore (Db.pnew txn "skew" [ ("a", Value.Int a); ("b", Value.Int i) ])
      done);
  let d1, d2 =
    Db.with_txn db (fun txn ->
        ( Db.pnew txn "dept" [ ("dname", Value.Str "eng"); ("budget", Value.Int 100) ],
          Db.pnew txn "dept" [ ("dname", Value.Str "ops"); ("budget", Value.Int 50) ] ))
  in
  Db.with_txn db (fun txn ->
      let emps =
        List.init 60 (fun i ->
            Db.pnew txn "emp"
              [ ("ename", Value.Str (Printf.sprintf "e%d" i));
                ("works", Value.Str (if i mod 2 = 0 then "eng" else "ops"));
                ("boss", Value.Ref (if i mod 2 = 0 then d1 else d2));
                ("salary", Value.Int (i * 10)) ])
      in
      List.iteri
        (fun s members ->
          ignore
            (Db.pnew txn "squad"
               [ ("sname", Value.Str (Printf.sprintf "sq%d" s));
                 ("roster", Value.set_of_list (List.map (fun o -> Value.Ref o) members)) ]))
        [ List.filteri (fun i _ -> i < 5) emps;
          List.filteri (fun i _ -> i >= 55) emps ]);
  db

(* The 20 queries the gate pins: eq/range/full-scan access selection,
   residuals, hierarchy scans, the skew-driven plan switch, and every join
   strategy. Singles are [(var, cls, deep, suchthat)]. *)
let singles =
  [
    ("x", "item", false, None);
    ("x", "item", false, Some "x.qty == 5");
    ("x", "item", false, Some "x.qty == 5 && x.name == \"n3\"");
    ("x", "item", false, Some "x.sku == 7");
    ("x", "item", false, Some "x.qty > 7");
    ("x", "item", false, Some "x.qty >= 2 && x.qty < 4");
    ("x", "item", false, Some "x.qty > 1 && x.qty == 5");
    ("x", "item", false, Some "x.name == \"n42\"");
    ("x", "item", false, Some "x.qty == 5 || x.sku == 3");
    ("x", "item", true, Some "x.qty > 3");
    ("x", "special", false, Some "x.rank == 7");
    ("x", "special", false, Some "x.qty == 2");
    ("x", "skew", false, Some "x.a == 1 && x.b == 17");
    ("x", "skew", false, Some "x.b < 40");
    ("x", "skew", false, Some "x.a == 1234 && x.b > 170");
  ]

(* Joins are [(outer, inner, outer_suchthat, inner_suchthat)]. *)
let joins =
  [
    (("d", "dept", false), ("e", "emp", false), None, Some "e.works == d.dname");
    ( ("d", "dept", false),
      ("e", "emp", false),
      Some "d.budget > 60",
      Some "e.works == d.dname && e.salary > 100" );
    (("e", "emp", false), ("d", "dept", false), None, Some "d == e.boss");
    (("e", "emp", false), ("f", "emp", false), None, Some "f.salary > e.salary");
    (("d", "dept", false), ("e", "emp", false), None, Some "e.salary == d.budget");
    (("t", "squad", false), ("e", "emp", false), None, Some "e in t.roster");
  ]

(* Digit runs following '~' become '#': "~123 rows" -> "~# rows". *)
let normalize s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    Buffer.add_char b c;
    incr i;
    if c = '~' then begin
      let j = ref !i in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
      if !j > !i then begin
        Buffer.add_char b '#';
        i := !j
      end
    end
  done;
  Buffer.contents b

let render db =
  let b = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let phase label =
    out "==== %s ====" label;
    List.iter
      (fun (var, cls, deep, st) ->
        let suchthat = Option.map Parser.expr st in
        out "-- forall %s in %s%s%s" var cls (if deep then "*" else "")
          (match st with Some s -> " suchthat " ^ s | None -> "");
        out "%s" (normalize (Query.explain db ~var ~cls ~deep ?suchthat ())))
      singles;
    List.iter
      (fun (outer, inner, o_st, i_st) ->
        let ovar, ocls, _ = outer and ivar, icls, _ = inner in
        out "-- forall %s in %s%s { forall %s in %s%s }" ovar ocls
          (match o_st with Some s -> " suchthat " ^ s | None -> "")
          ivar icls
          (match i_st with Some s -> " suchthat " ^ s | None -> "");
        out "%s"
          (normalize
             (Query.explain_join db ~outer ~inner
                ?outer_suchthat:(Option.map Parser.expr o_st)
                ?inner_suchthat:(Option.map Parser.expr i_st) ())))
      joins
  in
  phase "before analyze (heuristics)";
  ignore (Db.analyze db);
  phase "after analyze (cost-based)";
  Buffer.contents b

let diff expected actual =
  let el = String.split_on_char '\n' expected and al = String.split_on_char '\n' actual in
  let b = Buffer.create 1024 in
  let rec go i el al =
    match (el, al) with
    | [], [] -> ()
    | e :: et, a :: at ->
        if e <> a then Buffer.add_string b (Printf.sprintf "line %d:\n  - %s\n  + %s\n" i e a);
        go (i + 1) et at
    | e :: et, [] ->
        Buffer.add_string b (Printf.sprintf "line %d:\n  - %s\n  + <missing>\n" i e);
        go (i + 1) et []
    | [], a :: at ->
        Buffer.add_string b (Printf.sprintf "line %d:\n  - <missing>\n  + %s\n" i a);
        go (i + 1) [] at
  in
  go 1 el al;
  Buffer.contents b

let snapshot_matches () =
  let db = setup () in
  let actual = render db in
  Db.close db;
  if not (Sys.file_exists expected_path) then begin
    Out_channel.with_open_text actual_path (fun oc -> Out_channel.output_string oc actual);
    Alcotest.failf "golden file %s missing; actual snapshot written to %s" expected_path
      actual_path
  end;
  let expected = In_channel.with_open_text expected_path In_channel.input_all in
  if expected <> actual then begin
    Out_channel.with_open_text actual_path (fun oc -> Out_channel.output_string oc actual);
    Alcotest.failf
      "plan snapshot drifted (accept with: cp %s test/plans.expected)\n%s"
      (Filename.concat (Sys.getcwd ()) actual_path)
      (diff expected actual)
  end

(* The snapshot generator itself must be deterministic, or the gate would
   flap: render twice on independent stores. *)
let snapshot_deterministic () =
  let db1 = setup () in
  let s1 = render db1 in
  Db.close db1;
  let db2 = setup () in
  let s2 = render db2 in
  Db.close db2;
  Tutil.check_bool "two renders agree" true (s1 = s2)

let suite =
  [
    ( "plans",
      [
        Alcotest.test_case "snapshot deterministic" `Quick snapshot_deterministic;
        Alcotest.test_case "snapshot matches golden file" `Quick snapshot_matches;
      ] );
  ]
