module Page = Ode_storage.Page

let fresh_invariants () =
  let p = Page.create () in
  (match Page.check p with Ok () -> () | Error e -> Alcotest.fail e);
  Tutil.check_int "no slots" 0 (Page.nslots p);
  Tutil.check_int "no live" 0 (Page.live_count p);
  Tutil.check_bool "lots of space" true (Page.free_space p > 4000)

let insert_get () =
  let p = Page.create () in
  let s1 = Option.get (Page.insert p "hello") in
  let s2 = Option.get (Page.insert p "world") in
  Alcotest.(check (option string)) "get 1" (Some "hello") (Page.get p s1);
  Alcotest.(check (option string)) "get 2" (Some "world") (Page.get p s2);
  Alcotest.(check (option string)) "dead slot" None (Page.get p 99)

let delete_reuses_slot () =
  let p = Page.create () in
  let s1 = Option.get (Page.insert p "aaa") in
  let _s2 = Option.get (Page.insert p "bbb") in
  Tutil.check_bool "delete ok" true (Page.delete p s1);
  Tutil.check_bool "double delete" false (Page.delete p s1);
  let s3 = Option.get (Page.insert p "ccc") in
  Tutil.check_int "slot reused" s1 s3;
  Tutil.check_int "nslots stable" 2 (Page.nslots p)

let update_in_place_and_grow () =
  let p = Page.create () in
  let s = Option.get (Page.insert p "short") in
  Tutil.check_bool "shrink" true (Page.update p s "s");
  Alcotest.(check (option string)) "shrunk" (Some "s") (Page.get p s);
  Tutil.check_bool "grow" true (Page.update p s (String.make 100 'x'));
  Alcotest.(check (option string)) "grown" (Some (String.make 100 'x')) (Page.get p s);
  (match Page.check p with Ok () -> () | Error e -> Alcotest.fail e)

let update_too_big_fails_atomically () =
  let p = Page.create () in
  let s = Option.get (Page.insert p "keep me") in
  (* Fill the page almost completely. *)
  let rec fill () =
    match Page.insert p (String.make 200 'f') with Some _ -> fill () | None -> ()
  in
  fill ();
  let huge = String.make 4000 'z' in
  Tutil.check_bool "no room" false (Page.update p s huge);
  Alcotest.(check (option string)) "old value intact" (Some "keep me") (Page.get p s);
  match Page.check p with Ok () -> () | Error e -> Alcotest.fail e

let max_record_fits () =
  let p = Page.create () in
  let r = String.make Page.max_record 'm' in
  (match Page.insert p r with
  | Some s -> Alcotest.(check (option string)) "read back" (Some r) (Page.get p s)
  | None -> Alcotest.fail "max_record should fit an empty page");
  Tutil.check_bool "over max rejected" true (Page.insert (Page.create ()) (String.make (Page.max_record + 1) 'm') = None)

let compaction_recovers_space () =
  let p = Page.create () in
  (* Alternate inserts, delete half, then a big record must still fit. *)
  let slots = ref [] in
  for i = 0 to 15 do
    match Page.insert p (String.make 200 (Char.chr (Char.code 'a' + (i mod 26)))) with
    | Some s -> slots := s :: !slots
    | None -> ()
  done;
  List.iteri (fun i s -> if i mod 2 = 0 then ignore (Page.delete p s)) !slots;
  let free = Page.free_space p in
  (match Page.insert p (String.make (free - 8) 'Z') with
  | Some _ -> ()
  | None -> Alcotest.fail "compaction should have made room");
  match Page.check p with Ok () -> () | Error e -> Alcotest.fail e

let iter_sees_live_only () =
  let p = Page.create () in
  let s1 = Option.get (Page.insert p "a") in
  let _ = Option.get (Page.insert p "b") in
  ignore (Page.delete p s1);
  let seen = ref [] in
  Page.iter p (fun _ d -> seen := d :: !seen);
  Tutil.check_string_list "only live" [ "b" ] !seen

(* Model test: random operations mirrored in a Hashtbl. *)
let ops_gen =
  QCheck.Gen.(
    list_size (int_bound 120)
      (frequency
         [
           (5, map (fun n -> `Insert (String.make (1 + (n mod 300)) 'x')) nat);
           (2, map (fun i -> `Delete i) (int_bound 40));
           (2, map2 (fun i n -> `Update (i, String.make (1 + (n mod 300)) 'u')) (int_bound 40) nat);
         ]))

let prop_model =
  QCheck.Test.make ~name:"page matches model under random ops" ~count:200
    (QCheck.make ops_gen) (fun ops ->
      let p = Page.create () in
      let model : (int, string) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun op ->
          match op with
          | `Insert data -> (
              match Page.insert p data with
              | Some s -> Hashtbl.replace model s data
              | None -> ())
          | `Delete s -> if Page.delete p s then Hashtbl.remove model s
          | `Update (s, data) -> if Page.update p s data then Hashtbl.replace model s data)
        ops;
      (match Page.check p with Ok () -> () | Error e -> QCheck.Test.fail_report e);
      Hashtbl.fold (fun s data ok -> ok && Page.get p s = Some data) model true
      && Page.live_count p = Hashtbl.length model)

let suite =
  [
    ( "page",
      [
        Alcotest.test_case "fresh page invariants" `Quick fresh_invariants;
        Alcotest.test_case "insert and get" `Quick insert_get;
        Alcotest.test_case "delete reuses slots" `Quick delete_reuses_slot;
        Alcotest.test_case "update shrink and grow" `Quick update_in_place_and_grow;
        Alcotest.test_case "oversized update is atomic" `Quick update_too_big_fails_atomically;
        Alcotest.test_case "max record" `Quick max_record_fits;
        Alcotest.test_case "compaction recovers space" `Quick compaction_recovers_space;
        Alcotest.test_case "iter skips dead" `Quick iter_sees_live_only;
      ] );
    Tutil.qsuite "page.props" [ prop_model ];
  ]
