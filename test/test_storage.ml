(* Disk backends, buffer pool, WAL and heap files. *)

module Disk = Ode_storage.Disk
module Pool = Ode_storage.Buffer_pool
module Wal = Ode_storage.Wal
module Heap = Ode_storage.Heap
module Page = Ode_storage.Page

(* -- disk -------------------------------------------------------------- *)

let mem_disk_rw () =
  let d = Disk.in_memory () in
  Tutil.check_int "empty" 0 (Disk.page_count d);
  let n = Disk.allocate d in
  Tutil.check_int "first page" 0 n;
  let page = Bytes.make Page.size 'q' in
  Disk.write d 0 page;
  Alcotest.(check bytes) "read back" page (Disk.read d 0)

let file_disk_rw () =
  let dir = Tutil.temp_dir "disk" in
  let path = Filename.concat dir "pages" in
  let d = Disk.open_file path in
  let n0 = Disk.allocate d in
  let n1 = Disk.allocate d in
  Tutil.check_int "sequential alloc" 1 (n1 - n0);
  let page = Bytes.make Page.size 'z' in
  Disk.write d n1 page;
  Disk.sync d;
  Disk.close d;
  let d2 = Disk.open_file path in
  Tutil.check_int "count persisted" 2 (Disk.page_count d2);
  Alcotest.(check bytes) "data persisted" page (Disk.read d2 n1);
  Disk.close d2

let disk_range_checks () =
  let d = Disk.in_memory () in
  (match Disk.read d 0 with
  | _ -> Alcotest.fail "read past end should raise"
  | exception Invalid_argument _ -> ());
  match Disk.write d 5 (Bytes.make Page.size ' ') with
  | _ -> Alcotest.fail "write past end+1 should raise"
  | exception Invalid_argument _ -> ()

let disk_truncate () =
  let d = Disk.in_memory () in
  ignore (Disk.allocate d);
  ignore (Disk.allocate d);
  Disk.truncate d 1;
  Tutil.check_int "truncated" 1 (Disk.page_count d)

(* -- buffer pool -------------------------------------------------------- *)

let pool_hit_miss () =
  let d = Disk.in_memory () in
  let p = Pool.create ~capacity:2 d in
  let f = Pool.allocate p in
  Pool.unpin p f;
  let before = Ode_util.Stats.snapshot () in
  Pool.with_page p 0 (fun _ -> ());
  let after = Ode_util.Stats.snapshot () in
  Tutil.check_int "pool hit" 1 Ode_util.Stats.(pool_hits (diff after before))

let pool_eviction_writes_back () =
  let d = Disk.in_memory () in
  let p = Pool.create ~capacity:2 d in
  for _ = 1 to 3 do
    let f = Pool.allocate p in
    Bytes.set (Pool.data f) 0 'D';
    Pool.mark_dirty p f;
    Pool.unpin p f
  done;
  (* Page 0 was evicted to make room; its dirty byte must be on disk. *)
  Tutil.check_bool "written back" true (Bytes.get (Disk.read d 0) 0 = 'D')

let pool_exhaustion () =
  let d = Disk.in_memory () in
  let p = Pool.create ~capacity:1 d in
  let f = Pool.allocate p in
  (match Pool.allocate p with
  | _ -> Alcotest.fail "expected Pool_exhausted"
  | exception Pool.Pool_exhausted -> ());
  Pool.unpin p f

let pool_flush_all () =
  let d = Disk.in_memory () in
  let p = Pool.create ~capacity:4 d in
  let f = Pool.allocate p in
  Bytes.set (Pool.data f) 10 'F';
  Pool.mark_dirty p f;
  Pool.unpin p f;
  Pool.flush_all p;
  Tutil.check_bool "flushed" true (Bytes.get (Disk.read d 0) 10 = 'F')

(* -- wal ------------------------------------------------------------------ *)

let wal_records =
  [
    Wal.Begin 1;
    Wal.Put (1, "key-a", "payload-a");
    Wal.Delete (1, "key-b");
    Wal.Commit (1, 0, 0);
    Wal.Checkpoint 1;
  ]

let wal_roundtrip_memory () =
  let w = Wal.in_memory () in
  List.iter (Wal.append w) wal_records;
  Wal.sync w;
  let got = ref [] in
  Wal.replay w (fun r -> got := r :: !got);
  Alcotest.(check int) "count" (List.length wal_records) (List.length !got);
  Tutil.check_bool "order and content" true (List.rev !got = wal_records)

let wal_roundtrip_file () =
  let dir = Tutil.temp_dir "wal" in
  let path = Filename.concat dir "wal.log" in
  let w = Wal.open_file path in
  List.iter (Wal.append w) wal_records;
  Wal.sync w;
  Wal.close w;
  let w2 = Wal.open_file path in
  let got = ref [] in
  Wal.replay w2 (fun r -> got := r :: !got);
  Tutil.check_bool "persisted" true (List.rev !got = wal_records);
  Wal.close w2

let wal_torn_tail_ignored () =
  let dir = Tutil.temp_dir "wal" in
  let path = Filename.concat dir "wal.log" in
  let w = Wal.open_file path in
  Wal.append w (Wal.Put (1, "k", "v"));
  Wal.sync w;
  Wal.close w;
  (* Simulate a torn write: garbage appended after the intact frame. *)
  let oc = Out_channel.open_gen [ Open_append; Open_binary ] 0o644 path in
  Out_channel.output_string oc "\042\000\000\000GARBAGE";
  Out_channel.close oc;
  let w2 = Wal.open_file path in
  let got = ref [] in
  Wal.replay w2 (fun r -> got := r :: !got);
  Tutil.check_int "only intact frame" 1 (List.length !got);
  (* And new appends after reopening are readable. *)
  Wal.append w2 (Wal.Commit (1, 0, 0));
  Wal.sync w2;
  let got2 = ref [] in
  Wal.replay w2 (fun r -> got2 := r :: !got2);
  Tutil.check_int "append after truncation" 2 (List.length !got2);
  Wal.close w2

let wal_reset () =
  let w = Wal.in_memory () in
  Wal.append w (Wal.Begin 7);
  Wal.sync w;
  Wal.reset w;
  let n = ref 0 in
  Wal.replay w (fun _ -> incr n);
  Tutil.check_int "empty after reset" 0 !n

let wal_unsynced_not_replayed () =
  let w = Wal.in_memory () in
  Wal.append w (Wal.Begin 9);
  (* no sync *)
  let n = ref 0 in
  Wal.replay w (fun _ -> incr n);
  Tutil.check_int "pending buffer invisible" 0 !n

let wal_pending_commits () =
  let w = Wal.in_memory () in
  Tutil.check_int "fresh log has none" 0 (Wal.pending_commits w);
  Wal.append w (Wal.Begin 1);
  Wal.append w (Wal.Put (1, "a", "x"));
  Tutil.check_int "non-commit records don't pend" 0 (Wal.pending_commits w);
  Wal.append w (Wal.Commit (1, 0, 0));
  Tutil.check_int "commit pends" 1 (Wal.pending_commits w);
  Wal.append w (Wal.Begin 2);
  Wal.append w (Wal.Commit (2, 0, 0));
  Tutil.check_int "second commit pends" 2 (Wal.pending_commits w);
  let before = Ode_util.Stats.snapshot () in
  Wal.sync w;
  let d = Ode_util.Stats.diff (Ode_util.Stats.snapshot ()) before in
  Tutil.check_int "one ack clears the batch" 0 (Wal.pending_commits w);
  Tutil.check_int "one physical sync" 1 (Ode_util.Stats.wal_syncs d);
  Tutil.check_int "a batch of 2 saved 1 sync" 1 (Ode_util.Stats.wal_sync_saved d);
  (* An empty ack is still a sync, but saves nothing and grows no group. *)
  let before = Ode_util.Stats.snapshot () in
  Wal.sync w;
  let d = Ode_util.Stats.diff (Ode_util.Stats.snapshot ()) before in
  Tutil.check_int "empty sync saves nothing" 0 (Ode_util.Stats.wal_sync_saved d)

let wal_reset_clears_pending () =
  let w = Wal.in_memory () in
  Wal.append w (Wal.Begin 3);
  Wal.append w (Wal.Commit (3, 0, 0));
  Tutil.check_int "pending before reset" 1 (Wal.pending_commits w);
  Wal.reset w;
  Tutil.check_int "reset discards pending" 0 (Wal.pending_commits w)

(* -- heap ------------------------------------------------------------------ *)

let heap_mem () = Heap.attach (Pool.create ~capacity:64 (Disk.in_memory ()))

let heap_basic () =
  let h = heap_mem () in
  let r1 = Heap.insert h "alpha" in
  let r2 = Heap.insert h "beta" in
  Alcotest.(check (option string)) "get 1" (Some "alpha") (Heap.get h r1);
  Alcotest.(check (option string)) "get 2" (Some "beta") (Heap.get h r2);
  Tutil.check_int "count" 2 (Heap.record_count h);
  Tutil.check_bool "delete" true (Heap.delete h r1);
  Alcotest.(check (option string)) "gone" None (Heap.get h r1);
  Tutil.check_int "count after delete" 1 (Heap.record_count h)

let heap_large_records () =
  let h = heap_mem () in
  let big = String.init 20_000 (fun i -> Char.chr (i mod 256)) in
  let r = Heap.insert h big in
  Alcotest.(check (option string)) "chunked roundtrip" (Some big) (Heap.get h r);
  let bigger = String.make 50_000 'Q' in
  let r2 = Heap.update h r bigger in
  Alcotest.(check (option string)) "chunked update" (Some bigger) (Heap.get h r2);
  Tutil.check_bool "delete frees" true (Heap.delete h r2);
  Alcotest.(check (option string)) "gone" None (Heap.get h r2)

let heap_update_moves () =
  let h = heap_mem () in
  let r = Heap.insert h "small" in
  (* Fill the page so growth forces relocation. *)
  for _ = 1 to 30 do
    ignore (Heap.insert h (String.make 120 'f'))
  done;
  let r' = Heap.update h r (String.make 3000 'G') in
  Alcotest.(check (option string)) "moved value" (Some (String.make 3000 'G')) (Heap.get h r')

let heap_iter () =
  let h = heap_mem () in
  let data = [ "one"; "two"; "three"; String.make 9000 'L' ] in
  List.iter (fun d -> ignore (Heap.insert h d)) data;
  let seen = ref [] in
  Heap.iter h (fun _ d -> seen := d :: !seen);
  Alcotest.(check int) "all records, chunks hidden" 4 (List.length !seen);
  Tutil.check_bool "payloads intact" true
    (List.sort compare !seen = List.sort compare data)

let heap_persistence () =
  let dir = Tutil.temp_dir "heap" in
  let path = Filename.concat dir "data.heap" in
  let d = Disk.open_file path in
  let pool = Pool.create ~capacity:32 d in
  let h = Heap.attach pool in
  let r = Heap.insert h "persistent" in
  let big = String.make 12_345 'B' in
  let rbig = Heap.insert h big in
  Heap.flush h;
  Disk.close d;
  let d2 = Disk.open_file path in
  let h2 = Heap.attach (Pool.create ~capacity:32 d2) in
  Alcotest.(check (option string)) "small persisted" (Some "persistent") (Heap.get h2 r);
  Alcotest.(check (option string)) "large persisted" (Some big) (Heap.get h2 rbig);
  Tutil.check_int "count rebuilt" 2 (Heap.record_count h2);
  Disk.close d2

let prop_heap_model =
  let ops_gen =
    QCheck.Gen.(
      list_size (int_bound 150)
        (frequency
           [
             (6, map (fun n -> `Insert (n mod 6000)) nat);
             (2, map (fun i -> `Delete i) (int_bound 60));
             (2, map2 (fun i n -> `Update (i, n mod 6000)) (int_bound 60) nat);
           ]))
  in
  QCheck.Test.make ~name:"heap matches model" ~count:60 (QCheck.make ops_gen) (fun ops ->
      let h = heap_mem () in
      let model = Hashtbl.create 16 in
      let handles = Array.make 64 None in
      let tag = ref 0 in
      List.iter
        (fun op ->
          incr tag;
          match op with
          | `Insert len ->
              let data = Printf.sprintf "%d:%s" !tag (String.make len 'd') in
              let r = Heap.insert h data in
              let slot = !tag mod 64 in
              (match handles.(slot) with
              | Some (old_r, _) when Hashtbl.mem model old_r -> ()
              | _ -> ());
              handles.(slot) <- Some (r, data);
              Hashtbl.replace model r data
          | `Delete i -> (
              match handles.(i) with
              | Some (r, _) when Hashtbl.mem model r ->
                  ignore (Heap.delete h r);
                  Hashtbl.remove model r;
                  handles.(i) <- None
              | _ -> ())
          | `Update (i, len) -> (
              match handles.(i) with
              | Some (r, _) when Hashtbl.mem model r ->
                  let data = Printf.sprintf "%d:%s" !tag (String.make len 'u') in
                  let r' = Heap.update h r data in
                  Hashtbl.remove model r;
                  Hashtbl.replace model r' data;
                  handles.(i) <- Some (r', data)
              | _ -> ()))
        ops;
      Hashtbl.fold (fun r data ok -> ok && Heap.get h r = Some data) model true
      && Heap.record_count h = Hashtbl.length model)

let suite =
  [
    ( "disk",
      [
        Alcotest.test_case "memory read/write" `Quick mem_disk_rw;
        Alcotest.test_case "file read/write persists" `Quick file_disk_rw;
        Alcotest.test_case "range checks" `Quick disk_range_checks;
        Alcotest.test_case "truncate" `Quick disk_truncate;
      ] );
    ( "buffer_pool",
      [
        Alcotest.test_case "hit/miss accounting" `Quick pool_hit_miss;
        Alcotest.test_case "eviction writes back dirty pages" `Quick pool_eviction_writes_back;
        Alcotest.test_case "exhaustion when all pinned" `Quick pool_exhaustion;
        Alcotest.test_case "flush_all" `Quick pool_flush_all;
      ] );
    ( "wal",
      [
        Alcotest.test_case "memory roundtrip" `Quick wal_roundtrip_memory;
        Alcotest.test_case "file roundtrip" `Quick wal_roundtrip_file;
        Alcotest.test_case "torn tail ignored" `Quick wal_torn_tail_ignored;
        Alcotest.test_case "reset empties" `Quick wal_reset;
        Alcotest.test_case "unsynced appends invisible" `Quick wal_unsynced_not_replayed;
        Alcotest.test_case "pending commits acked by one sync" `Quick wal_pending_commits;
        Alcotest.test_case "reset clears pending commits" `Quick wal_reset_clears_pending;
      ] );
    ( "heap",
      [
        Alcotest.test_case "insert/get/delete" `Quick heap_basic;
        Alcotest.test_case "large records chunk" `Quick heap_large_records;
        Alcotest.test_case "update may move" `Quick heap_update_moves;
        Alcotest.test_case "iter reassembles" `Quick heap_iter;
        Alcotest.test_case "persists across reopen" `Quick heap_persistence;
      ] );
    Tutil.qsuite "heap.props" [ prop_heap_model ];
  ]
