(** Blocking OCaml client for the ODE wire protocol.

    One [t] is one remote session: the server keeps your shell variables
    and explicit transaction between calls. All calls block until the
    response arrives or the timeout elapses ({!Timeout}).

    {2 Retries and failover}

    Transient failures — the server hung up (idle-timeout eviction,
    restart, crash) or refused the connection — are retried up to [retries]
    times with exponential backoff and jitter, rotating through the write
    pool ([host:port] followed by every [replicas] entry) on each attempt.
    A write answered with the "read-only replica" redirect burns a retry
    the same way, which is the failover path: when the primary dies and a
    standby is promoted, writes bounce off the remaining standbys until
    they land on the promoted one, then stick. A retried call runs in a
    fresh session — empty variable bindings, no open transaction — exactly
    as if the eviction's rollback had been observed; and since a lost
    connection cannot prove whether the server executed the request,
    retried writes may be applied twice. Callers needing exactly-once must
    make their programs idempotent.

    A first-committer-wins conflict (the server's retryable [Err_conflict]
    reply) also burns a retry, but without rotating endpoints or dropping
    the connection: the server already aborted the losing transaction, so
    the same request is simply re-executed on the same session after the
    jittered backoff — replaying the transaction against a fresh snapshot.
    Budget exhausted, the call raises {!Conflict} for the caller to replay
    at its own pace. For this to be sound, send an explicit transaction as
    {e one} request ("begin; ...; commit;"): a conflict spread across
    several requests leaves the replay without the earlier statements.

    {2 Read routing}

    When [replicas] is non-empty, {!query} is served from a replica
    connection, with read-your-writes stickiness: every response carries
    the server's commit LSN, the client tracks the highest LSN any write-
    pool response acknowledged, and a replica answer behind that watermark
    (or failing, or unreachable) silently falls back to the primary. *)

type t

exception Server_error of string
(** The server answered a request with an [Error] reply (parse error,
    constraint violation, ...). The connection stays usable. *)

exception Conflict of string
(** A first-committer-wins conflict survived the whole retry budget: every
    replay lost the race again. The transaction did not commit; the
    connection stays usable. Back off and replay, or give up. *)

exception Rejected of string
(** The handshake was refused: server busy, protocol version mismatch, or
    the peer is not an ODE server. *)

exception Disconnected of string
(** The connection died and the retry budget is exhausted. *)

exception Timeout
(** No response within the configured timeout. The connection state is
    indeterminate afterwards ({e the request may have executed}), so
    timeouts are never retried implicitly; {!close} and reconnect. *)

exception Pipeline_broken of { acked : (string, string) result list; pending : int }
(** The connection died mid-{!exec_many}. [acked] holds the per-request
    outcomes that were received, in request order — those requests
    definitely executed (and, under Full/Group durability, their commits
    are durable). [pending] counts the requests after them whose fate is
    unknown: the prefix of them that reached the server may have executed
    without an observable ack. *)

val connect :
  ?timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?replicas:(string * int) list ->
  host:string ->
  port:int ->
  unit ->
  t
(** [timeout] (seconds, default 30) bounds each send/receive; [retries]
    (default 4) is the transient-failure budget per call; [backoff]
    (seconds, default 0.05) the base retry delay, doubled per attempt
    (capped at 2s) and jittered. [replicas] are standby endpoints: read
    pool for {!query} and failover candidates for everything else. The
    initial connection to [host:port] is not retried. *)

val ping : ?timeout:float -> t -> unit

val exec : ?timeout:float -> t -> string -> string
(** Run a program remotely; returns its printed output. [?timeout]
    overrides the connection default for this call. *)

val exec_many : t -> string list -> (string, string) result list
(** Pipelined [exec]: send the whole batch in one write, then read the
    responses in order — one network round trip for N programs, and under
    the server's group durability one shared WAL fsync for the batch's
    autocommits. Per-request outcomes ([Ok output] / [Error rendered]), so
    one failing statement doesn't orphan the responses behind it. Keep
    batches modest (well under the server's per-connection flow-control
    cap, ~1 MiB of responses). There is no mid-batch reconnect or retry: a
    dead connection raises {!Pipeline_broken} with the acknowledged
    prefix. The one exception is a first-committer-wins conflict: once the
    batch has drained, each conflicted entry (already aborted server-side)
    is replayed individually with {!exec}'s backoff-and-retry, and a loss
    past the budget comes back as [Error ("conflict: " ^ msg)]. *)

val query : ?timeout:float -> t -> string -> string list
(** Run a bodiless [forall]; one rendered object per row. Served from a
    replica when the client was given [replicas] (see read routing above). *)

val dot : ?timeout:float -> t -> string -> string
(** Run a [.command] remotely. *)

val call : ?timeout:float -> t -> Protocol.op -> Protocol.reply
(** Low-level escape hatch: send any op through the write pool (with
    retries), get the raw reply (still checked for id match and framing). *)

val last_seen_lsn : t -> int
(** The read-your-writes watermark: the highest commit LSN any write-pool
    response carried. -1 before the first response. *)

val last_trace_id : t -> int
(** The client-assigned trace id of the most recent request (0 before the
    first). Grep server `.trace dump`s and the slow-query log for
    [Ode_util.Trace.id_to_string] of this value to find the request's
    spans — including the standby's apply span for a replicated write. *)

val close : t -> unit
(** Send a polite [Close] (best effort) and release the sockets.
    Idempotent. *)
