(** Blocking OCaml client for the ODE wire protocol.

    One [t] is one remote session: the server keeps your shell variables
    and explicit transaction between calls. All calls block until the
    response arrives or [timeout] elapses ({!Timeout}).

    If the server hangs up (idle-timeout eviction, restart), the next call
    transparently reconnects {e once} and retries — note that the fresh
    session has empty variable bindings and no open transaction, exactly as
    if the eviction's rollback had been observed. A second consecutive
    failure raises {!Disconnected}. *)

type t

exception Server_error of string
(** The server answered a request with an [Error] reply (parse error,
    constraint violation, ...). The connection stays usable. *)

exception Rejected of string
(** The handshake was refused: server busy, protocol version mismatch, or
    the peer is not an ODE server. *)

exception Disconnected of string
(** The connection died and the one permitted reconnect also failed. *)

exception Timeout
(** No response within the configured timeout. The connection state is
    indeterminate afterwards; {!close} and reconnect. *)

val connect : ?timeout:float -> host:string -> port:int -> unit -> t
(** [timeout] (seconds, default 30) bounds each send/receive. *)

val ping : t -> unit

val exec : t -> string -> string
(** Run a program remotely; returns its printed output. *)

val exec_many : t -> string list -> (string, string) result list
(** Pipelined [exec]: send the whole batch in one write, then read the
    responses in order — one network round trip for N programs, and under
    the server's group durability one shared WAL fsync for the batch's
    autocommits. Per-request outcomes ([Ok output] / [Error rendered]), so
    one failing statement doesn't orphan the responses behind it. Keep
    batches modest (well under the server's per-connection flow-control
    cap, ~1 MiB of responses); there is no mid-batch reconnect. *)

val query : t -> string -> string list
(** Run a bodiless [forall]; one rendered object per row. *)

val dot : t -> string -> string
(** Run a [.command] remotely. *)

val call : t -> Protocol.op -> Protocol.reply
(** Low-level escape hatch: send any op, get the raw reply (still checked
    for id match and framing). *)

val close : t -> unit
(** Send a polite [Close] (best effort) and release the socket.
    Idempotent. *)
