module Shell = Ode.Shell
module Stats = Ode_util.Stats
module Trace = Ode_util.Trace
module Histogram = Ode_util.Histogram

type t = {
  sid : int;
  db : Ode.Database.t;
  shell : Shell.t;
  out : Buffer.t; (* print output of the request being handled *)
}

let request_hist = Histogram.create "server.request"

let create ?(id = 0) db =
  let out = Buffer.create 256 in
  { sid = id; db; shell = Shell.create ~print:(Buffer.add_string out) db; out }

let id t = t.sid
let in_transaction t = Shell.in_transaction t.shell

let op_name : Protocol.op -> string = function
  | Ping -> "ping"
  | Exec _ -> "exec"
  | Query _ -> "query"
  | Dot _ -> "dot"
  | Close -> "close"

(* [detached] picks how a [Query] runs: in a detached read-only transaction
   (reader domains — a write attempt raises {!Ode.Types.Read_only_txn} out
   of here) or in an ordinary slot transaction (the writer, where queries
   whose methods write are legal). *)
let run ~detached t : Protocol.op -> Protocol.reply = function
  | Ping -> Pong
  | Exec src -> (
      Buffer.clear t.out;
      match Shell.exec_catching t.shell src with
      | Ok () -> Output (Buffer.contents t.out)
      | Error msg -> Error msg)
  | Query src -> (
      match Shell.query_rows ~detached t.shell src with
      | Ok rows -> Rows rows
      | Error msg -> Error msg)
  | Dot line -> (
      Buffer.clear t.out;
      match Shell.dot_command t.shell line with
      | Some out ->
          (* [.read] prints through the shell printer as it executes; fold
             that output in front of the command's own result. *)
          let printed = Buffer.contents t.out in
          Output (if printed = "" then out else printed ^ out)
      | None -> Error "not a dot command")
  | Close -> Output "bye"

let timed t (rq : Protocol.request) f =
  Trace.with_span ~cat:"server"
    ~args:[ ("session", string_of_int t.sid); ("op", op_name rq.rq_op) ]
    "server.request"
    (fun () -> Histogram.time request_hist f)

let finish t (rq : Protocol.request) reply =
  (* The LSN after handling: a write's ack names the commit it covers, a
     read names the position its answer reflects. *)
  { Protocol.rs_id = rq.rq_id; rs_lsn = Ode.Database.lsn t.db; rs_reply = reply }

let handle ?(count = true) t (rq : Protocol.request) : Protocol.response =
  if count then Stats.incr_server_requests ();
  (* Trigger actions fired by this request's commits print through the
     requesting session, not whichever session was created last. Installed
     only here, on the writer path: reader-domain requests cannot fire
     triggers, and a concurrent install would race the writer's. *)
  Ode.Database.set_action_printer t.db (Buffer.add_string t.out);
  finish t rq (timed t rq (fun () -> run ~detached:false t rq.rq_op))

let handle_read t (rq : Protocol.request) : Protocol.response =
  Stats.incr_server_requests ();
  finish t rq (timed t rq (fun () -> run ~detached:true t rq.rq_op))

let close t = Shell.rollback t.shell
