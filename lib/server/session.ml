module Shell = Ode.Shell
module Stats = Ode_util.Stats
module Trace = Ode_util.Trace
module Histogram = Ode_util.Histogram

type t = {
  sid : int;
  db : Ode.Database.t;
  shell : Shell.t;
  out : Buffer.t; (* print output of the request being handled *)
}

let request_hist = Histogram.create "server.request"

let create ?(id = 0) db =
  let out = Buffer.create 256 in
  { sid = id; db; shell = Shell.create ~print:(Buffer.add_string out) db; out }

let id t = t.sid
let in_transaction t = Shell.in_transaction t.shell

let op_name : Protocol.op -> string = function
  | Ping -> "ping"
  | Exec _ -> "exec"
  | Query _ -> "query"
  | Dot _ -> "dot"
  | Close -> "close"

let statement_of : Protocol.op -> string = function
  | Ping -> "ping"
  | Exec src -> src
  | Query src -> src
  | Dot line -> line
  | Close -> "close"

(* The shell renders a first-committer-wins abort with the load-bearing
   "conflict: " prefix; the wire protocol has a distinct retryable tag for
   it, which clients auto-retry. *)
let conflict_prefix = "conflict: "

let reply_error msg : Protocol.reply =
  if String.starts_with ~prefix:conflict_prefix msg then
    Err_conflict (String.sub msg (String.length conflict_prefix)
                    (String.length msg - String.length conflict_prefix))
  else Error msg

(* [detached] picks how a [Query] runs: in a detached read-only transaction
   (reader domains — a write attempt raises {!Ode.Types.Read_only_txn} out
   of here) or in an ordinary write transaction (the writer, where queries
   whose methods write are legal). *)
let run ~detached t : Protocol.op -> Protocol.reply = function
  | Ping -> Pong
  | Exec src -> (
      Buffer.clear t.out;
      match Shell.exec_catching t.shell src with
      | Ok () -> Output (Buffer.contents t.out)
      | Error msg -> reply_error msg)
  | Query src -> (
      match Shell.query_rows ~detached t.shell src with
      | Ok rows -> Rows rows
      | Error msg -> reply_error msg)
  | Dot line -> (
      Buffer.clear t.out;
      match Shell.dot_command t.shell line with
      | Some out ->
          (* [.read] prints through the shell printer as it executes; fold
             that output in front of the command's own result. *)
          let printed = Buffer.contents t.out in
          Output (if printed = "" then out else printed ^ out)
      | None -> Error "not a dot command")
  | Close -> Output "bye"

(* One slow-query log line: everything an operator needs to find the
   request again — trace id, statement, queue-wait vs execute split, the
   executing domain, and (for queries) the per-plan-node profile that
   [Query.run] stashes domain-locally while the log is armed. *)
let log_slow t (rq : Protocol.request) ~queue_wait_ns ~exec_ns profile =
  let b = Buffer.create 256 in
  Printf.bprintf b "{\"ts\":%.6f,\"trace\":\"%s\",\"session\":%d,\"domain\":%d"
    (Unix.gettimeofday ())
    (Trace.id_to_string rq.rq_trace)
    t.sid
    (Domain.self () :> int);
  Printf.bprintf b ",\"op\":\"%s\",\"statement\":\"%s\"" (op_name rq.rq_op)
    (Ode_util.Metrics.json_escape (statement_of rq.rq_op));
  Printf.bprintf b ",\"queue_wait_ns\":%d,\"exec_ns\":%d" queue_wait_ns exec_ns;
  (match profile with
  | Some pf -> Printf.bprintf b ",\"profile\":%s" (Ode.Query.profile_to_json pf)
  | None -> ());
  Buffer.add_char b '}';
  Ode_util.Slowlog.record ~dur_ns:(queue_wait_ns + exec_ns) (Buffer.contents b)

(* The request's trace id is installed as the domain's ambient id for the
   duration, so the span below, every nested engine span, and the WAL
   commit record all carry the client-assigned id. *)
let timed t (rq : Protocol.request) ~queue_wait_ns f =
  Trace.with_trace_id rq.rq_trace (fun () ->
      Trace.with_span ~cat:"server"
        ~args:[ ("session", string_of_int t.sid); ("op", op_name rq.rq_op) ]
        "server.request"
        (fun () ->
          let t0 = Trace.now_ns () in
          let reply = Histogram.time request_hist f in
          let exec_ns = Trace.now_ns () - t0 in
          (* Always drain the profile stash: a fast armed request must not
             leave its profile behind for a later slow one to claim. *)
          let profile = Ode.Query.take_last_profile () in
          if queue_wait_ns + exec_ns >= Ode_util.Slowlog.threshold_ns () then
            (try log_slow t rq ~queue_wait_ns ~exec_ns profile with _ -> ());
          reply))

let finish t (rq : Protocol.request) reply =
  (* The LSN after handling: a write's ack names the commit it covers, a
     read names the position its answer reflects. *)
  { Protocol.rs_id = rq.rq_id; rs_lsn = Ode.Database.lsn t.db; rs_reply = reply }

let handle ?(count = true) ?(queue_wait_ns = 0) t (rq : Protocol.request) : Protocol.response =
  if count then Stats.incr_server_requests ();
  (* Trigger actions fired by this request's commits print through the
     requesting session, not whichever session was created last. Installed
     only here, on the writer path: reader-domain requests cannot fire
     triggers, and a concurrent install would race the writer's. *)
  Ode.Database.set_action_printer t.db (Buffer.add_string t.out);
  finish t rq (timed t rq ~queue_wait_ns (fun () -> run ~detached:false t rq.rq_op))

let handle_read ?(queue_wait_ns = 0) t (rq : Protocol.request) : Protocol.response =
  Stats.incr_server_requests ();
  finish t rq (timed t rq ~queue_wait_ns (fun () -> run ~detached:true t rq.rq_op))

let close t = Shell.rollback t.shell
