(** A reusable poll(2) readiness set.

    No descriptor-count ceiling beyond the process rlimit (unlike
    [Unix.select]'s FD_SETSIZE = 1024), and the buffers persist across
    calls, so a serving tick is allocation-free. [add] returns the entry's
    dense slot index (registration order, reset by {!clear}); after
    {!wait}, {!revents} for that index reports readiness. *)

type t

val create : unit -> t

val clear : t -> unit
(** Forget every registered descriptor (buffers are kept). *)

val add : t -> Unix.file_descr -> read:bool -> write:bool -> int
(** Register interest; returns the slot index of this entry. *)

val length : t -> int
(** Number of registered entries. *)

val wait : t -> timeout_ms:int -> int
(** Block until readiness or timeout ([0] = return immediately, [-1] =
    forever). Returns the number of ready descriptors; [EINTR] is reported
    as a timeout (0). The OCaml runtime lock is released during the wait.
    Raises [Failure] on other poll errors. *)

val revents : t -> int -> int
(** Readiness mask of a slot after {!wait} (0 = not ready). Error and
    hangup conditions set both bits, so the caller's next read/write
    surfaces the failure. *)

val is_readable : int -> bool
val is_writable : int -> bool
