(** WAL-shipping replication: the primary streams post-fsync commit batches
    to warm standbys, which replay them through the engine's recovery redo
    path and serve read-only queries.

    Topology: one primary owns writes; each replica opens its own copy of
    the store, announces its commit LSN, and receives either the missing
    WAL suffix (resume) or a checkpoint snapshot of the data files
    (bootstrap / too far behind), then a stream of batches — each shipped
    only {e after} the primary's fsync, so a replica can never hold a
    commit its primary could still lose. Replicas acknowledge applied
    batches; the primary tracks lag from the acks and can gate client acks
    on them (semi-sync — see {!Server}).

    This module is the protocol logic at both ends; the event-loop plumbing
    (listening, streaming, ack bookkeeping, promotion) lives in
    {!Server}. *)

exception Resync of string
(** The stream broke discipline (gap, overlap, torn frames, apply
    mismatch): tear the connection down and re-handshake from the exact
    local position. *)

(** {1 Primary side} *)

type hello_answer =
  | Resume of { from_lsn : int; to_lsn : int; backlog : string }
      (** stream from [from_lsn]: [backlog] is the already-durable suffix
          [(from_lsn, to_lsn]], possibly empty *)
  | Snapshot of { lsn : int; files : (string * string) list }
      (** the store's files at a fresh checkpoint, LSN included *)

val answer_hello : Ode.Database.t -> replica_lsn:int -> hello_answer
(** Decide what a replica at [replica_lsn] needs. Falls back to a snapshot
    when the WAL no longer reaches back to its position (checkpointed away)
    or the replica claims commits this primary never made durable
    (divergence). *)

val data_files : string list
val snapshot_files : string list

(** {1 Replica side} *)

type upstream = { up_fd : Unix.file_descr; up_rd : Protocol.reader }
(** An established replication connection (blocking during handshake; the
    serving loop switches it to non-blocking). Frames already buffered in
    [up_rd] must be drained before selecting on [up_fd]. *)

val bootstrap :
  ?attempts:int ->
  ?delay:float ->
  db_dir:string ->
  host:string ->
  port:int ->
  unit ->
  Ode.Database.t * upstream
(** Bring up a warm standby: open (creating if needed) the store in
    [db_dir], handshake with the primary's replication port, install a
    shipped snapshot if the primary sends one, and return the database —
    already marked read-only — with the live upstream. Retries connecting
    [attempts] times [delay] seconds apart (replicas routinely start before
    their primary). *)

val reconnect :
  host:string -> port:int -> Ode.Database.t -> (upstream, string) result
(** Re-handshake after a stream fault, keeping the open database. Only a
    resume is accepted; a primary that demands a snapshot means the replica
    fell behind a checkpoint and must be restarted (live store replacement
    is deliberately not attempted). *)

val apply_batch :
  Ode.Database.t ->
  from_lsn:int ->
  to_lsn:int ->
  data:string ->
  [ `Applied | `Duplicate ]
(** Replay one shipped batch ({!Ode.Database.apply_replicated}, timed into
    the [repl.apply] histogram). A batch at or below the local position is
    skipped as a duplicate (redelivery after resync — counted, not an
    error); a gap, overlap, torn frame, or an apply landing off the
    advertised LSN raises {!Resync}. *)

(**/**)

val install_snapshot : db_dir:string -> (string * string) list -> unit
val handshake :
  host:string -> port:int -> lsn:int -> upstream * Protocol.repl_msg
