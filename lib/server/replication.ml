(* WAL-shipping replication, both ends.

   Primary side: [answer_hello] computes what a connecting replica needs —
   the WAL suffix after its LSN when the log still reaches back that far, a
   store snapshot otherwise — and the server's feeder streams post-fsync
   batches after that. Replica side: [bootstrap] opens (or installs) the
   local store and completes the handshake; [apply_batch] replays one
   shipped batch with strict LSN discipline. Everything here is
   single-threaded, driven by the server's event loop. *)

module Db = Ode.Database
module Wal = Ode_storage.Wal
module Stats = Ode_util.Stats
module Codec = Ode_util.Codec

let h_apply = Ode_util.Histogram.create "repl.apply"

exception Resync of string

(* The store files a snapshot carries. The WAL and its LSN sidecar ride
   along so the installed directory is exactly the primary's post-checkpoint
   state, sidecar invariants included (the pair reconciles to the exact LSN
   even when the primary's last truncation was lost). *)
let data_files = [ "objects.heap"; "directory.bpt"; "indexes.bpt" ]
let snapshot_files = data_files @ [ "wal.log"; "wal.log.lsn" ]

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> Some s
  | exception Sys_error _ -> None

let write_file path data =
  let oc = Out_channel.open_bin path in
  Out_channel.output_string oc data;
  Out_channel.close oc

(* -- primary side -------------------------------------------------------- *)

type hello_answer =
  | Resume of { from_lsn : int; to_lsn : int; backlog : string }
  | Snapshot of { lsn : int; files : (string * string) list }

(* What a replica announcing [replica_lsn] needs. Resuming ships the log
   suffix after its position; if the log was checkpointed past it (or the
   replica claims commits we never made durable — divergence after an
   unreplicated promotion), take a fresh checkpoint and ship the files.
   Runs between requests on the event loop; a checkpoint mid-handshake is
   safe even while a session holds an open transaction (deferred-apply:
   uncommitted writes live in the write set, not the pages). *)
let answer_hello db ~replica_lsn =
  let durable = Db.durable_lsn db in
  match if replica_lsn > durable then None else Db.wal_tail db ~lsn:replica_lsn with
  | Some backlog -> Resume { from_lsn = replica_lsn; to_lsn = durable; backlog }
  | None ->
      let dir =
        match Db.dir db with
        | Some d -> d
        | None -> invalid_arg "replication: an in-memory database cannot ship snapshots"
      in
      Db.checkpoint db;
      let files =
        List.filter_map
          (fun name ->
            match read_file (Filename.concat dir name) with
            | Some data -> Some (name, data)
            | None -> None)
          snapshot_files
      in
      Stats.incr_repl_snapshots_sent ();
      Snapshot { lsn = Db.lsn db; files }

(* -- replica side -------------------------------------------------------- *)

type upstream = { up_fd : Unix.file_descr; up_rd : Protocol.reader }

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

let rec write_all fd s pos len =
  if len > 0 then
    match Unix.write_substring fd s pos len with
    | exception Unix.Unix_error (EINTR, _, _) -> write_all fd s pos len
    | n -> write_all fd s (pos + n) (len - n)

(* Blocking frame read during handshake (the socket is made non-blocking
   only once the loop takes over). *)
let rec next_msg fd rd buf =
  match Protocol.next_frame rd with
  | Some body -> Protocol.decode_repl body
  | None -> (
      match Unix.read fd buf 0 (Bytes.length buf) with
      | exception Unix.Unix_error (EINTR, _, _) -> next_msg fd rd buf
      | 0 -> raise (Resync "upstream closed during handshake")
      | n ->
          Protocol.feed rd buf n;
          next_msg fd rd buf)

let connect_fd ?(timeout = 30.) ~host ~port () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    fd
  with e ->
    close_fd fd;
    raise e

(* Open the replication connection and announce [lsn]; returns the upstream
   and the primary's first message (resume point or snapshot). Any batches
   the primary pipelined behind it stay buffered in the reader. *)
let handshake ~host ~port ~lsn =
  let fd = connect_fd ~host ~port () in
  try
    let rd = Protocol.reader ~max_len:Protocol.repl_max_frame_len () in
    write_all fd Protocol.repl_hello 0 Protocol.repl_hello_len;
    let b = Buffer.create 16 in
    Protocol.encode_repl b (Protocol.R_hello lsn);
    let s = Buffer.contents b in
    write_all fd s 0 (String.length s);
    let msg = next_msg fd rd (Bytes.create 65536) in
    ({ up_fd = fd; up_rd = rd }, msg)
  with e ->
    close_fd fd;
    raise e

(* Install a shipped snapshot: wipe the five store files and write the
   primary's copies. The directory then opens to a byte-faithful copy of
   the primary's checkpointed state — same oids, same LSN — so subsequent
   WAL batches redo cleanly. *)
let install_snapshot ~db_dir files =
  if not (Sys.file_exists db_dir) then Sys.mkdir db_dir 0o755;
  List.iter
    (fun name ->
      let p = Filename.concat db_dir name in
      if Sys.file_exists p then Sys.remove p)
    snapshot_files;
  List.iter (fun (name, data) -> write_file (Filename.concat db_dir name) data) files

(* Bring up a warm standby: open (or create) the local store, announce its
   LSN, install a snapshot if the primary says so, and return the opened
   database (read-only) plus the established upstream. Retries the initial
   connection — replicas routinely start before their primary listens. *)
let bootstrap ?(attempts = 40) ?(delay = 0.25) ~db_dir ~host ~port () =
  let rec connect_retry n =
    match
      let db = Db.open_ db_dir in
      (db, (try handshake ~host ~port ~lsn:(Db.lsn db) with e -> Db.close db; raise e))
    with
    | v -> v
    | exception Unix.Unix_error ((ECONNREFUSED | ENETUNREACH | ETIMEDOUT), _, _) when n > 1 ->
        Unix.sleepf delay;
        connect_retry (n - 1)
  in
  let db, (up, msg) = connect_retry attempts in
  let db =
    match msg with
    | Protocol.R_resume lsn ->
        if lsn <> Db.lsn db then begin
          close_fd up.up_fd;
          Db.close db;
          raise (Resync (Printf.sprintf "primary resumed at %d, we are at %d" lsn (Db.lsn db)))
        end;
        db
    | Protocol.R_snapshot (lsn, files) ->
        (* Discard the local store without checkpointing it (its history is
           being replaced wholesale) and open the installed copy. *)
        Db.crash db;
        install_snapshot ~db_dir files;
        let db = Db.open_ db_dir in
        if Db.lsn db <> lsn then begin
          close_fd up.up_fd;
          Db.close db;
          raise
            (Resync (Printf.sprintf "snapshot at %d opened to lsn %d" lsn (Db.lsn db)))
        end;
        db
    | _ ->
        close_fd up.up_fd;
        Db.close db;
        raise (Resync "unexpected reply to replication hello")
  in
  Db.set_read_only db true;
  (db, up)

(* Re-handshake after a stream fault, keeping the open database: only a
   resume is acceptable — a snapshot would mean replacing the store under a
   live server, which we refuse (restart the replica instead). *)
let reconnect ~host ~port db =
  match handshake ~host ~port ~lsn:(Db.lsn db) with
  | up, Protocol.R_resume lsn when lsn = Db.lsn db -> Ok up
  | up, _ ->
      close_fd up.up_fd;
      Error "primary cannot resume our position (snapshot required; restart the replica)"
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | exception Resync msg -> Error msg

(* Apply one shipped batch. LSN discipline: a batch entirely at or below our
   position is a duplicate (redelivery after a resync) and is skipped; a
   batch starting exactly at our position applies; anything else — a gap, a
   partial overlap, torn or corrupt frames, or an apply that lands off the
   advertised [to_lsn] — raises {!Resync}, and the caller tears the stream
   down and re-handshakes from its exact position. *)
let apply_batch db ~from_lsn ~to_lsn ~data =
  let cur = Db.lsn db in
  if to_lsn <= cur then begin
    Stats.incr_repl_dup_batches ();
    `Duplicate
  end
  else if from_lsn <> cur then
    raise (Resync (Printf.sprintf "batch (%d,%d] does not abut position %d" from_lsn to_lsn cur))
  else begin
    let records = ref [] in
    let consumed =
      match Wal.scan data (Some (fun r -> records := r :: !records)) with
      | n -> n
      | exception Codec.Corrupt msg -> raise (Resync ("corrupt batch: " ^ msg))
    in
    if consumed <> String.length data then
      raise (Resync (Printf.sprintf "torn batch: %d of %d bytes intact" consumed (String.length data)));
    Ode_util.Histogram.time h_apply (fun () -> Db.apply_replicated db (List.rev !records));
    Stats.incr_repl_batches_applied ();
    let got = Db.lsn db in
    if got <> to_lsn then
      raise (Resync (Printf.sprintf "batch advertised %d but applied to %d" to_lsn got));
    `Applied
  end
