/* poll(2) for the serving event loop.
 *
 * Unix.select caps the universe at FD_SETSIZE (1024) descriptors and pays
 * O(universe) per call; poll takes an explicit array and has no ceiling
 * short of the process rlimit. The binding keeps the interface deliberately
 * dumb: three parallel arrays (fds, interest masks, readiness masks) and a
 * length, so the OCaml side can reuse buffers across iterations without
 * allocating per tick.
 *
 * Interest/readiness masks: bit 0 = readable, bit 1 = writable. Error
 * conditions (POLLERR/POLLHUP/POLLNVAL) are folded into both bits — the
 * caller's next read/write on that fd surfaces the actual error, which is
 * how the event loop already handles failure.
 *
 * The runtime lock is released around the syscall so reader domains keep
 * executing requests while the writer domain sleeps in poll.
 */

#include <poll.h>
#include <errno.h>
#include <string.h>
#include <stdlib.h>

#include <caml/mlvalues.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/threads.h>

CAMLprim value ode_poll_stub_native(value v_fds, value v_events, value v_revents,
                                    value v_len, value v_timeout_ms)
{
  CAMLparam5(v_fds, v_events, v_revents, v_len, v_timeout_ms);
  int n = Int_val(v_len);
  int timeout = Int_val(v_timeout_ms);
  struct pollfd *pfds = NULL;
  int i, r;

  if (n < 0 || n > (int)Wosize_val(v_fds) || n > (int)Wosize_val(v_events) ||
      n > (int)Wosize_val(v_revents))
    caml_invalid_argument("poll: length exceeds buffer");

  if (n > 0) {
    pfds = malloc(sizeof(struct pollfd) * (size_t)n);
    if (pfds == NULL) caml_failwith("poll: out of memory");
    for (i = 0; i < n; i++) {
      int ev = Int_val(Field(v_events, i));
      pfds[i].fd = Int_val(Field(v_fds, i));
      pfds[i].events = (short)((ev & 1 ? POLLIN : 0) | (ev & 2 ? POLLOUT : 0));
      pfds[i].revents = 0;
    }
  }

  caml_release_runtime_system();
  r = poll(pfds, (nfds_t)n, timeout);
  caml_acquire_runtime_system();

  /* EINTR counts as a timeout: the loop re-checks its stop/promote flags
     every iteration anyway, which is all a signal needs. */
  if (r < 0 && errno == EINTR) r = 0;
  if (r < 0) {
    int e = errno;
    free(pfds);
    caml_failwith(strerror(e));
  }

  for (i = 0; i < n; i++) {
    int rv = (r == 0) ? 0 : pfds[i].revents;
    int bits = 0;
    if (rv & (POLLIN | POLLHUP | POLLERR | POLLNVAL)) bits |= 1;
    if (rv & (POLLOUT | POLLHUP | POLLERR | POLLNVAL)) bits |= 2;
    Field(v_revents, i) = Val_int(bits);
  }
  free(pfds);
  CAMLreturn(Val_int(r));
}

CAMLprim value ode_poll_stub_bytecode(value *argv, int argn)
{
  (void)argn;
  return ode_poll_stub_native(argv[0], argv[1], argv[2], argv[3], argv[4]);
}
