(* Blocking client: synchronous request/response over one socket, with a
   configurable retry budget. Timeouts ride on SO_RCVTIMEO/SO_SNDTIMEO, so a
   stuck server surfaces as Timeout instead of a hung process.

   Failover: the write pool is the primary followed by the [replicas] — a
   transient connection failure or a "read-only replica" redirect rotates to
   the next endpoint with exponential backoff and jitter, which is exactly
   the promotion dance: the old primary dies, writes bounce off standbys
   until one is promoted, then stick there. Reads route to a replica
   connection when [replicas] were given, with read-your-writes stickiness:
   every response carries the server's commit LSN, the client remembers the
   highest it has seen from the write pool, and a replica answer behind that
   watermark is discarded in favor of the primary. *)

exception Server_error of string
exception Conflict of string
exception Rejected of string
exception Disconnected of string
exception Timeout

exception Pipeline_broken of { acked : (string, string) result list; pending : int }

type t = {
  endpoints : (string * int) array; (* write pool: primary first, then replicas *)
  mutable active : int;             (* current write endpoint *)
  replicas : (string * int) array;  (* read pool *)
  mutable ractive : int;
  timeout : float;
  retries : int;
  backoff : float;
  mutable fd : Unix.file_descr option;  (* write-pool connection *)
  mutable rfd : Unix.file_descr option; (* read-pool connection *)
  mutable proto : int;  (* negotiated version of [fd] *)
  mutable rproto : int; (* negotiated version of [rfd] *)
  mutable next_id : int;
  mutable seen_lsn : int; (* read-your-writes watermark *)
  mutable last_trace : int; (* trace id of the most recent request *)
  jitter : Random.State.t;
}

(* Raised internally when the peer hangs up mid-exchange; converted to a
   rotate-and-retry or Disconnected. *)
exception Conn_lost of string

let rec write_all fd s pos len =
  if len > 0 then
    match Unix.write_substring fd s pos len with
    | exception Unix.Unix_error (EINTR, _, _) -> write_all fd s pos len
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> raise Timeout
    | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
        raise (Conn_lost "connection closed while sending")
    | n -> write_all fd s (pos + n) (len - n)

let read_exact fd n =
  let buf = Bytes.create n in
  let rec go pos =
    if pos < n then
      match Unix.read fd buf pos (n - pos) with
      | exception Unix.Unix_error (EINTR, _, _) -> go pos
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> raise Timeout
      | exception Unix.Unix_error (ECONNRESET, _, _) ->
          raise (Conn_lost "connection reset by server")
      | 0 -> raise (Conn_lost "connection closed by server")
      | k -> go (pos + k)
  in
  go 0;
  Bytes.to_string buf

let open_socket ~timeout ~host ~port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout;
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    write_all fd Protocol.hello 0 Protocol.hello_len;
    let reply =
      try read_exact fd Protocol.hello_reply_len
      with Conn_lost msg -> raise (Rejected ("handshake: " ^ msg))
    in
    let negotiated =
      match Protocol.parse_hello_reply reply with
      | Ok v -> v
      | Error msg -> raise (Rejected msg)
    in
    (fd, negotiated)
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let connect ?(timeout = 30.) ?(retries = 4) ?(backoff = 0.05) ?(replicas = []) ~host ~port
    () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let t =
    {
      endpoints = Array.of_list ((host, port) :: replicas);
      active = 0;
      replicas = Array.of_list replicas;
      ractive = 0;
      timeout;
      retries = max 0 retries;
      backoff = Float.max 0. backoff;
      fd = None;
      rfd = None;
      proto = Protocol.version;
      rproto = Protocol.version;
      next_id = 0;
      seen_lsn = -1;
      last_trace = 0;
      jitter = Random.State.make_self_init ();
    }
  in
  let fd, v = open_socket ~timeout ~host ~port in
  t.fd <- Some fd;
  t.proto <- v;
  t

let drop_socket t =
  match t.fd with
  | None -> ()
  | Some fd ->
      t.fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())

let drop_replica_socket t =
  match t.rfd with
  | None -> ()
  | Some fd ->
      t.rfd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())

let socket t =
  match t.fd with
  | Some fd -> fd
  | None ->
      (* First use after a lost connection: the current write endpoint. *)
      let host, port = t.endpoints.(t.active) in
      let fd, v = open_socket ~timeout:t.timeout ~host ~port in
      t.fd <- Some fd;
      t.proto <- v;
      fd

(* Every request gets a fresh client-assigned trace id (nonzero, from the
   client's own PRNG): the id rides the v3 frame, the server stamps it on
   the request's spans and into the WAL commit record, and [last_trace_id]
   lets a caller correlate its request with server-side dumps and logs. *)
let fresh_trace t =
  let rec go () =
    let id = Int64.to_int (Random.State.bits64 t.jitter) land max_int in
    if id = 0 then go () else id
  in
  let id = go () in
  t.last_trace <- id;
  id

(* One request/response over [fd], encoded per the connection's negotiated
   [version]. [timeout], when given, overrides the connection default for
   just this exchange. *)
let raw_exchange ?timeout ~version t fd op : Protocol.response =
  (match timeout with
  | Some s ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
  | None -> ());
  t.next_id <- t.next_id + 1;
  let id = t.next_id in
  let b = Buffer.create 256 in
  Protocol.encode_request ~version b { rq_id = id; rq_trace = fresh_trace t; rq_op = op };
  let frame = Buffer.contents b in
  write_all fd frame 0 (String.length frame);
  let len_bytes = read_exact fd 4 in
  let len = Ode_util.Codec.get_u32 (Ode_util.Codec.cursor len_bytes) in
  if len > Protocol.max_frame_len then
    raise (Ode_util.Codec.Corrupt (Printf.sprintf "client: %d-byte response frame" len));
  let resp = Protocol.decode_response (read_exact fd len) in
  (match timeout with
  | Some _ ->
      (* Restore the defaults for the next exchange. *)
      (try
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.timeout;
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.timeout
       with Unix.Unix_error _ -> ())
  | None -> ());
  if resp.rs_id <> id then
    raise
      (Ode_util.Codec.Corrupt
         (Printf.sprintf "client: response id %d for request %d" resp.rs_id id));
  resp

let exchange ?timeout t op =
  let fd = socket t in
  raw_exchange ?timeout ~version:t.proto t fd op

(* The rendered form of [Read_only_store]: this prefix is the server telling
   us to take our writes elsewhere (see lib/core/shell.ml). *)
let redirect_prefix = "read-only replica"

let is_redirect msg =
  String.length msg >= String.length redirect_prefix
  && String.sub msg 0 (String.length redirect_prefix) = redirect_prefix

let rotate_endpoint t = t.active <- (t.active + 1) mod Array.length t.endpoints

(* Exponential backoff with jitter: base * 2^attempt, capped, scaled by a
   uniform [0.5, 1.0) draw so a thundering herd of retrying clients spreads
   out. *)
let backoff_sleep t attempt =
  let d = Float.min (t.backoff *. (2. ** float_of_int attempt)) 2.0 in
  let d = d *. (0.5 +. Random.State.float t.jitter 0.5) in
  if d > 0. then Unix.sleepf d

(* Run [op] against the write pool, burning the retry budget on transient
   connection failures, read-only redirects (each rotates endpoints: the
   promoted standby is somewhere in the pool) and first-committer-wins
   conflicts (same endpoint, same session — re-executing the request
   replays the transaction against a fresh snapshot; with jittered backoff
   so two colliding writers do not collide again in lockstep). Successful
   responses advance the read-your-writes watermark. *)
let response ?timeout t op : Protocol.response =
  let rec go attempt =
    let retry msg =
      drop_socket t;
      if attempt >= t.retries then raise (Disconnected msg)
      else begin
        rotate_endpoint t;
        backoff_sleep t attempt;
        go (attempt + 1)
      end
    in
    match exchange ?timeout t op with
    | resp -> (
        match resp.rs_reply with
        | Protocol.Error msg
          when is_redirect msg && attempt < t.retries && Array.length t.endpoints > 1 ->
            (* A standby answered: rotate until we find the primary (or a
               freshly promoted one). *)
            drop_socket t;
            rotate_endpoint t;
            backoff_sleep t attempt;
            go (attempt + 1)
        | Protocol.Err_conflict msg ->
            (* The server already aborted the losing transaction; the
               session and socket are fine — retry right here. Budget
               exhausted: surface the retryable error for the caller to
               replay at its own pace. *)
            if attempt >= t.retries then raise (Conflict msg)
            else begin
              backoff_sleep t attempt;
              go (attempt + 1)
            end
        | _ ->
            if resp.rs_lsn > t.seen_lsn then t.seen_lsn <- resp.rs_lsn;
            resp)
    | exception Conn_lost msg -> retry msg
    | exception
        Unix.Unix_error
          ( (ECONNREFUSED | ECONNRESET | EHOSTUNREACH | ENETUNREACH | ETIMEDOUT | EPIPE),
            _,
            _ ) ->
        retry "connect failed"
  in
  go 0

let call ?timeout t op = (response ?timeout t op).rs_reply

let unexpected what (reply : Protocol.reply) =
  match reply with
  | Error msg -> raise (Server_error msg)
  (* [response] retries conflicts and raises {!Conflict} past the budget,
     so this arm only fires for replies that bypassed it. *)
  | Err_conflict msg -> raise (Conflict msg)
  | Pong -> failwith (what ^ ": unexpected Pong reply")
  | Output _ -> failwith (what ^ ": unexpected Output reply")
  | Rows _ -> failwith (what ^ ": unexpected Rows reply")

(* -- read routing --------------------------------------------------------- *)

(* Best-effort read against the read pool: [None] means "use the primary" —
   no replica reachable, the answer was behind the watermark (stickiness),
   or the replica session couldn't run the query (e.g. it references shell
   variables bound on the primary session). *)
let replica_response ?timeout t op =
  let n = Array.length t.replicas in
  let rec go tries =
    if tries = 0 then None
    else
      let fd =
        match t.rfd with
        | Some fd -> Some fd
        | None -> (
            let host, port = t.replicas.(t.ractive) in
            match open_socket ~timeout:t.timeout ~host ~port with
            | fd, v ->
                t.rfd <- Some fd;
                t.rproto <- v;
                Some fd
            | exception
                ( Rejected _
                | Unix.Unix_error
                    ( ( ECONNREFUSED | ECONNRESET | EHOSTUNREACH | ENETUNREACH
                      | ETIMEDOUT | EPIPE ),
                      _,
                      _ ) ) ->
                None)
      in
      match fd with
      | None ->
          t.ractive <- (t.ractive + 1) mod n;
          go (tries - 1)
      | Some fd -> (
          match raw_exchange ?timeout ~version:t.rproto t fd op with
          | resp -> if resp.rs_lsn >= t.seen_lsn then Some resp else None
          | exception (Conn_lost _ | Timeout) ->
              drop_replica_socket t;
              t.ractive <- (t.ractive + 1) mod n;
              go (tries - 1))
  in
  if n = 0 then None else go n

(* -- operations ----------------------------------------------------------- *)

let ping ?timeout t =
  match call ?timeout t Ping with Pong -> () | r -> unexpected "ping" r

let exec ?timeout t src =
  match call ?timeout t (Exec src) with Output s -> s | r -> unexpected "exec" r

let query ?timeout t src =
  match replica_response ?timeout t (Query src) with
  | Some { rs_reply = Rows rs; _ } -> rs
  | Some _ | None -> (
      match call ?timeout t (Query src) with
      | Rows rs -> rs
      | r -> unexpected "query" r)

let dot ?timeout t line =
  match call ?timeout t (Dot line) with Output s -> s | r -> unexpected "dot" r

let last_seen_lsn t = t.seen_lsn
let last_trace_id t = t.last_trace

(* Pipelining: write a whole batch of requests in one send, then collect
   the responses in order. The server executes them in arrival order within
   one scheduler tick, so under group durability the entire batch (plus
   whatever other connections contributed that tick) shares one WAL fsync.
   Errors come back per-request rather than as exceptions — a failed
   statement must not abandon the responses queued behind it. No implicit
   reconnect or retry: a batch is not idempotent-retry-safe. Instead, a
   connection that dies mid-pipeline raises {!Pipeline_broken} carrying the
   responses that did arrive, so the caller knows exactly which requests
   were acknowledged and how many are in doubt.

   First-committer-wins conflicts are the one retry exception: the server
   already aborted the losing statement (each pipelined [Exec] is its own
   transaction), so once the whole batch has drained off the socket, each
   conflicted entry is replayed individually through {!exec} — which
   carries its own backoff-and-retry budget — and its result spliced back
   into place. *)
let exec_many t srcs =
  if srcs = [] then []
  else begin
    let fd = socket t in
    let b = Buffer.create 1024 in
    let ids =
      List.map
        (fun src ->
          t.next_id <- t.next_id + 1;
          Protocol.encode_request ~version:t.proto b
            { rq_id = t.next_id; rq_trace = fresh_trace t; rq_op = Exec src };
          (t.next_id, src))
        srcs
    in
    let frame = Buffer.contents b in
    let total = List.length ids in
    let acked = ref [] in
    let broken msg =
      drop_socket t;
      ignore msg;
      raise (Pipeline_broken { acked = List.rev !acked; pending = total - List.length !acked })
    in
    (try write_all fd frame 0 (String.length frame) with Conn_lost msg -> broken msg);
    (* Phase 1: drain every response in order. A conflict cannot be retried
       here — a fresh request written now would interleave with responses
       still queued on the socket — so it is only marked for phase 2. *)
    let raws =
      List.map
        (fun (id, src) ->
          let r =
            try
              let len_bytes = read_exact fd 4 in
              let len = Ode_util.Codec.get_u32 (Ode_util.Codec.cursor len_bytes) in
              if len > Protocol.max_frame_len then
                raise
                  (Ode_util.Codec.Corrupt (Printf.sprintf "client: %d-byte response frame" len));
              let resp = Protocol.decode_response (read_exact fd len) in
              if resp.rs_id <> id then
                raise
                  (Ode_util.Codec.Corrupt
                     (Printf.sprintf "client: response id %d for request %d" resp.rs_id id));
              if resp.rs_lsn > t.seen_lsn then t.seen_lsn <- resp.rs_lsn;
              match resp.rs_reply with
              | Output s -> `Ok s
              | Error msg -> `Err msg
              | Err_conflict msg -> `Conflict (src, msg)
              | Pong | Rows _ -> failwith "exec_many: unexpected reply kind"
            with Conn_lost msg -> broken msg
          in
          (acked :=
             (match r with
             | `Ok s -> Ok s
             | `Err msg -> Error msg
             | `Conflict (_, msg) -> Error ("conflict: " ^ msg))
             :: !acked);
          r)
        ids
    in
    (* Phase 2: the socket is quiet again — replay the losers. *)
    List.map
      (function
        | `Ok s -> Ok s
        | `Err msg -> Error msg
        | `Conflict (src, _) -> (
            match exec t src with
            | s -> Ok s
            | exception Server_error m -> Error m
            | exception Conflict m -> Error ("conflict: " ^ m)))
      raws
  end

let close t =
  (match t.fd with
  | None -> ()
  | Some fd -> ( try ignore (raw_exchange ~version:t.proto t fd Close) with _ -> ()));
  drop_socket t;
  drop_replica_socket t
