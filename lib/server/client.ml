(* Blocking client: one socket, synchronous request/response, reconnect
   once on EOF. Timeouts ride on SO_RCVTIMEO/SO_SNDTIMEO, so a stuck server
   surfaces as Timeout instead of a hung process. *)

exception Server_error of string
exception Rejected of string
exception Disconnected of string
exception Timeout

type t = {
  host : string;
  port : int;
  timeout : float;
  mutable fd : Unix.file_descr option;
  mutable next_id : int;
}

(* Raised internally when the peer hangs up mid-exchange; converted to a
   reconnect-and-retry (once) or Disconnected. *)
exception Conn_lost of string

let rec write_all fd s pos len =
  if len > 0 then
    match Unix.write_substring fd s pos len with
    | exception Unix.Unix_error (EINTR, _, _) -> write_all fd s pos len
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> raise Timeout
    | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
        raise (Conn_lost "connection closed while sending")
    | n -> write_all fd s (pos + n) (len - n)

let read_exact fd n =
  let buf = Bytes.create n in
  let rec go pos =
    if pos < n then
      match Unix.read fd buf pos (n - pos) with
      | exception Unix.Unix_error (EINTR, _, _) -> go pos
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> raise Timeout
      | exception Unix.Unix_error (ECONNRESET, _, _) ->
          raise (Conn_lost "connection reset by server")
      | 0 -> raise (Conn_lost "connection closed by server")
      | k -> go (pos + k)
  in
  go 0;
  Bytes.to_string buf

let open_socket t =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.timeout;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.timeout;
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string t.host, t.port));
    write_all fd Protocol.hello 0 Protocol.hello_len;
    let reply =
      try read_exact fd Protocol.hello_reply_len
      with Conn_lost msg -> raise (Rejected ("handshake: " ^ msg))
    in
    (match Protocol.parse_hello_reply reply with
    | Ok () -> ()
    | Error msg -> raise (Rejected msg));
    fd
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let connect ?(timeout = 30.) ~host ~port () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let t = { host; port; timeout; fd = None; next_id = 0 } in
  t.fd <- Some (open_socket t);
  t

let drop_socket t =
  match t.fd with
  | None -> ()
  | Some fd ->
      t.fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())

let socket t =
  match t.fd with
  | Some fd -> fd
  | None -> (* first use after a lost connection *)
      let fd = open_socket t in
      t.fd <- Some fd;
      fd

let exchange t op =
  let fd = socket t in
  t.next_id <- t.next_id + 1;
  let id = t.next_id in
  let b = Buffer.create 256 in
  Protocol.encode_request b { rq_id = id; rq_op = op };
  let frame = Buffer.contents b in
  write_all fd frame 0 (String.length frame);
  let len_bytes = read_exact fd 4 in
  let len = Ode_util.Codec.get_u32 (Ode_util.Codec.cursor len_bytes) in
  if len > Protocol.max_frame_len then
    raise (Ode_util.Codec.Corrupt (Printf.sprintf "client: %d-byte response frame" len));
  let resp = Protocol.decode_response (read_exact fd len) in
  if resp.rs_id <> id then
    raise
      (Ode_util.Codec.Corrupt
         (Printf.sprintf "client: response id %d for request %d" resp.rs_id id));
  resp.rs_reply

let call t op =
  match exchange t op with
  | reply -> reply
  | exception Conn_lost _ -> (
      (* Reconnect once: the server evicted us (idle timeout, restart). The
         retry runs in a fresh session. *)
      drop_socket t;
      match exchange t op with
      | reply -> reply
      | exception Conn_lost msg ->
          drop_socket t;
          raise (Disconnected msg))

let unexpected what (reply : Protocol.reply) =
  match reply with
  | Error msg -> raise (Server_error msg)
  | Pong -> failwith (what ^ ": unexpected Pong reply")
  | Output _ -> failwith (what ^ ": unexpected Output reply")
  | Rows _ -> failwith (what ^ ": unexpected Rows reply")

(* Pipelining: write a whole batch of requests in one send, then collect
   the responses in order. The server executes them in arrival order within
   one scheduler tick, so under group durability the entire batch (plus
   whatever other connections contributed that tick) shares one WAL fsync.
   Errors come back per-request rather than as exceptions — a failed
   statement must not abandon the responses queued behind it. No implicit
   reconnect: a batch is not idempotent-retry-safe. *)
let exec_many t srcs =
  if srcs = [] then []
  else begin
    let fd = socket t in
    let b = Buffer.create 1024 in
    let ids =
      List.map
        (fun src ->
          t.next_id <- t.next_id + 1;
          Protocol.encode_request b { rq_id = t.next_id; rq_op = Exec src };
          t.next_id)
        srcs
    in
    let frame = Buffer.contents b in
    try
      write_all fd frame 0 (String.length frame);
      List.map
        (fun id ->
          let len_bytes = read_exact fd 4 in
          let len = Ode_util.Codec.get_u32 (Ode_util.Codec.cursor len_bytes) in
          if len > Protocol.max_frame_len then
            raise (Ode_util.Codec.Corrupt (Printf.sprintf "client: %d-byte response frame" len));
          let resp = Protocol.decode_response (read_exact fd len) in
          if resp.rs_id <> id then
            raise
              (Ode_util.Codec.Corrupt
                 (Printf.sprintf "client: response id %d for request %d" resp.rs_id id));
          match resp.rs_reply with
          | Output s -> Ok s
          | Error msg -> Error msg
          | Pong | Rows _ -> failwith "exec_many: unexpected reply kind")
        ids
    with Conn_lost msg ->
      drop_socket t;
      raise (Disconnected msg)
  end

let ping t = match call t Ping with Pong -> () | r -> unexpected "ping" r
let exec t src = match call t (Exec src) with Output s -> s | r -> unexpected "exec" r
let query t src = match call t (Query src) with Rows rs -> rs | r -> unexpected "query" r
let dot t line = match call t (Dot line) with Output s -> s | r -> unexpected "dot" r

let close t =
  (match t.fd with
  | None -> ()
  | Some _ -> ( try ignore (exchange t Close) with _ -> ()));
  drop_socket t
