(* Single-threaded Unix.select event loop. One iteration: accept what's
   pending, read what's readable (feeding each connection's frame reader and
   executing any complete requests inline), write what's writable, evict
   idlers. Requests run to completion on this one domain — sessions
   interleave between requests, never inside one, which is what lets the
   engine's process-global state (Stats/Trace/Histogram, buffer pool) stay
   lock-free.

   The iteration doubles as the group-commit batch scheduler. Replies are
   never written from the read phase — they accumulate in each connection's
   [out] buffer — and between the read phase and the write phase sits the
   ack point: one [Database.sync_commits] covering every autocommit executed
   this tick. So under [Group] durability a reply can only reach the socket
   after the fsync that made its commit durable, while a tick that executed
   N requests paid for one fsync, not N.

   Replication rides the same loop. A primary with a replication port keeps
   a second listener; each connected standby is a [downstream] whose buffer
   the WAL observer feeds with every post-fsync batch — the observer fires
   inside [Wal.sync], strictly after the barrier, so a standby can never
   hold a commit the primary could still lose. A replica runs the same loop
   with an [upstream] link instead: batches in, acks out, promotion on
   [.promote] or SIGUSR1. Under [sync_repl] the write phase additionally
   holds back any reply whose commit no streaming replica has acknowledged
   yet (semi-sync), degrading after a timeout rather than blocking writes
   forever on a dead standby. *)

module Stats = Ode_util.Stats
module Db = Ode.Database

type conn = {
  fd : Unix.file_descr;
  rd : Protocol.reader;
  out : Buffer.t;             (* encoded responses awaiting the socket *)
  mutable out_pos : int;      (* written prefix of [out] *)
  mutable state : [ `Hello | `Active of Session.t ];
  mutable closing : bool;     (* close once [out] drains *)
  mutable last : float;       (* last byte received (idle eviction) *)
  mutable sent_lsn : int;     (* highest commit LSN this conn's buffered
                                 replies acknowledge (semi-sync gate) *)
}

(* A standby streaming from us. *)
type downstream = {
  d_fd : Unix.file_descr;
  d_rd : Protocol.reader;
  d_out : Buffer.t;
  mutable d_out_pos : int;
  mutable d_state : [ `Magic | `Hello | `Streaming ];
  mutable d_acked : int;      (* highest LSN it acknowledged; -1 = none yet *)
}

(* The primary we stream from (replica role). *)
type upstream_state = {
  u_host : string;
  u_port : int;
  mutable u_link : Replication.upstream option; (* None while reconnecting *)
  u_out : Buffer.t;           (* pending acks *)
  mutable u_out_pos : int;
  mutable u_retry_at : float;
}

type t = {
  db : Ode.Database.t;
  listen_fd : Unix.file_descr;
  lport : int;
  repl_listen_fd : Unix.file_descr option;
  rport : int;                (* 0 when replication is not served *)
  sync_repl : bool;
  max_conns : int;
  idle_timeout : float;
  group_window : int;         (* force a sync once this many commits pend *)
  read_buf : bytes;           (* scratch shared by every read *)
  mutable conns : conn list;
  mutable downstreams : downstream list;
  mutable upstream : upstream_state option; (* Some = replica role *)
  mutable degraded : bool;    (* semi-sync waived until replicas catch up *)
  mutable gate_since : float option; (* oldest unmet semi-sync wait *)
  mutable promote_flag : bool; (* set by SIGUSR1, consumed by the loop *)
  mutable next_session : int;
  mutable stop : bool;
}

(* Stop reading a connection once this much response data is backed up;
   reads resume when the client drains its socket. *)
let out_cap = 1 lsl 20

(* A standby that stops draining its stream is cut off at this backlog; it
   will resync when it comes back. *)
let downstream_out_cap = 64 * 1024 * 1024
let max_downstreams = 8

(* Bounded flush window for graceful shutdown. *)
let drain_deadline = 5.0

(* Semi-sync degrade: how long client acks may wait on replica acks before
   the gate opens (and [repl.sync_degraded] counts the event). *)
let sync_repl_timeout = 5.0

let port t = t.lport
let repl_port t = t.rport
let connections t = List.length t.conns
let shutdown t = t.stop <- true

let handle_signals t =
  let h = Sys.Signal_handle (fun _ -> shutdown t) in
  Sys.set_signal Sys.sigint h;
  Sys.set_signal Sys.sigterm h;
  (* Promotion by signal: the handler only sets a flag; the loop promotes
     between iterations. Harmless on a primary. *)
  Sys.set_signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> t.promote_flag <- true))

let out_pending c = Buffer.length c.out - c.out_pos
let d_pending d = Buffer.length d.d_out - d.d_out_pos
let u_pending u = Buffer.length u.u_out - u.u_out_pos

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

let drop t c =
  (match c.state with `Active s -> Session.close s | `Hello -> ());
  close_fd c.fd;
  t.conns <- List.filter (fun c' -> c' != c) t.conns

let drop_downstream t d =
  close_fd d.d_fd;
  t.downstreams <- List.filter (fun d' -> d' != d) t.downstreams

let is_primary t = t.upstream = None

(* -- replication: primary side ------------------------------------------- *)

(* The WAL observer: called inside [Wal.sync] after the barrier, with the
   frames covering commits (from_lsn, to_lsn]. Only enqueues — the sockets
   are serviced by the loop's write phase. *)
let feed t ~data ~from_lsn ~to_lsn =
  List.iter
    (fun d ->
      if d.d_state = `Streaming then begin
        Protocol.encode_repl d.d_out (Protocol.R_batch (from_lsn, to_lsn, data));
        Stats.incr_repl_batches_sent ();
        Stats.add_repl_bytes_sent (String.length data)
      end)
    t.downstreams

let rec accept_repl t lfd =
  match Unix.accept ~cloexec:true lfd with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (EINTR, _, _) -> accept_repl t lfd
  | fd, _ ->
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      (* A replica does not serve replicas (no cascading) — and a full house
         just hangs up; the standby's bootstrap retries. *)
      if Db.read_only t.db || List.length t.downstreams >= max_downstreams then close_fd fd
      else
        t.downstreams <-
          {
            d_fd = fd;
            d_rd = Protocol.reader ~max_len:Protocol.repl_max_frame_len ();
            d_out = Buffer.create 4096;
            d_out_pos = 0;
            d_state = `Magic;
            d_acked = -1;
          }
          :: t.downstreams;
      accept_repl t lfd

(* Advance a downstream's handshake and consume its acks. Anything
   malformed drops the connection — the standby resyncs. *)
let process_downstream t d =
  try
    (match d.d_state with
    | `Magic -> (
        match Protocol.take d.d_rd Protocol.repl_hello_len with
        | None -> ()
        | Some s -> (
            match Protocol.parse_repl_hello s with
            | Ok () -> d.d_state <- `Hello
            | Error _ -> raise Exit))
    | _ -> ());
    (match d.d_state with
    | `Hello -> (
        match Protocol.next_frame d.d_rd with
        | None -> ()
        | Some body -> (
            match Protocol.decode_repl body with
            | Protocol.R_hello lsn -> (
                (* [answer_hello] may checkpoint (snapshot path); the sync
                   inside feeds the *other*, already-streaming downstreams —
                   this one only starts receiving batches once marked
                   [`Streaming] below, right after its backlog. *)
                match Replication.answer_hello t.db ~replica_lsn:lsn with
                | Replication.Resume { from_lsn; to_lsn; backlog } ->
                    Protocol.encode_repl d.d_out (Protocol.R_resume from_lsn);
                    if String.length backlog > 0 then begin
                      Protocol.encode_repl d.d_out
                        (Protocol.R_batch (from_lsn, to_lsn, backlog));
                      Stats.incr_repl_batches_sent ();
                      Stats.add_repl_bytes_sent (String.length backlog)
                    end;
                    (* It proved possession up to [from_lsn]. *)
                    d.d_acked <- from_lsn;
                    d.d_state <- `Streaming
                | Replication.Snapshot { lsn; files } ->
                    Protocol.encode_repl d.d_out (Protocol.R_snapshot (lsn, files));
                    d.d_state <- `Streaming)
            | _ -> raise Exit))
    | _ -> ());
    if d.d_state = `Streaming then begin
      let rec acks () =
        match Protocol.next_frame d.d_rd with
        | None -> ()
        | Some body ->
            (match Protocol.decode_repl body with
            | Protocol.R_ack lsn ->
                Stats.incr_repl_acks ();
                if lsn > d.d_acked then d.d_acked <- lsn
            | _ -> raise Exit);
            acks ()
      in
      acks ()
    end
  with Exit | Ode_util.Codec.Corrupt _ -> drop_downstream t d

let handle_downstream_read t d =
  match Unix.read d.d_fd t.read_buf 0 (Bytes.length t.read_buf) with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> drop_downstream t d
  | 0 -> drop_downstream t d
  | n ->
      Stats.add_server_bytes_in n;
      Protocol.feed d.d_rd t.read_buf n;
      process_downstream t d

let handle_downstream_write t d =
  let data = Buffer.contents d.d_out in
  match Unix.write_substring d.d_fd data d.d_out_pos (String.length data - d.d_out_pos) with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> drop_downstream t d
  | n ->
      Stats.add_server_bytes_out n;
      d.d_out_pos <- d.d_out_pos + n;
      if d.d_out_pos = Buffer.length d.d_out then begin
        Buffer.clear d.d_out;
        d.d_out_pos <- 0
      end

(* Highest LSN any streaming replica acknowledged: classic semi-sync wants
   at least one standby holding the commit, not all of them. *)
let best_acked t =
  List.fold_left
    (fun acc d -> if d.d_state = `Streaming then max acc d.d_acked else acc)
    (-1) t.downstreams

(* -- replication: replica side ------------------------------------------- *)

let queue_ack t u = Protocol.encode_repl u.u_out (Protocol.R_ack (Db.lsn t.db))

let upstream_fault _t u reason =
  (match u.u_link with Some l -> close_fd l.Replication.up_fd | None -> ());
  u.u_link <- None;
  Buffer.clear u.u_out;
  u.u_out_pos <- 0;
  Stats.incr_repl_resyncs ();
  u.u_retry_at <- Unix.gettimeofday () +. 1.0;
  Printf.eprintf "replication: upstream lost (%s); retrying\n%!" reason

(* Drain every complete frame buffered from the primary, applying batches
   and queueing an ack per batch. Stale reads keep working throughout. *)
let process_upstream t u link =
  let rec go () =
    match Protocol.next_frame link.Replication.up_rd with
    | None -> ()
    | Some body ->
        (match Protocol.decode_repl body with
        | Protocol.R_batch (from_lsn, to_lsn, data) ->
            (match Replication.apply_batch t.db ~from_lsn ~to_lsn ~data with
            | `Applied | `Duplicate -> queue_ack t u)
        | _ -> raise (Replication.Resync "unexpected message from primary"));
        go ()
  in
  try go () with
  | Replication.Resync msg -> upstream_fault t u msg
  | Ode_util.Codec.Corrupt msg -> upstream_fault t u msg

let handle_upstream_read t u link =
  match Unix.read link.Replication.up_fd t.read_buf 0 (Bytes.length t.read_buf) with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EPIPE | ETIMEDOUT), _, _) ->
      upstream_fault t u "connection reset"
  | 0 -> upstream_fault t u "primary closed the stream"
  | n ->
      Stats.add_server_bytes_in n;
      Protocol.feed link.Replication.up_rd t.read_buf n;
      process_upstream t u link

let handle_upstream_write t u link =
  let data = Buffer.contents u.u_out in
  match
    Unix.write_substring link.Replication.up_fd data u.u_out_pos
      (String.length data - u.u_out_pos)
  with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
      upstream_fault t u "connection reset"
  | n ->
      Stats.add_server_bytes_out n;
      u.u_out_pos <- u.u_out_pos + n;
      if u.u_out_pos = Buffer.length u.u_out then begin
        Buffer.clear u.u_out;
        u.u_out_pos <- 0
      end

(* Re-handshake after a fault. [Replication.reconnect] connects with a
   blocking socket — on loopback a dead primary refuses instantly, so the
   loop stalls only when the primary is reachable but wedged. *)
let try_reconnect t u =
  if u.u_link = None && Unix.gettimeofday () >= u.u_retry_at then
    match Replication.reconnect ~host:u.u_host ~port:u.u_port t.db with
    | Ok link ->
        Unix.set_nonblock link.Replication.up_fd;
        u.u_link <- Some link;
        queue_ack t u;
        (* Batches the primary pipelined behind the resume reply. *)
        process_upstream t u link
    | Error msg ->
        u.u_retry_at <- Unix.gettimeofday () +. 2.0;
        Printf.eprintf "replication: reconnect failed (%s)\n%!" msg

(* -- promotion and introspection ----------------------------------------- *)

let promote t =
  match t.upstream with
  | None -> Stdlib.Error "not a replica (already primary)"
  | Some u ->
      (match u.u_link with Some l -> close_fd l.Replication.up_fd | None -> ());
      t.upstream <- None;
      Db.set_read_only t.db false;
      Stdlib.Ok (Printf.sprintf "promoted to primary at lsn %d" (Db.lsn t.db))

let replication_report t =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  (match t.upstream with
  | Some u ->
      add "role           replica of %s:%d (%s)\n" u.u_host u.u_port
        (match u.u_link with Some _ -> "connected" | None -> "disconnected, retrying")
  | None -> add "role           primary\n");
  add "lsn            %d\n" (Db.lsn t.db);
  add "durable_lsn    %d\n" (Db.durable_lsn t.db);
  if is_primary t then begin
    add "sync_repl      %s%s\n"
      (if t.sync_repl then "on" else "off")
      (if t.degraded then " (degraded)" else "");
    add "replicas       %d\n" (List.length t.downstreams);
    let durable = Db.durable_lsn t.db in
    List.iter
      (fun d ->
        match d.d_state with
        | `Streaming when d.d_acked >= 0 ->
            add "  streaming    acked %d (lag %d commits, %d bytes queued)\n" d.d_acked
              (max 0 (durable - d.d_acked))
              (d_pending d)
        | `Streaming -> add "  streaming    no ack yet (%d bytes queued)\n" (d_pending d)
        | `Magic | `Hello -> add "  handshaking\n")
      t.downstreams
  end;
  Buffer.contents b

(* Dot commands that need the server, not just the session. *)
let server_dot t line : Protocol.reply option =
  match String.trim line with
  | ".promote" -> (
      match promote t with
      | Ok msg -> Some (Protocol.Output (msg ^ "\n"))
      | Error msg -> Some (Protocol.Error msg))
  | ".replication" -> Some (Protocol.Output (replication_report t))
  | _ -> None

(* -- semi-sync gate ------------------------------------------------------- *)

(* Replies covering commits past what the replicas acknowledged wait in
   their buffers. *)
let gated t c =
  t.sync_repl && is_primary t && (not t.degraded) && c.sent_lsn > best_acked t

(* Degrade rather than block forever: when some reply has been gated for
   [sync_repl_timeout], open the gate (counted) until the replicas catch
   back up to the durable position. *)
let manage_gate t now =
  if t.sync_repl && is_primary t then begin
    if t.degraded then begin
      if best_acked t >= Db.durable_lsn t.db then begin
        t.degraded <- false;
        t.gate_since <- None
      end
    end
    else
      let blocked =
        let best = best_acked t in
        List.exists (fun c -> out_pending c > 0 && c.sent_lsn > best) t.conns
      in
      if not blocked then t.gate_since <- None
      else
        match t.gate_since with
        | None -> t.gate_since <- Some now
        | Some s when now -. s > sync_repl_timeout ->
            t.degraded <- true;
            t.gate_since <- None;
            Stats.incr_repl_sync_degraded ()
        | Some _ -> ()
  end

let update_gauges t =
  let has_repl =
    (match t.repl_listen_fd with Some _ -> true | None -> false) || not (is_primary t)
  in
  if has_repl then begin
    let durable = Db.durable_lsn t.db in
    Stats.set_repl_lag_commits
      (List.fold_left
         (fun acc d ->
           if d.d_state = `Streaming && d.d_acked >= 0 then max acc (durable - d.d_acked)
           else acc)
         0 t.downstreams);
    Stats.set_repl_lag_bytes (List.fold_left (fun acc d -> acc + d_pending d) 0 t.downstreams)
  end

(* -- accepting ------------------------------------------------------------ *)

let rec accept_pending t =
  match Unix.accept ~cloexec:true t.listen_fd with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (EINTR, _, _) -> accept_pending t
  | fd, _ ->
      Stats.incr_server_accepts ();
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      if List.length t.conns >= t.max_conns then begin
        (* Friendly rejection: a complete handshake reply, then goodbye. The
           7-byte write into a fresh socket's empty send buffer cannot
           block. *)
        Stats.incr_server_rejects ();
        (try
           ignore
             (Unix.write_substring fd (Protocol.hello_reply Busy) 0 Protocol.hello_reply_len)
         with Unix.Unix_error _ -> ());
        close_fd fd
      end
      else
        t.conns <-
          {
            fd;
            rd = Protocol.reader ();
            out = Buffer.create 1024;
            out_pos = 0;
            state = `Hello;
            closing = false;
            last = Unix.gettimeofday ();
            sent_lsn = -1;
          }
          :: t.conns;
      accept_pending t

(* -- per-connection processing -------------------------------------------- *)

let try_handshake t c =
  match Protocol.take c.rd Protocol.hello_len with
  | None -> ()
  | Some hello -> (
      match Protocol.parse_hello hello with
      | Ok v when v = Protocol.version ->
          Buffer.add_string c.out (Protocol.hello_reply Accepted);
          t.next_session <- t.next_session + 1;
          c.state <- `Active (Session.create ~id:t.next_session t.db)
      | Ok _ | Error _ ->
          (* Version skew or garbage: answer with a parseable rejection and
             hang up. *)
          Stats.incr_server_rejects ();
          Buffer.add_string c.out (Protocol.hello_reply Bad_version);
          c.closing <- true)

let run_frames t c session =
  try
    let rec go () =
      (* Backpressure: leave complete frames buffered while this client's
         responses are backed up. *)
      if out_pending c < out_cap && not c.closing then
        match Protocol.next_frame c.rd with
        | None -> ()
        | Some body ->
            let rq = Protocol.decode_request body in
            let server_reply =
              match rq.rq_op with Protocol.Dot line -> server_dot t line | _ -> None
            in
            let resp =
              match server_reply with
              | Some reply -> { Protocol.rs_id = rq.rq_id; rs_lsn = Db.lsn t.db; rs_reply = reply }
              | None ->
                  let before = Db.lsn t.db in
                  let resp = Session.handle session rq in
                  (* Only a request that moved the LSN puts this connection
                     under the semi-sync gate — reads ride free. *)
                  if Db.lsn t.db > before then c.sent_lsn <- Db.lsn t.db;
                  resp
            in
            Protocol.encode_response c.out resp;
            (* Bound the deferred-durability window: a long batch syncs
               every [group_window] commits rather than once at the end. *)
            if Db.pending_commits t.db >= t.group_window then Db.sync_commits t.db;
            (match rq.rq_op with Close -> c.closing <- true | _ -> ());
            go ()
    in
    go ()
  with Ode_util.Codec.Corrupt msg ->
    Protocol.encode_response c.out
      { rs_id = 0; rs_lsn = Db.lsn t.db; rs_reply = Error ("protocol error: " ^ msg) };
    c.closing <- true

let process t c =
  (match c.state with `Hello -> try_handshake t c | `Active _ -> ());
  match c.state with `Active s -> run_frames t c s | `Hello -> ()

let handle_read t c =
  match Unix.read c.fd t.read_buf 0 (Bytes.length t.read_buf) with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> drop t c
  | 0 -> drop t c
  | n ->
      Stats.add_server_bytes_in n;
      c.last <- Unix.gettimeofday ();
      Protocol.feed c.rd t.read_buf n;
      process t c

let handle_write t c =
  let data = Buffer.contents c.out in
  match Unix.write_substring c.fd data c.out_pos (String.length data - c.out_pos) with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> drop t c
  | n ->
      Stats.add_server_bytes_out n;
      c.out_pos <- c.out_pos + n;
      if c.out_pos = Buffer.length c.out then begin
        Buffer.clear c.out;
        c.out_pos <- 0;
        if c.closing then drop t c
        else
          (* The backlog drained: execute any requests that backpressure
             left buffered. *)
          process t c
      end

let evict_idle t =
  if t.idle_timeout > 0. then begin
    let now = Unix.gettimeofday () in
    List.iter
      (fun c ->
        if now -. c.last > t.idle_timeout then begin
          Stats.incr_server_timeouts ();
          drop t c
        end)
      t.conns
  end

(* -- the loop ------------------------------------------------------------- *)

(* The ack point. Under [Group] durability every commit prepared this tick
   becomes durable here, before any reply reaches a socket. [Full] commits
   synced eagerly (nothing pends); [Async] chose to reply without waiting,
   its window bounded by [group_window] in [run_frames] and by checkpoints. *)
let ack_deferred t =
  match Db.durability t.db with
  | Db.Group -> Db.sync_commits t.db
  | Db.Full | Db.Async -> ()

(* Zero-timeout re-polls after the first read pass: requests that arrived
   while this tick was executing earlier ones join the same batch (and the
   same shared fsync) instead of waiting out a full select round trip.
   Costless for latency — only what has already arrived is taken — and
   bounded so a firehose of pipelined clients cannot starve the ack and
   write phases. *)
let gather_rounds = 8

let rec gather t rounds =
  if rounds > 0 then begin
    let want = List.filter (fun c -> (not c.closing) && out_pending c < out_cap) t.conns in
    if want <> [] then
      match Unix.select (List.map (fun c -> c.fd) want) [] [] 0.0 with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | [], _, _ -> ()
      | readable, _, _ ->
          List.iter
            (fun c -> if List.memq c t.conns && List.memq c.fd readable then handle_read t c)
            want;
          gather t (rounds - 1)
  end

let one_iteration t =
  let now = Unix.gettimeofday () in
  if t.promote_flag then begin
    t.promote_flag <- false;
    match promote t with
    | Ok msg -> Printf.eprintf "replication: %s\n%!" msg
    | Error _ -> ()
  end;
  (match t.upstream with Some u -> try_reconnect t u | None -> ());
  manage_gate t now;
  let want_read = List.filter (fun c -> (not c.closing) && out_pending c < out_cap) t.conns in
  let want_write = List.filter (fun c -> out_pending c > 0 && not (gated t c)) t.conns in
  let reads =
    (t.listen_fd :: (match t.repl_listen_fd with Some fd -> [ fd ] | None -> []))
    @ List.map (fun c -> c.fd) want_read
    @ List.map (fun d -> d.d_fd) t.downstreams
    @ (match t.upstream with Some { u_link = Some l; _ } -> [ l.Replication.up_fd ] | _ -> [])
  in
  let writes =
    List.map (fun c -> c.fd) want_write
    @ List.filter_map (fun d -> if d_pending d > 0 then Some d.d_fd else None) t.downstreams
    @ (match t.upstream with
      | Some ({ u_link = Some l; _ } as u) when u_pending u > 0 -> [ l.Replication.up_fd ]
      | _ -> [])
  in
  match Unix.select reads writes [] 0.25 with
  | exception Unix.Unix_error (EINTR, _, _) -> () (* signal: loop re-checks [stop] *)
  | readable, _, _ ->
      if List.memq t.listen_fd readable then accept_pending t;
      (match t.repl_listen_fd with
      | Some fd when List.memq fd readable -> accept_repl t fd
      | _ -> ());
      (* Replica: apply shipped batches first, so reads served this tick see
         the freshest replicated state. *)
      (match t.upstream with
      | Some ({ u_link = Some l; _ } as u) when List.memq l.Replication.up_fd readable ->
          handle_upstream_read t u l
      | _ -> ());
      List.iter (fun c -> if List.memq c.fd readable then handle_read t c) want_read;
      gather t gather_rounds;
      (* Standby acks — read before the write phase so the semi-sync gate
         sees them this tick. *)
      List.iter
        (fun d ->
          if List.memq d t.downstreams && List.memq d.d_fd readable then
            handle_downstream_read t d)
        t.downstreams;
      (* Read phase done: everything executed this tick shares one fsync.
         Replies buffered above only hit the sockets below, after it — and
         the fsync fed the observer, so the batches covering this tick's
         commits are already queued on the downstreams. *)
      ack_deferred t;
      (* Write phase, opportunistic: attempt every pending buffer rather
         than only select's writable set — sockets are rarely full, EAGAIN
         costs one syscall, and batches/acks/replies produced *this* tick
         get out without waiting a select round. Gated replies stay put. *)
      List.iter
        (fun c ->
          if List.memq c t.conns && out_pending c > 0 && not (gated t c) then
            handle_write t c)
        t.conns;
      List.iter
        (fun d ->
          if List.memq d t.downstreams then
            if d_pending d > downstream_out_cap then drop_downstream t d
            else if d_pending d > 0 then handle_downstream_write t d)
        t.downstreams;
      (match t.upstream with
      | Some ({ u_link = Some l; _ } as u) when u_pending u > 0 -> handle_upstream_write t u l
      | _ -> ());
      update_gauges t

(* Graceful shutdown: stop accepting, flush what's already encoded (bounded
   by [drain_deadline]), abort every session's open transaction, release
   the sockets. Requests still sitting unparsed in input buffers are
   dropped — "in-flight" means a response exists. Semi-sync gating is not
   applied here: a graceful shutdown loses nothing, so holding replies
   hostage to a standby would only strand clients. *)
let drain t =
  close_fd t.listen_fd;
  (match t.repl_listen_fd with Some fd -> close_fd fd | None -> ());
  (match t.upstream with
  | Some u -> ( match u.u_link with Some l -> close_fd l.Replication.up_fd | None -> ())
  | None -> ());
  let deadline = Unix.gettimeofday () +. drain_deadline in
  let rec flush () =
    (* Buffers may hold replies whose commits are still pending — both from
       the final serve tick and from backpressured frames that a drained
       write just executed ([handle_write] → [process]). Newly encoded
       replies only reach a socket on the {e next} round, so acking at the
       top of every round keeps the reply-after-fsync guarantee through
       shutdown. *)
    ack_deferred t;
    let pending_c = List.filter (fun c -> out_pending c > 0) t.conns in
    let pending_d = List.filter (fun d -> d_pending d > 0) t.downstreams in
    if (pending_c <> [] || pending_d <> []) && Unix.gettimeofday () < deadline then begin
      (match
         Unix.select []
           (List.map (fun c -> c.fd) pending_c @ List.map (fun d -> d.d_fd) pending_d)
           [] 0.25
       with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | _, writable, _ ->
          List.iter
            (fun c -> if List.memq c t.conns && List.memq c.fd writable then handle_write t c)
            pending_c;
          List.iter
            (fun d ->
              if List.memq d t.downstreams && List.memq d.d_fd writable then
                handle_downstream_write t d)
            pending_d);
      flush ()
    end
  in
  flush ();
  List.iter (fun c -> drop t c) t.conns;
  List.iter (fun d -> drop_downstream t d) t.downstreams

let serve t =
  while not t.stop do
    one_iteration t;
    evict_idle t
  done;
  drain t

(* -- construction --------------------------------------------------------- *)

let bind_listener ~host ~port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, p) -> (fd, p)
  | _ -> assert false

let create ?(host = "127.0.0.1") ?(max_conns = 64) ?(idle_timeout = 300.) ?durability
    ?(group_window = 64) ?repl_port ?(sync_repl = false) ?replica ~db ~port () =
  if not (Domain.is_main_domain ()) then
    invalid_arg "Server.create: the serving model is single-domain (see stats.mli)";
  Option.iter (Db.set_durability db) durability;
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd, lport = bind_listener ~host ~port in
  let repl_listen_fd, rport =
    match repl_port with
    | None -> (None, 0)
    | Some p ->
        let fd, p = bind_listener ~host ~port:p in
        (Some fd, p)
  in
  let upstream =
    Option.map
      (fun (u_host, u_port, link) ->
        Unix.set_nonblock link.Replication.up_fd;
        {
          u_host;
          u_port;
          u_link = Some link;
          u_out = Buffer.create 64;
          u_out_pos = 0;
          u_retry_at = 0.;
        })
      replica
  in
  let t =
    {
      db;
      listen_fd;
      lport;
      repl_listen_fd;
      rport;
      sync_repl;
      max_conns;
      idle_timeout;
      group_window = max 1 group_window;
      read_buf = Bytes.create 65536;
      conns = [];
      downstreams = [];
      upstream;
      degraded = false;
      gate_since = None;
      promote_flag = false;
      next_session = 0;
      stop = false;
    }
  in
  (match t.repl_listen_fd with
  | Some _ ->
      Db.set_wal_observer db
        (Some (fun ~data ~from_lsn ~to_lsn -> feed t ~data ~from_lsn ~to_lsn))
  | None -> ());
  (* A replica announces its position and drains whatever the primary
     pipelined behind the bootstrap handshake. *)
  (match t.upstream with
  | Some ({ u_link = Some l; _ } as u) ->
      queue_ack t u;
      process_upstream t u l
  | _ -> ());
  t

(* -- fork helper for tests and benchmarks --------------------------------- *)

let spawn_full ?max_conns ?idle_timeout ?durability ?group_window ?repl_port ?sync_repl
    ?replica_of ~db_dir () =
  let r, w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 -> (
      Unix.close r;
      let rc =
        try
          let db, replica =
            match replica_of with
            | None -> (Ode.Database.open_ db_dir, None)
            | Some (host, port) ->
                let db, up = Replication.bootstrap ~db_dir ~host ~port () in
                (db, Some (host, port, up))
          in
          let t =
            create ?max_conns ?idle_timeout ?durability ?group_window ?repl_port ?sync_repl
              ?replica ~db ~port:0 ()
          in
          handle_signals t;
          let msg = Printf.sprintf "%d %d\n" t.lport t.rport in
          ignore (Unix.write_substring w msg 0 (String.length msg));
          Unix.close w;
          serve t;
          Ode.Database.close db;
          0
        with _ -> 1
      in
      (* _exit: never run the parent's at_exit handlers in the child. *)
      Unix._exit rc)
  | pid ->
      Unix.close w;
      let buf = Bytes.create 32 in
      let n = Unix.read r buf 0 32 in
      Unix.close r;
      if n <= 0 then failwith "Server.spawn: child died before reporting its ports";
      (match String.split_on_char ' ' (String.trim (Bytes.sub_string buf 0 n)) with
      | [ cp; rp ] -> (pid, int_of_string cp, int_of_string rp)
      | _ -> failwith "Server.spawn: malformed port report")

let spawn ?max_conns ?idle_timeout ?durability ?group_window ?repl_port ?sync_repl
    ?replica_of ~db_dir () =
  let pid, port, _ =
    spawn_full ?max_conns ?idle_timeout ?durability ?group_window ?repl_port ?sync_repl
      ?replica_of ~db_dir ()
  in
  (pid, port)
