(* Multicore serving: a poll(2) event loop on the writer domain plus N
   reader domains executing read-only requests in parallel.

   The writer domain owns the sockets, the WAL and the group-commit batch
   scheduler. One iteration: poll for readiness, accept what's pending,
   read what's readable (feeding each connection's frame reader), execute
   or dispatch complete requests, collect reader completions, ack, write.
   Writing requests — [Exec], [Dot], anything inside an explicit
   transaction — run to completion on the writer, exactly the old
   single-domain model. [Ping]s and autocommitted [Query]s are handed to a
   bounded job queue that reader domains drain, each executing the query in
   a detached read-only transaction over the lock-striped storage layer.

   Reader/writer interleaving is governed by one writer-preferring RW lock:
   a reader holds it shared for the duration of one request, the writer
   holds it exclusive for the duration of one writing request, so readers
   run against a structurally quiescent engine (no B+tree splits or commit
   applies mid-scan) while any number of them share the storage layer —
   that sharing is what the striped buffer pool, per-disk mutex and sharded
   object cache make safe. A query that turns out to write (a method with
   side effects) raises [Read_only_txn] before touching shared state; the
   completion re-routes it to the writer, which replays it under the
   exclusive lock. Per connection at most one request is in flight and no
   further frames are executed until its reply is buffered, so replies
   stay in request order.

   The iteration doubles as the group-commit batch scheduler. Replies are
   never written from the read phase — they accumulate in each connection's
   [out] buffer — and between the read phase and the write phase sits the
   ack point: one [Database.sync_commits] covering every autocommit executed
   this tick. So under [Group] durability a reply can only reach the socket
   after the fsync that made its commit durable, while a tick that executed
   N requests paid for one fsync, not N. Reader-executed requests commit
   nothing, so they owe no fsync; re-routed ones are replayed on the writer
   before the ack point like any other write.

   Replication rides the same loop, entirely on the writer domain. A
   primary with a replication port keeps a second listener; each connected
   standby is a [downstream] whose buffer the WAL observer feeds with every
   post-fsync batch — the observer fires inside [Wal.sync], strictly after
   the barrier, so a standby can never hold a commit the primary could
   still lose. A replica runs the same loop with an [upstream] link
   instead: batches in (applied under the exclusive lock — its readers
   serve stale-but-consistent queries meanwhile), acks out, promotion on
   [.promote] or SIGUSR1. Under [sync_repl] the write phase additionally
   holds back any reply whose commit no streaming replica has acknowledged
   yet (semi-sync), degrading after a timeout rather than blocking writes
   forever on a dead standby. *)

module Stats = Ode_util.Stats
module Chan = Ode_util.Chan
module Rwlock = Ode_util.Rwlock
module Db = Ode.Database

type conn = {
  fd : Unix.file_descr;
  rd : Protocol.reader;
  out : Buffer.t;             (* encoded responses awaiting the socket *)
  mutable out_pos : int;      (* written prefix of [out] *)
  mutable state : [ `Hello | `Active of Session.t ];
  mutable proto : int;        (* negotiated protocol version (handshake) *)
  mutable closing : bool;     (* close once [out] drains *)
  mutable last : float;       (* last byte received (idle eviction) *)
  mutable sent_lsn : int;     (* highest commit LSN this conn's buffered
                                 replies acknowledge (semi-sync gate) *)
  mutable inflight : bool;    (* a request is executing on a reader domain;
                                 no reads, no frame execution, no eviction
                                 until its completion is collected *)
  mutable doomed : bool;      (* socket died while inflight; really dropped
                                 when the completion arrives *)
  mutable alive : bool;       (* false once dropped (the idle queue and the
                                 poll dispatch hold stale references) *)
}

(* A standby streaming from us. *)
type downstream = {
  d_fd : Unix.file_descr;
  d_rd : Protocol.reader;
  d_out : Buffer.t;
  mutable d_out_pos : int;
  mutable d_state : [ `Magic | `Hello | `Streaming ];
  mutable d_acked : int;      (* highest LSN it acknowledged; -1 = none yet *)
}

(* The primary we stream from (replica role). *)
type upstream_state = {
  u_host : string;
  u_port : int;
  mutable u_link : Replication.upstream option; (* None while reconnecting *)
  u_out : Buffer.t;           (* pending acks *)
  mutable u_out_pos : int;
  mutable u_retry_at : float;
}

(* A request handed to a reader domain, and its way back. [rj_enq_ns] is
   the push time, so the reader can report queue wait separately from
   execution in the slow-query log. *)
type rjob = {
  rj_conn : conn;
  rj_session : Session.t;
  rj_rq : Protocol.request;
  rj_enq_ns : int;
}
type job = Job of rjob | Stop

type completion = {
  cm_job : rjob;
  cm_resp : Protocol.response option;
      (* None: the query tried to write — replay it on the writer *)
}

(* A metrics/health HTTP client: one GET in, one response out, close. *)
type mconn = {
  m_fd : Unix.file_descr;
  m_buf : Buffer.t;           (* request bytes until the blank line *)
  m_out : Buffer.t;
  mutable m_out_pos : int;
  mutable m_done : bool;      (* response built; close once [m_out] drains *)
  mutable m_last : float;
}

(* What each poll slot means this tick (index-aligned with [Poll.add]). *)
type slot =
  | S_none
  | S_listen
  | S_repl_listen
  | S_metrics_listen
  | S_wake
  | S_up
  | S_conn of conn
  | S_down of downstream
  | S_metrics of mconn

type t = {
  db : Ode.Database.t;
  listen_fd : Unix.file_descr;
  lport : int;
  repl_listen_fd : Unix.file_descr option;
  rport : int;                (* 0 when replication is not served *)
  metrics_fd : Unix.file_descr option;
  mport : int;                (* 0 when no metrics endpoint is served *)
  sync_repl : bool;
  max_conns : int;
  idle_timeout : float;
  group_window : int;         (* force a sync once this many commits pend *)
  read_buf : bytes;           (* scratch shared by every writer-domain read *)
  nreaders : int;             (* reader domains; 0 = classic inline serving *)
  engine_lock : Rwlock.t;
  jobs : job Chan.t;
  dones : completion Chan.t;
  wake_r : Unix.file_descr;   (* self-pipe: readers nudge the poll loop *)
  wake_w : Unix.file_descr;
  pset : Poll.t;
  mutable slots : slot array;
  mutable readers : unit Domain.t list;
  idle_q : (float * conn) Queue.t; (* (enqueued_at, conn), push-time order *)
  mutable accept_pause : float; (* fd exhaustion: no accepts until then *)
  mutable conns : conn list;
  mutable mconns : mconn list;
  mutable downstreams : downstream list;
  mutable upstream : upstream_state option; (* Some = replica role *)
  mutable degraded : bool;    (* semi-sync waived until replicas catch up *)
  mutable gate_since : float option; (* oldest unmet semi-sync wait *)
  mutable promote_flag : bool; (* set by SIGUSR1, consumed by the loop *)
  mutable next_session : int;
  mutable stop : bool;
}

(* Stop reading a connection once this much response data is backed up;
   reads resume when the client drains its socket. *)
let out_cap = 1 lsl 20

(* A standby that stops draining its stream is cut off at this backlog; it
   will resync when it comes back. *)
let downstream_out_cap = 64 * 1024 * 1024
let max_downstreams = 8

(* Bounded flush window for graceful shutdown. *)
let drain_deadline = 5.0

(* Semi-sync degrade: how long client acks may wait on replica acks before
   the gate opens (and [repl.sync_degraded] counts the event). *)
let sync_repl_timeout = 5.0

(* How long accepting pauses after EMFILE/ENFILE: long enough not to spin
   on a listener we cannot serve, short enough to pick arrivals up as soon
   as a descriptor frees. *)
let accept_backoff = 0.2

(* Scrapers are few and short-lived; anything past this is a mistake. *)
let max_mconns = 16
let mconn_idle_timeout = 30.
let max_http_request = 8192

let port t = t.lport
let repl_port t = t.rport
let metrics_port t = t.mport
let connections t = List.length t.conns
let domains t = t.nreaders + 1
let shutdown t = t.stop <- true

let handle_signals t =
  let h = Sys.Signal_handle (fun _ -> shutdown t) in
  Sys.set_signal Sys.sigint h;
  Sys.set_signal Sys.sigterm h;
  (* Promotion by signal: the handler only sets a flag; the loop promotes
     between iterations. Harmless on a primary. *)
  Sys.set_signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> t.promote_flag <- true))

(* Engine exclusivity lives in the engine now: [t.engine_lock] is the
   database's own latch ({!Db.latch}), reader domains hold its shared side
   per request, and the engine takes the exclusive side internally around
   commit apply, checkpoints, DDL and replication apply ({!Ode.Txn.with_excl},
   re-entrant for the writer domain). The serving loop therefore never
   wraps request execution in the exclusive side itself — a writer's WAL
   fsync no longer holds snapshot readers out. *)

let out_pending c = Buffer.length c.out - c.out_pos
let d_pending d = Buffer.length d.d_out - d.d_out_pos
let u_pending u = Buffer.length u.u_out - u.u_out_pos

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

let real_drop t c =
  c.alive <- false;
  (match c.state with `Active s -> Session.close s | `Hello -> ());
  close_fd c.fd;
  t.conns <- List.filter (fun c' -> c' != c) t.conns

(* Dropping a connection whose request is still on a reader domain must
   wait for the completion (the reader holds the session); mark it doomed
   and let the completion handler finish the job. *)
let drop t c =
  if c.inflight then begin
    c.doomed <- true;
    c.closing <- true
  end
  else real_drop t c

let drop_downstream t d =
  close_fd d.d_fd;
  t.downstreams <- List.filter (fun d' -> d' != d) t.downstreams

let is_primary t = t.upstream = None

(* -- the reader pool ------------------------------------------------------ *)

let wake t =
  try ignore (Unix.write_substring t.wake_w "x" 0 1)
  with Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EPIPE | EINTR), _, _) ->
    (* A full pipe means wakeups are already pending — good enough. *)
    ()

let drain_wake t =
  let buf = Bytes.create 256 in
  let rec go () =
    match Unix.read t.wake_r buf 0 (Bytes.length buf) with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | 0 -> ()
    | _ -> go ()
  in
  go ()

let reader_loop t =
  let rec loop () =
    match Chan.pop t.jobs with
    | Stop -> ()
    | Job j ->
        let queue_wait_ns = max 0 (Ode_util.Trace.now_ns () - j.rj_enq_ns) in
        let resp =
          Rwlock.read t.engine_lock (fun () ->
              match Session.handle_read ~queue_wait_ns j.rj_session j.rj_rq with
              | resp -> Some resp
              | exception Ode.Types.Read_only_txn -> None
              | exception e ->
                  (* Defensive: [handle_read] renders interpreter errors
                     itself, so anything escaping is an engine bug — answer
                     it rather than killing the domain. *)
                  Some
                    {
                      Protocol.rs_id = j.rj_rq.rq_id;
                      rs_lsn = Db.lsn t.db;
                      rs_reply = Error ("internal error: " ^ Printexc.to_string e);
                    })
        in
        (* [dones] is sized past the maximum possible in-flight count, so
           this push never blocks a reader against a busy writer. *)
        Chan.push t.dones { cm_job = j; cm_resp = resp };
        wake t;
        loop ()
  in
  loop ()

let stop_readers t =
  if t.readers <> [] then begin
    List.iter (fun _ -> Chan.push t.jobs Stop) t.readers;
    List.iter Domain.join t.readers;
    t.readers <- []
  end

(* -- poll set bookkeeping ------------------------------------------------- *)

let slot_add t slot fd ~read ~write =
  let i = Poll.add t.pset fd ~read ~write in
  if i >= Array.length t.slots then begin
    let ns = Array.make (max 64 (2 * Array.length t.slots)) S_none in
    Array.blit t.slots 0 ns 0 (Array.length t.slots);
    t.slots <- ns
  end;
  t.slots.(i) <- slot

(* -- replication: primary side ------------------------------------------- *)

(* The WAL observer: called inside [Wal.sync] after the barrier, with the
   frames covering commits (from_lsn, to_lsn]. Only enqueues — the sockets
   are serviced by the loop's write phase. *)
let feed t ~data ~from_lsn ~to_lsn =
  List.iter
    (fun d ->
      if d.d_state = `Streaming then begin
        Protocol.encode_repl d.d_out (Protocol.R_batch (from_lsn, to_lsn, data));
        Stats.incr_repl_batches_sent ();
        Stats.add_repl_bytes_sent (String.length data)
      end)
    t.downstreams

let rec accept_repl t lfd =
  match Unix.accept ~cloexec:true lfd with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (EINTR, _, _) -> accept_repl t lfd
  | exception Unix.Unix_error ((EMFILE | ENFILE), _, _) ->
      Stats.incr_server_accept_backoffs ();
      t.accept_pause <- Unix.gettimeofday () +. accept_backoff;
      Printf.eprintf "server: accept (replication): out of file descriptors; backing off\n%!"
  | fd, _ ->
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      (* A replica does not serve replicas (no cascading) — and a full house
         just hangs up; the standby's bootstrap retries. *)
      if Db.read_only t.db || List.length t.downstreams >= max_downstreams then close_fd fd
      else
        t.downstreams <-
          {
            d_fd = fd;
            d_rd = Protocol.reader ~max_len:Protocol.repl_max_frame_len ();
            d_out = Buffer.create 4096;
            d_out_pos = 0;
            d_state = `Magic;
            d_acked = -1;
          }
          :: t.downstreams;
      accept_repl t lfd

(* Advance a downstream's handshake and consume its acks. Anything
   malformed drops the connection — the standby resyncs. *)
let process_downstream t d =
  try
    (match d.d_state with
    | `Magic -> (
        match Protocol.take d.d_rd Protocol.repl_hello_len with
        | None -> ()
        | Some s -> (
            match Protocol.parse_repl_hello s with
            | Ok () -> d.d_state <- `Hello
            | Error _ -> raise Exit))
    | _ -> ());
    (match d.d_state with
    | `Hello -> (
        match Protocol.next_frame d.d_rd with
        | None -> ()
        | Some body -> (
            match Protocol.decode_repl body with
            | Protocol.R_hello lsn -> (
                (* [answer_hello] may checkpoint and read the data files
                   off disk (snapshot path): it runs under the engine's
                   exclusive latch so no reader-domain eviction writes a
                   dirty page mid-read (the checkpoint inside re-enters).
                   The sync inside feeds the *other*, already-streaming
                   downstreams — this one only starts receiving batches
                   once marked [`Streaming] below, right after its
                   backlog. *)
                match
                  Ode.Txn.with_excl t.db (fun () ->
                      Replication.answer_hello t.db ~replica_lsn:lsn)
                with
                | Replication.Resume { from_lsn; to_lsn; backlog } ->
                    Protocol.encode_repl d.d_out (Protocol.R_resume from_lsn);
                    if String.length backlog > 0 then begin
                      Protocol.encode_repl d.d_out
                        (Protocol.R_batch (from_lsn, to_lsn, backlog));
                      Stats.incr_repl_batches_sent ();
                      Stats.add_repl_bytes_sent (String.length backlog)
                    end;
                    (* It proved possession up to [from_lsn]. *)
                    d.d_acked <- from_lsn;
                    d.d_state <- `Streaming
                | Replication.Snapshot { lsn; files } ->
                    Protocol.encode_repl d.d_out (Protocol.R_snapshot (lsn, files));
                    d.d_state <- `Streaming)
            | _ -> raise Exit))
    | _ -> ());
    if d.d_state = `Streaming then begin
      let rec acks () =
        match Protocol.next_frame d.d_rd with
        | None -> ()
        | Some body ->
            (match Protocol.decode_repl body with
            | Protocol.R_ack lsn ->
                Stats.incr_repl_acks ();
                if lsn > d.d_acked then d.d_acked <- lsn
            | _ -> raise Exit);
            acks ()
      in
      acks ()
    end
  with Exit | Ode_util.Codec.Corrupt _ -> drop_downstream t d

let handle_downstream_read t d =
  match Unix.read d.d_fd t.read_buf 0 (Bytes.length t.read_buf) with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> drop_downstream t d
  | 0 -> drop_downstream t d
  | n ->
      Stats.add_server_bytes_in n;
      Protocol.feed d.d_rd t.read_buf n;
      process_downstream t d

let handle_downstream_write t d =
  let data = Buffer.contents d.d_out in
  match Unix.write_substring d.d_fd data d.d_out_pos (String.length data - d.d_out_pos) with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> drop_downstream t d
  | n ->
      Stats.add_server_bytes_out n;
      d.d_out_pos <- d.d_out_pos + n;
      if d.d_out_pos = Buffer.length d.d_out then begin
        Buffer.clear d.d_out;
        d.d_out_pos <- 0
      end

(* Highest LSN any streaming replica acknowledged: classic semi-sync wants
   at least one standby holding the commit, not all of them. *)
let best_acked t =
  List.fold_left
    (fun acc d -> if d.d_state = `Streaming then max acc d.d_acked else acc)
    (-1) t.downstreams

(* -- replication: replica side ------------------------------------------- *)

let queue_ack t u = Protocol.encode_repl u.u_out (Protocol.R_ack (Db.lsn t.db))

let upstream_fault _t u reason =
  (match u.u_link with Some l -> close_fd l.Replication.up_fd | None -> ());
  u.u_link <- None;
  Buffer.clear u.u_out;
  u.u_out_pos <- 0;
  Stats.incr_repl_resyncs ();
  u.u_retry_at <- Unix.gettimeofday () +. 1.0;
  Printf.eprintf "replication: upstream lost (%s); retrying\n%!" reason

(* Drain every complete frame buffered from the primary, applying batches
   (redo latches the engine exclusively inside [Db.apply_replicated]) and
   queueing an ack per batch. Snapshot reads keep working throughout,
   between batches. *)
let process_upstream t u link =
  let rec go () =
    match Protocol.next_frame link.Replication.up_rd with
    | None -> ()
    | Some body ->
        (match Protocol.decode_repl body with
        | Protocol.R_batch (from_lsn, to_lsn, data) ->
            (match Replication.apply_batch t.db ~from_lsn ~to_lsn ~data with
            | `Applied | `Duplicate -> queue_ack t u)
        | _ -> raise (Replication.Resync "unexpected message from primary"));
        go ()
  in
  try go () with
  | Replication.Resync msg -> upstream_fault t u msg
  | Ode_util.Codec.Corrupt msg -> upstream_fault t u msg

let handle_upstream_read t u link =
  match Unix.read link.Replication.up_fd t.read_buf 0 (Bytes.length t.read_buf) with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EPIPE | ETIMEDOUT), _, _) ->
      upstream_fault t u "connection reset"
  | 0 -> upstream_fault t u "primary closed the stream"
  | n ->
      Stats.add_server_bytes_in n;
      Protocol.feed link.Replication.up_rd t.read_buf n;
      process_upstream t u link

let handle_upstream_write t u link =
  let data = Buffer.contents u.u_out in
  match
    Unix.write_substring link.Replication.up_fd data u.u_out_pos
      (String.length data - u.u_out_pos)
  with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
      upstream_fault t u "connection reset"
  | n ->
      Stats.add_server_bytes_out n;
      u.u_out_pos <- u.u_out_pos + n;
      if u.u_out_pos = Buffer.length u.u_out then begin
        Buffer.clear u.u_out;
        u.u_out_pos <- 0
      end

(* Re-handshake after a fault. [Replication.reconnect] connects with a
   blocking socket — on loopback a dead primary refuses instantly, so the
   loop stalls only when the primary is reachable but wedged. *)
let try_reconnect t u =
  if u.u_link = None && Unix.gettimeofday () >= u.u_retry_at then
    match Replication.reconnect ~host:u.u_host ~port:u.u_port t.db with
    | Ok link ->
        Unix.set_nonblock link.Replication.up_fd;
        u.u_link <- Some link;
        queue_ack t u;
        (* Batches the primary pipelined behind the resume reply. *)
        process_upstream t u link
    | Error msg ->
        u.u_retry_at <- Unix.gettimeofday () +. 2.0;
        Printf.eprintf "replication: reconnect failed (%s)\n%!" msg

(* -- promotion and introspection ----------------------------------------- *)

let promote t =
  match t.upstream with
  | None -> Stdlib.Error "not a replica (already primary)"
  | Some u ->
      (match u.u_link with Some l -> close_fd l.Replication.up_fd | None -> ());
      t.upstream <- None;
      Ode.Txn.with_excl t.db (fun () -> Db.set_read_only t.db false);
      Stdlib.Ok (Printf.sprintf "promoted to primary at lsn %d" (Db.lsn t.db))

let replication_report t =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  (match t.upstream with
  | Some u ->
      add "role           replica of %s:%d (%s)\n" u.u_host u.u_port
        (match u.u_link with Some _ -> "connected" | None -> "disconnected, retrying")
  | None -> add "role           primary\n");
  add "lsn            %d\n" (Db.lsn t.db);
  add "durable_lsn    %d\n" (Db.durable_lsn t.db);
  add "domains        %d (1 writer + %d readers)\n" (t.nreaders + 1) t.nreaders;
  if is_primary t then begin
    add "sync_repl      %s%s\n"
      (if t.sync_repl then "on" else "off")
      (if t.degraded then " (degraded)" else "");
    add "replicas       %d\n" (List.length t.downstreams);
    let durable = Db.durable_lsn t.db in
    List.iter
      (fun d ->
        match d.d_state with
        | `Streaming when d.d_acked >= 0 ->
            add "  streaming    acked %d (lag %d commits, %d bytes queued)\n" d.d_acked
              (max 0 (durable - d.d_acked))
              (d_pending d)
        | `Streaming -> add "  streaming    no ack yet (%d bytes queued)\n" (d_pending d)
        | `Magic | `Hello -> add "  handshaking\n")
      t.downstreams
  end;
  Buffer.contents b

(* Dot commands that need the server, not just the session. *)
let server_dot t line : Protocol.reply option =
  match String.trim line with
  | ".promote" -> (
      match promote t with
      | Ok msg -> Some (Protocol.Output (msg ^ "\n"))
      | Error msg -> Some (Protocol.Error msg))
  | ".replication" -> Some (Protocol.Output (replication_report t))
  | _ -> None

(* -- metrics / health endpoint -------------------------------------------- *)

(* A deliberately tiny HTTP responder for scrapers, riding the poll loop on
   the writer domain — no extra threads, no keep-alive: parse the request
   line of one GET, answer, close. *)

let m_pending m = Buffer.length m.m_out - m.m_out_pos

let drop_mconn t m =
  close_fd m.m_fd;
  t.mconns <- List.filter (fun m' -> m' != m) t.mconns

let http_response ?(status = "200 OK") ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status content_type (String.length body) body

(* Role and positions for liveness probes; a standby's [lsn] is its
   replication apply position, which is what the CI smoke asserts. *)
let health_json t =
  Printf.sprintf
    "{\"role\":\"%s\",\"lsn\":%d,\"durable_lsn\":%d,\"connections\":%d,\"domains\":%d,\"slow_log_armed\":%b}\n"
    (if is_primary t then "primary" else "replica")
    (Db.lsn t.db) (Db.durable_lsn t.db) (List.length t.conns) (t.nreaders + 1)
    (Ode_util.Slowlog.armed ())

let has_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let metrics_answer t m =
  let req = Buffer.contents m.m_buf in
  let line =
    match String.index_opt req '\n' with
    | Some i -> String.trim (String.sub req 0 i)
    | None -> String.trim req
  in
  let resp =
    match String.split_on_char ' ' line with
    | "GET" :: path :: _ -> (
        match path with
        | "/metrics" ->
            http_response ~content_type:"text/plain; version=0.0.4; charset=utf-8"
              (Ode_util.Metrics.prometheus ())
        | "/metrics.json" ->
            http_response ~content_type:"application/json" (Ode_util.Metrics.json () ^ "\n")
        | "/health" -> http_response ~content_type:"application/json" (health_json t)
        | _ -> http_response ~status:"404 Not Found" ~content_type:"text/plain" "not found\n")
    | _ -> http_response ~status:"400 Bad Request" ~content_type:"text/plain" "bad request\n"
  in
  Buffer.add_string m.m_out resp;
  m.m_done <- true

let rec accept_metrics t lfd =
  match Unix.accept ~cloexec:true lfd with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (EINTR, _, _) -> accept_metrics t lfd
  | exception Unix.Unix_error ((EMFILE | ENFILE), _, _) ->
      Stats.incr_server_accept_backoffs ();
      t.accept_pause <- Unix.gettimeofday () +. accept_backoff
  | fd, _ ->
      Unix.set_nonblock fd;
      if List.length t.mconns >= max_mconns then close_fd fd
      else
        t.mconns <-
          {
            m_fd = fd;
            m_buf = Buffer.create 256;
            m_out = Buffer.create 4096;
            m_out_pos = 0;
            m_done = false;
            m_last = Unix.gettimeofday ();
          }
          :: t.mconns;
      accept_metrics t lfd

let handle_metrics_read t m =
  match Unix.read m.m_fd t.read_buf 0 (Bytes.length t.read_buf) with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> drop_mconn t m
  | 0 -> drop_mconn t m
  | n ->
      m.m_last <- Unix.gettimeofday ();
      Buffer.add_subbytes m.m_buf t.read_buf 0 n;
      if Buffer.length m.m_buf > max_http_request then drop_mconn t m
      else if not m.m_done then begin
        let req = Buffer.contents m.m_buf in
        if has_substring req "\r\n\r\n" || has_substring req "\n\n" then metrics_answer t m
      end

let handle_metrics_write t m =
  let data = Buffer.contents m.m_out in
  match Unix.write_substring m.m_fd data m.m_out_pos (String.length data - m.m_out_pos) with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> drop_mconn t m
  | n ->
      m.m_out_pos <- m.m_out_pos + n;
      if m.m_done && m.m_out_pos = Buffer.length m.m_out then drop_mconn t m

let sweep_mconns t now =
  if t.mconns <> [] then
    List.iter
      (fun m -> if now -. m.m_last > mconn_idle_timeout then drop_mconn t m)
      t.mconns

(* -- semi-sync gate ------------------------------------------------------- *)

(* Replies covering commits past what the replicas acknowledged wait in
   their buffers. *)
let gated t c =
  t.sync_repl && is_primary t && (not t.degraded) && c.sent_lsn > best_acked t

(* Degrade rather than block forever: when some reply has been gated for
   [sync_repl_timeout], open the gate (counted) until the replicas catch
   back up to the durable position. *)
let manage_gate t now =
  if t.sync_repl && is_primary t then begin
    if t.degraded then begin
      if best_acked t >= Db.durable_lsn t.db then begin
        t.degraded <- false;
        t.gate_since <- None
      end
    end
    else
      let blocked =
        let best = best_acked t in
        List.exists (fun c -> out_pending c > 0 && c.sent_lsn > best) t.conns
      in
      if not blocked then t.gate_since <- None
      else
        match t.gate_since with
        | None -> t.gate_since <- Some now
        | Some s when now -. s > sync_repl_timeout ->
            t.degraded <- true;
            t.gate_since <- None;
            Stats.incr_repl_sync_degraded ()
        | Some _ -> ()
  end

let update_gauges t =
  let has_repl =
    (match t.repl_listen_fd with Some _ -> true | None -> false) || not (is_primary t)
  in
  if has_repl then begin
    let durable = Db.durable_lsn t.db in
    Stats.set_repl_lag_commits
      (List.fold_left
         (fun acc d ->
           if d.d_state = `Streaming && d.d_acked >= 0 then max acc (durable - d.d_acked)
           else acc)
         0 t.downstreams);
    Stats.set_repl_lag_bytes (List.fold_left (fun acc d -> acc + d_pending d) 0 t.downstreams)
  end

(* -- accepting ------------------------------------------------------------ *)

let rec accept_pending t =
  match Unix.accept ~cloexec:true t.listen_fd with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (EINTR, _, _) -> accept_pending t
  | exception Unix.Unix_error ((EMFILE | ENFILE), _, _) ->
      (* Descriptor exhaustion: pause accepting rather than spinning on a
         listener we cannot serve. Existing connections keep draining —
         which is exactly what frees descriptors — and the listener rejoins
         the poll set once the backoff lapses. *)
      Stats.incr_server_accept_backoffs ();
      t.accept_pause <- Unix.gettimeofday () +. accept_backoff;
      Printf.eprintf "server: accept: out of file descriptors; backing off\n%!"
  | fd, _ ->
      Stats.incr_server_accepts ();
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      if List.length t.conns >= t.max_conns then begin
        (* Friendly rejection: a complete handshake reply, then goodbye. The
           7-byte write into a fresh socket's empty send buffer cannot
           block. *)
        Stats.incr_server_rejects ();
        (try
           ignore
             (Unix.write_substring fd (Protocol.hello_reply Busy) 0 Protocol.hello_reply_len)
         with Unix.Unix_error _ -> ());
        close_fd fd
      end
      else begin
        let now = Unix.gettimeofday () in
        let c =
          {
            fd;
            rd = Protocol.reader ();
            out = Buffer.create 1024;
            out_pos = 0;
            state = `Hello;
            proto = Protocol.version;
            closing = false;
            last = now;
            sent_lsn = -1;
            inflight = false;
            doomed = false;
            alive = true;
          }
        in
        t.conns <- c :: t.conns;
        if t.idle_timeout > 0. then Queue.push (now, c) t.idle_q
      end;
      accept_pending t

(* -- per-connection processing -------------------------------------------- *)

let try_handshake t c =
  match Protocol.take c.rd Protocol.hello_len with
  | None -> ()
  | Some hello -> (
      match Protocol.parse_hello hello with
      | Ok v when v >= Protocol.min_version && v <= Protocol.version ->
          (* Speak the client's version on this connection — the reply
             echoes it so both sides encode frames identically. *)
          c.proto <- v;
          Buffer.add_string c.out (Protocol.hello_reply ~negotiated:v Accepted);
          t.next_session <- t.next_session + 1;
          c.state <- `Active (Session.create ~id:t.next_session t.db)
      | Ok _ | Error _ ->
          (* Version skew or garbage: answer with a parseable rejection and
             hang up. *)
          Stats.incr_server_rejects ();
          Buffer.add_string c.out (Protocol.hello_reply Bad_version);
          c.closing <- true)

(* Execute one request on the writer domain (the engine latches its own
   commit apply), buffer its reply, track the semi-sync position, bound
   the deferred-durability window. *)
let exec_on_writer ?count t c session rq =
  let before = Db.lsn t.db in
  let resp = Session.handle ?count session rq in
  (* Only a request that moved the LSN puts this connection under the
     semi-sync gate — reads ride free. *)
  if Db.lsn t.db > before then c.sent_lsn <- Db.lsn t.db;
  Protocol.encode_response ~version:c.proto c.out resp;
  (* Bound the deferred-durability window: a long batch syncs every
     [group_window] commits rather than once at the end. *)
  if Db.pending_commits t.db >= t.group_window then Db.sync_commits t.db

(* Which requests may run on a reader domain: Pings, and Querys from a
   session with no explicit transaction open (inside one, the query must
   see the transaction's own writes — writer only). *)
let dispatchable session (rq : Protocol.request) =
  match rq.rq_op with
  | Protocol.Ping -> true
  | Protocol.Query _ -> not (Session.in_transaction session)
  | Protocol.Exec _ | Protocol.Dot _ | Protocol.Close -> false

let run_frames t c session =
  try
    let rec go () =
      (* Backpressure: leave complete frames buffered while this client's
         responses are backed up or a request is already in flight (strict
         in-order replies, one request at a time per connection). *)
      if out_pending c < out_cap && (not c.closing) && not c.inflight then
        match Protocol.next_frame c.rd with
        | None -> ()
        | Some body ->
            let rq = Protocol.decode_request ~version:c.proto body in
            let server_reply =
              match rq.rq_op with Protocol.Dot line -> server_dot t line | _ -> None
            in
            (match server_reply with
            | Some reply ->
                Protocol.encode_response ~version:c.proto c.out
                  { Protocol.rs_id = rq.rq_id; rs_lsn = Db.lsn t.db; rs_reply = reply }
            | None ->
                if
                  t.nreaders > 0
                  && dispatchable session rq
                  && Chan.try_push t.jobs
                       (Job
                          {
                            rj_conn = c;
                            rj_session = session;
                            rj_rq = rq;
                            rj_enq_ns = Ode_util.Trace.now_ns ();
                          })
                then
                  (* A reader domain will answer; the completion resumes
                     this connection's frame processing. When the job queue
                     is full the push fails and the request simply runs
                     inline below — natural backpressure, no starvation. *)
                  c.inflight <- true
                else begin
                  exec_on_writer t c session rq;
                  match rq.rq_op with Close -> c.closing <- true | _ -> ()
                end);
            go ()
    in
    go ()
  with Ode_util.Codec.Corrupt msg ->
    Protocol.encode_response ~version:c.proto c.out
      { rs_id = 0; rs_lsn = Db.lsn t.db; rs_reply = Error ("protocol error: " ^ msg) };
    c.closing <- true

let process t c =
  (match c.state with `Hello -> try_handshake t c | `Active _ -> ());
  match c.state with `Active s -> run_frames t c s | `Hello -> ()

let handle_read t c =
  match Unix.read c.fd t.read_buf 0 (Bytes.length t.read_buf) with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> drop t c
  | 0 -> drop t c
  | n ->
      Stats.add_server_bytes_in n;
      c.last <- Unix.gettimeofday ();
      Protocol.feed c.rd t.read_buf n;
      process t c

let handle_write t c =
  let data = Buffer.contents c.out in
  match Unix.write_substring c.fd data c.out_pos (String.length data - c.out_pos) with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> drop t c
  | n ->
      Stats.add_server_bytes_out n;
      c.out_pos <- c.out_pos + n;
      if c.out_pos = Buffer.length c.out then begin
        Buffer.clear c.out;
        c.out_pos <- 0;
        if c.closing then drop t c
        else
          (* The backlog drained: execute any requests that backpressure
             left buffered. *)
          process t c
      end

(* -- completions ---------------------------------------------------------- *)

let finish_completion t (cm : completion) =
  let c = cm.cm_job.rj_conn in
  c.inflight <- false;
  if c.doomed then real_drop t c
  else begin
    (match cm.cm_resp with
    | Some resp -> Protocol.encode_response ~version:c.proto c.out resp
    | None ->
        (* The query tried to write (a method with side effects): replay it
           on the writer under the exclusive lock, where writes are legal.
           Already counted once by the reader's [handle_read]. *)
        Stats.incr_server_reroutes ();
        exec_on_writer ~count:false t c cm.cm_job.rj_session cm.cm_job.rj_rq);
    (* Resume frames that arrived while the request was in flight. *)
    process t c
  end

let drain_completions t =
  let rec go () =
    match Chan.try_pop t.dones with
    | None -> ()
    | Some cm ->
        finish_completion t cm;
        go ()
  in
  go ()

let any_inflight t = List.exists (fun c -> c.inflight) t.conns

(* -- idle eviction -------------------------------------------------------- *)

(* Monotonic last-activity queue: every live connection has exactly one
   entry, (re)queued with the wall-clock push time, so entries leave the
   head in push order and each tick pays O(ripe), not O(connections). An
   entry is inspected half a timeout after it was queued: connections that
   were active meanwhile are requeued, stale ones evicted — so eviction
   lands between [idle_timeout] and 1.5x after the last byte. Dead
   connections' entries are dropped lazily ([alive]). *)
let evict_idle t =
  if t.idle_timeout > 0. then begin
    let now = Unix.gettimeofday () in
    let ripe = now -. (t.idle_timeout /. 2.) in
    let rec go () =
      match Queue.peek_opt t.idle_q with
      | Some (enq, c) when enq <= ripe ->
          ignore (Queue.pop t.idle_q);
          if c.alive then
            if (not c.inflight) && now -. c.last > t.idle_timeout then begin
              Stats.incr_server_timeouts ();
              drop t c
            end
            else Queue.push (now, c) t.idle_q;
          go ()
      | _ -> ()
    in
    go ()
  end

(* -- the loop ------------------------------------------------------------- *)

(* The ack point. Under [Group] durability every commit prepared this tick
   becomes durable here, before any reply reaches a socket. [Full] commits
   synced eagerly (nothing pends); [Async] chose to reply without waiting,
   its window bounded by [group_window] in [run_frames] and by checkpoints. *)
let ack_deferred t =
  match Db.durability t.db with
  | Db.Group -> Db.sync_commits t.db
  | Db.Full | Db.Async -> ()

(* Zero-timeout re-polls after the first read pass: requests that arrived
   while this tick was executing earlier ones join the same batch (and the
   same shared fsync) instead of waiting out a full poll round trip.
   Costless for latency — only what has already arrived is taken — and
   bounded so a firehose of pipelined clients cannot starve the ack and
   write phases. *)
let gather_rounds = 8

let want_read c =
  (not c.closing) && (not c.inflight) && (not c.doomed) && out_pending c < out_cap

let rec gather t rounds =
  if rounds > 0 then begin
    Poll.clear t.pset;
    List.iter
      (fun c -> if want_read c then slot_add t (S_conn c) c.fd ~read:true ~write:false)
      t.conns;
    if Poll.length t.pset > 0 && Poll.wait t.pset ~timeout_ms:0 > 0 then begin
      let n = Poll.length t.pset in
      for i = 0 to n - 1 do
        if Poll.is_readable (Poll.revents t.pset i) then
          match t.slots.(i) with
          | S_conn c when c.alive && not c.inflight -> handle_read t c
          | _ -> ()
      done;
      gather t (rounds - 1)
    end
  end

let one_iteration t =
  let now = Unix.gettimeofday () in
  if t.promote_flag then begin
    t.promote_flag <- false;
    match promote t with
    | Ok msg -> Printf.eprintf "replication: %s\n%!" msg
    | Error _ -> ()
  end;
  (match t.upstream with Some u -> try_reconnect t u | None -> ());
  manage_gate t now;
  (* Register interest. Slot indices are dense and index-aligned with
     [t.slots], rebuilt every tick. *)
  Poll.clear t.pset;
  if now >= t.accept_pause then slot_add t S_listen t.listen_fd ~read:true ~write:false;
  (match t.repl_listen_fd with
  | Some fd -> slot_add t S_repl_listen fd ~read:true ~write:false
  | None -> ());
  (match t.metrics_fd with
  | Some fd -> slot_add t S_metrics_listen fd ~read:true ~write:false
  | None -> ());
  List.iter
    (fun m -> slot_add t (S_metrics m) m.m_fd ~read:(not m.m_done) ~write:(m_pending m > 0))
    t.mconns;
  if t.nreaders > 0 then slot_add t S_wake t.wake_r ~read:true ~write:false;
  (match t.upstream with
  | Some ({ u_link = Some l; _ } as u) ->
      slot_add t S_up l.Replication.up_fd ~read:true ~write:(u_pending u > 0)
  | _ -> ());
  List.iter
    (fun c ->
      let r = want_read c in
      let w = (not c.doomed) && out_pending c > 0 && not (gated t c) in
      if r || w then slot_add t (S_conn c) c.fd ~read:r ~write:w)
    t.conns;
  List.iter
    (fun d -> slot_add t (S_down d) d.d_fd ~read:true ~write:(d_pending d > 0))
    t.downstreams;
  (* Completions already queued (or an accept backoff about to lapse) mean
     work is waiting — don't sleep a full tick on it. *)
  let timeout_ms =
    if t.nreaders > 0 && Chan.length t.dones > 0 then 0
    else if t.accept_pause > now then 50
    else 250
  in
  ignore (Poll.wait t.pset ~timeout_ms);
  let n = Poll.length t.pset in
  (* Listeners, the wake pipe and the upstream first: accepts and shipped
     batches applied this tick are visible to everything below. *)
  for i = 0 to n - 1 do
    if Poll.is_readable (Poll.revents t.pset i) then
      match t.slots.(i) with
      | S_listen -> accept_pending t
      | S_repl_listen -> (
          match t.repl_listen_fd with Some fd -> accept_repl t fd | None -> ())
      | S_metrics_listen -> (
          match t.metrics_fd with Some fd -> accept_metrics t fd | None -> ())
      | S_metrics m when List.memq m t.mconns -> handle_metrics_read t m
      | S_wake -> drain_wake t
      | S_up -> (
          match t.upstream with
          | Some ({ u_link = Some l; _ } as u) -> handle_upstream_read t u l
          | _ -> ())
      | _ -> ()
  done;
  (* Client reads: feed frame readers, execute writer requests inline,
     dispatch read-only ones to the reader domains. *)
  for i = 0 to n - 1 do
    if Poll.is_readable (Poll.revents t.pset i) then
      match t.slots.(i) with
      | S_conn c when c.alive && not c.inflight -> handle_read t c
      | _ -> ()
  done;
  gather t gather_rounds;
  (* Reader completions: buffer their replies (and replay any re-routed
     writes) so they join this tick's write phase. *)
  if t.nreaders > 0 then drain_completions t;
  (* Standby acks — read before the write phase so the semi-sync gate sees
     them this tick. *)
  for i = 0 to n - 1 do
    if Poll.is_readable (Poll.revents t.pset i) then
      match t.slots.(i) with
      | S_down d when List.memq d t.downstreams -> handle_downstream_read t d
      | _ -> ()
  done;
  (* Read phase done: everything executed this tick shares one fsync.
     Replies buffered above only hit the sockets below, after it — and the
     fsync fed the observer, so the batches covering this tick's commits
     are already queued on the downstreams. *)
  ack_deferred t;
  (* Write phase, opportunistic: attempt every pending buffer rather than
     only poll's writable set — sockets are rarely full, EAGAIN costs one
     syscall, and batches/acks/replies produced *this* tick get out without
     waiting a poll round. Gated replies stay put. *)
  List.iter
    (fun c ->
      if c.alive && (not c.doomed) && out_pending c > 0 && not (gated t c) then
        handle_write t c)
    t.conns;
  List.iter
    (fun d ->
      if List.memq d t.downstreams then
        if d_pending d > downstream_out_cap then drop_downstream t d
        else if d_pending d > 0 then handle_downstream_write t d)
    t.downstreams;
  (match t.upstream with
  | Some ({ u_link = Some l; _ } as u) when u_pending u > 0 -> handle_upstream_write t u l
  | _ -> ());
  List.iter
    (fun m -> if List.memq m t.mconns && m_pending m > 0 then handle_metrics_write t m)
    t.mconns;
  sweep_mconns t now;
  update_gauges t

(* Graceful shutdown: stop accepting, collect outstanding reader
   completions, stop the reader domains, flush what's already encoded
   (bounded by [drain_deadline]), abort every session's open transaction,
   release the sockets. Requests still sitting unparsed in input buffers
   are dropped — "in-flight" means a response exists. Semi-sync gating is
   not applied here: a graceful shutdown loses nothing, so holding replies
   hostage to a standby would only strand clients. *)
let drain t =
  close_fd t.listen_fd;
  (match t.repl_listen_fd with Some fd -> close_fd fd | None -> ());
  (match t.metrics_fd with Some fd -> close_fd fd | None -> ());
  List.iter (fun m -> drop_mconn t m) t.mconns;
  (match t.upstream with
  | Some u -> ( match u.u_link with Some l -> close_fd l.Replication.up_fd | None -> ())
  | None -> ());
  let deadline = Unix.gettimeofday () +. drain_deadline in
  (* Every dispatched request completes (readers never abandon a job);
     collecting one may execute further frames that connection had
     buffered, which can dispatch again — hence the loop. *)
  let rec settle () =
    drain_completions t;
    if any_inflight t && Unix.gettimeofday () < deadline then begin
      Unix.sleepf 0.005;
      settle ()
    end
  in
  if t.nreaders > 0 then settle ();
  stop_readers t;
  let rec flush () =
    (* Buffers may hold replies whose commits are still pending — both from
       the final serve tick and from backpressured frames that a drained
       write just executed ([handle_write] → [process]). Newly encoded
       replies only reach a socket on the {e next} round, so acking at the
       top of every round keeps the reply-after-fsync guarantee through
       shutdown. *)
    ack_deferred t;
    let pending_c = List.filter (fun c -> out_pending c > 0 && not c.doomed) t.conns in
    let pending_d = List.filter (fun d -> d_pending d > 0) t.downstreams in
    if (pending_c <> [] || pending_d <> []) && Unix.gettimeofday () < deadline then begin
      Poll.clear t.pset;
      List.iter (fun c -> slot_add t (S_conn c) c.fd ~read:false ~write:true) pending_c;
      List.iter (fun d -> slot_add t (S_down d) d.d_fd ~read:false ~write:true) pending_d;
      if Poll.wait t.pset ~timeout_ms:250 > 0 then begin
        let n = Poll.length t.pset in
        for i = 0 to n - 1 do
          if Poll.is_writable (Poll.revents t.pset i) then
            match t.slots.(i) with
            | S_conn c when c.alive -> handle_write t c
            | S_down d when List.memq d t.downstreams -> handle_downstream_write t d
            | _ -> ()
        done
      end;
      flush ()
    end
  in
  flush ();
  List.iter (fun c -> real_drop t c) t.conns;
  List.iter (fun d -> drop_downstream t d) t.downstreams;
  close_fd t.wake_r;
  close_fd t.wake_w

let serve t =
  while not t.stop do
    one_iteration t;
    evict_idle t
  done;
  drain t

(* -- construction --------------------------------------------------------- *)

let bind_listener ~host ~port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 256;
  Unix.set_nonblock fd;
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, p) -> (fd, p)
  | _ -> assert false

let create ?(host = "127.0.0.1") ?(max_conns = 64) ?(idle_timeout = 300.) ?durability
    ?(group_window = 64) ?repl_port ?metrics_port ?(sync_repl = false) ?replica
    ?(domains = 1) ~db ~port () =
  if domains < 1 then invalid_arg "Server.create: domains must be >= 1";
  Option.iter (Db.set_durability db) durability;
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let nreaders = domains - 1 in
  let listen_fd, lport = bind_listener ~host ~port in
  let repl_listen_fd, rport =
    match repl_port with
    | None -> (None, 0)
    | Some p ->
        let fd, p = bind_listener ~host ~port:p in
        (Some fd, p)
  in
  let metrics_fd, mport =
    match metrics_port with
    | None -> (None, 0)
    | Some p ->
        let fd, p = bind_listener ~host ~port:p in
        (Some fd, p)
  in
  let upstream =
    Option.map
      (fun (u_host, u_port, link) ->
        Unix.set_nonblock link.Replication.up_fd;
        {
          u_host;
          u_port;
          u_link = Some link;
          u_out = Buffer.create 64;
          u_out_pos = 0;
          u_retry_at = 0.;
        })
      replica
  in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let job_cap = max 1 (4 * nreaders) in
  let t =
    {
      db;
      listen_fd;
      lport;
      repl_listen_fd;
      rport;
      metrics_fd;
      mport;
      sync_repl;
      max_conns;
      idle_timeout;
      group_window = max 1 group_window;
      read_buf = Bytes.create 65536;
      nreaders;
      engine_lock = Db.latch db;
      jobs = Chan.create job_cap;
      (* Sized past the maximum in-flight count so reader pushes never
         block. *)
      dones = Chan.create (job_cap + nreaders + 8);
      wake_r;
      wake_w;
      pset = Poll.create ();
      slots = Array.make 64 S_none;
      readers = [];
      idle_q = Queue.create ();
      accept_pause = 0.;
      conns = [];
      mconns = [];
      downstreams = [];
      upstream;
      degraded = false;
      gate_since = None;
      promote_flag = false;
      next_session = 0;
      stop = false;
    }
  in
  (match t.repl_listen_fd with
  | Some _ ->
      Db.set_wal_observer db
        (Some (fun ~data ~from_lsn ~to_lsn -> feed t ~data ~from_lsn ~to_lsn))
  | None -> ());
  (* Health gauges, sampled at scrape time. Registration replaces any prior
     server's sampler of the same name (one live server per process is the
     rule), and a sampler that raises — e.g. over an already-closed
     database in tests — reads as 0 rather than failing the scrape. *)
  Stats.register_gauge "server.connections" (fun () -> List.length t.conns);
  Stats.register_gauge "server.read_queue_depth" (fun () -> Chan.length t.jobs);
  Stats.register_gauge "wal.pending_commits" (fun () -> Db.pending_commits db);
  Stats.register_gauge "store.pool_resident" (fun () -> Db.pool_resident db);
  Stats.register_gauge "store.ocache_resident" (fun () -> Db.ocache_resident db);
  (* MVCC health: open write txns, registered snapshots, the GC horizon
     (0 when no snapshot pins one) and the dead-version backlog. *)
  Stats.register_gauge "mvcc.active_txns" (fun () -> List.length (Db.open_txns db));
  Stats.register_gauge "mvcc.snapshots" (fun () -> Db.live_snapshots db);
  Stats.register_gauge "mvcc.oldest_snapshot" (fun () ->
      match Db.oldest_snapshot db with Some ts -> ts | None -> 0);
  Stats.register_gauge "mvcc.chains" (fun () -> Db.mvcc_chains db);
  Stats.register_gauge "mvcc.dead_versions" (fun () -> Db.mvcc_dead_versions db);
  Stats.register_gauge "mvcc.reclaimed" (fun () -> Db.mvcc_reclaimed db);
  (* A replica announces its position and drains whatever the primary
     pipelined behind the bootstrap handshake. *)
  (match t.upstream with
  | Some ({ u_link = Some l; _ } as u) ->
      queue_ack t u;
      process_upstream t u l
  | _ -> ());
  if nreaders > 0 then
    t.readers <- List.init nreaders (fun _ -> Domain.spawn (fun () -> reader_loop t));
  t

(* -- fork helper for tests and benchmarks --------------------------------- *)

let spawn_full ?max_conns ?idle_timeout ?durability ?group_window ?repl_port ?metrics_port
    ?slow_query_ms ?sync_repl ?replica_of ?domains ~db_dir () =
  let r, w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 -> (
      Unix.close r;
      let rc =
        try
          (* The forked image inherits the parent's process-global counters
             and histograms (a test or bench harness may have accumulated
             thousands of WAL syncs by now). Zero them before opening the
             database so this server's /metrics and .stats describe this
             server — recovery counters bumped by the open below survive. *)
          Ode_util.Stats.reset ();
          ignore (Ode_util.Histogram.rows ~reset:true ());
          let db, replica =
            match replica_of with
            | None -> (Ode.Database.open_ db_dir, None)
            | Some (host, port) ->
                let db, up = Replication.bootstrap ~db_dir ~host ~port () in
                (db, Some (host, port, up))
          in
          Option.iter
            (fun ms ->
              Ode_util.Slowlog.configure
                ~log_path:(Filename.concat db_dir "slow_query.log")
                ~threshold_ms:ms ())
            slow_query_ms;
          (* Role label for trace dumps: a primary's and a standby's dump
             stay distinguishable when merged (same as bin/ode_server). *)
          Ode_util.Trace.set_process_label
            (match replica_of with
            | Some _ -> "ode_server (replica)"
            | None -> "ode_server");
          (* Reader domains spawn here, in the child — [create] runs after
             the fork, so the forked image never contains running domains. *)
          let t =
            create ?max_conns ?idle_timeout ?durability ?group_window ?repl_port
              ?metrics_port ?sync_repl ?replica ?domains ~db ~port:0 ()
          in
          handle_signals t;
          let msg = Printf.sprintf "%d %d %d\n" t.lport t.rport t.mport in
          ignore (Unix.write_substring w msg 0 (String.length msg));
          Unix.close w;
          serve t;
          Ode.Database.close db;
          0
        with _ -> 1
      in
      (* _exit: never run the parent's at_exit handlers in the child. *)
      Unix._exit rc)
  | pid ->
      Unix.close w;
      let buf = Bytes.create 64 in
      let n = Unix.read r buf 0 64 in
      Unix.close r;
      if n <= 0 then failwith "Server.spawn: child died before reporting its ports";
      (match String.split_on_char ' ' (String.trim (Bytes.sub_string buf 0 n)) with
      | [ cp; rp; mp ] -> (pid, int_of_string cp, int_of_string rp, int_of_string mp)
      | _ -> failwith "Server.spawn: malformed port report")

let spawn ?max_conns ?idle_timeout ?durability ?group_window ?repl_port ?sync_repl
    ?replica_of ?domains ~db_dir () =
  let pid, port, _, _ =
    spawn_full ?max_conns ?idle_timeout ?durability ?group_window ?repl_port ?sync_repl
      ?replica_of ?domains ~db_dir ()
  in
  (pid, port)
