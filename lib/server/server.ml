(* Single-threaded Unix.select event loop. One iteration: accept what's
   pending, read what's readable (feeding each connection's frame reader and
   executing any complete requests inline), write what's writable, evict
   idlers. Requests run to completion on this one domain — sessions
   interleave between requests, never inside one, which is what lets the
   engine's process-global state (Stats/Trace/Histogram, buffer pool) stay
   lock-free.

   The iteration doubles as the group-commit batch scheduler. Replies are
   never written from the read phase — they accumulate in each connection's
   [out] buffer — and between the read phase and the write phase sits the
   ack point: one [Database.sync_commits] covering every autocommit executed
   this tick. So under [Group] durability a reply can only reach the socket
   after the fsync that made its commit durable, while a tick that executed
   N requests paid for one fsync, not N. *)

module Stats = Ode_util.Stats
module Db = Ode.Database

type conn = {
  fd : Unix.file_descr;
  rd : Protocol.reader;
  out : Buffer.t;             (* encoded responses awaiting the socket *)
  mutable out_pos : int;      (* written prefix of [out] *)
  mutable state : [ `Hello | `Active of Session.t ];
  mutable closing : bool;     (* close once [out] drains *)
  mutable last : float;       (* last byte received (idle eviction) *)
}

type t = {
  db : Ode.Database.t;
  listen_fd : Unix.file_descr;
  lport : int;
  max_conns : int;
  idle_timeout : float;
  group_window : int;         (* force a sync once this many commits pend *)
  read_buf : bytes;           (* scratch shared by every read *)
  mutable conns : conn list;
  mutable next_session : int;
  mutable stop : bool;
}

(* Stop reading a connection once this much response data is backed up;
   reads resume when the client drains its socket. *)
let out_cap = 1 lsl 20

(* Bounded flush window for graceful shutdown. *)
let drain_deadline = 5.0

let create ?(host = "127.0.0.1") ?(max_conns = 64) ?(idle_timeout = 300.) ?durability
    ?(group_window = 64) ~db ~port () =
  if not (Domain.is_main_domain ()) then
    invalid_arg "Server.create: the serving model is single-domain (see stats.mli)";
  Option.iter (Db.set_durability db) durability;
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let lport =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  {
    db;
    listen_fd;
    lport;
    max_conns;
    idle_timeout;
    group_window = max 1 group_window;
    read_buf = Bytes.create 65536;
    conns = [];
    next_session = 0;
    stop = false;
  }

let port t = t.lport
let connections t = List.length t.conns
let shutdown t = t.stop <- true

let handle_signals t =
  let h = Sys.Signal_handle (fun _ -> shutdown t) in
  Sys.set_signal Sys.sigint h;
  Sys.set_signal Sys.sigterm h

let out_pending c = Buffer.length c.out - c.out_pos

let drop t c =
  (match c.state with `Active s -> Session.close s | `Hello -> ());
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  t.conns <- List.filter (fun c' -> c' != c) t.conns

(* -- accepting ----------------------------------------------------------- *)

let rec accept_pending t =
  match Unix.accept ~cloexec:true t.listen_fd with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (EINTR, _, _) -> accept_pending t
  | fd, _ ->
      Stats.incr_server_accepts ();
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      if List.length t.conns >= t.max_conns then begin
        (* Friendly rejection: a complete handshake reply, then goodbye. The
           7-byte write into a fresh socket's empty send buffer cannot
           block. *)
        Stats.incr_server_rejects ();
        (try
           ignore
             (Unix.write_substring fd (Protocol.hello_reply Busy) 0 Protocol.hello_reply_len)
         with Unix.Unix_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ())
      end
      else
        t.conns <-
          {
            fd;
            rd = Protocol.reader ();
            out = Buffer.create 1024;
            out_pos = 0;
            state = `Hello;
            closing = false;
            last = Unix.gettimeofday ();
          }
          :: t.conns;
      accept_pending t

(* -- per-connection processing ------------------------------------------- *)

let try_handshake t c =
  match Protocol.take c.rd Protocol.hello_len with
  | None -> ()
  | Some hello -> (
      match Protocol.parse_hello hello with
      | Ok v when v = Protocol.version ->
          Buffer.add_string c.out (Protocol.hello_reply Accepted);
          t.next_session <- t.next_session + 1;
          c.state <- `Active (Session.create ~id:t.next_session t.db)
      | Ok _ | Error _ ->
          (* Version skew or garbage: answer with a parseable rejection and
             hang up. *)
          Stats.incr_server_rejects ();
          Buffer.add_string c.out (Protocol.hello_reply Bad_version);
          c.closing <- true)

let run_frames t c session =
  try
    let rec go () =
      (* Backpressure: leave complete frames buffered while this client's
         responses are backed up. *)
      if out_pending c < out_cap && not c.closing then
        match Protocol.next_frame c.rd with
        | None -> ()
        | Some body ->
            let rq = Protocol.decode_request body in
            Protocol.encode_response c.out (Session.handle session rq);
            (* Bound the deferred-durability window: a long batch syncs
               every [group_window] commits rather than once at the end. *)
            if Db.pending_commits t.db >= t.group_window then Db.sync_commits t.db;
            (match rq.rq_op with Close -> c.closing <- true | _ -> ());
            go ()
    in
    go ()
  with Ode_util.Codec.Corrupt msg ->
    Protocol.encode_response c.out { rs_id = 0; rs_reply = Error ("protocol error: " ^ msg) };
    c.closing <- true

let process t c =
  (match c.state with `Hello -> try_handshake t c | `Active _ -> ());
  match c.state with `Active s -> run_frames t c s | `Hello -> ()

let handle_read t c =
  match Unix.read c.fd t.read_buf 0 (Bytes.length t.read_buf) with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> drop t c
  | 0 -> drop t c
  | n ->
      Stats.add_server_bytes_in n;
      c.last <- Unix.gettimeofday ();
      Protocol.feed c.rd t.read_buf n;
      process t c

let handle_write t c =
  let data = Buffer.contents c.out in
  match Unix.write_substring c.fd data c.out_pos (String.length data - c.out_pos) with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> drop t c
  | n ->
      Stats.add_server_bytes_out n;
      c.out_pos <- c.out_pos + n;
      if c.out_pos = Buffer.length c.out then begin
        Buffer.clear c.out;
        c.out_pos <- 0;
        if c.closing then drop t c
        else
          (* The backlog drained: execute any requests that backpressure
             left buffered. *)
          process t c
      end

let evict_idle t =
  if t.idle_timeout > 0. then begin
    let now = Unix.gettimeofday () in
    List.iter
      (fun c ->
        if now -. c.last > t.idle_timeout then begin
          Stats.incr_server_timeouts ();
          drop t c
        end)
      t.conns
  end

(* -- the loop ------------------------------------------------------------ *)

(* The ack point. Under [Group] durability every commit prepared this tick
   becomes durable here, before any reply reaches a socket. [Full] commits
   synced eagerly (nothing pends); [Async] chose to reply without waiting,
   its window bounded by [group_window] in [run_frames] and by checkpoints. *)
let ack_deferred t =
  match Db.durability t.db with
  | Db.Group -> Db.sync_commits t.db
  | Db.Full | Db.Async -> ()

(* Zero-timeout re-polls after the first read pass: requests that arrived
   while this tick was executing earlier ones join the same batch (and the
   same shared fsync) instead of waiting out a full select round trip.
   Costless for latency — only what has already arrived is taken — and
   bounded so a firehose of pipelined clients cannot starve the ack and
   write phases. *)
let gather_rounds = 8

let rec gather t rounds =
  if rounds > 0 then begin
    let want = List.filter (fun c -> (not c.closing) && out_pending c < out_cap) t.conns in
    if want <> [] then
      match Unix.select (List.map (fun c -> c.fd) want) [] [] 0.0 with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | [], _, _ -> ()
      | readable, _, _ ->
          List.iter
            (fun c -> if List.memq c t.conns && List.memq c.fd readable then handle_read t c)
            want;
          gather t (rounds - 1)
  end

let one_iteration t =
  let want_read = List.filter (fun c -> (not c.closing) && out_pending c < out_cap) t.conns in
  let want_write = List.filter (fun c -> out_pending c > 0) t.conns in
  let reads = t.listen_fd :: List.map (fun c -> c.fd) want_read in
  let writes = List.map (fun c -> c.fd) want_write in
  match Unix.select reads writes [] 0.25 with
  | exception Unix.Unix_error (EINTR, _, _) -> () (* signal: loop re-checks [stop] *)
  | readable, writable, _ ->
      if List.memq t.listen_fd readable then accept_pending t;
      List.iter
        (fun c -> if List.memq c.fd readable then handle_read t c)
        want_read;
      gather t gather_rounds;
      (* Read phase done: everything executed this tick shares one fsync.
         Replies buffered above only hit the sockets below, after it. (The
         [want_write] backlog predates this tick, so it was acked by an
         earlier pass.) *)
      ack_deferred t;
      List.iter
        (fun c ->
          (* [handle_read] may have dropped it already. *)
          if List.memq c t.conns && List.memq c.fd writable then handle_write t c)
        want_write

(* Graceful shutdown: stop accepting, flush what's already encoded (bounded
   by [drain_deadline]), abort every session's open transaction, release
   the sockets. Requests still sitting unparsed in input buffers are
   dropped — "in-flight" means a response exists. *)
let drain t =
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  let deadline = Unix.gettimeofday () +. drain_deadline in
  let rec flush () =
    (* Buffers may hold replies whose commits are still pending — both from
       the final serve tick and from backpressured frames that a drained
       write just executed ([handle_write] → [process]). Newly encoded
       replies only reach a socket on the {e next} round, so acking at the
       top of every round keeps the reply-after-fsync guarantee through
       shutdown. *)
    ack_deferred t;
    let pending = List.filter (fun c -> out_pending c > 0) t.conns in
    if pending <> [] && Unix.gettimeofday () < deadline then begin
      (match Unix.select [] (List.map (fun c -> c.fd) pending) [] 0.25 with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | _, writable, _ ->
          List.iter
            (fun c -> if List.memq c t.conns && List.memq c.fd writable then handle_write t c)
            pending);
      flush ()
    end
  in
  flush ();
  List.iter (fun c -> drop t c) t.conns

let serve t =
  while not t.stop do
    one_iteration t;
    evict_idle t
  done;
  drain t

(* -- fork helper for tests and benchmarks -------------------------------- *)

let spawn ?max_conns ?idle_timeout ?durability ?group_window ~db_dir () =
  let r, w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 -> (
      Unix.close r;
      let rc =
        try
          let db = Ode.Database.open_ db_dir in
          let t = create ?max_conns ?idle_timeout ?durability ?group_window ~db ~port:0 () in
          handle_signals t;
          let msg = string_of_int (port t) ^ "\n" in
          ignore (Unix.write_substring w msg 0 (String.length msg));
          Unix.close w;
          serve t;
          Ode.Database.close db;
          0
        with _ -> 1
      in
      (* _exit: never run the parent's at_exit handlers in the child. *)
      Unix._exit rc)
  | pid ->
      Unix.close w;
      let buf = Bytes.create 16 in
      let n = Unix.read r buf 0 16 in
      Unix.close r;
      if n <= 0 then failwith "Server.spawn: child died before reporting its port";
      (pid, int_of_string (String.trim (Bytes.sub_string buf 0 n)))
