(** One connected client's server-side state: a {!Ode.Shell} of its own
    (variable bindings, autocommit/explicit-transaction rules) whose
    [print] output is captured per request, plus the serving metrics —
    every handled request lands in the [server.request] histogram, emits a
    [server.request] trace span when tracing is on, and bumps the
    [server.requests] counter.

    Transactions run under MVCC snapshot isolation: autocommitted
    statements from any number of sessions interleave freely (the event
    loop serializes writing requests on one domain, and each statement is
    its own transaction), and any number of sessions hold explicit
    [begin;] transactions concurrently, each against its own snapshot.
    When two of them write the same key, the first committer wins and the
    loser's commit returns the protocol's distinct retryable
    [Err_conflict] reply (its transaction is auto-aborted server-side);
    clients replay the transaction. Disconnect, idle eviction and server
    shutdown all roll an open transaction back ({!close}), so a vanished
    client cannot wedge the server. *)

type t

val create : ?id:int -> Ode.Database.t -> t
(** [id] labels the session in trace spans (the server uses the accept
    counter). *)

val id : t -> int

val in_transaction : t -> bool
(** Is this session inside an explicit [begin;] transaction? The server
    keeps such sessions' queries on the writer domain (they must see the
    transaction's own writes). *)

val handle : ?count:bool -> ?queue_wait_ns:int -> t -> Protocol.request -> Protocol.response
(** Execute one request on the writer domain. Never raises: interpreter and
    parse errors come back as [Error] replies (first-committer-wins aborts
    as [Err_conflict]); only the response id echoes the request id.
    Queries run in an ordinary write transaction, so methods that write
    are legal. Installs the database's trigger action printer
    for the duration. [count:false] skips the [server.requests] bump (used
    when re-executing a request already counted by {!handle_read}).
    [queue_wait_ns] (default 0) is how long the request sat queued before
    execution — reported in the slow-query log, see {!Ode_util.Slowlog}.

    The request's trace id ([rq_trace]) is the ambient
    {!Ode_util.Trace.current_trace_id} for the duration: the
    [server.request] span, nested engine spans, WAL commit records and any
    slow-query entry all carry it. *)

val handle_read : ?queue_wait_ns:int -> t -> Protocol.request -> Protocol.response
(** Execute one read-only request ([Ping] or [Query]) on a reader domain:
    queries run in a detached read-only transaction against its own MVCC
    snapshot. Raises {!Ode.Types.Read_only_txn} when the
    query attempts a write (before any shared state is touched) — the
    server re-routes such requests to the writer and replays them with
    {!handle}. *)

val close : t -> unit
(** Roll back the session's open explicit transaction, if any. Idempotent;
    called on disconnect, eviction and server shutdown. *)
