(* Wire protocol: handshake + length-prefixed frames over Ode_util.Codec.
   See protocol.mli for the layout. *)

module Codec = Ode_util.Codec

let magic = "ODEP"

(* v3 added the optional request trace id; v4 the distinct retryable
   conflict reply (MVCC first-committer-wins aborts). The server accepts
   any version in [min_version, version] and frames are encoded/decoded
   per the negotiated version, so older clients keep connecting (their
   requests carry no trace id, and conflicts reach them as ordinary
   errors with the "conflict: " prefix). *)
let version = 4
let min_version = 2
let max_frame_len = 16 * 1024 * 1024

(* Replication connections carry their own magic (so a replica pointed at a
   client port — or vice versa — fails fast) and a larger frame cap:
   snapshot messages carry whole data files. *)
let repl_magic = "ODER"
let repl_max_frame_len = 256 * 1024 * 1024

(* -- handshake ---------------------------------------------------------- *)

let hello =
  let b = Buffer.create 8 in
  Buffer.add_string b magic;
  Codec.put_u16 b version;
  Buffer.contents b

let hello_len = String.length hello

type status = Accepted | Busy | Bad_version

let status_byte = function Accepted -> 0 | Busy -> 1 | Bad_version -> 2

(* The reply echoes the NEGOTIATED version (the client's, when the server
   accepted it), so both sides encode subsequent frames identically. *)
let hello_reply ?(negotiated = version) st =
  let b = Buffer.create 8 in
  Buffer.add_string b magic;
  Codec.put_u16 b negotiated;
  Codec.put_u8 b (status_byte st);
  Buffer.contents b

let hello_reply_len = hello_len + 1

let parse_hello s =
  if String.length s <> hello_len then Error "handshake: wrong length"
  else if String.sub s 0 4 <> magic then Error "handshake: bad magic"
  else
    let c = Codec.cursor ~pos:4 s in
    Ok (Codec.get_u16 c)

let parse_hello_reply s =
  if String.length s <> hello_reply_len then Error "handshake reply: wrong length"
  else if String.sub s 0 4 <> magic then Error "handshake reply: bad magic"
  else
    let c = Codec.cursor ~pos:4 s in
    let v = Codec.get_u16 c in
    match Codec.get_u8 c with
    | 0 -> Ok v (* the negotiated version: encode frames per it *)
    | 1 -> Error "server busy (connection limit reached)"
    | 2 -> Error (Printf.sprintf "protocol version mismatch (server %d, client %d)" v version)
    | n -> Error (Printf.sprintf "handshake reply: unknown status %d" n)

(* -- requests / responses ----------------------------------------------- *)

type op = Ping | Exec of string | Query of string | Dot of string | Close

(* [rq_trace] is the client-assigned trace id (0 = untraced); it rides the
   wire only on v3+ connections. *)
type request = { rq_id : int; rq_trace : int; rq_op : op }
type reply =
  | Pong
  | Output of string
  | Rows of string list
  | Error of string
  | Err_conflict of string
      (* the transaction lost first-committer-wins and was aborted;
         retryable by re-executing the whole transaction *)

(* [rs_lsn] is the server's commit LSN when the request was handled: on a
   primary the last committed transaction (so a write's ack carries the LSN
   that made it in), on a replica the replication apply position. Clients
   use it for read-your-writes routing. *)
type response = { rs_id : int; rs_lsn : int; rs_reply : reply }

(* Encode [body] into [b] as one frame: u32 length, then the body. *)
let frame b body =
  let len = Buffer.length body in
  if len > max_frame_len then
    invalid_arg (Printf.sprintf "protocol: frame body %d exceeds %d bytes" len max_frame_len);
  Codec.put_u32 b len;
  Buffer.add_buffer b body

let encode_request ?(version = version) b { rq_id; rq_trace; rq_op } =
  let body = Buffer.create 64 in
  Codec.put_u32 body rq_id;
  if version >= 3 then Codec.put_int body rq_trace;
  (match rq_op with
  | Ping -> Codec.put_u8 body 0
  | Exec src ->
      Codec.put_u8 body 1;
      Codec.put_string body src
  | Query src ->
      Codec.put_u8 body 2;
      Codec.put_string body src
  | Dot line ->
      Codec.put_u8 body 3;
      Codec.put_string body line
  | Close -> Codec.put_u8 body 4);
  frame b body

let encode_response ?(version = version) b { rs_id; rs_lsn; rs_reply } =
  let body = Buffer.create 64 in
  Codec.put_u32 body rs_id;
  Codec.put_int body rs_lsn;
  (match rs_reply with
  | Pong -> Codec.put_u8 body 0
  | Output s ->
      Codec.put_u8 body 1;
      Codec.put_string body s
  | Rows rows ->
      Codec.put_u8 body 2;
      Codec.put_u32 body (List.length rows);
      List.iter (Codec.put_string body) rows
  | Error msg ->
      Codec.put_u8 body 3;
      Codec.put_string body msg
  | Err_conflict msg ->
      if version >= 4 then begin
        Codec.put_u8 body 4;
        Codec.put_string body msg
      end
      else begin
        (* Pre-v4 peers know no conflict tag; they get an ordinary error
           whose prefix still marks it recognizably. *)
        Codec.put_u8 body 3;
        Codec.put_string body ("conflict: " ^ msg)
      end);
  frame b body

let check_consumed c =
  if not (Codec.at_end c) then
    raise (Codec.Corrupt (Printf.sprintf "protocol: %d trailing bytes in frame" (Codec.remaining c)))

let decode_request ?(version = version) s =
  let c = Codec.cursor s in
  let rq_id = Codec.get_u32 c in
  let rq_trace = if version >= 3 then Codec.get_int c else 0 in
  let rq_op =
    match Codec.get_u8 c with
    | 0 -> Ping
    | 1 -> Exec (Codec.get_string c)
    | 2 -> Query (Codec.get_string c)
    | 3 -> Dot (Codec.get_string c)
    | 4 -> Close
    | n -> raise (Codec.Corrupt (Printf.sprintf "protocol: unknown opcode %d" n))
  in
  check_consumed c;
  { rq_id; rq_trace; rq_op }

let decode_response s =
  let c = Codec.cursor s in
  let rs_id = Codec.get_u32 c in
  let rs_lsn = Codec.get_int c in
  let rs_reply =
    match Codec.get_u8 c with
    | 0 -> Pong
    | 1 -> Output (Codec.get_string c)
    | 2 ->
        let n = Codec.get_u32 c in
        if n > max_frame_len then
          raise (Codec.Corrupt (Printf.sprintf "protocol: absurd row count %d" n));
        Rows (List.init n (fun _ -> Codec.get_string c))
    | 3 -> Error (Codec.get_string c)
    | 4 -> Err_conflict (Codec.get_string c)
    | n -> raise (Codec.Corrupt (Printf.sprintf "protocol: unknown reply tag %d" n))
  in
  check_consumed c;
  { rs_id; rs_lsn; rs_reply }

(* -- incremental frame extraction --------------------------------------- *)

(* Pending bytes live in [buf]; [pos] is the consumed prefix. The buffer is
   compacted whenever everything buffered has been consumed, which in
   practice is after every batch of frames (requests are small). *)
type reader = { mutable buf : Buffer.t; mutable pos : int; rd_max : int }

let reader ?(max_len = max_frame_len) () = { buf = Buffer.create 4096; pos = 0; rd_max = max_len }

let feed r bytes n = Buffer.add_subbytes r.buf bytes 0 n
let buffered r = Buffer.length r.buf - r.pos

let compact r =
  if r.pos > 0 && r.pos = Buffer.length r.buf then begin
    Buffer.clear r.buf;
    r.pos <- 0
  end

let take r n =
  if buffered r < n then None
  else begin
    let s = Buffer.sub r.buf r.pos n in
    r.pos <- r.pos + n;
    compact r;
    Some s
  end

let peek_u32 r =
  let b i = Char.code (Buffer.nth r.buf (r.pos + i)) in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let next_frame r =
  if buffered r < 4 then None
  else begin
    let len = peek_u32 r in
    if len > r.rd_max then
      raise
        (Codec.Corrupt (Printf.sprintf "protocol: frame of %d bytes exceeds %d" len r.rd_max));
    if buffered r < 4 + len then None
    else begin
      let s = Buffer.sub r.buf (r.pos + 4) len in
      r.pos <- r.pos + 4 + len;
      compact r;
      Some s
    end
  end

(* -- replication stream ------------------------------------------------- *)

(* A replica opens with [repl_hello] (magic + version, unframed), then both
   sides exchange frames. The replica announces its apply LSN; the primary
   answers with either a resume point (and then streams batches) or a
   snapshot (the data files at a checkpoint) followed by batches. The
   replica acknowledges each applied batch so the primary can track lag and
   gate semi-sync acks. *)

type repl_msg =
  | R_hello of int  (* replica's current commit LSN; fresh store = 0 *)
  | R_resume of int  (* primary will stream WAL batches from this LSN *)
  | R_snapshot of int * (string * string) list  (* LSN; data files by name *)
  | R_batch of int * int * string  (* (from_lsn, to_lsn], raw WAL frames *)
  | R_ack of int  (* replica has durably applied up to this LSN *)

let repl_hello =
  let b = Buffer.create 8 in
  Buffer.add_string b repl_magic;
  Codec.put_u16 b version;
  Buffer.contents b

let repl_hello_len = String.length repl_hello

let parse_repl_hello s =
  (* [reply]'s [Error] constructor shadows [result]'s from here on down. *)
  if String.length s <> repl_hello_len then Stdlib.Error "repl handshake: wrong length"
  else if String.sub s 0 4 <> repl_magic then Stdlib.Error "repl handshake: bad magic"
  else
    let c = Codec.cursor ~pos:4 s in
    let v = Codec.get_u16 c in
    if v >= min_version && v <= version then Stdlib.Ok ()
    else
      Stdlib.Error
        (Printf.sprintf "repl handshake: version mismatch (peer %d, ours %d)" v version)

let encode_repl b msg =
  let body = Buffer.create 64 in
  (match msg with
  | R_hello lsn ->
      Codec.put_u8 body 0;
      Codec.put_int body lsn
  | R_resume lsn ->
      Codec.put_u8 body 1;
      Codec.put_int body lsn
  | R_snapshot (lsn, files) ->
      Codec.put_u8 body 2;
      Codec.put_int body lsn;
      Codec.put_u32 body (List.length files);
      List.iter
        (fun (name, data) ->
          Codec.put_string body name;
          Codec.put_string body data)
        files
  | R_batch (from_lsn, to_lsn, data) ->
      Codec.put_u8 body 3;
      Codec.put_int body from_lsn;
      Codec.put_int body to_lsn;
      Codec.put_string body data
  | R_ack lsn ->
      Codec.put_u8 body 4;
      Codec.put_int body lsn);
  let len = Buffer.length body in
  if len > repl_max_frame_len then
    invalid_arg (Printf.sprintf "protocol: repl frame body %d exceeds %d bytes" len repl_max_frame_len);
  Codec.put_u32 b len;
  Buffer.add_buffer b body

let decode_repl s =
  let c = Codec.cursor s in
  let msg =
    match Codec.get_u8 c with
    | 0 -> R_hello (Codec.get_int c)
    | 1 -> R_resume (Codec.get_int c)
    | 2 ->
        let lsn = Codec.get_int c in
        let n = Codec.get_u32 c in
        if n > 64 then raise (Codec.Corrupt (Printf.sprintf "protocol: absurd snapshot file count %d" n));
        let files =
          List.init n (fun _ ->
              let name = Codec.get_string c in
              let data = Codec.get_string c in
              (name, data))
        in
        R_snapshot (lsn, files)
    | 3 ->
        let from_lsn = Codec.get_int c in
        let to_lsn = Codec.get_int c in
        R_batch (from_lsn, to_lsn, Codec.get_string c)
    | 4 -> R_ack (Codec.get_int c)
    | n -> raise (Codec.Corrupt (Printf.sprintf "protocol: unknown repl tag %d" n))
  in
  check_consumed c;
  msg
