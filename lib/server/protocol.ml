(* Wire protocol: handshake + length-prefixed frames over Ode_util.Codec.
   See protocol.mli for the layout. *)

module Codec = Ode_util.Codec

let magic = "ODEP"
let version = 1
let max_frame_len = 16 * 1024 * 1024

(* -- handshake ---------------------------------------------------------- *)

let hello =
  let b = Buffer.create 8 in
  Buffer.add_string b magic;
  Codec.put_u16 b version;
  Buffer.contents b

let hello_len = String.length hello

type status = Accepted | Busy | Bad_version

let status_byte = function Accepted -> 0 | Busy -> 1 | Bad_version -> 2

let hello_reply st =
  let b = Buffer.create 8 in
  Buffer.add_string b magic;
  Codec.put_u16 b version;
  Codec.put_u8 b (status_byte st);
  Buffer.contents b

let hello_reply_len = hello_len + 1

let parse_hello s =
  if String.length s <> hello_len then Error "handshake: wrong length"
  else if String.sub s 0 4 <> magic then Error "handshake: bad magic"
  else
    let c = Codec.cursor ~pos:4 s in
    Ok (Codec.get_u16 c)

let parse_hello_reply s =
  if String.length s <> hello_reply_len then Error "handshake reply: wrong length"
  else if String.sub s 0 4 <> magic then Error "handshake reply: bad magic"
  else
    let c = Codec.cursor ~pos:4 s in
    let v = Codec.get_u16 c in
    match Codec.get_u8 c with
    | 0 -> Ok ()
    | 1 -> Error "server busy (connection limit reached)"
    | 2 -> Error (Printf.sprintf "protocol version mismatch (server %d, client %d)" v version)
    | n -> Error (Printf.sprintf "handshake reply: unknown status %d" n)

(* -- requests / responses ----------------------------------------------- *)

type op = Ping | Exec of string | Query of string | Dot of string | Close
type request = { rq_id : int; rq_op : op }
type reply = Pong | Output of string | Rows of string list | Error of string
type response = { rs_id : int; rs_reply : reply }

(* Encode [body] into [b] as one frame: u32 length, then the body. *)
let frame b body =
  let len = Buffer.length body in
  if len > max_frame_len then
    invalid_arg (Printf.sprintf "protocol: frame body %d exceeds %d bytes" len max_frame_len);
  Codec.put_u32 b len;
  Buffer.add_buffer b body

let encode_request b { rq_id; rq_op } =
  let body = Buffer.create 64 in
  Codec.put_u32 body rq_id;
  (match rq_op with
  | Ping -> Codec.put_u8 body 0
  | Exec src ->
      Codec.put_u8 body 1;
      Codec.put_string body src
  | Query src ->
      Codec.put_u8 body 2;
      Codec.put_string body src
  | Dot line ->
      Codec.put_u8 body 3;
      Codec.put_string body line
  | Close -> Codec.put_u8 body 4);
  frame b body

let encode_response b { rs_id; rs_reply } =
  let body = Buffer.create 64 in
  Codec.put_u32 body rs_id;
  (match rs_reply with
  | Pong -> Codec.put_u8 body 0
  | Output s ->
      Codec.put_u8 body 1;
      Codec.put_string body s
  | Rows rows ->
      Codec.put_u8 body 2;
      Codec.put_u32 body (List.length rows);
      List.iter (Codec.put_string body) rows
  | Error msg ->
      Codec.put_u8 body 3;
      Codec.put_string body msg);
  frame b body

let check_consumed c =
  if not (Codec.at_end c) then
    raise (Codec.Corrupt (Printf.sprintf "protocol: %d trailing bytes in frame" (Codec.remaining c)))

let decode_request s =
  let c = Codec.cursor s in
  let rq_id = Codec.get_u32 c in
  let rq_op =
    match Codec.get_u8 c with
    | 0 -> Ping
    | 1 -> Exec (Codec.get_string c)
    | 2 -> Query (Codec.get_string c)
    | 3 -> Dot (Codec.get_string c)
    | 4 -> Close
    | n -> raise (Codec.Corrupt (Printf.sprintf "protocol: unknown opcode %d" n))
  in
  check_consumed c;
  { rq_id; rq_op }

let decode_response s =
  let c = Codec.cursor s in
  let rs_id = Codec.get_u32 c in
  let rs_reply =
    match Codec.get_u8 c with
    | 0 -> Pong
    | 1 -> Output (Codec.get_string c)
    | 2 ->
        let n = Codec.get_u32 c in
        if n > max_frame_len then
          raise (Codec.Corrupt (Printf.sprintf "protocol: absurd row count %d" n));
        Rows (List.init n (fun _ -> Codec.get_string c))
    | 3 -> Error (Codec.get_string c)
    | n -> raise (Codec.Corrupt (Printf.sprintf "protocol: unknown reply tag %d" n))
  in
  check_consumed c;
  { rs_id; rs_reply }

(* -- incremental frame extraction --------------------------------------- *)

(* Pending bytes live in [buf]; [pos] is the consumed prefix. The buffer is
   compacted whenever everything buffered has been consumed, which in
   practice is after every batch of frames (requests are small). *)
type reader = { mutable buf : Buffer.t; mutable pos : int }

let reader () = { buf = Buffer.create 4096; pos = 0 }

let feed r bytes n = Buffer.add_subbytes r.buf bytes 0 n
let buffered r = Buffer.length r.buf - r.pos

let compact r =
  if r.pos > 0 && r.pos = Buffer.length r.buf then begin
    Buffer.clear r.buf;
    r.pos <- 0
  end

let take r n =
  if buffered r < n then None
  else begin
    let s = Buffer.sub r.buf r.pos n in
    r.pos <- r.pos + n;
    compact r;
    Some s
  end

let peek_u32 r =
  let b i = Char.code (Buffer.nth r.buf (r.pos + i)) in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let next_frame r =
  if buffered r < 4 then None
  else begin
    let len = peek_u32 r in
    if len > max_frame_len then
      raise
        (Codec.Corrupt (Printf.sprintf "protocol: frame of %d bytes exceeds %d" len max_frame_len));
    if buffered r < 4 + len then None
    else begin
      let s = Buffer.sub r.buf (r.pos + 4) len in
      r.pos <- r.pos + 4 + len;
      compact r;
      Some s
    end
  end
