(** The serving event loop: a poll(2) multiplexer on the writer domain,
    with optional reader domains executing read-only requests in parallel.

    One server owns one open {!Ode.Database} and any number of client
    connections, each with its own {!Session}. All I/O is non-blocking and
    handled by the {e writer} domain, which also executes every request
    that can write — [Exec], [Dot], anything inside an explicit
    transaction — one at a time, so transaction semantics are exactly the
    embedded ones. With [domains = n > 1], [n - 1] {e reader} domains drain
    a bounded job queue of [Ping]s and autocommitted [Query]s, each running
    in a detached read-only transaction against the lock-striped storage
    layer. A writer-preferring RW lock interleaves the two kinds: readers
    hold it shared per request, the writer exclusively per writing request,
    so queries always see a structurally quiescent engine while scaling
    across cores. A query that turns out to write is re-routed and replayed
    on the writer (counted in [server.reroutes]). Per connection at most
    one request is in flight at a time, so replies stay in request order.
    With [domains = 1] (the default) everything runs inline on one domain —
    the classic model, no lock, no queues.

    Flow control: a connection whose response backlog exceeds an internal
    cap is not read from until the backlog drains, so a client that stops
    reading cannot balloon server memory. Connections idle longer than
    [idle_timeout] are evicted via a monotonic last-activity queue (cost
    proportional to connections actually due for inspection, not to the
    connection count); their open transaction is rolled back. When
    [max_conns] sessions are connected, new arrivals get a "server busy"
    handshake reply and are closed. There is no descriptor ceiling beyond
    the process rlimit (poll, unlike select, has no FD_SETSIZE): thousands
    of concurrent connections are fine, and descriptor exhaustion
    (EMFILE/ENFILE) pauses accepting briefly — counted in
    [server.accept_backoffs] — instead of failing.

    {2 Group commit and the reply-after-fsync guarantee}

    The event loop is also the group-commit batch scheduler. Each iteration
    runs in strict phases: read — every readable connection's complete
    requests are executed (or dispatched and their completions collected)
    and their replies {e buffered}; ack — one [Database.sync_commits] makes
    every commit prepared this tick durable; write — buffered replies go to
    the sockets. Replies are never written during the read phase, and
    graceful shutdown acks before each flush round, so under [Full] and
    [Group] durability {b no client ever receives a success reply for a
    commit that could be lost in a crash}. [Group] simply amortizes: a tick
    that executed N autocommits from any number of connections pays one
    fsync instead of N. [Async] drops the wait — replies may precede
    durability, with the exposure bounded by [group_window]. Explicit
    transactions and single-request ticks degrade to the eager behavior (a
    batch of one). Reader-executed requests commit nothing and owe no
    fsync; re-routed ones are replayed on the writer before the ack point.

    {2 Replication}

    A server created with [repl_port] is a {e primary}: it listens for
    standbys on a second port, answers each handshake with the WAL suffix
    the standby is missing (or a snapshot of the store when the log was
    checkpointed past it), and thereafter streams every post-fsync commit
    batch — the WAL sync hook fires strictly after the barrier, so a standby
    can never hold a commit the primary could still lose. A server created
    with [replica] is a {e standby}: read-only to clients (writes get a
    retryable "read-only replica" error), it applies shipped batches through
    the engine's redo path under the exclusive lock (its reader domains
    serve stale-but-consistent queries between batches), acknowledges each
    one, reconnects with an exact resume position after stream faults, and
    becomes a primary on [.promote] or SIGUSR1 ({!promote}). With
    [sync_repl] a primary additionally holds each reply until some
    streaming standby has acknowledged the commit it covers (semi-sync),
    degrading — counted in [repl.sync_degraded] — rather than blocking
    forever when no standby keeps up. [.replication] reports role,
    positions, the domain split and per-standby lag. *)

type t

val create :
  ?host:string ->
  ?max_conns:int ->
  ?idle_timeout:float ->
  ?durability:Ode.Database.durability ->
  ?group_window:int ->
  ?repl_port:int ->
  ?metrics_port:int ->
  ?sync_repl:bool ->
  ?replica:string * int * Replication.upstream ->
  ?domains:int ->
  db:Ode.Database.t ->
  port:int ->
  unit ->
  t
(** Bind and listen. [host] defaults to ["127.0.0.1"]; [port] 0 picks an
    ephemeral port (read it back with {!port}). [max_conns] defaults to 64;
    [idle_timeout] to 300 seconds, [<= 0.] disables eviction. [durability],
    when given, is installed on [db] ([Database.set_durability]); omitted,
    the database keeps its current mode. [group_window] (default 64, min 1)
    bounds commits deferred within one batch: a long tick syncs every
    [group_window] commits rather than once at the end.

    [domains] (default 1, min 1) is the total serving domain count: 1 means
    the classic single-domain loop; [n > 1] spawns [n - 1] reader domains
    at creation (joined again on shutdown). The database must not be shared
    with other servers or threads while reader domains exist.

    [repl_port] (0 = ephemeral, see {!repl_port}) additionally serves the
    replication stream. [replica] is [(host, port, upstream)] from
    {!Replication.bootstrap}: serve [db] as a standby of that primary.
    [sync_repl] turns on semi-sync reply gating (primaries only).

    [metrics_port] (0 = ephemeral, see {!metrics_port}) additionally serves
    a minimal HTTP observability endpoint on the same poll loop (no extra
    threads): [GET /metrics] is Prometheus text exposition
    ({!Ode_util.Metrics.prometheus}), [GET /metrics.json] the same data as
    JSON, [GET /health] a one-line JSON liveness document (role, commit and
    durable LSN — a standby's commit LSN is its replication apply
    position — connection and domain counts). One request per connection,
    [Connection: close]. *)

val port : t -> int
(** The bound client port (useful after binding port 0). *)

val repl_port : t -> int
(** The bound replication port; 0 when the server does not serve one. *)

val metrics_port : t -> int
(** The bound metrics HTTP port; 0 when the server does not serve one. *)

val connections : t -> int

val domains : t -> int
(** Total serving domains (1 writer + N readers). *)

val promote : t -> (string, string) result
(** Standby → primary: drop the upstream link, clear the read-only flag,
    start accepting writes (and standbys, if a replication port is bound).
    [Error] on a server that is already primary. Also triggered by the
    [.promote] dot command and SIGUSR1 (via {!handle_signals}). *)

val shutdown : t -> unit
(** Request a graceful stop: async-signal-safe (it only sets a flag), so it
    can be called from a SIGINT handler. {!serve} then stops accepting,
    collects outstanding reader completions and joins the reader domains,
    flushes pending responses (bounded drain), rolls back every session's
    open transaction and returns. *)

val handle_signals : t -> unit
(** Route SIGINT and SIGTERM to {!shutdown}, SIGUSR1 to {!promote}. *)

val serve : t -> unit
(** Run the event loop until {!shutdown}. The caller still owns the
    database and should [Database.close] it after this returns. *)

val spawn :
  ?max_conns:int ->
  ?idle_timeout:float ->
  ?durability:Ode.Database.durability ->
  ?group_window:int ->
  ?repl_port:int ->
  ?sync_repl:bool ->
  ?replica_of:string * int ->
  ?domains:int ->
  db_dir:string ->
  unit ->
  int * int
(** Fork a child process that opens [db_dir], serves it on an ephemeral
    loopback port (SIGINT/SIGTERM trigger graceful shutdown) and exits.
    Returns [(pid, port)] once the child reports its port. Reader domains
    (with [?domains]) are spawned in the child, after the fork. With
    [replica_of:(host, port)] the child bootstraps as a standby of that
    primary instead of opening [db_dir] directly. For tests and benchmarks;
    production deployments run [bin/ode_server]. *)

val spawn_full :
  ?max_conns:int ->
  ?idle_timeout:float ->
  ?durability:Ode.Database.durability ->
  ?group_window:int ->
  ?repl_port:int ->
  ?metrics_port:int ->
  ?slow_query_ms:int ->
  ?sync_repl:bool ->
  ?replica_of:string * int ->
  ?domains:int ->
  db_dir:string ->
  unit ->
  int * int * int * int
(** {!spawn}, but returns [(pid, client_port, repl_port, metrics_port)] —
    the latter two are 0 unless the child was given [?repl_port] /
    [?metrics_port]. [slow_query_ms] arms the child's slow-query log
    ({!Ode_util.Slowlog.configure}) writing to [db_dir/slow_query.log]. *)
