(** The serving event loop: a single-threaded [Unix.select] multiplexer.

    One server owns one open {!Ode.Database} and any number of client
    connections, each with its own {!Session}. All I/O is non-blocking;
    requests are executed to completion one at a time (the engine is
    single-domain by design — {!create} asserts it), so sessions interleave
    at request granularity and transaction semantics are exactly the
    embedded ones.

    Flow control: a connection whose response backlog exceeds an internal
    cap is not read from until the backlog drains, so a client that stops
    reading cannot balloon server memory. Connections idle longer than
    [idle_timeout] are evicted (their open transaction rolled back); when
    [max_conns] sessions are connected, new arrivals get a "server busy"
    handshake reply and are closed. *)

type t

val create :
  ?host:string ->
  ?max_conns:int ->
  ?idle_timeout:float ->
  db:Ode.Database.t ->
  port:int ->
  unit ->
  t
(** Bind and listen. [host] defaults to ["127.0.0.1"]; [port] 0 picks an
    ephemeral port (read it back with {!port}). [max_conns] defaults to 64;
    [idle_timeout] to 300 seconds, [<= 0.] disables eviction. Raises
    [Invalid_argument] when called off the main domain: the engine's
    process-global state (Stats, Trace, Histogram, the buffer pool) is
    unsynchronized, so the serving model is one domain, one event loop. *)

val port : t -> int
(** The bound port (useful after binding port 0). *)

val connections : t -> int

val shutdown : t -> unit
(** Request a graceful stop: async-signal-safe (it only sets a flag), so it
    can be called from a SIGINT handler. {!serve} then stops accepting,
    flushes pending responses (bounded drain), rolls back every session's
    open transaction and returns. *)

val handle_signals : t -> unit
(** Route SIGINT and SIGTERM to {!shutdown}. *)

val serve : t -> unit
(** Run the event loop until {!shutdown}. The caller still owns the
    database and should [Database.close] it after this returns. *)

val spawn :
  ?max_conns:int ->
  ?idle_timeout:float ->
  db_dir:string ->
  unit ->
  int * int
(** Fork a child process that opens [db_dir], serves it on an ephemeral
    loopback port (SIGINT/SIGTERM trigger graceful shutdown) and exits.
    Returns [(pid, port)] once the child reports its port. For tests and
    benchmarks; production deployments run [bin/ode_server]. *)
