(** The ODE wire protocol: a length-prefixed binary framing of shell
    requests and responses, built on {!Ode_util.Codec}.

    A connection opens with a fixed-size plaintext-free handshake — the
    client sends [magic ^ version], the server replies [magic ^ version ^
    status] — after which both sides exchange frames: a [u32] body length
    followed by the body. Frame bodies over {!max_frame_len} are rejected
    before buffering (a 4-byte header is enough to detect them), so a
    malicious or corrupt peer cannot make the server allocate unboundedly.

    Malformed input raises {!Ode_util.Codec.Corrupt}; both sides treat that
    as fatal for the connection. *)

(** {1 Handshake} *)

val magic : string
(** 4 bytes on the front of both hello messages. *)

val version : int
(** Current protocol version, sent as a u16. *)

val hello : string
(** What a client sends immediately after connecting. *)

val hello_len : int

type status = Accepted | Busy | Bad_version

val hello_reply : status -> string
(** The server's fixed-size answer; on anything but [Accepted] the server
    closes the connection right after writing it. *)

val hello_reply_len : int

val parse_hello : string -> (int, string) result
(** Validate a client hello; [Ok v] is the client's protocol version
    (which may differ from ours — the server decides what to do). *)

val parse_hello_reply : string -> (unit, string) result
(** Validate a server hello reply; [Error] carries a rendered reason
    ("server busy", version mismatch, garbage). *)

(** {1 Requests and responses} *)

type op =
  | Ping
  | Exec of string  (** run a program through {!Ode.Shell.exec_catching} *)
  | Query of string  (** bodiless forall; rows come back rendered *)
  | Dot of string  (** a [.command] line *)
  | Close  (** polite goodbye; the server replies then closes *)

type request = { rq_id : int; rq_op : op }

type reply =
  | Pong
  | Output of string  (** captured [print] output of an [Exec] / [Dot] *)
  | Rows of string list  (** [Query] results, one rendered object per row *)
  | Error of string  (** the rendered error message *)

type response = { rs_id : int; rs_reply : reply }

val max_frame_len : int
(** Upper bound on a frame body (16 MiB). *)

val encode_request : Buffer.t -> request -> unit
(** Appends a complete frame (length prefix included). Raises
    [Invalid_argument] if the payload would exceed {!max_frame_len}. *)

val encode_response : Buffer.t -> response -> unit

val decode_request : string -> request
(** Decode one frame body. Raises {!Ode_util.Codec.Corrupt} on malformed
    or trailing bytes. *)

val decode_response : string -> response

(** {1 Incremental frame extraction}

    A [reader] accumulates raw bytes as they arrive from a socket and
    yields complete frame bodies (and, before that, the raw handshake
    bytes). *)

type reader

val reader : unit -> reader

val feed : reader -> bytes -> int -> unit
(** [feed r buf n] appends the first [n] bytes of [buf]. *)

val buffered : reader -> int

val take : reader -> int -> string option
(** [take r n] removes and returns exactly [n] raw bytes, or [None] if
    fewer are buffered — used for the unframed handshake. *)

val next_frame : reader -> string option
(** The next complete frame body, if one is fully buffered. Raises
    {!Ode_util.Codec.Corrupt} as soon as a frame header announces a body
    over {!max_frame_len}, without waiting for the body. *)
