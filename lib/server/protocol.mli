(** The ODE wire protocol: a length-prefixed binary framing of shell
    requests and responses, built on {!Ode_util.Codec}.

    A connection opens with a fixed-size plaintext-free handshake — the
    client sends [magic ^ version], the server replies [magic ^ version ^
    status] — after which both sides exchange frames: a [u32] body length
    followed by the body. Frame bodies over {!max_frame_len} are rejected
    before buffering (a 4-byte header is enough to detect them), so a
    malicious or corrupt peer cannot make the server allocate unboundedly.

    Malformed input raises {!Ode_util.Codec.Corrupt}; both sides treat that
    as fatal for the connection. *)

(** {1 Handshake} *)

val magic : string
(** 4 bytes on the front of both hello messages. *)

val version : int
(** Current protocol version, sent as a u16. v3 added the optional request
    trace id; v4 the distinct retryable {!Err_conflict} reply. *)

val min_version : int
(** Oldest client version the server still speaks (v2: no trace ids).
    Frames are encoded/decoded per the negotiated version, so old clients
    keep working. *)

val hello : string
(** What a client sends immediately after connecting. *)

val hello_len : int

type status = Accepted | Busy | Bad_version

val hello_reply : ?negotiated:int -> status -> string
(** The server's fixed-size answer; on anything but [Accepted] the server
    closes the connection right after writing it. [negotiated] (default
    {!version}) echoes the version the server will speak on this
    connection — the client's own, when accepted. *)

val hello_reply_len : int

val parse_hello : string -> (int, string) result
(** Validate a client hello; [Ok v] is the client's protocol version
    (which may differ from ours — the server decides what to do). *)

val parse_hello_reply : string -> (int, string) result
(** Validate a server hello reply; [Ok v] is the negotiated protocol
    version to encode subsequent frames with. [Error] carries a rendered
    reason ("server busy", version mismatch, garbage). *)

(** {1 Requests and responses} *)

type op =
  | Ping
  | Exec of string  (** run a program through {!Ode.Shell.exec_catching} *)
  | Query of string  (** bodiless forall; rows come back rendered *)
  | Dot of string  (** a [.command] line *)
  | Close  (** polite goodbye; the server replies then closes *)

type request = { rq_id : int; rq_trace : int; rq_op : op }
(** [rq_trace] is the client-assigned trace id (0 = untraced). It rides
    the wire only on v3+ connections; a v2 peer's requests decode with
    [rq_trace = 0]. *)

type reply =
  | Pong
  | Output of string  (** captured [print] output of an [Exec] / [Dot] *)
  | Rows of string list  (** [Query] results, one rendered object per row *)
  | Error of string  (** the rendered error message *)
  | Err_conflict of string
      (** the transaction lost first-committer-wins conflict detection and
          was aborted server-side; retryable by re-executing the whole
          transaction. On pre-v4 connections this is downgraded to
          [Error ("conflict: " ^ msg)]. *)

type response = { rs_id : int; rs_lsn : int; rs_reply : reply }
(** [rs_lsn] is the serving database's commit LSN at response time: on the
    primary, the LSN whose durability the reply's delivery attests (the
    server only flushes replies after the covering fsync); on a replica,
    the replication apply position the answer reflects. Clients track it
    for read-your-writes routing across primary and replicas. *)

val max_frame_len : int
(** Upper bound on a frame body (16 MiB). *)

val encode_request : ?version:int -> Buffer.t -> request -> unit
(** Appends a complete frame (length prefix included), laid out per the
    negotiated [version] (default current). Raises [Invalid_argument] if
    the payload would exceed {!max_frame_len}. *)

val encode_response : ?version:int -> Buffer.t -> response -> unit
(** Appends a complete frame per the negotiated [version] (default
    current); {!Err_conflict} downgrades to a prefixed {!Error} for
    pre-v4 peers. *)

val decode_request : ?version:int -> string -> request
(** Decode one frame body per the negotiated [version]. Raises
    {!Ode_util.Codec.Corrupt} on malformed or trailing bytes. *)

val decode_response : string -> response

(** {1 Incremental frame extraction}

    A [reader] accumulates raw bytes as they arrive from a socket and
    yields complete frame bodies (and, before that, the raw handshake
    bytes). *)

type reader

val reader : ?max_len:int -> unit -> reader
(** [max_len] (default {!max_frame_len}) caps acceptable frame bodies;
    replication connections pass {!repl_max_frame_len} for snapshots. *)

val feed : reader -> bytes -> int -> unit
(** [feed r buf n] appends the first [n] bytes of [buf]. *)

val buffered : reader -> int

val take : reader -> int -> string option
(** [take r n] removes and returns exactly [n] raw bytes, or [None] if
    fewer are buffered — used for the unframed handshake. *)

val next_frame : reader -> string option
(** The next complete frame body, if one is fully buffered. Raises
    {!Ode_util.Codec.Corrupt} as soon as a frame header announces a body
    over the reader's cap, without waiting for the body. *)

(** {1 Replication stream}

    A replica connects to the primary's replication port, sends
    {!repl_hello} (unframed magic + version), then a framed {!R_hello}
    announcing its commit LSN. The primary replies {!R_resume} (it will
    stream the missing WAL suffix) or {!R_snapshot} (the store was
    checkpointed past the replica's position: here are the data files),
    then a stream of {!R_batch} frames — each a post-fsync WAL batch tagged
    with the commit-LSN range it advances. The replica answers applied
    batches with {!R_ack}, which drives the primary's lag gauges and
    semi-sync ack gating. *)

type repl_msg =
  | R_hello of int  (** replica's current commit LSN; fresh store = 0 *)
  | R_resume of int  (** primary streams WAL batches from this LSN *)
  | R_snapshot of int * (string * string) list
      (** store snapshot at this LSN: [(file name, contents)] to install *)
  | R_batch of int * int * string
      (** [(from_lsn, to_lsn, frames)]: raw WAL frames advancing
          [(from_lsn, to_lsn]] *)
  | R_ack of int  (** replica has durably applied up to this LSN *)

val repl_magic : string
val repl_max_frame_len : int
(** Frame cap for replication connections (256 MiB — snapshots carry whole
    data files). *)

val repl_hello : string
val repl_hello_len : int
val parse_repl_hello : string -> (unit, string) result

val encode_repl : Buffer.t -> repl_msg -> unit
(** Appends a complete frame (length prefix included). *)

val decode_repl : string -> repl_msg
(** Decode one frame body. Raises {!Ode_util.Codec.Corrupt} when
    malformed. *)
