(* Reusable poll(2) set: parallel growable buffers handed straight to the C
   stub, so a serving tick registers interest, waits, and walks readiness
   without allocating. Slots are dense indices in registration order — the
   caller keeps its own index-aligned table of what each slot means. *)

external raw_poll : Unix.file_descr array -> int array -> int array -> int -> int -> int
  = "ode_poll_stub_bytecode" "ode_poll_stub_native"

type t = {
  mutable fds : Unix.file_descr array;
  mutable events : int array;
  mutable revents : int array;
  mutable len : int;
}

let create () =
  {
    fds = Array.make 64 Unix.stdin;
    events = Array.make 64 0;
    revents = Array.make 64 0;
    len = 0;
  }

let clear t = t.len <- 0
let length t = t.len

let grow t =
  let cap = Array.length t.fds in
  if t.len = cap then begin
    let n = cap * 2 in
    let fds = Array.make n Unix.stdin in
    let events = Array.make n 0 in
    let revents = Array.make n 0 in
    Array.blit t.fds 0 fds 0 cap;
    Array.blit t.events 0 events 0 cap;
    Array.blit t.revents 0 revents 0 cap;
    t.fds <- fds;
    t.events <- events;
    t.revents <- revents
  end

let add t fd ~read ~write =
  grow t;
  let i = t.len in
  t.fds.(i) <- fd;
  t.events.(i) <- (if read then 1 else 0) lor (if write then 2 else 0);
  t.revents.(i) <- 0;
  t.len <- i + 1;
  i

let wait t ~timeout_ms = raw_poll t.fds t.events t.revents t.len timeout_ms
let revents t i = t.revents.(i)
let is_readable m = m land 1 <> 0
let is_writable m = m land 2 <> 0
