(** The class registry and hierarchy resolution.

    Classes are defined once and never redefined (the paper leaves schema
    evolution out of scope, and so do we). The catalog computes the class
    linearization used for field layout, gathers inherited constraints and
    triggers, resolves method dispatch, and answers subclass queries for
    deep-extent iteration and the [is] operator.

    The catalog also records which clusters exist and which secondary
    indexes were created, and serializes the whole schema (as surface
    syntax) for persistence. *)

exception Schema_error of string

type t

val create : unit -> t

val define : t -> Ode_lang.Ast.class_decl -> Schema.cls
(** Add a class. Raises {!Schema_error} on: duplicate class name, unknown
    parent, a field name inherited from two unrelated classes or clashing
    with an own field, or an unknown class referenced by a field type. *)

val find : t -> string -> Schema.cls option
val find_exn : t -> string -> Schema.cls
val find_by_id : t -> int -> Schema.cls option
val all : t -> Schema.cls list
(** All classes in definition order. *)

val lineage : t -> Schema.cls -> Schema.cls list
(** Ancestors (base classes first, each once) ending with the class itself;
    this is the field layout order. *)

val all_fields : t -> Schema.cls -> Schema.field list
(** Inherited fields first, own fields last. *)

val all_constraints : t -> Schema.cls -> Schema.constr list
(** Every constraint an object of this class must satisfy, including
    inherited ones (paper §5: constraint-based specialization). *)

val find_method : t -> Schema.cls -> string -> Schema.meth option
(** Most-derived definition wins (dynamic dispatch). *)

val find_trigger : t -> Schema.cls -> string -> Schema.trigger option

val is_subclass : t -> sub:string -> super:string -> bool
(** Reflexive and transitive. *)

val subclasses : t -> string -> string list
(** The class and all its (transitive) subclasses, in definition order:
    the classes whose clusters a deep-extent scan visits (paper §3.1.1). *)

(** {1 Cluster and index metadata} *)

val create_cluster : t -> string -> unit
(** Raises {!Schema_error} if the class is unknown or the cluster exists. *)

val has_cluster : t -> Schema.cls -> bool

val add_index : t -> cls:string -> field:string -> unit
(** Raises {!Schema_error} if unknown class/field, non-indexable field type,
    or duplicate index. *)

val indexes : t -> (string * string) list
val indexes_on : t -> string -> string list
(** Indexed field names of a class (indexes declared on the class itself or
    inherited from an ancestor). *)

(** {1 Persistence} *)

val encode : t -> string
val decode : string -> t
