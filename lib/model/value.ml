module Codec = Ode_util.Codec
module Key = Ode_util.Key

type t =
  | Null
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string
  | Ref of Oid.t
  | Vref of Oid.vref
  | VList of t list
  | VSet of t list

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | Str _ -> 4
  | Ref _ -> 5
  | Vref _ -> 6
  | VList _ -> 7
  | VSet _ -> 8

let rec compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Ref x, Ref y -> Oid.compare x y
  | Vref x, Vref y -> Oid.compare_vref x y
  | VList x, VList y | VSet x, VSet y -> compare_list x y
  | _ -> Int.compare (rank a) (rank b)

and compare_list x y =
  match (x, y) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | a :: x', b :: y' -> ( match compare a b with 0 -> compare_list x' y' | c -> c)

let equal a b = compare a b = 0
let hash = Hashtbl.hash

let rec pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Int n -> Fmt.int ppf n
  | Float f -> Fmt.pf ppf "%g" f
  | Bool b -> Fmt.bool ppf b
  | Str s -> Fmt.pf ppf "%S" s
  | Ref o -> Oid.pp ppf o
  | Vref v -> Oid.pp_vref ppf v
  | VList vs -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ", ") pp) vs
  | VSet vs -> Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") pp) vs

let to_string v = Fmt.str "%a" pp v
let set_of_list vs = VSet (List.sort_uniq compare vs)

let as_set = function
  | VSet vs -> vs
  | v -> invalid_arg (Fmt.str "expected a set, got %a" pp v)

let set_add v s =
  let vs = as_set s in
  if List.exists (equal v) vs then s else VSet (List.sort compare (v :: vs))

let set_remove v s = VSet (List.filter (fun x -> not (equal v x)) (as_set s))
let set_mem v s = List.exists (equal v) (as_set s)

(* -- serialization -------------------------------------------------------- *)

let rec encode b = function
  | Null -> Codec.put_u8 b 0
  | Bool v ->
      Codec.put_u8 b 1;
      Codec.put_bool b v
  | Int n ->
      Codec.put_u8 b 2;
      Codec.put_int b n
  | Float f ->
      Codec.put_u8 b 3;
      Codec.put_float b f
  | Str s ->
      Codec.put_u8 b 4;
      Codec.put_string b s
  | Ref o ->
      Codec.put_u8 b 5;
      Oid.encode b o
  | Vref v ->
      Codec.put_u8 b 6;
      Oid.encode_vref b v
  | VList vs ->
      Codec.put_u8 b 7;
      Codec.put_u32 b (List.length vs);
      List.iter (encode b) vs
  | VSet vs ->
      Codec.put_u8 b 8;
      Codec.put_u32 b (List.length vs);
      List.iter (encode b) vs

let rec decode c =
  match Codec.get_u8 c with
  | 0 -> Null
  | 1 -> Bool (Codec.get_bool c)
  | 2 -> Int (Codec.get_int c)
  | 3 -> Float (Codec.get_float c)
  | 4 -> Str (Codec.get_string c)
  | 5 -> Ref (Oid.decode c)
  | 6 -> Vref (Oid.decode_vref c)
  | 7 ->
      let n = Codec.get_u32 c in
      VList (List.init n (fun _ -> decode c))
  | 8 ->
      let n = Codec.get_u32 c in
      VSet (List.init n (fun _ -> decode c))
  | n -> raise (Codec.Corrupt (Printf.sprintf "value: bad tag %d" n))

(* Index keys: a type byte keeps unlike types apart; ints and floats share
   the numeric keyspace so mixed-type predicates behave. *)
let index_key = function
  | Null -> "\000"
  | Bool v -> "\001" ^ Key.of_bool v
  | Int n -> "\002" ^ Key.of_float (float_of_int n)
  | Float f -> "\002" ^ Key.of_float f
  | Str s -> "\003" ^ Key.of_string s
  | Ref o -> "\004" ^ Oid.key o
  | (Vref _ | VList _ | VSet _) as v ->
      invalid_arg (Fmt.str "value %a cannot be an index key" pp v)

let fields_encode fields =
  let b = Buffer.create 128 in
  Codec.put_u16 b (List.length fields);
  List.iter
    (fun (name, v) ->
      Codec.put_string b name;
      encode b v)
    fields;
  Buffer.contents b

let fields_decode s =
  let c = Codec.cursor s in
  let n = Codec.get_u16 c in
  List.init n (fun _ ->
      let name = Codec.get_string c in
      let v = decode c in
      (name, v))
