module Ast = Ode_lang.Ast

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type hooks = {
  get_field : Oid.t -> string -> Value.t option;
  get_field_v : Oid.vref -> string -> Value.t option;
  class_of : Oid.t -> string option;
  is_subclass : sub:string -> super:string -> bool;
  call_method : Value.t -> string -> Value.t list -> Value.t;
  builtin : string -> Value.t list -> Value.t option;
}

let null_hooks =
  {
    get_field = (fun _ _ -> error "no database attached");
    get_field_v = (fun _ _ -> error "no database attached");
    class_of = (fun _ -> None);
    is_subclass = (fun ~sub:_ ~super:_ -> false);
    call_method = (fun _ m _ -> error "unknown method %s" m);
    builtin = (fun _ _ -> None);
  }

let truthy : Value.t -> bool = function
  | Bool b -> b
  | Null -> false
  | v -> error "condition is not boolean: %a" Value.pp v

(* -- arithmetic ------------------------------------------------------------ *)

let arith op_name fi ff (a : Value.t) (b : Value.t) : Value.t =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (fi x y)
  | (Int _ | Float _), (Int _ | Float _) ->
      let f = function Value.Int n -> float_of_int n | Value.Float f -> f | _ -> assert false in
      Float (ff (f a) (f b))
  | _ -> error "cannot apply %s to %a and %a" op_name Value.pp a Value.pp b

let add (a : Value.t) (b : Value.t) : Value.t =
  match (a, b) with
  | Str x, Str y -> Str (x ^ y)
  | VList x, VList y -> VList (x @ y)
  | VSet _, VSet y -> List.fold_left (fun acc v -> Value.set_add v acc) a y
  | _ -> arith "+" ( + ) ( +. ) a b

let sub (a : Value.t) (b : Value.t) : Value.t =
  match (a, b) with
  | VSet _, VSet y -> List.fold_left (fun acc v -> Value.set_remove v acc) a y
  | _ -> arith "-" ( - ) ( -. ) a b

let div (a : Value.t) (b : Value.t) : Value.t =
  match (a, b) with
  | _, Int 0 -> error "division by zero"
  | _, Float 0.0 -> error "division by zero"
  | Int x, Int y -> Int (x / y)
  | _ -> arith "/" ( / ) ( /. ) a b

let modulo (a : Value.t) (b : Value.t) : Value.t =
  match (a, b) with
  | Int _, Int 0 -> error "modulo by zero"
  | Int x, Int y -> Int (x mod y)
  | _ -> error "%% needs integers, got %a and %a" Value.pp a Value.pp b

let ordered op (a : Value.t) (b : Value.t) : Value.t =
  match (a, b) with
  | Null, _ | _, Null -> Bool false
  | (Int _ | Float _), (Int _ | Float _)
  | Str _, Str _
  | Bool _, Bool _ ->
      Bool (op (Value.compare a b) 0)
  | _ -> error "cannot order %a and %a" Value.pp a Value.pp b

(* -- builtins ----------------------------------------------------------------- *)

let size : Value.t -> Value.t = function
  | Str s -> Int (String.length s)
  | VList vs | VSet vs -> Int (List.length vs)
  | v -> error "size: not a string, set or list: %a" Value.pp v

let local_builtin name (args : Value.t list) : Value.t option =
  match (name, args) with
  | "abs", [ Int n ] -> Some (Int (abs n))
  | "abs", [ Float f ] -> Some (Float (Float.abs f))
  | "size", [ v ] -> Some (size v)
  | "min", [ a; b ] -> Some (if Value.compare a b <= 0 then a else b)
  | "max", [ a; b ] -> Some (if Value.compare a b >= 0 then a else b)
  | "int", [ Float f ] -> Some (Int (int_of_float f))
  | "int", [ Int n ] -> Some (Int n)
  | "float", [ Int n ] -> Some (Float (float_of_int n))
  | "float", [ Float f ] -> Some (Float f)
  | "str", [ v ] -> Some (Str (Value.to_string v))
  | ("abs" | "size" | "min" | "max" | "int" | "float" | "str"), _ ->
      error "builtin %s: wrong arguments" name
  | _ -> None

(* -- evaluation ------------------------------------------------------------------ *)

let rec eval hooks ~vars ~this (e : Ast.expr) : Value.t =
  let go e = eval hooks ~vars ~this e in
  match e with
  | Null -> Value.Null
  | Int n -> Int n
  | Float f -> Float f
  | Bool b -> Bool b
  | Str s -> Str s
  | This -> ( match this with Some v -> v | None -> error "no 'this' in scope")
  | Var x -> (
      match List.assoc_opt x vars with
      | Some v -> v
      | None -> error "unbound variable %s" x)
  | Field (e, f) -> (
      match go e with
      | Null -> Null
      | Ref oid -> (
          match hooks.get_field oid f with
          | Some v -> v
          | None -> error "object %a has no field %s" Oid.pp oid f)
      | Vref vr -> (
          match hooks.get_field_v vr f with
          | Some v -> v
          | None -> error "version %a has no field %s" Oid.pp_vref vr f)
      | v -> error "cannot access field %s of %a" f Value.pp v)
  | Unop (Neg, e) -> (
      match go e with
      | Int n -> Int (-n)
      | Float f -> Float (-.f)
      | Null -> Null
      | v -> error "cannot negate %a" Value.pp v)
  | Unop (Not, e) -> Bool (not (truthy (go e)))
  | Binop (And, a, b) -> Bool (truthy (go a) && truthy (go b))
  | Binop (Or, a, b) -> Bool (truthy (go a) || truthy (go b))
  | Binop (Eq, a, b) -> Bool (Value.equal (go a) (go b))
  | Binop (Ne, a, b) -> Bool (not (Value.equal (go a) (go b)))
  | Binop (Lt, a, b) -> ordered ( < ) (go a) (go b)
  | Binop (Le, a, b) -> ordered ( <= ) (go a) (go b)
  | Binop (Gt, a, b) -> ordered ( > ) (go a) (go b)
  | Binop (Ge, a, b) -> ordered ( >= ) (go a) (go b)
  | Binop (Add, a, b) -> add (go a) (go b)
  | Binop (Sub, a, b) -> sub (go a) (go b)
  | Binop (Mul, a, b) -> arith "*" ( * ) ( *. ) (go a) (go b)
  | Binop (Div, a, b) -> div (go a) (go b)
  | Binop (Mod, a, b) -> modulo (go a) (go b)
  | Binop (In, a, b) -> (
      let x = go a in
      match go b with
      | VSet vs | VList vs -> Bool (List.exists (Value.equal x) vs)
      | v -> error "'in' needs a set or list, got %a" Value.pp v)
  | Is (e, cls) -> (
      match go e with
      | Ref oid | Vref { oid; _ } -> (
          match hooks.class_of oid with
          | Some name -> Bool (hooks.is_subclass ~sub:name ~super:cls)
          | None -> Bool false)
      | Null -> Bool false
      | v -> error "'is' needs an object reference, got %a" Value.pp v)
  | SetLit es -> Value.set_of_list (List.map go es)
  | ListLit es -> VList (List.map go es)
  | Call (None, name, args) -> (
      let vals = List.map go args in
      match local_builtin name vals with
      | Some v -> v
      | None -> (
          match hooks.builtin name vals with
          | Some v -> v
          | None -> error "unknown function %s" name))
  | Call (Some recv, name, args) ->
      let r = go recv in
      let vals = List.map go args in
      hooks.call_method r name vals
