module Codec = Ode_util.Codec
module Key = Ode_util.Key

type t = { cls : int; num : int }
type vref = { oid : t; ver : int }

let compare a b =
  match Int.compare a.cls b.cls with 0 -> Int.compare a.num b.num | c -> c

let equal a b = compare a b = 0
let hash a = Hashtbl.hash (a.cls, a.num)
let pp ppf a = Format.fprintf ppf "#%d:%d" a.cls a.num

let compare_vref a b =
  match compare a.oid b.oid with 0 -> Int.compare a.ver b.ver | c -> c

let equal_vref a b = compare_vref a b = 0
let pp_vref ppf a = Format.fprintf ppf "%a@v%d" pp a.oid a.ver

let encode b a =
  Codec.put_u32 b a.cls;
  Codec.put_int b a.num

let decode c =
  let cls = Codec.get_u32 c in
  let num = Codec.get_int c in
  { cls; num }

let encode_vref b v =
  encode b v.oid;
  Codec.put_u32 b v.ver

let decode_vref c =
  let oid = decode c in
  let ver = Codec.get_u32 c in
  { oid; ver }

let key a = Key.concat [ Key.of_int a.cls; Key.of_int a.num ]
let key_class_prefix cls = Key.of_int cls

let of_key s =
  if String.length s <> 16 then invalid_arg "oid: bad key length";
  let dec off =
    let v = ref 0L in
    for i = 0 to 7 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[off + i]))
    done;
    Int64.to_int (Int64.logxor !v Int64.min_int)
  in
  { cls = dec 0; num = dec 8 }
