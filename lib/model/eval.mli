(** Expression evaluator.

    Evaluation is parameterized by hooks so the same evaluator serves
    constraints, trigger conditions, [suchthat]/[by] clauses and method
    bodies: the database layer supplies object dereferencing (through the
    active transaction's write set), dynamic class tests and method
    dispatch.

    Null semantics (documented in README): field access through a null
    reference yields [Null]; [==]/[!=] treat [Null] as an ordinary value;
    ordered comparisons and arithmetic involving [Null] yield [false] /
    [Null] respectively, so a [suchthat] clause never aborts a scan because
    of a missing reference. *)

exception Error of string

type hooks = {
  get_field : Oid.t -> string -> Value.t option;
  (** Field of the current version, read through the active transaction. *)
  get_field_v : Oid.vref -> string -> Value.t option;
  class_of : Oid.t -> string option;
  is_subclass : sub:string -> super:string -> bool;
  call_method : Value.t -> string -> Value.t list -> Value.t;
  (** Dynamic dispatch on the receiver; raises {!Error} if unresolvable. *)
  builtin : string -> Value.t list -> Value.t option;
  (** Extra builtins supplied by the database layer (version navigation
      etc.); [None] means unknown. *)
}

val null_hooks : hooks
(** Hooks that fail on any object access: for evaluating closed
    expressions. *)

val eval :
  hooks -> vars:(string * Value.t) list -> this:Value.t option -> Ode_lang.Ast.expr -> Value.t

val truthy : Value.t -> bool
(** [true] iff the value is [Bool true]; [Bool false] and [Null] are false;
    anything else raises {!Error} (conditions must be boolean). *)
