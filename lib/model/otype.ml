type t =
  | TInt
  | TFloat
  | TBool
  | TString
  | TRef of string
  | TSet of t
  | TList of t

let rec equal a b =
  match (a, b) with
  | TInt, TInt | TFloat, TFloat | TBool, TBool | TString, TString -> true
  | TRef x, TRef y -> String.equal x y
  | TSet x, TSet y | TList x, TList y -> equal x y
  | _ -> false

let rec pp ppf = function
  | TInt -> Fmt.string ppf "int"
  | TFloat -> Fmt.string ppf "float"
  | TBool -> Fmt.string ppf "bool"
  | TString -> Fmt.string ppf "string"
  | TRef c -> Fmt.pf ppf "ref %s" c
  | TSet t -> Fmt.pf ppf "set<%a>" pp t
  | TList t -> Fmt.pf ppf "list<%a>" pp t

let to_string t = Fmt.str "%a" pp t

let rec of_ast : Ode_lang.Ast.type_expr -> t = function
  | TyInt -> TInt
  | TyFloat -> TFloat
  | TyBool -> TBool
  | TyString -> TString
  | TyRef c -> TRef c
  | TySet t -> TSet (of_ast t)
  | TyList t -> TList (of_ast t)

let rec to_ast : t -> Ode_lang.Ast.type_expr = function
  | TInt -> TyInt
  | TFloat -> TyFloat
  | TBool -> TyBool
  | TString -> TyString
  | TRef c -> TyRef c
  | TSet t -> TySet (to_ast t)
  | TList t -> TyList (to_ast t)

let default_value = function
  | TInt -> Value.Int 0
  | TFloat -> Value.Float 0.0
  | TBool -> Value.Bool false
  | TString -> Value.Str ""
  | TRef _ -> Value.Null
  | TSet _ -> Value.VSet []
  | TList _ -> Value.VList []

let conforms ?subclass t v ~class_of =
  let sub ~sub:s ~super =
    match subclass with Some f -> f ~sub:s ~super | None -> String.equal s super
  in
  let rec go t (v : Value.t) =
    match (t, v) with
    | TInt, Int _ -> true
    | TFloat, (Float _ | Int _) -> true
    | TBool, Bool _ -> true
    | TString, Str _ -> true
    | TRef _, Null -> true
    | TRef c, Ref o -> (
        match class_of o with Some name -> sub ~sub:name ~super:c | None -> false)
    | TRef c, Vref vr -> (
        match class_of vr.Oid.oid with Some name -> sub ~sub:name ~super:c | None -> false)
    | TSet t', VSet vs | TList t', VList vs -> List.for_all (go t') vs
    | _ -> false
  in
  go t v

let indexable = function
  | TInt | TFloat | TBool | TString | TRef _ -> true
  | TSet _ | TList _ -> false
