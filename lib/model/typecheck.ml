module Ast = Ode_lang.Ast

exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type ty = Known of Otype.t | Dyn

let pp_ty ppf = function
  | Known t -> Otype.pp ppf t
  | Dyn -> Fmt.string ppf "<dynamic>"

type env = {
  catalog : Catalog.t;
  vars : (string * ty) list;
  this_class : Schema.cls option;
}

let numeric = function Known (Otype.TInt | Otype.TFloat) | Dyn -> true | _ -> false

let join a b =
  (* Least upper bound for arithmetic results. *)
  match (a, b) with
  | Known Otype.TInt, Known Otype.TInt -> Known Otype.TInt
  | (Known Otype.TFloat | Known Otype.TInt), (Known Otype.TFloat | Known Otype.TInt) ->
      Known Otype.TFloat
  | Dyn, _ | _, Dyn -> Dyn
  | _ -> err "incompatible numeric operands"

let field_type env cls_name fname =
  match Catalog.find env.catalog cls_name with
  | None -> err "unknown class %s" cls_name
  | Some c -> (
      match Schema.find_field (Catalog.all_fields env.catalog c) fname with
      | Some f -> Known f.ftype
      | None -> err "class %s has no field %s" cls_name fname)

let rec infer env (e : Ast.expr) : ty =
  match e with
  | Null -> Dyn
  | Int _ -> Known Otype.TInt
  | Float _ -> Known Otype.TFloat
  | Bool _ -> Known Otype.TBool
  | Str _ -> Known Otype.TString
  | This -> (
      match env.this_class with
      | Some c -> Known (Otype.TRef c.name)
      | None -> err "'this' used outside a class")
  | Var x -> (
      match List.assoc_opt x env.vars with
      | Some t -> t
      | None -> err "unbound variable %s" x)
  | Field (b, f) -> (
      match infer env b with
      | Known (Otype.TRef cls) -> field_type env cls f
      | Dyn -> Dyn
      | t -> err "cannot access field %s of a %a" f pp_ty t)
  | Unop (Neg, e) ->
      let t = infer env e in
      if numeric t then t else err "cannot negate a %a" pp_ty t
  | Unop (Not, e) ->
      check_bool_ty env e;
      Known Otype.TBool
  | Binop ((And | Or), a, b) ->
      check_bool_ty env a;
      check_bool_ty env b;
      Known Otype.TBool
  | Binop ((Eq | Ne), _, _) -> Known Otype.TBool
  | Binop ((Lt | Le | Gt | Ge), a, b) ->
      let ta = infer env a and tb = infer env b in
      let orderable = function
        | Dyn | Known (Otype.TInt | Otype.TFloat | Otype.TString | Otype.TBool) -> true
        | _ -> false
      in
      if orderable ta && orderable tb then Known Otype.TBool
      else err "cannot order %a and %a" pp_ty ta pp_ty tb
  | Binop (Add, a, b) -> (
      let ta = infer env a and tb = infer env b in
      match (ta, tb) with
      | Known Otype.TString, Known Otype.TString -> Known Otype.TString
      | Known (Otype.TSet _), Known (Otype.TSet _) | Known (Otype.TList _), Known (Otype.TList _) ->
          ta
      | _ when numeric ta && numeric tb -> join ta tb
      | Dyn, _ | _, Dyn -> Dyn
      | _ -> err "cannot add %a and %a" pp_ty ta pp_ty tb)
  | Binop (Sub, a, b) -> (
      let ta = infer env a and tb = infer env b in
      match (ta, tb) with
      | Known (Otype.TSet _), Known (Otype.TSet _) -> ta
      | _ when numeric ta && numeric tb -> join ta tb
      | Dyn, _ | _, Dyn -> Dyn
      | _ -> err "cannot subtract %a from %a" pp_ty tb pp_ty ta)
  | Binop ((Mul | Div), a, b) ->
      let ta = infer env a and tb = infer env b in
      if numeric ta && numeric tb then join ta tb
      else err "arithmetic on %a and %a" pp_ty ta pp_ty tb
  | Binop (Mod, a, b) -> (
      let ta = infer env a and tb = infer env b in
      match (ta, tb) with
      | (Known Otype.TInt | Dyn), (Known Otype.TInt | Dyn) -> Known Otype.TInt
      | _ -> err "%% needs integers")
  | Binop (In, a, b) -> (
      let _ = infer env a in
      match infer env b with
      | Known (Otype.TSet _) | Known (Otype.TList _) | Dyn -> Known Otype.TBool
      | t -> err "'in' needs a set or list, got %a" pp_ty t)
  | Is (e, cls) ->
      (match Catalog.find env.catalog cls with
      | None -> err "unknown class %s in 'is'" cls
      | Some _ -> ());
      let _ = infer env e in
      Known Otype.TBool
  | SetLit es ->
      List.iter (fun e -> ignore (infer env e)) es;
      Dyn
  | ListLit es ->
      List.iter (fun e -> ignore (infer env e)) es;
      Dyn
  | Call (None, name, args) -> (
      let ts = List.map (infer env) args in
      match (name, ts) with
      | "size", [ _ ] -> Known Otype.TInt
      | "abs", [ t ] when numeric t -> t
      | ("min" | "max"), [ a; _ ] -> a
      | "int", [ _ ] -> Known Otype.TInt
      | "float", [ _ ] -> Known Otype.TFloat
      | "str", [ _ ] -> Known Otype.TString
      | ("size" | "abs" | "min" | "max" | "int" | "float" | "str"), _ ->
          err "builtin %s: wrong number of arguments" name
      | _ -> Dyn (* database-layer builtins (version navigation, ...) *))
  | Call (Some recv, name, args) -> (
      match infer env recv with
      | Known (Otype.TRef cls) -> (
          match Catalog.find env.catalog cls with
          | None -> err "unknown class %s" cls
          | Some c -> (
              match Catalog.find_method env.catalog c name with
              | None -> err "class %s has no method %s" cls name
              | Some m ->
                  if List.length args <> List.length m.mparams then
                    err "method %s.%s expects %d arguments" cls name (List.length m.mparams);
                  List.iter (fun a -> ignore (infer env a)) args;
                  Known m.mret))
      | Dyn ->
          List.iter (fun a -> ignore (infer env a)) args;
          Dyn
      | t -> err "cannot call method %s on a %a" name pp_ty t)

and check_bool_ty env e =
  match infer env e with
  | Known Otype.TBool | Dyn -> ()
  | t -> err "expected a boolean, got %a" pp_ty t

let check_bool env e ~what =
  match infer env e with
  | Known Otype.TBool | Dyn -> ()
  | t -> err "%s must be boolean, got %a" what pp_ty t

let check_class catalog (c : Schema.cls) =
  let base = { catalog; vars = []; this_class = Some c } in
  (* Member initializers are closed expressions of the field's type. *)
  List.iter
    (fun (f : Schema.field) ->
      match f.fdefault with
      | None -> ()
      | Some e -> (
          let t = infer { catalog; vars = []; this_class = None } e in
          match (t, f.ftype) with
          | Dyn, _ -> ()
          | Known got, want when Otype.equal got want -> ()
          | Known Otype.TInt, Otype.TFloat -> ()
          | Known got, want ->
              err "field %s.%s: default has type %s, field is %s" c.name f.fname
                (Otype.to_string got) (Otype.to_string want)))
    c.own_fields;
  (* Constraints and trigger conditions see the object's fields as bare
     identifiers too ("qty >= 0" means "this.qty >= 0"). The rewrite to
     [this.f] happens at definition time in the database layer; here they
     arrive already rewritten, so plain checking suffices. *)
  List.iter
    (fun (k : Schema.constr) -> check_bool base k.kexpr ~what:(Printf.sprintf "constraint %s" k.kname))
    c.own_constraints;
  List.iter
    (fun (m : Schema.meth) ->
      let vars = List.map (fun (p : Schema.field) -> (p.fname, Known p.ftype)) m.mparams in
      let t = infer { base with vars } m.mbody in
      match t with
      | Dyn -> ()
      | Known got ->
          let compatible =
            Otype.equal got m.mret
            || match (got, m.mret) with Otype.TInt, Otype.TFloat -> true | _ -> false
          in
          if not compatible then
            err "method %s.%s: body has type %s, declared %s" c.name m.mname
              (Otype.to_string got) (Otype.to_string m.mret))
    c.own_methods;
  List.iter
    (fun (g : Schema.trigger) ->
      let vars = List.map (fun (p : Schema.field) -> (p.fname, Known p.ftype)) g.gparams in
      let env = { base with vars } in
      check_bool env g.gcond ~what:(Printf.sprintf "trigger %s condition" g.gname);
      match g.gwithin with
      | Some e -> (
          match infer env e with
          | Known Otype.TInt | Dyn -> ()
          | t -> err "trigger %s: 'within' must be an int, got %a" g.gname pp_ty t)
      | None -> ())
    c.own_triggers
