module Ast = Ode_lang.Ast

type field = { fname : string; ftype : Otype.t; fdefault : Ast.expr option }

type meth = {
  mname : string;
  mparams : field list;
  mret : Otype.t;
  mbody : Ast.expr;
}

type constr = { kname : string; kexpr : Ast.expr }

type trigger = {
  gname : string;
  gparams : field list;
  gperpetual : bool;
  gwithin : Ast.expr option;
  gcond : Ast.expr;
  gaction : Ast.stmt list;
  gtimeout : Ast.stmt list;
}

type cls = {
  id : int;
  name : string;
  parents : string list;
  own_fields : field list;
  own_methods : meth list;
  own_constraints : constr list;
  own_triggers : trigger list;
  mutable cluster_created : bool;
  mutable next_num : int;
}

let field_of_decl (f : Ast.field_decl) =
  { fname = f.fd_name; ftype = Otype.of_ast f.fd_type; fdefault = f.fd_default }

let field_to_decl f : Ast.field_decl =
  { fd_name = f.fname; fd_type = Otype.to_ast f.ftype; fd_default = f.fdefault }

let of_decl ~id (d : Ast.class_decl) =
  {
    id;
    name = d.c_name;
    parents = d.c_parents;
    own_fields = List.map field_of_decl d.c_fields;
    own_methods =
      List.map
        (fun (m : Ast.method_decl) ->
          {
            mname = m.m_name;
            mparams = List.map field_of_decl m.m_params;
            mret = Otype.of_ast m.m_ret;
            mbody = m.m_body;
          })
        d.c_methods;
    own_constraints =
      List.map (fun (k : Ast.constraint_decl) -> { kname = k.k_name; kexpr = k.k_expr }) d.c_constraints;
    own_triggers =
      List.map
        (fun (g : Ast.trigger_decl) ->
          {
            gname = g.g_name;
            gparams = List.map field_of_decl g.g_params;
            gperpetual = g.g_perpetual;
            gwithin = g.g_within;
            gcond = g.g_cond;
            gaction = g.g_action;
            gtimeout = g.g_timeout;
          })
        d.c_triggers;
    cluster_created = false;
    next_num = 0;
  }

let to_decl c : Ast.class_decl =
  {
    c_name = c.name;
    c_parents = c.parents;
    c_fields = List.map field_to_decl c.own_fields;
    c_methods =
      List.map
        (fun m ->
          Ast.
            {
              m_name = m.mname;
              m_params = List.map field_to_decl m.mparams;
              m_ret = Otype.to_ast m.mret;
              m_body = m.mbody;
            })
        c.own_methods;
    c_constraints = List.map (fun k -> Ast.{ k_name = k.kname; k_expr = k.kexpr }) c.own_constraints;
    c_triggers =
      List.map
        (fun g ->
          Ast.
            {
              g_name = g.gname;
              g_params = List.map field_to_decl g.gparams;
              g_perpetual = g.gperpetual;
              g_within = g.gwithin;
              g_cond = g.gcond;
              g_action = g.gaction;
              g_timeout = g.gtimeout;
            })
        c.own_triggers;
  }

let field_names fs = List.map (fun f -> f.fname) fs
let find_field fs name = List.find_opt (fun f -> f.fname = name) fs
