(** The O++ type system at the schema level. *)

type t =
  | TInt
  | TFloat
  | TBool
  | TString
  | TRef of string   (** reference to a persistent object of a class *)
  | TSet of t
  | TList of t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_ast : Ode_lang.Ast.type_expr -> t
val to_ast : t -> Ode_lang.Ast.type_expr

val default_value : t -> Value.t
(** The value a field takes when an object is created without initializing
    it: 0, 0.0, false, "", null, the empty set/list. *)

val conforms : ?subclass:(sub:string -> super:string -> bool) ->
  t -> Value.t -> class_of:(Oid.t -> string option) -> bool
(** Structural conformance of a value to a type. [Null] conforms to [TRef]
    only. Reference targets are checked against the class hierarchy via
    [class_of] and [subclass] (absent means exact-name matching). *)

val indexable : t -> bool
(** Whether a secondary index can be built on a field of this type. *)
