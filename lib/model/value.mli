(** Dynamic values: the runtime representation of object fields.

    Sets are normalized (sorted, duplicate-free) so that structural equality
    coincides with set equality. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string
  | Ref of Oid.t         (** generic reference: always the current version *)
  | Vref of Oid.vref     (** specific reference to one version *)
  | VList of t list
  | VSet of t list       (** invariant: sorted by {!compare}, no duplicates *)

val compare : t -> t -> int
(** Total order: constructor rank first, then structural. *)

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val set_of_list : t list -> t
(** Build a normalized [VSet]. *)

val set_add : t -> t -> t
(** [set_add v s] — [s] must be a [VSet]. *)

val set_remove : t -> t -> t
val set_mem : t -> t -> bool

val encode : Buffer.t -> t -> unit
val decode : Ode_util.Codec.cursor -> t

val index_key : t -> string
(** Order-preserving key for secondary indexes. Only defined for [Null],
    [Int], [Float], [Bool], [Str] and [Ref]; raises [Invalid_argument]
    otherwise. [Int] and [Float] share one numeric keyspace, so an index on
    a float field built from int literals still scans correctly. *)

val fields_encode : (string * t) list -> string
(** Serialize an object payload: field name/value pairs. *)

val fields_decode : string -> (string * t) list
