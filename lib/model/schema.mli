(** Class descriptors.

    A class has data members (fields), member functions (expression-bodied
    methods), constraints and trigger declarations, and may inherit from
    several parents (paper §2: "Classes support data encapsulation and
    multiple inheritance"). Resolution across the hierarchy lives in
    {!Catalog}; this module is the per-class record and its conversions to
    and from surface syntax. *)

type field = {
  fname : string;
  ftype : Otype.t;
  fdefault : Ode_lang.Ast.expr option;
      (** member initializer, evaluated at [pnew] when the field is not
          explicitly set *)
}

type meth = {
  mname : string;
  mparams : field list;
  mret : Otype.t;
  mbody : Ode_lang.Ast.expr;
}

type constr = { kname : string; kexpr : Ode_lang.Ast.expr }

type trigger = {
  gname : string;
  gparams : field list;
  gperpetual : bool;
  gwithin : Ode_lang.Ast.expr option;
  gcond : Ode_lang.Ast.expr;
  gaction : Ode_lang.Ast.stmt list;
  gtimeout : Ode_lang.Ast.stmt list;
}

type cls = {
  id : int;                      (** catalog class id, stable for the db's life *)
  name : string;
  parents : string list;
  own_fields : field list;
  own_methods : meth list;
  own_constraints : constr list;
  own_triggers : trigger list;
  mutable cluster_created : bool;  (** paper §2.5: clusters are created explicitly *)
  mutable next_num : int;          (** oid allocation counter *)
}

val of_decl : id:int -> Ode_lang.Ast.class_decl -> cls
val to_decl : cls -> Ode_lang.Ast.class_decl

val field_names : field list -> string list
val find_field : field list -> string -> field option
