(** Object identities.

    Every persistent object is identified by a unique object id carrying its
    class. Ids are never reused. A {!vref} names one specific version of a
    versioned object, whereas an {!t} used as a reference is a *generic*
    reference that always denotes the current version (paper §4). *)

type t = { cls : int; num : int }
(** [cls] is the catalog class id, [num] a per-class sequence number. *)

type vref = { oid : t; ver : int }

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

val compare_vref : vref -> vref -> int
val equal_vref : vref -> vref -> bool
val pp_vref : Format.formatter -> vref -> unit

val encode : Buffer.t -> t -> unit
val decode : Ode_util.Codec.cursor -> t
val encode_vref : Buffer.t -> vref -> unit
val decode_vref : Ode_util.Codec.cursor -> vref

val key : t -> string
(** Order-preserving directory key: objects of one class are contiguous and
    sorted by allocation order, so a key-range scan of a class prefix is
    exactly the paper's cluster iteration order. *)

val key_class_prefix : int -> string
(** Directory key prefix covering every object of a class. *)

val of_key : string -> t
