(** Static checking of schema-embedded expressions.

    Constraints, trigger conditions and method bodies are checked when a
    class is defined; [suchthat]/[by] clauses are checked when a query is
    planned. The checker is deliberately pragmatic: shell variables are
    dynamically typed ({!Dyn}), and [Dyn] unifies with everything. *)

exception Error of string

type ty =
  | Known of Otype.t
  | Dyn                      (** unknown statically; checked at run time *)

val pp_ty : Format.formatter -> ty -> unit

type env = {
  catalog : Catalog.t;
  vars : (string * ty) list;       (** loop/shell variables *)
  this_class : Schema.cls option;  (** class of [this], when inside a class *)
}

val infer : env -> Ode_lang.Ast.expr -> ty
(** Raises {!Error} on a definite type error (unknown field, ordering a set,
    arity mismatch on a known method, ...). *)

val check_bool : env -> Ode_lang.Ast.expr -> what:string -> unit
(** Require boolean (or [Dyn]); used for constraints, conditions and
    [suchthat]. *)

val check_class : Catalog.t -> Schema.cls -> unit
(** Validate every constraint, trigger and method body of a freshly defined
    class. Called by the database layer right after {!Catalog.define}. *)
