module Ast = Ode_lang.Ast
module Codec = Ode_util.Codec

exception Schema_error of string

let schema_error fmt = Format.kasprintf (fun s -> raise (Schema_error s)) fmt

type t = {
  by_name : (string, Schema.cls) Hashtbl.t;
  by_id : (int, Schema.cls) Hashtbl.t;
  mutable order : string list; (* reverse definition order *)
  mutable next_id : int;
  mutable index_list : (string * string) list; (* (class, field), oldest first *)
  lineage_memo : (string, Schema.cls list) Hashtbl.t;
}

let create () =
  {
    by_name = Hashtbl.create 16;
    by_id = Hashtbl.create 16;
    order = [];
    next_id = 0;
    index_list = [];
    lineage_memo = Hashtbl.create 16;
  }

let find t name = Hashtbl.find_opt t.by_name name

let find_exn t name =
  match find t name with Some c -> c | None -> schema_error "unknown class %s" name

let find_by_id t id = Hashtbl.find_opt t.by_id id
let all t = List.rev_map (fun n -> find_exn t n) t.order

(* Ancestors base-first, self last, each class once (diamonds collapse). *)
let lineage t (c : Schema.cls) =
  match Hashtbl.find_opt t.lineage_memo c.name with
  | Some l -> l
  | None ->
      let seen = Hashtbl.create 8 in
      let acc = ref [] in
      let rec visit (c : Schema.cls) =
        if not (Hashtbl.mem seen c.name) then begin
          Hashtbl.add seen c.name ();
          List.iter (fun p -> visit (find_exn t p)) c.parents;
          acc := c :: !acc
        end
      in
      visit c;
      let l = List.rev !acc in
      Hashtbl.add t.lineage_memo c.name l;
      l

let all_fields t c = List.concat_map (fun (a : Schema.cls) -> a.own_fields) (lineage t c)
let all_constraints t c = List.concat_map (fun (a : Schema.cls) -> a.own_constraints) (lineage t c)

let find_method t c name =
  (* Most derived definition shadows: search the lineage from the back. *)
  let rec go = function
    | [] -> None
    | (a : Schema.cls) :: rest -> (
        match List.find_opt (fun (m : Schema.meth) -> m.mname = name) a.own_methods with
        | Some m -> Some m
        | None -> go rest)
  in
  go (List.rev (lineage t c))

let find_trigger t c name =
  let rec go = function
    | [] -> None
    | (a : Schema.cls) :: rest -> (
        match List.find_opt (fun (g : Schema.trigger) -> g.gname = name) a.own_triggers with
        | Some g -> Some g
        | None -> go rest)
  in
  go (List.rev (lineage t c))

let is_subclass t ~sub ~super =
  match find t sub with
  | None -> false
  | Some c -> List.exists (fun (a : Schema.cls) -> a.name = super) (lineage t c)

let subclasses t name =
  List.filter (fun c -> is_subclass t ~sub:c ~super:name) (List.rev t.order)

(* -- definition ------------------------------------------------------------ *)

let check_field_types t (c : Schema.cls) =
  let rec refs = function
    | Otype.TRef cname -> [ cname ]
    | Otype.TSet u | Otype.TList u -> refs u
    | Otype.TInt | Otype.TFloat | Otype.TBool | Otype.TString -> []
  in
  List.iter
    (fun (f : Schema.field) ->
      List.iter
        (fun cname ->
          (* Self-reference is fine: linked structures (paper's btree example). *)
          if cname <> c.name && find t cname = None then
            schema_error "class %s: field %s references unknown class %s" c.name f.fname cname)
        (refs f.ftype))
    c.own_fields

let define t (d : Ast.class_decl) =
  if Hashtbl.mem t.by_name d.c_name then schema_error "class %s already defined" d.c_name;
  List.iter
    (fun p -> if not (Hashtbl.mem t.by_name p) then schema_error "unknown parent class %s" p)
    d.c_parents;
  let c = Schema.of_decl ~id:t.next_id d in
  check_field_types t c;
  (* Detect field-name clashes across the would-be lineage. *)
  Hashtbl.add t.by_name c.name c;
  (match
     let fields = all_fields t c in
     let names = Schema.field_names fields in
     let sorted = List.sort String.compare names in
     let rec dup = function
       | a :: b :: _ when a = b -> Some a
       | _ :: rest -> dup rest
       | [] -> None
     in
     dup sorted
   with
  | Some f ->
      Hashtbl.remove t.by_name c.name;
      Hashtbl.remove t.lineage_memo c.name;
      schema_error "class %s: ambiguous or duplicate field %s" c.name f
  | None -> ());
  Hashtbl.add t.by_id c.id c;
  t.order <- c.name :: t.order;
  t.next_id <- t.next_id + 1;
  c

(* -- clusters and indexes ----------------------------------------------------- *)

let create_cluster t name =
  let c = find_exn t name in
  if c.cluster_created then schema_error "cluster %s already exists" name;
  c.cluster_created <- true

let has_cluster _t (c : Schema.cls) = c.cluster_created

let add_index t ~cls ~field =
  let c = find_exn t cls in
  let f =
    match Schema.find_field (all_fields t c) field with
    | Some f -> f
    | None -> schema_error "class %s has no field %s" cls field
  in
  if not (Otype.indexable f.ftype) then
    schema_error "field %s : %s is not indexable" field (Otype.to_string f.ftype);
  if List.mem (cls, field) t.index_list then schema_error "index on %s(%s) already exists" cls field;
  t.index_list <- t.index_list @ [ (cls, field) ]

let indexes t = t.index_list

let indexes_on t name =
  match find t name with
  | None -> []
  | Some c ->
      let ancestors = List.map (fun (a : Schema.cls) -> a.name) (lineage t c) in
      List.filter_map
        (fun (cls, field) -> if List.mem cls ancestors then Some field else None)
        t.index_list

(* -- persistence ----------------------------------------------------------------- *)

(* The schema is stored as surface syntax plus per-class metadata; parsing it
   back through the real parser keeps exactly one source of truth for the
   class-declaration semantics. *)

let encode t =
  let b = Buffer.create 1024 in
  let classes = all t in
  Codec.put_u32 b (List.length classes);
  List.iter
    (fun (c : Schema.cls) ->
      Codec.put_u32 b c.id;
      Codec.put_bool b c.cluster_created;
      Codec.put_int b c.next_num;
      Codec.put_string b (Ode_lang.Pp.class_to_string (Schema.to_decl c)))
    classes;
  Codec.put_u32 b t.next_id;
  Codec.put_u32 b (List.length t.index_list);
  List.iter
    (fun (cls, field) ->
      Codec.put_string b cls;
      Codec.put_string b field)
    t.index_list;
  Buffer.contents b

let decode s =
  let c = Codec.cursor s in
  let t = create () in
  let n = Codec.get_u32 c in
  for _ = 1 to n do
    let id = Codec.get_u32 c in
    let cluster_created = Codec.get_bool c in
    let next_num = Codec.get_int c in
    let src = Codec.get_string c in
    let decl =
      match Ode_lang.Parser.program src with
      | [ Ast.TClass d ] -> d
      | _ -> raise (Codec.Corrupt "catalog: stored class does not parse")
      | exception Ode_lang.Parser.Parse_error (msg, _) ->
          raise (Codec.Corrupt ("catalog: " ^ msg))
    in
    let cls = Schema.of_decl ~id decl in
    cls.cluster_created <- cluster_created;
    cls.next_num <- next_num;
    Hashtbl.add t.by_name cls.name cls;
    Hashtbl.add t.by_id cls.id cls;
    t.order <- cls.name :: t.order
  done;
  t.next_id <- Codec.get_u32 c;
  let ni = Codec.get_u32 c in
  for _ = 1 to ni do
    let cls = Codec.get_string c in
    let field = Codec.get_string c in
    t.index_list <- t.index_list @ [ (cls, field) ]
  done;
  t
