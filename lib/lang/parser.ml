open Ast

exception Parse_error of string * int

type state = { toks : (Lexer.token * int) array; mutable pos : int }

let err st fmt =
  let off = match st.toks.(st.pos) with _, o -> o in
  Format.kasprintf (fun s -> raise (Parse_error (s, off))) fmt

let peek st = fst st.toks.(st.pos)
let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let next st =
  let t = peek st in
  advance st;
  t

let accept_punct st p =
  match peek st with
  | Lexer.PUNCT q when q = p ->
      advance st;
      true
  | _ -> false

let accept_kw st k =
  match peek st with
  | Lexer.KW q when q = k ->
      advance st;
      true
  | _ -> false

let expect_punct st p =
  if not (accept_punct st p) then err st "expected %S, got %a" p Lexer.pp_token (peek st)

let expect_kw st k =
  if not (accept_kw st k) then err st "expected keyword %s, got %a" k Lexer.pp_token (peek st)

let ident st =
  match next st with
  | Lexer.IDENT s -> s
  | t -> err st "expected identifier, got %a" Lexer.pp_token t

(* -- types -------------------------------------------------------------- *)

let rec type_expr st =
  match next st with
  | Lexer.KW "int" -> TyInt
  | Lexer.KW "float" -> TyFloat
  | Lexer.KW "bool" -> TyBool
  | Lexer.KW "string" -> TyString
  | Lexer.KW "ref" -> TyRef (ident st)
  | Lexer.KW "set" ->
      expect_punct st "<";
      let t = type_expr st in
      expect_punct st ">";
      TySet t
  | Lexer.KW "list" ->
      expect_punct st "<";
      let t = type_expr st in
      expect_punct st ">";
      TyList t
  | t -> err st "expected a type, got %a" Lexer.pp_token t

(* -- expressions --------------------------------------------------------- *)

let rec expr_or st =
  let lhs = expr_and st in
  if accept_punct st "||" || accept_kw st "or" then Binop (Or, lhs, expr_or st) else lhs

and expr_and st =
  let lhs = expr_not st in
  if accept_punct st "&&" || accept_kw st "and" then Binop (And, lhs, expr_and st) else lhs

and expr_not st =
  if accept_punct st "!" || accept_kw st "not" then Unop (Not, expr_not st) else expr_cmp st

and expr_cmp st =
  let lhs = expr_add st in
  let binop op = Binop (op, lhs, expr_add st) in
  match peek st with
  | Lexer.PUNCT "==" | Lexer.PUNCT "=" ->
      advance st;
      binop Eq
  | Lexer.PUNCT "!=" ->
      advance st;
      binop Ne
  | Lexer.PUNCT "<" ->
      advance st;
      binop Lt
  | Lexer.PUNCT "<=" ->
      advance st;
      binop Le
  | Lexer.PUNCT ">" ->
      advance st;
      binop Gt
  | Lexer.PUNCT ">=" ->
      advance st;
      binop Ge
  | Lexer.KW "in" ->
      advance st;
      binop In
  | Lexer.KW "is" ->
      advance st;
      Is (lhs, ident st)
  | _ -> lhs

and expr_add st =
  let rec go lhs =
    if accept_punct st "+" then go (Binop (Add, lhs, expr_mul st))
    else if accept_punct st "-" then go (Binop (Sub, lhs, expr_mul st))
    else lhs
  in
  go (expr_mul st)

and expr_mul st =
  let rec go lhs =
    if accept_punct st "*" then go (Binop (Mul, lhs, expr_unary st))
    else if accept_punct st "/" then go (Binop (Div, lhs, expr_unary st))
    else if accept_punct st "%" then go (Binop (Mod, lhs, expr_unary st))
    else lhs
  in
  go (expr_unary st)

and expr_unary st =
  if accept_punct st "-" then Unop (Neg, expr_unary st) else expr_postfix st

and expr_postfix st =
  let rec go e =
    if accept_punct st "." then begin
      let name = ident st in
      if accept_punct st "(" then go (Call (Some e, name, args st)) else go (Field (e, name))
    end
    else e
  in
  go (expr_primary st)

and args st =
  if accept_punct st ")" then []
  else
    let rec go acc =
      let e = expr_or st in
      if accept_punct st "," then go (e :: acc)
      else begin
        expect_punct st ")";
        List.rev (e :: acc)
      end
    in
    go []

and expr_primary st =
  match next st with
  | Lexer.INT n -> Int n
  | Lexer.FLOAT f -> Float f
  | Lexer.STRING s -> Str s
  | Lexer.KW "true" -> Bool true
  | Lexer.KW "false" -> Bool false
  | Lexer.KW "null" -> Null
  | Lexer.KW "this" -> This
  | Lexer.KW (("int" | "float") as conv) ->
      (* Conversion builtins share their name with the type keywords. *)
      expect_punct st "(";
      Call (None, conv, args st)
  | Lexer.IDENT name -> if accept_punct st "(" then Call (None, name, args st) else Var name
  | Lexer.PUNCT "(" ->
      let e = expr_or st in
      expect_punct st ")";
      e
  | Lexer.PUNCT "{" ->
      if accept_punct st "}" then SetLit []
      else
        let rec go acc =
          let e = expr_or st in
          if accept_punct st "," then go (e :: acc)
          else begin
            expect_punct st "}";
            SetLit (List.rev (e :: acc))
          end
        in
        go []
  | Lexer.PUNCT "[" ->
      if accept_punct st "]" then ListLit []
      else
        let rec go acc =
          let e = expr_or st in
          if accept_punct st "," then go (e :: acc)
          else begin
            expect_punct st "]";
            ListLit (List.rev (e :: acc))
          end
        in
        go []
  | t -> err st "expected an expression, got %a" Lexer.pp_token t

let expression st = expr_or st

(* -- statements ----------------------------------------------------------- *)

let field_inits st =
  expect_punct st "{";
  if accept_punct st "}" then []
  else
    let rec go acc =
      let f = ident st in
      expect_punct st "=";
      let e = expression st in
      if accept_punct st "," then go ((f, e) :: acc)
      else begin
        expect_punct st "}";
        List.rev ((f, e) :: acc)
      end
    in
    go []

let rec block st =
  expect_punct st "{";
  let rec go acc = if accept_punct st "}" then List.rev acc else go (statement st :: acc) in
  go []

and forall_head st =
  let q_var = ident st in
  expect_kw st "in";
  let q_cls = ident st in
  let q_deep = accept_punct st "*" in
  let q_suchthat = if accept_kw st "suchthat" then Some (expression st) else None in
  let q_by =
    if accept_kw st "by" then begin
      let e = expression st in
      let ord = if accept_kw st "desc" then Desc else (ignore (accept_kw st "asc"); Asc) in
      Some (e, ord)
    end
    else None
  in
  { q_var; q_cls; q_deep; q_suchthat; q_by; q_body = [] }

and statement st =
  match peek st with
  | Lexer.KW "print" ->
      advance st;
      let rec go acc =
        let e = expression st in
        if accept_punct st "," then go (e :: acc)
        else begin
          expect_punct st ";";
          SPrint (List.rev (e :: acc))
        end
      in
      go []
  | Lexer.KW "pdelete" ->
      advance st;
      let e = expression st in
      expect_punct st ";";
      SDelete e
  | Lexer.KW "newversion" ->
      advance st;
      let e = expression st in
      expect_punct st ";";
      SNewVersion e
  | Lexer.KW "deactivate" ->
      advance st;
      let e = expression st in
      expect_punct st ";";
      SDeactivate e
  | Lexer.KW "insert" ->
      advance st;
      let e = expression st in
      expect_kw st "into";
      let target = expression st in
      expect_punct st ";";
      (match target with
      | Field (obj, f) -> SInsert (e, f, obj)
      | _ -> err st "insert target must be object.field")
  | Lexer.KW "remove" ->
      advance st;
      let e = expression st in
      expect_kw st "from";
      let target = expression st in
      expect_punct st ";";
      (match target with
      | Field (obj, f) -> SRemove (e, f, obj)
      | _ -> err st "remove target must be object.field")
  | Lexer.KW "if" ->
      advance st;
      expect_punct st "(";
      let cond = expression st in
      expect_punct st ")";
      let then_ = block st in
      let else_ = if accept_kw st "else" then block st else [] in
      ignore (accept_punct st ";");
      SIf (cond, then_, else_)
  | Lexer.KW "forall" ->
      advance st;
      let head = forall_head st in
      let body = block st in
      ignore (accept_punct st ";");
      SForall { head with q_body = body }
  | Lexer.KW "return" ->
      advance st;
      let e = expression st in
      expect_punct st ";";
      SReturn e
  | Lexer.KW "pnew" ->
      advance st;
      let cls = ident st in
      let inits = field_inits st in
      expect_punct st ";";
      SNew (None, cls, inits)
  | Lexer.KW "activate" ->
      advance st;
      let e = expr_postfix st in
      expect_punct st ";";
      (match e with
      | Call (Some recv, name, a) -> SActivate (None, recv, name, a)
      | _ -> err st "activate expects object.trigger(args)")
  | _ ->
      (* expression-led: assignment, field update, or bare expression *)
      let e = expression st in
      if accept_punct st ":=" then begin
        let rhs_new st =
          let cls = ident st in
          let inits = field_inits st in
          (cls, inits)
        in
        match (e, peek st) with
        | Var x, Lexer.KW "pnew" ->
            advance st;
            let cls, inits = rhs_new st in
            expect_punct st ";";
            SNew (Some x, cls, inits)
        | Var x, Lexer.KW "activate" ->
            advance st;
            let call = expr_postfix st in
            expect_punct st ";";
            (match call with
            | Call (Some recv, name, a) -> SActivate (Some x, recv, name, a)
            | _ -> err st "activate expects object.trigger(args)")
        | Var x, _ ->
            let rhs = expression st in
            expect_punct st ";";
            SAssign (x, rhs)
        | Field (obj, f), _ ->
            let rhs = expression st in
            expect_punct st ";";
            SSetField (obj, f, rhs)
        | _ -> err st "invalid assignment target"
      end
      else begin
        expect_punct st ";";
        SExpr e
      end

(* -- class declarations ------------------------------------------------------ *)

let params st =
  expect_punct st "(";
  if accept_punct st ")" then []
  else
    let rec go acc =
      let fd_name = ident st in
      expect_punct st ":";
      let fd_type = type_expr st in
      let p = { fd_name; fd_type; fd_default = None } in
      if accept_punct st "," then go (p :: acc)
      else begin
        expect_punct st ")";
        List.rev (p :: acc)
      end
    in
    go []

let class_decl st =
  let c_name = ident st in
  let c_parents =
    if accept_punct st ":" then
      let rec go acc =
        let p = ident st in
        if accept_punct st "," then go (p :: acc) else List.rev (p :: acc)
      in
      go []
    else []
  in
  expect_punct st "{";
  let fields = ref [] and methods = ref [] and constraints = ref [] and triggers = ref [] in
  let rec members () =
    if accept_punct st "}" then ()
    else begin
      (match peek st with
      | Lexer.KW "method" ->
          advance st;
          let m_name = ident st in
          let m_params = params st in
          expect_punct st ":";
          let m_ret = type_expr st in
          expect_punct st "=";
          let m_body = expression st in
          expect_punct st ";";
          methods := { m_name; m_params; m_ret; m_body } :: !methods
      | Lexer.KW "constraint" ->
          advance st;
          let k_name = ident st in
          expect_punct st ":";
          let k_expr = expression st in
          expect_punct st ";";
          constraints := { k_name; k_expr } :: !constraints
      | Lexer.KW "trigger" ->
          advance st;
          let g_perpetual = accept_kw st "perpetual" in
          let g_name = ident st in
          let g_params = params st in
          expect_punct st ":";
          let g_within =
            if accept_kw st "within" then begin
              let e = expression st in
              expect_punct st ":";
              Some e
            end
            else None
          in
          let g_cond = expression st in
          expect_punct st "==>";
          let g_action = block st in
          let g_timeout = if accept_kw st "timeout" then block st else [] in
          expect_punct st ";";
          triggers := { g_name; g_params; g_perpetual; g_within; g_cond; g_action; g_timeout } :: !triggers
      | _ ->
          let fd_name = ident st in
          expect_punct st ":";
          let fd_type = type_expr st in
          let fd_default = if accept_punct st "=" then Some (expression st) else None in
          expect_punct st ";";
          fields := { fd_name; fd_type; fd_default } :: !fields);
      members ()
    end
  in
  members ();
  ignore (accept_punct st ";");
  {
    c_name;
    c_parents;
    c_fields = List.rev !fields;
    c_methods = List.rev !methods;
    c_constraints = List.rev !constraints;
    c_triggers = List.rev !triggers;
  }

(* -- top level ------------------------------------------------------------------ *)

let top st =
  match peek st with
  | Lexer.KW "class" ->
      advance st;
      TClass (class_decl st)
  | Lexer.KW "create" ->
      advance st;
      if accept_kw st "cluster" then begin
        let c = ident st in
        expect_punct st ";";
        TCreateCluster c
      end
      else begin
        expect_kw st "index";
        expect_kw st "on";
        let c = ident st in
        expect_punct st "(";
        let f = ident st in
        expect_punct st ")";
        expect_punct st ";";
        TCreateIndex (c, f)
      end
  | Lexer.KW "begin" ->
      advance st;
      expect_punct st ";";
      TBegin
  | Lexer.KW "commit" ->
      advance st;
      expect_punct st ";";
      TCommit
  | Lexer.KW "abort" ->
      advance st;
      expect_punct st ";";
      TAbort
  | Lexer.KW "show" ->
      advance st;
      if accept_kw st "stats" then begin
        expect_punct st ";";
        TShowStats
      end
      else begin
        expect_kw st "classes";
        expect_punct st ";";
        TShowClasses
      end
  | Lexer.KW "verify" ->
      advance st;
      expect_punct st ";";
      TVerify
  | Lexer.KW "dump" ->
      advance st;
      expect_punct st ";";
      TDump
  | Lexer.KW "load" ->
      advance st;
      let path = match next st with
        | Lexer.STRING s -> s
        | t -> err st "load expects a file name string, got %a" Lexer.pp_token t
      in
      expect_punct st ";";
      TLoad path
  | Lexer.KW "explain" ->
      advance st;
      expect_kw st "forall";
      let head = forall_head st in
      expect_punct st ";";
      TExplain head
  | Lexer.KW "analyze" ->
      advance st;
      expect_punct st ";";
      TAnalyze
  | Lexer.KW "advance" ->
      advance st;
      expect_kw st "time";
      let e = expression st in
      expect_punct st ";";
      TAdvance e
  | _ -> TStmt (statement st)

let make_state src =
  { toks = Array.of_list (Lexer.tokenize src); pos = 0 }

let program src =
  let st = make_state src in
  let rec go acc = if peek st = Lexer.EOF then List.rev acc else go (top st :: acc) in
  go []

let expr src =
  let st = make_state src in
  let e = expression st in
  if peek st <> Lexer.EOF then err st "trailing input after expression";
  e

let stmts src =
  let st = make_state src in
  let rec go acc = if peek st = Lexer.EOF then List.rev acc else go (statement st :: acc) in
  go []
