(** Pretty-printer producing parseable source.

    The catalog persists class declarations, constraints and trigger bodies
    as source text, so [Parser.expr (expr_to_string e)] must reproduce [e]
    exactly; expressions are printed fully parenthesized to make the
    round-trip trivially correct. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_type : Format.formatter -> Ast.type_expr -> unit
val pp_class : Format.formatter -> Ast.class_decl -> unit
val pp_top : Format.formatter -> Ast.top -> unit

val expr_to_string : Ast.expr -> string
val stmts_to_string : Ast.stmt list -> string
val class_to_string : Ast.class_decl -> string
