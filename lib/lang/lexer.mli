(** Hand-written lexer for the O++-like surface language. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string        (** keywords: class, forall, suchthat, by, ... *)
  | PUNCT of string     (** operators and delimiters: {, }, :=, ==>, ... *)
  | EOF

exception Lex_error of string * int
(** message and byte offset *)

val keywords : string list

val tokenize : string -> (token * int) list
(** Token stream with byte offsets; always ends with [EOF]. Comments are
    [//] to end of line and [/* ... */]. *)

val pp_token : Format.formatter -> token -> unit
