open Ast

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"
  | In -> "in"

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec pp_expr ppf = function
  | Null -> Fmt.string ppf "null"
  | Int n -> if n < 0 then Fmt.pf ppf "(-%d)" (-n) else Fmt.int ppf n
  | Float f ->
      (* Keep a decimal point so the lexer reads it back as a float. *)
      let s = Printf.sprintf "%.17g" f in
      if String.contains s '.' || String.contains s 'e' || String.contains s 'n' then
        Fmt.string ppf s
      else Fmt.pf ppf "%s.0" s
  | Bool true -> Fmt.string ppf "true"
  | Bool false -> Fmt.string ppf "false"
  | Str s -> Fmt.pf ppf "\"%s\"" (escape s)
  | Var x -> Fmt.string ppf x
  | This -> Fmt.string ppf "this"
  | Field (e, f) -> Fmt.pf ppf "%a.%s" pp_expr e f
  | Binop (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | Unop (Neg, e) -> Fmt.pf ppf "(-%a)" pp_expr e
  | Unop (Not, e) -> Fmt.pf ppf "(!%a)" pp_expr e
  | Call (None, f, a) -> Fmt.pf ppf "%s(%a)" f pp_args a
  | Call (Some r, f, a) -> Fmt.pf ppf "%a.%s(%a)" pp_expr r f pp_args a
  | Is (e, c) -> Fmt.pf ppf "(%a is %s)" pp_expr e c
  | SetLit es -> Fmt.pf ppf "{%a}" pp_args es
  | ListLit es -> Fmt.pf ppf "[%a]" pp_args es

and pp_args ppf es = Fmt.(list ~sep:(any ", ") pp_expr) ppf es

let rec pp_type ppf = function
  | TyInt -> Fmt.string ppf "int"
  | TyFloat -> Fmt.string ppf "float"
  | TyBool -> Fmt.string ppf "bool"
  | TyString -> Fmt.string ppf "string"
  | TyRef c -> Fmt.pf ppf "ref %s" c
  | TySet t -> Fmt.pf ppf "set<%a>" pp_type t
  | TyList t -> Fmt.pf ppf "list<%a>" pp_type t

let pp_order ppf = function Asc -> Fmt.string ppf "asc" | Desc -> Fmt.string ppf "desc"

let rec pp_stmt ppf = function
  | SExpr e -> Fmt.pf ppf "%a;" pp_expr e
  | SPrint es -> Fmt.pf ppf "print %a;" pp_args es
  | SAssign (x, e) -> Fmt.pf ppf "%s := %a;" x pp_expr e
  | SSetField (o, f, e) -> Fmt.pf ppf "%a.%s := %a;" pp_expr o f pp_expr e
  | SNew (tgt, c, inits) ->
      let pp_init ppf (f, e) = Fmt.pf ppf "%s = %a" f pp_expr e in
      (match tgt with
      | Some x -> Fmt.pf ppf "%s := pnew %s { %a };" x c Fmt.(list ~sep:(any ", ") pp_init) inits
      | None -> Fmt.pf ppf "pnew %s { %a };" c Fmt.(list ~sep:(any ", ") pp_init) inits)
  | SDelete e -> Fmt.pf ppf "pdelete %a;" pp_expr e
  | SForall q -> pp_forall ppf q
  | SIf (c, t, []) -> Fmt.pf ppf "if (%a) { %a }" pp_expr c pp_stmts t
  | SIf (c, t, e) -> Fmt.pf ppf "if (%a) { %a } else { %a }" pp_expr c pp_stmts t pp_stmts e
  | SNewVersion e -> Fmt.pf ppf "newversion %a;" pp_expr e
  | SActivate (tgt, recv, name, a) -> (
      match tgt with
      | Some x -> Fmt.pf ppf "%s := activate %a.%s(%a);" x pp_expr recv name pp_args a
      | None -> Fmt.pf ppf "activate %a.%s(%a);" pp_expr recv name pp_args a)
  | SDeactivate e -> Fmt.pf ppf "deactivate %a;" pp_expr e
  | SInsert (e, f, obj) -> Fmt.pf ppf "insert %a into %a.%s;" pp_expr e pp_expr obj f
  | SRemove (e, f, obj) -> Fmt.pf ppf "remove %a from %a.%s;" pp_expr e pp_expr obj f
  | SReturn e -> Fmt.pf ppf "return %a;" pp_expr e

and pp_stmts ppf ss = Fmt.(list ~sep:sp pp_stmt) ppf ss

and pp_forall ppf q =
  Fmt.pf ppf "forall %s in %s%s" q.q_var q.q_cls (if q.q_deep then "*" else "");
  (match q.q_suchthat with Some e -> Fmt.pf ppf " suchthat %a" pp_expr e | None -> ());
  (match q.q_by with Some (e, o) -> Fmt.pf ppf " by %a %a" pp_expr e pp_order o | None -> ());
  Fmt.pf ppf " { %a }" pp_stmts q.q_body

let pp_field ppf f =
  match f.fd_default with
  | None -> Fmt.pf ppf "%s : %a;" f.fd_name pp_type f.fd_type
  | Some e -> Fmt.pf ppf "%s : %a = %a;" f.fd_name pp_type f.fd_type pp_expr e
let pp_param ppf f = Fmt.pf ppf "%s : %a" f.fd_name pp_type f.fd_type
let pp_params ppf ps = Fmt.(list ~sep:(any ", ") pp_param) ppf ps

let pp_class ppf c =
  Fmt.pf ppf "class %s" c.c_name;
  (match c.c_parents with
  | [] -> ()
  | ps -> Fmt.pf ppf " : %s" (String.concat ", " ps));
  Fmt.pf ppf " {@\n";
  List.iter (fun f -> Fmt.pf ppf "  %a@\n" pp_field f) c.c_fields;
  List.iter
    (fun m ->
      Fmt.pf ppf "  method %s(%a) : %a = %a;@\n" m.m_name pp_params m.m_params pp_type m.m_ret
        pp_expr m.m_body)
    c.c_methods;
  List.iter (fun k -> Fmt.pf ppf "  constraint %s : %a;@\n" k.k_name pp_expr k.k_expr) c.c_constraints;
  List.iter
    (fun g ->
      Fmt.pf ppf "  trigger %s%s(%a) : "
        (if g.g_perpetual then "perpetual " else "")
        g.g_name pp_params g.g_params;
      (match g.g_within with Some e -> Fmt.pf ppf "within %a : " pp_expr e | None -> ());
      Fmt.pf ppf "%a ==> { %a }" pp_expr g.g_cond pp_stmts g.g_action;
      (match g.g_timeout with [] -> () | ts -> Fmt.pf ppf " timeout { %a }" pp_stmts ts);
      Fmt.pf ppf ";@\n")
    c.c_triggers;
  Fmt.pf ppf "};"

let pp_top ppf = function
  | TClass c -> pp_class ppf c
  | TCreateCluster c -> Fmt.pf ppf "create cluster %s;" c
  | TCreateIndex (c, f) -> Fmt.pf ppf "create index on %s(%s);" c f
  | TStmt s -> pp_stmt ppf s
  | TBegin -> Fmt.string ppf "begin;"
  | TCommit -> Fmt.string ppf "commit;"
  | TAbort -> Fmt.string ppf "abort;"
  | TShowClasses -> Fmt.string ppf "show classes;"
  | TShowStats -> Fmt.string ppf "show stats;"
  | TVerify -> Fmt.string ppf "verify;"
  | TDump -> Fmt.string ppf "dump;"
  | TLoad path -> Fmt.pf ppf "load \"%s\";" (escape path)
  | TExplain q ->
      Fmt.pf ppf "explain forall %s in %s%s" q.q_var q.q_cls (if q.q_deep then "*" else "");
      (match q.q_suchthat with Some e -> Fmt.pf ppf " suchthat %a" pp_expr e | None -> ());
      (match q.q_by with Some (e, o) -> Fmt.pf ppf " by %a %a" pp_expr e pp_order o | None -> ());
      Fmt.string ppf ";"
  | TAnalyze -> Fmt.string ppf "analyze;"
  | TAdvance e -> Fmt.pf ppf "advance time %a;" pp_expr e

let expr_to_string e = Fmt.str "%a" pp_expr e
let stmts_to_string ss = Fmt.str "%a" pp_stmts ss
let class_to_string c = Fmt.str "%a" pp_class c
