(* Abstract syntax of the O++-like surface language.

   This covers the linguistic facilities of the paper: class declarations
   with multiple inheritance, constraints and triggers (once-only, perpetual
   and timed); persistent object creation/deletion; versioning primitives;
   and the [forall x in cluster suchthat ... by ...] iteration statement,
   including deep (hierarchy) iteration.

   The same AST serves the shell, trigger actions, method bodies, and the
   constraint/suchthat expressions embedded in schemas. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | In  (* set/list membership *)

type unop = Neg | Not

type expr =
  | Null
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string
  | Var of string
  | This
  | Field of expr * string           (* e.f — dereferences object refs *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of expr option * string * expr list  (* receiver.m(args) / builtin(args) *)
  | Is of expr * string              (* e is C — dynamic (sub)class test *)
  | SetLit of expr list
  | ListLit of expr list

type order = Asc | Desc

type forall = {
  q_var : string;
  q_cls : string;
  q_deep : bool;                     (* forall x in C* : include subclasses *)
  q_suchthat : expr option;
  q_by : (expr * order) option;
  q_body : stmt list;
}

and stmt =
  | SExpr of expr
  | SPrint of expr list
  | SAssign of string * expr                       (* x := e *)
  | SSetField of expr * string * expr              (* e.f := e' *)
  | SNew of string option * string * (string * expr) list  (* [x :=] pnew C { f = e, ... } *)
  | SDelete of expr                                (* pdelete e *)
  | SForall of forall
  | SIf of expr * stmt list * stmt list
  | SNewVersion of expr                            (* newversion e *)
  | SActivate of string option * expr * string * expr list (* [x :=] activate e.T(args) *)
  | SDeactivate of expr                            (* deactivate tid *)
  | SInsert of expr * string * expr                (* insert e into s.f — set member add *)
  | SRemove of expr * string * expr                (* remove e from s.f *)
  | SReturn of expr

type type_expr =
  | TyInt
  | TyFloat
  | TyBool
  | TyString
  | TyRef of string
  | TySet of type_expr
  | TyList of type_expr

type field_decl = {
  fd_name : string;
  fd_type : type_expr;
  fd_default : expr option;  (* member initializer: [qty: int = 100;] *)
}

type method_decl = {
  m_name : string;
  m_params : field_decl list;
  m_ret : type_expr;
  m_body : expr;                    (* expression-bodied methods *)
}

type constraint_decl = { k_name : string; k_expr : expr }

type trigger_decl = {
  g_name : string;
  g_params : field_decl list;
  g_perpetual : bool;
  g_within : expr option;           (* timed trigger deadline (logical clock) *)
  g_cond : expr;
  g_action : stmt list;
  g_timeout : stmt list;            (* action when the deadline passes first *)
}

type class_decl = {
  c_name : string;
  c_parents : string list;
  c_fields : field_decl list;
  c_methods : method_decl list;
  c_constraints : constraint_decl list;
  c_triggers : trigger_decl list;
}

type top =
  | TClass of class_decl
  | TCreateCluster of string
  | TCreateIndex of string * string
  | TStmt of stmt
  | TBegin
  | TCommit
  | TAbort
  | TShowClasses
  | TShowStats                       (* engine work counters *)
  | TVerify                          (* offline integrity check *)
  | TDump                            (* logical export as a script *)
  | TLoad of string                  (* source another script file *)
  | TExplain of forall
  | TAnalyze                         (* collect planner statistics *)
  | TAdvance of expr                 (* advance logical time (timed triggers) *)

(* Structural equality is derived; the AST carries no annotations. *)
let equal_expr (a : expr) (b : expr) = a = b
let equal_stmt (a : stmt) (b : stmt) = a = b
let equal_class_decl (a : class_decl) (b : class_decl) = a = b
