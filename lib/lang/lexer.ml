type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string
  | PUNCT of string
  | EOF

exception Lex_error of string * int

let keywords =
  [
    "class"; "create"; "cluster"; "index"; "on"; "pnew"; "pdelete"; "newversion";
    "forall"; "in"; "suchthat"; "by"; "desc"; "asc"; "print"; "if"; "else";
    "method"; "constraint"; "trigger"; "perpetual"; "within"; "timeout";
    "activate"; "deactivate"; "insert"; "into"; "remove"; "from"; "return";
    "int"; "float"; "bool"; "string"; "ref"; "set"; "list";
    "true"; "false"; "null"; "this"; "is"; "and"; "or"; "not";
    "begin"; "commit"; "abort"; "show"; "classes"; "explain"; "advance"; "time";
    "stats"; "verify"; "dump"; "load"; "analyze";
  ]

let is_kw s = List.mem s keywords
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* Multi-character punctuation first so ":=" beats ":". *)
let puncts =
  [ "==>"; ":="; "=="; "!="; "<="; ">="; "&&"; "||";
    "{"; "}"; "("; ")"; "["; "]"; ";"; ","; ":"; "."; "*";
    "+"; "-"; "/"; "%"; "<"; ">"; "="; "!" ]

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let emit tok off = out := (tok, off) :: !out in
  let rec skip_ws i =
    if i >= n then i
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> skip_ws (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
          let rec eol j = if j >= n || src.[j] = '\n' then j else eol (j + 1) in
          skip_ws (eol (i + 2))
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
          let rec close j =
            if j + 1 >= n then raise (Lex_error ("unterminated comment", i))
            else if src.[j] = '*' && src.[j + 1] = '/' then j + 2
            else close (j + 1)
          in
          skip_ws (close (i + 2))
      | _ -> i
  in
  let lex_string i =
    let b = Buffer.create 16 in
    let rec go j =
      if j >= n then raise (Lex_error ("unterminated string", i))
      else
        match src.[j] with
        | '"' -> (Buffer.contents b, j + 1)
        | '\\' when j + 1 < n ->
            let c =
              match src.[j + 1] with
              | 'n' -> '\n'
              | 't' -> '\t'
              | '\\' -> '\\'
              | '"' -> '"'
              | c -> c
            in
            Buffer.add_char b c;
            go (j + 2)
        | c ->
            Buffer.add_char b c;
            go (j + 1)
    in
    go i
  in
  let rec loop i =
    let i = skip_ws i in
    if i >= n then emit EOF i
    else
      let c = src.[i] in
      if is_ident_start c then begin
        let rec stop j = if j < n && is_ident_char src.[j] then stop (j + 1) else j in
        let j = stop i in
        let word = String.sub src i (j - i) in
        emit (if is_kw word then KW word else IDENT word) i;
        loop j
      end
      else if is_digit c then begin
        let rec stop j = if j < n && is_digit src.[j] then stop (j + 1) else j in
        let j = stop i in
        if j < n && src.[j] = '.' && j + 1 < n && is_digit src.[j + 1] then begin
          let k = stop (j + 1) in
          (* optional exponent *)
          let k =
            if k < n && (src.[k] = 'e' || src.[k] = 'E') then begin
              let k1 = if k + 1 < n && (src.[k + 1] = '+' || src.[k + 1] = '-') then k + 2 else k + 1 in
              stop k1
            end
            else k
          in
          emit (FLOAT (float_of_string (String.sub src i (k - i)))) i;
          loop k
        end
        else begin
          emit (INT (int_of_string (String.sub src i (j - i)))) i;
          loop j
        end
      end
      else if c = '"' then begin
        let s, j = lex_string (i + 1) in
        emit (STRING s) i;
        loop j
      end
      else
        let rec try_punct = function
          | [] -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, i))
          | p :: rest ->
              let l = String.length p in
              if i + l <= n && String.sub src i l = p then begin
                emit (PUNCT p) i;
                loop (i + l)
              end
              else try_punct rest
        in
        try_punct puncts
  in
  loop 0;
  List.rev !out

let pp_token ppf = function
  | IDENT s -> Format.fprintf ppf "ident %s" s
  | INT n -> Format.fprintf ppf "int %d" n
  | FLOAT f -> Format.fprintf ppf "float %g" f
  | STRING s -> Format.fprintf ppf "string %S" s
  | KW s -> Format.fprintf ppf "keyword %s" s
  | PUNCT s -> Format.fprintf ppf "%S" s
  | EOF -> Format.fprintf ppf "end of input"
