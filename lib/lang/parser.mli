(** Recursive-descent parser for the O++-like surface language.

    Grammar sketch (see README for the full reference):
    {v
      class C : P1, P2 {
        f : int;  g : ref D;  h : set<string>;
        method m(a: int) : float = expr;
        constraint k : expr;
        trigger [perpetual] t(a: int) : [within e :] cond ==> { stmts } [timeout { stmts }];
      };
      create cluster C;        create index on C(f);
      x := pnew C { f = 1, g = y };
      forall x in C[*] [suchthat e] [by e [desc]] { stmts };
    v} *)

exception Parse_error of string * int
(** message and byte offset *)

val program : string -> Ast.top list
(** Parse a whole input (shell script / schema file). *)

val expr : string -> Ast.expr
(** Parse a single expression (used for stored constraints). *)

val stmts : string -> Ast.stmt list
(** Parse a statement sequence (used for stored trigger actions). *)
