(** Heap files: unordered collections of variable-length records.

    A heap owns a whole pager. Page 0 is a header page; all other pages are
    slotted data pages. Records larger than a page are split into chunks
    chained by record id. Record ids ([rid]) name the head record and remain
    valid until the record is deleted; {!update} may move a record and then
    returns its new rid (callers keeping long-lived references must go
    through a directory, as the object store does). *)

type t

type rid = { page : int; slot : int }

val pp_rid : Format.formatter -> rid -> unit
val rid_equal : rid -> rid -> bool
val encode_rid : Buffer.t -> rid -> unit
val decode_rid : Ode_util.Codec.cursor -> rid

val attach : Buffer_pool.t -> t
(** [attach pool] opens the heap stored in [pool]'s disk, formatting a fresh
    header if the disk is empty. Raises [Invalid_argument] on a foreign
    file. *)

val pool : t -> Buffer_pool.t

val insert : t -> string -> rid
val get : t -> rid -> string option
val delete : t -> rid -> bool

val update : t -> rid -> string -> rid
(** Replace the record's payload. Returns the (possibly new) rid; the old
    rid is dead if the record moved. The rid must be live. *)

val iter : t -> (rid -> string -> unit) -> unit
(** Visit every live record, reassembling chunked ones. Order is physical
    (page, then slot). *)

val sweep_orphans : t -> live:(rid -> bool) -> int
(** Delete every head/inline record for which [live rid] is false (freeing
    overflow chains), returning how many were reclaimed. Used after crash
    recovery to drop heap records whose directory entry never reached
    disk. *)

val record_count : t -> int
val page_count : t -> int
val flush : t -> unit
