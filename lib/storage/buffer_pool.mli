(** A fixed-capacity, lock-striped page cache over a {!Disk.t}.

    Callers pin pages to work on them and unpin when done; only unpinned
    pages are eviction candidates (LRU). Dirty pages are written back on
    eviction and on {!flush_all}. Frames are partitioned into stripes by
    page number, each behind its own mutex, so pin/unpin/mark_dirty are
    safe to call concurrently from multiple domains; write-back remains a
    single crash-atomic batch under a global flush lock. Tiny pools
    (capacity under 32) collapse to one stripe and keep exact global-LRU
    semantics. *)

type t

exception Pool_exhausted
(** Raised when every frame is pinned and a new page is requested. *)

type frame
(** A cached page. The underlying bytes are shared: mutating them requires
    calling {!mark_dirty}. *)

val data : frame -> bytes
val page_no : frame -> int

val create : ?capacity:int -> Disk.t -> t
(** [create disk] wraps [disk] with a pool of [capacity] frames
    (default 256). *)

val disk : t -> Disk.t
val capacity : t -> int

val stripes : t -> int
(** Number of lock stripes (a power of two; 1 for tiny pools). *)

val resident : t -> int
(** Frames currently cached across all stripes (each stripe counted under
    its lock; the sum is not one atomic cut — a monitoring gauge). *)

val set_pre_write : t -> (unit -> unit) -> unit
(** Hook run immediately before any batch of dirty pages is written back
    (eviction or {!flush_all}). The engine installs a WAL force here so that
    under deferred durability (group/async commit) no data page whose log
    records are still buffered can reach the disk first — the classic
    log-force-before-steal rule. Default: no-op. *)

val pin : t -> int -> frame
(** [pin t n] returns page [n], loading it if needed, and increments its pin
    count. *)

val unpin : t -> frame -> unit

val with_page : t -> int -> (frame -> 'a) -> 'a
(** Pin, apply, unpin (also on exceptions). *)

val mark_dirty : t -> frame -> unit

val allocate : t -> frame
(** Extend the disk by one fresh, zeroed, formatted-blank page and return it
    pinned. *)

val page_count : t -> int

val flush_all : t -> unit
(** Write back every dirty frame and sync the disk. *)

val drop_cache : t -> unit
(** Forget all unpinned clean frames (used by tests to force re-reads). *)
