module Failpoint = Ode_util.Failpoint

type frame = {
  no : int;
  buf : bytes;
  mutable pins : int;
  mutable dirty : bool;
}

let fp_flush = Failpoint.site "pool.flush"
let fp_evict = Failpoint.site "pool.evict"

type t = {
  disk : Disk.t;
  cap : int;
  frames : (int, frame) Ode_util.Lru.t;
  mutable pre_write : unit -> unit;
}

exception Pool_exhausted

let data f = f.buf
let page_no f = f.no

let create ?(capacity = 256) disk =
  { disk; cap = capacity; frames = Ode_util.Lru.create capacity; pre_write = (fun () -> ()) }

let set_pre_write t f = t.pre_write <- f
let disk t = t.disk
let capacity t = t.cap
let page_count t = Disk.page_count t.disk

(* Persist every dirty frame as one crash-atomic batch (double-write
   journalled and fsynced by the disk layer). Returns false when there was
   nothing to write. Single-page write-back would let a crash persist an
   arbitrary subset of a logical update; batching keeps the on-disk file at
   a consistent flush boundary. *)
let flush_dirty t =
  let batch = ref [] in
  Ode_util.Lru.iter t.frames (fun _ f -> if f.dirty then batch := (f.no, f.buf) :: !batch);
  match !batch with
  | [] -> false
  | batch ->
      (* Write-ahead: deferred (group/async) commits apply to pages before
         their log records are fsynced, so the engine hooks this to force the
         WAL out before any dirty page can reach the disk. *)
      t.pre_write ();
      Disk.write_batch t.disk batch;
      Ode_util.Lru.iter t.frames (fun _ f -> f.dirty <- false);
      true

let make_room t =
  if Ode_util.Lru.length t.frames >= t.cap then
    (* Prefer a clean victim; otherwise flush (one journalled batch) and
       retry, so dirty pages never hit the disk one at a time. *)
    match Ode_util.Lru.evict t.frames (fun _ f -> f.pins = 0 && not f.dirty) with
    | Some _ -> ()
    | None -> (
        (match Failpoint.hit fp_evict with
        | Some Failpoint.Crash_site -> Failpoint.crash fp_evict
        | Some _ | None -> ());
        Ode_util.Trace.instant ~cat:"pool" "pool.evict";
        ignore (flush_dirty t);
        match Ode_util.Lru.evict t.frames (fun _ f -> f.pins = 0) with
        | Some _ -> ()
        | None -> raise Pool_exhausted)

let pin t n =
  match Ode_util.Lru.find t.frames n with
  | Some f ->
      Ode_util.Stats.incr_pool_hits ();
      f.pins <- f.pins + 1;
      f
  | None ->
      Ode_util.Stats.incr_pool_misses ();
      Ode_util.Trace.instant ~cat:"pool" "pool.miss";
      make_room t;
      let buf = Disk.read t.disk n in
      let f = { no = n; buf; pins = 1; dirty = false } in
      Ode_util.Lru.add t.frames n f;
      f

let unpin _t f =
  assert (f.pins > 0);
  f.pins <- f.pins - 1

let with_page t n fn =
  let f = pin t n in
  Fun.protect ~finally:(fun () -> unpin t f) (fun () -> fn f)

let mark_dirty _t f = f.dirty <- true

let allocate t =
  make_room t;
  let n = Disk.allocate t.disk in
  let buf = Disk.read t.disk n in
  let f = { no = n; buf; pins = 1; dirty = false } in
  Ode_util.Lru.add t.frames n f;
  f

let flush_all t =
  (match Failpoint.hit fp_flush with
  | Some Failpoint.Crash_site -> Failpoint.crash fp_flush
  | Some _ | None -> ());
  if not (flush_dirty t) then Disk.sync t.disk

let drop_cache t =
  let rec go () =
    match Ode_util.Lru.evict t.frames (fun _ f -> f.pins = 0 && not f.dirty) with
    | Some _ -> go ()
    | None -> ()
  in
  go ()
