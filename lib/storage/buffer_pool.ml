(* Lock-striped page cache. Frames live in per-stripe LRUs, each behind its
   own mutex (stripe = page_no mod nstripes, so sequential pages spread
   round-robin); pin/unpin/mark_dirty are safe to call concurrently from
   reader domains. Write-back stays a single crash-atomic batch: flush takes
   a global flush mutex, then every stripe lock in ascending order, so a
   flush still sees one consistent dirty set.

   Lock order (outermost first): flush_mu -> stripe locks (ascending) ->
   Disk's internal lock. [pin] holds exactly one stripe lock and never the
   flush mutex, releasing the stripe before any global flush, so the
   hierarchy has no cycles. *)

module Failpoint = Ode_util.Failpoint

type frame = {
  no : int;
  buf : bytes;
  mutable pins : int;
  mutable dirty : bool;
}

let fp_flush = Failpoint.site "pool.flush"
let fp_evict = Failpoint.site "pool.evict"

type stripe = { mu : Mutex.t; frames : (int, frame) Ode_util.Lru.t }

type t = {
  disk : Disk.t;
  cap : int;
  stripes : stripe array;
  flush_mu : Mutex.t;
  mutable pre_write : unit -> unit;
}

exception Pool_exhausted

let data f = f.buf
let page_no f = f.no

(* Power-of-two stripe count, one stripe per ~32 frames capped at 16, so the
   tiny pools unit tests build (capacity 1..8) keep exact single-LRU
   semantics while production-sized pools (>=64 pages) stripe. *)
let stripe_count cap =
  let target = min 16 (max 1 (cap / 32)) in
  let rec pow2 n = if n * 2 <= target then pow2 (n * 2) else n in
  pow2 1

let create ?(capacity = 256) disk =
  let n = stripe_count capacity in
  let per = max 1 (capacity / n) in
  {
    disk;
    cap = capacity;
    stripes = Array.init n (fun _ -> { mu = Mutex.create (); frames = Ode_util.Lru.create per });
    flush_mu = Mutex.create ();
    pre_write = (fun () -> ());
  }

let set_pre_write t f = t.pre_write <- f
let disk t = t.disk
let capacity t = t.cap
let stripes t = Array.length t.stripes

(* Residency gauge: frames currently cached, summed per stripe under its
   lock (the sum is not one atomic cut — fine for monitoring). *)
let resident t =
  Array.fold_left
    (fun n s -> n + Mutex.protect s.mu (fun () -> Ode_util.Lru.length s.frames))
    0 t.stripes
let page_count t = Disk.page_count t.disk
let stripe_of t n = t.stripes.(n land (Array.length t.stripes - 1))

let lock_all t = Array.iter (fun s -> Mutex.lock s.mu) t.stripes
let unlock_all t = Array.iter (fun s -> Mutex.unlock s.mu) t.stripes

(* Persist every dirty frame as one crash-atomic batch (double-write
   journalled and fsynced by the disk layer). Returns false when there was
   nothing to write. Single-page write-back would let a crash persist an
   arbitrary subset of a logical update; batching keeps the on-disk file at
   a consistent flush boundary. *)
let flush_dirty t =
  Mutex.protect t.flush_mu (fun () ->
      lock_all t;
      let finish v =
        unlock_all t;
        v
      in
      let batch = ref [] in
      Array.iter
        (fun s -> Ode_util.Lru.iter s.frames (fun _ f -> if f.dirty then batch := (f.no, f.buf) :: !batch))
        t.stripes;
      match !batch with
      | [] -> finish false
      | batch -> (
          (* Write-ahead: deferred (group/async) commits apply to pages
             before their log records are fsynced, so the engine hooks this
             to force the WAL out before any dirty page can reach the disk. *)
          match
            t.pre_write ();
            Disk.write_batch t.disk batch
          with
          | () ->
              Array.iter
                (fun s -> Ode_util.Lru.iter s.frames (fun _ f -> f.dirty <- false))
                t.stripes;
              finish true
          | exception e ->
              unlock_all t;
              raise e))

(* Make room inside one stripe, caller holding its lock. Returns false when
   only a global flush can help (every unpinned frame is dirty). *)
let make_room_local s =
  if Ode_util.Lru.length s.frames >= Ode_util.Lru.capacity s.frames then
    match Ode_util.Lru.evict s.frames (fun _ f -> f.pins = 0 && not f.dirty) with
    | Some _ -> true
    | None -> false
  else true

(* Slow path: the stripe was full of dirty/pinned frames. Drop the stripe
   lock, flush everything clean (one journalled batch), retake the lock and
   evict. Prefers a clean victim even after the flush in case a concurrent
   pin dirtied something again. *)
let make_room_flushing t s =
  if not (make_room_local s) then begin
    (match Failpoint.hit fp_evict with
    | Some Failpoint.Crash_site -> Failpoint.crash fp_evict
    | Some _ | None -> ());
    Ode_util.Trace.instant ~cat:"pool" "pool.evict";
    Mutex.unlock s.mu;
    (match flush_dirty t with
    | _ -> Mutex.lock s.mu
    | exception e ->
        Mutex.lock s.mu;
        raise e);
    if Ode_util.Lru.length s.frames >= Ode_util.Lru.capacity s.frames then
      match Ode_util.Lru.evict s.frames (fun _ f -> f.pins = 0) with
      | Some _ -> ()
      | None -> raise Pool_exhausted
  end

let pin t n =
  let s = stripe_of t n in
  Mutex.protect s.mu (fun () ->
      match Ode_util.Lru.find s.frames n with
      | Some f ->
          Ode_util.Stats.incr_pool_hits ();
          f.pins <- f.pins + 1;
          f
      | None -> (
          Ode_util.Stats.incr_pool_misses ();
          Ode_util.Trace.instant ~cat:"pool" "pool.miss";
          make_room_flushing t s;
          (* The stripe lock was dropped during a flush: another domain may
             have loaded the page meanwhile. *)
          match Ode_util.Lru.find s.frames n with
          | Some f ->
              f.pins <- f.pins + 1;
              f
          | None ->
              let buf = Disk.read t.disk n in
              let f = { no = n; buf; pins = 1; dirty = false } in
              Ode_util.Lru.add s.frames n f;
              f))

let unpin t f =
  let s = stripe_of t f.no in
  Mutex.protect s.mu (fun () ->
      assert (f.pins > 0);
      f.pins <- f.pins - 1)

let with_page t n fn =
  let f = pin t n in
  Fun.protect ~finally:(fun () -> unpin t f) (fun () -> fn f)

let mark_dirty t f =
  let s = stripe_of t f.no in
  Mutex.protect s.mu (fun () -> f.dirty <- true)

let allocate t =
  let n = Disk.allocate t.disk in
  let s = stripe_of t n in
  Mutex.protect s.mu (fun () ->
      make_room_flushing t s;
      let buf = Disk.read t.disk n in
      let f = { no = n; buf; pins = 1; dirty = false } in
      Ode_util.Lru.add s.frames n f;
      f)

let flush_all t =
  (match Failpoint.hit fp_flush with
  | Some Failpoint.Crash_site -> Failpoint.crash fp_flush
  | Some _ | None -> ());
  if not (flush_dirty t) then Disk.sync t.disk

let drop_cache t =
  Array.iter
    (fun s ->
      Mutex.protect s.mu (fun () ->
          let rec go () =
            match Ode_util.Lru.evict s.frames (fun _ f -> f.pins = 0 && not f.dirty) with
            | Some _ -> go ()
            | None -> ()
          in
          go ()))
    t.stripes
