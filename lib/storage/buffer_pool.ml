type frame = {
  no : int;
  buf : bytes;
  mutable pins : int;
  mutable dirty : bool;
}

type t = {
  disk : Disk.t;
  cap : int;
  frames : frame Ode_util.Lru.t;
}

exception Pool_exhausted

let data f = f.buf
let page_no f = f.no
let create ?(capacity = 256) disk = { disk; cap = capacity; frames = Ode_util.Lru.create capacity }
let disk t = t.disk
let capacity t = t.cap
let page_count t = Disk.page_count t.disk

let write_back t f =
  if f.dirty then begin
    Disk.write t.disk f.no f.buf;
    f.dirty <- false
  end

let make_room t =
  if Ode_util.Lru.length t.frames >= t.cap then
    match Ode_util.Lru.evict t.frames (fun _ f -> f.pins = 0) with
    | Some (_, victim) -> write_back t victim
    | None -> raise Pool_exhausted

let pin t n =
  match Ode_util.Lru.find t.frames n with
  | Some f ->
      Ode_util.Stats.incr_pool_hits ();
      f.pins <- f.pins + 1;
      f
  | None ->
      Ode_util.Stats.incr_pool_misses ();
      make_room t;
      let buf = Disk.read t.disk n in
      let f = { no = n; buf; pins = 1; dirty = false } in
      Ode_util.Lru.add t.frames n f;
      f

let unpin _t f =
  assert (f.pins > 0);
  f.pins <- f.pins - 1

let with_page t n fn =
  let f = pin t n in
  Fun.protect ~finally:(fun () -> unpin t f) (fun () -> fn f)

let mark_dirty _t f = f.dirty <- true

let allocate t =
  make_room t;
  let n = Disk.allocate t.disk in
  let buf = Disk.read t.disk n in
  let f = { no = n; buf; pins = 1; dirty = false } in
  Ode_util.Lru.add t.frames n f;
  f

let flush_all t =
  Ode_util.Lru.iter t.frames (fun _ f -> write_back t f);
  Disk.sync t.disk

let drop_cache t =
  let rec go () =
    match Ode_util.Lru.evict t.frames (fun _ f -> f.pins = 0 && not f.dirty) with
    | Some _ -> go ()
    | None -> ()
  in
  go ()
