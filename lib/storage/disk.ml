type backend =
  | File of { fd : Unix.file_descr; mutable pages : int }
  | Memory of { mutable arr : bytes array; mutable used : int }

type t = { backend : backend }

let open_file path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let len = (Unix.fstat fd).Unix.st_size in
  if len mod Page.size <> 0 then begin
    Unix.close fd;
    invalid_arg (Printf.sprintf "disk: %s is not page-aligned (%d bytes)" path len)
  end;
  { backend = File { fd; pages = len / Page.size } }

let in_memory () = { backend = Memory { arr = Array.make 8 Bytes.empty; used = 0 } }
let is_memory t = match t.backend with Memory _ -> true | File _ -> false
let page_count t = match t.backend with File f -> f.pages | Memory m -> m.used

let check_range t n ~extend =
  let count = page_count t in
  let limit = if extend then count else count - 1 in
  if n < 0 || n > limit then
    invalid_arg (Printf.sprintf "disk: page %d out of range (count %d)" n count)

(* The engine is single-threaded, so seek-then-read positioned I/O is safe. *)
let pread fd buf off =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let rec go pos =
    if pos < Page.size then begin
      let k = Unix.read fd buf pos (Page.size - pos) in
      if k = 0 then invalid_arg "disk: short read" else go (pos + k)
    end
  in
  go 0

let pwrite fd buf off =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let rec go pos =
    if pos < Page.size then begin
      let k = Unix.write fd buf pos (Page.size - pos) in
      go (pos + k)
    end
  in
  go 0

let read_into t n buf =
  check_range t n ~extend:false;
  Ode_util.Stats.incr_pages_read ();
  match t.backend with
  | File f -> pread f.fd buf (n * Page.size)
  | Memory m -> Bytes.blit m.arr.(n) 0 buf 0 Page.size

let read t n =
  let buf = Bytes.create Page.size in
  read_into t n buf;
  buf

let write t n page =
  check_range t n ~extend:true;
  assert (Bytes.length page = Page.size);
  Ode_util.Stats.incr_pages_written ();
  match t.backend with
  | File f ->
      pwrite f.fd page (n * Page.size);
      if n = f.pages then f.pages <- f.pages + 1
  | Memory m ->
      if n = m.used then begin
        if m.used = Array.length m.arr then begin
          let bigger = Array.make (2 * Array.length m.arr) Bytes.empty in
          Array.blit m.arr 0 bigger 0 m.used;
          m.arr <- bigger
        end;
        m.arr.(n) <- Bytes.copy page;
        m.used <- m.used + 1
      end
      else Bytes.blit page 0 m.arr.(n) 0 Page.size

let allocate t =
  let n = page_count t in
  let zero = Bytes.make Page.size '\000' in
  write t n zero;
  n

let sync t = match t.backend with File f -> Unix.fsync f.fd | Memory _ -> ()

let truncate t n =
  match t.backend with
  | File f ->
      Unix.ftruncate f.fd (n * Page.size);
      f.pages <- min f.pages n
  | Memory m -> m.used <- min m.used n

let close t = match t.backend with File f -> Unix.close f.fd | Memory _ -> ()
