(* Page-granular storage backends.

   The file backend stamps an FNV-1a checksum into the trailer of every page
   it writes and verifies it on every read, so torn or bit-flipped pages are
   detected (Codec.Corrupt) instead of silently decoded. Multi-page flushes
   go through a double-write journal: the batch is first written and fsynced
   to a side file, then applied in place, so a crash anywhere in the middle
   leaves either the journal (replayed at open) or the data file intact —
   never a mix of old and new pages.

   Failpoint sites cover every side-effecting step so the crash-torture
   harness can kill the process between any two syscalls. *)

module Stats = Ode_util.Stats
module Codec = Ode_util.Codec
module Failpoint = Ode_util.Failpoint

type file = { fd : Unix.file_descr; journal : string; mutable pages : int }
type mem = { mutable arr : bytes array; mutable used : int }

type backend =
  | File of file
  | Memory of mem

(* [mu] serializes every page-granular operation: the file backend
   positions with lseek before read/write, so two domains sharing the fd
   (e.g. two reader domains both missing in the buffer pool) would
   otherwise interleave seek and transfer and tear pages. *)
type t = { backend : backend; mu : Mutex.t }

let fp_write = Failpoint.site "disk.write"
let fp_sync = Failpoint.site "disk.sync"
let fp_journal_write = Failpoint.site "disk.journal.write"
let fp_journal_clear = Failpoint.site "disk.journal.clear"

(* -- resilient syscall wrappers ------------------------------------------ *)

let rec retry f =
  match f () with
  | v -> v
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) ->
      Stats.incr_io_retries ();
      retry f

let read_fully fd buf pos len =
  let rec go pos len =
    if len > 0 then begin
      let k = retry (fun () -> Unix.read fd buf pos len) in
      if k = 0 then invalid_arg "disk: short read";
      go (pos + k) (len - k)
    end
  in
  go pos len

let write_fully fd buf pos len =
  let rec go pos len =
    if len > 0 then begin
      let k = retry (fun () -> Unix.write fd buf pos len) in
      if k = 0 then failwith "disk: write returned 0 bytes (device full?)";
      go (pos + k) (len - k)
    end
  in
  go pos len

let pread fd buf off =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  read_fully fd buf 0 Page.size

let pwrite ?(len = Page.size) fd buf off =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  write_fully fd buf 0 len

(* -- page checksums ------------------------------------------------------- *)

let checksum_off = Page.data_end

let stamp page =
  let sum = Codec.fnv64_bytes page ~pos:0 ~len:checksum_off in
  Bytes.set_int64_le page checksum_off sum

let checksum_ok page =
  Bytes.get_int64_le page checksum_off
  = Codec.fnv64_bytes page ~pos:0 ~len:checksum_off

(* -- fault interpretation -------------------------------------------------
   A faulted write simulates a crash in the middle of the syscall: persist a
   prefix, or a corrupted image, then die. [Skip_effect] pretends the write
   happened (lying hardware) and keeps running. *)

let faulted_write site fd buf off = function
  | Failpoint.Crash_site -> Failpoint.crash site
  | Failpoint.Short_effect frac ->
      let len = Bytes.length buf in
      let keep = max 0 (min (len - 1) (int_of_float (frac *. float_of_int len))) in
      if keep > 0 then pwrite ~len:keep fd buf off;
      Failpoint.crash site
  | Failpoint.Flip_bit bit ->
      let mangled = Bytes.copy buf in
      let byte = bit / 8 mod Bytes.length mangled in
      Bytes.set mangled byte
        (Char.chr (Char.code (Bytes.get mangled byte) lxor (1 lsl (bit mod 8))));
      pwrite ~len:(Bytes.length mangled) fd mangled off;
      Failpoint.crash site
  | Failpoint.Skip_effect -> ()

(* -- double-write journal -------------------------------------------------
   Format: "ODEDWJ01" | u32 count | count * (u32 page_no | page image) |
   i64 fnv64 over everything before the trailer. The journal is valid only
   if complete and checksummed, so a torn journal write is indistinguishable
   from no journal — and in both cases the data file is still intact. *)

let journal_magic = "ODEDWJ01"

let encode_journal batch =
  let b = Buffer.create (List.length batch * (Page.size + 4) + 32) in
  Codec.put_raw b journal_magic;
  Codec.put_u32 b (List.length batch);
  List.iter
    (fun (no, page) ->
      Codec.put_u32 b no;
      Buffer.add_bytes b page)
    batch;
  let body = Buffer.contents b in
  Codec.put_i64 b (Codec.fnv64 body);
  Buffer.to_bytes b

let decode_journal data =
  let len = String.length data in
  if len < String.length journal_magic + 4 + 8 then None
  else if String.sub data 0 (String.length journal_magic) <> journal_magic then None
  else
    let c = Codec.cursor ~pos:(String.length journal_magic) data in
    match
      let count = Codec.get_u32 c in
      let batch = ref [] in
      for _ = 1 to count do
        let no = Codec.get_u32 c in
        let page = Codec.get_raw c Page.size in
        batch := (no, page) :: !batch
      done;
      let body_len = Codec.pos c in
      let sum = Codec.get_i64 c in
      if sum <> Codec.fnv64 (String.sub data 0 body_len) then None
      else Some (List.rev !batch)
    with
    | v -> v
    | exception Codec.Corrupt _ -> None

let read_whole fd =
  let len = (Unix.fstat fd).Unix.st_size in
  let buf = Bytes.create len in
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  let rec fill pos =
    if pos >= len then pos
    else
      let k = retry (fun () -> Unix.read fd buf pos (len - pos)) in
      if k = 0 then pos else fill (pos + k)
  in
  let got = fill 0 in
  Bytes.sub_string buf 0 got

(* Replay a complete journal into the data file (pages carry their stamped
   checksums already), or discard a torn one. Idempotent: replaying twice is
   harmless, and clearing before the data fsync is prevented by ordering. *)
let recover_journal fd journal_path =
  match Unix.openfile journal_path [ Unix.O_RDONLY ] 0o644 with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | jfd ->
      let data = Fun.protect ~finally:(fun () -> Unix.close jfd) (fun () -> read_whole jfd) in
      (match decode_journal data with
      | Some batch ->
          List.iter
            (fun (no, page) ->
              Stats.incr_journal_pages_restored ();
              pwrite fd (Bytes.of_string page) (no * Page.size))
            batch;
          Unix.fsync fd
      | None -> ());
      Unix.unlink journal_path

(* -- construction --------------------------------------------------------- *)

let open_file path =
  let journal = path ^ ".journal" in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  recover_journal fd journal;
  let len = (Unix.fstat fd).Unix.st_size in
  (* A sub-page tail can only be a torn extension write: drop it. *)
  let len =
    if len mod Page.size = 0 then len
    else begin
      let aligned = len - (len mod Page.size) in
      Unix.ftruncate fd aligned;
      aligned
    end
  in
  (* Interior pages are protected by the journal, so a corrupt checksum can
     only appear on trailing pages torn while extending the file. *)
  let pages = ref (len / Page.size) in
  let buf = Bytes.create Page.size in
  let rec trim () =
    if !pages > 0 then begin
      pread fd buf ((!pages - 1) * Page.size);
      if not (checksum_ok buf) then begin
        Stats.incr_checksum_failures ();
        decr pages;
        Unix.ftruncate fd (!pages * Page.size);
        trim ()
      end
    end
  in
  trim ();
  { backend = File { fd; journal; pages = !pages }; mu = Mutex.create () }

let in_memory () =
  { backend = Memory { arr = Array.make 8 Bytes.empty; used = 0 }; mu = Mutex.create () }
let is_memory t = match t.backend with Memory _ -> true | File _ -> false
let page_count t = match t.backend with File f -> f.pages | Memory m -> m.used

let check_range t n ~extend =
  let count = page_count t in
  let limit = if extend then count else count - 1 in
  if n < 0 || n > limit then
    invalid_arg (Printf.sprintf "disk: page %d out of range (count %d)" n count)

(* -- reads ---------------------------------------------------------------- *)

let h_page_read = Ode_util.Histogram.create "page.read"
let h_page_write = Ode_util.Histogram.create "page.write"

let read_into t n buf =
  Mutex.protect t.mu @@ fun () ->
  check_range t n ~extend:false;
  Stats.incr_pages_read ();
  Ode_util.Histogram.time h_page_read @@ fun () ->
  match t.backend with
  | File f ->
      pread f.fd buf (n * Page.size);
      if not (checksum_ok buf) then begin
        Stats.incr_checksum_failures ();
        raise (Codec.Corrupt (Printf.sprintf "disk: bad checksum on page %d" n))
      end
  | Memory m -> Bytes.blit m.arr.(n) 0 buf 0 Page.size

let read t n =
  let buf = Bytes.create Page.size in
  read_into t n buf;
  buf

(* -- writes --------------------------------------------------------------- *)

let write_mem m n page =
  if n = m.used then begin
    if m.used = Array.length m.arr then begin
      let bigger = Array.make (2 * Array.length m.arr) Bytes.empty in
      Array.blit m.arr 0 bigger 0 m.used;
      m.arr <- bigger
    end;
    m.arr.(n) <- Bytes.copy page;
    m.used <- m.used + 1
  end
  else Bytes.blit page 0 m.arr.(n) 0 Page.size

(* Write one page, interpreting an armed disk.write fault. The page buffer
   is stamped in place (the trailer belongs to this layer). *)
let write_page f n page =
  stamp page;
  (match Failpoint.hit fp_write with
  | Some act -> faulted_write fp_write f.fd page (n * Page.size) act
  | None -> pwrite f.fd page (n * Page.size));
  if n = f.pages then f.pages <- f.pages + 1

let write_unlocked t n page =
  check_range t n ~extend:true;
  assert (Bytes.length page = Page.size);
  Stats.incr_pages_written ();
  Ode_util.Histogram.time h_page_write @@ fun () ->
  match t.backend with
  | File f -> write_page f n page
  | Memory m -> write_mem m n page

let write t n page = Mutex.protect t.mu (fun () -> write_unlocked t n page)

let write_batch t batch =
  Mutex.protect t.mu @@ fun () ->
  (* one histogram sample per physical batch, like the single-page path *)
  Ode_util.Histogram.time h_page_write @@ fun () ->
  Ode_util.Trace.with_span ~cat:"disk" "disk.write_batch" @@ fun () ->
  match (t.backend, batch) with
  | _, [] -> ()
  | Memory m, _ ->
      List.iter
        (fun (n, page) ->
          Stats.incr_pages_written ();
          write_mem m n page)
        batch
  | File f, _ ->
      List.iter
        (fun (n, page) ->
          check_range t n ~extend:false;
          assert (Bytes.length page = Page.size))
        batch;
      List.iter (fun (_, page) -> stamp page) batch;
      (* 1. Make the whole batch durable in the journal. *)
      let image = encode_journal batch in
      let jfd = Unix.openfile f.journal [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
      Fun.protect
        ~finally:(fun () -> Unix.close jfd)
        (fun () ->
          (match Failpoint.hit fp_journal_write with
          | Some act -> faulted_write fp_journal_write jfd image 0 act
          | None -> pwrite ~len:(Bytes.length image) jfd image 0);
          Unix.fsync jfd);
      (* 2. Apply in place. A crash here is repaired from the journal. *)
      List.iter
        (fun (n, page) ->
          Stats.incr_pages_written ();
          match Failpoint.hit fp_write with
          | Some act -> faulted_write fp_write f.fd page (n * Page.size) act
          | None -> pwrite f.fd page (n * Page.size))
        batch;
      (match Failpoint.hit fp_sync with
      | Some Failpoint.Crash_site -> Failpoint.crash fp_sync
      | Some Failpoint.Skip_effect -> ()
      | Some _ | None -> Unix.fsync f.fd);
      (* 3. Only now is the journal obsolete. *)
      (match Failpoint.hit fp_journal_clear with
      | Some Failpoint.Crash_site -> Failpoint.crash fp_journal_clear
      | Some Failpoint.Skip_effect -> ()
      | Some _ | None -> ( try Unix.unlink f.journal with Unix.Unix_error _ -> ()))

let allocate t =
  Mutex.protect t.mu @@ fun () ->
  let n = page_count t in
  let zero = Bytes.make Page.size '\000' in
  write_unlocked t n zero;
  n

let sync t =
  Mutex.protect t.mu @@ fun () ->
  match t.backend with
  | File f -> (
      match Failpoint.hit fp_sync with
      | Some Failpoint.Crash_site -> Failpoint.crash fp_sync
      | Some Failpoint.Skip_effect -> ()
      | Some _ | None -> Unix.fsync f.fd)
  | Memory _ -> ()

let truncate t n =
  Mutex.protect t.mu @@ fun () ->
  match t.backend with
  | File f ->
      Unix.ftruncate f.fd (n * Page.size);
      f.pages <- min f.pages n
  | Memory m -> m.used <- min m.used n

let close t = match t.backend with File f -> Unix.close f.fd | Memory _ -> ()
