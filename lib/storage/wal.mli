(** Write-ahead log of logical redo records.

    The engine runs deferred-apply transactions: a transaction's effects are
    buffered, encoded as logical records, appended here and fsynced at
    commit, and only then applied to the heap and indexes. Recovery replays
    the committed suffix after the last checkpoint; logical records are
    idempotent so replay over partially applied state is safe.

    On-disk format: a stream of frames [u32 len][i64 fnv64][body]. A torn or
    corrupt tail terminates replay silently (those records were never
    acknowledged as committed unless a later intact frame exists, which the
    append-then-sync protocol rules out).

    {2 Commit LSNs}

    Every [Commit] record is assigned the next log sequence number; LSNs
    number the database's committed transactions from the beginning of time,
    surviving checkpoints and truncations. The physical log holds only the
    records after {!base_lsn}; a sidecar file ([<log>.lsn], written and
    fsynced before each truncation) persists that base, and [Checkpoint]
    records carry the exact LSN at checkpoint time so replay reconciles a
    stale sidecar (a truncation that crashed or was lost) back to the true
    count. Replication ships synced batches tagged with their LSN range
    (see {!set_on_sync}) and resumes a replica from {!tail_from}. *)

type record =
  | Begin of int                          (** txn id *)
  | Commit of int * int * int
      (** txn, originating trace id (0 = untraced), commit timestamp. The
          commit timestamp is the commit's own LSN, embedded so recovery
          and replication standbys reconstruct the MVCC version order
          exactly as the primary assigned it; 0 when decoding pre-MVCC
          logs (replayers fall back to their running LSN count, which is
          the same number). The trace id lets a standby's replay spans
          carry the client-assigned id of the request that committed on
          the primary. Optional suffixes: decode reads their absence
          as 0. *)
  | Put of int * string * string          (** txn, key, payload *)
  | Delete of int * string                (** txn, key *)
  | Checkpoint of int
      (** all prior effects are on disk; carries the durable LSN at the time
          the checkpoint was taken *)

type t

val open_file : string -> t
(** Open or create a log file; the write cursor is positioned after the last
    intact frame. Reads the [.lsn] sidecar and replays the retained records
    to recover the exact commit LSN. *)

val in_memory : unit -> t

val append : t -> record -> unit
(** Buffered append; durable only after {!sync}. A [Commit] record marks its
    transaction {e pending}: committed in memory, not yet acknowledged as
    durable. It is also assigned the next LSN ({!last_lsn}). *)

val sync : t -> unit
(** Flush buffered frames and fsync — the durability barrier. One sync
    acknowledges {e every} pending commit at once (group commit): the batch
    size lands in the [wal.group_size] histogram and the [wal_sync_saved]
    counter gains [batch - 1], the per-commit fsyncs the batch avoided.
    Advances {!durable_lsn} and, when a batch was written, hands it to the
    {!set_on_sync} observer. *)

val pending_commits : t -> int
(** Commits appended since the last {!sync}: transactions whose effects are
    applied but whose durability is still deferred. 0 right after a sync. *)

val last_lsn : t -> int
(** LSN of the most recently appended commit (applied, possibly pending). *)

val durable_lsn : t -> int
(** LSN covered by the last completed {!sync}. *)

val base_lsn : t -> int
(** LSN at the physical start of the log: commits up to it were
    checkpointed into the data files and truncated away. *)

val set_on_sync : t -> (data:string -> from_lsn:int -> to_lsn:int -> unit) option -> unit
(** Install a post-fsync observer: called from {!sync} with the raw frames
    just made durable and the commit-LSN range they advance, [(from_lsn,
    to_lsn]]. Called only after the barrier held — never for data that could
    still be lost — and never with an empty batch. The callback runs inside
    commit paths: it must only enqueue, not block. *)

val tail_from : t -> lsn:int -> string option
(** The raw frames of everything after the [lsn]-th commit — what a replica
    that has applied up to [lsn] still needs. [None] when the log no longer
    reaches back that far (checkpointed away) or [lsn] exceeds
    {!durable_lsn}: ship a snapshot instead. *)

val replay : t -> (record -> unit) -> unit
(** Feed every intact record from the start of the log, in order. *)

val reset : t -> unit
(** Truncate the log to empty (used after a checkpoint). Persists
    {!durable_lsn} to the sidecar {e before} truncating, so the LSN count
    survives the records' disposal. *)

val size_bytes : t -> int

val close : t -> unit

(**/**)

val encode_record : record -> string
val decode_record : string -> record
val scan : string -> (record -> unit) option -> int
(** Exposed for the replication layer: iterate the intact frames of a raw
    batch (as delivered to the {!set_on_sync} observer), returning the byte
    offset past the last intact frame. *)

val frame : string -> string
(** Frame one encoded record body (length + checksum + body). *)
