(** Write-ahead log of logical redo records.

    The engine runs deferred-apply transactions: a transaction's effects are
    buffered, encoded as logical records, appended here and fsynced at
    commit, and only then applied to the heap and indexes. Recovery replays
    the committed suffix after the last checkpoint; logical records are
    idempotent so replay over partially applied state is safe.

    On-disk format: a stream of frames [u32 len][i64 fnv64][body]. A torn or
    corrupt tail terminates replay silently (those records were never
    acknowledged as committed unless a later intact frame exists, which the
    append-then-sync protocol rules out). *)

type record =
  | Begin of int                          (** txn id *)
  | Commit of int
  | Put of int * string * string          (** txn, key, payload *)
  | Delete of int * string                (** txn, key *)
  | Checkpoint                            (** all prior effects are on disk *)

type t

val open_file : string -> t
(** Open or create a log file; the write cursor is positioned after the last
    intact frame. *)

val in_memory : unit -> t

val append : t -> record -> unit
(** Buffered append; durable only after {!sync}. *)

val sync : t -> unit
(** Flush buffered frames and fsync. *)

val replay : t -> (record -> unit) -> unit
(** Feed every intact record from the start of the log, in order. *)

val reset : t -> unit
(** Truncate the log to empty (used after a checkpoint). *)

val size_bytes : t -> int

val close : t -> unit

(**/**)

val encode_record : record -> string
val decode_record : string -> record
