(** Write-ahead log of logical redo records.

    The engine runs deferred-apply transactions: a transaction's effects are
    buffered, encoded as logical records, appended here and fsynced at
    commit, and only then applied to the heap and indexes. Recovery replays
    the committed suffix after the last checkpoint; logical records are
    idempotent so replay over partially applied state is safe.

    On-disk format: a stream of frames [u32 len][i64 fnv64][body]. A torn or
    corrupt tail terminates replay silently (those records were never
    acknowledged as committed unless a later intact frame exists, which the
    append-then-sync protocol rules out). *)

type record =
  | Begin of int                          (** txn id *)
  | Commit of int
  | Put of int * string * string          (** txn, key, payload *)
  | Delete of int * string                (** txn, key *)
  | Checkpoint                            (** all prior effects are on disk *)

type t

val open_file : string -> t
(** Open or create a log file; the write cursor is positioned after the last
    intact frame. *)

val in_memory : unit -> t

val append : t -> record -> unit
(** Buffered append; durable only after {!sync}. A [Commit] record marks its
    transaction {e pending}: committed in memory, not yet acknowledged as
    durable. *)

val sync : t -> unit
(** Flush buffered frames and fsync — the durability barrier. One sync
    acknowledges {e every} pending commit at once (group commit): the batch
    size lands in the [wal.group_size] histogram and the [wal_sync_saved]
    counter gains [batch - 1], the per-commit fsyncs the batch avoided. *)

val pending_commits : t -> int
(** Commits appended since the last {!sync}: transactions whose effects are
    applied but whose durability is still deferred. 0 right after a sync. *)

val replay : t -> (record -> unit) -> unit
(** Feed every intact record from the start of the log, in order. *)

val reset : t -> unit
(** Truncate the log to empty (used after a checkpoint). *)

val size_bytes : t -> int

val close : t -> unit

(**/**)

val encode_record : record -> string
val decode_record : string -> record
