module Codec = Ode_util.Codec
module Stats = Ode_util.Stats
module Failpoint = Ode_util.Failpoint

(* wal.sync covers the append of the pending batch (short/flipped/skipped
   batches model torn log tails and lying disks); wal.fsync the durability
   barrier itself; wal.reset the post-checkpoint truncation; wal.lsn the
   window between persisting the base-LSN sidecar and the truncation it
   licenses (a crash there leaves both the sidecar and the old records —
   recovery must reconcile them). *)
let fp_sync = Failpoint.site "wal.sync"
let fp_fsync = Failpoint.site "wal.fsync"
let fp_reset = Failpoint.site "wal.reset"
let fp_lsn = Failpoint.site "wal.lsn"

type record =
  | Begin of int
  | Commit of int * int * int (* xid, originating trace id (0 = untraced),
                                 commit timestamp (the commit's own LSN;
                                 0 in logs written before MVCC) *)
  | Put of int * string * string
  | Delete of int * string
  | Checkpoint of int

type file_sink = { fd : Unix.file_descr; mutable wpos : int }

type sink =
  | File of file_sink
  | Memory of Buffer.t

(* [pending_commits] counts Commit records appended since the last [sync]:
   the transactions whose durability is still deferred. Group commit rides on
   it — one sync acknowledges them all — and the accounting below turns each
   sync into a [wal.group_size] observation plus the fsyncs the batch saved.

   Commit LSNs: every [Commit] record appended is assigned the next LSN
   ([last_lsn]); [durable_lsn] trails it until a sync's barrier holds. The
   physical log starts at [base_lsn] (everything up to it was checkpointed
   away); the [lsn_path] sidecar persists that base across truncations, and
   [Checkpoint] records carry the exact LSN so replay reconciles a stale
   sidecar (lost or crashed truncation) back to the true count. *)
type t = {
  sink : sink;
  pending : Buffer.t;
  mutable pending_commits : int;
  mutable last_lsn : int;
  mutable durable_lsn : int;
  mutable base_lsn : int;
  lsn_path : string option;
  mutable on_sync : (data:string -> from_lsn:int -> to_lsn:int -> unit) option;
}

(* -- record codec -------------------------------------------------------- *)

let encode_record r =
  let b = Buffer.create 64 in
  (match r with
  | Begin tx ->
      Codec.put_u8 b 1;
      Codec.put_int b tx
  | Commit (tx, trace, cts) ->
      Codec.put_u8 b 2;
      Codec.put_int b tx;
      (* The optional-suffix discipline: trace and commit-ts ride only when
         the commit-ts is present (it always is for records written by this
         version), so a standby re-logging the same records produces
         byte-identical files (E21 diffs them) and old logs still decode. *)
      if cts <> 0 || trace <> 0 then begin
        Codec.put_int b trace;
        if cts <> 0 then Codec.put_int b cts
      end
  | Put (tx, k, v) ->
      Codec.put_u8 b 3;
      Codec.put_int b tx;
      Codec.put_string b k;
      Codec.put_string b v
  | Delete (tx, k) ->
      Codec.put_u8 b 4;
      Codec.put_int b tx;
      Codec.put_string b k
  | Checkpoint lsn ->
      Codec.put_u8 b 5;
      Codec.put_int b lsn);
  Buffer.contents b

let decode_record s =
  let c = Codec.cursor s in
  match Codec.get_u8 c with
  | 1 -> Begin (Codec.get_int c)
  | 2 ->
      let tx = Codec.get_int c in
      (* Layered compatibility: pre-tracing logs stop after the xid; pre-MVCC
         logs stop after the trace id. Absent fields read as 0. *)
      let trace = if Codec.at_end c then 0 else Codec.get_int c in
      let cts = if Codec.at_end c then 0 else Codec.get_int c in
      Commit (tx, trace, cts)
  | 3 ->
      let tx = Codec.get_int c in
      let k = Codec.get_string c in
      let v = Codec.get_string c in
      Put (tx, k, v)
  | 4 ->
      let tx = Codec.get_int c in
      Delete (tx, Codec.get_string c)
  | 5 ->
      (* Pre-LSN logs wrote a bare checkpoint tag; read it as LSN 0. *)
      Checkpoint (if Codec.at_end c then 0 else Codec.get_int c)
  | n -> raise (Codec.Corrupt (Printf.sprintf "wal: bad tag %d" n))

(* -- framing ------------------------------------------------------------- *)

let frame body =
  let b = Buffer.create (String.length body + 12) in
  Codec.put_u32 b (String.length body);
  Codec.put_i64 b (Codec.fnv64 body);
  Codec.put_raw b body;
  Buffer.contents b

(* Scan intact frames from [contents], calling [f] on each decoded record;
   returns the byte offset just past the last intact frame. *)
let scan contents f =
  let len = String.length contents in
  let rec go off =
    if off + 12 > len then off
    else
      let c = Codec.cursor ~pos:off contents in
      let blen = Codec.get_u32 c in
      if off + 12 + blen > len then off
      else
        let sum = Codec.get_i64 c in
        let body = Codec.get_raw c blen in
        if Codec.fnv64 body <> sum then off
        else begin
          (match f with Some fn -> fn (decode_record body) | None -> ());
          go (off + 12 + blen)
        end
  in
  go 0

(* The LSN a log's records advance to, starting from [base]: Commits count
   up; a Checkpoint record restores the exact value it recorded, which
   reconciles replay over records a lost truncation left behind (they were
   already counted before the checkpoint was taken). *)
let lsn_after_scan ~base contents =
  let lsn = ref base in
  ignore
    (scan contents
       (Some (function Commit _ -> incr lsn | Checkpoint l -> lsn := l | _ -> ())));
  !lsn

(* -- construction --------------------------------------------------------- *)

let rec retry f =
  match f () with
  | v -> v
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) ->
      Stats.incr_io_retries ();
      retry f

let read_all fd =
  let len = (Unix.fstat fd).Unix.st_size in
  let buf = Bytes.create len in
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  let rec fill pos =
    if pos < len then
      let k = retry (fun () -> Unix.read fd buf pos (len - pos)) in
      if k = 0 then pos else fill (pos + k)
    else pos
  in
  let got = fill 0 in
  Bytes.sub_string buf 0 got

(* The base-LSN sidecar: a tiny text file beside the log holding the LSN of
   the last commit the latest truncation discarded. Written and fsynced
   *before* the truncation (see [reset]), so a crash between the two leaves
   the sidecar ahead of the log — which the Checkpoint record still in the
   log corrects during [lsn_after_scan]. *)
let read_base_lsn path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> ( match int_of_string_opt (String.trim s) with Some n -> n | None -> 0)
  | exception Sys_error _ -> 0

let write_base_lsn path lsn =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let s = string_of_int lsn ^ "\n" in
  let rec go pos =
    if pos < String.length s then
      go (pos + retry (fun () -> Unix.write_substring fd s pos (String.length s - pos)))
  in
  go 0;
  Unix.fsync fd;
  Unix.close fd;
  Unix.rename tmp path

let open_file path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let contents = read_all fd in
  let intact = scan contents None in
  (* Drop any torn tail so future appends start at a clean boundary. *)
  if intact < String.length contents then begin
    Stats.add_wal_torn_bytes (String.length contents - intact);
    Unix.ftruncate fd intact
  end;
  ignore (Unix.lseek fd intact Unix.SEEK_SET);
  let lsn_path = path ^ ".lsn" in
  let base = read_base_lsn lsn_path in
  let lsn = lsn_after_scan ~base (String.sub contents 0 intact) in
  {
    sink = File { fd; wpos = intact };
    pending = Buffer.create 4096;
    pending_commits = 0;
    last_lsn = lsn;
    durable_lsn = lsn;
    base_lsn = base;
    lsn_path = Some lsn_path;
    on_sync = None;
  }

let in_memory () =
  {
    sink = Memory (Buffer.create 4096);
    pending = Buffer.create 4096;
    pending_commits = 0;
    last_lsn = 0;
    durable_lsn = 0;
    base_lsn = 0;
    lsn_path = None;
    on_sync = None;
  }

let append t r =
  Ode_util.Stats.incr_wal_appends ();
  Ode_util.Trace.instant ~cat:"wal" "wal.append";
  (match r with
  | Commit _ ->
      t.pending_commits <- t.pending_commits + 1;
      t.last_lsn <- t.last_lsn + 1
  | _ -> ());
  Buffer.add_string t.pending (frame (encode_record r))

let pending_commits t = t.pending_commits
let last_lsn t = t.last_lsn
let durable_lsn t = t.durable_lsn
let base_lsn t = t.base_lsn
let set_on_sync t f = t.on_sync <- f

let write_fully fd bytes pos len =
  let rec go pos len =
    if len > 0 then begin
      let k = retry (fun () -> Unix.write fd bytes pos len) in
      if k = 0 then failwith "wal: write returned 0 bytes (device full?)";
      go (pos + k) (len - k)
    end
  in
  go pos len

(* Append [bytes] at the write cursor, interpreting an armed wal.sync fault:
   a short or bit-flipped batch models a torn log tail (then dies); a skipped
   batch models a lying disk that acks without persisting (and lives on). *)
let faulted_append f bytes =
  let len = Bytes.length bytes in
  ignore (Unix.lseek f.fd f.wpos Unix.SEEK_SET);
  match Failpoint.hit fp_sync with
  | None ->
      write_fully f.fd bytes 0 len;
      f.wpos <- f.wpos + len
  | Some Failpoint.Crash_site -> Failpoint.crash fp_sync
  | Some (Failpoint.Short_effect frac) ->
      let keep = max 0 (min (len - 1) (int_of_float (frac *. float_of_int len))) in
      if keep > 0 then write_fully f.fd bytes 0 keep;
      Failpoint.crash fp_sync
  | Some (Failpoint.Flip_bit bit) ->
      let byte = bit / 8 mod len in
      Bytes.set bytes byte
        (Char.chr (Char.code (Bytes.get bytes byte) lxor (1 lsl (bit mod 8))));
      write_fully f.fd bytes 0 len;
      Failpoint.crash fp_sync
  | Some Failpoint.Skip_effect -> f.wpos <- f.wpos + len

let h_sync = Ode_util.Histogram.create "wal.sync"

(* Commits per durability barrier: 1 under eager (full) durability, the
   batch size under group commit. Counts, not nanoseconds. *)
let h_group = Ode_util.Histogram.create "wal.group_size"

let sync t =
  Stats.incr_wal_syncs ();
  Ode_util.Histogram.time h_sync (fun () ->
      Ode_util.Trace.with_span ~cat:"wal" "wal.sync" (fun () ->
          let data = Buffer.contents t.pending in
          Buffer.clear t.pending;
          (match t.sink with
          | Memory b -> Buffer.add_string b data
          | File f -> (
              if String.length data > 0 then faulted_append f (Bytes.of_string data);
              match Failpoint.hit fp_fsync with
              | Some Failpoint.Skip_effect -> ()
              | Some Failpoint.Crash_site -> Failpoint.crash fp_fsync
              | Some _ -> Failpoint.crash fp_fsync
              | None -> Unix.fsync f.fd));
          (* Only after the barrier held: the batch is durable, every pending
             commit is acknowledged by this one fsync. *)
          if t.pending_commits > 0 then begin
            Ode_util.Histogram.observe h_group t.pending_commits;
            Stats.add_wal_sync_saved (t.pending_commits - 1);
            t.pending_commits <- 0
          end;
          let from_lsn = t.durable_lsn in
          t.durable_lsn <- t.last_lsn;
          (* Ship the batch only now that it is durable here: a replica can
             never hold records its primary could still lose. *)
          match t.on_sync with
          | Some notify when String.length data > 0 ->
              notify ~data ~from_lsn ~to_lsn:t.durable_lsn
          | _ -> ()))

let contents t =
  match t.sink with
  | Memory b -> Buffer.contents b
  | File f ->
      ignore f.wpos;
      read_all f.fd

let replay t f = ignore (scan (contents t) (Some f))

(* The raw frames of everything after [lsn]: what a replica that has applied
   up to [lsn] still needs. [None] when the log no longer reaches back that
   far (checkpointed away — ship a snapshot) or the replica claims commits we
   never made durable (divergence — also a snapshot). *)
let tail_from t ~lsn =
  if lsn < t.base_lsn || lsn > t.durable_lsn then None
  else begin
    let contents = contents t in
    let len = String.length contents in
    (* Count commits from the sidecar base. If a truncation was lost, the
       physical log still starts before the last checkpoint and this count
       transiently overshoots — detected when a Checkpoint record disagrees
       with the running count. Any cut found under the bad count is
       discarded; the Checkpoint record restores exactness from there on. *)
    let cut = ref (if lsn = t.base_lsn then Some 0 else None) in
    let cur = ref t.base_lsn in
    let rec go off =
      if off + 12 > len then ()
      else
        let c = Codec.cursor ~pos:off contents in
        let blen = Codec.get_u32 c in
        if off + 12 + blen > len then ()
        else begin
          let sum = Codec.get_i64 c in
          let body = Codec.get_raw c blen in
          if Codec.fnv64 body <> sum then ()
          else begin
            (match decode_record body with
            | Commit _ -> incr cur
            | Checkpoint l ->
                if l <> !cur then begin
                  cut := None;
                  cur := l
                end
            | _ -> ());
            let after = off + 12 + blen in
            if !cut = None && !cur = lsn then cut := Some after;
            go after
          end
        end
    in
    go 0;
    match !cut with
    | Some off -> Some (String.sub contents off (len - off))
    | None -> None
  end

let reset t =
  Buffer.clear t.pending;
  t.pending_commits <- 0;
  match t.sink with
  | Memory b ->
      Buffer.clear b;
      t.base_lsn <- t.durable_lsn
  | File f -> (
      match Failpoint.hit fp_reset with
      | Some Failpoint.Crash_site -> Failpoint.crash fp_reset
      | Some Failpoint.Skip_effect ->
          (* Lost truncation: the old records stay and are replayed over
             checkpointed state on recovery, which must be idempotent. *)
          ()
      | Some _ | None -> (
          (* Persist the new base *before* discarding the records that prove
             it: a crash in between leaves a sidecar ahead of the log, which
             the Checkpoint record still in the log reconciles on reopen. The
             reverse order could truncate away the proof and under-count every
             LSN thereafter. *)
          (match t.lsn_path with
          | Some p -> write_base_lsn p t.durable_lsn
          | None -> ());
          match Failpoint.hit fp_lsn with
          | Some Failpoint.Crash_site -> Failpoint.crash fp_lsn
          | Some Failpoint.Skip_effect ->
              (* Treated as a lost truncation (sidecar written, records kept):
                 replay reconciles. Truncating *without* the sidecar write is
                 the one order that loses the count, so it is not modeled. *)
              ()
          | Some _ | None ->
              Unix.ftruncate f.fd 0;
              f.wpos <- 0;
              Unix.fsync f.fd;
              t.base_lsn <- t.durable_lsn))

let size_bytes t =
  (match t.sink with Memory b -> Buffer.length b | File f -> f.wpos)
  + Buffer.length t.pending

let close t = match t.sink with Memory _ -> () | File f -> Unix.close f.fd
