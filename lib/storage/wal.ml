module Codec = Ode_util.Codec
module Stats = Ode_util.Stats
module Failpoint = Ode_util.Failpoint

(* wal.sync covers the append of the pending batch (short/flipped/skipped
   batches model torn log tails and lying disks); wal.fsync the durability
   barrier itself; wal.reset the post-checkpoint truncation. *)
let fp_sync = Failpoint.site "wal.sync"
let fp_fsync = Failpoint.site "wal.fsync"
let fp_reset = Failpoint.site "wal.reset"

type record =
  | Begin of int
  | Commit of int
  | Put of int * string * string
  | Delete of int * string
  | Checkpoint

type file_sink = { fd : Unix.file_descr; mutable wpos : int }

type sink =
  | File of file_sink
  | Memory of Buffer.t

(* [pending_commits] counts Commit records appended since the last [sync]:
   the transactions whose durability is still deferred. Group commit rides on
   it — one sync acknowledges them all — and the accounting below turns each
   sync into a [wal.group_size] observation plus the fsyncs the batch saved. *)
type t = { sink : sink; pending : Buffer.t; mutable pending_commits : int }

(* -- record codec -------------------------------------------------------- *)

let encode_record r =
  let b = Buffer.create 64 in
  (match r with
  | Begin tx ->
      Codec.put_u8 b 1;
      Codec.put_int b tx
  | Commit tx ->
      Codec.put_u8 b 2;
      Codec.put_int b tx
  | Put (tx, k, v) ->
      Codec.put_u8 b 3;
      Codec.put_int b tx;
      Codec.put_string b k;
      Codec.put_string b v
  | Delete (tx, k) ->
      Codec.put_u8 b 4;
      Codec.put_int b tx;
      Codec.put_string b k
  | Checkpoint -> Codec.put_u8 b 5);
  Buffer.contents b

let decode_record s =
  let c = Codec.cursor s in
  match Codec.get_u8 c with
  | 1 -> Begin (Codec.get_int c)
  | 2 -> Commit (Codec.get_int c)
  | 3 ->
      let tx = Codec.get_int c in
      let k = Codec.get_string c in
      let v = Codec.get_string c in
      Put (tx, k, v)
  | 4 ->
      let tx = Codec.get_int c in
      Delete (tx, Codec.get_string c)
  | 5 -> Checkpoint
  | n -> raise (Codec.Corrupt (Printf.sprintf "wal: bad tag %d" n))

(* -- framing ------------------------------------------------------------- *)

let frame body =
  let b = Buffer.create (String.length body + 12) in
  Codec.put_u32 b (String.length body);
  Codec.put_i64 b (Codec.fnv64 body);
  Codec.put_raw b body;
  Buffer.contents b

(* Scan intact frames from [contents], calling [f] on each decoded record;
   returns the byte offset just past the last intact frame. *)
let scan contents f =
  let len = String.length contents in
  let rec go off =
    if off + 12 > len then off
    else
      let c = Codec.cursor ~pos:off contents in
      let blen = Codec.get_u32 c in
      if off + 12 + blen > len then off
      else
        let sum = Codec.get_i64 c in
        let body = Codec.get_raw c blen in
        if Codec.fnv64 body <> sum then off
        else begin
          (match f with Some fn -> fn (decode_record body) | None -> ());
          go (off + 12 + blen)
        end
  in
  go 0

(* -- construction --------------------------------------------------------- *)

let rec retry f =
  match f () with
  | v -> v
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) ->
      Stats.incr_io_retries ();
      retry f

let read_all fd =
  let len = (Unix.fstat fd).Unix.st_size in
  let buf = Bytes.create len in
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  let rec fill pos =
    if pos < len then
      let k = retry (fun () -> Unix.read fd buf pos (len - pos)) in
      if k = 0 then pos else fill (pos + k)
    else pos
  in
  let got = fill 0 in
  Bytes.sub_string buf 0 got

let open_file path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let contents = read_all fd in
  let intact = scan contents None in
  (* Drop any torn tail so future appends start at a clean boundary. *)
  if intact < String.length contents then begin
    Stats.add_wal_torn_bytes (String.length contents - intact);
    Unix.ftruncate fd intact
  end;
  ignore (Unix.lseek fd intact Unix.SEEK_SET);
  { sink = File { fd; wpos = intact }; pending = Buffer.create 4096; pending_commits = 0 }

let in_memory () =
  { sink = Memory (Buffer.create 4096); pending = Buffer.create 4096; pending_commits = 0 }

let append t r =
  Ode_util.Stats.incr_wal_appends ();
  Ode_util.Trace.instant ~cat:"wal" "wal.append";
  (match r with Commit _ -> t.pending_commits <- t.pending_commits + 1 | _ -> ());
  Buffer.add_string t.pending (frame (encode_record r))

let pending_commits t = t.pending_commits

let write_fully fd bytes pos len =
  let rec go pos len =
    if len > 0 then begin
      let k = retry (fun () -> Unix.write fd bytes pos len) in
      if k = 0 then failwith "wal: write returned 0 bytes (device full?)";
      go (pos + k) (len - k)
    end
  in
  go pos len

(* Append [bytes] at the write cursor, interpreting an armed wal.sync fault:
   a short or bit-flipped batch models a torn log tail (then dies); a skipped
   batch models a lying disk that acks without persisting (and lives on). *)
let faulted_append f bytes =
  let len = Bytes.length bytes in
  ignore (Unix.lseek f.fd f.wpos Unix.SEEK_SET);
  match Failpoint.hit fp_sync with
  | None ->
      write_fully f.fd bytes 0 len;
      f.wpos <- f.wpos + len
  | Some Failpoint.Crash_site -> Failpoint.crash fp_sync
  | Some (Failpoint.Short_effect frac) ->
      let keep = max 0 (min (len - 1) (int_of_float (frac *. float_of_int len))) in
      if keep > 0 then write_fully f.fd bytes 0 keep;
      Failpoint.crash fp_sync
  | Some (Failpoint.Flip_bit bit) ->
      let byte = bit / 8 mod len in
      Bytes.set bytes byte
        (Char.chr (Char.code (Bytes.get bytes byte) lxor (1 lsl (bit mod 8))));
      write_fully f.fd bytes 0 len;
      Failpoint.crash fp_sync
  | Some Failpoint.Skip_effect -> f.wpos <- f.wpos + len

let h_sync = Ode_util.Histogram.create "wal.sync"

(* Commits per durability barrier: 1 under eager (full) durability, the
   batch size under group commit. Counts, not nanoseconds. *)
let h_group = Ode_util.Histogram.create "wal.group_size"

let sync t =
  Stats.incr_wal_syncs ();
  Ode_util.Histogram.time h_sync (fun () ->
      Ode_util.Trace.with_span ~cat:"wal" "wal.sync" (fun () ->
          let data = Buffer.contents t.pending in
          Buffer.clear t.pending;
          (match t.sink with
          | Memory b -> Buffer.add_string b data
          | File f -> (
              if String.length data > 0 then faulted_append f (Bytes.of_string data);
              match Failpoint.hit fp_fsync with
              | Some Failpoint.Skip_effect -> ()
              | Some Failpoint.Crash_site -> Failpoint.crash fp_fsync
              | Some _ -> Failpoint.crash fp_fsync
              | None -> Unix.fsync f.fd));
          (* Only after the barrier held: the batch is durable, every pending
             commit is acknowledged by this one fsync. *)
          if t.pending_commits > 0 then begin
            Ode_util.Histogram.observe h_group t.pending_commits;
            Stats.add_wal_sync_saved (t.pending_commits - 1);
            t.pending_commits <- 0
          end))

let contents t =
  match t.sink with
  | Memory b -> Buffer.contents b
  | File f ->
      ignore f.wpos;
      read_all f.fd

let replay t f = ignore (scan (contents t) (Some f))

let reset t =
  Buffer.clear t.pending;
  t.pending_commits <- 0;
  match t.sink with
  | Memory b -> Buffer.clear b
  | File f -> (
      match Failpoint.hit fp_reset with
      | Some Failpoint.Crash_site -> Failpoint.crash fp_reset
      | Some Failpoint.Skip_effect ->
          (* Lost truncation: the old records stay and are replayed over
             checkpointed state on recovery, which must be idempotent. *)
          ()
      | Some _ | None ->
          Unix.ftruncate f.fd 0;
          f.wpos <- 0;
          Unix.fsync f.fd)

let size_bytes t =
  (match t.sink with Memory b -> Buffer.length b | File f -> f.wpos)
  + Buffer.length t.pending

let close t = match t.sink with Memory _ -> () | File f -> Unix.close f.fd
