(** Page-granular storage backends.

    Two implementations: a Unix file (random access, fsync-able) and an
    in-memory store (for tests and throwaway databases). Pages are numbered
    from 0 and are always {!Page.size} bytes. *)

type t

val open_file : string -> t
(** [open_file path] opens (creating if absent) a page file. *)

val in_memory : unit -> t
(** A volatile backend backed by a growable array. *)

val is_memory : t -> bool

val page_count : t -> int
(** Number of allocated pages. *)

val read : t -> int -> bytes
(** [read t n] returns a fresh buffer with page [n]'s contents. Raises
    [Invalid_argument] when [n] is out of range. *)

val read_into : t -> int -> bytes -> unit
(** Like {!read} but fills the caller's buffer. *)

val write : t -> int -> bytes -> unit
(** [write t n page] persists [page] at index [n]. [n] may be at most
    [page_count t] (writing at [page_count] extends the file). *)

val allocate : t -> int
(** Extend by one zeroed page, returning its index. *)

val sync : t -> unit
(** Flush OS buffers (no-op in memory). *)

val truncate : t -> int -> unit
(** [truncate t n] drops pages at index [n] and beyond. *)

val close : t -> unit
