(** Page-granular storage backends.

    Two implementations: a Unix file (random access, fsync-able) and an
    in-memory store (for tests and throwaway databases). Pages are numbered
    from 0 and are always {!Page.size} bytes.

    The file backend stamps an FNV-1a checksum into each page's trailer on
    write and verifies it on read ({!Ode_util.Codec.Corrupt} on mismatch),
    and routes {!write_batch} through a double-write journal
    ([<path>.journal]) so a crash mid-flush never leaves a mix of old and
    new pages. *)

type t

val open_file : string -> t
(** [open_file path] opens (creating if absent) a page file. Replays or
    discards a leftover double-write journal, then drops any torn trailing
    pages (sub-page tails and trailing checksum failures). *)

val in_memory : unit -> t
(** A volatile backend backed by a growable array. *)

val is_memory : t -> bool

val page_count : t -> int
(** Number of allocated pages. *)

val read : t -> int -> bytes
(** [read t n] returns a fresh buffer with page [n]'s contents. Raises
    [Invalid_argument] when [n] is out of range. *)

val read_into : t -> int -> bytes -> unit
(** Like {!read} but fills the caller's buffer. *)

val write : t -> int -> bytes -> unit
(** [write t n page] persists [page] at index [n]. [n] may be at most
    [page_count t] (writing at [page_count] extends the file). On the file
    backend the page's checksum trailer is stamped in place. *)

val write_batch : t -> (int * bytes) list -> unit
(** Crash-atomically persist a set of existing pages and fsync: on the file
    backend the batch goes to the double-write journal first, so after a
    crash either every page or no page of the batch is visible. Pages must
    already be allocated. *)

val allocate : t -> int
(** Extend by one zeroed page, returning its index. *)

val sync : t -> unit
(** Flush OS buffers (no-op in memory). *)

val truncate : t -> int -> unit
(** [truncate t n] drops pages at index [n] and beyond. *)

val close : t -> unit
