module Codec = Ode_util.Codec
module Failpoint = Ode_util.Failpoint

let fp_flush = Failpoint.site "heap.flush"

type rid = { page : int; slot : int }

let pp_rid ppf r = Format.fprintf ppf "%d.%d" r.page r.slot
let rid_equal a b = a.page = b.page && a.slot = b.slot

let encode_rid b r =
  Codec.put_u32 b r.page;
  Codec.put_u16 b r.slot

let decode_rid c =
  let page = Codec.get_u32 c in
  let slot = Codec.get_u16 c in
  { page; slot }

(* Record tags. Inline records carry the payload directly; records larger
   than a page become a head that points at a chain of chunk records. *)
let tag_inline = 1
let tag_head = 2
let tag_chunk = 3
let chunk_capacity = Page.max_record - 16
let magic = "ODEHEAP1"

(* Free-space map: pages bucketed by 256-byte free classes so insert can find
   a fitting page in O(1) without scanning every page. *)
module Fsm = struct
  let bucket_width = 256
  let nbuckets = (Page.size / bucket_width) + 1

  type t = {
    buckets : (int, unit) Hashtbl.t array;
    of_page : (int, int) Hashtbl.t; (* page -> bucket *)
  }

  let create () =
    { buckets = Array.init nbuckets (fun _ -> Hashtbl.create 16); of_page = Hashtbl.create 64 }

  let bucket_of free = min (nbuckets - 1) (free / bucket_width)

  let remove t page =
    match Hashtbl.find_opt t.of_page page with
    | None -> ()
    | Some b ->
        Hashtbl.remove t.buckets.(b) page;
        Hashtbl.remove t.of_page page

  let set t page free =
    remove t page;
    let b = bucket_of free in
    Hashtbl.replace t.buckets.(b) page ();
    Hashtbl.replace t.of_page page b

  (* A page in bucket [b] has at least [b * bucket_width] free bytes, so any
     bucket strictly above [need]'s class is a guaranteed fit. *)
  let find t need =
    let first_sure = (need / bucket_width) + 1 in
    let rec go b =
      if b >= nbuckets then None
      else
        match Hashtbl.length t.buckets.(b) with
        | 0 -> go (b + 1)
        | _ -> Hashtbl.fold (fun k () _ -> Some k) t.buckets.(b) None
    in
    go first_sure
end

type t = { pool : Buffer_pool.t; fsm : Fsm.t; mutable records : int }

let pool t = t.pool

(* -- header --------------------------------------------------------------- *)

let write_header t =
  let f = Buffer_pool.pin t.pool 0 in
  Bytes.fill (Buffer_pool.data f) 0 Page.size '\000';
  Bytes.blit_string magic 0 (Buffer_pool.data f) 0 (String.length magic);
  Buffer_pool.mark_dirty t.pool f;
  Buffer_pool.unpin t.pool f

let check_header t =
  Buffer_pool.with_page t.pool 0 (fun f ->
      let got = Bytes.sub_string (Buffer_pool.data f) 0 (String.length magic) in
      if got = magic then `Ok
      else if String.for_all (fun c -> c = '\000') got then
        (* A crash between allocating page 0 and the first flush leaves a
           stamped all-zero header: the file is new, never durably
           initialised. Reinitialise rather than reject. *)
        `Never_flushed
      else invalid_arg "heap: bad magic")

let attach pool =
  let t = { pool; fsm = Fsm.create (); records = 0 } in
  if Buffer_pool.page_count pool = 0 then begin
    let f = Buffer_pool.allocate pool in
    assert (Buffer_pool.page_no f = 0);
    Buffer_pool.unpin pool f;
    write_header t
  end
  else begin
    (match check_header t with
    | `Ok -> ()
    | `Never_flushed ->
        Ode_util.Stats.incr_pages_reformatted ();
        write_header t);
    (* Rebuild the free-space map and record count by scanning data pages. *)
    for n = 1 to Buffer_pool.page_count pool - 1 do
      Buffer_pool.with_page pool n (fun f ->
          let p = Buffer_pool.data f in
          (match Page.check p with
          | Ok () -> ()
          | Error _ ->
              (* Allocated but never flushed with real content (the crash
                 happened before the batch that would have filled it). *)
              Page.reset p;
              Buffer_pool.mark_dirty pool f;
              Ode_util.Stats.incr_pages_reformatted ());
          Fsm.set t.fsm n (Page.free_space p);
          Page.iter p (fun _ data ->
              if String.length data > 0 && Char.code data.[0] <> tag_chunk then
                t.records <- t.records + 1))
    done
  end;
  t

(* -- low-level insert of one tagged record -------------------------------- *)

let raw_insert t data =
  let need = String.length data in
  if need > Page.max_record then invalid_arg "heap: raw record too large";
  let target =
    match Fsm.find t.fsm need with
    | Some n -> n
    | None ->
        let f = Buffer_pool.allocate t.pool in
        let n = Buffer_pool.page_no f in
        Page.reset (Buffer_pool.data f);
        Buffer_pool.mark_dirty t.pool f;
        Buffer_pool.unpin t.pool f;
        n
  in
  Buffer_pool.with_page t.pool target (fun f ->
      let p = Buffer_pool.data f in
      match Page.insert p data with
      | Some slot ->
          Buffer_pool.mark_dirty t.pool f;
          Fsm.set t.fsm target (Page.free_space p);
          { page = target; slot }
      | None ->
          (* The free-space class over-promised (slot-directory overhead);
             refresh the map and retry on a fresh page. *)
          Fsm.set t.fsm target (Page.free_space p);
          let g = Buffer_pool.allocate t.pool in
          let n = Buffer_pool.page_no g in
          let q = Buffer_pool.data g in
          Page.reset q;
          let slot =
            match Page.insert q data with
            | Some s -> s
            | None -> invalid_arg "heap: record does not fit a fresh page"
          in
          Buffer_pool.mark_dirty t.pool g;
          Fsm.set t.fsm n (Page.free_space q);
          Buffer_pool.unpin t.pool g;
          { page = n; slot })

let raw_get t rid =
  if rid.page <= 0 || rid.page >= Buffer_pool.page_count t.pool then None
  else Buffer_pool.with_page t.pool rid.page (fun f -> Page.get (Buffer_pool.data f) rid.slot)

let raw_delete t rid =
  Buffer_pool.with_page t.pool rid.page (fun f ->
      let p = Buffer_pool.data f in
      let ok = Page.delete p rid.slot in
      if ok then begin
        Buffer_pool.mark_dirty t.pool f;
        Fsm.set t.fsm rid.page (Page.free_space p)
      end;
      ok)

(* -- chunking -------------------------------------------------------------- *)

let nil_rid = { page = 0; slot = 0 }

let encode_chunk ~next ~has_next body =
  let b = Buffer.create (String.length body + 8) in
  Codec.put_u8 b tag_chunk;
  Codec.put_bool b has_next;
  encode_rid b next;
  Codec.put_raw b body;
  Buffer.contents b

let encode_head ~total ~first =
  let b = Buffer.create 16 in
  Codec.put_u8 b tag_head;
  Codec.put_u32 b total;
  encode_rid b first;
  Buffer.contents b

(* Split [payload] into chunks and store them, returning the rid of the
   first chunk. Chunks are written back-to-front so each knows its next. *)
let store_chain t payload =
  let len = String.length payload in
  let rec chunks off acc =
    if off >= len then List.rev acc
    else
      let n = min chunk_capacity (len - off) in
      chunks (off + n) (String.sub payload off n :: acc)
  in
  let parts = chunks 0 [] in
  List.fold_left
    (fun next part ->
      let has_next = not (rid_equal next nil_rid) in
      raw_insert t (encode_chunk ~next ~has_next part))
    nil_rid (List.rev parts)

let free_chain t first =
  let rec go rid =
    match raw_get t rid with
    | None -> ()
    | Some data -> (
        let c = Codec.cursor data in
        match Codec.get_u8 c with
        | tag when tag <> tag_chunk ->
            (* Post-crash repair can leave a head whose chain rid now names
               an unrelated record; stop rather than free it. *)
            ()
        | _ ->
            let has_next = Codec.get_bool c in
            let next = decode_rid c in
            ignore (raw_delete t rid);
            if has_next then go next)
  in
  go first

let read_chain t total first =
  let b = Buffer.create total in
  let rec go rid =
    match raw_get t rid with
    | None -> raise (Codec.Corrupt "heap: broken overflow chain")
    | Some data ->
        let c = Codec.cursor data in
        let tag = Codec.get_u8 c in
        if tag <> tag_chunk then raise (Codec.Corrupt "heap: expected chunk");
        let has_next = Codec.get_bool c in
        let next = decode_rid c in
        Buffer.add_string b (Codec.get_raw c (Codec.remaining c));
        if has_next then go next
  in
  go first;
  Buffer.contents b

(* -- public operations ------------------------------------------------------ *)

let inline_limit = Page.max_record - 1

let insert t payload =
  t.records <- t.records + 1;
  if String.length payload <= inline_limit then
    raw_insert t ("\001" ^ payload)
  else
    let first = store_chain t payload in
    raw_insert t (encode_head ~total:(String.length payload) ~first)

let decode_record t data =
  let c = Codec.cursor data in
  match Codec.get_u8 c with
  | tag when tag = tag_inline -> Some (Codec.get_raw c (Codec.remaining c))
  | tag when tag = tag_head ->
      let total = Codec.get_u32 c in
      let first = decode_rid c in
      Some (read_chain t total first)
  | tag when tag = tag_chunk -> None
  | tag -> raise (Codec.Corrupt (Printf.sprintf "heap: bad tag %d" tag))

let get t rid =
  match raw_get t rid with None -> None | Some data -> decode_record t data

let delete t rid =
  match raw_get t rid with
  | None -> false
  | Some data -> (
      let c = Codec.cursor data in
      match Codec.get_u8 c with
      | tag when tag = tag_inline ->
          t.records <- t.records - 1;
          raw_delete t rid
      | tag when tag = tag_head ->
          let _total = Codec.get_u32 c in
          let first = decode_rid c in
          free_chain t first;
          t.records <- t.records - 1;
          raw_delete t rid
      | _ -> false)

let update t rid payload =
  match raw_get t rid with
  | None -> invalid_arg "heap: update of dead rid"
  | Some old ->
      let was_inline = Char.code old.[0] = tag_inline in
      if was_inline && String.length payload <= inline_limit then begin
        let fits =
          Buffer_pool.with_page t.pool rid.page (fun f ->
              let p = Buffer_pool.data f in
              let ok = Page.update p rid.slot ("\001" ^ payload) in
              if ok then begin
                Buffer_pool.mark_dirty t.pool f;
                Fsm.set t.fsm rid.page (Page.free_space p)
              end;
              ok)
        in
        if fits then rid
        else begin
          ignore (delete t rid);
          insert t payload
        end
      end
      else begin
        ignore (delete t rid);
        insert t payload
      end

let iter t f =
  for n = 1 to Buffer_pool.page_count t.pool - 1 do
    (* Collect slots first: the callback may mutate the page we hold. *)
    let entries =
      Buffer_pool.with_page t.pool n (fun fr ->
          let acc = ref [] in
          Page.iter (Buffer_pool.data fr) (fun slot data -> acc := (slot, data) :: !acc);
          List.rev !acc)
    in
    List.iter
      (fun (slot, data) ->
        match decode_record t data with
        | Some payload -> f { page = n; slot } payload
        | None -> ())
      entries
  done

(* Delete every head/inline record the caller does not recognise as live
   (plus its overflow chain). Run after recovery: a crash between the heap
   flush and the directory flush can persist records whose directory entry
   never made it to disk. *)
let sweep_orphans t ~live =
  let victims = ref [] in
  for n = 1 to Buffer_pool.page_count t.pool - 1 do
    Buffer_pool.with_page t.pool n (fun f ->
        Page.iter (Buffer_pool.data f) (fun slot data ->
            if String.length data > 0 && Char.code data.[0] <> tag_chunk then begin
              let rid = { page = n; slot } in
              if not (live rid) then victims := rid :: !victims
            end))
  done;
  List.iter (fun rid -> ignore (delete t rid)) !victims;
  List.length !victims

let record_count t = t.records
let page_count t = Buffer_pool.page_count t.pool

let flush t =
  (match Failpoint.hit fp_flush with
  | Some Failpoint.Crash_site -> Failpoint.crash fp_flush
  | Some _ | None -> ());
  Buffer_pool.flush_all t.pool
