let size = 4096

(* The last [trailer_bytes] of every page are reserved for the disk layer's
   checksum; the slotted layout never touches them. *)
let trailer_bytes = 8
let data_end = size - trailer_bytes
let header_bytes = 8
let slot_bytes = 4
let dead = 0xffff
let max_record = data_end - header_bytes - slot_bytes

type t = bytes

(* -- raw field access --------------------------------------------------- *)

let get16 p off = Char.code (Bytes.get p off) lor (Char.code (Bytes.get p (off + 1)) lsl 8)

let set16 p off v =
  Bytes.set p off (Char.chr (v land 0xff));
  Bytes.set p (off + 1) (Char.chr ((v lsr 8) land 0xff))

let nslots p = get16 p 0
let free_lo p = get16 p 2 (* first byte past the slot directory *)
let free_hi p = get16 p 4 (* first byte of record data *)
let set_nslots p v = set16 p 0 v
let set_free_lo p v = set16 p 2 v
let set_free_hi p v = set16 p 4 v
let slot_off i = header_bytes + (i * slot_bytes)
let slot_pos p i = get16 p (slot_off i)
let slot_len p i = get16 p (slot_off i + 2)

let set_slot p i ~pos ~len =
  set16 p (slot_off i) pos;
  set16 p (slot_off i + 2) len

(* -- formatting ---------------------------------------------------------- *)

let reset p =
  Bytes.fill p 0 size '\000';
  set_nslots p 0;
  set_free_lo p header_bytes;
  set_free_hi p data_end

let create () =
  let p = Bytes.create size in
  reset p;
  p

(* -- queries ------------------------------------------------------------- *)

let live p i = i >= 0 && i < nslots p && slot_pos p i <> dead

let live_count p =
  let n = ref 0 in
  for i = 0 to nslots p - 1 do
    if slot_pos p i <> dead then incr n
  done;
  !n

let find_dead_slot p =
  let rec go i = if i >= nslots p then None else if slot_pos p i = dead then Some i else go (i + 1) in
  go 0

(* Total reclaimable bytes: the gap plus dead record space. *)
let total_free p =
  let gap = free_hi p - free_lo p in
  let dead_bytes = ref 0 in
  (* dead record bytes were already returned to the gap by compaction or are
     unreachable until compaction; we track them by summing live data and
     comparing with the used region. *)
  let live_bytes = ref 0 in
  for i = 0 to nslots p - 1 do
    if slot_pos p i <> dead then live_bytes := !live_bytes + slot_len p i
  done;
  dead_bytes := data_end - free_hi p - !live_bytes;
  gap + !dead_bytes

let free_space p =
  let extra_slot = if find_dead_slot p = None then slot_bytes else 0 in
  max 0 (total_free p - extra_slot)

(* -- compaction ---------------------------------------------------------- *)

(* Slide all live records to the end of the page, preserving slot numbers. *)
let compact p =
  let n = nslots p in
  let entries = ref [] in
  for i = 0 to n - 1 do
    let pos = slot_pos p i in
    if pos <> dead then entries := (i, pos, slot_len p i) :: !entries
  done;
  (* Copy records into a scratch buffer, then lay them back down from the
     high end. *)
  let scratch = List.map (fun (i, pos, len) -> (i, Bytes.sub p pos len)) !entries in
  let hi = ref data_end in
  List.iter
    (fun (i, data) ->
      let len = Bytes.length data in
      hi := !hi - len;
      Bytes.blit data 0 p !hi len;
      set_slot p i ~pos:!hi ~len)
    scratch;
  set_free_hi p !hi

(* -- mutation ------------------------------------------------------------ *)

let insert p data =
  let len = String.length data in
  if len > max_record then None
  else
    let reuse = find_dead_slot p in
    let slot_cost = if reuse = None then slot_bytes else 0 in
    if total_free p < len + slot_cost then None
    else begin
      if free_hi p - free_lo p < len + slot_cost then compact p;
      let slot =
        match reuse with
        | Some i -> i
        | None ->
            let i = nslots p in
            set_nslots p (i + 1);
            set_free_lo p (free_lo p + slot_bytes);
            i
      in
      let pos = free_hi p - len in
      Bytes.blit_string data 0 p pos len;
      set_free_hi p pos;
      set_slot p slot ~pos ~len;
      Some slot
    end

let get p i =
  if live p i then Some (Bytes.sub_string p (slot_pos p i) (slot_len p i)) else None

let delete p i =
  if not (live p i) then false
  else begin
    (* If this record is the lowest one, we can grow the gap immediately;
       otherwise the space is reclaimed by the next compaction. *)
    let pos = slot_pos p i and len = slot_len p i in
    if pos = free_hi p then set_free_hi p (pos + len);
    set_slot p i ~pos:dead ~len:0;
    true
  end

let update p i data =
  if not (live p i) then false
  else
    let len = String.length data in
    let old_len = slot_len p i in
    if len <= old_len then begin
      (* Shrink in place; tail bytes become dead space until compaction. *)
      let pos = slot_pos p i in
      Bytes.blit_string data 0 p pos len;
      set_slot p i ~pos ~len;
      true
    end
    else begin
      (* Logically free the old record, then place the new one. *)
      let pos = slot_pos p i and old = slot_len p i in
      if pos = free_hi p then set_free_hi p (pos + old);
      set_slot p i ~pos:dead ~len:0;
      if total_free p < len then begin
        (* Undo: restore the old record descriptor (bytes are intact unless
           we grew the gap over them, which only happens when pos = free_hi
           before, so restore free_hi too). *)
        if free_hi p = pos + old then set_free_hi p pos;
        set_slot p i ~pos ~len:old;
        false
      end
      else begin
        if free_hi p - free_lo p < len then compact p;
        let npos = free_hi p - len in
        Bytes.blit_string data 0 p npos len;
        set_free_hi p npos;
        set_slot p i ~pos:npos ~len;
        true
      end
    end

let iter p f =
  for i = 0 to nslots p - 1 do
    if slot_pos p i <> dead then f i (Bytes.sub_string p (slot_pos p i) (slot_len p i))
  done

(* -- invariants ----------------------------------------------------------- *)

let check p =
  let n = nslots p in
  let lo = free_lo p and hi = free_hi p in
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  if n < 0 || header_bytes + (n * slot_bytes) <> lo then fail "slot dir/free_lo mismatch"
  else if lo > hi || hi > data_end then fail "free pointers out of order (%d,%d)" lo hi
  else
    let spans = ref [] in
    let bad = ref None in
    for i = 0 to n - 1 do
      let pos = slot_pos p i in
      if pos <> dead then begin
        let len = slot_len p i in
        if pos < hi || pos + len > data_end then bad := Some (Printf.sprintf "slot %d out of data area" i)
        else spans := (pos, pos + len) :: !spans
      end
    done;
    match !bad with
    | Some msg -> Error msg
    | None ->
        let sorted = List.sort compare !spans in
        let rec overlaps = function
          | (_, e1) :: ((s2, _) :: _ as rest) -> if e1 > s2 then true else overlaps rest
          | _ -> false
        in
        if overlaps sorted then Error "overlapping records" else Ok ()
