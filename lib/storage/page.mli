(** Slotted pages.

    A page is a fixed-size byte array holding variable-length records behind
    a slot directory, so records can move within the page (compaction)
    without changing their externally visible slot number.

    Layout:
    {v
      [u16 nslots][u16 free_lo][u16 free_hi][u16 reserved]
      slot 0: [u16 off][u16 len]   -- off = 0xffff means dead slot
      slot 1: ...
      ... free space ...
      record data, growing down to [data_end]
      [8-byte checksum trailer, owned by the disk layer]
    v} *)

val size : int
(** Page size in bytes (4096). *)

val trailer_bytes : int
(** Bytes reserved at the end of every page for the disk layer's checksum;
    the slotted layout never uses them. *)

val data_end : int
(** First byte past the slotted data area ([size - trailer_bytes]). *)

val max_record : int
(** Largest record that fits in an empty page. *)

type t = bytes
(** A page is exactly {!size} bytes. *)

val create : unit -> t
(** A fresh, empty, formatted page. *)

val reset : t -> unit
(** Re-format an existing buffer as an empty page. *)

val nslots : t -> int
(** Number of slot directory entries (live and dead). *)

val live_count : t -> int
(** Number of live records. *)

val free_space : t -> int
(** Bytes available for a new record right now, accounting for the slot
    directory entry a fresh insert may need (after compaction if needed). *)

val insert : t -> string -> int option
(** [insert p data] stores [data], returning its slot, or [None] if the page
    cannot hold it. Reuses dead slots; compacts when fragmented. *)

val get : t -> int -> string option
(** [get p slot] is the record stored at [slot], or [None] if the slot is
    dead or out of range. *)

val delete : t -> int -> bool
(** [delete p slot] kills the slot; false if it was not live. *)

val update : t -> int -> string -> bool
(** [update p slot data] replaces the record in place, moving it within the
    page if needed; false if it cannot fit or the slot is not live. *)

val iter : t -> (int -> string -> unit) -> unit
(** Visit live records in slot order. *)

val check : t -> (unit, string) result
(** Structural invariant check: slot bounds, no overlap, free pointers sane.
    Used by tests. *)
