(** Writer-preferring reader/writer lock.

    The serving layer's engine gate: reader domains hold it shared for the
    duration of a read-only request; the writer domain holds it exclusively
    for anything that mutates engine state. Readers queue behind a waiting
    writer, so a steady read load cannot starve commits. Not reentrant. *)

type t

val create : unit -> t
val lock_read : t -> unit
val unlock_read : t -> unit
val lock_write : t -> unit
val unlock_write : t -> unit

val read : t -> (unit -> 'a) -> 'a
(** Run a thunk holding the shared lock (released on exception). *)

val write : t -> (unit -> 'a) -> 'a
(** Run a thunk holding the exclusive lock (released on exception). *)
