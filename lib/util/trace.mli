(** Span-based tracer with a fixed-size ring buffer and a Chrome
    trace-event JSON exporter. Disabled by default; every emit point is a
    single flag check when off. Process-global; ring mutations take a
    mutex, so spans emitted concurrently from the server's reader domains
    and the writer domain never tear the buffer. The nesting-depth counter
    is advisory under concurrency — spans from different domains may
    report interleaved depths (display nesting only, durations and
    ordering stay exact per span). *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val now_ns : unit -> int
(** Wall clock in integer nanoseconds, clamped non-decreasing so durations
    can never be negative. *)

type phase = Complete | Instant

type span = {
  sp_id : int;  (** unique per recorded span, across domains *)
  sp_trace : int;  (** ambient trace id at emission; 0 = untraced *)
  sp_name : string;
  sp_cat : string;
  sp_start_ns : int;
  sp_dur_ns : int;  (** 0 for instants *)
  sp_depth : int;  (** nesting depth at emission *)
  sp_args : (string * string) list;
  sp_phase : phase;
}

val with_trace_id : int -> (unit -> 'a) -> 'a
(** Run a thunk with the domain-local ambient trace id set (restored on
    exit, also on exceptions). Every span recorded inside — including on
    the same domain further down the stack — carries the id in [sp_trace]
    and exports it as a [trace_id] arg. Id 0 means untraced. *)

val current_trace_id : unit -> int
(** The ambient trace id of the calling domain (0 when none). *)

val id_to_string : int -> string
(** Canonical rendering of a trace id (fixed-width hex), used everywhere a
    trace id is shown so greps line up across client, server and logs. *)

val set_process_label : string -> unit
(** Label this process in Chrome exports (a [process_name] metadata
    event): e.g. ["primary:7070"] vs ["standby:7071"], so dumps from both
    sides of a replication pair stay tellable apart when concatenated. *)

val with_span : ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span; the span is recorded when [f]
    returns or raises. No-op (beyond calling [f]) when tracing is off. *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
(** Zero-duration event at the current time. *)

val emit :
  ?cat:string ->
  ?args:(string * string) list ->
  ?depth:int ->
  start_ns:int ->
  dur_ns:int ->
  string ->
  unit
(** Record a pre-timed span (used by the query profiler to lay out per-node
    aggregates). *)

val capacity : unit -> int

val set_capacity : int -> unit
(** Resize the ring buffer (clears it). Default capacity is 65536 spans;
    once full, the oldest spans are overwritten. *)

val clear : unit -> unit

val total_recorded : unit -> int
(** Spans ever recorded, including those overwritten by wraparound. *)

val spans : unit -> span list
(** Retained spans, oldest first (completion order). *)

val to_chrome_json : unit -> string
(** The retained spans as a Chrome trace-event JSON document (loadable in
    chrome://tracing or ui.perfetto.dev). *)

val dump : string -> unit
(** Write [to_chrome_json ()] to a file. *)
