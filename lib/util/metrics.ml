(* Renders the process's observability surface — Stats counters, sampled
   gauges, and Histogram quantiles — as Prometheus text exposition (served
   by the server's `GET /metrics` listener) and as a JSON document (the
   `.metrics json` dot command). Pure render layer: every value is read
   through the owning registry's own domain-safe accessors, so this can
   run on the writer domain while reader domains keep emitting. *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let metric_name name = "ode_" ^ sanitize name

(* -- Prometheus text format ------------------------------------------------ *)

let prometheus () =
  let b = Buffer.create 4096 in
  let snap = Stats.snapshot () in
  let counters =
    List.sort compare (Stats.to_list snap)
  in
  List.iter
    (fun (name, v) ->
      let m = metric_name name in
      let ty = match Stats.kind_of name with Stats.Gauge -> "gauge" | Stats.Counter -> "counter" in
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n%s %d\n" m ty m v))
    counters;
  List.iter
    (fun (name, v) ->
      let m = metric_name name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n%s %d\n" m m v))
    (Stats.gauges ());
  List.iter
    (fun (r : Histogram.row) ->
      let m = metric_name r.r_name ^ "_ns" in
      Buffer.add_string b (Printf.sprintf "# TYPE %s summary\n" m);
      Buffer.add_string b (Printf.sprintf "%s{quantile=\"0.5\"} %d\n" m r.r_p50);
      Buffer.add_string b (Printf.sprintf "%s{quantile=\"0.95\"} %d\n" m r.r_p95);
      Buffer.add_string b (Printf.sprintf "%s{quantile=\"0.99\"} %d\n" m r.r_p99);
      Buffer.add_string b (Printf.sprintf "%s_sum %d\n" m r.r_sum_ns);
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" m r.r_count))
    (Histogram.rows ());
  Buffer.contents b

(* -- JSON snapshot --------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json () =
  let b = Buffer.create 4096 in
  let obj_of pairs =
    String.concat "," (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) v) pairs)
  in
  let counters =
    List.sort compare (Stats.to_list (Stats.snapshot ()))
    |> List.map (fun (k, v) -> (k, string_of_int v))
  in
  let gauges = List.map (fun (k, v) -> (k, string_of_int v)) (Stats.gauges ()) in
  let hists =
    Histogram.rows ()
    |> List.map (fun (r : Histogram.row) ->
           ( r.r_name,
             Printf.sprintf "{%s}"
               (obj_of
                  [
                    ("count", string_of_int r.r_count);
                    ("sum_ns", string_of_int r.r_sum_ns);
                    ("max_ns", string_of_int r.r_max_ns);
                    ("p50_ns", string_of_int r.r_p50);
                    ("p95_ns", string_of_int r.r_p95);
                    ("p99_ns", string_of_int r.r_p99);
                  ]) ))
  in
  Buffer.add_string b
    (Printf.sprintf "{\"counters\":{%s},\"gauges\":{%s},\"histograms\":{%s}}" (obj_of counters)
       (obj_of gauges) (obj_of hists));
  Buffer.contents b
