(** Deterministic pseudo-random number generator (splitmix64).

    Workload generators in the benchmark harness use this so that every run
    sees the same data, independent of the global [Random] state. *)

type t

val create : int -> t
(** [create seed] makes a generator from a 63-bit seed. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val string : t -> int -> string
(** [string t n] is [n] random lowercase letters. *)
