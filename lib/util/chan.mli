(** Bounded multi-producer multi-consumer channel (mutex + conditions).

    FIFO across producers as far as each producer observes its own pushes;
    consumers receive values in queue order. Safe to share across domains. *)

type 'a t

val create : int -> 'a t
(** [create cap] makes a channel holding at most [max 1 cap] values. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> unit
(** Blocks while the channel is full. *)

val try_push : 'a t -> 'a -> bool
(** [false] (and no effect) when the channel is full. Never blocks. *)

val pop : 'a t -> 'a
(** Blocks while the channel is empty. *)

val try_pop : 'a t -> 'a option
(** [None] when the channel is empty. Never blocks. *)

val length : 'a t -> int
(** Instantaneous occupancy (racy by nature; for backpressure heuristics). *)
