type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* splitmix64: fast, full-period, good statistical quality for workloads. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value is a non-negative OCaml int. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next t) 1L = 1L

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let string t n = String.init n (fun _ -> Char.chr (Char.code 'a' + int t 26))
