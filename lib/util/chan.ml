(* Bounded multi-producer multi-consumer channel.

   A mutex-and-two-conditions queue: [push] blocks while the channel is at
   capacity, [pop] blocks while it is empty, and the [try_] variants never
   block. The server uses a pair of these to hand requests to reader
   domains (bounded, so a firehose of queries cannot balloon the job
   backlog) and to collect their completions (sized so a reader can always
   deposit its result without waiting). *)

type 'a t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  nonfull : Condition.t;
  q : 'a Queue.t;
  cap : int;
}

let create cap =
  {
    mu = Mutex.create ();
    nonempty = Condition.create ();
    nonfull = Condition.create ();
    q = Queue.create ();
    cap = max 1 cap;
  }

let capacity t = t.cap

let try_push t v =
  Mutex.protect t.mu (fun () ->
      if Queue.length t.q >= t.cap then false
      else begin
        Queue.push v t.q;
        Condition.signal t.nonempty;
        true
      end)

let push t v =
  Mutex.protect t.mu (fun () ->
      while Queue.length t.q >= t.cap do
        Condition.wait t.nonfull t.mu
      done;
      Queue.push v t.q;
      Condition.signal t.nonempty)

let pop t =
  Mutex.protect t.mu (fun () ->
      while Queue.is_empty t.q do
        Condition.wait t.nonempty t.mu
      done;
      let v = Queue.pop t.q in
      Condition.signal t.nonfull;
      v)

let try_pop t =
  Mutex.protect t.mu (fun () ->
      if Queue.is_empty t.q then None
      else begin
        let v = Queue.pop t.q in
        Condition.signal t.nonfull;
        Some v
      end)

let length t = Mutex.protect t.mu (fun () -> Queue.length t.q)
