(* Fault-injection failpoints.

   A failpoint is a named site in a side-effecting code path (a page write,
   an fsync, a WAL append batch). Sites are registered statically by the
   module that owns them and are inert until a test arms them with a trigger
   policy and an action. When an armed site fires, the owning code either
   simulates process death ([Crash]) or applies a partial effect first (a
   short write, a flipped bit, a silently skipped syscall) and then crashes
   or continues, depending on the action.

   Disarmed sites cost two integer increments and a record-field read per
   hit, so the instrumentation stays compiled into production paths. *)

exception Crash of string

type action =
  | Crash_site
  | Short_effect of float
  | Flip_bit of int
  | Skip_effect

type policy =
  | Always
  | One_shot
  | After_hits of int
  | Probability of float

type arming = {
  policy : policy;
  act : action;
  prng : Prng.t;
  mutable remaining : int; (* hits to skip before firing (counted policies) *)
}

type t = {
  name : string;
  mutable hits : int;
  mutable fired : int;
  mutable armed : arming option;
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 32

let site name =
  match Hashtbl.find_opt registry name with
  | Some s -> s
  | None ->
      let s = { name; hits = 0; fired = 0; armed = None } in
      Hashtbl.add registry name s;
      s

let name s = s.name
let sites () = List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) registry [])

let arm ?(seed = 0) name ~policy ~action =
  let s = site name in
  let remaining = match policy with After_hits n -> n | _ -> 0 in
  s.armed <- Some { policy; act = action; prng = Prng.create seed; remaining }

let disarm name = match Hashtbl.find_opt registry name with
  | Some s -> s.armed <- None
  | None -> ()

let clear () = Hashtbl.iter (fun _ s -> s.armed <- None) registry

let hits name = match Hashtbl.find_opt registry name with Some s -> s.hits | None -> 0
let fired name = match Hashtbl.find_opt registry name with Some s -> s.fired | None -> 0

let reset_counters () =
  Hashtbl.iter
    (fun _ s ->
      s.hits <- 0;
      s.fired <- 0)
    registry

let hit s =
  s.hits <- s.hits + 1;
  match s.armed with
  | None -> None
  | Some a ->
      let fire =
        match a.policy with
        | Always -> true
        | One_shot | After_hits _ ->
            if a.remaining > 0 then begin
              a.remaining <- a.remaining - 1;
              false
            end
            else true
        | Probability p -> Prng.float a.prng 1.0 < p
      in
      if not fire then None
      else begin
        s.fired <- s.fired + 1;
        (* Counted policies fire exactly once. *)
        (match a.policy with
        | One_shot | After_hits _ -> s.armed <- None
        | Always | Probability _ -> ());
        Some a.act
      end

let crash s = raise (Crash s.name)
