(* Log-bucketed latency histograms, one per operation class (txn commit,
   query execute, WAL sync, page read/write, trigger firing, recovery).
   Bucket i covers [2^i, 2^(i+1)-1] nanoseconds (bucket 0 is [0,1]), so 63
   buckets span any int duration at a fixed ~2x relative error, which is
   plenty for p50/p95/p99 on latencies ranging from nanoseconds to seconds.

   Enabled by default: the sites are coarse operation boundaries, each
   costing two clock reads and one array bump (E18 guards the total at
   <=5% on a scan-heavy workload). Process-global, like Stats; a
   per-histogram mutex makes [observe] domain-safe (reader domains and
   the writer observe concurrently). Reads (count/percentile/summary)
   are lock-free: they may see a mid-observation state, which for
   monotonic tallies means at worst an off-by-one-in-flight report. *)

let enabled_flag = ref true
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

let nbuckets = 63

type t = {
  name : string;
  mu : Mutex.t;
  counts : int array;
  mutable n : int;
  mutable sum_ns : int;
  mutable max_ns : int;
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 16
let order : string list ref = ref [] (* newest first *)
let registry_mu = Mutex.create ()

let create name =
  Mutex.protect registry_mu (fun () ->
      match Hashtbl.find_opt registry name with
      | Some h -> h
      | None ->
          let h =
            { name; mu = Mutex.create (); counts = Array.make nbuckets 0; n = 0; sum_ns = 0; max_ns = 0 }
          in
          Hashtbl.replace registry name h;
          order := name :: !order;
          h)

let find name = Mutex.protect registry_mu (fun () -> Hashtbl.find_opt registry name)
let all () = Mutex.protect registry_mu (fun () -> List.rev_map (Hashtbl.find registry) !order)
let name h = h.name

let bucket_index ns =
  if ns <= 1 then 0
  else begin
    let i = ref 0 and v = ref ns in
    while !v > 1 do
      incr i;
      v := !v lsr 1
    done;
    min (nbuckets - 1) !i
  end

let observe h ns =
  let ns = max 0 ns in
  let b = bucket_index ns in
  Mutex.protect h.mu (fun () ->
      h.counts.(b) <- h.counts.(b) + 1;
      h.n <- h.n + 1;
      h.sum_ns <- h.sum_ns + ns;
      if ns > h.max_ns then h.max_ns <- ns)

let time h f =
  if not !enabled_flag then f ()
  else begin
    let t0 = Trace.now_ns () in
    match f () with
    | v ->
        observe h (Trace.now_ns () - t0);
        v
    | exception e ->
        observe h (Trace.now_ns () - t0);
        raise e
  end

let count h = h.n
let max_ns h = h.max_ns
let sum_ns h = h.sum_ns
let mean_ns h = if h.n = 0 then 0. else float_of_int h.sum_ns /. float_of_int h.n

(* upper bound of bucket i, clamped to the observed max so the estimate
   never exceeds any actually-observed value *)
let bucket_upper i = if i = 0 then 1 else (1 lsl (i + 1)) - 1

let percentile h p =
  if h.n = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (p /. 100. *. float_of_int h.n))) in
    let rec go i seen =
      if i >= nbuckets then h.max_ns
      else
        let seen = seen + h.counts.(i) in
        if seen >= rank then min (bucket_upper i) h.max_ns else go (i + 1) seen
    in
    go 0 0
  end

let reset h =
  Mutex.protect h.mu (fun () ->
      Array.fill h.counts 0 nbuckets 0;
      h.n <- 0;
      h.sum_ns <- 0;
      h.max_ns <- 0)

let reset_all () = List.iter reset (all ())

let format_ns ns =
  if ns < 1_000 then Printf.sprintf "%dns" ns
  else if ns < 1_000_000 then Printf.sprintf "%.1fus" (float_of_int ns /. 1e3)
  else if ns < 1_000_000_000 then Printf.sprintf "%.2fms" (float_of_int ns /. 1e6)
  else Printf.sprintf "%.2fs" (float_of_int ns /. 1e9)

let summary () =
  let hs = all () in
  let namew = List.fold_left (fun w h -> max w (String.length h.name)) 9 hs in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "%-*s %10s %10s %10s %10s %10s %10s\n" namew "operation" "count" "p50" "p95"
       "p99" "max" "mean");
  List.iter
    (fun h ->
      Buffer.add_string b
        (Printf.sprintf "%-*s %10d %10s %10s %10s %10s %10s\n" namew h.name h.n
           (format_ns (percentile h 50.))
           (format_ns (percentile h 95.))
           (format_ns (percentile h 99.))
           (format_ns h.max_ns)
           (format_ns (int_of_float (mean_ns h)))))
    hs;
  Buffer.contents b
