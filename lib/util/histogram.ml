(* Log-bucketed latency histograms, one per operation class (txn commit,
   query execute, WAL sync, page read/write, trigger firing, recovery).
   Bucket i covers [2^i, 2^(i+1)-1] nanoseconds (bucket 0 is [0,1]), so 63
   buckets span any int duration at a fixed ~2x relative error, which is
   plenty for p50/p95/p99 on latencies ranging from nanoseconds to seconds.

   Enabled by default: the sites are coarse operation boundaries, each
   costing two clock reads and one array bump (E18 guards the total at
   <=5% on a scan-heavy workload). Process-global, like Stats; a
   per-histogram mutex makes [observe] domain-safe (reader domains and
   the writer observe concurrently). Reads (count/percentile/summary)
   are lock-free: they may see a mid-observation state, which for
   monotonic tallies means at worst an off-by-one-in-flight report. *)

let enabled_flag = ref true
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

let nbuckets = 63

type t = {
  name : string;
  mu : Mutex.t;
  counts : int array;
  mutable n : int;
  mutable sum_ns : int;
  mutable max_ns : int;
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 16
let order : string list ref = ref [] (* newest first *)
let registry_mu = Mutex.create ()

let create name =
  Mutex.protect registry_mu (fun () ->
      match Hashtbl.find_opt registry name with
      | Some h -> h
      | None ->
          let h =
            { name; mu = Mutex.create (); counts = Array.make nbuckets 0; n = 0; sum_ns = 0; max_ns = 0 }
          in
          Hashtbl.replace registry name h;
          order := name :: !order;
          h)

let find name = Mutex.protect registry_mu (fun () -> Hashtbl.find_opt registry name)
let all () = Mutex.protect registry_mu (fun () -> List.rev_map (Hashtbl.find registry) !order)
let name h = h.name

let bucket_index ns =
  if ns <= 1 then 0
  else begin
    let i = ref 0 and v = ref ns in
    while !v > 1 do
      incr i;
      v := !v lsr 1
    done;
    min (nbuckets - 1) !i
  end

let observe h ns =
  let ns = max 0 ns in
  let b = bucket_index ns in
  Mutex.protect h.mu (fun () ->
      h.counts.(b) <- h.counts.(b) + 1;
      h.n <- h.n + 1;
      h.sum_ns <- h.sum_ns + ns;
      if ns > h.max_ns then h.max_ns <- ns)

let time h f =
  if not !enabled_flag then f ()
  else begin
    let t0 = Trace.now_ns () in
    match f () with
    | v ->
        observe h (Trace.now_ns () - t0);
        v
    | exception e ->
        observe h (Trace.now_ns () - t0);
        raise e
  end

let count h = h.n
let max_ns h = h.max_ns
let sum_ns h = h.sum_ns
let mean_ns h = if h.n = 0 then 0. else float_of_int h.sum_ns /. float_of_int h.n

(* upper bound of bucket i, clamped to the observed max so the estimate
   never exceeds any actually-observed value *)
let bucket_upper i = if i = 0 then 1 else (1 lsl (i + 1)) - 1

let percentile_of counts n maxv p =
  if n = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (p /. 100. *. float_of_int n))) in
    let rec go i seen =
      if i >= nbuckets then maxv
      else
        let seen = seen + counts.(i) in
        if seen >= rank then min (bucket_upper i) maxv else go (i + 1) seen
    in
    go 0 0
  end

let percentile h p = percentile_of h.counts h.n h.max_ns p

(* A consistent cut of one histogram, taken under its mutex so count, sum
   and the percentile ranks all describe the same set of observations.
   [reset:true] zeroes the tallies inside the SAME critical section —
   that is what makes `.metrics reset` exact under reader domains: an
   [observe] racing the drain lands either wholly in the returned row or
   wholly in the next interval, never both and never neither. *)
type row = {
  r_name : string;
  r_count : int;
  r_sum_ns : int;
  r_max_ns : int;
  r_p50 : int;
  r_p95 : int;
  r_p99 : int;
}

let snapshot ?(reset = false) h =
  Mutex.protect h.mu (fun () ->
      let counts = Array.copy h.counts in
      let n = h.n and sum = h.sum_ns and maxv = h.max_ns in
      if reset then begin
        Array.fill h.counts 0 nbuckets 0;
        h.n <- 0;
        h.sum_ns <- 0;
        h.max_ns <- 0
      end;
      {
        r_name = h.name;
        r_count = n;
        r_sum_ns = sum;
        r_max_ns = maxv;
        r_p50 = percentile_of counts n maxv 50.;
        r_p95 = percentile_of counts n maxv 95.;
        r_p99 = percentile_of counts n maxv 99.;
      })

let rows ?(reset = false) () =
  all ()
  |> List.map (snapshot ~reset)
  |> List.sort (fun a b -> compare a.r_name b.r_name)

let reset h =
  Mutex.protect h.mu (fun () ->
      Array.fill h.counts 0 nbuckets 0;
      h.n <- 0;
      h.sum_ns <- 0;
      h.max_ns <- 0)

let reset_all () = List.iter reset (all ())

let format_ns ns =
  if ns < 1_000 then Printf.sprintf "%dns" ns
  else if ns < 1_000_000 then Printf.sprintf "%.1fus" (float_of_int ns /. 1e3)
  else if ns < 1_000_000_000 then Printf.sprintf "%.2fms" (float_of_int ns /. 1e6)
  else Printf.sprintf "%.2fs" (float_of_int ns /. 1e9)

(* Sorted by name (like [rows]): histogram creation order depends on which
   code paths ran first, sorted output diffs stably. *)
let summary () =
  let rs = rows () in
  let namew = List.fold_left (fun w r -> max w (String.length r.r_name)) 9 rs in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "%-*s %10s %10s %10s %10s %10s %10s\n" namew "operation" "count" "p50" "p95"
       "p99" "max" "mean");
  List.iter
    (fun r ->
      let mean = if r.r_count = 0 then 0 else r.r_sum_ns / r.r_count in
      Buffer.add_string b
        (Printf.sprintf "%-*s %10d %10s %10s %10s %10s %10s\n" namew r.r_name r.r_count
           (format_ns r.r_p50) (format_ns r.r_p95) (format_ns r.r_p99) (format_ns r.r_max_ns)
           (format_ns mean)))
    rs;
  Buffer.contents b
