(* Log-bucketed latency histograms, one per operation class (txn commit,
   query execute, WAL sync, page read/write, trigger firing, recovery).
   Bucket i covers [2^i, 2^(i+1)-1] nanoseconds (bucket 0 is [0,1]), so 63
   buckets span any int duration at a fixed ~2x relative error, which is
   plenty for p50/p95/p99 on latencies ranging from nanoseconds to seconds.

   Enabled by default: the sites are coarse operation boundaries, each
   costing two clock reads and one array bump (E18 guards the total at
   <=5% on a scan-heavy workload). Process-global, like Stats; a
   per-histogram mutex makes [observe] domain-safe (reader domains and
   the writer observe concurrently). Reads (count/percentile/summary)
   are lock-free: they may see a mid-observation state, which for
   monotonic tallies means at worst an off-by-one-in-flight report. *)

let enabled_flag = ref true
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

let nbuckets = 63

type t = {
  name : string;
  mu : Mutex.t;
  counts : int array;
  mutable n : int;
  mutable sum_ns : int;
  mutable max_ns : int;
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 16
let order : string list ref = ref [] (* newest first *)
let registry_mu = Mutex.create ()

let create name =
  Mutex.protect registry_mu (fun () ->
      match Hashtbl.find_opt registry name with
      | Some h -> h
      | None ->
          let h =
            { name; mu = Mutex.create (); counts = Array.make nbuckets 0; n = 0; sum_ns = 0; max_ns = 0 }
          in
          Hashtbl.replace registry name h;
          order := name :: !order;
          h)

let find name = Mutex.protect registry_mu (fun () -> Hashtbl.find_opt registry name)
let all () = Mutex.protect registry_mu (fun () -> List.rev_map (Hashtbl.find registry) !order)
let name h = h.name

let bucket_index ns =
  if ns <= 1 then 0
  else begin
    let i = ref 0 and v = ref ns in
    while !v > 1 do
      incr i;
      v := !v lsr 1
    done;
    min (nbuckets - 1) !i
  end

let observe h ns =
  let ns = max 0 ns in
  let b = bucket_index ns in
  Mutex.protect h.mu (fun () ->
      h.counts.(b) <- h.counts.(b) + 1;
      h.n <- h.n + 1;
      h.sum_ns <- h.sum_ns + ns;
      if ns > h.max_ns then h.max_ns <- ns)

let time h f =
  if not !enabled_flag then f ()
  else begin
    let t0 = Trace.now_ns () in
    match f () with
    | v ->
        observe h (Trace.now_ns () - t0);
        v
    | exception e ->
        observe h (Trace.now_ns () - t0);
        raise e
  end

let count h = h.n
let max_ns h = h.max_ns
let sum_ns h = h.sum_ns
let mean_ns h = if h.n = 0 then 0. else float_of_int h.sum_ns /. float_of_int h.n

(* upper bound of bucket i, clamped to the observed max so the estimate
   never exceeds any actually-observed value *)
let bucket_upper i = if i = 0 then 1 else (1 lsl (i + 1)) - 1

let percentile_of counts n maxv p =
  if n = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (p /. 100. *. float_of_int n))) in
    let rec go i seen =
      if i >= nbuckets then maxv
      else
        let seen = seen + counts.(i) in
        if seen >= rank then min (bucket_upper i) maxv else go (i + 1) seen
    in
    go 0 0
  end

let percentile h p = percentile_of h.counts h.n h.max_ns p

(* A consistent cut of one histogram, taken under its mutex so count, sum
   and the percentile ranks all describe the same set of observations.
   [reset:true] zeroes the tallies inside the SAME critical section —
   that is what makes `.metrics reset` exact under reader domains: an
   [observe] racing the drain lands either wholly in the returned row or
   wholly in the next interval, never both and never neither. *)
type row = {
  r_name : string;
  r_count : int;
  r_sum_ns : int;
  r_max_ns : int;
  r_p50 : int;
  r_p95 : int;
  r_p99 : int;
}

let snapshot ?(reset = false) h =
  Mutex.protect h.mu (fun () ->
      let counts = Array.copy h.counts in
      let n = h.n and sum = h.sum_ns and maxv = h.max_ns in
      if reset then begin
        Array.fill h.counts 0 nbuckets 0;
        h.n <- 0;
        h.sum_ns <- 0;
        h.max_ns <- 0
      end;
      {
        r_name = h.name;
        r_count = n;
        r_sum_ns = sum;
        r_max_ns = maxv;
        r_p50 = percentile_of counts n maxv 50.;
        r_p95 = percentile_of counts n maxv 95.;
        r_p99 = percentile_of counts n maxv 99.;
      })

let rows ?(reset = false) () =
  all ()
  |> List.map (snapshot ~reset)
  |> List.sort (fun a b -> compare a.r_name b.r_name)

let reset h =
  Mutex.protect h.mu (fun () ->
      Array.fill h.counts 0 nbuckets 0;
      h.n <- 0;
      h.sum_ns <- 0;
      h.max_ns <- 0)

let reset_all () = List.iter reset (all ())

let format_ns ns =
  if ns < 1_000 then Printf.sprintf "%dns" ns
  else if ns < 1_000_000 then Printf.sprintf "%.1fus" (float_of_int ns /. 1e3)
  else if ns < 1_000_000_000 then Printf.sprintf "%.2fms" (float_of_int ns /. 1e6)
  else Printf.sprintf "%.2fs" (float_of_int ns /. 1e9)

(* Equi-depth key distributions for the query planner's statistics
   subsystem. Unlike the latency histograms above, these are value
   histograms: each bucket holds ~total/buckets rows of an index's key
   space, bounded by real observed keys (order-preserving
   [Value.index_key] strings), so skew shows up as narrow buckets and
   selectivity estimates come out of bucket arithmetic rather than a
   uniformity assumption. Immutable once built — `.analyze` rebuilds
   them from a full scan; incremental commit maintenance only bumps the
   cardinality counters that decide staleness. *)
module Dist = struct
  type t = {
    total : int;            (* rows summarized *)
    distinct : int;         (* distinct keys summarized *)
    lo : string;            (* smallest key ("" when empty) *)
    bounds : string array;  (* inclusive upper bound per bucket, ascending *)
    counts : int array;     (* rows per bucket *)
    uniques : int array;    (* distinct keys per bucket *)
  }

  let empty = { total = 0; distinct = 0; lo = ""; bounds = [||]; counts = [||]; uniques = [||] }
  let default_buckets = 32
  let total d = d.total
  let distinct d = d.distinct
  let buckets d = Array.length d.bounds

  (* [keys] sorted ascending, duplicates allowed. Bucket edges are pushed
     past runs of equal keys so no key straddles two buckets — that keeps
     the per-bucket distinct counts additive and eq-estimates sharp on
     heavy hitters (a hot key that fills a whole bucket estimates as the
     whole bucket). *)
  let of_sorted ?(buckets = default_buckets) keys =
    let n = Array.length keys in
    if n = 0 then empty
    else begin
      let per = max 1 ((n + buckets - 1) / buckets) in
      let bounds = ref [] and counts = ref [] and uniques = ref [] in
      let start = ref 0 in
      while !start < n do
        let stop = ref (min n (!start + per)) in
        while !stop < n && keys.(!stop) = keys.(!stop - 1) do
          incr stop
        done;
        let stop = !stop in
        let u = ref 1 in
        for i = !start + 1 to stop - 1 do
          if keys.(i) <> keys.(i - 1) then incr u
        done;
        bounds := keys.(stop - 1) :: !bounds;
        counts := (stop - !start) :: !counts;
        uniques := !u :: !uniques;
        start := stop
      done;
      {
        total = n;
        distinct = List.fold_left ( + ) 0 !uniques;
        lo = keys.(0);
        bounds = Array.of_list (List.rev !bounds);
        counts = Array.of_list (List.rev !counts);
        uniques = Array.of_list (List.rev !uniques);
      }
    end

  (* Estimated fraction of rows whose key equals [key]: rows-per-distinct
     within the containing bucket. *)
  let eq_fraction d key =
    if d.total = 0 then 0.
    else if key < d.lo then 0.
    else begin
      let nb = Array.length d.bounds in
      let rec go i =
        if i >= nb then 0.
        else if key <= d.bounds.(i) then
          float_of_int d.counts.(i)
          /. float_of_int (max 1 d.uniques.(i))
          /. float_of_int d.total
        else go (i + 1)
      in
      go 0
    end

  (* Estimated fraction of rows in the range bounded by [lo]/[hi]
     (either side optional; the bool is inclusivity, which at bucket
     granularity only matters for the half-bucket partial estimate).
     Buckets wholly inside count fully, partially-overlapped buckets
     count half — coarse, but monotone and cheap. *)
  let range_fraction d lo hi =
    if d.total = 0 then 0.
    else begin
      let nb = Array.length d.bounds in
      let rows = ref 0. in
      for i = 0 to nb - 1 do
        let bl = if i = 0 then d.lo else d.bounds.(i - 1) in
        let bh = d.bounds.(i) in
        let above_lo =
          match lo with
          | None -> `Full
          | Some (k, _) -> if k <= bl then `Full else if k > bh then `None else `Part
        in
        let below_hi =
          match hi with
          | None -> `Full
          | Some (k, _) -> if k >= bh then `Full else if k < bl then `None else `Part
        in
        let f =
          match (above_lo, below_hi) with
          | `None, _ | _, `None -> 0.
          | `Full, `Full -> 1.
          | _ -> 0.5
        in
        rows := !rows +. (f *. float_of_int d.counts.(i))
      done;
      min 1. (!rows /. float_of_int d.total)
    end

  let encode b d =
    Codec.put_int b d.total;
    Codec.put_int b d.distinct;
    Codec.put_string b d.lo;
    Codec.put_u32 b (Array.length d.bounds);
    Array.iter (Codec.put_string b) d.bounds;
    Array.iter (Codec.put_int b) d.counts;
    Array.iter (Codec.put_int b) d.uniques

  let decode c =
    let total = Codec.get_int c in
    let distinct = Codec.get_int c in
    let lo = Codec.get_string c in
    let nb = Codec.get_u32 c in
    let bounds = Array.init nb (fun _ -> Codec.get_string c) in
    let counts = Array.init nb (fun _ -> Codec.get_int c) in
    let uniques = Array.init nb (fun _ -> Codec.get_int c) in
    { total; distinct; lo; bounds; counts; uniques }
end

(* Sorted by name (like [rows]): histogram creation order depends on which
   code paths ran first, sorted output diffs stably. *)
let summary () =
  let rs = rows () in
  let namew = List.fold_left (fun w r -> max w (String.length r.r_name)) 9 rs in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "%-*s %10s %10s %10s %10s %10s %10s\n" namew "operation" "count" "p50" "p95"
       "p99" "max" "mean");
  List.iter
    (fun r ->
      let mean = if r.r_count = 0 then 0 else r.r_sum_ns / r.r_count in
      Buffer.add_string b
        (Printf.sprintf "%-*s %10d %10s %10s %10s %10s %10s\n" namew r.r_name r.r_count
           (format_ns r.r_p50) (format_ns r.r_p95) (format_ns r.r_p99) (format_ns r.r_max_ns)
           (format_ns mean)))
    rs;
  Buffer.contents b
