(** Slow-query log sink: arming threshold, a size-rotated JSON-lines file,
    and a bounded in-memory ring of recent entries for [.slow \[K\]].
    Process-global and mutex-protected — entries arrive from the writer
    domain and reader domains; a slow query is not a hot path. The entry
    JSON is assembled by the caller (the session layer owns the
    statement, trace id, queue-wait split and query profile). *)

val configure :
  ?log_path:string -> ?log_max_bytes:int -> ?keep:int -> threshold_ms:int -> unit -> unit
(** Arm the log: requests at or over [threshold_ms] get recorded.
    [threshold_ms < 0] disarms. [log_path] is optional — without it only
    the in-memory ring retains entries. [log_max_bytes] (default 8 MiB)
    caps the live file; on overflow it rotates once to [<path>.1].
    [keep] (default 128) sizes the ring. Resets retention. *)

val disarm : unit -> unit

val armed : unit -> bool

val threshold_ns : unit -> int
(** Armed threshold in nanoseconds; [max_int] when disarmed, so
    [dur >= threshold_ns ()] is the one branch on the request path. *)

val record : dur_ns:int -> string -> unit
(** Retain one entry (a complete JSON object, no trailing newline) in the
    ring and append it as a line to the log file if one is configured. *)

val worst : int -> string list
(** The K retained entries with the longest durations, worst first. *)

val retained : unit -> int
val clear : unit -> unit
