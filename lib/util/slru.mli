(** Sharded LRU map: N {!Lru} shards, each behind its own mutex, keys
    routed by [Hashtbl.hash]. Safe for concurrent use from multiple
    domains; recency (and therefore eviction) is per-shard. Backs the
    decoded-object cache so reader domains probe it in parallel. *)

type ('k, 'a) t

val create : ?shards:int -> int -> ('k, 'a) t
(** [create ?shards cap]: total capacity [cap] split evenly across
    [shards] (default 16, clamped so every shard holds at least one
    entry). [cap <= 0] still builds a structure; callers treat that as
    "disabled" via {!capacity}. *)

val capacity : ('k, 'a) t -> int
val nshards : ('k, 'a) t -> int

val length : ('k, 'a) t -> int
(** Total entries across shards (each shard read under its lock; the sum
    is not one atomic cut). *)

val find : ('k, 'a) t -> 'k -> 'a option
(** Lookup, refreshing recency within the key's shard. *)

val mem : ('k, 'a) t -> 'k -> bool

val add : ('k, 'a) t -> 'k -> 'a -> unit
(** Insert or replace, then evict least-recent entries of that shard while
    it is over its share of the capacity. *)

val remove : ('k, 'a) t -> 'k -> bool
(** Drop the binding if present; [true] when it was resident. *)

val clear : ('k, 'a) t -> unit
