(* Doubly-linked recency list + hashtable from key to node. The list head is
   the least recently used entry, the tail the most recent. *)

type ('k, 'a) node = {
  key : 'k;
  mutable value : 'a;
  mutable prev : ('k, 'a) node option;
  mutable next : ('k, 'a) node option;
}

type ('k, 'a) t = {
  cap : int;
  tbl : ('k, ('k, 'a) node) Hashtbl.t;
  mutable head : ('k, 'a) node option; (* least recent *)
  mutable tail : ('k, 'a) node option; (* most recent *)
}

let create cap = { cap; tbl = Hashtbl.create (max 16 cap); head = None; tail = None }
let capacity t = t.cap
let length t = Hashtbl.length t.tbl
let mem t k = Hashtbl.mem t.tbl k

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_tail t n =
  n.prev <- t.tail;
  n.next <- None;
  (match t.tail with Some old -> old.next <- Some n | None -> t.head <- Some n);
  t.tail <- Some n

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some n ->
      unlink t n;
      push_tail t n;
      Some n.value

let peek t k =
  match Hashtbl.find_opt t.tbl k with None -> None | Some n -> Some n.value

let add t k v =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
      n.value <- v;
      unlink t n;
      push_tail t n
  | None ->
      let n = { key = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.tbl k n;
      push_tail t n

let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl k

let evict t ok =
  let rec scan = function
    | None -> None
    | Some n ->
        if ok n.key n.value then begin
          unlink t n;
          Hashtbl.remove t.tbl n.key;
          Some (n.key, n.value)
        end
        else scan n.next
  in
  scan t.head

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None

let iter t f =
  let rec go = function
    | None -> ()
    | Some n ->
        let next = n.next in
        f n.key n.value;
        go next
  in
  go t.head
