(** Log-bucketed latency histograms per operation class. Bucket [i] covers
    [2^i, 2^(i+1)-1] ns, so percentile estimates carry at most ~2x relative
    error, clamped to the observed max. Enabled by default (the sites are
    coarse operation boundaries); [set_enabled false] turns [time] into a
    bare call. Process-global; [observe] takes a per-histogram mutex, so
    observations from the server's reader domains and the writer domain
    never tear a tally. Readers of a histogram (count/percentile/summary)
    are lock-free and may observe a concurrent update mid-flight, which
    for monotonic tallies only ever under-reports in-flight samples. *)

type t

val enabled : unit -> bool
val set_enabled : bool -> unit

val create : string -> t
(** Find-or-create the histogram registered under this name. *)

val find : string -> t option
val all : unit -> t list
(** All registered histograms, in creation order. *)

val name : t -> string

val observe : t -> int -> unit
(** Record one duration in nanoseconds (negative values clamp to 0).
    Unconditional — the enabled flag gates [time], not [observe]. *)

val time : t -> (unit -> 'a) -> 'a
(** Run a thunk and record its duration (also on exception). When disabled,
    calls the thunk directly. *)

val count : t -> int
val sum_ns : t -> int
val max_ns : t -> int
val mean_ns : t -> float

val percentile : t -> float -> int
(** [percentile h p] for [p] in (0,100]: the upper bound of the bucket
    containing the p-th percentile rank, clamped to the observed max.
    0 when empty. *)

val bucket_index : int -> int
(** The bucket a duration falls in (exposed for tests). *)

type row = {
  r_name : string;
  r_count : int;
  r_sum_ns : int;
  r_max_ns : int;
  r_p50 : int;
  r_p95 : int;
  r_p99 : int;
}
(** One consistent cut of a histogram: count, sum, max and quantiles all
    describing the same observation set. *)

val snapshot : ?reset:bool -> t -> row
(** Snapshot one histogram under its mutex. [~reset:true] zeroes the
    tallies inside the same critical section, so a concurrent [observe]
    lands either wholly in the returned row or wholly in the next
    interval — never lost, never double-counted. *)

val rows : ?reset:bool -> unit -> row list
(** [snapshot] of every registered histogram, sorted by name. Each
    histogram's snapshot(+reset) is individually atomic. *)

val reset : t -> unit
val reset_all : unit -> unit

val format_ns : int -> string
(** Human duration: ns / us / ms / s with sensible precision. *)

val summary : unit -> string
(** A table of every registered histogram: count, p50, p95, p99, max, mean. *)

(** Equi-depth key-distribution histograms for planner statistics: each
    bucket covers ~total/buckets rows of an order-preserving key space,
    bounded by real observed keys, so selectivity estimates track skew.
    Immutable once built (rebuilt by `.analyze`). *)
module Dist : sig
  type t

  val empty : t
  val default_buckets : int

  val of_sorted : ?buckets:int -> string array -> t
  (** Build from keys sorted ascending (duplicates allowed). Bucket edges
      never split a run of equal keys. *)

  val total : t -> int
  val distinct : t -> int
  val buckets : t -> int

  val eq_fraction : t -> string -> float
  (** Estimated fraction of rows equal to the key: rows-per-distinct of
      the containing bucket. 0 when empty or out of range. *)

  val range_fraction : t -> (string * bool) option -> (string * bool) option -> float
  (** [range_fraction d lo hi]: estimated fraction of rows between the
      optional bounds (bool = inclusive). Whole buckets count fully,
      boundary buckets half. *)

  val encode : Buffer.t -> t -> unit
  val decode : Codec.cursor -> t
end
