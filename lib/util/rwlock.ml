(* Writer-preferring reader/writer lock on Mutex + Condition.

   The serving layer uses one of these as the engine gate: reader domains
   hold it shared for the duration of a read-only request, the writer
   domain holds it exclusively for anything that mutates. Writer
   preference (readers queue behind a waiting writer) keeps a steady read
   load from starving commits. *)

type t = {
  mu : Mutex.t;
  can_read : Condition.t;
  can_write : Condition.t;
  mutable readers : int; (* active shared holders *)
  mutable writer : bool; (* exclusive holder present *)
  mutable writers_waiting : int;
}

let create () =
  {
    mu = Mutex.create ();
    can_read = Condition.create ();
    can_write = Condition.create ();
    readers = 0;
    writer = false;
    writers_waiting = 0;
  }

let lock_read t =
  Mutex.protect t.mu (fun () ->
      while t.writer || t.writers_waiting > 0 do
        Condition.wait t.can_read t.mu
      done;
      t.readers <- t.readers + 1)

let unlock_read t =
  Mutex.protect t.mu (fun () ->
      t.readers <- t.readers - 1;
      if t.readers = 0 then Condition.signal t.can_write)

let lock_write t =
  Mutex.protect t.mu (fun () ->
      t.writers_waiting <- t.writers_waiting + 1;
      while t.writer || t.readers > 0 do
        Condition.wait t.can_write t.mu
      done;
      t.writers_waiting <- t.writers_waiting - 1;
      t.writer <- true)

let unlock_write t =
  Mutex.protect t.mu (fun () ->
      t.writer <- false;
      if t.writers_waiting > 0 then Condition.signal t.can_write
      else Condition.broadcast t.can_read)

let read t f =
  lock_read t;
  Fun.protect ~finally:(fun () -> unlock_read t) f

let write t f =
  lock_write t;
  Fun.protect ~finally:(fun () -> unlock_write t) f
