(* Span-based tracer: nested spans and instant events over a monotonicized
   clock, recorded into a fixed-size ring buffer and exportable as Chrome
   trace-event JSON (load the dump in chrome://tracing or ui.perfetto.dev).

   Compiled into every build: each emit site costs one flag check when
   tracing is disabled (E18 guards that), and one clock read + ring store
   when enabled. Process-global, like Stats; ring mutations take a mutex
   so spans emitted from reader domains never tear the buffer. The
   nesting-depth counter is advisory under concurrency (display only). *)

let enabled_flag = ref false
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

(* gettimeofday clamped non-decreasing: a wall-clock step backwards (NTP)
   must never produce a negative span duration. The clamp cell is a plain
   ref read/written racily across domains — int stores don't tear, and a
   lost clamp update only weakens the (already best-effort) monotonicity
   across domains, never within one timing pair on one domain. *)
let last_ns = ref 0

let now_ns () =
  let t = int_of_float (Unix.gettimeofday () *. 1e9) in
  let t = if t > !last_ns then t else !last_ns in
  last_ns := t;
  t

type phase = Complete | Instant

type span = {
  sp_id : int; (* unique per recorded span, across domains *)
  sp_trace : int; (* client-assigned trace id; 0 = untraced *)
  sp_name : string;
  sp_cat : string;
  sp_start_ns : int;
  sp_dur_ns : int; (* 0 for instants *)
  sp_depth : int; (* nesting depth at emission *)
  sp_args : (string * string) list;
  sp_phase : phase;
}

(* Span ids come from one process-global atomic, so they stay unique under
   concurrent emission from reader domains (asserted by the multi-domain
   stress test). *)
let next_span_id = Atomic.make 1
let fresh_span_id () = Atomic.fetch_and_add next_span_id 1

(* The ambient trace id is domain-local: a request executes entirely on
   one domain (writer, or the reader domain that popped its job), so
   stamping it into DLS around the request lets every span emitted below
   — session, query profiler, WAL commit — pick it up without threading a
   parameter through each layer. *)
let trace_key = Domain.DLS.new_key (fun () -> 0)
let current_trace_id () = Domain.DLS.get trace_key

let with_trace_id id f =
  let prev = Domain.DLS.get trace_key in
  Domain.DLS.set trace_key id;
  Fun.protect ~finally:(fun () -> Domain.DLS.set trace_key prev) f

let id_to_string id = Printf.sprintf "%012x" (id land max_int)

(* Cosmetic label for cross-process correlation: exported as the Chrome
   process_name metadata event, so a primary dump and a standby dump keep
   their roles apart when viewed together. *)
let process_label = ref ""
let set_process_label s = process_label := s

(* -- ring buffer of completed spans --------------------------------------- *)

let default_capacity = 65_536
let ring = ref (Array.make default_capacity None)
let head = ref 0 (* next write position *)
let total = ref 0 (* spans ever recorded (wraparound overwrites oldest) *)

let ring_mu = Mutex.create ()
let capacity () = Array.length !ring

let set_capacity n =
  Mutex.protect ring_mu (fun () ->
      ring := Array.make (max 1 n) None;
      head := 0;
      total := 0)

let clear () =
  Mutex.protect ring_mu (fun () ->
      Array.fill !ring 0 (Array.length !ring) None;
      head := 0;
      total := 0)

let record sp =
  Mutex.protect ring_mu (fun () ->
      let r = !ring in
      r.(!head) <- Some sp;
      head := (!head + 1) mod Array.length r;
      incr total)

let total_recorded () = !total

(* Retained spans, oldest first (completion order). *)
let spans () =
  Mutex.protect ring_mu (fun () ->
      let r = !ring in
      let cap = Array.length r in
      let n = min !total cap in
      List.filter_map
        (fun i -> r.((((!head - n + i) mod cap) + cap) mod cap))
        (List.init n Fun.id))

(* -- emission -------------------------------------------------------------- *)

let depth = ref 0

let with_span ?(cat = "ode") ?(args = []) name f =
  if not !enabled_flag then f ()
  else begin
    let d = !depth in
    depth := d + 1;
    let t0 = now_ns () in
    let finish () =
      depth := d;
      record
        {
          sp_id = fresh_span_id ();
          sp_trace = current_trace_id ();
          sp_name = name;
          sp_cat = cat;
          sp_start_ns = t0;
          sp_dur_ns = now_ns () - t0;
          sp_depth = d;
          sp_args = args;
          sp_phase = Complete;
        }
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let instant ?(cat = "ode") ?(args = []) name =
  if !enabled_flag then
    record
      {
        sp_id = fresh_span_id ();
        sp_trace = current_trace_id ();
        sp_name = name;
        sp_cat = cat;
        sp_start_ns = now_ns ();
        sp_dur_ns = 0;
        sp_depth = !depth;
        sp_args = args;
        sp_phase = Instant;
      }

let emit ?(cat = "ode") ?(args = []) ?(depth = 0) ~start_ns ~dur_ns name =
  if !enabled_flag then
    record
      {
        sp_id = fresh_span_id ();
        sp_trace = current_trace_id ();
        sp_name = name;
        sp_cat = cat;
        sp_start_ns = start_ns;
        sp_dur_ns = max 0 dur_ns;
        sp_depth = depth;
        sp_args = args;
        sp_phase = Complete;
      }

(* -- Chrome trace-event export --------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let event_json b pid sp =
  let us ns = float_of_int ns /. 1e3 in
  Buffer.add_string b
    (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"pid\":%d,\"tid\":1,\"ts\":%.3f"
       (json_escape sp.sp_name) (json_escape sp.sp_cat) pid (us sp.sp_start_ns));
  (match sp.sp_phase with
  | Complete -> Buffer.add_string b (Printf.sprintf ",\"ph\":\"X\",\"dur\":%.3f" (us sp.sp_dur_ns))
  | Instant -> Buffer.add_string b ",\"ph\":\"i\",\"s\":\"t\"");
  let args =
    ("span_id", string_of_int sp.sp_id)
    :: (if sp.sp_trace <> 0 then [ ("trace_id", id_to_string sp.sp_trace) ] else [])
    @ sp.sp_args
  in
  Buffer.add_string b ",\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
    args;
  Buffer.add_string b "}}"

(* Real OS pid in the events (not the fixed 1 of earlier versions): a
   primary's dump and a standby's dump concatenate into one viewable
   trace with the processes kept apart, and trace_id args correlate the
   request's spans across them. *)
let to_chrome_json () =
  let b = Buffer.create 4096 in
  let pid = Unix.getpid () in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  if !process_label <> "" then begin
    first := false;
    Buffer.add_string b
      (Printf.sprintf
         "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":1,\"args\":{\"name\":\"%s\"}}"
         pid (json_escape !process_label))
  end;
  List.iter
    (fun sp ->
      if not !first then Buffer.add_string b ",\n";
      first := false;
      event_json b pid sp)
    (spans ());
  Buffer.add_string b "]}\n";
  Buffer.contents b

let dump path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_chrome_json ()))
