let of_int n =
  let v = Int64.logxor (Int64.of_int n) Int64.min_int in
  let b = Buffer.create 8 in
  for i = 7 downto 0 do
    Buffer.add_char b (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL)))
  done;
  Buffer.contents b

let of_float f =
  let bits = Int64.bits_of_float f in
  (* Positive values: set the sign bit so they sort above negatives.
     Negative values: complement all bits so magnitude order reverses. *)
  let v = if Int64.compare bits 0L >= 0 then Int64.logxor bits Int64.min_int else Int64.lognot bits in
  let b = Buffer.create 8 in
  for i = 7 downto 0 do
    Buffer.add_char b (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL)))
  done;
  Buffer.contents b

let of_string s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      if ch = '\000' then Buffer.add_string b "\000\255" else Buffer.add_char b ch)
    s;
  Buffer.add_string b "\000\000";
  Buffer.contents b

let of_bool v = if v then "\001" else "\000"
let concat = String.concat ""

let succ_prefix p =
  let b = Bytes.of_string p in
  let rec bump i =
    if i < 0 then None
    else if Bytes.get b i = '\255' then begin
      bump (i - 1)
    end
    else begin
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) + 1));
      Some (Bytes.sub_string b 0 (i + 1))
    end
  in
  bump (Bytes.length b - 1)
