(* Sharded LRU: N independent Lru shards, each behind its own mutex, with
   keys routed by [Hashtbl.hash]. Recency is therefore per-shard — an
   acceptable approximation that buys uncontended concurrent access from
   reader domains. Capacity is divided evenly across shards, so a shard
   evicts based on its own share. *)

type ('k, 'a) shard = { mu : Mutex.t; lru : ('k, 'a) Lru.t }
type ('k, 'a) t = { shards : ('k, 'a) shard array; cap : int }

let create ?(shards = 16) cap =
  let shards = max 1 (min shards (max 1 cap)) in
  let per = max 1 ((cap + shards - 1) / shards) in
  {
    shards =
      Array.init shards (fun _ -> { mu = Mutex.create (); lru = Lru.create per });
    cap;
  }

let capacity t = t.cap
let nshards t = Array.length t.shards

let shard_of t k =
  t.shards.(Hashtbl.hash k land max_int mod Array.length t.shards)

let length t =
  Array.fold_left (fun acc s -> acc + Mutex.protect s.mu (fun () -> Lru.length s.lru)) 0 t.shards

let find t k =
  let s = shard_of t k in
  Mutex.protect s.mu (fun () -> Lru.find s.lru k)

let mem t k =
  let s = shard_of t k in
  Mutex.protect s.mu (fun () -> Lru.mem s.lru k)

let add t k v =
  let s = shard_of t k in
  Mutex.protect s.mu (fun () ->
      Lru.add s.lru k v;
      while Lru.length s.lru > Lru.capacity s.lru do
        ignore (Lru.evict s.lru (fun _ _ -> true))
      done)

(* Remove the key if present; true when it was resident. *)
let remove t k =
  let s = shard_of t k in
  Mutex.protect s.mu (fun () ->
      if Lru.mem s.lru k then begin
        Lru.remove s.lru k;
        true
      end
      else false)

let clear t =
  Array.iter (fun s -> Mutex.protect s.mu (fun () -> Lru.clear s.lru)) t.shards
