(* Slow-query log: a process-global sink for requests that ran longer than
   the armed threshold. Two outputs per entry: a structured JSON line
   appended to a size-rotated log file (operator greps it, or tails it
   into a collector), and a bounded in-memory ring so `.slow [K]` can show
   the worst retained entries over the wire without touching the file.

   The entry JSON itself is assembled by the session layer (it holds the
   statement, trace id, queue-wait split and the query profile); this
   module only owns arming, retention and rotation. One mutex covers the
   file handle and the ring — entries arrive from the writer domain and
   reader domains alike, and a slow query is by definition not a hot
   path. *)

type entry = { e_dur_ns : int; e_json : string }

let mu = Mutex.create ()
let threshold = ref max_int (* ns; max_int = disarmed *)
let path : string option ref = ref None
let max_bytes = ref (8 * 1024 * 1024)
let retain = ref 128
let ring : entry option array ref = ref (Array.make 128 None)
let head = ref 0
let oc : out_channel option ref = ref None

let armed () = !threshold <> max_int
let threshold_ns () = !threshold

let close_file () =
  (match !oc with Some c -> (try close_out c with _ -> ()) | None -> ());
  oc := None

let configure ?log_path ?(log_max_bytes = 8 * 1024 * 1024) ?(keep = 128) ~threshold_ms () =
  Mutex.protect mu (fun () ->
      threshold := (if threshold_ms < 0 then max_int else threshold_ms * 1_000_000);
      path := log_path;
      max_bytes := max 4096 log_max_bytes;
      retain := max 1 keep;
      ring := Array.make !retain None;
      head := 0;
      close_file ())

let disarm () =
  Mutex.protect mu (fun () ->
      threshold := max_int;
      path := None;
      close_file ())

(* Single-generation rotation: when the live file exceeds the cap it is
   renamed to <path>.1 (replacing the previous generation) and a fresh
   file is opened. Bounded disk (2x cap), and the tail of history
   survives a scrape. *)
let rotate_locked p =
  close_file ();
  (try Sys.rename p (p ^ ".1") with Sys_error _ -> ())

let out_locked () =
  match !path with
  | None -> None
  | Some p -> (
      (match !oc with
      | Some c when pos_out c > !max_bytes ->
          rotate_locked p
      | _ -> ());
      match !oc with
      | Some c -> Some c
      | None ->
          (try
             let c = open_out_gen [ Open_append; Open_creat ] 0o644 p in
             oc := Some c
           with Sys_error _ -> ());
          !oc)

let record ~dur_ns json =
  Mutex.protect mu (fun () ->
      let r = !ring in
      r.(!head) <- Some { e_dur_ns = dur_ns; e_json = json };
      head := (!head + 1) mod Array.length r;
      (match out_locked () with
      | Some c ->
          output_string c json;
          output_char c '\n';
          flush c
      | None -> ()))

let retained () =
  Mutex.protect mu (fun () ->
      Array.fold_left (fun n e -> match e with Some _ -> n + 1 | None -> n) 0 !ring)

let worst k =
  let entries =
    Mutex.protect mu (fun () ->
        Array.fold_left (fun acc e -> match e with Some e -> e :: acc | None -> acc) [] !ring)
  in
  entries
  |> List.sort (fun a b -> compare b.e_dur_ns a.e_dur_ns)
  |> List.filteri (fun i _ -> i < k)
  |> List.map (fun e -> e.e_json)

let clear () =
  Mutex.protect mu (fun () ->
      ring := Array.make !retain None;
      head := 0)
