(** Binary encoding and decoding of primitive values.

    All multi-byte quantities are little-endian. Encoders append to a
    {!Buffer.t}; decoders read from a string through a mutable cursor.
    Decoding past the end of the input, or reading malformed data, raises
    {!Corrupt}. *)

exception Corrupt of string
(** Raised when decoding encounters truncated or malformed input. *)

(** {1 Encoding} *)

val put_u8 : Buffer.t -> int -> unit
(** [put_u8 b n] appends the low byte of [n]. *)

val put_u16 : Buffer.t -> int -> unit
val put_u32 : Buffer.t -> int -> unit

val put_i64 : Buffer.t -> int64 -> unit

val put_int : Buffer.t -> int -> unit
(** [put_int b n] appends a native OCaml int as a signed 64-bit value. *)

val put_float : Buffer.t -> float -> unit
(** IEEE-754 bit pattern, 8 bytes. *)

val put_bool : Buffer.t -> bool -> unit

val put_string : Buffer.t -> string -> unit
(** Length-prefixed (u32) byte string. *)

val put_raw : Buffer.t -> string -> unit
(** Appends the bytes with no length prefix. *)

(** {1 Decoding} *)

type cursor
(** A read position within an immutable string. *)

val cursor : ?pos:int -> string -> cursor
val pos : cursor -> int
val remaining : cursor -> int
val at_end : cursor -> bool

val get_u8 : cursor -> int
val get_u16 : cursor -> int
val get_u32 : cursor -> int
val get_i64 : cursor -> int64
val get_int : cursor -> int
val get_float : cursor -> float
val get_bool : cursor -> bool
val get_string : cursor -> string
val get_raw : cursor -> int -> string

(** {1 Checksums} *)

val fnv64 : string -> int64
(** FNV-1a 64-bit hash, used as a WAL record checksum. *)

val fnv64_bytes : bytes -> pos:int -> len:int -> int64
(** Same hash over a byte-buffer slice, without copying. Used for page
    checksums where the page image lives in a reusable [bytes]. *)
