(** Render layer over {!Stats} and {!Histogram}: one function per
    exposition format. Values are read through the registries' own
    domain-safe accessors, so rendering is safe on the writer domain while
    reader domains emit. *)

val sanitize : string -> string
(** Dots and other non-identifier characters become underscores —
    Prometheus metric names admit only [\[a-zA-Z0-9_\]]. *)

val metric_name : string -> string
(** [sanitize] plus the ["ode_"] family prefix. *)

val prometheus : unit -> string
(** Prometheus text exposition: every Stats counter ([# TYPE ... counter],
    or gauge for set-style slots), every sampled gauge, and every
    histogram as a summary with 0.5/0.95/0.99 quantiles plus [_sum] and
    [_count]. *)

val json_escape : string -> string
(** JSON string-body escaping, shared by every layer that renders JSON by
    hand (metrics, slow-query entries). *)

val json : unit -> string
(** The same snapshot as one JSON object:
    [{"counters":{...},"gauges":{...},"histograms":{name:{count,sum_ns,
    max_ns,p50_ns,p95_ns,p99_ns}}}]. *)
