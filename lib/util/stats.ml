type snapshot = {
  pages_read : int;
  pages_written : int;
  pool_hits : int;
  pool_misses : int;
  wal_appends : int;
  wal_syncs : int;
  index_probes : int;
  objects_scanned : int;
  objects_fetched : int;
  constraints_checked : int;
  triggers_fired : int;
}

let zero =
  {
    pages_read = 0;
    pages_written = 0;
    pool_hits = 0;
    pool_misses = 0;
    wal_appends = 0;
    wal_syncs = 0;
    index_probes = 0;
    objects_scanned = 0;
    objects_fetched = 0;
    constraints_checked = 0;
    triggers_fired = 0;
  }

let cur = ref zero

let incr_pages_read () = cur := { !cur with pages_read = !cur.pages_read + 1 }
let incr_pages_written () = cur := { !cur with pages_written = !cur.pages_written + 1 }
let incr_pool_hits () = cur := { !cur with pool_hits = !cur.pool_hits + 1 }
let incr_pool_misses () = cur := { !cur with pool_misses = !cur.pool_misses + 1 }
let incr_wal_appends () = cur := { !cur with wal_appends = !cur.wal_appends + 1 }
let incr_wal_syncs () = cur := { !cur with wal_syncs = !cur.wal_syncs + 1 }
let incr_index_probes () = cur := { !cur with index_probes = !cur.index_probes + 1 }
let incr_objects_scanned () = cur := { !cur with objects_scanned = !cur.objects_scanned + 1 }
let incr_objects_fetched () = cur := { !cur with objects_fetched = !cur.objects_fetched + 1 }

let incr_constraints_checked () =
  cur := { !cur with constraints_checked = !cur.constraints_checked + 1 }

let incr_triggers_fired () = cur := { !cur with triggers_fired = !cur.triggers_fired + 1 }

let snapshot () = !cur
let reset () = cur := zero

let diff a b =
  {
    pages_read = a.pages_read - b.pages_read;
    pages_written = a.pages_written - b.pages_written;
    pool_hits = a.pool_hits - b.pool_hits;
    pool_misses = a.pool_misses - b.pool_misses;
    wal_appends = a.wal_appends - b.wal_appends;
    wal_syncs = a.wal_syncs - b.wal_syncs;
    index_probes = a.index_probes - b.index_probes;
    objects_scanned = a.objects_scanned - b.objects_scanned;
    objects_fetched = a.objects_fetched - b.objects_fetched;
    constraints_checked = a.constraints_checked - b.constraints_checked;
    triggers_fired = a.triggers_fired - b.triggers_fired;
  }

let pp ppf s =
  Format.fprintf ppf
    "pages r/w %d/%d  pool hit/miss %d/%d  wal app/sync %d/%d  probes %d  \
     scanned %d  fetched %d  constraints %d  fired %d"
    s.pages_read s.pages_written s.pool_hits s.pool_misses s.wal_appends
    s.wal_syncs s.index_probes s.objects_scanned s.objects_fetched
    s.constraints_checked s.triggers_fired
