type snapshot = {
  pages_read : int;
  pages_written : int;
  pool_hits : int;
  pool_misses : int;
  wal_appends : int;
  wal_syncs : int;
  index_probes : int;
  objects_scanned : int;
  objects_fetched : int;
  constraints_checked : int;
  triggers_fired : int;
  wal_torn_bytes : int;
  recovery_replayed : int;
  checksum_failures : int;
  orphans_reclaimed : int;
  journal_pages_restored : int;
  pages_reformatted : int;
  io_retries : int;
  obj_cache_hits : int;
  obj_cache_misses : int;
  obj_cache_invalidations : int;
  cursor_pages_read : int;
}

let zero =
  {
    pages_read = 0;
    pages_written = 0;
    pool_hits = 0;
    pool_misses = 0;
    wal_appends = 0;
    wal_syncs = 0;
    index_probes = 0;
    objects_scanned = 0;
    objects_fetched = 0;
    constraints_checked = 0;
    triggers_fired = 0;
    wal_torn_bytes = 0;
    recovery_replayed = 0;
    checksum_failures = 0;
    orphans_reclaimed = 0;
    journal_pages_restored = 0;
    pages_reformatted = 0;
    io_retries = 0;
    obj_cache_hits = 0;
    obj_cache_misses = 0;
    obj_cache_invalidations = 0;
    cursor_pages_read = 0;
  }

let cur = ref zero

let incr_pages_read () = cur := { !cur with pages_read = !cur.pages_read + 1 }
let incr_pages_written () = cur := { !cur with pages_written = !cur.pages_written + 1 }
let incr_pool_hits () = cur := { !cur with pool_hits = !cur.pool_hits + 1 }
let incr_pool_misses () = cur := { !cur with pool_misses = !cur.pool_misses + 1 }
let incr_wal_appends () = cur := { !cur with wal_appends = !cur.wal_appends + 1 }
let incr_wal_syncs () = cur := { !cur with wal_syncs = !cur.wal_syncs + 1 }
let incr_index_probes () = cur := { !cur with index_probes = !cur.index_probes + 1 }
let incr_objects_scanned () = cur := { !cur with objects_scanned = !cur.objects_scanned + 1 }
let incr_objects_fetched () = cur := { !cur with objects_fetched = !cur.objects_fetched + 1 }

let incr_constraints_checked () =
  cur := { !cur with constraints_checked = !cur.constraints_checked + 1 }

let incr_triggers_fired () = cur := { !cur with triggers_fired = !cur.triggers_fired + 1 }

let add_wal_torn_bytes n = cur := { !cur with wal_torn_bytes = !cur.wal_torn_bytes + n }

let incr_recovery_replayed () =
  cur := { !cur with recovery_replayed = !cur.recovery_replayed + 1 }

let incr_checksum_failures () =
  cur := { !cur with checksum_failures = !cur.checksum_failures + 1 }

let add_orphans_reclaimed n =
  cur := { !cur with orphans_reclaimed = !cur.orphans_reclaimed + n }

let incr_journal_pages_restored () =
  cur := { !cur with journal_pages_restored = !cur.journal_pages_restored + 1 }

let incr_pages_reformatted () =
  cur := { !cur with pages_reformatted = !cur.pages_reformatted + 1 }

let incr_io_retries () = cur := { !cur with io_retries = !cur.io_retries + 1 }

let incr_obj_cache_hits () = cur := { !cur with obj_cache_hits = !cur.obj_cache_hits + 1 }

let incr_obj_cache_misses () =
  cur := { !cur with obj_cache_misses = !cur.obj_cache_misses + 1 }

let incr_obj_cache_invalidations () =
  cur := { !cur with obj_cache_invalidations = !cur.obj_cache_invalidations + 1 }

let incr_cursor_pages_read () =
  cur := { !cur with cursor_pages_read = !cur.cursor_pages_read + 1 }

let snapshot () = !cur
let reset () = cur := zero

let diff a b =
  {
    pages_read = a.pages_read - b.pages_read;
    pages_written = a.pages_written - b.pages_written;
    pool_hits = a.pool_hits - b.pool_hits;
    pool_misses = a.pool_misses - b.pool_misses;
    wal_appends = a.wal_appends - b.wal_appends;
    wal_syncs = a.wal_syncs - b.wal_syncs;
    index_probes = a.index_probes - b.index_probes;
    objects_scanned = a.objects_scanned - b.objects_scanned;
    objects_fetched = a.objects_fetched - b.objects_fetched;
    constraints_checked = a.constraints_checked - b.constraints_checked;
    triggers_fired = a.triggers_fired - b.triggers_fired;
    wal_torn_bytes = a.wal_torn_bytes - b.wal_torn_bytes;
    recovery_replayed = a.recovery_replayed - b.recovery_replayed;
    checksum_failures = a.checksum_failures - b.checksum_failures;
    orphans_reclaimed = a.orphans_reclaimed - b.orphans_reclaimed;
    journal_pages_restored = a.journal_pages_restored - b.journal_pages_restored;
    pages_reformatted = a.pages_reformatted - b.pages_reformatted;
    io_retries = a.io_retries - b.io_retries;
    obj_cache_hits = a.obj_cache_hits - b.obj_cache_hits;
    obj_cache_misses = a.obj_cache_misses - b.obj_cache_misses;
    obj_cache_invalidations = a.obj_cache_invalidations - b.obj_cache_invalidations;
    cursor_pages_read = a.cursor_pages_read - b.cursor_pages_read;
  }

let pp ppf s =
  Format.fprintf ppf
    "pages r/w %d/%d  pool hit/miss %d/%d  wal app/sync %d/%d  probes %d  \
     scanned %d  fetched %d  constraints %d  fired %d  ocache hit/miss/inv \
     %d/%d/%d  cursor pages %d"
    s.pages_read s.pages_written s.pool_hits s.pool_misses s.wal_appends
    s.wal_syncs s.index_probes s.objects_scanned s.objects_fetched
    s.constraints_checked s.triggers_fired s.obj_cache_hits s.obj_cache_misses
    s.obj_cache_invalidations s.cursor_pages_read

let pp_recovery ppf s =
  Format.fprintf ppf
    "replayed %d  torn bytes %d  checksum failures %d  orphans reclaimed %d  \
     journal pages restored %d  pages reformatted %d  io retries %d"
    s.recovery_replayed s.wal_torn_bytes s.checksum_failures
    s.orphans_reclaimed s.journal_pages_restored s.pages_reformatted
    s.io_retries
