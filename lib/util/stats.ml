(* Global operation counters, kept in a registry of named slots: adding an
   instrumentation point is one [register] call, and snapshot/diff/pp/to_list
   all derive from the registry instead of being edited in four places.
   Slots are [Atomic.t] cells so bumps from reader domains and the writer
   domain never lose updates; a snapshot is the plain int array of live
   values at the time it was taken, read through the named accessors. *)

type group = Workload | Recovery
type kind = Counter | Gauge
type snapshot = int array

type def = { d_name : string; d_group : group; d_kind : kind }

let defs : def list ref = ref [] (* newest first *)
let ncounters = ref 0
let values : int Atomic.t array ref = ref (Array.init 32 (fun _ -> Atomic.make 0))

(* Registration happens at module-initialization time, before any domain is
   spawned, so the registry itself needs no lock. *)
let register ?(group = Workload) ?(kind = Counter) name =
  let id = !ncounters in
  incr ncounters;
  if id >= Array.length !values then begin
    let bigger = Array.init (2 * Array.length !values) (fun _ -> Atomic.make 0) in
    Array.blit !values 0 bigger 0 (Array.length !values);
    values := bigger
  end;
  defs := { d_name = name; d_group = group; d_kind = kind } :: !defs;
  id

let kind_of name =
  match List.find_opt (fun d -> d.d_name = name) !defs with
  | Some d -> d.d_kind
  | None -> Counter

(* Live gauges: sampled (not stored) values read through a callback at
   exposition time — current connections, queue depth, cache residency.
   Unlike counters these are registered by the owning subsystem when it
   comes up (a server, a database), so the registry takes a lock and a
   re-registration under the same name replaces the sampler: reopening a
   database or restarting an embedded server keeps the gauge pointing at
   the live instance. Samplers must be safe to call from the domain that
   renders metrics (the server's writer domain). *)
let gauges_mu = Mutex.create ()
let gauge_defs : (string * (unit -> int)) list ref = ref []

let register_gauge name fn =
  Mutex.protect gauges_mu (fun () ->
      gauge_defs := (name, fn) :: List.remove_assoc name !gauge_defs)

let unregister_gauge name =
  Mutex.protect gauges_mu (fun () ->
      gauge_defs := List.remove_assoc name !gauge_defs)

let gauges () =
  let defs = Mutex.protect gauges_mu (fun () -> !gauge_defs) in
  List.sort compare
    (List.map (fun (n, fn) -> (n, try fn () with _ -> 0)) defs)

let bump id = ignore (Atomic.fetch_and_add (!values).(id) 1)
let bump_by id n = ignore (Atomic.fetch_and_add (!values).(id) n)
let set id n = Atomic.set (!values).(id) n

let snapshot () = Array.init !ncounters (fun i -> Atomic.get (!values).(i))
let reset () = Array.iter (fun c -> Atomic.set c 0) !values
let zero () = Array.make !ncounters 0

(* A slot read that tolerates short arrays, so snapshots taken before a
   late [register] (module initialization order) still diff cleanly. *)
let slot s id = if id < Array.length s then s.(id) else 0

let diff a b = Array.init (max (Array.length a) (Array.length b)) (fun i -> slot a i - slot b i)
let combine a b = Array.init (max (Array.length a) (Array.length b)) (fun i -> slot a i + slot b i)

let accum ~into a b =
  for i = 0 to Array.length into - 1 do
    into.(i) <- into.(i) + slot a i - slot b i
  done

let registered () = List.rev_map (fun d -> d.d_name) !defs

let to_list s =
  List.mapi (fun i d -> (d.d_name, slot s i)) (List.rev !defs)

let get s name =
  match List.assoc_opt name (to_list s) with Some v -> v | None -> 0

(* -- the engine's counters ------------------------------------------------- *)

let c_pages_read = register "pages_read"
let c_pages_written = register "pages_written"
let c_pool_hits = register "pool_hits"
let c_pool_misses = register "pool_misses"
let c_wal_appends = register "wal_appends"
let c_wal_syncs = register "wal_syncs"
let c_wal_sync_saved = register "wal_sync_saved"
let c_index_probes = register "index_probes"
let c_objects_scanned = register "objects_scanned"
let c_objects_fetched = register "objects_fetched"
let c_constraints_checked = register "constraints_checked"
let c_triggers_fired = register "triggers_fired"
let c_wal_torn_bytes = register ~group:Recovery "wal_torn_bytes"
let c_recovery_replayed = register ~group:Recovery "recovery_replayed"
let c_checksum_failures = register ~group:Recovery "checksum_failures"
let c_orphans_reclaimed = register ~group:Recovery "orphans_reclaimed"
let c_journal_pages_restored = register ~group:Recovery "journal_pages_restored"
let c_pages_reformatted = register ~group:Recovery "pages_reformatted"
let c_io_retries = register ~group:Recovery "io_retries"
let c_obj_cache_hits = register "obj_cache_hits"
let c_obj_cache_misses = register "obj_cache_misses"
let c_obj_cache_invalidations = register "obj_cache_invalidations"
let c_cursor_pages_read = register "cursor_pages_read"
let c_server_accepts = register "server.accepts"
let c_server_requests = register "server.requests"
let c_server_rejects = register "server.rejects"
let c_server_timeouts = register "server.timeouts"
let c_server_bytes_in = register "server.bytes_in"
let c_server_bytes_out = register "server.bytes_out"
let c_server_reroutes = register "server.reroutes"
let c_server_accept_backoffs = register "server.accept_backoffs"
let c_repl_batches_sent = register "repl.batches_sent"
let c_repl_batches_applied = register "repl.batches_applied"
let c_repl_bytes_sent = register "repl.bytes_sent"
let c_repl_snapshots_sent = register "repl.snapshots_sent"
let c_repl_acks = register "repl.acks"
let c_repl_resyncs = register "repl.resyncs"
let c_repl_dup_batches = register "repl.dup_batches"
let c_repl_sync_degraded = register "repl.sync_degraded"
let c_repl_lag_commits = register ~kind:Gauge "repl.lag_commits"
let c_repl_lag_bytes = register ~kind:Gauge "repl.lag_bytes"
let c_txn_conflicts = register "txn.conflicts"
let c_txn_begins = register "txn.begins"
let c_planner_stats_hits = register "planner.stats_hits"
let c_planner_fallbacks = register "planner.fallbacks"
let c_planner_analyze_runs = register "planner.analyze_runs"
let c_planner_fused_joins = register "planner.fused_joins"
let c_planner_hash_joins = register "planner.hash_joins"
let c_planner_nested_joins = register "planner.nested_joins"

let incr_pages_read () = bump c_pages_read
let incr_pages_written () = bump c_pages_written
let incr_pool_hits () = bump c_pool_hits
let incr_pool_misses () = bump c_pool_misses
let incr_wal_appends () = bump c_wal_appends
let incr_wal_syncs () = bump c_wal_syncs
let add_wal_sync_saved n = bump_by c_wal_sync_saved n
let incr_index_probes () = bump c_index_probes
let incr_objects_scanned () = bump c_objects_scanned
let incr_objects_fetched () = bump c_objects_fetched
let incr_constraints_checked () = bump c_constraints_checked
let incr_triggers_fired () = bump c_triggers_fired
let add_wal_torn_bytes n = bump_by c_wal_torn_bytes n
let incr_recovery_replayed () = bump c_recovery_replayed
let incr_checksum_failures () = bump c_checksum_failures
let add_orphans_reclaimed n = bump_by c_orphans_reclaimed n
let incr_journal_pages_restored () = bump c_journal_pages_restored
let incr_pages_reformatted () = bump c_pages_reformatted
let incr_io_retries () = bump c_io_retries
let incr_obj_cache_hits () = bump c_obj_cache_hits
let incr_obj_cache_misses () = bump c_obj_cache_misses
let incr_obj_cache_invalidations () = bump c_obj_cache_invalidations
let incr_cursor_pages_read () = bump c_cursor_pages_read
let incr_server_accepts () = bump c_server_accepts
let incr_server_requests () = bump c_server_requests
let incr_server_rejects () = bump c_server_rejects
let incr_server_timeouts () = bump c_server_timeouts
let add_server_bytes_in n = bump_by c_server_bytes_in n
let add_server_bytes_out n = bump_by c_server_bytes_out n
let incr_server_reroutes () = bump c_server_reroutes
let incr_server_accept_backoffs () = bump c_server_accept_backoffs
let incr_repl_batches_sent () = bump c_repl_batches_sent
let incr_repl_batches_applied () = bump c_repl_batches_applied
let add_repl_bytes_sent n = bump_by c_repl_bytes_sent n
let incr_repl_snapshots_sent () = bump c_repl_snapshots_sent
let incr_repl_acks () = bump c_repl_acks
let incr_repl_resyncs () = bump c_repl_resyncs
let incr_repl_dup_batches () = bump c_repl_dup_batches
let incr_repl_sync_degraded () = bump c_repl_sync_degraded
let incr_txn_conflicts () = bump c_txn_conflicts
let incr_txn_begins () = bump c_txn_begins
let incr_planner_stats_hits () = bump c_planner_stats_hits
let incr_planner_fallbacks () = bump c_planner_fallbacks
let incr_planner_analyze_runs () = bump c_planner_analyze_runs
let incr_planner_fused_joins () = bump c_planner_fused_joins
let incr_planner_hash_joins () = bump c_planner_hash_joins
let incr_planner_nested_joins () = bump c_planner_nested_joins

(* Lag is a gauge, not a counter: the serving loop overwrites it with the
   current distance between the primary's durable LSN and the slowest
   streaming replica's acknowledged LSN (and the bytes backed up for it). *)
let set_repl_lag_commits n = set c_repl_lag_commits n
let set_repl_lag_bytes n = set c_repl_lag_bytes n

(* Named accessors — the compatibility layer over the old record fields. *)
let pages_read s = slot s c_pages_read
let pages_written s = slot s c_pages_written
let pool_hits s = slot s c_pool_hits
let pool_misses s = slot s c_pool_misses
let wal_appends s = slot s c_wal_appends
let wal_syncs s = slot s c_wal_syncs
let wal_sync_saved s = slot s c_wal_sync_saved
let index_probes s = slot s c_index_probes
let objects_scanned s = slot s c_objects_scanned
let objects_fetched s = slot s c_objects_fetched
let constraints_checked s = slot s c_constraints_checked
let triggers_fired s = slot s c_triggers_fired
let wal_torn_bytes s = slot s c_wal_torn_bytes
let recovery_replayed s = slot s c_recovery_replayed
let checksum_failures s = slot s c_checksum_failures
let orphans_reclaimed s = slot s c_orphans_reclaimed
let journal_pages_restored s = slot s c_journal_pages_restored
let pages_reformatted s = slot s c_pages_reformatted
let io_retries s = slot s c_io_retries
let obj_cache_hits s = slot s c_obj_cache_hits
let obj_cache_misses s = slot s c_obj_cache_misses
let obj_cache_invalidations s = slot s c_obj_cache_invalidations
let cursor_pages_read s = slot s c_cursor_pages_read
let server_accepts s = slot s c_server_accepts
let server_requests s = slot s c_server_requests
let server_rejects s = slot s c_server_rejects
let server_timeouts s = slot s c_server_timeouts
let server_bytes_in s = slot s c_server_bytes_in
let server_bytes_out s = slot s c_server_bytes_out
let server_reroutes s = slot s c_server_reroutes
let server_accept_backoffs s = slot s c_server_accept_backoffs
let repl_batches_sent s = slot s c_repl_batches_sent
let repl_batches_applied s = slot s c_repl_batches_applied
let repl_bytes_sent s = slot s c_repl_bytes_sent
let repl_snapshots_sent s = slot s c_repl_snapshots_sent
let repl_acks s = slot s c_repl_acks
let repl_resyncs s = slot s c_repl_resyncs
let repl_dup_batches s = slot s c_repl_dup_batches
let repl_sync_degraded s = slot s c_repl_sync_degraded
let repl_lag_commits s = slot s c_repl_lag_commits
let repl_lag_bytes s = slot s c_repl_lag_bytes
let txn_conflicts s = slot s c_txn_conflicts
let txn_begins s = slot s c_txn_begins
let planner_stats_hits s = slot s c_planner_stats_hits
let planner_fallbacks s = slot s c_planner_fallbacks
let planner_analyze_runs s = slot s c_planner_analyze_runs
let planner_fused_joins s = slot s c_planner_fused_joins
let planner_hash_joins s = slot s c_planner_hash_joins
let planner_nested_joins s = slot s c_planner_nested_joins

(* pp derives from the registry: every counter of the group, name = value,
   so new registrations show up in `.stats` with no further edits. Output
   is sorted by counter name, not registration order — registration order
   depends on which modules initialized first (a fresh open and a
   post-recovery open pull layers in at different times), and sorted
   output diffs stably across the two. *)
let pp_group g ppf s =
  let named =
    List.mapi (fun i d -> (d, slot s i)) (List.rev !defs)
    |> List.filter (fun (d, _) -> d.d_group = g)
    |> List.sort (fun (a, _) (b, _) -> compare a.d_name b.d_name)
  in
  let first = ref true in
  List.iter
    (fun (d, v) ->
      if not !first then Format.fprintf ppf "  ";
      first := false;
      Format.fprintf ppf "%s %d" d.d_name v)
    named

let pp ppf s = pp_group Workload ppf s
let pp_recovery ppf s = pp_group Recovery ppf s
