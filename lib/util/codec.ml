exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

(* -- encoding ---------------------------------------------------------- *)

let put_u8 b n = Buffer.add_char b (Char.chr (n land 0xff))

let put_u16 b n =
  put_u8 b n;
  put_u8 b (n lsr 8)

let put_u32 b n =
  put_u16 b n;
  put_u16 b (n lsr 16)

let put_i64 b n = Buffer.add_int64_le b n
let put_int b n = put_i64 b (Int64.of_int n)
let put_float b f = put_i64 b (Int64.bits_of_float f)
let put_bool b v = put_u8 b (if v then 1 else 0)

let put_string b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_raw b s = Buffer.add_string b s

(* -- decoding ---------------------------------------------------------- *)

type cursor = { src : string; mutable p : int }

let cursor ?(pos = 0) src = { src; p = pos }
let pos c = c.p
let remaining c = String.length c.src - c.p
let at_end c = remaining c <= 0

let need c n =
  if remaining c < n then
    corrupt "codec: need %d bytes at %d, have %d" n c.p (remaining c)

let get_u8 c =
  need c 1;
  let v = Char.code c.src.[c.p] in
  c.p <- c.p + 1;
  v

let get_u16 c =
  let lo = get_u8 c in
  let hi = get_u8 c in
  lo lor (hi lsl 8)

let get_u32 c =
  let lo = get_u16 c in
  let hi = get_u16 c in
  lo lor (hi lsl 16)

let get_i64 c =
  need c 8;
  let v = String.get_int64_le c.src c.p in
  c.p <- c.p + 8;
  v

let get_int c = Int64.to_int (get_i64 c)
let get_float c = Int64.float_of_bits (get_i64 c)

let get_bool c =
  match get_u8 c with
  | 0 -> false
  | 1 -> true
  | n -> corrupt "codec: invalid bool byte %d" n

let get_raw c n =
  need c n;
  let s = String.sub c.src c.p n in
  c.p <- c.p + n;
  s

let get_string c =
  let n = get_u32 c in
  get_raw c n

(* -- checksums --------------------------------------------------------- *)

let fnv64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h := Int64.logxor !h (Int64.of_int (Char.code ch));
      h := Int64.mul !h prime)
    s;
  !h

let fnv64_bytes b ~pos ~len =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  for i = pos to pos + len - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.unsafe_get b i)));
    h := Int64.mul !h prime
  done;
  !h
