(** Fault-injection failpoints for crash-recovery testing.

    Side-effecting code paths (page writes, fsyncs, WAL batches) register
    named sites and consult them on every hit. Tests arm a site with a
    trigger {!policy} and an {!action}; when the site fires, the owning code
    simulates a fault: process death ({!Crash}), a short write that persists
    only a prefix, a flipped bit in the written image, or a syscall that
    silently does nothing.

    Disarmed sites are nearly free, so the instrumentation is compiled into
    production code unconditionally. The registry is process-global and
    single-threaded, like the rest of the engine. *)

exception Crash of string
(** Simulated process death at the named site. Test harnesses catch this,
    abandon the engine instance without flushing, and reopen from disk. *)

(** What the instrumented site should do when the point fires. Sites ignore
    action constructors that make no sense for them (e.g. [Short_effect] on
    an fsync). *)
type action =
  | Crash_site           (** die before performing the effect *)
  | Short_effect of float
      (** persist only this fraction of the effect (a torn write), then die *)
  | Flip_bit of int
      (** corrupt one bit of the written image (index taken mod size), then die *)
  | Skip_effect
      (** skip the effect but report success and keep running — models lying
          hardware (e.g. an fsync without durability); generally
          unrecoverable, used to prove a harness can detect real bugs *)

type policy =
  | Always                (** fire on every hit *)
  | One_shot              (** fire on the next hit, then disarm *)
  | After_hits of int     (** skip [n] hits, fire once, then disarm *)
  | Probability of float  (** fire each hit with probability [p] *)

type t
(** A registered site handle. *)

val site : string -> t
(** [site name] registers (idempotently) and returns the site. Owning
    modules call this at toplevel so the registry is complete at load. *)

val name : t -> string

val sites : unit -> string list
(** All registered site names, sorted. *)

val arm : ?seed:int -> string -> policy:policy -> action:action -> unit
(** Arm a site (registering it if needed). [seed] feeds the per-arming PRNG
    used by [Probability]. Re-arming replaces the previous arming. *)

val disarm : string -> unit

val clear : unit -> unit
(** Disarm every site (counters are kept). *)

val hit : t -> action option
(** Record a hit; if the site is armed and its policy fires, return the
    action for the caller to interpret. *)

val crash : t -> unit
(** Raise {!Crash} with the site's name. *)

val hits : string -> int
val fired : string -> int
val reset_counters : unit -> unit
