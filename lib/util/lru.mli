(** A mutable LRU map with integer keys.

    Used by the buffer pool to pick eviction victims. The structure keeps
    entries in recency order; [use] refreshes an entry, [evict] removes the
    least recently used entry satisfying a predicate. *)

type 'a t

val create : int -> 'a t
(** [create capacity] makes an empty LRU that considers itself full beyond
    [capacity] entries (capacity is advisory; the structure never drops
    entries on its own). *)

val capacity : 'a t -> int
val length : 'a t -> int
val mem : 'a t -> int -> bool

val find : 'a t -> int -> 'a option
(** [find t k] returns the value and refreshes recency. *)

val peek : 'a t -> int -> 'a option
(** Like [find] but without touching recency. *)

val add : 'a t -> int -> 'a -> unit
(** [add t k v] inserts or replaces the binding and marks it most recent. *)

val remove : 'a t -> int -> unit

val evict : 'a t -> (int -> 'a -> bool) -> (int * 'a) option
(** [evict t ok] removes and returns the least recently used binding for
    which [ok k v] holds, or [None] if none qualifies. *)

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** Iterate from least to most recently used. *)
