(** A mutable LRU map over hashable keys.

    Used by the buffer pool to pick eviction victims (integer page keys) and
    by the decoded-object cache (string logical keys). The structure keeps
    entries in recency order; [find] refreshes an entry, [evict] removes the
    least recently used entry satisfying a predicate. *)

type ('k, 'a) t

val create : int -> ('k, 'a) t
(** [create capacity] makes an empty LRU that considers itself full beyond
    [capacity] entries (capacity is advisory; the structure never drops
    entries on its own). *)

val capacity : ('k, 'a) t -> int
val length : ('k, 'a) t -> int
val mem : ('k, 'a) t -> 'k -> bool

val find : ('k, 'a) t -> 'k -> 'a option
(** [find t k] returns the value and refreshes recency. *)

val peek : ('k, 'a) t -> 'k -> 'a option
(** Like [find] but without touching recency. *)

val add : ('k, 'a) t -> 'k -> 'a -> unit
(** [add t k v] inserts or replaces the binding and marks it most recent. *)

val remove : ('k, 'a) t -> 'k -> unit

val evict : ('k, 'a) t -> ('k -> 'a -> bool) -> ('k * 'a) option
(** [evict t ok] removes and returns the least recently used binding for
    which [ok k v] holds, or [None] if none qualifies. *)

val clear : ('k, 'a) t -> unit
(** Drop every entry. *)

val iter : ('k, 'a) t -> ('k -> 'a -> unit) -> unit
(** Iterate from least to most recently used. *)
