(** Global operation counters.

    Every layer of the system bumps these counters; benchmarks snapshot them
    around a workload to report how much physical and logical work each
    strategy performed (pages touched, index probes, objects scanned, ...).
    Counters live in a registry of named slots: [register] a new one and
    snapshot/diff/[to_list]/[pp] pick it up with no further edits. Counters
    are process-global [Atomic.t] cells, so bumps are domain-safe: the
    network server executes read-only requests on reader domains in
    parallel with the writer domain, and every layer's counters stay
    exact under that concurrency. [snapshot] reads each cell atomically
    (the array as a whole is not one atomic cut, which is fine for
    monotonic counters). Registration itself happens at module
    initialization, before any domain is spawned. *)

type group =
  | Workload  (** reported by [pp] / the shell's [.stats] *)
  | Recovery  (** reported by [pp_recovery] / the shell's [.recovery] *)

type kind =
  | Counter  (** monotonically increasing; resets only via [reset] *)
  | Gauge  (** overwritten with a current level (replication lag) *)

type snapshot
(** Counter values at the moment [snapshot] was taken; read with the named
    accessors below, or generically with [to_list]/[get]. *)

val register : ?group:group -> ?kind:kind -> string -> int
(** Register a counter and return its slot id, for layers that keep their
    own hot-path handle ([bump]/[bump_by] are not exported; use the
    [incr_*] style wrappers or re-register in the owning module). *)

val kind_of : string -> kind
(** Exposition kind of a registered slot ([Counter] if unknown) — lets the
    metrics renderer emit [# TYPE ... gauge] for set-style slots. *)

val register_gauge : string -> (unit -> int) -> unit
(** Register (or replace — same name wins) a live sampled gauge: current
    connections, read-queue depth, cache residency, pending group-commit
    batch size. The callback runs on whichever domain renders metrics, so
    it must be domain-safe; a raising sampler reads as 0. *)

val unregister_gauge : string -> unit

val gauges : unit -> (string * int) list
(** All registered sampled gauges, read now, sorted by name. *)

val snapshot : unit -> snapshot
val reset : unit -> unit

val zero : unit -> snapshot
(** An all-zero snapshot (e.g. an accumulator for [accum]). *)

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] is the slot-wise difference. *)

val combine : snapshot -> snapshot -> snapshot

val accum : into:snapshot -> snapshot -> snapshot -> unit
(** [accum ~into a b] adds [a - b] into [into], slot-wise, in place —
    allocation-free delta accumulation for the query profiler. *)

val registered : unit -> string list
(** All counter names, in registration order. *)

val to_list : snapshot -> (string * int) list
(** [(name, value)] pairs in registration order. *)

val get : snapshot -> string -> int
(** Value of a counter by name; 0 if unknown. *)

(* Incrementers, called by the owning layer. *)
val incr_pages_read : unit -> unit
val incr_pages_written : unit -> unit
val incr_pool_hits : unit -> unit
val incr_pool_misses : unit -> unit
val incr_wal_appends : unit -> unit
val incr_wal_syncs : unit -> unit

val add_wal_sync_saved : int -> unit
(** Group commit: [add_wal_sync_saved (g - 1)] on a WAL sync that made [g]
    pending commits durable at once — the fsyncs the batch avoided. *)

val incr_index_probes : unit -> unit
val incr_objects_scanned : unit -> unit
val incr_objects_fetched : unit -> unit
val incr_constraints_checked : unit -> unit
val incr_triggers_fired : unit -> unit
val add_wal_torn_bytes : int -> unit
val incr_recovery_replayed : unit -> unit
val incr_checksum_failures : unit -> unit
val add_orphans_reclaimed : int -> unit
val incr_journal_pages_restored : unit -> unit
val incr_pages_reformatted : unit -> unit
val incr_io_retries : unit -> unit
val incr_obj_cache_hits : unit -> unit
val incr_obj_cache_misses : unit -> unit
val incr_obj_cache_invalidations : unit -> unit
val incr_cursor_pages_read : unit -> unit
val incr_server_accepts : unit -> unit
val incr_server_requests : unit -> unit
val incr_server_rejects : unit -> unit
val incr_server_timeouts : unit -> unit
val add_server_bytes_in : int -> unit
val add_server_bytes_out : int -> unit
val incr_server_reroutes : unit -> unit
val incr_server_accept_backoffs : unit -> unit
val incr_repl_batches_sent : unit -> unit
val incr_repl_batches_applied : unit -> unit
val add_repl_bytes_sent : int -> unit
val incr_repl_snapshots_sent : unit -> unit
val incr_repl_acks : unit -> unit
val incr_repl_resyncs : unit -> unit
val incr_repl_dup_batches : unit -> unit
val incr_repl_sync_degraded : unit -> unit

val incr_txn_conflicts : unit -> unit
(** A committing transaction lost first-committer-wins conflict detection
    and was aborted with the retryable conflict error. *)

val incr_txn_begins : unit -> unit
(** A read-write transaction was opened. *)

val incr_planner_stats_hits : unit -> unit
(** The planner costed a plan from analyze statistics. *)

val incr_planner_fallbacks : unit -> unit
(** The planner fell back to heuristics (stats absent or stale). *)

val incr_planner_analyze_runs : unit -> unit
val incr_planner_fused_joins : unit -> unit
(** A nested join was fused into one streamed pass (deref/membership). *)

val incr_planner_hash_joins : unit -> unit
val incr_planner_nested_joins : unit -> unit

val set_repl_lag_commits : int -> unit
val set_repl_lag_bytes : int -> unit
(** Replication-lag gauges (overwritten, not accumulated): commits the
    slowest streaming replica is behind the primary's durable LSN, and the
    response/batch bytes backed up toward it. *)

(* Named accessors — the compatibility layer over the old record fields:
   pages read/written on a disk backend, buffer-pool hits/misses, WAL
   appends/flushes, B+tree descents, objects visited/fetched, constraint
   checks, trigger firings; then the recovery group (torn-tail bytes,
   replayed WAL ops, checksum mismatches, swept orphans, journal pages
   restored, reinitialised pages, EINTR/EAGAIN retries); then the read-path
   group (decoded-object cache hits/misses/invalidations, B+tree leaves
   visited by streaming cursors). *)
val pages_read : snapshot -> int
val pages_written : snapshot -> int
val pool_hits : snapshot -> int
val pool_misses : snapshot -> int
val wal_appends : snapshot -> int
val wal_syncs : snapshot -> int
val wal_sync_saved : snapshot -> int
val index_probes : snapshot -> int
val objects_scanned : snapshot -> int
val objects_fetched : snapshot -> int
val constraints_checked : snapshot -> int
val triggers_fired : snapshot -> int
val wal_torn_bytes : snapshot -> int
val recovery_replayed : snapshot -> int
val checksum_failures : snapshot -> int
val orphans_reclaimed : snapshot -> int
val journal_pages_restored : snapshot -> int
val pages_reformatted : snapshot -> int
val io_retries : snapshot -> int
val obj_cache_hits : snapshot -> int
val obj_cache_misses : snapshot -> int
val obj_cache_invalidations : snapshot -> int
val cursor_pages_read : snapshot -> int

(* The serving layer (connections accepted, requests served, busy
   rejections, idle-timeout evictions, wire bytes in/out, reader-domain
   requests replayed on the writer, accept backoffs on fd exhaustion). *)
val server_accepts : snapshot -> int
val server_requests : snapshot -> int
val server_rejects : snapshot -> int
val server_timeouts : snapshot -> int
val server_bytes_in : snapshot -> int
val server_bytes_out : snapshot -> int
val server_reroutes : snapshot -> int
val server_accept_backoffs : snapshot -> int

(* Replication: batches/bytes shipped and applied, snapshots served,
   acknowledgements, stream resyncs, duplicate batches skipped, semi-sync
   waits that degraded to local durability; plus the two lag gauges. *)
val repl_batches_sent : snapshot -> int
val repl_batches_applied : snapshot -> int
val repl_bytes_sent : snapshot -> int
val repl_snapshots_sent : snapshot -> int
val repl_acks : snapshot -> int
val repl_resyncs : snapshot -> int
val repl_dup_batches : snapshot -> int
val repl_sync_degraded : snapshot -> int
val repl_lag_commits : snapshot -> int
val repl_lag_bytes : snapshot -> int

(* MVCC transactions: read-write begins and first-committer-wins aborts. *)
val txn_conflicts : snapshot -> int
val txn_begins : snapshot -> int

(* Query planner: stats-costed vs heuristic plans, analyze runs, and the
   join strategies actually executed. *)
val planner_stats_hits : snapshot -> int
val planner_fallbacks : snapshot -> int
val planner_analyze_runs : snapshot -> int
val planner_fused_joins : snapshot -> int
val planner_hash_joins : snapshot -> int
val planner_nested_joins : snapshot -> int

val pp : Format.formatter -> snapshot -> unit
(** Workload counters (pages, pool, WAL, probes, ...), derived from the
    registry: every [Workload] counter as [name value], sorted by name so
    the output diffs stably regardless of module-initialization order. *)

val pp_recovery : Format.formatter -> snapshot -> unit
(** Durability counters (replays, torn bytes, checksum failures, ...). *)
