(** Global operation counters.

    Every layer of the system bumps these counters; benchmarks snapshot them
    around a workload to report how much physical and logical work each
    strategy performed (pages touched, index probes, objects scanned, ...).
    Counters are process-global and single-threaded, like the rest of the
    engine. *)

type snapshot = {
  pages_read : int;       (** pages fetched from a disk backend *)
  pages_written : int;    (** pages written to a disk backend *)
  pool_hits : int;        (** buffer-pool hits *)
  pool_misses : int;      (** buffer-pool misses *)
  wal_appends : int;      (** WAL records appended *)
  wal_syncs : int;        (** WAL flushes *)
  index_probes : int;     (** B+tree descents *)
  objects_scanned : int;  (** objects visited by iteration *)
  objects_fetched : int;  (** object payload fetches *)
  constraints_checked : int;
  triggers_fired : int;
  wal_torn_bytes : int;       (** torn-tail bytes truncated at WAL open *)
  recovery_replayed : int;    (** WAL operations re-applied during recovery *)
  checksum_failures : int;    (** page/frame checksum mismatches detected *)
  orphans_reclaimed : int;    (** unreachable heap records swept post-recovery *)
  journal_pages_restored : int;
      (** pages restored from the double-write journal at open *)
  pages_reformatted : int;    (** crash-leftover pages reinitialised at attach *)
  io_retries : int;           (** EINTR/EAGAIN syscall retries *)
  obj_cache_hits : int;       (** decoded-object cache hits *)
  obj_cache_misses : int;     (** decoded-object cache misses *)
  obj_cache_invalidations : int;
      (** cached objects dropped because a committed write touched them *)
  cursor_pages_read : int;    (** B+tree leaves visited by streaming cursors *)
}

val zero : snapshot

(* Incrementers, called by the owning layer. *)
val incr_pages_read : unit -> unit
val incr_pages_written : unit -> unit
val incr_pool_hits : unit -> unit
val incr_pool_misses : unit -> unit
val incr_wal_appends : unit -> unit
val incr_wal_syncs : unit -> unit
val incr_index_probes : unit -> unit
val incr_objects_scanned : unit -> unit
val incr_objects_fetched : unit -> unit
val incr_constraints_checked : unit -> unit
val incr_triggers_fired : unit -> unit
val add_wal_torn_bytes : int -> unit
val incr_recovery_replayed : unit -> unit
val incr_checksum_failures : unit -> unit
val add_orphans_reclaimed : int -> unit
val incr_journal_pages_restored : unit -> unit
val incr_pages_reformatted : unit -> unit
val incr_io_retries : unit -> unit
val incr_obj_cache_hits : unit -> unit
val incr_obj_cache_misses : unit -> unit
val incr_obj_cache_invalidations : unit -> unit
val incr_cursor_pages_read : unit -> unit

val snapshot : unit -> snapshot
val reset : unit -> unit

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] is the component-wise difference. *)

val pp : Format.formatter -> snapshot -> unit
(** Workload counters (pages, pool, WAL, probes, ...). *)

val pp_recovery : Format.formatter -> snapshot -> unit
(** Durability counters (replays, torn bytes, checksum failures, ...). *)
