(** Global operation counters.

    Every layer of the system bumps these counters; benchmarks snapshot them
    around a workload to report how much physical and logical work each
    strategy performed (pages touched, index probes, objects scanned, ...).
    Counters are process-global and single-threaded, like the rest of the
    engine. *)

type snapshot = {
  pages_read : int;       (** pages fetched from a disk backend *)
  pages_written : int;    (** pages written to a disk backend *)
  pool_hits : int;        (** buffer-pool hits *)
  pool_misses : int;      (** buffer-pool misses *)
  wal_appends : int;      (** WAL records appended *)
  wal_syncs : int;        (** WAL flushes *)
  index_probes : int;     (** B+tree descents *)
  objects_scanned : int;  (** objects visited by iteration *)
  objects_fetched : int;  (** object payload fetches *)
  constraints_checked : int;
  triggers_fired : int;
}

val zero : snapshot

(* Incrementers, called by the owning layer. *)
val incr_pages_read : unit -> unit
val incr_pages_written : unit -> unit
val incr_pool_hits : unit -> unit
val incr_pool_misses : unit -> unit
val incr_wal_appends : unit -> unit
val incr_wal_syncs : unit -> unit
val incr_index_probes : unit -> unit
val incr_objects_scanned : unit -> unit
val incr_objects_fetched : unit -> unit
val incr_constraints_checked : unit -> unit
val incr_triggers_fired : unit -> unit

val snapshot : unit -> snapshot
val reset : unit -> unit

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] is the component-wise difference. *)

val pp : Format.formatter -> snapshot -> unit
