(** Order-preserving key encodings.

    B+tree keys are byte strings compared lexicographically; these encoders
    map typed values to byte strings such that byte order equals value
    order, and composite keys compare field by field. *)

val of_int : int -> string
(** 8 bytes, big-endian, sign bit flipped: byte order = integer order. *)

val of_float : float -> string
(** IEEE-754 total-order trick: positive floats get their sign bit set,
    negative floats are fully complemented. NaN sorts above everything. *)

val of_string : string -> string
(** Escaped so that a composite key never compares past a component
    boundary: 0x00 becomes 0x00 0xff, and the component ends with
    0x00 0x00. *)

val of_bool : bool -> string

val concat : string list -> string
(** Join already-encoded components. *)

val succ_prefix : string -> string option
(** [succ_prefix p] is the smallest string greater than every string with
    prefix [p], or [None] if [p] is all 0xff. Used to turn prefix scans into
    range scans. *)
